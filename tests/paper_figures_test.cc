// Regenerates every figure of the paper as structured output and checks it
// against the published tables. These are the repository's "golden" paper
// reproduction tests; the examples/ binaries print the same artifacts.

#include <gtest/gtest.h>

#include "src/core/align.h"
#include "src/core/cchase.h"
#include "src/core/naive_eval.h"
#include "src/core/normalize.h"
#include "src/parser/printer.h"
#include "src/temporal/abstract_chase.h"
#include "src/temporal/abstract_hom.h"
#include "tests/test_util.h"

namespace tdx {
namespace {

using ::tdx::testing::ParseOrDie;

/// Collapses runs of spaces so table checks are independent of column
/// widths chosen by the pretty-printer.
std::string Squash(const std::string& text) {
  std::string out;
  bool in_space = false;
  for (char c : text) {
    if (c == ' ') {
      in_space = true;
      continue;
    }
    if (in_space && !out.empty() && out.back() != '\n') out += ' ';
    in_space = false;
    out += c;
  }
  return out;
}

class PaperFiguresTest : public ::testing::Test {
 protected:
  void SetUp() override { program_ = ParseOrDie(testing::kPaperProgram); }
  std::unique_ptr<ParsedProgram> program_;
};

// Figure 1: snapshots of the abstract view of the source.
TEST_F(PaperFiguresTest, Figure1AbstractSourceSnapshots) {
  auto ia = AbstractInstance::FromConcrete(program_->source);
  ASSERT_TRUE(ia.ok());
  Universe& u = program_->universe;
  const RelationId e = *program_->schema.Find("E");
  const RelationId s = *program_->schema.Find("S");

  struct Row {
    TimePoint year;
    std::size_t e_count;
    std::size_t s_count;
  };
  // Figure 1's rows: 2012 {E(Ada,IBM)}; 2013 {E(Ada,IBM), S(Ada,18k),
  // E(Bob,IBM)}; 2014 {E(Ada,Google), S(Ada,18k), E(Bob,IBM)};
  // 2015 {.., S(Bob,13k)}; 2018 {E(Ada,Google), S(Ada,18k), S(Bob,13k)}.
  for (const Row& row : std::vector<Row>{{2012, 1, 0},
                                         {2013, 2, 1},
                                         {2014, 2, 1},
                                         {2015, 2, 2},
                                         {2018, 1, 2}}) {
    const Instance db = ia->At(row.year, &u);
    EXPECT_EQ(db.facts(e).size(), row.e_count) << row.year;
    EXPECT_EQ(db.facts(s).size(), row.s_count) << row.year;
  }
  const Instance db2012 = ia->At(2012, &u);
  EXPECT_TRUE(
      db2012.Contains(Fact(e, {u.Constant("Ada"), u.Constant("IBM")})));
}

// Figure 2: two abstract instances with nulls; J2 -> J1 but not J1 -> J2.
// (Covered in depth by abstract_hom_test; here as the figure's statement.)
TEST_F(PaperFiguresTest, Figure2HomomorphismAsymmetry) {
  Schema& schema = program_->schema;
  Universe& u = program_->universe;
  const RelationId emp = *schema.Find("Emp");

  AbstractInstance j1(&schema);
  Instance j1_snap(&schema);
  j1_snap.Insert(emp, {u.Constant("Ada"), u.Constant("IBM"), u.FreshNull()});
  j1.AddPiece(Interval(0, 2), std::move(j1_snap));
  j1.AddPiece(Interval::FromStart(2), Instance(&schema));

  AbstractInstance j2(&schema);
  Instance j2_snap(&schema);
  j2_snap.Insert(emp, {u.Constant("Ada"), u.Constant("IBM"),
                       u.FreshAnnotatedNull(Interval(0, 2))});
  j2.AddPiece(Interval(0, 2), std::move(j2_snap));
  j2.AddPiece(Interval::FromStart(2), Instance(&schema));

  EXPECT_TRUE(AbstractHomomorphismExists(j2, j1));
  EXPECT_FALSE(AbstractHomomorphismExists(j1, j2));
}

// Figure 3 / Example 5: the abstract chase result, snapshot by snapshot.
TEST_F(PaperFiguresTest, Figure3AbstractChaseResult) {
  auto ia = AbstractInstance::FromConcrete(program_->source);
  ASSERT_TRUE(ia.ok());
  auto outcome = AbstractChase(*ia, program_->mapping, &program_->universe);
  ASSERT_TRUE(outcome.ok());
  ASSERT_EQ(outcome->kind, ChaseResultKind::kSuccess);
  Universe& u = program_->universe;
  const RelationId emp = *program_->schema.Find("Emp");

  const Instance db2014 = outcome->target.At(2014, &u);
  EXPECT_EQ(db2014.facts(emp).size(), 2u);
  EXPECT_TRUE(db2014.Contains(Fact(
      emp, {u.Constant("Ada"), u.Constant("Google"), u.Constant("18k")})));
  bool bob_null = false;
  for (const FactView f : db2014.facts(emp)) {
    if (f.arg(0) == u.Constant("Bob")) bob_null = f.arg(2).is_null();
  }
  EXPECT_TRUE(bob_null);
}

// Figure 4: the concrete source instance as printed tables.
TEST_F(PaperFiguresTest, Figure4ConcreteSourceTables) {
  const std::string out = Squash(
      RenderConcreteInstance(program_->source, program_->universe));
  EXPECT_NE(out.find("Ada IBM [2012, 2014)"), std::string::npos) << out;
  EXPECT_NE(out.find("Ada Google [2014, inf)"), std::string::npos);
  EXPECT_NE(out.find("Bob IBM [2013, 2018)"), std::string::npos);
  EXPECT_NE(out.find("Ada 18k [2013, inf)"), std::string::npos);
  EXPECT_NE(out.find("Bob 13k [2015, inf)"), std::string::npos);
}

// Figure 5: norm(Ic, Phi+) output table (counts checked in normalize_test;
// here the rendered artifact).
TEST_F(PaperFiguresTest, Figure5NormalizedTables) {
  const ConcreteInstance normalized =
      Normalize(program_->source, program_->lifted.TgdBodies());
  const std::string out = Squash(
      RenderConcreteInstance(normalized, program_->universe));
  EXPECT_NE(out.find("Ada IBM [2012, 2013)"), std::string::npos) << out;
  EXPECT_NE(out.find("Ada IBM [2013, 2014)"), std::string::npos);
  EXPECT_NE(out.find("Bob IBM [2013, 2015)"), std::string::npos);
  EXPECT_NE(out.find("Bob IBM [2015, 2018)"), std::string::npos);
  EXPECT_NE(out.find("Ada 18k [2013, 2014)"), std::string::npos);
  EXPECT_NE(out.find("Bob 13k [2018, inf)"), std::string::npos);
}

// Figure 6: the naive normalizer's strictly larger table.
TEST_F(PaperFiguresTest, Figure6NaiveNormalizedTables) {
  NormalizeStats alg_stats, naive_stats;
  Normalize(program_->source, program_->lifted.TgdBodies(), &alg_stats);
  NaiveNormalize(program_->source, &naive_stats);
  EXPECT_EQ(alg_stats.output_facts, 9u);
  EXPECT_EQ(naive_stats.output_facts, 14u);
}

// Figures 7-8 are exercised in normalize_test (Example 14); Figure 9 here.
TEST_F(PaperFiguresTest, Figure9ConcreteChaseTable) {
  auto outcome =
      CChase(program_->source, program_->lifted, &program_->universe);
  ASSERT_TRUE(outcome.ok());
  ASSERT_EQ(outcome->kind, ChaseResultKind::kSuccess);
  const std::string out = Squash(
      RenderConcreteInstance(outcome->target, program_->universe));
  // The three complete rows of Figure 9.
  EXPECT_NE(out.find("Ada IBM 18k [2013, 2014)"), std::string::npos) << out;
  EXPECT_NE(out.find("Ada Google 18k [2014, inf)"), std::string::npos);
  EXPECT_NE(out.find("Bob IBM 13k [2015, 2018)"), std::string::npos);
  // The two interval-annotated null rows.
  EXPECT_NE(out.find("^[2012, 2013)"), std::string::npos);
  EXPECT_NE(out.find("^[2013, 2015)"), std::string::npos);
}

// Figure 10: the commuting square — c-chase then [[.]] is equivalent to
// [[.]] then abstract chase.
TEST_F(PaperFiguresTest, Figure10CommutingSquare) {
  auto report = VerifyCorollary20(program_->source, program_->mapping,
                                  program_->lifted, &program_->universe);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->aligned());
}

}  // namespace
}  // namespace tdx
