// Incremental normalization (core/normalize_incremental.h): a persistent
// NormalizeState must produce bit-identical output to a fresh full
// Normalize after any sequence of appends, at any job count; it must
// invalidate on every generation bump; its watermark must survive a
// checkpoint export/restore round trip; and the c-chase must produce the
// same solution with the incremental path on and off, on every workload
// family including randomized mappings and a kill-and-recover sweep.

#include "src/core/normalize_incremental.h"

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/analysis/planner.h"
#include "src/common/checkpoint.h"
#include "src/common/resource.h"
#include "src/core/cchase.h"
#include "src/core/normalize.h"
#include "src/gen/workload.h"
#include "src/parser/printer.h"

namespace tdx {
namespace {

std::string Render(const ConcreteInstance& instance, const Universe& u) {
  return instance.facts().ToString(u);
}

// Drives two identical worst-case settings in lockstep: `inc` through one
// persistent NormalizeState, `full` through fresh full passes. The
// workload's lhs R(x) & R(y) pairs every two facts, so appends keep
// enlarging one nested component — the hardest shape for the delta sweep.
class NormalizeStateTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kSeedFacts = 8;

  void SetUp() override {
    inc_w_ = MakeWorstCaseNormalizationWorkload(kSeedFacts);
    full_w_ = MakeWorstCaseNormalizationWorkload(kSeedFacts);
    r_plus_ = *inc_w_->schema.Find("R+");
    phis_inc_ = inc_w_->lifted.TgdBodies();
    phis_full_ = full_w_->lifted.TgdBodies();
  }

  void AddBoth(const std::string& name, const Interval& iv) {
    ASSERT_TRUE(inc_w_->source
                    .Add(r_plus_, {inc_w_->universe.Constant(name)}, iv)
                    .ok());
    ASSERT_TRUE(full_w_->source
                    .Add(r_plus_, {full_w_->universe.Constant(name)}, iv)
                    .ok());
  }

  void FullRound(NormalizeStats* stats = nullptr) {
    full_w_->source = Normalize(full_w_->source, phis_full_, stats);
  }

  std::unique_ptr<Workload> inc_w_;
  std::unique_ptr<Workload> full_w_;
  RelationId r_plus_ = 0;
  std::vector<Conjunction> phis_inc_;
  std::vector<Conjunction> phis_full_;
};

TEST_F(NormalizeStateTest, FirstPassMatchesFullNormalize) {
  NormalizeState state;
  NormalizeStats stats;
  state.Normalize(&inc_w_->source, phis_inc_, &stats);
  FullRound();
  EXPECT_EQ(Render(inc_w_->source, inc_w_->universe),
            Render(full_w_->source, full_w_->universe));
  // The first pass has no watermark: everything is delta.
  EXPECT_EQ(stats.delta_facts, stats.input_facts);
  EXPECT_EQ(stats.reused_components, 0u);
  EXPECT_TRUE(state.MatchesWatermark(inc_w_->source));
}

TEST_F(NormalizeStateTest, AppendsTakeIncrementalPathBitIdentically) {
  NormalizeState state;
  state.Normalize(&inc_w_->source, phis_inc_);
  FullRound();

  // Three rounds of appends: one fact overlapping the nested component, one
  // pass-through fact far away, one bridging the two regions.
  const std::vector<std::pair<std::string, Interval>> rounds[] = {
      {{"x0", Interval(3, 2 * kSeedFacts + 1)}},
      {{"x1", Interval(100, 105)}},
      {{"x2", Interval(2 * kSeedFacts - 1, 101)}, {"x3", Interval(1, 2)}},
  };
  for (const auto& round : rounds) {
    for (const auto& [name, iv] : round) AddBoth(name, iv);
    ASSERT_TRUE(state.MatchesWatermark(inc_w_->source));
    NormalizeStats stats;
    state.Normalize(&inc_w_->source, phis_inc_, &stats);
    EXPECT_EQ(stats.delta_facts, round.size());
    EXPECT_LT(stats.delta_facts, stats.input_facts);
    FullRound();
    EXPECT_EQ(Render(inc_w_->source, inc_w_->universe),
              Render(full_w_->source, full_w_->universe));
  }
}

TEST_F(NormalizeStateTest, ZeroDeltaPassIsANoOp) {
  NormalizeState state;
  NormalizeStats first;
  state.Normalize(&inc_w_->source, phis_inc_, &first);
  const std::string before = Render(inc_w_->source, inc_w_->universe);

  NormalizeStats stats;
  state.Normalize(&inc_w_->source, phis_inc_, &stats);
  EXPECT_EQ(Render(inc_w_->source, inc_w_->universe), before);
  EXPECT_EQ(stats.delta_facts, 0u);
  EXPECT_EQ(stats.homomorphisms, 0u);
  EXPECT_EQ(stats.dirty_components, 0u);
  EXPECT_EQ(stats.reused_components, first.groups);
  EXPECT_TRUE(state.MatchesWatermark(inc_w_->source));
}

TEST_F(NormalizeStateTest, GenerationBumpForcesFullPass) {
  NormalizeState state;
  state.Normalize(&inc_w_->source, phis_inc_);
  FullRound();

  // Move-assigning the fact store bumps the generation without changing
  // content — the documented invalidation trigger (egd rewrites, erases,
  // and assignments all route through it).
  Instance shuffled = inc_w_->source.facts();
  inc_w_->source.mutable_facts() = std::move(shuffled);
  Instance shuffled_full = full_w_->source.facts();
  full_w_->source.mutable_facts() = std::move(shuffled_full);
  EXPECT_FALSE(state.MatchesWatermark(inc_w_->source));

  AddBoth("y0", Interval(2, 2 * kSeedFacts));
  NormalizeStats stats;
  state.Normalize(&inc_w_->source, phis_inc_, &stats);
  EXPECT_EQ(stats.delta_facts, stats.input_facts);
  EXPECT_EQ(stats.reused_components, 0u);
  FullRound();
  EXPECT_EQ(Render(inc_w_->source, inc_w_->universe),
            Render(full_w_->source, full_w_->universe));
}

TEST_F(NormalizeStateTest, InvalidateDropsTheWatermark) {
  NormalizeState state;
  state.Normalize(&inc_w_->source, phis_inc_);
  ASSERT_TRUE(state.MatchesWatermark(inc_w_->source));
  state.Invalidate();
  EXPECT_FALSE(state.MatchesWatermark(inc_w_->source));
  EXPECT_FALSE(state.Export(&inc_w_->source.facts()).has_value());
}

TEST_F(NormalizeStateTest, ParallelFragmentationMatchesSequential) {
  NormalizeState seq(1);
  NormalizeState par(4);
  auto par_w = MakeWorstCaseNormalizationWorkload(kSeedFacts);
  const std::vector<Conjunction> phis_par = par_w->lifted.TgdBodies();

  seq.Normalize(&inc_w_->source, phis_inc_);
  par.Normalize(&par_w->source, phis_par);
  for (int round = 0; round < 3; ++round) {
    const std::string name = "p" + std::to_string(round);
    const Interval iv(static_cast<TimePoint>(2 + round),
                      static_cast<TimePoint>(2 * kSeedFacts + round));
    ASSERT_TRUE(inc_w_->source
                    .Add(r_plus_, {inc_w_->universe.Constant(name)}, iv)
                    .ok());
    ASSERT_TRUE(par_w->source
                    .Add(*par_w->schema.Find("R+"),
                         {par_w->universe.Constant(name)}, iv)
                    .ok());
    NormalizeStats seq_stats, par_stats;
    seq.Normalize(&inc_w_->source, phis_inc_, &seq_stats);
    par.Normalize(&par_w->source, phis_par, &par_stats);
    EXPECT_EQ(Render(inc_w_->source, inc_w_->universe),
              Render(par_w->source, par_w->universe));
    EXPECT_EQ(seq_stats.output_facts, par_stats.output_facts);
    EXPECT_EQ(seq_stats.dirty_components, par_stats.dirty_components);
    EXPECT_EQ(seq_stats.reused_components, par_stats.reused_components);
  }
}

TEST_F(NormalizeStateTest, ExportRestoreRoundTrip) {
  NormalizeState state;
  state.Normalize(&inc_w_->source, phis_inc_);
  FullRound();

  const auto wm = state.Export(&inc_w_->source.facts());
  ASSERT_TRUE(wm.has_value());
  EXPECT_EQ(wm->labels.size(),
            static_cast<std::size_t>(inc_w_->source.size()));

  // A fresh state restored from the exported watermark must continue
  // incrementally, exactly like the original.
  NormalizeState restored;
  ASSERT_TRUE(restored.Restore(*wm, inc_w_->source).ok());
  EXPECT_TRUE(restored.MatchesWatermark(inc_w_->source));

  AddBoth("r0", Interval(4, 2 * kSeedFacts + 2));
  NormalizeStats stats;
  restored.Normalize(&inc_w_->source, phis_inc_, &stats);
  EXPECT_EQ(stats.delta_facts, 1u);
  FullRound();
  EXPECT_EQ(Render(inc_w_->source, inc_w_->universe),
            Render(full_w_->source, full_w_->universe));
}

TEST_F(NormalizeStateTest, ExportAfterGenerationBumpIsEmpty) {
  NormalizeState state;
  state.Normalize(&inc_w_->source, phis_inc_);
  Instance shuffled = inc_w_->source.facts();
  inc_w_->source.mutable_facts() = std::move(shuffled);
  EXPECT_FALSE(state.Export(&inc_w_->source.facts()).has_value());
}

TEST_F(NormalizeStateTest, RestoreRejectsTornWatermarks) {
  NormalizeState state;
  state.Normalize(&inc_w_->source, phis_inc_);
  const auto wm = state.Export(&inc_w_->source.facts());
  ASSERT_TRUE(wm.has_value());

  NormalizeState fresh;
  NormalizeState::Watermark torn = *wm;
  torn.labels.pop_back();  // labels no longer parallel to marks
  EXPECT_FALSE(fresh.Restore(torn, inc_w_->source).ok());

  torn = *wm;
  for (auto& mark : torn.marks) mark += 1000;  // marks beyond column sizes
  EXPECT_FALSE(fresh.Restore(torn, inc_w_->source).ok());

  torn = *wm;
  if (!torn.labels.empty()) torn.labels[0] = torn.num_components + 7;
  EXPECT_FALSE(fresh.Restore(torn, inc_w_->source).ok());
}

TEST_F(NormalizeStateTest, FaultSiteTripsTheGuardAndInvalidates) {
  NormalizeState state;
  ResourceGuard guard;
  state.Normalize(&inc_w_->source, phis_inc_, nullptr, &guard);
  ASSERT_FALSE(guard.tripped());

  AddBoth("f0", Interval(3, 2 * kSeedFacts));
  ScopedFault fault("normalize/incremental", Status::Internal("injected"));
  NormalizeStats stats;
  state.Normalize(&inc_w_->source, phis_inc_, &stats, &guard);
  EXPECT_TRUE(guard.tripped());
  EXPECT_EQ(guard.dimension(), ResourceDimension::kInjectedFault);
  EXPECT_TRUE(stats.partial);
  // Per the guard contract the state self-invalidates; the next governed
  // pass (fresh guard) is full and repairs the instance.
  EXPECT_FALSE(state.MatchesWatermark(inc_w_->source));
  ResourceGuard retry;
  state.Normalize(&inc_w_->source, phis_inc_, &stats, &retry);
  ASSERT_FALSE(retry.tripped());
  FullRound();
  EXPECT_EQ(Render(inc_w_->source, inc_w_->universe),
            Render(full_w_->source, full_w_->universe));
}

// ---------------------------------------------------------------------------
// End to end: the c-chase with the incremental path on vs off.
// ---------------------------------------------------------------------------

using WorkloadFactory = std::function<std::unique_ptr<Workload>()>;

void ExpectIncrementalMatchesFull(const WorkloadFactory& make,
                                  unsigned jobs = 1) {
  auto w_inc = make();
  auto w_full = make();
  CChaseOptions inc, full;
  inc.jobs = jobs;
  full.incremental_normalize = false;
  full.jobs = jobs;
  auto a = CChase(w_inc->source, w_inc->lifted, &w_inc->universe, inc);
  auto b = CChase(w_full->source, w_full->lifted, &w_full->universe, full);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  ASSERT_EQ(a->kind, b->kind);
  EXPECT_EQ(a->stats.tgd_fires, b->stats.tgd_fires);
  EXPECT_EQ(a->stats.egd_steps, b->stats.egd_steps);
  EXPECT_EQ(a->stats.fresh_nulls, b->stats.fresh_nulls);
  EXPECT_EQ(a->stats.values_rewritten, b->stats.values_rewritten);
  if (a->kind == ChaseResultKind::kSuccess) {
    EXPECT_EQ(RenderConcreteInstance(a->target, w_inc->universe),
              RenderConcreteInstance(b->target, w_full->universe));
    EXPECT_EQ(a->target_norm_stats.output_facts,
              b->target_norm_stats.output_facts);
  } else if (a->kind == ChaseResultKind::kFailure) {
    EXPECT_EQ(a->failure_reason, b->failure_reason);
  }
}

TEST(CChaseIncrementalTest, EmploymentMatchesFull) {
  ExpectIncrementalMatchesFull([] {
    return MakeEmploymentWorkload(
        EmploymentConfig{.num_people = 25, .num_companies = 4, .avg_jobs = 3,
                         .horizon = 60, .salary_known_fraction = 0.6,
                         .inject_conflict = false, .seed = 13});
  });
}

TEST(CChaseIncrementalTest, FailingChaseMatchesFull) {
  ExpectIncrementalMatchesFull([] {
    return MakeEmploymentWorkload(
        EmploymentConfig{.num_people = 20, .num_companies = 3, .avg_jobs = 3,
                         .horizon = 50, .salary_known_fraction = 0.9,
                         .inject_conflict = true, .seed = 3});
  });
}

TEST(CChaseIncrementalTest, ChainCascadeMatchesFull) {
  ExpectIncrementalMatchesFull(
      [] { return MakeChainWorkload(ChainConfig{.hops = 10}); });
}

TEST(CChaseIncrementalTest, StratifiedMatchesFull) {
  ExpectIncrementalMatchesFull(
      [] { return MakeStratifiedWorkload(StratifiedConfig{.hops = 8}); });
}

TEST(CChaseIncrementalTest, CascadeMatchesFull) {
  ExpectIncrementalMatchesFull([] {
    return MakeCascadeWorkload(CascadeConfig{
        .stages = 5, .ballast_keys = 8, .ballast_dup = 3, .horizon = 8});
  });
}

TEST(CChaseIncrementalTest, CascadeMatchesFullParallel) {
  ExpectIncrementalMatchesFull(
      [] {
        return MakeCascadeWorkload(CascadeConfig{
            .stages = 5, .ballast_keys = 8, .ballast_dup = 3, .horizon = 8});
      },
      /*jobs=*/4);
}

TEST(CChaseIncrementalTest, RandomMappingFuzzMatchesFull) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    RandomMappingConfig cfg;
    cfg.seed = seed;
    ExpectIncrementalMatchesFull([&] { return MakeRandomMappingWorkload(cfg); });
  }
}

TEST(CChaseIncrementalTest, RandomInstanceFuzzMatchesFull) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    RandomConfig cfg;
    cfg.num_facts = 80;
    cfg.seed = seed;
    ExpectIncrementalMatchesFull([&] { return MakeRandomWorkload(cfg); });
  }
}

// ---------------------------------------------------------------------------
// The cascade workload itself: shape the ablation benchmark relies on.
// ---------------------------------------------------------------------------

TEST(CascadeWorkloadTest, PlannerProvesBallastEgdEffectFreeAndResolverLive) {
  auto w = MakeCascadeWorkload(CascadeConfig{
      .stages = 4, .ballast_keys = 4, .ballast_dup = 2, .horizon = 8});
  const ChaseSchedule schedule = PlanChase(w->mapping, w->schema);
  ASSERT_EQ(schedule.rules.size(), 8u);
  const ScheduleRule& resolve = schedule.rules[schedule.rules.size() - 2];
  const ScheduleRule& ballast = schedule.rules.back();
  EXPECT_EQ(resolve.name, "e1");
  EXPECT_EQ(ballast.name, "eB");
  EXPECT_TRUE(resolve.live);
  EXPECT_FALSE(resolve.effect_free);
  EXPECT_TRUE(ballast.live);
  EXPECT_TRUE(ballast.effect_free);
}

TEST(CascadeWorkloadTest, EachStageNeedsOneEgdMerge) {
  const CascadeConfig cfg{
      .stages = 6, .ballast_keys = 5, .ballast_dup = 2, .horizon = 8};
  auto w = MakeCascadeWorkload(cfg);
  auto outcome = CChase(w->source, w->lifted, &w->universe);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  ASSERT_EQ(outcome->kind, ChaseResultKind::kSuccess);
  // One hop null minted and merged per stage: the chase is forced through
  // `stages` normalize/egd iterations rather than one closure.
  EXPECT_EQ(outcome->stats.fresh_nulls, cfg.stages);
  EXPECT_EQ(outcome->stats.egd_steps, cfg.stages);
  // The incremental normalizer reuses the ballast components every pass.
  EXPECT_GT(outcome->target_norm_stats.reused_components, 0u);
}

// ---------------------------------------------------------------------------
// Chaos: kill at the incremental site (and around it), resume, compare.
// ---------------------------------------------------------------------------

std::string ChaosSiteName(
    const ::testing::TestParamInfo<const char*>& param_info) {
  std::string name = param_info.param;
  for (char& c : name) {
    if (c == '/' || c == '-') c = '_';
  }
  return name;
}

class CascadeChaosTest : public ::testing::TestWithParam<const char*> {
 protected:
  void TearDown() override { FaultRegistry::DisarmAll(); }

  static CascadeConfig Config() {
    return CascadeConfig{
        .stages = 4, .ballast_keys = 6, .ballast_dup = 3, .horizon = 8};
  }
};

TEST_P(CascadeChaosTest, KillResumeIsBitIdentical) {
  auto base_w = MakeCascadeWorkload(Config());
  auto base = CChase(base_w->source, base_w->lifted, &base_w->universe);
  ASSERT_TRUE(base.ok()) << base.status();
  ASSERT_EQ(base->kind, ChaseResultKind::kSuccess);
  const std::string baseline =
      RenderConcreteInstance(base->target, base_w->universe);

  const char* site = GetParam();
  std::size_t kills = 0;
  for (std::size_t skip = 0; skip < 64; ++skip) {
    auto w = MakeCascadeWorkload(Config());
    Checkpointer checkpointer("", &w->schema, &w->universe);
    checkpointer.set_cadence(1);
    checkpointer.set_max_overhead(0);
    CChaseOptions options;
    options.checkpointer = &checkpointer;

    bool killed = false;
    {
      ScopedFault fault(site, Status::Internal("injected fault"), skip);
      auto outcome = CChase(w->source, w->lifted, &w->universe, options);
      ASSERT_TRUE(outcome.ok()) << outcome.status();
      if (outcome->kind == ChaseResultKind::kSuccess) {
        EXPECT_EQ(RenderConcreteInstance(outcome->target, w->universe),
                  baseline);
        break;
      }
      ASSERT_EQ(outcome->kind, ChaseResultKind::kAborted);
      EXPECT_EQ(outcome->abort_dimension, ResourceDimension::kInjectedFault);
      killed = true;
    }
    if (!killed) break;
    ++kills;

    CChaseOptions resume_options;
    resume_options.resume_from = checkpointer.latest().has_value()
                                     ? &*checkpointer.latest()
                                     : nullptr;
    auto resumed = CChase(w->source, w->lifted, &w->universe, resume_options);
    ASSERT_TRUE(resumed.ok()) << resumed.status();
    ASSERT_EQ(resumed->kind, ChaseResultKind::kSuccess);
    EXPECT_EQ(RenderConcreteInstance(resumed->target, w->universe), baseline)
        << "divergence after kill at " << site << "@" << skip;
    EXPECT_EQ(resumed->stats.fresh_nulls, base->stats.fresh_nulls);
    EXPECT_EQ(resumed->stats.egd_steps, base->stats.egd_steps);
  }
  EXPECT_GT(kills, 0u) << "site " << site << " was never reached";
}

INSTANTIATE_TEST_SUITE_P(AllSites, CascadeChaosTest,
                         ::testing::Values("normalize/incremental",
                                           "cchase/normalize-target",
                                           "cchase/egd-fixpoint"),
                         ChaosSiteName);

}  // namespace
}  // namespace tdx
