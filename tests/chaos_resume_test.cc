// Kill-and-recover chaos harness: arm a fault site, let the engine die at
// it, resume from the newest checkpoint, and require the final instance and
// statistics to be bit-identical to an uninterrupted run. Every engine is
// deterministic, so a checkpoint at a safe point plus re-execution of the
// work lost after it must reproduce the exact same trajectory — any
// divergence is a checkpoint bug, not noise.
//
// The harness sweeps each site over increasing skip counts (the fault moves
// later into the run each time) until the run completes without hitting the
// site, so every dynamic occurrence of every site is exercised. The
// in-memory checkpointer runs at cadence 1: every safe point is retained,
// making the recovery window as tight as the engine allows.

#include <cstddef>
#include <string>

#include <gtest/gtest.h>

#include "src/common/checkpoint.h"
#include "src/common/resource.h"
#include "src/core/cchase.h"
#include "src/gen/workload.h"
#include "src/parser/parser.h"
#include "src/parser/printer.h"
#include "src/relational/chase.h"
#include "src/temporal/abstract_chase.h"
#include "src/temporal/abstract_instance.h"
#include "tests/test_util.h"

namespace tdx {
namespace {

using ::tdx::testing::kPaperProgram;
using ::tdx::testing::ParseOrDie;

Status Injected() { return Status::Internal("injected fault"); }

std::string SiteTestName(
    const ::testing::TestParamInfo<const char*>& param_info) {
  std::string name = param_info.param;
  for (char& c : name) {
    if (c == '/' || c == '-') c = '_';
  }
  return name;
}

// Hard cap on the skip sweep; every run here hits each site far fewer times.
constexpr std::size_t kMaxSkip = 64;

void ExpectSameStats(const ChaseStats& got, const ChaseStats& want) {
  EXPECT_EQ(got.tgd_triggers, want.tgd_triggers);
  EXPECT_EQ(got.tgd_fires, want.tgd_fires);
  EXPECT_EQ(got.egd_steps, want.egd_steps);
  EXPECT_EQ(got.fresh_nulls, want.fresh_nulls);
  EXPECT_EQ(got.values_rewritten, want.values_rewritten);
}

// ---------------------------------------------------------------------------
// C-chase: kill at every site, every occurrence; resume must be identical.
// ---------------------------------------------------------------------------

struct CChaseBaseline {
  std::string rendered;
  ChaseStats stats;
};

CChaseBaseline RunCChaseBaseline() {
  auto program = ParseOrDie(kPaperProgram);
  auto outcome =
      CChase(program->source, program->lifted, &program->universe);
  EXPECT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome->kind, ChaseResultKind::kSuccess);
  return {RenderConcreteInstance(outcome->target, program->universe),
          outcome->stats};
}

class CChaseChaosTest : public ::testing::TestWithParam<const char*> {
 protected:
  void TearDown() override { FaultRegistry::DisarmAll(); }
};

TEST_P(CChaseChaosTest, KillResumeIsBitIdentical) {
  const CChaseBaseline baseline = RunCChaseBaseline();
  const char* site = GetParam();

  std::size_t kills = 0;
  for (std::size_t skip = 0; skip < kMaxSkip; ++skip) {
    auto program = ParseOrDie(kPaperProgram);
    Checkpointer checkpointer("", &program->schema, &program->universe);
    checkpointer.set_cadence(1);
    checkpointer.set_max_overhead(0);
    CChaseOptions options;
    options.checkpointer = &checkpointer;

    bool killed = false;
    {
      ScopedFault fault(site, Injected(), skip);
      auto outcome =
          CChase(program->source, program->lifted, &program->universe,
                 options);
      ASSERT_TRUE(outcome.ok()) << outcome.status();
      if (outcome->kind == ChaseResultKind::kSuccess) {
        // The fault moved past the last occurrence of the site: the sweep
        // has covered every dynamic hit. Sanity-check and stop.
        EXPECT_EQ(RenderConcreteInstance(outcome->target, program->universe),
                  baseline.rendered);
        break;
      }
      ASSERT_EQ(outcome->kind, ChaseResultKind::kAborted);
      EXPECT_EQ(outcome->abort_dimension, ResourceDimension::kInjectedFault);
      killed = true;
    }
    if (!killed) break;
    ++kills;

    // Recover: resume from the newest checkpoint (or from scratch when the
    // kill landed before the first safe point persisted).
    CChaseOptions resume_options;
    resume_options.resume_from = checkpointer.latest().has_value()
                                     ? &*checkpointer.latest()
                                     : nullptr;
    auto resumed = CChase(program->source, program->lifted,
                          &program->universe, resume_options);
    ASSERT_TRUE(resumed.ok()) << resumed.status();
    ASSERT_EQ(resumed->kind, ChaseResultKind::kSuccess);
    EXPECT_EQ(RenderConcreteInstance(resumed->target, program->universe),
              baseline.rendered)
        << "divergence after kill at " << site << "@" << skip;
    ExpectSameStats(resumed->stats, baseline.stats);
  }
  EXPECT_GT(kills, 0u) << "site " << site << " was never reached";
}

INSTANTIATE_TEST_SUITE_P(AllSites, CChaseChaosTest,
                         ::testing::Values("cchase/normalize-source",
                                           "cchase/tgd-phase",
                                           "cchase/normalize-target",
                                           "cchase/egd-fixpoint",
                                           "normalize/algorithm1"),
                         SiteTestName);

// ---------------------------------------------------------------------------
// Snapshot engine: same harness over the relational chase.
// ---------------------------------------------------------------------------

class SnapshotChaosTest : public ::testing::TestWithParam<const char*> {
 protected:
  void TearDown() override { FaultRegistry::DisarmAll(); }

  static EmploymentConfig Config() {
    EmploymentConfig cfg;
    cfg.num_people = 10;
    cfg.num_companies = 3;
    cfg.seed = 7;
    return cfg;
  }
};

TEST_P(SnapshotChaosTest, KillResumeIsBitIdentical) {
  const char* site = GetParam();

  // Baseline: chase the first piece's snapshot uninterrupted.
  auto base_w = MakeEmploymentWorkload(Config());
  auto base_ia = AbstractInstance::FromConcrete(base_w->source);
  ASSERT_TRUE(base_ia.ok()) << base_ia.status();
  ASSERT_FALSE(base_ia->pieces().empty());
  auto base_outcome = ChaseSnapshot(base_ia->pieces()[0].snapshot,
                                    base_w->mapping, &base_w->universe);
  ASSERT_TRUE(base_outcome.ok()) << base_outcome.status();
  ASSERT_EQ(base_outcome->kind, ChaseResultKind::kSuccess);
  const std::string baseline =
      RenderInstanceTables(base_outcome->target, base_w->universe);

  std::size_t kills = 0;
  for (std::size_t skip = 0; skip < kMaxSkip; ++skip) {
    auto w = MakeEmploymentWorkload(Config());
    auto ia = AbstractInstance::FromConcrete(w->source);
    ASSERT_TRUE(ia.ok()) << ia.status();
    Checkpointer checkpointer("", &w->schema, &w->universe);
    checkpointer.set_cadence(1);
    checkpointer.set_max_overhead(0);
    ChaseOptions options;
    options.checkpointer = &checkpointer;

    bool killed = false;
    {
      ScopedFault fault(site, Injected(), skip);
      auto outcome = ChaseSnapshot(ia->pieces()[0].snapshot, w->mapping,
                                   &w->universe, options);
      ASSERT_TRUE(outcome.ok()) << outcome.status();
      if (outcome->kind == ChaseResultKind::kSuccess) {
        EXPECT_EQ(RenderInstanceTables(outcome->target, w->universe),
                  baseline);
        break;
      }
      ASSERT_EQ(outcome->kind, ChaseResultKind::kAborted);
      EXPECT_EQ(outcome->abort_dimension, ResourceDimension::kInjectedFault);
      killed = true;
    }
    if (!killed) break;
    ++kills;

    ChaseOptions resume_options;
    resume_options.resume_from = checkpointer.latest().has_value()
                                     ? &*checkpointer.latest()
                                     : nullptr;
    auto resumed = ChaseSnapshot(ia->pieces()[0].snapshot, w->mapping,
                                 &w->universe, resume_options);
    ASSERT_TRUE(resumed.ok()) << resumed.status();
    ASSERT_EQ(resumed->kind, ChaseResultKind::kSuccess);
    EXPECT_EQ(RenderInstanceTables(resumed->target, w->universe), baseline)
        << "divergence after kill at " << site << "@" << skip;
  }
  EXPECT_GT(kills, 0u) << "site " << site << " was never reached";
}

INSTANTIATE_TEST_SUITE_P(AllSites, SnapshotChaosTest,
                         ::testing::Values("chase/tgd-phase",
                                           "chase/egd-fixpoint"),
                         SiteTestName);

// ---------------------------------------------------------------------------
// Abstract engine: per-piece checkpoints, sequential and parallel.
// ---------------------------------------------------------------------------

class AbstractChaosTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultRegistry::DisarmAll(); }

  static EmploymentConfig Config() {
    EmploymentConfig cfg;
    cfg.num_people = 8;
    cfg.num_companies = 3;
    cfg.seed = 11;
    return cfg;
  }

  struct Baseline {
    std::string rendered;
    ChaseStats stats;
  };

  static Baseline RunBaseline(unsigned jobs) {
    auto w = MakeEmploymentWorkload(Config());
    auto ia = AbstractInstance::FromConcrete(w->source);
    EXPECT_TRUE(ia.ok()) << ia.status();
    AbstractChaseOptions options;
    options.jobs = jobs;
    auto outcome = AbstractChase(*ia, w->mapping, &w->universe, options);
    EXPECT_TRUE(outcome.ok()) << outcome.status();
    EXPECT_EQ(outcome->kind, ChaseResultKind::kSuccess);
    return {RenderAbstractInstance(outcome->target, w->universe),
            outcome->stats};
  }
};

TEST_F(AbstractChaosTest, SequentialMergeKillResumeIsBitIdentical) {
  const Baseline baseline = RunBaseline(1);

  std::size_t kills = 0;
  for (std::size_t skip = 0; skip < kMaxSkip; ++skip) {
    auto w = MakeEmploymentWorkload(Config());
    auto ia = AbstractInstance::FromConcrete(w->source);
    ASSERT_TRUE(ia.ok()) << ia.status();
    Checkpointer checkpointer("", &w->schema, &w->universe);
    checkpointer.set_cadence(1);
    checkpointer.set_max_overhead(0);
    AbstractChaseOptions options;
    options.checkpointer = &checkpointer;

    bool killed = false;
    {
      ScopedFault fault("abstract-chase/merge", Injected(), skip);
      auto outcome = AbstractChase(*ia, w->mapping, &w->universe, options);
      ASSERT_TRUE(outcome.ok()) << outcome.status();
      if (outcome->kind == ChaseResultKind::kSuccess) {
        EXPECT_EQ(RenderAbstractInstance(outcome->target, w->universe),
                  baseline.rendered);
        break;
      }
      ASSERT_EQ(outcome->kind, ChaseResultKind::kAborted);
      EXPECT_EQ(outcome->abort_dimension, ResourceDimension::kInjectedFault);
      EXPECT_TRUE(outcome->failure_span.has_value());
      killed = true;
    }
    if (!killed) break;
    ++kills;

    AbstractChaseOptions resume_options;
    resume_options.resume_from = checkpointer.latest().has_value()
                                     ? &*checkpointer.latest()
                                     : nullptr;
    auto resumed =
        AbstractChase(*ia, w->mapping, &w->universe, resume_options);
    ASSERT_TRUE(resumed.ok()) << resumed.status();
    ASSERT_EQ(resumed->kind, ChaseResultKind::kSuccess);
    EXPECT_EQ(RenderAbstractInstance(resumed->target, w->universe),
              baseline.rendered)
        << "divergence after kill at abstract-chase/merge@" << skip;
    ExpectSameStats(resumed->stats, baseline.stats);
  }
  EXPECT_GT(kills, 0u);
}

TEST_F(AbstractChaosTest, ParallelDispatchDropResumesBitIdentical) {
  const Baseline baseline = RunBaseline(4);

  auto w = MakeEmploymentWorkload(Config());
  auto ia = AbstractInstance::FromConcrete(w->source);
  ASSERT_TRUE(ia.ok()) << ia.status();
  ASSERT_GT(ia->pieces().size(), 1u);
  Checkpointer checkpointer("", &w->schema, &w->universe);
  checkpointer.set_cadence(1);
  checkpointer.set_max_overhead(0);
  AbstractChaseOptions options;
  options.jobs = 4;
  options.checkpointer = &checkpointer;

  {
    // Drop one pool task mid-fan-out: the engine must surface a clean abort
    // with the stats of the pieces merged before the hole, never touch the
    // unfilled slot, and leak nothing (ASan/TSan-checked in CI).
    ScopedFault fault("thread-pool/dispatch", Injected());
    auto outcome = AbstractChase(*ia, w->mapping, &w->universe, options);
    ASSERT_TRUE(outcome.ok()) << outcome.status();
    ASSERT_EQ(outcome->kind, ChaseResultKind::kAborted);
    EXPECT_EQ(outcome->abort_dimension, ResourceDimension::kInjectedFault);
    EXPECT_TRUE(outcome->failure_span.has_value());
  }

  AbstractChaseOptions resume_options;
  resume_options.jobs = 4;
  resume_options.resume_from = checkpointer.latest().has_value()
                                   ? &*checkpointer.latest()
                                   : nullptr;
  auto resumed = AbstractChase(*ia, w->mapping, &w->universe, resume_options);
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  ASSERT_EQ(resumed->kind, ChaseResultKind::kSuccess);
  EXPECT_EQ(RenderAbstractInstance(resumed->target, w->universe),
            baseline.rendered);
  ExpectSameStats(resumed->stats, baseline.stats);
}

// ---------------------------------------------------------------------------
// Budget: a resumed run charges the remaining allowance, not a fresh one.
// ---------------------------------------------------------------------------

TEST(BudgetResumeTest, ResumedRunChargesRemainingBudget) {
  // The paper program needs 8 tgd fires end to end; cap at 5.
  ChaseLimits limits;
  limits.max_tgd_fires = 5;

  auto program = ParseOrDie(kPaperProgram);
  Checkpointer checkpointer("", &program->schema, &program->universe);
  checkpointer.set_cadence(1);
  checkpointer.set_max_overhead(0);
  CChaseOptions options;
  options.limits = limits;
  options.checkpointer = &checkpointer;
  auto aborted =
      CChase(program->source, program->lifted, &program->universe, options);
  ASSERT_TRUE(aborted.ok()) << aborted.status();
  ASSERT_EQ(aborted->kind, ChaseResultKind::kAborted);
  EXPECT_EQ(aborted->abort_dimension, ResourceDimension::kTgdFires);
  ASSERT_TRUE(checkpointer.latest().has_value());

  // Same limits on resume: the run still cannot afford the remaining work —
  // a reset budget would have granted 5 fresh fires and finished.
  CChaseOptions same_budget;
  same_budget.limits = limits;
  same_budget.resume_from = &*checkpointer.latest();
  auto still_aborted = CChase(program->source, program->lifted,
                              &program->universe, same_budget);
  ASSERT_TRUE(still_aborted.ok()) << still_aborted.status();
  EXPECT_EQ(still_aborted->kind, ChaseResultKind::kAborted);
  EXPECT_EQ(still_aborted->abort_dimension, ResourceDimension::kTgdFires);

  // Raising the budget is the intended recovery: the resumed run completes
  // and matches an unrestricted run exactly.
  auto unrestricted = ParseOrDie(kPaperProgram);
  auto full = CChase(unrestricted->source, unrestricted->lifted,
                     &unrestricted->universe);
  ASSERT_TRUE(full.ok()) << full.status();
  ASSERT_EQ(full->kind, ChaseResultKind::kSuccess);

  CChaseOptions raised;
  raised.limits.max_tgd_fires = 100;
  raised.resume_from = &*checkpointer.latest();
  auto recovered =
      CChase(program->source, program->lifted, &program->universe, raised);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  ASSERT_EQ(recovered->kind, ChaseResultKind::kSuccess);
  EXPECT_EQ(RenderConcreteInstance(recovered->target, program->universe),
            RenderConcreteInstance(full->target, unrestricted->universe));
  EXPECT_EQ(recovered->stats.tgd_fires, full->stats.tgd_fires);
}

}  // namespace
}  // namespace tdx
