#include "src/common/allen.h"

#include <gtest/gtest.h>

namespace tdx {
namespace {

TEST(AllenTest, AllThirteenRelations) {
  // The canonical witnesses for each of Allen's relations.
  EXPECT_EQ(Classify(Interval(1, 3), Interval(5, 8)), AllenRelation::kBefore);
  EXPECT_EQ(Classify(Interval(1, 5), Interval(5, 8)), AllenRelation::kMeets);
  EXPECT_EQ(Classify(Interval(1, 6), Interval(4, 9)),
            AllenRelation::kOverlaps);
  EXPECT_EQ(Classify(Interval(2, 5), Interval(2, 9)), AllenRelation::kStarts);
  EXPECT_EQ(Classify(Interval(4, 6), Interval(2, 9)), AllenRelation::kDuring);
  EXPECT_EQ(Classify(Interval(6, 9), Interval(2, 9)),
            AllenRelation::kFinishes);
  EXPECT_EQ(Classify(Interval(2, 9), Interval(2, 9)), AllenRelation::kEquals);
  EXPECT_EQ(Classify(Interval(2, 9), Interval(6, 9)),
            AllenRelation::kFinishedBy);
  EXPECT_EQ(Classify(Interval(2, 9), Interval(4, 6)),
            AllenRelation::kContains);
  EXPECT_EQ(Classify(Interval(2, 9), Interval(2, 5)),
            AllenRelation::kStartedBy);
  EXPECT_EQ(Classify(Interval(4, 9), Interval(1, 6)),
            AllenRelation::kOverlappedBy);
  EXPECT_EQ(Classify(Interval(5, 8), Interval(1, 5)), AllenRelation::kMetBy);
  EXPECT_EQ(Classify(Interval(5, 8), Interval(1, 3)), AllenRelation::kAfter);
}

TEST(AllenTest, UnboundedEndpoints) {
  EXPECT_EQ(Classify(Interval::FromStart(5), Interval::FromStart(5)),
            AllenRelation::kEquals);
  // Same (infinite) end, a starts earlier: b finishes a.
  EXPECT_EQ(Classify(Interval::FromStart(2), Interval::FromStart(5)),
            AllenRelation::kFinishedBy);
  EXPECT_EQ(Classify(Interval(2, 5), Interval::FromStart(5)),
            AllenRelation::kMeets);
  EXPECT_EQ(Classify(Interval(2, 5), Interval::FromStart(7)),
            AllenRelation::kBefore);
  EXPECT_EQ(Classify(Interval::FromStart(2), Interval(4, 6)),
            AllenRelation::kContains);
  EXPECT_EQ(Classify(Interval(2, kTimeInfinity), Interval(4, kTimeInfinity)),
            AllenRelation::kFinishedBy);
}

// Property sweep: Classify is total, inverse-consistent, and partitions.
class AllenSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(AllenSweep, InverseConsistencyAndTotality) {
  const auto [as, al, bs, bl] = GetParam();
  const Interval a(static_cast<TimePoint>(as),
                   static_cast<TimePoint>(as + al));
  const Interval b(static_cast<TimePoint>(bs),
                   static_cast<TimePoint>(bs + bl));
  const AllenRelation ab = Classify(a, b);
  const AllenRelation ba = Classify(b, a);
  EXPECT_EQ(ba, Inverse(ab));
  EXPECT_EQ(ab, Inverse(ba));
  // Equality relation holds iff the intervals are equal.
  EXPECT_EQ(ab == AllenRelation::kEquals, a == b);
  // SQL OVERLAPS agrees with the seven point-sharing relations.
  const bool shares_points = a.Overlaps(b);
  const bool allen_shares =
      ab != AllenRelation::kBefore && ab != AllenRelation::kMeets &&
      ab != AllenRelation::kMetBy && ab != AllenRelation::kAfter;
  EXPECT_EQ(shares_points, allen_shares);
  EXPECT_EQ(PeriodsOverlap(a, b), shares_points);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AllenSweep,
    ::testing::Combine(::testing::Values(0, 2, 4), ::testing::Values(1, 3, 5),
                       ::testing::Values(0, 2, 4),
                       ::testing::Values(1, 3, 5)));

TEST(AllenTest, SqlPredicates) {
  EXPECT_TRUE(PeriodContains(Interval(1, 9), Interval(3, 5)));
  EXPECT_TRUE(PeriodContains(Interval(1, 9), Interval(1, 9)));
  EXPECT_FALSE(PeriodContains(Interval(3, 5), Interval(1, 9)));
  EXPECT_TRUE(PeriodPrecedes(Interval(1, 3), Interval(5, 8)));
  EXPECT_TRUE(PeriodPrecedes(Interval(1, 5), Interval(5, 8)));
  EXPECT_FALSE(PeriodPrecedes(Interval(1, 6), Interval(5, 8)));
  EXPECT_TRUE(PeriodImmediatelyPrecedes(Interval(1, 5), Interval(5, 8)));
  EXPECT_FALSE(PeriodImmediatelyPrecedes(Interval(1, 4), Interval(5, 8)));
}

TEST(AllenTest, NamesAreStable) {
  EXPECT_EQ(AllenRelationName(AllenRelation::kBefore), "before");
  EXPECT_EQ(AllenRelationName(AllenRelation::kOverlappedBy), "overlapped_by");
  EXPECT_EQ(AllenRelationName(AllenRelation::kEquals), "equals");
}

// Allen's MEETS is exactly the paper's adjacency (Section 2) on the left.
TEST(AllenTest, MeetsMatchesPaperAdjacency) {
  const Interval a(1, 5), b(5, 9);
  EXPECT_EQ(Classify(a, b), AllenRelation::kMeets);
  EXPECT_TRUE(a.AdjacentTo(b));
  const Interval c(6, 9);
  EXPECT_NE(Classify(a, c), AllenRelation::kMeets);
  EXPECT_FALSE(a.AdjacentTo(c));
}

}  // namespace
}  // namespace tdx
