// Stress and edge-case tests for the chase engines: multi-atom heads,
// shared existentials, egd cascades, constants in dependencies, and
// determinism at larger scale.

#include <gtest/gtest.h>

#include "src/core/align.h"
#include "src/core/cchase.h"
#include "src/relational/chase.h"
#include "src/relational/universal.h"
#include "tests/test_util.h"

namespace tdx {
namespace {

using ::tdx::testing::HasConcreteFact;
using ::tdx::testing::ParseOrDie;

Atom MakeAtom(RelationId rel, std::vector<Term> terms) {
  Atom atom;
  atom.rel = rel;
  atom.terms = std::move(terms);
  return atom;
}

// A head with two atoms sharing one existential variable: the fresh null
// must be THE SAME in both facts of one firing, and DIFFERENT across
// firings.
TEST(ChaseStressTest, SharedExistentialAcrossHeadAtoms) {
  Schema schema;
  Universe u;
  const RelationId src = *schema.AddRelation("Src", {"a"}, SchemaRole::kSource);
  const RelationId p =
      *schema.AddRelation("P", {"a", "b"}, SchemaRole::kTarget);
  const RelationId q =
      *schema.AddRelation("Q", {"b", "a"}, SchemaRole::kTarget);
  Tgd tgd;  // Src(x) -> exists y: P(x, y) & Q(y, x)
  tgd.body.atoms = {MakeAtom(src, {Term::Var(0)})};
  tgd.head.atoms = {MakeAtom(p, {Term::Var(0), Term::Var(1)}),
                    MakeAtom(q, {Term::Var(1), Term::Var(0)})};
  tgd.body.num_vars = tgd.head.num_vars = 2;
  ASSERT_TRUE(tgd.Finalize().ok());
  Mapping mapping;
  mapping.st_tgds = {tgd};

  Instance source(&schema);
  source.Insert(src, {u.Constant("a")});
  source.Insert(src, {u.Constant("b")});
  auto outcome = ChaseSnapshot(source, mapping, &u);
  ASSERT_TRUE(outcome.ok());
  ASSERT_EQ(outcome->target.facts(p).size(), 2u);
  ASSERT_EQ(outcome->target.facts(q).size(), 2u);

  // Within a firing: same null. Across firings: different nulls.
  std::map<Value, Value> null_of;  // Src constant -> its null
  for (const FactView f : outcome->target.facts(p)) {
    null_of[f.arg(0)] = f.arg(1);
  }
  for (const FactView f : outcome->target.facts(q)) {
    EXPECT_EQ(f.arg(0), null_of.at(f.arg(1)));
  }
  EXPECT_NE(null_of.at(u.Constant("a")), null_of.at(u.Constant("b")));
  EXPECT_EQ(outcome->stats.fresh_nulls, 2u);
}

// Multi-atom heads are the case where the restricted-chase extension check
// must see facts inserted earlier in the same phase (mixed witnesses).
TEST(ChaseStressTest, MultiAtomHeadExtensionCheckStaysExact) {
  Schema schema;
  Universe u;
  const RelationId src =
      *schema.AddRelation("Src", {"a", "b"}, SchemaRole::kSource);
  const RelationId p =
      *schema.AddRelation("P", {"a", "b"}, SchemaRole::kTarget);
  const RelationId r = *schema.AddRelation("Rr", {"a"}, SchemaRole::kTarget);
  // Src(x, z) -> exists y: P(x, y) & Rr(z). Two triggers sharing z produce
  // one Rr fact; the second firing must still happen (different x), and a
  // third trigger with both x and z already witnessed must NOT fire.
  Tgd tgd;
  tgd.body.atoms = {MakeAtom(src, {Term::Var(0), Term::Var(2)})};
  tgd.head.atoms = {MakeAtom(p, {Term::Var(0), Term::Var(1)}),
                    MakeAtom(r, {Term::Var(2)})};
  tgd.body.num_vars = tgd.head.num_vars = 3;
  ASSERT_TRUE(tgd.Finalize().ok());
  Mapping mapping;
  mapping.st_tgds = {tgd};

  Instance source(&schema);
  source.Insert(src, {u.Constant("x1"), u.Constant("z1")});
  source.Insert(src, {u.Constant("x2"), u.Constant("z1")});
  auto outcome = ChaseSnapshot(source, mapping, &u);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->target.facts(p).size(), 2u);
  EXPECT_EQ(outcome->target.facts(r).size(), 1u);
  EXPECT_EQ(outcome->stats.tgd_fires, 2u);
}

// Egd cascade: equating through a chain of nulls down to a constant.
TEST(ChaseStressTest, EgdCascadeResolvesChainsToConstants) {
  auto program = ParseOrDie(R"(
    source L(a, b);
    source V(a, val);
    target Node(a, val);
    target Link(a, b);
    tgd n1: L(a, b) -> exists v: Node(a, v);
    tgd n2: L(a, b) -> exists v: Node(b, v);
    tgd n3: V(a, v) -> Node(a, v);
    tgd n4: L(a, b) -> Link(a, b);
    # Linked nodes share their value.
    egd  e1: Node(a, v) & Node(b, v2) & Link(a, b) -> v = v2;

    fact L("n1", "n2") @ [0, 5);
    fact L("n2", "n3") @ [0, 5);
    fact L("n3", "n4") @ [0, 5);
    fact V("n4", "42") @ [0, 5);
  )");
  auto chase = CChase(program->source, program->lifted, &program->universe);
  ASSERT_TRUE(chase.ok()) << chase.status();
  ASSERT_EQ(chase->kind, ChaseResultKind::kSuccess);
  // The value 42 propagates backwards through the whole chain.
  for (const char* node : {"n1", "n2", "n3", "n4"}) {
    EXPECT_TRUE(HasConcreteFact(chase->target, program->universe, "Node+",
                                {node, "42"}, Interval(0, 5)))
        << node;
  }
}

// Conflicting constants at the far ends of a null chain: failure.
TEST(ChaseStressTest, EgdCascadeDetectsDeepConflict) {
  auto program = ParseOrDie(R"(
    source L(a, b);
    source V(a, val);
    target Node(a, val);
    target Link(a, b);
    tgd L(a, b) -> exists v: Node(a, v);
    tgd L(a, b) -> exists v: Node(b, v);
    tgd V(a, v) -> Node(a, v);
    tgd L(a, b) -> Link(a, b);
    egd Node(a, v) & Node(b, v2) & Link(a, b) -> v = v2;

    fact L("n1", "n2") @ [0, 5);
    fact L("n2", "n3") @ [0, 5);
    fact V("n1", "1") @ [0, 5);
    fact V("n3", "2") @ [0, 5);
  )");
  auto chase = CChase(program->source, program->lifted, &program->universe);
  ASSERT_TRUE(chase.ok());
  EXPECT_EQ(chase->kind, ChaseResultKind::kFailure);
}

// Constants in tgd heads create ground facts.
TEST(ChaseStressTest, ConstantsInHeads) {
  auto program = ParseOrDie(R"(
    source E(name);
    target Tagged(name, tag);
    tgd E(n) -> Tagged(n, "seen");
    fact E("x") @ [1, 3);
  )");
  auto chase = CChase(program->source, program->lifted, &program->universe);
  ASSERT_TRUE(chase.ok());
  EXPECT_TRUE(HasConcreteFact(chase->target, program->universe, "Tagged+",
                              {"x", "seen"}, Interval(1, 3)));
}

// Repeated variables in a body atom act as an equality filter.
TEST(ChaseStressTest, RepeatedBodyVariableFilters) {
  auto program = ParseOrDie(R"(
    source E(a, b);
    target SelfLoop(a);
    tgd E(x, x) -> SelfLoop(x);
    fact E("p", "p") @ [0, 2);
    fact E("p", "q") @ [0, 2);
  )");
  auto chase = CChase(program->source, program->lifted, &program->universe);
  ASSERT_TRUE(chase.ok());
  EXPECT_EQ(chase->target.size(), 1u);
  EXPECT_TRUE(HasConcreteFact(chase->target, program->universe, "SelfLoop+",
                              {"p"}, Interval(0, 2)));
}

// Two egds whose applications enable each other.
TEST(ChaseStressTest, MutuallyEnablingEgds) {
  auto program = ParseOrDie(R"(
    source A(k, x, y);
    target T(k, x, y);
    tgd A(k, x, y) -> T(k, x, y);
    # Keys determine both columns.
    egd T(k, x, y) & T(k, x2, y2) -> x = x2;
    egd T(k, x, y) & T(k, x2, y2) -> y = y2;
    fact A("k", "v", "1") @ [0, 4);
    fact A("k", "v", "1") @ [0, 4);
  )");
  auto chase = CChase(program->source, program->lifted, &program->universe);
  ASSERT_TRUE(chase.ok());
  EXPECT_EQ(chase->kind, ChaseResultKind::kSuccess);

  auto conflicting = ParseOrDie(R"(
    source A(k, x, y);
    target T(k, x, y);
    tgd A(k, x, y) -> T(k, x, y);
    egd T(k, x, y) & T(k, x2, y2) -> x = x2;
    egd T(k, x, y) & T(k, x2, y2) -> y = y2;
    fact A("k", "v", "1") @ [0, 4);
    fact A("k", "v", "2") @ [2, 6);
  )");
  auto bad = CChase(conflicting->source, conflicting->lifted,
                    &conflicting->universe);
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad->kind, ChaseResultKind::kFailure);
}

// Determinism at scale: two identical runs produce identical renderings.
TEST(ChaseStressTest, LargeChaseIsDeterministic) {
  const char* text = R"(
    source E(name, company);
    source S(name, salary);
    target Emp(name, company, salary);
    tgd E(n, c) -> exists s: Emp(n, c, s);
    tgd E(n, c) & S(n, s) -> Emp(n, c, s);
    egd Emp(n, c, s) & Emp(n, c, s2) -> s = s2;
    fact E("p1", "c1") @ [0, 7);
    fact E("p1", "c2") @ [7, 20);
    fact E("p2", "c1") @ [3, 12);
    fact E("p3", "c3") @ [1, inf);
    fact S("p1", "10k") @ [2, 9);
    fact S("p2", "11k") @ [0, 30);
    fact S("p3", "12k") @ [5, 6);
  )";
  auto p1 = ParseOrDie(text);
  auto p2 = ParseOrDie(text);
  auto o1 = CChase(p1->source, p1->lifted, &p1->universe);
  auto o2 = CChase(p2->source, p2->lifted, &p2->universe);
  ASSERT_TRUE(o1.ok());
  ASSERT_TRUE(o2.ok());
  EXPECT_EQ(o1->target.facts().ToString(p1->universe),
            o2->target.facts().ToString(p2->universe));
  EXPECT_EQ(o1->stats.tgd_fires, o2->stats.tgd_fires);
  EXPECT_EQ(o1->stats.egd_steps, o2->stats.egd_steps);
}

// The chase never touches source relations and leaves no junk in them.
TEST(ChaseStressTest, TargetContainsOnlyTargetRelations) {
  auto program = ParseOrDie(testing::kPaperProgram);
  auto chase = CChase(program->source, program->lifted, &program->universe);
  ASSERT_TRUE(chase.ok());
  chase->target.facts().ForEach([&](FactView f) {
    EXPECT_EQ(program->schema.relation(f.relation()).role,
              SchemaRole::kTarget);
  });
}

// Stats plausibility on the paper instance.
TEST(ChaseStressTest, StatsAccounting) {
  auto program = ParseOrDie(testing::kPaperProgram);
  auto chase = CChase(program->source, program->lifted, &program->universe);
  ASSERT_TRUE(chase.ok());
  // sigma1 fires once per normalized E fact (5); sigma2 three times.
  EXPECT_EQ(chase->stats.tgd_fires, 8u);
  EXPECT_EQ(chase->stats.fresh_nulls, 5u);
  // Three nulls get merged into constants (2013-Ada, 2014-Ada, 2015-Bob).
  EXPECT_EQ(chase->stats.egd_steps, 3u);
}

// Determinism under abort: because tgds fire in declaration order with
// triggers in canonical order, a budget only decides WHERE a run stops, not
// WHAT it computes. Aborting at any budget and rerunning from a fresh parse
// with a sufficient budget must reproduce the unbudgeted solution exactly.
TEST(ChaseStressTest, AbortThenRerunWithLargerBudgetIsIdentical) {
  const char* text = R"(
    source E(name, company);
    source S(name, salary);
    target Emp(name, company, salary);
    tgd E(n, c) -> exists s: Emp(n, c, s);
    tgd E(n, c) & S(n, s) -> Emp(n, c, s);
    egd Emp(n, c, s) & Emp(n, c, s2) -> s = s2;
    fact E("p1", "c1") @ [0, 7);
    fact E("p1", "c2") @ [7, 20);
    fact E("p2", "c1") @ [3, 12);
    fact E("p3", "c3") @ [1, inf);
    fact S("p1", "10k") @ [2, 9);
    fact S("p2", "11k") @ [0, 30);
    fact S("p3", "12k") @ [5, 6);
  )";
  // Ground truth: the unbudgeted run.
  auto full = ParseOrDie(text);
  auto full_outcome = CChase(full->source, full->lifted, &full->universe);
  ASSERT_TRUE(full_outcome.ok());
  ASSERT_EQ(full_outcome->kind, ChaseResultKind::kSuccess);
  const std::string want =
      full_outcome->target.facts().ToString(full->universe);

  // Abort at a sweep of budgets: each run must come back kAborted (the
  // budgets are all below the real cost) without crashing or hanging.
  for (std::size_t budget = 1; budget <= 5; ++budget) {
    auto p = ParseOrDie(text);
    CChaseOptions options;
    options.limits.max_tgd_fires = budget;
    auto aborted = CChase(p->source, p->lifted, &p->universe, options);
    ASSERT_TRUE(aborted.ok());
    EXPECT_EQ(aborted->kind, ChaseResultKind::kAborted);
    EXPECT_EQ(aborted->abort_dimension, ResourceDimension::kTgdFires);
    EXPECT_EQ(aborted->stats.tgd_fires, budget);
  }

  // A fresh parse with a sufficient budget reproduces the exact solution.
  auto rerun = ParseOrDie(text);
  CChaseOptions options;
  options.limits.max_tgd_fires = full_outcome->stats.tgd_fires;
  options.limits.max_egd_steps = full_outcome->stats.egd_steps;
  options.limits.max_fresh_nulls = full_outcome->stats.fresh_nulls;
  auto governed = CChase(rerun->source, rerun->lifted, &rerun->universe,
                         options);
  ASSERT_TRUE(governed.ok());
  ASSERT_EQ(governed->kind, ChaseResultKind::kSuccess);
  EXPECT_EQ(governed->target.facts().ToString(rerun->universe), want);
  EXPECT_EQ(governed->stats.tgd_fires, full_outcome->stats.tgd_fires);
  EXPECT_EQ(governed->stats.egd_steps, full_outcome->stats.egd_steps);
}

}  // namespace
}  // namespace tdx
