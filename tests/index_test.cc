#include "src/relational/index.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace tdx {
namespace {

class IndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    e_ = *schema_.AddRelation("E", {"a", "b", "c"}, SchemaRole::kSource);
    instance_ = std::make_unique<Instance>(&schema_);
    for (int i = 0; i < 100; ++i) {
      instance_->Insert(e_, {u_.Constant("x" + std::to_string(i % 10)),
                             u_.Constant("y" + std::to_string(i % 5)),
                             u_.Constant("z" + std::to_string(i))});
    }
  }

  /// Verified candidates: probe, then filter by actual equality (the
  /// engine always re-verifies, so the index may over-approximate).
  std::size_t VerifiedCount(IndexCache* cache,
                            const std::vector<std::uint32_t>& positions,
                            const std::vector<Value>& values) {
    const auto& candidates = cache->Probe(e_, positions, values);
    std::size_t count = 0;
    for (std::uint32_t idx : candidates) {
      const Fact& f = instance_->facts(e_)[idx];
      bool match = true;
      for (std::size_t i = 0; i < positions.size(); ++i) {
        if (f.arg(positions[i]) != values[i]) match = false;
      }
      if (match) ++count;
    }
    return count;
  }

  Universe u_;
  Schema schema_;
  RelationId e_ = 0;
  std::unique_ptr<Instance> instance_;
};

TEST_F(IndexTest, SingleColumnProbe) {
  IndexCache cache(instance_.get());
  EXPECT_EQ(VerifiedCount(&cache, {0}, {u_.Constant("x3")}), 10u);
  EXPECT_EQ(VerifiedCount(&cache, {1}, {u_.Constant("y2")}), 20u);
  EXPECT_EQ(VerifiedCount(&cache, {2}, {u_.Constant("z42")}), 1u);
}

TEST_F(IndexTest, MultiColumnProbe) {
  IndexCache cache(instance_.get());
  // i % 10 == 3 and i % 5 == 3: i in {3, 13, 23, ...}: 10 facts.
  EXPECT_EQ(VerifiedCount(&cache, {0, 1},
                          {u_.Constant("x3"), u_.Constant("y3")}),
            10u);
  // i % 10 == 3 and i % 5 == 2: impossible (3 mod 5 != 2 for i=3 mod 10).
  EXPECT_EQ(VerifiedCount(&cache, {0, 1},
                          {u_.Constant("x3"), u_.Constant("y2")}),
            0u);
}

TEST_F(IndexTest, MissingKeyYieldsEmpty) {
  IndexCache cache(instance_.get());
  EXPECT_EQ(VerifiedCount(&cache, {0}, {u_.Constant("nope")}), 0u);
}

TEST_F(IndexTest, DifferentMasksAreIndependent) {
  IndexCache cache(instance_.get());
  // Build three different per-mask indexes in one cache; results must not
  // interfere.
  EXPECT_EQ(VerifiedCount(&cache, {0}, {u_.Constant("x1")}), 10u);
  EXPECT_EQ(VerifiedCount(&cache, {1}, {u_.Constant("y1")}), 20u);
  EXPECT_EQ(VerifiedCount(&cache, {0, 2},
                          {u_.Constant("x1"), u_.Constant("z1")}),
            1u);
  // Repeat the first probe: cached path.
  EXPECT_EQ(VerifiedCount(&cache, {0}, {u_.Constant("x1")}), 10u);
}

TEST_F(IndexTest, CandidatesContainAllTrueMatches) {
  // Soundness of the approximation: every real match is among candidates.
  IndexCache cache(instance_.get());
  const std::vector<std::uint32_t> positions{1};
  const std::vector<Value> values{u_.Constant("y0")};
  const auto& candidates = cache.Probe(e_, positions, values);
  std::size_t real = 0;
  const auto& facts = instance_->facts(e_);
  for (std::uint32_t i = 0; i < facts.size(); ++i) {
    if (facts[i].arg(1) == values[0]) {
      ++real;
      EXPECT_NE(std::find(candidates.begin(), candidates.end(), i),
                candidates.end());
    }
  }
  EXPECT_EQ(real, 20u);
}

TEST_F(IndexTest, IntervalValuesAreIndexable) {
  Schema schema;
  const RelationId r =
      *schema.AddTemporalRelation("R+", {"a"}, SchemaRole::kSource);
  Instance inst(&schema);
  Universe u;
  for (TimePoint t = 0; t < 50; ++t) {
    inst.Insert(r, {u.Constant("v"), Value::OfInterval(Interval(t, t + 1))});
  }
  IndexCache cache(&inst);
  const auto& hits =
      cache.Probe(r, {1}, {Value::OfInterval(Interval(7, 8))});
  std::size_t verified = 0;
  for (std::uint32_t i : hits) {
    if (inst.facts(r)[i].interval() == Interval(7, 8)) ++verified;
  }
  EXPECT_EQ(verified, 1u);
}

}  // namespace
}  // namespace tdx
