#include "src/relational/index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

namespace tdx {
namespace {

class IndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    e_ = *schema_.AddRelation("E", {"a", "b", "c"}, SchemaRole::kSource);
    instance_ = std::make_unique<Instance>(&schema_);
    for (int i = 0; i < 100; ++i) {
      instance_->Insert(e_, {u_.Constant("x" + std::to_string(i % 10)),
                             u_.Constant("y" + std::to_string(i % 5)),
                             u_.Constant("z" + std::to_string(i))});
    }
  }

  /// Verified candidates: probe, then filter by actual equality (the
  /// engine always re-verifies, so the index may over-approximate). An
  /// uncovered probe (scan fallback) counts over the whole relation, like
  /// the engine does.
  std::size_t VerifiedCount(IndexCache* cache,
                            const std::vector<std::uint32_t>& positions,
                            const std::vector<Value>& values) {
    const CandidateRange candidates = cache->Probe(e_, positions, values);
    const FactColumn facts = instance_->facts(e_);
    auto matches = [&](FactView f) {
      for (std::size_t i = 0; i < positions.size(); ++i) {
        if (f.arg(positions[i]) != values[i]) return false;
      }
      return true;
    };
    std::size_t count = 0;
    if (!candidates.covered) {
      for (const FactView f : facts) {
        if (matches(f)) ++count;
      }
      return count;
    }
    for (std::uint32_t idx : candidates) {
      if (matches(facts[idx])) ++count;
    }
    return count;
  }

  Universe u_;
  Schema schema_;
  RelationId e_ = 0;
  std::unique_ptr<Instance> instance_;
};

TEST_F(IndexTest, SingleColumnProbe) {
  IndexCache cache(instance_.get());
  EXPECT_EQ(VerifiedCount(&cache, {0}, {u_.Constant("x3")}), 10u);
  EXPECT_EQ(VerifiedCount(&cache, {1}, {u_.Constant("y2")}), 20u);
  EXPECT_EQ(VerifiedCount(&cache, {2}, {u_.Constant("z42")}), 1u);
}

TEST_F(IndexTest, MultiColumnProbe) {
  IndexCache cache(instance_.get());
  // i % 10 == 3 and i % 5 == 3: i in {3, 13, 23, ...}: 10 facts.
  EXPECT_EQ(VerifiedCount(&cache, {0, 1},
                          {u_.Constant("x3"), u_.Constant("y3")}),
            10u);
  // i % 10 == 3 and i % 5 == 2: impossible (3 mod 5 != 2 for i=3 mod 10).
  EXPECT_EQ(VerifiedCount(&cache, {0, 1},
                          {u_.Constant("x3"), u_.Constant("y2")}),
            0u);
}

TEST_F(IndexTest, MissingKeyYieldsEmpty) {
  IndexCache cache(instance_.get());
  EXPECT_EQ(VerifiedCount(&cache, {0}, {u_.Constant("nope")}), 0u);
}

TEST_F(IndexTest, DifferentMasksAreIndependent) {
  IndexCache cache(instance_.get());
  // Build three different per-mask indexes in one cache; results must not
  // interfere.
  EXPECT_EQ(VerifiedCount(&cache, {0}, {u_.Constant("x1")}), 10u);
  EXPECT_EQ(VerifiedCount(&cache, {1}, {u_.Constant("y1")}), 20u);
  EXPECT_EQ(VerifiedCount(&cache, {0, 2},
                          {u_.Constant("x1"), u_.Constant("z1")}),
            1u);
  // Repeat the first probe: cached path.
  EXPECT_EQ(VerifiedCount(&cache, {0}, {u_.Constant("x1")}), 10u);
}

TEST_F(IndexTest, CandidatesContainAllTrueMatches) {
  // Soundness of the approximation: every real match is among candidates,
  // and candidate runs are in ascending fact-position order (this is what
  // keeps chase enumeration order identical to a filtered scan).
  IndexCache cache(instance_.get());
  const std::vector<std::uint32_t> positions{1};
  const std::vector<Value> values{u_.Constant("y0")};
  const CandidateRange candidates = cache.Probe(e_, positions, values);
  ASSERT_TRUE(candidates.covered);
  EXPECT_TRUE(std::is_sorted(candidates.begin(), candidates.end()));
  std::size_t real = 0;
  const FactColumn facts = instance_->facts(e_);
  for (std::uint32_t i = 0; i < facts.size(); ++i) {
    if (facts[i].arg(1) == values[0]) {
      ++real;
      EXPECT_NE(std::find(candidates.begin(), candidates.end(), i),
                candidates.end());
    }
  }
  EXPECT_EQ(real, 20u);
}

TEST_F(IndexTest, AppendedFactsBecomeVisibleWithoutRebuild) {
  // Incremental maintenance: an index built before an append catches up on
  // the next probe instead of staying stale.
  IndexCache cache(instance_.get());
  EXPECT_EQ(VerifiedCount(&cache, {0}, {u_.Constant("x3")}), 10u);
  instance_->Insert(e_, {u_.Constant("x3"), u_.Constant("y9"),
                         u_.Constant("z-new")});
  EXPECT_EQ(VerifiedCount(&cache, {0}, {u_.Constant("x3")}), 11u);
  // A mask first probed AFTER the append also sees the new fact.
  EXPECT_EQ(VerifiedCount(&cache, {1}, {u_.Constant("y9")}), 1u);
}

TEST_F(IndexTest, GenerationChangeInvalidatesIndexes) {
  // Erase bumps the instance generation; arena rows shifted down, so the
  // cache must rebuild rather than serve stale candidate positions.
  IndexCache cache(instance_.get());
  EXPECT_EQ(VerifiedCount(&cache, {2}, {u_.Constant("z99")}), 1u);
  const Fact victim = instance_->facts(e_)[0].ToFact();
  ASSERT_TRUE(instance_->Erase(victim));
  EXPECT_EQ(VerifiedCount(&cache, {2}, {u_.Constant("z99")}), 1u);
  EXPECT_EQ(VerifiedCount(&cache, {2}, {u_.Constant("z0")}), 0u);
}

TEST_F(IndexTest, RewriteFactsInvalidatesIndexes) {
  // In-place rewrites keep positions but change argument values; a probe
  // after the rewrite must see the new values, not the stale buckets.
  IndexCache cache(instance_.get());
  EXPECT_EQ(VerifiedCount(&cache, {2}, {u_.Constant("z7")}), 1u);
  // Rewrite fact 7's "z7" into "z-rewritten" via the egd merge primitive.
  std::unordered_map<Value, Value, ValueHash> subst;
  subst.emplace(u_.Constant("z7"), u_.Constant("z-rewritten"));
  const RewriteResult result =
      instance_->RewriteFacts({FactRef{e_, 7}}, subst);
  EXPECT_EQ(result.facts_rewritten, 1u);
  EXPECT_FALSE(result.compacted);
  EXPECT_EQ(VerifiedCount(&cache, {2}, {u_.Constant("z7")}), 0u);
  EXPECT_EQ(VerifiedCount(&cache, {2}, {u_.Constant("z-rewritten")}), 1u);
}

TEST_F(IndexTest, WideRelationFallsBackToScan) {
  // Positions at or beyond the 64-bit mask width cannot be indexed; Probe
  // must report the scan fallback instead of tripping UB in the shift.
  Schema schema;
  std::vector<std::string> cols;
  cols.reserve(70);
  for (int i = 0; i < 70; ++i) cols.push_back("c" + std::to_string(i));
  const RelationId wide =
      *schema.AddRelation("W", cols, SchemaRole::kSource);
  Instance inst(&schema);
  Universe u;
  std::vector<Value> args(70, u.Constant("pad"));
  args[69] = u.Constant("tail");
  inst.Insert(wide, args);
  IndexCache cache(&inst);
  EXPECT_FALSE(cache.Probe(wide, {69}, {u.Constant("tail")}).covered);
  // Probes under the width still index fine on the same relation.
  const CandidateRange under = cache.Probe(wide, {0}, {u.Constant("pad")});
  EXPECT_TRUE(under.covered);
  EXPECT_EQ(under.size(), 1u);
}

TEST_F(IndexTest, IntervalValuesAreIndexable) {
  Schema schema;
  const RelationId r =
      *schema.AddTemporalRelation("R+", {"a"}, SchemaRole::kSource);
  Instance inst(&schema);
  Universe u;
  for (TimePoint t = 0; t < 50; ++t) {
    inst.Insert(r, {u.Constant("v"), Value::OfInterval(Interval(t, t + 1))});
  }
  IndexCache cache(&inst);
  const CandidateRange hits =
      cache.Probe(r, {1}, {Value::OfInterval(Interval(7, 8))});
  ASSERT_TRUE(hits.covered);
  std::size_t verified = 0;
  for (std::uint32_t i : hits) {
    if (inst.facts(r)[i].interval() == Interval(7, 8)) ++verified;
  }
  EXPECT_EQ(verified, 1u);
}

}  // namespace
}  // namespace tdx
