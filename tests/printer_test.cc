#include "src/parser/printer.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace tdx {
namespace {

using ::tdx::testing::ParseOrDie;

TEST(PrinterTest, RendersRelationTableWithHeader) {
  auto program = ParseOrDie(R"(
    source E(name, company);
    target T(name);
    tgd E(n, c) -> T(n);
    fact E("Ada", "IBM") @ [2012, 2014);
  )");
  const RelationId e_plus = *program->schema.Find("E+");
  const std::string table = RenderRelationTable(
      program->source.facts(), e_plus, program->universe);
  EXPECT_NE(table.find("E+"), std::string::npos);
  EXPECT_NE(table.find("name"), std::string::npos);
  EXPECT_NE(table.find("company"), std::string::npos);
  EXPECT_NE(table.find("Ada"), std::string::npos);
  EXPECT_NE(table.find("[2012, 2014)"), std::string::npos);
}

TEST(PrinterTest, EmptyRelationRendersEmpty) {
  auto program = ParseOrDie(R"(
    source E(name);
    target T(name);
    tgd E(n) -> T(n);
  )");
  const RelationId e_plus = *program->schema.Find("E+");
  EXPECT_TRUE(RenderRelationTable(program->source.facts(), e_plus,
                                  program->universe)
                  .empty());
}

TEST(PrinterTest, ColumnsAreAligned) {
  auto program = ParseOrDie(R"(
    source E(name, company);
    target T(name);
    tgd E(n, c) -> T(n);
    fact E("Ada", "IBM") @ [0, 5);
    fact E("Wilhelmina", "International") @ [0, 5);
  )");
  const RelationId e_plus = *program->schema.Find("E+");
  const std::string table = RenderRelationTable(
      program->source.facts(), e_plus, program->universe);
  // Every data line has "IBM"/"International" starting at the same column.
  const std::size_t col1 = table.find("Ada");
  const std::size_t col2 = table.find("Wilhelmina");
  ASSERT_NE(col1, std::string::npos);
  ASSERT_NE(col2, std::string::npos);
  const std::size_t line1_start = table.rfind('\n', col1) + 1;
  const std::size_t line2_start = table.rfind('\n', col2) + 1;
  EXPECT_EQ(col1 - line1_start, col2 - line2_start);
}

TEST(PrinterTest, ConcreteInstanceListsAllNonEmptyRelations) {
  auto program = ParseOrDie(testing::kPaperProgram);
  const std::string out =
      RenderConcreteInstance(program->source, program->universe);
  EXPECT_NE(out.find("E+"), std::string::npos);
  EXPECT_NE(out.find("S+"), std::string::npos);
  EXPECT_EQ(out.find("Emp+"), std::string::npos);  // empty target relation
}

TEST(PrinterTest, AbstractInstanceShowsSpans) {
  auto program = ParseOrDie(testing::kPaperProgram);
  auto ia = AbstractInstance::FromConcrete(program->source);
  ASSERT_TRUE(ia.ok());
  const std::string out = RenderAbstractInstance(*ia, program->universe);
  EXPECT_NE(out.find("[2012, 2013):"), std::string::npos);
  EXPECT_NE(out.find("[2018, inf):"), std::string::npos);
  EXPECT_NE(out.find("E(Ada, IBM)"), std::string::npos);
  EXPECT_NE(out.find("(empty)"), std::string::npos);  // the [0, 2012) piece
}

TEST(PrinterTest, AnswersRenderSorted) {
  Universe u;
  // Constants sort by interning order, so "a" (interned first) precedes
  // "b" regardless of the order answers arrive in.
  const Value a = u.Constant("a");
  const Value b = u.Constant("b");
  std::vector<Tuple> answers = {
      {b, Value::OfInterval(Interval(0, 2))},
      {a, Value::OfInterval(Interval(1, 3))},
  };
  const std::string out = RenderAnswers(answers, u);
  EXPECT_LT(out.find("(a, [1, 3))"), out.find("(b, [0, 2))"));
}

TEST(PrinterTest, CsvExportQuotesAndSorts) {
  // The text format has no string escapes, so the embedded-quote value is
  // built through the API.
  Universe u;
  Schema schema;
  const RelationId e_plus =
      *schema.AddRelationPair("E", {"name", "note"}, SchemaRole::kSource);
  ConcreteInstance ic(&schema);
  // Canonical fact order follows constant interning order; intern Ada
  // first so it sorts first.
  const Value ada = u.Constant("Ada");
  ASSERT_TRUE(ic.Add(e_plus, {u.Constant("Bob"), u.Constant("plain")},
                     Interval(2, 9))
                  .ok());
  ASSERT_TRUE(ic.Add(e_plus, {ada, u.Constant("said \"hi\"")},
                     Interval(0, 5))
                  .ok());
  const std::string csv = RenderRelationCsv(ic.facts(), e_plus, u);
  const std::string expected =
      "\"name\",\"note\",\"T\"\n"
      "\"Ada\",\"said \"\"hi\"\"\",\"[0, 5)\"\n"
      "\"Bob\",\"plain\",\"[2, 9)\"\n";
  EXPECT_EQ(csv, expected);
}

TEST(PrinterTest, CsvOfEmptyRelationIsHeaderOnly) {
  Universe u;
  Schema schema;
  const RelationId e =
      *schema.AddRelation("E", {"a", "b"}, SchemaRole::kSource);
  Instance inst(&schema);
  EXPECT_EQ(RenderRelationCsv(inst, e, u), "\"a\",\"b\"\n");
}

}  // namespace
}  // namespace tdx
