#include "src/common/value.h"

#include <gtest/gtest.h>

namespace tdx {
namespace {

TEST(ValueTest, ConstantIdentity) {
  Universe u;
  const Value ada1 = u.Constant("Ada");
  const Value ada2 = u.Constant("Ada");
  const Value bob = u.Constant("Bob");
  EXPECT_EQ(ada1, ada2);
  EXPECT_NE(ada1, bob);
  EXPECT_TRUE(ada1.is_constant());
  EXPECT_FALSE(ada1.is_any_null());
}

TEST(ValueTest, FreshNullsAreDistinct) {
  Universe u;
  const Value n1 = u.FreshNull();
  const Value n2 = u.FreshNull();
  EXPECT_NE(n1, n2);
  EXPECT_TRUE(n1.is_null());
  EXPECT_TRUE(n1.is_any_null());
  EXPECT_FALSE(n1.is_annotated_null());
}

TEST(ValueTest, AnnotatedNullIdentityIncludesAnnotation) {
  Universe u;
  const Value n = u.FreshAnnotatedNull(Interval(0, 5));
  const Value same(Value::AnnotatedNull(n.null_id(), Interval(0, 5)));
  const Value other_span(Value::AnnotatedNull(n.null_id(), Interval(0, 3)));
  EXPECT_EQ(n, same);
  EXPECT_NE(n, other_span);
  EXPECT_TRUE(n.is_annotated_null());
  EXPECT_TRUE(n.is_any_null());
}

TEST(ValueTest, ReannotatedKeepsNullId) {
  Universe u;
  const Value n = u.FreshAnnotatedNull(Interval(0, 5));
  const Value frag = n.Reannotated(Interval(0, 2));
  EXPECT_EQ(frag.null_id(), n.null_id());
  EXPECT_EQ(frag.interval(), Interval(0, 2));
}

TEST(ValueTest, IntervalValues) {
  const Value iv = Value::OfInterval(Interval(3, 7));
  EXPECT_TRUE(iv.is_interval());
  EXPECT_EQ(iv.interval(), Interval(3, 7));
  EXPECT_EQ(iv, Value::OfInterval(Interval(3, 7)));
  EXPECT_NE(iv, Value::OfInterval(Interval(3, 8)));
}

TEST(ValueTest, KindsNeverCompareEqual) {
  Universe u;
  const Value c = u.Constant("x");
  const Value n = u.FreshNull();
  const Value a = u.FreshAnnotatedNull(Interval(0, 1));
  const Value iv = Value::OfInterval(Interval(0, 1));
  EXPECT_NE(c, n);
  EXPECT_NE(c, a);
  EXPECT_NE(c, iv);
  EXPECT_NE(n, a);
  EXPECT_NE(n, iv);
  EXPECT_NE(a, iv);
}

TEST(ValueTest, HashConsistentWithEquality) {
  Universe u;
  ValueHash hash;
  const Value a1 = u.Constant("Ada");
  const Value a2 = u.Constant("Ada");
  EXPECT_EQ(hash(a1), hash(a2));
  const Value n = u.FreshAnnotatedNull(Interval(2, 9));
  EXPECT_EQ(hash(n), hash(Value::AnnotatedNull(n.null_id(), Interval(2, 9))));
}

// Section 4.1: proj_l(N^[s,e)) = N_l — deterministic, distinct per l, and
// annotation-independent for fragments of the same null.
TEST(ProjectionTest, DeterministicPerTimePoint) {
  Universe u;
  const Value n = u.FreshAnnotatedNull(Interval(8, kTimeInfinity));
  const Value n8a = u.ProjectNull(n, 8);
  const Value n8b = u.ProjectNull(n, 8);
  const Value n9 = u.ProjectNull(n, 9);
  EXPECT_EQ(n8a, n8b);
  EXPECT_NE(n8a, n9);
  EXPECT_TRUE(n8a.is_null());
}

TEST(ProjectionTest, FragmentsProjectOntoSameSequence) {
  Universe u;
  const Value n = u.FreshAnnotatedNull(Interval(0, 10));
  const Value left = n.Reannotated(Interval(0, 5));
  const Value right = n.Reannotated(Interval(5, 10));
  EXPECT_EQ(u.ProjectNull(left, 4), u.ProjectNull(n, 4));
  EXPECT_EQ(u.ProjectNull(right, 7), u.ProjectNull(n, 7));
}

TEST(ProjectionTest, DistinctNullsProjectDistinctly) {
  Universe u;
  const Value n = u.FreshAnnotatedNull(Interval(0, 10));
  const Value m = u.FreshAnnotatedNull(Interval(0, 10));
  EXPECT_NE(u.ProjectNull(n, 3), u.ProjectNull(m, 3));
}

TEST(RenderTest, RendersEveryKind) {
  Universe u;
  EXPECT_EQ(u.Render(u.Constant("Ada")), "Ada");
  const Value n = u.FreshNull("N");
  EXPECT_EQ(u.Render(n), "N");
  const Value m = u.FreshAnnotatedNull("M", Interval(8, kTimeInfinity));
  EXPECT_EQ(u.Render(m), "M^[8, inf)");
  EXPECT_EQ(u.Render(Value::OfInterval(Interval(1, 2))), "[1, 2)");
}

TEST(RenderTest, GeneratedNullNames) {
  Universe u;
  const Value n0 = u.FreshNull();
  const Value n1 = u.FreshNull();
  EXPECT_EQ(u.Render(n0), "N0");
  EXPECT_EQ(u.Render(n1), "N1");
}

TEST(RenderTest, ProjectedNullNameMentionsTimePoint) {
  Universe u;
  const Value m = u.FreshAnnotatedNull("M", Interval(3, 6));
  EXPECT_EQ(u.Render(u.ProjectNull(m, 4)), "M_4");
}

TEST(ValueOrderTest, TotalOrderIsStrict) {
  Universe u;
  std::vector<Value> values = {
      u.Constant("b"), u.Constant("a"), u.FreshNull(),
      u.FreshAnnotatedNull(Interval(0, 2)), Value::OfInterval(Interval(1, 4)),
  };
  std::sort(values.begin(), values.end());
  for (std::size_t i = 1; i < values.size(); ++i) {
    EXPECT_TRUE(values[i - 1] < values[i] || values[i - 1] == values[i]);
    EXPECT_FALSE(values[i] < values[i - 1]);
  }
}

}  // namespace
}  // namespace tdx
