// Target tgds under weak acyclicity — the tdx extension restoring the full
// classical data exchange setting (the paper's Section 1 exclusion is only
// about chase termination, which weak acyclicity guarantees).

#include <gtest/gtest.h>

#include "src/core/align.h"
#include "src/core/cchase.h"
#include "src/gen/workload.h"
#include "src/relational/chase.h"
#include "tests/test_util.h"

namespace tdx {
namespace {

using ::tdx::testing::HasConcreteFact;
using ::tdx::testing::ParseOrDie;

Atom MakeAtom(RelationId rel, std::vector<Term> terms) {
  Atom atom;
  atom.rel = rel;
  atom.terms = std::move(terms);
  return atom;
}

TEST(WeakAcyclicityTest, NoTargetTgdsIsTriviallyAcyclic) {
  Schema schema;
  EXPECT_TRUE(CheckWeaklyAcyclic({}, schema).ok());
}

TEST(WeakAcyclicityTest, FullTgdsAreAlwaysAcyclic) {
  // Transitive closure: Edge(x, y) & Edge(y, z) -> Edge(x, z) has a regular
  // cycle but no existential edge — weakly acyclic.
  Schema schema;
  const RelationId edge =
      *schema.AddRelation("Edge", {"a", "b"}, SchemaRole::kTarget);
  Tgd tc;
  tc.body.atoms = {MakeAtom(edge, {Term::Var(0), Term::Var(1)}),
                   MakeAtom(edge, {Term::Var(1), Term::Var(2)})};
  tc.head.atoms = {MakeAtom(edge, {Term::Var(0), Term::Var(2)})};
  tc.body.num_vars = tc.head.num_vars = 3;
  ASSERT_TRUE(tc.Finalize().ok());
  EXPECT_TRUE(CheckWeaklyAcyclic({tc}, schema).ok());
}

TEST(WeakAcyclicityTest, ExistentialSelfFeedIsRejected) {
  // E(x, y) -> exists z: E(y, z): the classic non-terminating tgd; the
  // special edge (E,2) => (E,2) forms a cycle through itself.
  Schema schema;
  const RelationId e =
      *schema.AddRelation("E", {"a", "b"}, SchemaRole::kTarget);
  Tgd loop;
  loop.body.atoms = {MakeAtom(e, {Term::Var(0), Term::Var(1)})};
  loop.head.atoms = {MakeAtom(e, {Term::Var(1), Term::Var(2)})};
  loop.body.num_vars = loop.head.num_vars = 3;
  ASSERT_TRUE(loop.Finalize().ok());
  const Status status = CheckWeaklyAcyclic({loop}, schema);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(WeakAcyclicityTest, HeadDisconnectedExistentialIsAcyclic) {
  // N(x) -> exists y: N(y) draws NO edges (x does not occur in the head),
  // so it is weakly acyclic — and indeed the restricted chase never fires
  // it: any N fact already witnesses the head.
  Schema schema;
  const RelationId n = *schema.AddRelation("N", {"a"}, SchemaRole::kTarget);
  Tgd tgd;
  tgd.body.atoms = {MakeAtom(n, {Term::Var(0)})};
  tgd.head.atoms = {MakeAtom(n, {Term::Var(1)})};
  tgd.body.num_vars = tgd.head.num_vars = 2;
  ASSERT_TRUE(tgd.Finalize().ok());
  EXPECT_TRUE(CheckWeaklyAcyclic({tgd}, schema).ok());

  // And the chase terminates immediately with no new facts.
  Universe u;
  Mapping mapping;
  mapping.target_tgds = {tgd};
  Instance source(&schema);
  auto outcome = ChaseSnapshot(source, mapping, &u);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->kind, ChaseResultKind::kSuccess);
}

TEST(WeakAcyclicityTest, ExistentialChainWithoutCycleIsFine) {
  // A(x) -> exists y: B(x, y); B(x, y) -> C(y): a DAG of positions.
  Schema schema;
  const RelationId a = *schema.AddRelation("A", {"v"}, SchemaRole::kTarget);
  const RelationId b =
      *schema.AddRelation("B", {"v", "w"}, SchemaRole::kTarget);
  const RelationId c = *schema.AddRelation("C", {"w"}, SchemaRole::kTarget);
  Tgd t1;
  t1.body.atoms = {MakeAtom(a, {Term::Var(0)})};
  t1.head.atoms = {MakeAtom(b, {Term::Var(0), Term::Var(1)})};
  t1.body.num_vars = t1.head.num_vars = 2;
  ASSERT_TRUE(t1.Finalize().ok());
  Tgd t2;
  t2.body.atoms = {MakeAtom(b, {Term::Var(0), Term::Var(1)})};
  t2.head.atoms = {MakeAtom(c, {Term::Var(1)})};
  t2.body.num_vars = t2.head.num_vars = 2;
  ASSERT_TRUE(t2.Finalize().ok());
  EXPECT_TRUE(CheckWeaklyAcyclic({t1, t2}, schema).ok());
}

TEST(WeakAcyclicityTest, TwoTgdExistentialCycleIsRejected) {
  // B(x, y) -> exists z: D(y, z); D(x, y) -> exists z: B(y, z).
  Schema schema;
  const RelationId b =
      *schema.AddRelation("B", {"v", "w"}, SchemaRole::kTarget);
  const RelationId d =
      *schema.AddRelation("D", {"v", "w"}, SchemaRole::kTarget);
  Tgd t1;
  t1.body.atoms = {MakeAtom(b, {Term::Var(0), Term::Var(1)})};
  t1.head.atoms = {MakeAtom(d, {Term::Var(1), Term::Var(2)})};
  t1.body.num_vars = t1.head.num_vars = 3;
  ASSERT_TRUE(t1.Finalize().ok());
  Tgd t2;
  t2.body.atoms = {MakeAtom(d, {Term::Var(0), Term::Var(1)})};
  t2.head.atoms = {MakeAtom(b, {Term::Var(1), Term::Var(2)})};
  t2.body.num_vars = t2.head.num_vars = 3;
  ASSERT_TRUE(t2.Finalize().ok());
  EXPECT_FALSE(CheckWeaklyAcyclic({t1, t2}, schema).ok());
}

TEST(TargetTgdTest, ParserRejectsNonWeaklyAcyclicProgram) {
  auto r = ParseProgram(R"(
    source A(x, y);
    target N(x, y);
    tgd A(x, y) -> N(x, y);
    ttgd N(x, y) -> exists z: N(y, z);
  )");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("weakly acyclic"), std::string::npos);
}

TEST(TargetTgdTest, TransitiveClosureOverTime) {
  // Flight connectivity: reachability is closed transitively, per snapshot.
  auto program = ParseOrDie(R"(
    source Flight(from, to);
    target Reach(from, to);
    tgd  f1: Flight(x, y) -> Reach(x, y);
    ttgd t1: Reach(x, y) & Reach(y, z) -> Reach(x, z);

    fact Flight("a", "b") @ [0, 10);
    fact Flight("b", "c") @ [5, 10);
    fact Flight("c", "d") @ [0, 3);
  )");
  auto chase = CChase(program->source, program->lifted, &program->universe);
  ASSERT_TRUE(chase.ok()) << chase.status();
  ASSERT_EQ(chase->kind, ChaseResultKind::kSuccess);
  const Universe& u = program->universe;
  // a->c only while both hops hold: [5, 10).
  EXPECT_TRUE(HasConcreteFact(chase->target, u, "Reach+", {"a", "c"},
                              Interval(5, 10)));
  // b->d never: b->c holds [5,10), c->d holds [0,3) — no overlap.
  const RelationId reach = *program->schema.Find("Reach+");
  for (const FactView f : chase->target.facts().facts(reach)) {
    const bool bd = u.Render(f.arg(0)) == "b" && u.Render(f.arg(1)) == "d";
    EXPECT_FALSE(bd) << f.ToString(program->schema, u);
  }
}

TEST(TargetTgdTest, ExistentialTargetTgdMintsAnnotatedNulls) {
  // Every reachable city has some (unknown) hub assignment per snapshot.
  auto program = ParseOrDie(R"(
    source Flight(from, to);
    target Reach(from, to);
    target Hub(city, hub);
    tgd  Flight(x, y) -> Reach(x, y);
    ttgd Reach(x, y) -> exists h: Hub(y, h);
    fact Flight("a", "b") @ [2, 6);
  )");
  auto chase = CChase(program->source, program->lifted, &program->universe);
  ASSERT_TRUE(chase.ok()) << chase.status();
  ASSERT_EQ(chase->kind, ChaseResultKind::kSuccess);
  const RelationId hub = *program->schema.Find("Hub+");
  ASSERT_EQ(chase->target.facts().facts(hub).size(), 1u);
  const FactView f = chase->target.facts().facts(hub)[0];
  EXPECT_TRUE(f.arg(1).is_annotated_null());
  EXPECT_EQ(f.arg(1).interval(), Interval(2, 6));
  EXPECT_EQ(f.interval(), Interval(2, 6));
  EXPECT_TRUE(chase->target.Validate().ok());
}

TEST(TargetTgdTest, EgdAndTargetTgdInterleave) {
  // The target tgd copies values; the egd then forces agreement, which in
  // turn satisfies later triggers.
  auto program = ParseOrDie(R"(
    source A(x, y);
    target P(x, y);
    target Q(x, y);
    tgd  A(x, y) -> P(x, y);
    ttgd P(x, y) -> exists z: Q(x, z);
    egd  Q(x, y) & P(x, y2) -> y = y2;
    fact A("k", "v") @ [0, 4);
  )");
  auto chase = CChase(program->source, program->lifted, &program->universe);
  ASSERT_TRUE(chase.ok()) << chase.status();
  ASSERT_EQ(chase->kind, ChaseResultKind::kSuccess);
  // Q's existential z was merged with "v" by the egd.
  EXPECT_TRUE(HasConcreteFact(chase->target, program->universe, "Q+",
                              {"k", "v"}, Interval(0, 4)));
}

TEST(TargetTgdTest, SnapshotChaseHandlesTargetTgds) {
  // The per-snapshot chase (abstract side) must apply target tgds too.
  Schema schema;
  Universe u;
  const RelationId flight =
      *schema.AddRelation("Flight", {"a", "b"}, SchemaRole::kSource);
  const RelationId reach =
      *schema.AddRelation("Reach", {"a", "b"}, SchemaRole::kTarget);
  Tgd copy;
  copy.body.atoms = {MakeAtom(flight, {Term::Var(0), Term::Var(1)})};
  copy.head.atoms = {MakeAtom(reach, {Term::Var(0), Term::Var(1)})};
  copy.body.num_vars = copy.head.num_vars = 2;
  ASSERT_TRUE(copy.Finalize().ok());
  Tgd trans;
  trans.body.atoms = {MakeAtom(reach, {Term::Var(0), Term::Var(1)}),
                      MakeAtom(reach, {Term::Var(1), Term::Var(2)})};
  trans.head.atoms = {MakeAtom(reach, {Term::Var(0), Term::Var(2)})};
  trans.body.num_vars = trans.head.num_vars = 3;
  ASSERT_TRUE(trans.Finalize().ok());
  Mapping mapping;
  mapping.st_tgds = {copy};
  mapping.target_tgds = {trans};
  ASSERT_TRUE(ValidateMapping(mapping, schema).ok());

  Instance source(&schema);
  source.Insert(flight, {u.Constant("a"), u.Constant("b")});
  source.Insert(flight, {u.Constant("b"), u.Constant("c")});
  source.Insert(flight, {u.Constant("c"), u.Constant("d")});
  auto outcome = ChaseSnapshot(source, mapping, &u);
  ASSERT_TRUE(outcome.ok());
  ASSERT_EQ(outcome->kind, ChaseResultKind::kSuccess);
  // Full transitive closure of the 3-chain: 3 + 2 + 1 = 6 pairs.
  EXPECT_EQ(outcome->target.facts(reach).size(), 6u);
  EXPECT_TRUE(outcome->target.Contains(
      Fact(reach, {u.Constant("a"), u.Constant("d")})));
}

TEST(TargetTgdTest, Corollary20ExtendsToTargetTgds) {
  // The alignment theorem carries over: per-snapshot chase with target
  // tgds vs. the c-chase with target tgds.
  auto program = ParseOrDie(R"(
    source Flight(from, to);
    target Reach(from, to);
    target Hub(city, hub);
    tgd  Flight(x, y) -> Reach(x, y);
    ttgd Reach(x, y) & Reach(y, z) -> Reach(x, z);
    ttgd Reach(x, y) -> exists h: Hub(y, h);

    fact Flight("a", "b") @ [0, 10);
    fact Flight("b", "c") @ [5, 15);
    fact Flight("c", "a") @ [8, 12);
  )");
  auto report = VerifyCorollary20(program->source, program->mapping,
                                  program->lifted, &program->universe);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->outcome_agreed);
  EXPECT_TRUE(report->aligned());
}

TEST(TargetTgdTest, FlightWorkloadsAlignAcrossSeeds) {
  // Randomized flight schedules: transitive closure per snapshot must
  // agree with the abstract semantics for every seed.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    FlightConfig cfg;
    cfg.num_flights = 15;
    cfg.num_airports = 6;
    cfg.horizon = 12;
    cfg.max_interval_length = 5;
    cfg.seed = seed;
    auto w = MakeFlightWorkload(cfg);
    auto report =
        VerifyCorollary20(w->source, w->mapping, w->lifted, &w->universe);
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_TRUE(report->aligned()) << "seed=" << seed;
  }
}

TEST(TargetTgdTest, TargetTgdsRejectTemporalOperators) {
  auto r = ParseProgram(R"(
    source A(x);
    target T(x);
    tgd A(x) -> T(x);
    ttgd once_past(T(x)) -> T(x);
  )");
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace tdx
