// Fault injection: every named TDX_FAULT_POINT / PokeFault site must be
// reachable from its engine's public entry point, and an injected fault must
// surface as a structured abort (kAborted with kInjectedFault, or the armed
// Status itself) — never as a claimed solution.

#include "src/common/resource.h"

#include <atomic>
#include <cstddef>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/thread_pool.h"
#include "src/core/cchase.h"
#include "src/core/naive_eval.h"
#include "src/core/normalize.h"
#include "src/core/query.h"
#include "src/parser/parser.h"
#include "src/temporal/abstract_chase.h"
#include "src/temporal/abstract_instance.h"
#include "src/temporal/snapshot.h"
#include "tests/test_util.h"

namespace tdx {
namespace {

using ::tdx::testing::kPaperProgram;
using ::tdx::testing::ParseOrDie;

// Turns a site name into a valid gtest parameterized-test suffix.
std::string SiteTestName(
    const ::testing::TestParamInfo<const char*>& param_info) {
  std::string name = param_info.param;
  for (char& c : name) {
    if (c == '/' || c == '-') c = '_';
  }
  return name;
}

class FaultInjectionTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultRegistry::DisarmAll(); }

  static Status Injected() { return Status::Internal("injected fault"); }
};

// ---------------------------------------------------------------------------
// Registry mechanics
// ---------------------------------------------------------------------------

TEST_F(FaultInjectionTest, UnarmedRegistryIsInert) {
  EXPECT_FALSE(FaultRegistry::AnyArmed());
  EXPECT_TRUE(FaultRegistry::Fire("nonexistent/site").ok());
}

TEST_F(FaultInjectionTest, ArmedSiteFiresOnceThenDisarms) {
  FaultRegistry::Arm("test/site", Injected());
  EXPECT_TRUE(FaultRegistry::AnyArmed());
  EXPECT_EQ(FaultRegistry::Fire("test/site"), Injected());
  // Consumed: the second hit passes through.
  EXPECT_TRUE(FaultRegistry::Fire("test/site").ok());
  EXPECT_FALSE(FaultRegistry::AnyArmed());
  EXPECT_EQ(FaultRegistry::HitCount("test/site"), 2u);
}

TEST_F(FaultInjectionTest, SkipCountDelaysTheFault) {
  FaultRegistry::Arm("test/site", Injected(), /*skip_count=*/2);
  EXPECT_TRUE(FaultRegistry::Fire("test/site").ok());
  EXPECT_TRUE(FaultRegistry::Fire("test/site").ok());
  EXPECT_EQ(FaultRegistry::Fire("test/site"), Injected());
}

TEST_F(FaultInjectionTest, ScopedFaultDisarmsOnExit) {
  {
    ScopedFault fault("test/scoped", Injected());
    EXPECT_TRUE(FaultRegistry::AnyArmed());
  }
  EXPECT_FALSE(FaultRegistry::AnyArmed());
  EXPECT_TRUE(FaultRegistry::Fire("test/scoped").ok());
}

TEST_F(FaultInjectionTest, OtherSitesAreUnaffected) {
  ScopedFault fault("test/site-a", Injected());
  EXPECT_TRUE(FaultRegistry::Fire("test/site-b").ok());
  EXPECT_EQ(FaultRegistry::Fire("test/site-a"), Injected());
}

// ---------------------------------------------------------------------------
// The c-chase sites: each phase aborts with kInjectedFault, and an aborted
// chase never claims success.
// ---------------------------------------------------------------------------

class CChaseFaultTest : public FaultInjectionTest,
                        public ::testing::WithParamInterface<const char*> {};

TEST_P(CChaseFaultTest, SiteAbortsTheChase) {
  ScopedFault fault(GetParam(), Injected());
  auto program = ParseOrDie(kPaperProgram);
  auto outcome =
      CChase(program->source, program->lifted, &program->universe, {});
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->kind, ChaseResultKind::kAborted) << GetParam();
  EXPECT_EQ(outcome->abort_dimension, ResourceDimension::kInjectedFault);
  EXPECT_NE(outcome->abort_reason.find("injected fault"), std::string::npos);
  EXPECT_GE(FaultRegistry::HitCount(GetParam()), 1u);
}

INSTANTIATE_TEST_SUITE_P(AllSites, CChaseFaultTest,
                         ::testing::Values("cchase/normalize-source",
                                           "cchase/tgd-phase",
                                           "cchase/normalize-target",
                                           "cchase/egd-fixpoint"),
                         SiteTestName);

TEST_F(FaultInjectionTest, LatePhaseFaultPreservesPartialProgress) {
  ScopedFault fault("cchase/egd-fixpoint", Injected());
  auto program = ParseOrDie(kPaperProgram);
  auto outcome =
      CChase(program->source, program->lifted, &program->universe, {});
  ASSERT_TRUE(outcome.ok());
  ASSERT_EQ(outcome->kind, ChaseResultKind::kAborted);
  // The fault hit after the tgd phase: stats and the partial target survive
  // for diagnosis.
  EXPECT_GT(outcome->stats.tgd_fires, 0u);
  EXPECT_GT(outcome->target.size(), 0u);
}

// ---------------------------------------------------------------------------
// The per-snapshot chase sites
// ---------------------------------------------------------------------------

class SnapshotChaseFaultTest
    : public FaultInjectionTest,
      public ::testing::WithParamInterface<const char*> {};

TEST_P(SnapshotChaseFaultTest, SiteAbortsTheChase) {
  ScopedFault fault(GetParam(), Injected());
  auto program = ParseOrDie(kPaperProgram);
  auto snapshot = SnapshotAt(program->source, 2015, &program->universe);
  ASSERT_TRUE(snapshot.ok());
  auto outcome =
      ChaseSnapshot(*snapshot, program->mapping, &program->universe);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->kind, ChaseResultKind::kAborted) << GetParam();
  EXPECT_EQ(outcome->abort_dimension, ResourceDimension::kInjectedFault);
}

INSTANTIATE_TEST_SUITE_P(AllSites, SnapshotChaseFaultTest,
                         ::testing::Values("chase/tgd-phase",
                                           "chase/egd-fixpoint"),
                         SiteTestName);

// ---------------------------------------------------------------------------
// Normalizer sites (fire only under a governed run, i.e. with a guard)
// ---------------------------------------------------------------------------

TEST_F(FaultInjectionTest, NaiveNormalizeSiteTripsTheGuard) {
  ScopedFault fault("normalize/naive", Injected());
  auto program = ParseOrDie(kPaperProgram);
  ResourceGuard guard;
  NormalizeStats stats;
  (void)NaiveNormalize(program->source, &stats, &guard);
  EXPECT_TRUE(guard.tripped());
  EXPECT_EQ(guard.dimension(), ResourceDimension::kInjectedFault);
}

TEST_F(FaultInjectionTest, Algorithm1SiteTripsTheGuard) {
  ScopedFault fault("normalize/algorithm1", Injected());
  auto program = ParseOrDie(kPaperProgram);
  ResourceGuard guard;
  NormalizeStats stats;
  (void)Normalize(program->source, program->lifted.TgdBodies(), &stats,
                  &guard);
  EXPECT_TRUE(guard.tripped());
  EXPECT_EQ(guard.dimension(), ResourceDimension::kInjectedFault);
}

TEST_F(FaultInjectionTest, UngovernedNormalizeIgnoresTheSite) {
  // Without a guard there is no abort channel; the site must not fire (and
  // must not crash).
  ScopedFault fault("normalize/naive", Injected());
  auto program = ParseOrDie(kPaperProgram);
  NormalizeStats stats;
  const ConcreteInstance out =
      NaiveNormalize(program->source, &stats, nullptr);
  EXPECT_GT(out.size(), 0u);
}

// ---------------------------------------------------------------------------
// Status-returning sites: naive evaluation and the parser
// ---------------------------------------------------------------------------

TEST_F(FaultInjectionTest, NaiveEvalSiteReturnsTheArmedStatus) {
  auto program = ParseOrDie(kPaperProgram);
  auto chase = CChase(program->source, program->lifted, &program->universe, {});
  ASSERT_TRUE(chase.ok());
  ASSERT_EQ(chase->kind, ChaseResultKind::kSuccess);
  auto query = program->FindQuery("salaries");
  ASSERT_TRUE(query.ok());
  auto lifted = LiftUnionQuery(**query, program->schema);
  ASSERT_TRUE(lifted.ok());

  ScopedFault fault("naive-eval/normalize", Injected());
  auto answers = NaiveEvaluateConcrete(*lifted, chase->target);
  ASSERT_FALSE(answers.ok());
  EXPECT_EQ(answers.status(), Injected());
}

TEST_F(FaultInjectionTest, ParserSiteReturnsTheArmedStatus) {
  ScopedFault fault("parser/statement", Injected());
  auto parsed = ParseProgram(kPaperProgram);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status(), Injected());
}

TEST_F(FaultInjectionTest, ParserSiteWithSkipCountFailsMidProgram) {
  // Skip the first three statements, then fail: proves the site is hit once
  // per statement and the skip machinery composes with a real engine.
  ScopedFault fault("parser/statement", Injected(), /*skip_count=*/3);
  auto parsed = ParseProgram(kPaperProgram);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status(), Injected());
  EXPECT_GE(FaultRegistry::HitCount("parser/statement"), 4u);
}

// ---------------------------------------------------------------------------
// Infrastructure sites: pool dispatch drops and merge-seam kills
// ---------------------------------------------------------------------------

TEST_F(FaultInjectionTest, DispatchSiteDropsExactlyOneTaskInline) {
  ScopedFault fault("thread-pool/dispatch", Injected());
  std::vector<char> ran(8, 0);
  ParallelFor(1, ran.size(), [&](std::size_t i) { ran[i] = 1; });
  std::size_t executed = 0;
  for (const char r : ran) executed += static_cast<std::size_t>(r);
  // One task was "killed" between dequeue and execution; the rest ran.
  EXPECT_EQ(executed, ran.size() - 1);
}

TEST_F(FaultInjectionTest, DispatchSiteDropsExactlyOneTaskPooled) {
  ScopedFault fault("thread-pool/dispatch", Injected());
  std::vector<std::atomic<char>> ran(16);
  for (auto& r : ran) r.store(0);
  ParallelFor(4, ran.size(), [&](std::size_t i) { ran[i].store(1); });
  std::size_t executed = 0;
  for (const auto& r : ran) executed += static_cast<std::size_t>(r.load());
  EXPECT_EQ(executed, ran.size() - 1);
}

TEST_F(FaultInjectionTest, AbstractMergeSiteAbortsWithPieceSpan) {
  auto program = ParseOrDie(kPaperProgram);
  auto ia = AbstractInstance::FromConcrete(program->source);
  ASSERT_TRUE(ia.ok()) << ia.status();

  ScopedFault fault("abstract-chase/merge", Injected());
  auto outcome =
      AbstractChase(*ia, program->mapping, &program->universe);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome->kind, ChaseResultKind::kAborted);
  EXPECT_EQ(outcome->abort_dimension, ResourceDimension::kInjectedFault);
  EXPECT_TRUE(outcome->failure_span.has_value());
}

TEST_F(FaultInjectionTest, RegisteredSiteListStaysReachable) {
  // Every site in kRegisteredFaultSites must still exist in the codebase;
  // the chaos harness (tests/chaos_resume_test.cc, CI chaos-resume) sweeps
  // this list. A site renamed without updating the registry would silently
  // drop out of the sweep — pin the count and spot-check membership.
  std::size_t n = 0;
  bool has_dispatch = false, has_merge = false, has_incremental = false;
  for (const std::string_view site : kRegisteredFaultSites) {
    ++n;
    if (site == "thread-pool/dispatch") has_dispatch = true;
    if (site == "abstract-chase/merge") has_merge = true;
    if (site == "normalize/incremental") has_incremental = true;
  }
  EXPECT_EQ(n, 13u);
  EXPECT_TRUE(has_dispatch);
  EXPECT_TRUE(has_merge);
  EXPECT_TRUE(has_incremental);
}

}  // namespace
}  // namespace tdx
