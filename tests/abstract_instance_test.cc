#include "src/temporal/abstract_instance.h"

#include <gtest/gtest.h>

#include "src/temporal/snapshot.h"

namespace tdx {
namespace {

class AbstractInstanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    e_plus_ = *schema_.AddRelationPair("E", {"name", "company"},
                                       SchemaRole::kSource);
    e_ = *schema_.TwinOf(e_plus_);
  }

  ConcreteInstance PaperE() {
    // The E+ relation of Figure 4.
    ConcreteInstance ic(&schema_);
    EXPECT_TRUE(ic.Add(e_plus_, {u_.Constant("Ada"), u_.Constant("IBM")},
                       Interval(2012, 2014))
                    .ok());
    EXPECT_TRUE(ic.Add(e_plus_, {u_.Constant("Ada"), u_.Constant("Google")},
                       Interval::FromStart(2014))
                    .ok());
    EXPECT_TRUE(ic.Add(e_plus_, {u_.Constant("Bob"), u_.Constant("IBM")},
                       Interval(2013, 2018))
                    .ok());
    return ic;
  }

  Universe u_;
  Schema schema_;
  RelationId e_plus_ = 0, e_ = 0;
};

TEST_F(AbstractInstanceTest, FromConcreteCoversTimeline) {
  auto ia = AbstractInstance::FromConcrete(PaperE());
  ASSERT_TRUE(ia.ok());
  EXPECT_TRUE(ia->ValidateCover().ok());
  // Boundaries: 0, 2012, 2013, 2014, 2018.
  EXPECT_EQ(ia->Boundaries(),
            (std::vector<TimePoint>{0, 2012, 2013, 2014, 2018}));
  EXPECT_EQ(ia->pieces().size(), 5u);
  EXPECT_TRUE(ia->pieces().back().span.unbounded());
}

TEST_F(AbstractInstanceTest, PiecesHoldConstantSnapshots) {
  auto ia = AbstractInstance::FromConcrete(PaperE());
  ASSERT_TRUE(ia.ok());
  // Piece [2013, 2014): Ada@IBM and Bob@IBM (Figure 1, year 2013).
  const AbstractPiece& piece = ia->pieces()[2];
  EXPECT_EQ(piece.span, Interval(2013, 2014));
  EXPECT_EQ(piece.snapshot.size(), 2u);
  EXPECT_TRUE(piece.snapshot.Contains(
      Fact(e_, {u_.Constant("Ada"), u_.Constant("IBM")})));
  EXPECT_TRUE(piece.snapshot.Contains(
      Fact(e_, {u_.Constant("Bob"), u_.Constant("IBM")})));
}

TEST_F(AbstractInstanceTest, AtAgreesWithSnapshotAt) {
  const ConcreteInstance ic = PaperE();
  auto ia = AbstractInstance::FromConcrete(ic);
  ASSERT_TRUE(ia.ok());
  for (TimePoint l : {0u, 2011u, 2012u, 2013u, 2015u, 2018u, 2030u}) {
    auto direct = SnapshotAt(ic, l, &u_);
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(ia->At(l, &u_), *direct) << "l=" << l;
  }
}

TEST_F(AbstractInstanceTest, RefinedAtPreservesSnapshots) {
  auto ia = AbstractInstance::FromConcrete(PaperE());
  ASSERT_TRUE(ia.ok());
  const AbstractInstance refined = ia->RefinedAt({2013, 2015, 2016, 2025});
  EXPECT_TRUE(refined.ValidateCover().ok());
  EXPECT_GT(refined.pieces().size(), ia->pieces().size());
  for (TimePoint l : {2012u, 2014u, 2015u, 2016u, 2026u}) {
    EXPECT_EQ(refined.At(l, &u_), ia->At(l, &u_)) << "l=" << l;
  }
}

TEST_F(AbstractInstanceTest, ValidateCoverRejectsGaps) {
  AbstractInstance ia(&schema_);
  ia.AddPiece(Interval(0, 5), Instance(&schema_));
  ia.AddPiece(Interval::FromStart(7), Instance(&schema_));
  EXPECT_FALSE(ia.ValidateCover().ok());
}

TEST_F(AbstractInstanceTest, ValidateCoverRejectsBoundedTail) {
  AbstractInstance ia(&schema_);
  ia.AddPiece(Interval(0, 5), Instance(&schema_));
  EXPECT_FALSE(ia.ValidateCover().ok());
}

TEST_F(AbstractInstanceTest, ValidateCoverRejectsLateStart) {
  AbstractInstance ia(&schema_);
  ia.AddPiece(Interval::FromStart(1), Instance(&schema_));
  EXPECT_FALSE(ia.ValidateCover().ok());
}

TEST_F(AbstractInstanceTest, ValidateCoverChecksAnnotationContainsSpan) {
  AbstractInstance ia(&schema_);
  Instance snapshot(&schema_);
  snapshot.Insert(e_, {u_.Constant("Ada"),
                       u_.FreshAnnotatedNull(Interval(2, 3))});
  ia.AddPiece(Interval(0, 5), snapshot);
  ia.AddPiece(Interval::FromStart(5), Instance(&schema_));
  EXPECT_FALSE(ia.ValidateCover().ok());
}

TEST_F(AbstractInstanceTest, LabeledNullSharedAcrossRefinedPieces) {
  // A labeled null means "the same unknown at every snapshot of the piece";
  // refinement must not change that (Example 2's J1 shape).
  AbstractInstance ia(&schema_);
  Instance snapshot(&schema_);
  const Value n = u_.FreshNull();
  snapshot.Insert(e_, {u_.Constant("Ada"), n});
  ia.AddPiece(Interval(0, 4), snapshot);
  ia.AddPiece(Interval::FromStart(4), Instance(&schema_));
  ASSERT_TRUE(ia.ValidateCover().ok());
  const AbstractInstance refined = ia.RefinedAt({2});
  const Instance at1 = refined.At(1, &u_);
  const Instance at3 = refined.At(3, &u_);
  ASSERT_EQ(at1.facts(e_).size(), 1u);
  EXPECT_EQ(at1.facts(e_)[0].arg(1), n);
  EXPECT_EQ(at3.facts(e_)[0].arg(1), n);
}

TEST_F(AbstractInstanceTest, AlignPiecesProducesMatchingSpans) {
  auto a = AbstractInstance::FromConcrete(PaperE());
  ASSERT_TRUE(a.ok());
  ConcreteInstance other(&schema_);
  ASSERT_TRUE(other.Add(e_plus_, {u_.Constant("Eve"), u_.Constant("ACME")},
                        Interval(2010, 2016))
                  .ok());
  auto b = AbstractInstance::FromConcrete(other);
  ASSERT_TRUE(b.ok());
  auto [ra, rb] = AlignPieces(*a, *b);
  ASSERT_EQ(ra.pieces().size(), rb.pieces().size());
  for (std::size_t i = 0; i < ra.pieces().size(); ++i) {
    EXPECT_EQ(ra.pieces()[i].span, rb.pieces()[i].span);
  }
}

TEST_F(AbstractInstanceTest, EmptyConcreteGivesSingleEmptyPiece) {
  ConcreteInstance empty(&schema_);
  auto ia = AbstractInstance::FromConcrete(empty);
  ASSERT_TRUE(ia.ok());
  ASSERT_EQ(ia->pieces().size(), 1u);
  EXPECT_EQ(ia->pieces()[0].span, Interval::FromStart(0));
  EXPECT_TRUE(ia->pieces()[0].snapshot.empty());
  EXPECT_TRUE(ia->ValidateCover().ok());
}

}  // namespace
}  // namespace tdx
