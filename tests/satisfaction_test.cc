#include "src/core/satisfaction.h"

#include <gtest/gtest.h>

#include "src/core/cchase.h"
#include "src/gen/workload.h"
#include "tests/test_util.h"

namespace tdx {
namespace {

using ::tdx::testing::ParseOrDie;

TEST(SatisfactionTest, ChaseResultIsASolution) {
  auto program = ParseOrDie(testing::kPaperProgram);
  auto chase = CChase(program->source, program->lifted, &program->universe);
  ASSERT_TRUE(chase.ok());
  ASSERT_EQ(chase->kind, ChaseResultKind::kSuccess);
  auto report = CheckSolution(program->source, chase->target,
                              program->mapping, &program->universe);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->satisfied) << report->violation;
}

TEST(SatisfactionTest, EmptyTargetViolatesTgds) {
  auto program = ParseOrDie(testing::kPaperProgram);
  ConcreteInstance empty(&program->schema);
  auto report = CheckSolution(program->source, empty, program->mapping,
                              &program->universe);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->satisfied);
  EXPECT_NE(report->violation.find("sigma1"), std::string::npos);
  ASSERT_TRUE(report->violation_time.has_value());
  EXPECT_EQ(*report->violation_time, 2012u);  // first populated snapshot
}

TEST(SatisfactionTest, RemovingAFactBreaksTheSolution) {
  auto program = ParseOrDie(testing::kPaperProgram);
  auto chase = CChase(program->source, program->lifted, &program->universe);
  ASSERT_TRUE(chase.ok());
  // Drop Bob's 13k row: sigma2 is then violated during [2015, 2018).
  ConcreteInstance damaged = chase->target;
  const RelationId emp_plus = *program->schema.Find("Emp+");
  Universe& u = program->universe;
  ASSERT_TRUE(damaged.mutable_facts().Erase(
      Fact(emp_plus, {u.Constant("Bob"), u.Constant("IBM"),
                      u.Constant("13k"),
                      Value::OfInterval(Interval(2015, 2018))})));
  auto report = CheckSolution(program->source, damaged, program->mapping,
                              &program->universe);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->satisfied);
  ASSERT_TRUE(report->violation_time.has_value());
  EXPECT_GE(*report->violation_time, 2015u);
  EXPECT_LT(*report->violation_time, 2018u);
}

TEST(SatisfactionTest, ExtraFactsRemainASolution) {
  auto program = ParseOrDie(testing::kPaperProgram);
  auto chase = CChase(program->source, program->lifted, &program->universe);
  ASSERT_TRUE(chase.ok());
  ConcreteInstance padded = chase->target;
  Universe& u = program->universe;
  const RelationId emp_plus = *program->schema.Find("Emp+");
  ASSERT_TRUE(padded
                  .Add(emp_plus,
                       {u.Constant("Eve"), u.Constant("ACME"),
                        u.Constant("5k")},
                       Interval(2000, 2005))
                  .ok());
  auto report = CheckSolution(program->source, padded, program->mapping,
                              &program->universe);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->satisfied);
}

TEST(SatisfactionTest, ExtraFactsCanBreakEgds) {
  auto program = ParseOrDie(testing::kPaperProgram);
  auto chase = CChase(program->source, program->lifted, &program->universe);
  ASSERT_TRUE(chase.ok());
  ConcreteInstance padded = chase->target;
  Universe& u = program->universe;
  const RelationId emp_plus = *program->schema.Find("Emp+");
  // A second salary for Ada at IBM during 2013: egd violation.
  ASSERT_TRUE(padded
                  .Add(emp_plus,
                       {u.Constant("Ada"), u.Constant("IBM"),
                        u.Constant("99k")},
                       Interval(2013, 2014))
                  .ok());
  auto report = CheckSolution(program->source, padded, program->mapping,
                              &program->universe);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->satisfied);
  EXPECT_NE(report->violation.find("e1"), std::string::npos);
}

TEST(SatisfactionTest, FragmentedSolutionStillSatisfies) {
  // Satisfaction is semantic: fragmenting the target's facts changes
  // nothing (the per-snapshot views are identical).
  auto program = ParseOrDie(testing::kPaperProgram);
  auto chase = CChase(program->source, program->lifted, &program->universe);
  ASSERT_TRUE(chase.ok());
  ConcreteInstance fragmented(&program->schema);
  chase->target.facts().ForEach([&](FactView f) {
    const Interval& iv = f.interval();
    if (!iv.unbounded() && *iv.length() >= 2) {
      const TimePoint mid = iv.start() + *iv.length() / 2;
      fragmented.mutable_facts().Insert(
          f.WithInterval(Interval(iv.start(), mid)));
      fragmented.mutable_facts().Insert(
          f.WithInterval(Interval(mid, iv.end())));
    } else {
      fragmented.mutable_facts().Insert(f);
    }
  });
  auto report = CheckSolution(program->source, fragmented, program->mapping,
                              &program->universe);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->satisfied) << report->violation;
}

TEST(SatisfactionTest, TargetTgdSolutionsChecked) {
  auto program = ParseOrDie(R"(
    source Flight(from, to);
    target Reach(from, to);
    tgd Flight(x, y) -> Reach(x, y);
    ttgd Reach(x, y) & Reach(y, z) -> Reach(x, z);
    fact Flight("a", "b") @ [0, 10);
    fact Flight("b", "c") @ [0, 10);
  )");
  auto chase = CChase(program->source, program->lifted, &program->universe);
  ASSERT_TRUE(chase.ok());
  auto good = CheckSolution(program->source, chase->target, program->mapping,
                            &program->universe);
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(good->satisfied);

  // Remove the transitive fact: the target tgd is violated.
  ConcreteInstance damaged = chase->target;
  const RelationId reach_plus = *program->schema.Find("Reach+");
  Universe& u = program->universe;
  ASSERT_TRUE(damaged.mutable_facts().Erase(
      Fact(reach_plus, {u.Constant("a"), u.Constant("c"),
                        Value::OfInterval(Interval(0, 10))})));
  auto bad = CheckSolution(program->source, damaged, program->mapping,
                           &program->universe);
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(bad->satisfied);
  EXPECT_NE(bad->violation.find("target tgd"), std::string::npos);
}

TEST(SatisfactionTest, FuzzChaseResultsAreAlwaysSolutions) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    RandomMappingConfig cfg;
    cfg.seed = seed;
    auto w = MakeRandomMappingWorkload(cfg);
    auto chase = CChase(w->source, w->lifted, &w->universe);
    ASSERT_TRUE(chase.ok());
    if (chase->kind == ChaseResultKind::kFailure) continue;
    auto report = CheckSolution(w->source, chase->target, w->mapping,
                                &w->universe);
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report->satisfied)
        << "seed=" << seed << ": " << report->violation;
  }
}

}  // namespace
}  // namespace tdx
