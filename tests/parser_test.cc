#include "src/parser/parser.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace tdx {
namespace {

using ::tdx::testing::HasConcreteFact;
using ::tdx::testing::ParseOrDie;

TEST(ParserTest, ParsesThePaperProgram) {
  auto program = ParseOrDie(testing::kPaperProgram);
  EXPECT_EQ(program->mapping.st_tgds.size(), 2u);
  EXPECT_EQ(program->mapping.egds.size(), 1u);
  EXPECT_EQ(program->lifted.st_tgds.size(), 2u);
  EXPECT_EQ(program->source.size(), 5u);
  EXPECT_EQ(program->queries.size(), 1u);
  EXPECT_TRUE(program->source.Validate().ok());
  EXPECT_TRUE(program->source.IsComplete());
  EXPECT_TRUE(HasConcreteFact(program->source, program->universe, "E+",
                              {"Ada", "IBM"}, Interval(2012, 2014)));
  EXPECT_TRUE(HasConcreteFact(program->source, program->universe, "S+",
                              {"Bob", "13k"}, Interval::FromStart(2015)));
}

TEST(ParserTest, TgdStructure) {
  auto program = ParseOrDie(testing::kPaperProgram);
  const Tgd& sigma1 = program->mapping.st_tgds[0];
  EXPECT_EQ(sigma1.label, "sigma1");
  EXPECT_EQ(sigma1.body.atoms.size(), 1u);
  EXPECT_EQ(sigma1.head.atoms.size(), 1u);
  EXPECT_EQ(sigma1.existential.size(), 1u);
  const Tgd& sigma2 = program->mapping.st_tgds[1];
  EXPECT_EQ(sigma2.body.atoms.size(), 2u);
  EXPECT_TRUE(sigma2.existential.empty());
}

TEST(ParserTest, LiftedMappingHasTemporalVars) {
  auto program = ParseOrDie(testing::kPaperProgram);
  for (const Tgd& tgd : program->lifted.st_tgds) {
    ASSERT_TRUE(tgd.temporal_var.has_value());
    for (const Atom& atom : tgd.body.atoms) {
      EXPECT_TRUE(program->schema.relation(atom.rel).temporal);
    }
  }
  ASSERT_EQ(program->lifted.egds.size(), 1u);
  EXPECT_TRUE(program->lifted.egds[0].temporal_var.has_value());
}

TEST(ParserTest, EgdEqualityVariables) {
  auto program = ParseOrDie(testing::kPaperProgram);
  const Egd& egd = program->mapping.egds[0];
  EXPECT_NE(egd.x1, egd.x2);
  EXPECT_EQ(egd.body.var_names[egd.x1], "s");
  EXPECT_EQ(egd.body.var_names[egd.x2], "s2");
}

TEST(ParserTest, AnonymousVariablesAreFresh) {
  auto program = ParseOrDie(R"(
    source E(a, b);
    target T(a, b);
    tgd E(x, y) -> T(x, y);
    query q(x): T(x, _) & T(_, x);
  )");
  const ConjunctiveQuery& q = program->queries[0].disjuncts[0];
  // x plus two distinct anonymous variables.
  EXPECT_EQ(q.body.num_vars, 3u);
}

TEST(ParserTest, NumbersAreConstants) {
  auto program = ParseOrDie(R"(
    source E(a);
    target T(a);
    tgd E(x) -> T(x);
    fact E(42) @ [0, 5);
  )");
  EXPECT_TRUE(HasConcreteFact(program->source, program->universe, "E+",
                              {"42"}, Interval(0, 5)));
}

TEST(ParserTest, ErrorsCarryPositions) {
  auto r1 = ParseProgram("source E(a;");
  ASSERT_FALSE(r1.ok());
  EXPECT_NE(r1.status().message().find("line 1"), std::string::npos);

  auto r2 = ParseProgram("bogus X;");
  EXPECT_FALSE(r2.ok());
}

TEST(ParserTest, UnknownRelationInAtomFails) {
  auto r = ParseProgram(R"(
    source E(a);
    target T(a);
    tgd Nope(x) -> T(x);
  )");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("Nope"), std::string::npos);
}

TEST(ParserTest, ArityMismatchFails) {
  auto r = ParseProgram(R"(
    source E(a, b);
    target T(a);
    tgd E(x) -> T(x);
  )");
  EXPECT_FALSE(r.ok());
}

TEST(ParserTest, WrongRoleFails) {
  auto r = ParseProgram(R"(
    source E(a);
    target T(a);
    tgd T(x) -> E(x);
  )");
  EXPECT_FALSE(r.ok());
}

TEST(ParserTest, EmptyIntervalFails) {
  auto r = ParseProgram(R"(
    source E(a);
    target T(a);
    tgd E(x) -> T(x);
    fact E("x") @ [5, 5);
  )");
  EXPECT_FALSE(r.ok());
}

TEST(ParserTest, FactsMustBeGround) {
  auto r = ParseProgram(R"(
    source E(a);
    target T(a);
    tgd E(x) -> T(x);
    fact E(x) @ [0, 5);
  )");
  EXPECT_FALSE(r.ok());
}

TEST(ParserTest, DuplicateQueryNamesFormUnion) {
  auto program = ParseOrDie(R"(
    source A(x);
    source B(x);
    target Ta(x);
    target Tb(x);
    tgd A(x) -> Ta(x);
    tgd B(x) -> Tb(x);
    query u(x): Ta(x);
    query u(x): Tb(x);
  )");
  ASSERT_EQ(program->queries.size(), 1u);
  EXPECT_EQ(program->queries[0].disjuncts.size(), 2u);
  EXPECT_TRUE(program->FindQuery("u").ok());
  EXPECT_FALSE(program->FindQuery("v").ok());
}

TEST(ParserTest, ExistentialListMultipleVars) {
  auto program = ParseOrDie(R"(
    source E(a);
    target T(a, b, c);
    tgd E(x) -> exists y, z: T(x, y, z);
  )");
  EXPECT_EQ(program->mapping.st_tgds[0].existential.size(), 2u);
}

}  // namespace
}  // namespace tdx
