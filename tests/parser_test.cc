#include "src/parser/parser.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace tdx {
namespace {

using ::tdx::testing::HasConcreteFact;
using ::tdx::testing::ParseOrDie;

TEST(ParserTest, ParsesThePaperProgram) {
  auto program = ParseOrDie(testing::kPaperProgram);
  EXPECT_EQ(program->mapping.st_tgds.size(), 2u);
  EXPECT_EQ(program->mapping.egds.size(), 1u);
  EXPECT_EQ(program->lifted.st_tgds.size(), 2u);
  EXPECT_EQ(program->source.size(), 5u);
  EXPECT_EQ(program->queries.size(), 1u);
  EXPECT_TRUE(program->source.Validate().ok());
  EXPECT_TRUE(program->source.IsComplete());
  EXPECT_TRUE(HasConcreteFact(program->source, program->universe, "E+",
                              {"Ada", "IBM"}, Interval(2012, 2014)));
  EXPECT_TRUE(HasConcreteFact(program->source, program->universe, "S+",
                              {"Bob", "13k"}, Interval::FromStart(2015)));
}

TEST(ParserTest, TgdStructure) {
  auto program = ParseOrDie(testing::kPaperProgram);
  const Tgd& sigma1 = program->mapping.st_tgds[0];
  EXPECT_EQ(sigma1.label, "sigma1");
  EXPECT_EQ(sigma1.body.atoms.size(), 1u);
  EXPECT_EQ(sigma1.head.atoms.size(), 1u);
  EXPECT_EQ(sigma1.existential.size(), 1u);
  const Tgd& sigma2 = program->mapping.st_tgds[1];
  EXPECT_EQ(sigma2.body.atoms.size(), 2u);
  EXPECT_TRUE(sigma2.existential.empty());
}

TEST(ParserTest, LiftedMappingHasTemporalVars) {
  auto program = ParseOrDie(testing::kPaperProgram);
  for (const Tgd& tgd : program->lifted.st_tgds) {
    ASSERT_TRUE(tgd.temporal_var.has_value());
    for (const Atom& atom : tgd.body.atoms) {
      EXPECT_TRUE(program->schema.relation(atom.rel).temporal);
    }
  }
  ASSERT_EQ(program->lifted.egds.size(), 1u);
  EXPECT_TRUE(program->lifted.egds[0].temporal_var.has_value());
}

TEST(ParserTest, EgdEqualityVariables) {
  auto program = ParseOrDie(testing::kPaperProgram);
  const Egd& egd = program->mapping.egds[0];
  EXPECT_NE(egd.x1, egd.x2);
  EXPECT_EQ(egd.body.var_names[egd.x1], "s");
  EXPECT_EQ(egd.body.var_names[egd.x2], "s2");
}

TEST(ParserTest, AnonymousVariablesAreFresh) {
  auto program = ParseOrDie(R"(
    source E(a, b);
    target T(a, b);
    tgd E(x, y) -> T(x, y);
    query q(x): T(x, _) & T(_, x);
  )");
  const ConjunctiveQuery& q = program->queries[0].disjuncts[0];
  // x plus two distinct anonymous variables.
  EXPECT_EQ(q.body.num_vars, 3u);
}

TEST(ParserTest, NumbersAreConstants) {
  auto program = ParseOrDie(R"(
    source E(a);
    target T(a);
    tgd E(x) -> T(x);
    fact E(42) @ [0, 5);
  )");
  EXPECT_TRUE(HasConcreteFact(program->source, program->universe, "E+",
                              {"42"}, Interval(0, 5)));
}

TEST(ParserTest, ErrorsCarryPositions) {
  auto r1 = ParseProgram("source E(a;");
  ASSERT_FALSE(r1.ok());
  EXPECT_NE(r1.status().message().find("line 1"), std::string::npos);

  auto r2 = ParseProgram("bogus X;");
  EXPECT_FALSE(r2.ok());
}

TEST(ParserTest, UnknownRelationInAtomFails) {
  auto r = ParseProgram(R"(
    source E(a);
    target T(a);
    tgd Nope(x) -> T(x);
  )");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("Nope"), std::string::npos);
}

TEST(ParserTest, ArityMismatchFails) {
  auto r = ParseProgram(R"(
    source E(a, b);
    target T(a);
    tgd E(x) -> T(x);
  )");
  EXPECT_FALSE(r.ok());
}

TEST(ParserTest, WrongRoleFails) {
  auto r = ParseProgram(R"(
    source E(a);
    target T(a);
    tgd T(x) -> E(x);
  )");
  EXPECT_FALSE(r.ok());
}

TEST(ParserTest, EmptyIntervalFails) {
  auto r = ParseProgram(R"(
    source E(a);
    target T(a);
    tgd E(x) -> T(x);
    fact E("x") @ [5, 5);
  )");
  EXPECT_FALSE(r.ok());
}

TEST(ParserTest, FactsMustBeGround) {
  auto r = ParseProgram(R"(
    source E(a);
    target T(a);
    tgd E(x) -> T(x);
    fact E(x) @ [0, 5);
  )");
  EXPECT_FALSE(r.ok());
}

TEST(ParserTest, DuplicateQueryNamesFormUnion) {
  auto program = ParseOrDie(R"(
    source A(x);
    source B(x);
    target Ta(x);
    target Tb(x);
    tgd A(x) -> Ta(x);
    tgd B(x) -> Tb(x);
    query u(x): Ta(x);
    query u(x): Tb(x);
  )");
  ASSERT_EQ(program->queries.size(), 1u);
  EXPECT_EQ(program->queries[0].disjuncts.size(), 2u);
  EXPECT_TRUE(program->FindQuery("u").ok());
  EXPECT_FALSE(program->FindQuery("v").ok());
}

TEST(ParserTest, ExistentialListMultipleVars) {
  auto program = ParseOrDie(R"(
    source E(a);
    target T(a, b, c);
    tgd E(x) -> exists y, z: T(x, y, z);
  )");
  EXPECT_EQ(program->mapping.st_tgds[0].existential.size(), 2u);
}

// ---------------------------------------------------------------------------
// Hardening against pathological inputs (ParseLimits). Every rejection is a
// kParseError carrying a position, never a crash or a hang.
// ---------------------------------------------------------------------------

TEST(ParserHardeningTest, TenMegabyteInputIsRejected) {
  // A single huge atom: "source E(" + 10 MB of junk. The size gate fires
  // before tokenization even starts.
  std::string text = "source E(";
  text.append(10u << 20, 'a');
  text += ");";
  auto parsed = ParseProgram(text);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kParseError);
  EXPECT_NE(parsed.status().message().find("exceeds the limit"),
            std::string::npos);
  EXPECT_NE(parsed.status().message().find("line 1"), std::string::npos);
}

TEST(ParserHardeningTest, RaisedInputLimitAdmitsLargeInput) {
  std::string text = "source E(x);\n";
  while (text.size() < (9u << 20)) text += "# padding comment line\n";
  ParseLimits limits;
  limits.max_input_bytes = 16u << 20;
  auto parsed = ParseProgram(text, limits);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
}

TEST(ParserHardeningTest, TokenBudgetIsEnforced) {
  ParseLimits limits;
  limits.max_tokens = 5;
  auto parsed = ParseProgram("source E(x, y, z);", limits);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kParseError);
  EXPECT_NE(parsed.status().message().find("token count exceeds the limit"),
            std::string::npos);
}

TEST(ParserHardeningTest, DeeplyNestedParensAreRejectedNotCrashed) {
  // 10k-deep operator nesting. The grammar rejects nested temporal
  // operators, so this must come back as a parse error after O(1) descent —
  // the test's job is proving there is no unbounded recursion.
  std::string body;
  for (int i = 0; i < 10000; ++i) body += "once_past(";
  body += "E(x)";
  for (int i = 0; i < 10000; ++i) body += ")";
  const std::string text =
      "source E(x);\ntarget T(x);\ntgd " + body + " -> T(x);";
  auto parsed = ParseProgram(text);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kParseError);
}

TEST(ParserHardeningTest, NestingDepthLimitIsEnforced) {
  ParseLimits limits;
  limits.max_nesting_depth = 0;
  auto parsed = ParseProgram(
      "source E(x);\ntarget T(x);\ntgd once_past(E(x)) -> T(x);", limits);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kParseError);
  EXPECT_NE(parsed.status().message().find("atom nesting exceeds the limit"),
            std::string::npos);
}

TEST(ParserHardeningTest, AtomTermLimitIsEnforced) {
  ParseLimits limits;
  limits.max_atom_terms = 2;
  auto parsed = ParseProgram(
      "source E(a, b, c);\ntarget T(a);\ntgd E(x, y, z) -> T(x);", limits);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kParseError);
  EXPECT_NE(parsed.status().message().find("exceeds the limit"),
            std::string::npos);
}

TEST(ParserHardeningTest, FactArgumentLimitIsEnforced) {
  ParseLimits limits;
  limits.max_atom_terms = 2;
  auto parsed = ParseProgram(
      "source E(a, b, c);\nfact E(\"1\", \"2\", \"3\") @ [0, 5);", limits);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kParseError);
}

TEST(ParserHardeningTest, EmptyIntervalIsAParseError) {
  // The checked Interval::Make factory guards the trust boundary: an empty
  // interval in the text format must surface as a parse error, not an
  // assertion failure.
  auto parsed = ParseProgram("source E(x);\nfact E(\"a\") @ [5, 5);");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kParseError);
  EXPECT_NE(parsed.status().message().find("empty interval"),
            std::string::npos);
}

TEST(ParserHardeningTest, ReversedIntervalIsAParseError) {
  auto parsed = ParseProgram("source E(x);\nfact E(\"a\") @ [7, 3);");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kParseError);
}

TEST(ParserHardeningTest, DefaultLimitsAdmitThePaperProgram) {
  EXPECT_TRUE(ParseProgram(testing::kPaperProgram).ok());
}

}  // namespace
}  // namespace tdx
