// Golden-file tests for the analyzer's renderers over the shipped example
// programs: the exact text and JSON that `tdx_lint` prints for each file
// under examples/programs/ is pinned in tests/golden/<name>.lint.{txt,json}.
//
// To refresh a golden after an intentional output change, run tdx_lint on
// the example from the repo root and save its output:
//   text: `tdx_lint <file>` is exactly the .lint.txt golden;
//   json: `tdx_lint --format=json <file>` prints the golden object wrapped
//         in a one-element JSON array — strip the brackets.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "src/analysis/analyzer.h"
#include "src/parser/parser.h"

#ifndef TDX_REPO_DIR
#define TDX_REPO_DIR "."
#endif

namespace tdx {
namespace {

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  if (!in.good()) std::abort();
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

class LintGoldenTest : public ::testing::TestWithParam<const char*> {
 protected:
  /// Path used inside the rendered output (repo-relative, like the CI
  /// smoke job invokes tdx_lint).
  std::string DisplayPath() const {
    return std::string("examples/programs/") + GetParam() + ".tdx";
  }

  AnalysisReport Lint() const {
    const std::string text =
        ReadFileOrDie(std::string(TDX_REPO_DIR) + "/" + DisplayPath());
    auto parsed = ParseProgram(text);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    if (!parsed.ok()) std::abort();
    return AnalyzeProgram(**parsed);
  }

  std::string Golden(const std::string& extension) const {
    return ReadFileOrDie(std::string(TDX_REPO_DIR) + "/tests/golden/" +
                         GetParam() + ".lint." + extension);
  }
};

TEST_P(LintGoldenTest, TextOutputMatchesGolden) {
  EXPECT_EQ(RenderText(Lint(), DisplayPath()), Golden("txt"));
}

TEST_P(LintGoldenTest, JsonOutputMatchesGolden) {
  EXPECT_EQ(RenderJson(Lint(), DisplayPath()) + "\n", Golden("json"));
}

INSTANTIATE_TEST_SUITE_P(Examples, LintGoldenTest,
                         ::testing::Values("paper", "flights", "medical",
                                           "strata"));

}  // namespace
}  // namespace tdx
