#include "src/temporal/coalesce.h"

#include <gtest/gtest.h>

#include "src/temporal/snapshot.h"

namespace tdx {
namespace {

class CoalesceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    e_plus_ = *schema_.AddRelationPair("E", {"name", "company"},
                                       SchemaRole::kSource);
  }

  void Add(ConcreteInstance* ic, const std::string& n, const std::string& c,
           const Interval& iv) {
    ASSERT_TRUE(ic->Add(e_plus_, {u_.Constant(n), u_.Constant(c)}, iv).ok());
  }

  Universe u_;
  Schema schema_;
  RelationId e_plus_ = 0;
};

TEST_F(CoalesceTest, MergesAdjacentIntervals) {
  ConcreteInstance ic(&schema_);
  Add(&ic, "Ada", "IBM", Interval(1, 3));
  Add(&ic, "Ada", "IBM", Interval(3, 5));
  const ConcreteInstance out = Coalesce(ic);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_TRUE(out.facts().Contains(
      Fact(e_plus_, {u_.Constant("Ada"), u_.Constant("IBM"),
                     Value::OfInterval(Interval(1, 5))})));
  EXPECT_TRUE(out.IsCoalesced());
}

TEST_F(CoalesceTest, MergesOverlappingIntervals) {
  ConcreteInstance ic(&schema_);
  Add(&ic, "Ada", "IBM", Interval(1, 4));
  Add(&ic, "Ada", "IBM", Interval(3, 8));
  const ConcreteInstance out = Coalesce(ic);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_TRUE(out.facts().Contains(
      Fact(e_plus_, {u_.Constant("Ada"), u_.Constant("IBM"),
                     Value::OfInterval(Interval(1, 8))})));
}

TEST_F(CoalesceTest, KeepsDisjointRuns) {
  ConcreteInstance ic(&schema_);
  Add(&ic, "Ada", "IBM", Interval(1, 3));
  Add(&ic, "Ada", "IBM", Interval(5, 7));
  const ConcreteInstance out = Coalesce(ic);
  EXPECT_EQ(out.size(), 2u);
}

TEST_F(CoalesceTest, DifferentDataNotMerged) {
  ConcreteInstance ic(&schema_);
  Add(&ic, "Ada", "IBM", Interval(1, 3));
  Add(&ic, "Ada", "Google", Interval(3, 5));
  const ConcreteInstance out = Coalesce(ic);
  EXPECT_EQ(out.size(), 2u);
}

TEST_F(CoalesceTest, MergesChainIntoOne) {
  ConcreteInstance ic(&schema_);
  for (TimePoint t = 0; t < 10; ++t) {
    Add(&ic, "Ada", "IBM", Interval(t, t + 1));
  }
  const ConcreteInstance out = Coalesce(ic);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_TRUE(out.facts().Contains(
      Fact(e_plus_, {u_.Constant("Ada"), u_.Constant("IBM"),
                     Value::OfInterval(Interval(0, 10))})));
}

TEST_F(CoalesceTest, UnboundedTailMerges) {
  ConcreteInstance ic(&schema_);
  Add(&ic, "Ada", "IBM", Interval(1, 5));
  ASSERT_TRUE(ic.Add(e_plus_, {u_.Constant("Ada"), u_.Constant("IBM")},
                     Interval::FromStart(5))
                  .ok());
  const ConcreteInstance out = Coalesce(ic);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_TRUE(out.facts().Contains(
      Fact(e_plus_, {u_.Constant("Ada"), u_.Constant("IBM"),
                     Value::OfInterval(Interval::FromStart(1))})));
}

TEST_F(CoalesceTest, AnnotatedNullFragmentsReunite) {
  ConcreteInstance ic(&schema_);
  const Value n = u_.FreshAnnotatedNull(Interval(1, 9));
  ASSERT_TRUE(ic.Add(e_plus_,
                     {u_.Constant("Ada"), n.Reannotated(Interval(1, 4))},
                     Interval(1, 4))
                  .ok());
  ASSERT_TRUE(ic.Add(e_plus_,
                     {u_.Constant("Ada"), n.Reannotated(Interval(4, 9))},
                     Interval(4, 9))
                  .ok());
  const ConcreteInstance out = Coalesce(ic);
  ASSERT_EQ(out.size(), 1u);
  const FactView fact = out.facts().facts(e_plus_)[0];
  EXPECT_EQ(fact.interval(), Interval(1, 9));
  ASSERT_TRUE(fact.arg(1).is_annotated_null());
  EXPECT_EQ(fact.arg(1).null_id(), n.null_id());
  EXPECT_EQ(fact.arg(1).interval(), Interval(1, 9));
  EXPECT_TRUE(out.Validate().ok());
}

TEST_F(CoalesceTest, DistinctNullsStaySeparate) {
  ConcreteInstance ic(&schema_);
  const Value n1 = u_.FreshAnnotatedNull(Interval(1, 4));
  const Value n2 = u_.FreshAnnotatedNull(Interval(4, 9));
  ASSERT_TRUE(ic.Add(e_plus_, {u_.Constant("Ada"), n1}, Interval(1, 4)).ok());
  ASSERT_TRUE(ic.Add(e_plus_, {u_.Constant("Ada"), n2}, Interval(4, 9)).ok());
  EXPECT_EQ(Coalesce(ic).size(), 2u);
}

// Property: coalescing preserves the snapshot semantics [[.]] for complete
// instances at every time point in and around the instance's span.
TEST_F(CoalesceTest, PreservesSnapshotsOfCompleteInstances) {
  ConcreteInstance ic(&schema_);
  Add(&ic, "Ada", "IBM", Interval(1, 4));
  Add(&ic, "Ada", "IBM", Interval(4, 6));
  Add(&ic, "Ada", "Google", Interval(2, 9));
  Add(&ic, "Bob", "IBM", Interval(3, 5));
  Add(&ic, "Bob", "IBM", Interval(4, 8));
  const ConcreteInstance out = Coalesce(ic);
  for (TimePoint l = 0; l < 12; ++l) {
    auto before = SnapshotAt(ic, l, &u_);
    auto after = SnapshotAt(out, l, &u_);
    ASSERT_TRUE(before.ok());
    ASSERT_TRUE(after.ok());
    EXPECT_EQ(*before, *after) << "snapshot differs at l=" << l;
  }
}

TEST_F(CoalesceTest, IdempotentOnCoalescedInput) {
  ConcreteInstance ic(&schema_);
  Add(&ic, "Ada", "IBM", Interval(1, 4));
  Add(&ic, "Bob", "IBM", Interval(2, 6));
  const ConcreteInstance once = Coalesce(ic);
  const ConcreteInstance twice = Coalesce(once);
  EXPECT_EQ(once.facts(), twice.facts());
}

}  // namespace
}  // namespace tdx
