// Parallel snapshot execution must be a pure scheduling choice: for any
// jobs value the merged outcome is deterministic and equivalent to the
// sequential engine — identical stats and answers, targets equal up to the
// names of labeled nulls (scratch universes shift null ids, never
// structure).

#include <gtest/gtest.h>

#include <memory>

#include "src/core/cchase.h"
#include "src/core/certain.h"
#include "src/core/naive_eval.h"
#include "src/gen/workload.h"
#include "src/parser/printer.h"
#include "src/temporal/abstract_chase.h"
#include "src/temporal/abstract_hom.h"

namespace tdx {
namespace {

std::vector<TimePoint> ProbePoints(const ConcreteInstance& ic) {
  std::vector<TimePoint> pts = ic.Endpoints();
  pts.push_back(ic.StabilizationPoint() + 2);
  pts.push_back(0);
  return pts;
}

class ParallelSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParallelSweep, AbstractChaseMatchesSequential) {
  EmploymentConfig cfg;
  cfg.num_people = 12;
  cfg.num_companies = 4;
  cfg.seed = GetParam();
  auto w_seq = MakeEmploymentWorkload(cfg);
  auto w_par = MakeEmploymentWorkload(cfg);
  auto ia_seq = AbstractInstance::FromConcrete(w_seq->source);
  auto ia_par = AbstractInstance::FromConcrete(w_par->source);
  ASSERT_TRUE(ia_seq.ok());
  ASSERT_TRUE(ia_par.ok());

  AbstractChaseOptions parallel;
  parallel.jobs = 4;
  auto seq = AbstractChase(*ia_seq, w_seq->mapping, &w_seq->universe);
  auto par = AbstractChase(*ia_par, w_par->mapping, &w_par->universe, parallel);
  ASSERT_TRUE(seq.ok()) << seq.status();
  ASSERT_TRUE(par.ok()) << par.status();
  EXPECT_EQ(seq->kind, par->kind);
  EXPECT_EQ(seq->stats.tgd_triggers, par->stats.tgd_triggers);
  EXPECT_EQ(seq->stats.tgd_fires, par->stats.tgd_fires);
  EXPECT_EQ(seq->stats.egd_steps, par->stats.egd_steps);
  EXPECT_EQ(seq->stats.fresh_nulls, par->stats.fresh_nulls);
  if (seq->kind == ChaseResultKind::kSuccess) {
    EXPECT_TRUE(AreAbstractEquivalent(seq->target, par->target))
        << "seed=" << GetParam();
  }
}

TEST_P(ParallelSweep, ParallelRunsAreDeterministic) {
  // Two parallel runs with different jobs counts on identical workloads:
  // the merge is sequential in piece order, so the results must be EQUAL,
  // not merely isomorphic (same shared-universe annotated-null ids).
  EmploymentConfig cfg;
  cfg.num_people = 10;
  cfg.seed = GetParam();
  auto w2 = MakeEmploymentWorkload(cfg);
  auto w8 = MakeEmploymentWorkload(cfg);
  auto ia2 = AbstractInstance::FromConcrete(w2->source);
  auto ia8 = AbstractInstance::FromConcrete(w8->source);
  ASSERT_TRUE(ia2.ok());
  ASSERT_TRUE(ia8.ok());
  AbstractChaseOptions two, eight;
  two.jobs = 2;
  eight.jobs = 8;
  auto a = AbstractChase(*ia2, w2->mapping, &w2->universe, two);
  auto b = AbstractChase(*ia8, w8->mapping, &w8->universe, eight);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->kind, b->kind);
  ASSERT_EQ(a->target.pieces().size(), b->target.pieces().size());
  for (std::size_t i = 0; i < a->target.pieces().size(); ++i) {
    EXPECT_TRUE(a->target.pieces()[i].span == b->target.pieces()[i].span);
    EXPECT_TRUE(a->target.pieces()[i].snapshot == b->target.pieces()[i].snapshot)
        << "piece " << i;
  }
}

TEST_P(ParallelSweep, CertainAnswersAtManyMatchesPerPoint) {
  RandomMappingConfig cfg;
  cfg.seed = GetParam();
  auto w = MakeRandomMappingWorkload(cfg);
  // A query with answers: reuse a target relation's identity projection via
  // the employment workload instead — random mappings carry no queries, so
  // probe with the identity UCQ over the first target relation.
  UnionQuery query;
  ConjunctiveQuery cq;
  std::optional<RelationId> target_rel;
  for (RelationId r = 0; r < w->schema.relation_count(); ++r) {
    if (w->schema.relation(r).role == SchemaRole::kTarget) {
      target_rel = r;
      break;
    }
  }
  ASSERT_TRUE(target_rel.has_value());
  const std::size_t arity = w->schema.relation(*target_rel).arity();
  Atom atom{*target_rel, {}};
  for (std::size_t i = 0; i < arity; ++i) {
    atom.terms.push_back(Term::Var(static_cast<VarId>(i)));
    cq.head.push_back(static_cast<VarId>(i));
  }
  cq.body.atoms.push_back(atom);
  cq.body.num_vars = arity;
  query.disjuncts.push_back(cq);

  const std::vector<TimePoint> points = ProbePoints(w->source);
  auto batched = CertainAnswersAtMany(query, w->source, w->mapping, points,
                                      &w->universe, 4);
  ASSERT_TRUE(batched.ok()) << batched.status();
  ASSERT_EQ(batched->size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    auto single = CertainAnswersAt(query, w->source, w->mapping, points[i],
                                   &w->universe);
    ASSERT_TRUE(single.ok());
    EXPECT_EQ((*batched)[i].chase_kind, single->chase_kind)
        << "l=" << points[i];
    EXPECT_EQ((*batched)[i].answers, single->answers) << "l=" << points[i];
  }
}

TEST_P(ParallelSweep, NaiveEvalAtManyMatchesPerPoint) {
  EmploymentConfig cfg;
  cfg.num_people = 8;
  cfg.seed = GetParam();
  auto w = MakeEmploymentWorkload(cfg);
  auto ia = AbstractInstance::FromConcrete(w->source);
  ASSERT_TRUE(ia.ok());
  auto chased = AbstractChase(*ia, w->mapping, &w->universe);
  ASSERT_TRUE(chased.ok());
  ASSERT_EQ(chased->kind, ChaseResultKind::kSuccess);

  UnionQuery query;
  ConjunctiveQuery cq;
  std::optional<RelationId> emp;
  for (RelationId r = 0; r < w->schema.relation_count(); ++r) {
    if (w->schema.relation(r).role == SchemaRole::kTarget) {
      emp = r;
      break;
    }
  }
  ASSERT_TRUE(emp.has_value());
  const std::size_t arity = w->schema.relation(*emp).arity();
  Atom atom{*emp, {}};
  for (std::size_t i = 0; i < arity; ++i) {
    atom.terms.push_back(Term::Var(static_cast<VarId>(i)));
    cq.head.push_back(static_cast<VarId>(i));
  }
  cq.body.atoms.push_back(atom);
  cq.body.num_vars = arity;
  query.disjuncts.push_back(cq);

  const std::vector<TimePoint> points = ProbePoints(w->source);
  const auto batched = NaiveEvaluateAbstractAtMany(query, chased->target,
                                                   points, &w->universe, 4);
  ASSERT_EQ(batched.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(batched[i], NaiveEvaluateAbstractAt(query, chased->target,
                                                  points[i], &w->universe))
        << "l=" << points[i];
  }
}

TEST_P(ParallelSweep, ScheduledTriggerCollectionIsJobsInvariant) {
  // The chase planner's parallel groups collect triggers concurrently but
  // fire sequentially in declaration order, so any jobs count must yield
  // the EXACT same target (same null ids) and the exact same statistics.
  // This test runs under TSan in CI.
  RandomMappingConfig cfg;
  cfg.seed = GetParam();
  auto w1 = MakeRandomMappingWorkload(cfg);
  auto w8 = MakeRandomMappingWorkload(cfg);
  CChaseOptions one, eight;
  one.jobs = 1;
  eight.jobs = 8;
  auto a = CChase(w1->source, w1->lifted, &w1->universe, one);
  auto b = CChase(w8->source, w8->lifted, &w8->universe, eight);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  ASSERT_EQ(a->kind, b->kind) << "seed=" << GetParam();
  EXPECT_EQ(RenderConcreteInstance(a->target, w1->universe),
            RenderConcreteInstance(b->target, w8->universe))
      << "seed=" << GetParam();
  EXPECT_EQ(a->stats.tgd_triggers, b->stats.tgd_triggers);
  EXPECT_EQ(a->stats.tgd_fires, b->stats.tgd_fires);
  EXPECT_EQ(a->stats.egd_steps, b->stats.egd_steps);
  EXPECT_EQ(a->stats.fresh_nulls, b->stats.fresh_nulls);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelSweep,
                         ::testing::Range<std::uint64_t>(1, 9));

// A fault dropping one pool task mid-ParallelFor must surface as a clean
// kAborted with the stats of the pieces merged before the hole — no read of
// the unfilled result slot, no leaked scratch universes (this test runs
// under TSan and ASan in CI), and a deterministic merge prefix.
TEST(ParallelFaultTest, DroppedDispatchAbortsCleanlyWithPartialStats) {
  EmploymentConfig cfg;
  cfg.num_people = 12;
  cfg.num_companies = 4;
  cfg.seed = 3;
  auto w_full = MakeEmploymentWorkload(cfg);
  auto w_kill = MakeEmploymentWorkload(cfg);
  auto ia_full = AbstractInstance::FromConcrete(w_full->source);
  auto ia_kill = AbstractInstance::FromConcrete(w_kill->source);
  ASSERT_TRUE(ia_full.ok());
  ASSERT_TRUE(ia_kill.ok());
  ASSERT_GT(ia_kill->pieces().size(), 1u);

  AbstractChaseOptions options;
  options.jobs = 4;
  auto full = AbstractChase(*ia_full, w_full->mapping, &w_full->universe,
                            options);
  ASSERT_TRUE(full.ok()) << full.status();
  ASSERT_EQ(full->kind, ChaseResultKind::kSuccess);

  FaultRegistry::Arm("thread-pool/dispatch",
                     Status::Internal("injected fault"));
  auto killed = AbstractChase(*ia_kill, w_kill->mapping, &w_kill->universe,
                              options);
  FaultRegistry::DisarmAll();
  ASSERT_TRUE(killed.ok()) << killed.status();
  ASSERT_EQ(killed->kind, ChaseResultKind::kAborted);
  EXPECT_EQ(killed->abort_dimension, ResourceDimension::kInjectedFault);
  ASSERT_TRUE(killed->failure_span.has_value());
  // The merge stopped at the hole: a strict prefix of the pieces landed,
  // and the partial stats cannot exceed the full run's.
  EXPECT_LT(killed->target.pieces().size(), ia_kill->pieces().size());
  EXPECT_LE(killed->stats.tgd_fires, full->stats.tgd_fires);
  EXPECT_LE(killed->stats.fresh_nulls, full->stats.fresh_nulls);
}

}  // namespace
}  // namespace tdx
