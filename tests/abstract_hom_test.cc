#include "src/temporal/abstract_hom.h"

#include <gtest/gtest.h>

namespace tdx {
namespace {

class AbstractHomTest : public ::testing::Test {
 protected:
  void SetUp() override {
    emp_plus_ = *schema_.AddRelationPair("Emp", {"name", "company", "salary"},
                                         SchemaRole::kTarget);
    emp_ = *schema_.TwinOf(emp_plus_);
  }

  /// Builds an abstract instance with one piece over [0, horizon) holding
  /// the given snapshot and an empty unbounded tail.
  AbstractInstance OnePiece(TimePoint horizon, Instance snapshot) {
    AbstractInstance ia(&schema_);
    ia.AddPiece(Interval(0, horizon), std::move(snapshot));
    ia.AddPiece(Interval::FromStart(horizon), Instance(&schema_));
    EXPECT_TRUE(ia.ValidateCover().ok());
    return ia;
  }

  Universe u_;
  Schema schema_;
  RelationId emp_plus_ = 0, emp_ = 0;
};

// Example 2 / Figure 2. J1 repeats ONE labeled null N in snapshots 0 and 1;
// J2 has a different unknown per snapshot (an annotated null). There is a
// homomorphism J2 -> J1 but none J1 -> J2.
TEST_F(AbstractHomTest, PaperExample2) {
  Instance j1_snapshot(&schema_);
  j1_snapshot.Insert(
      emp_, {u_.Constant("Ada"), u_.Constant("IBM"), u_.FreshNull("N")});
  const AbstractInstance j1 = OnePiece(2, std::move(j1_snapshot));

  Instance j2_snapshot(&schema_);
  j2_snapshot.Insert(emp_, {u_.Constant("Ada"), u_.Constant("IBM"),
                            u_.FreshAnnotatedNull("M", Interval(0, 2))});
  const AbstractInstance j2 = OnePiece(2, std::move(j2_snapshot));

  EXPECT_TRUE(AbstractHomomorphismExists(j2, j1));
  EXPECT_FALSE(AbstractHomomorphismExists(j1, j2));
  EXPECT_FALSE(AreAbstractEquivalent(j1, j2));
}

TEST_F(AbstractHomTest, IdentityAndEquivalenceOnSelf) {
  Instance snapshot(&schema_);
  snapshot.Insert(emp_, {u_.Constant("Ada"), u_.Constant("IBM"),
                         u_.FreshAnnotatedNull(Interval(0, 3))});
  const AbstractInstance ja = OnePiece(3, std::move(snapshot));
  EXPECT_TRUE(AreAbstractEquivalent(ja, ja));
}

TEST_F(AbstractHomTest, AnnotatedNullMapsToConstant) {
  Instance from_snapshot(&schema_);
  from_snapshot.Insert(emp_, {u_.Constant("Ada"), u_.Constant("IBM"),
                              u_.FreshAnnotatedNull(Interval(0, 2))});
  const AbstractInstance from = OnePiece(2, std::move(from_snapshot));

  Instance to_snapshot(&schema_);
  to_snapshot.Insert(
      emp_, {u_.Constant("Ada"), u_.Constant("IBM"), u_.Constant("18k")});
  const AbstractInstance to = OnePiece(2, std::move(to_snapshot));

  EXPECT_TRUE(AbstractHomomorphismExists(from, to));
  // Constants cannot map back onto an unknown.
  EXPECT_FALSE(AbstractHomomorphismExists(to, from));
}

TEST_F(AbstractHomTest, LabeledNullSpanningSnapshotsCannotMapToConstantMix) {
  // N holds at snapshots 0..3, but the codomain changes its constant at 2:
  // no single image works for N.
  Instance from_snapshot(&schema_);
  const Value n = u_.FreshNull();
  from_snapshot.Insert(emp_, {u_.Constant("Ada"), u_.Constant("IBM"), n});
  const AbstractInstance from = OnePiece(4, std::move(from_snapshot));

  AbstractInstance to(&schema_);
  Instance early(&schema_);
  early.Insert(emp_,
               {u_.Constant("Ada"), u_.Constant("IBM"), u_.Constant("18k")});
  Instance late(&schema_);
  late.Insert(emp_,
              {u_.Constant("Ada"), u_.Constant("IBM"), u_.Constant("20k")});
  to.AddPiece(Interval(0, 2), std::move(early));
  to.AddPiece(Interval(2, 4), std::move(late));
  to.AddPiece(Interval::FromStart(4), Instance(&schema_));
  ASSERT_TRUE(to.ValidateCover().ok());

  EXPECT_FALSE(AbstractHomomorphismExists(from, to));

  // If the codomain keeps 18k throughout, the homomorphism exists.
  AbstractInstance stable(&schema_);
  Instance snap(&schema_);
  snap.Insert(emp_,
              {u_.Constant("Ada"), u_.Constant("IBM"), u_.Constant("18k")});
  stable.AddPiece(Interval(0, 4), std::move(snap));
  stable.AddPiece(Interval::FromStart(4), Instance(&schema_));
  EXPECT_TRUE(AbstractHomomorphismExists(from, stable));
}

TEST_F(AbstractHomTest, SingleSnapshotLabeledNullMayTakeProjectedImage) {
  // N occurs only at snapshot 0; mapping it to the codomain's projected
  // unknown at snapshot 0 is a valid abstract homomorphism.
  Instance from_snapshot(&schema_);
  from_snapshot.Insert(
      emp_, {u_.Constant("Ada"), u_.Constant("IBM"), u_.FreshNull()});
  const AbstractInstance from = OnePiece(1, std::move(from_snapshot));

  Instance to_snapshot(&schema_);
  to_snapshot.Insert(emp_, {u_.Constant("Ada"), u_.Constant("IBM"),
                            u_.FreshAnnotatedNull(Interval(0, 1))});
  const AbstractInstance to = OnePiece(1, std::move(to_snapshot));

  EXPECT_TRUE(AbstractHomomorphismExists(from, to));
  EXPECT_TRUE(AbstractHomomorphismExists(to, from));
  EXPECT_TRUE(AreAbstractEquivalent(from, to));
}

TEST_F(AbstractHomTest, DifferentConstantsNeverMap) {
  Instance a_snap(&schema_);
  a_snap.Insert(emp_,
                {u_.Constant("Ada"), u_.Constant("IBM"), u_.Constant("18k")});
  const AbstractInstance a = OnePiece(2, std::move(a_snap));
  Instance b_snap(&schema_);
  b_snap.Insert(emp_,
                {u_.Constant("Ada"), u_.Constant("IBM"), u_.Constant("20k")});
  const AbstractInstance b = OnePiece(2, std::move(b_snap));
  EXPECT_FALSE(AbstractHomomorphismExists(a, b));
  EXPECT_FALSE(AbstractHomomorphismExists(b, a));
}

TEST_F(AbstractHomTest, EmptyInstanceMapsIntoAnything) {
  AbstractInstance empty(&schema_);
  empty.AddPiece(Interval::FromStart(0), Instance(&schema_));
  Instance snap(&schema_);
  snap.Insert(emp_,
              {u_.Constant("Ada"), u_.Constant("IBM"), u_.Constant("18k")});
  const AbstractInstance full = OnePiece(3, std::move(snap));
  EXPECT_TRUE(AbstractHomomorphismExists(empty, full));
  EXPECT_FALSE(AbstractHomomorphismExists(full, empty));
}

TEST_F(AbstractHomTest, MisalignedSpansAreRefinedAutomatically) {
  // Same data, different piece boundaries: still equivalent.
  Instance snap1(&schema_);
  const Value m1 = u_.FreshAnnotatedNull(Interval(0, 6));
  snap1.Insert(emp_, {u_.Constant("Ada"), u_.Constant("IBM"), m1});
  AbstractInstance a(&schema_);
  a.AddPiece(Interval(0, 6), std::move(snap1));
  a.AddPiece(Interval::FromStart(6), Instance(&schema_));

  AbstractInstance b(&schema_);
  const Value m2 = u_.FreshAnnotatedNull(Interval(0, 3));
  const Value m3 = u_.FreshAnnotatedNull(Interval(3, 6));
  Instance early(&schema_);
  early.Insert(emp_, {u_.Constant("Ada"), u_.Constant("IBM"), m2});
  Instance late(&schema_);
  late.Insert(emp_, {u_.Constant("Ada"), u_.Constant("IBM"), m3});
  b.AddPiece(Interval(0, 3), std::move(early));
  b.AddPiece(Interval(3, 6), std::move(late));
  b.AddPiece(Interval::FromStart(6), Instance(&schema_));

  EXPECT_TRUE(AreAbstractEquivalent(a, b));
}

TEST_F(AbstractHomTest, AnnotatedNullUsedTwiceInPieceMapsConsistently) {
  // The same annotated null occurring in two facts of one piece denotes the
  // same unknown per snapshot; images must agree within the piece.
  auto p_plus = schema_.AddRelationPair("P", {"a", "b"}, SchemaRole::kTarget);
  ASSERT_TRUE(p_plus.ok());
  const RelationId p = *schema_.TwinOf(*p_plus);

  Instance from_snap(&schema_);
  const Value n = u_.FreshAnnotatedNull(Interval(0, 2));
  from_snap.Insert(p, {u_.Constant("a"), n});
  from_snap.Insert(p, {n, u_.Constant("a")});
  const AbstractInstance from = OnePiece(2, std::move(from_snap));

  Instance good_snap(&schema_);
  good_snap.Insert(p, {u_.Constant("a"), u_.Constant("x")});
  good_snap.Insert(p, {u_.Constant("x"), u_.Constant("a")});
  const AbstractInstance good = OnePiece(2, std::move(good_snap));
  EXPECT_TRUE(AbstractHomomorphismExists(from, good));

  Instance bad_snap(&schema_);
  bad_snap.Insert(p, {u_.Constant("a"), u_.Constant("x")});
  bad_snap.Insert(p, {u_.Constant("y"), u_.Constant("a")});
  const AbstractInstance bad = OnePiece(2, std::move(bad_snap));
  EXPECT_FALSE(AbstractHomomorphismExists(from, bad));
}

// Example 2 with the domain pre-split into two length-1 pieces: the
// labeled null occurs in TWO pieces, so mapping it onto per-snapshot
// projections of an annotated null must still be rejected (condition 2).
TEST_F(AbstractHomTest, SplitLabeledNullStillCannotMapToAnnotated) {
  const Value n = u_.FreshNull();
  Instance snap1(&schema_), snap2(&schema_);
  snap1.Insert(emp_, {u_.Constant("Ada"), u_.Constant("IBM"), n});
  snap2.Insert(emp_, {u_.Constant("Ada"), u_.Constant("IBM"), n});
  AbstractInstance j1(&schema_);
  j1.AddPiece(Interval(0, 1), std::move(snap1));
  j1.AddPiece(Interval(1, 2), std::move(snap2));
  j1.AddPiece(Interval::FromStart(2), Instance(&schema_));
  ASSERT_TRUE(j1.ValidateCover().ok());

  Instance j2_snap(&schema_);
  j2_snap.Insert(emp_, {u_.Constant("Ada"), u_.Constant("IBM"),
                        u_.FreshAnnotatedNull(Interval(0, 2))});
  const AbstractInstance j2 = OnePiece(2, std::move(j2_snap));

  EXPECT_FALSE(AbstractHomomorphismExists(j1, j2));
  EXPECT_TRUE(AbstractHomomorphismExists(j2, j1));

  // With a CONSTANT persisting across both snapshots in the codomain, the
  // labeled null does have a consistent image.
  Instance j3_snap(&schema_);
  j3_snap.Insert(emp_, {u_.Constant("Ada"), u_.Constant("IBM"),
                        u_.Constant("18k")});
  const AbstractInstance j3 = OnePiece(2, std::move(j3_snap));
  EXPECT_TRUE(AbstractHomomorphismExists(j1, j3));
}

}  // namespace
}  // namespace tdx
