#include "src/temporal/concrete_instance.h"

#include <gtest/gtest.h>

namespace tdx {
namespace {

class ConcreteInstanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    e_plus_ = *schema_.AddRelationPair("E", {"name", "company"},
                                       SchemaRole::kSource);
    e_ = *schema_.TwinOf(e_plus_);
  }

  Universe u_;
  Schema schema_;
  RelationId e_plus_ = 0, e_ = 0;
};

TEST_F(ConcreteInstanceTest, AddValidFact) {
  ConcreteInstance ic(&schema_);
  EXPECT_TRUE(ic.Add(e_plus_, {u_.Constant("Ada"), u_.Constant("IBM")},
                     Interval(2012, 2014))
                  .ok());
  EXPECT_EQ(ic.size(), 1u);
  EXPECT_TRUE(ic.Validate().ok());
  EXPECT_TRUE(ic.IsComplete());
}

TEST_F(ConcreteInstanceTest, AddRejectsNonTemporalRelation) {
  ConcreteInstance ic(&schema_);
  const Status s =
      ic.Add(e_, {u_.Constant("Ada"), u_.Constant("IBM")}, Interval(1, 2));
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST_F(ConcreteInstanceTest, AddRejectsWrongArity) {
  ConcreteInstance ic(&schema_);
  EXPECT_FALSE(ic.Add(e_plus_, {u_.Constant("Ada")}, Interval(1, 2)).ok());
}

TEST_F(ConcreteInstanceTest, AddRejectsPlainLabeledNull) {
  ConcreteInstance ic(&schema_);
  EXPECT_FALSE(
      ic.Add(e_plus_, {u_.Constant("Ada"), u_.FreshNull()}, Interval(1, 2))
          .ok());
}

TEST_F(ConcreteInstanceTest, AddRejectsMisannotatedNull) {
  ConcreteInstance ic(&schema_);
  const Value n = u_.FreshAnnotatedNull(Interval(1, 3));
  EXPECT_FALSE(ic.Add(e_plus_, {u_.Constant("Ada"), n}, Interval(1, 2)).ok());
  EXPECT_TRUE(ic.Add(e_plus_, {u_.Constant("Ada"), n}, Interval(1, 3)).ok());
  EXPECT_FALSE(ic.IsComplete());
}

TEST_F(ConcreteInstanceTest, EndpointsSortedDistinct) {
  ConcreteInstance ic(&schema_);
  ASSERT_TRUE(ic.Add(e_plus_, {u_.Constant("Ada"), u_.Constant("IBM")},
                     Interval(2012, 2014))
                  .ok());
  ASSERT_TRUE(ic.Add(e_plus_, {u_.Constant("Ada"), u_.Constant("Google")},
                     Interval::FromStart(2014))
                  .ok());
  ASSERT_TRUE(ic.Add(e_plus_, {u_.Constant("Bob"), u_.Constant("IBM")},
                     Interval(2013, 2018))
                  .ok());
  EXPECT_EQ(ic.Endpoints(),
            (std::vector<TimePoint>{2012, 2013, 2014, 2018}));
  EXPECT_EQ(ic.StabilizationPoint(), 2018u);
}

TEST_F(ConcreteInstanceTest, CoalescedDetection) {
  ConcreteInstance ic(&schema_);
  ASSERT_TRUE(ic.Add(e_plus_, {u_.Constant("Ada"), u_.Constant("IBM")},
                     Interval(1, 3))
                  .ok());
  ASSERT_TRUE(ic.Add(e_plus_, {u_.Constant("Ada"), u_.Constant("IBM")},
                     Interval(5, 7))
                  .ok());
  EXPECT_TRUE(ic.IsCoalesced());
  // Adjacent same-data intervals violate coalescing.
  ASSERT_TRUE(ic.Add(e_plus_, {u_.Constant("Ada"), u_.Constant("IBM")},
                     Interval(3, 5))
                  .ok());
  EXPECT_FALSE(ic.IsCoalesced());
}

TEST_F(ConcreteInstanceTest, OverlapWithDifferentDataIsCoalesced) {
  ConcreteInstance ic(&schema_);
  ASSERT_TRUE(ic.Add(e_plus_, {u_.Constant("Ada"), u_.Constant("IBM")},
                     Interval(1, 5))
                  .ok());
  ASSERT_TRUE(ic.Add(e_plus_, {u_.Constant("Ada"), u_.Constant("Google")},
                     Interval(3, 8))
                  .ok());
  EXPECT_TRUE(ic.IsCoalesced());
}

TEST_F(ConcreteInstanceTest, FragmentedNullCountsAsSameData) {
  // Fragments of one annotated null denote the same sequence; adjacent
  // intervals with the same null id are not coalesced.
  ConcreteInstance ic(&schema_);
  const Value n = u_.FreshAnnotatedNull(Interval(1, 5));
  ASSERT_TRUE(ic.Add(e_plus_, {u_.Constant("Ada"), n.Reannotated(Interval(1, 3))},
                     Interval(1, 3))
                  .ok());
  ASSERT_TRUE(ic.Add(e_plus_, {u_.Constant("Ada"), n.Reannotated(Interval(3, 5))},
                     Interval(3, 5))
                  .ok());
  EXPECT_FALSE(ic.IsCoalesced());
}

TEST_F(ConcreteInstanceTest, EmptyInstanceProperties) {
  ConcreteInstance ic(&schema_);
  EXPECT_TRUE(ic.empty());
  EXPECT_TRUE(ic.Validate().ok());
  EXPECT_TRUE(ic.IsComplete());
  EXPECT_TRUE(ic.IsCoalesced());
  EXPECT_TRUE(ic.Endpoints().empty());
  EXPECT_EQ(ic.StabilizationPoint(), 0u);
}

}  // namespace
}  // namespace tdx
