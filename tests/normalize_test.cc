#include "src/core/normalize.h"

#include <gtest/gtest.h>

#include "src/gen/workload.h"
#include "src/temporal/snapshot.h"
#include "tests/test_util.h"

namespace tdx {
namespace {

using ::tdx::testing::HasConcreteFact;
using ::tdx::testing::ParseOrDie;

TEST(RenameTemporalApartTest, EachAtomGetsFreshTemporalVar) {
  // phi+ = R+(x, t) & S+(y, t)  ~~>  phi* = R+(x, t1) & S+(y, t2).
  Schema schema;
  const RelationId r =
      *schema.AddTemporalRelation("R+", {"a"}, SchemaRole::kSource);
  const RelationId s =
      *schema.AddTemporalRelation("S+", {"a"}, SchemaRole::kSource);
  Conjunction phi;
  Atom a1, a2;
  a1.rel = r;
  a1.terms = {Term::Var(0), Term::Var(2)};
  a2.rel = s;
  a2.terms = {Term::Var(1), Term::Var(2)};
  phi.atoms = {a1, a2};
  phi.num_vars = 3;

  const Conjunction star = RenameTemporalApart(phi);
  EXPECT_EQ(star.num_vars, 5u);
  EXPECT_EQ(star.atoms[0].terms.back().var(), 3u);
  EXPECT_EQ(star.atoms[1].terms.back().var(), 4u);
  // Data variables untouched.
  EXPECT_EQ(star.atoms[0].terms[0].var(), 0u);
  EXPECT_EQ(star.atoms[1].terms[0].var(), 1u);
}

class PaperNormalizeTest : public ::testing::Test {
 protected:
  void SetUp() override { program_ = ParseOrDie(testing::kPaperProgram); }
  std::unique_ptr<ParsedProgram> program_;
};

// Figure 5: norm(Ic, lhs(sigma+2)) — Algorithm 1 applied with the tgd
// bodies of the lifted mapping.
TEST_F(PaperNormalizeTest, Figure5SchemaAwareNormalization) {
  NormalizeStats stats;
  const ConcreteInstance normalized =
      Normalize(program_->source, program_->lifted.TgdBodies(), &stats);
  const Universe& u = program_->universe;

  EXPECT_EQ(testing::CountFacts(normalized, "E+"), 5u);
  EXPECT_TRUE(HasConcreteFact(normalized, u, "E+", {"Ada", "IBM"},
                              Interval(2012, 2013)));
  EXPECT_TRUE(HasConcreteFact(normalized, u, "E+", {"Ada", "IBM"},
                              Interval(2013, 2014)));
  EXPECT_TRUE(HasConcreteFact(normalized, u, "E+", {"Ada", "Google"},
                              Interval::FromStart(2014)));
  EXPECT_TRUE(HasConcreteFact(normalized, u, "E+", {"Bob", "IBM"},
                              Interval(2013, 2015)));
  EXPECT_TRUE(HasConcreteFact(normalized, u, "E+", {"Bob", "IBM"},
                              Interval(2015, 2018)));

  EXPECT_EQ(testing::CountFacts(normalized, "S+"), 4u);
  EXPECT_TRUE(HasConcreteFact(normalized, u, "S+", {"Ada", "18k"},
                              Interval(2013, 2014)));
  EXPECT_TRUE(HasConcreteFact(normalized, u, "S+", {"Ada", "18k"},
                              Interval::FromStart(2014)));
  EXPECT_TRUE(HasConcreteFact(normalized, u, "S+", {"Bob", "13k"},
                              Interval(2015, 2018)));
  EXPECT_TRUE(HasConcreteFact(normalized, u, "S+", {"Bob", "13k"},
                              Interval::FromStart(2018)));

  EXPECT_EQ(stats.input_facts, 5u);
  EXPECT_EQ(stats.output_facts, 9u);
  EXPECT_EQ(stats.groups, 2u);  // {Ada's three facts}, {Bob's two facts}
}

// Figure 6: the naive normalizer cuts every fact at every endpoint and
// produces strictly more facts (14 > 9).
TEST_F(PaperNormalizeTest, Figure6NaiveNormalization) {
  NormalizeStats stats;
  const ConcreteInstance normalized =
      NaiveNormalize(program_->source, &stats);
  const Universe& u = program_->universe;

  EXPECT_EQ(testing::CountFacts(normalized, "E+"), 8u);
  EXPECT_EQ(testing::CountFacts(normalized, "S+"), 6u);
  EXPECT_EQ(stats.output_facts, 14u);

  // Spot-check the rows of Figure 6.
  EXPECT_TRUE(HasConcreteFact(normalized, u, "E+", {"Ada", "Google"},
                              Interval(2014, 2015)));
  EXPECT_TRUE(HasConcreteFact(normalized, u, "E+", {"Ada", "Google"},
                              Interval(2015, 2018)));
  EXPECT_TRUE(HasConcreteFact(normalized, u, "E+", {"Ada", "Google"},
                              Interval::FromStart(2018)));
  EXPECT_TRUE(HasConcreteFact(normalized, u, "S+", {"Ada", "18k"},
                              Interval(2013, 2014)));
  EXPECT_TRUE(HasConcreteFact(normalized, u, "S+", {"Ada", "18k"},
                              Interval(2014, 2015)));
  EXPECT_TRUE(HasConcreteFact(normalized, u, "S+", {"Ada", "18k"},
                              Interval(2015, 2018)));
  EXPECT_TRUE(HasConcreteFact(normalized, u, "S+", {"Ada", "18k"},
                              Interval::FromStart(2018)));
}

TEST_F(PaperNormalizeTest, BothNormalizersSatisfyEmptyIntersection) {
  const auto phis = program_->lifted.TgdBodies();
  EXPECT_FALSE(HasEmptyIntersectionProperty(program_->source, phis));
  EXPECT_TRUE(HasEmptyIntersectionProperty(
      Normalize(program_->source, phis), phis));
  EXPECT_TRUE(
      HasEmptyIntersectionProperty(NaiveNormalize(program_->source), phis));
}

TEST_F(PaperNormalizeTest, SchemaAwareNeverLargerThanNaive) {
  const ConcreteInstance byalg =
      Normalize(program_->source, program_->lifted.TgdBodies());
  const ConcreteInstance bynaive = NaiveNormalize(program_->source);
  EXPECT_LE(byalg.size(), bynaive.size());
}

TEST_F(PaperNormalizeTest, NormalizationPreservesSnapshots) {
  const ConcreteInstance normalized =
      Normalize(program_->source, program_->lifted.TgdBodies());
  for (TimePoint l : {2011u, 2012u, 2013u, 2014u, 2015u, 2018u, 2030u}) {
    auto before = SnapshotAt(program_->source, l, &program_->universe);
    auto after = SnapshotAt(normalized, l, &program_->universe);
    ASSERT_TRUE(before.ok());
    ASSERT_TRUE(after.ok());
    EXPECT_EQ(*before, *after) << "l=" << l;
  }
}

TEST_F(PaperNormalizeTest, NormalizeIsIdempotent) {
  const auto phis = program_->lifted.TgdBodies();
  const ConcreteInstance once = Normalize(program_->source, phis);
  const ConcreteInstance twice = Normalize(once, phis);
  EXPECT_EQ(once.facts(), twice.facts());
}

// Example 14 / Figures 7-8: three relations, two conjunctions; the two
// groups {f1, f2, f3} (merged via shared f2) and {f4, f5}.
TEST(NormalizeExample14Test, ReproducesFigure8) {
  auto program = ParseOrDie(R"(
    source R(a);
    source P(a);
    source Sx(a);
    target Dummy(a);
    # Two tgds supply the conjunctions phi1 = R(x) & P(y) and
    # phi2 = P(x) & Sx(y); heads are irrelevant to normalization.
    tgd t1: R(x) & P(y) -> Dummy(x);
    tgd t2: P(x) & Sx(y) -> Dummy(x);
    fact R("a")  @ [5, 11);
    fact P("a")  @ [8, 15);
    fact Sx("a") @ [7, 10);
    fact P("b")  @ [20, 25);
    fact Sx("b") @ [18, inf);
  )");
  NormalizeStats stats;
  const ConcreteInstance normalized =
      Normalize(program->source, program->lifted.TgdBodies(), &stats);
  const Universe& u = program->universe;

  // Figure 8, R+: f1 fragments at TP{5,7,8,10,11,15} into 4 pieces.
  EXPECT_EQ(testing::CountFacts(normalized, "R+"), 4u);
  for (const Interval& iv : {Interval(5, 7), Interval(7, 8), Interval(8, 10),
                             Interval(10, 11)}) {
    EXPECT_TRUE(HasConcreteFact(normalized, u, "R+", {"a"}, iv))
        << iv.ToString();
  }
  // Figure 8, P+: f2 -> 3 fragments; f4 -> 2 fragments ([20,25) cut at
  // nothing inside by Delta2's points {18, 20, 25}).
  EXPECT_TRUE(HasConcreteFact(normalized, u, "P+", {"a"}, Interval(8, 10)));
  EXPECT_TRUE(HasConcreteFact(normalized, u, "P+", {"a"}, Interval(10, 11)));
  EXPECT_TRUE(HasConcreteFact(normalized, u, "P+", {"a"}, Interval(11, 15)));
  EXPECT_TRUE(HasConcreteFact(normalized, u, "P+", {"b"}, Interval(20, 25)));
  // Figure 8, Sx+: f3 -> 2 fragments; f5 -> 3 fragments.
  EXPECT_TRUE(HasConcreteFact(normalized, u, "Sx+", {"a"}, Interval(7, 8)));
  EXPECT_TRUE(HasConcreteFact(normalized, u, "Sx+", {"a"}, Interval(8, 10)));
  EXPECT_TRUE(HasConcreteFact(normalized, u, "Sx+", {"b"}, Interval(18, 20)));
  EXPECT_TRUE(HasConcreteFact(normalized, u, "Sx+", {"b"}, Interval(20, 25)));
  EXPECT_TRUE(HasConcreteFact(normalized, u, "Sx+", {"b"},
                              Interval::FromStart(25)));
  EXPECT_EQ(stats.groups, 2u);
}

TEST(NormalizeWorstCaseTest, Theorem13QuadraticGrowth) {
  // With n pairwise-overlapping facts matched by a binary conjunction, the
  // normalized instance has n + 2 * (0 + 1 + ... + n-1) = n^2 fragments.
  for (std::size_t n : {4u, 8u, 16u}) {
    auto w = MakeWorstCaseNormalizationWorkload(n);
    NormalizeStats stats;
    const ConcreteInstance normalized =
        Normalize(w->source, w->lifted.TgdBodies(), &stats);
    EXPECT_EQ(stats.input_facts, n);
    EXPECT_EQ(normalized.size(), n * n) << "n=" << n;
    EXPECT_EQ(stats.groups, 1u);
  }
}

TEST(NormalizeEdgeTest, EmptyInstanceAndNoConjunctions) {
  Schema schema;
  const RelationId r =
      *schema.AddRelationPair("R", {"a"}, SchemaRole::kSource);
  (void)r;
  ConcreteInstance empty(&schema);
  EXPECT_TRUE(Normalize(empty, {}).empty());
  EXPECT_TRUE(NaiveNormalize(empty).empty());
  EXPECT_TRUE(HasEmptyIntersectionProperty(empty, {}));
}

TEST(NormalizeEdgeTest, SingleAtomConjunctionNeverFragments) {
  Universe u;
  Schema schema;
  const RelationId r_plus =
      *schema.AddRelationPair("R", {"a"}, SchemaRole::kSource);
  ConcreteInstance ic(&schema);
  ASSERT_TRUE(ic.Add(r_plus, {u.Constant("x")}, Interval(0, 10)).ok());
  ASSERT_TRUE(ic.Add(r_plus, {u.Constant("y")}, Interval(5, 15)).ok());

  Conjunction phi;  // R+(x, t): one atom — images are singletons.
  Atom atom;
  atom.rel = r_plus;
  atom.terms = {Term::Var(0), Term::Var(1)};
  phi.atoms = {atom};
  phi.num_vars = 2;

  const ConcreteInstance out = Normalize(ic, {phi});
  EXPECT_EQ(out.size(), 2u);
  EXPECT_TRUE(HasEmptyIntersectionProperty(ic, {phi}));
}

}  // namespace
}  // namespace tdx
