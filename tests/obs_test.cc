// Observability subsystem tests: histogram bucket math, deterministic shard
// merges under parallel writers, Chrome-trace well-formedness, and the
// zero-allocation guarantee for steady-state metric writes.
//
// The counting allocator overrides global operator new/delete for THIS test
// binary only (same pattern as hom_alloc_test), so the counters see every
// allocation a metric increment or span record makes.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace {

std::atomic<std::size_t> g_allocations{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace tdx::obs {
namespace {

// --- histogram bucket math -------------------------------------------------

TEST(HistogramBuckets, ZeroLandsInBucketZero) {
  EXPECT_EQ(HistogramBucketIndex(0), 0u);
}

TEST(HistogramBuckets, PowersOfTwoLandOnBoundaries) {
  // Bucket b holds [2^(b-1), 2^b): the value 1 is bucket 1, 2 is bucket 2,
  // 3 is bucket 2, 4 is bucket 3, ...
  EXPECT_EQ(HistogramBucketIndex(1), 1u);
  EXPECT_EQ(HistogramBucketIndex(2), 2u);
  EXPECT_EQ(HistogramBucketIndex(3), 2u);
  EXPECT_EQ(HistogramBucketIndex(4), 3u);
  EXPECT_EQ(HistogramBucketIndex(7), 3u);
  EXPECT_EQ(HistogramBucketIndex(8), 4u);
}

TEST(HistogramBuckets, EveryValueLandsBelowItsBucketBound) {
  for (std::uint64_t v : {0ull, 1ull, 2ull, 3ull, 100ull, 65536ull,
                          1000000007ull, ~0ull}) {
    const std::size_t b = HistogramBucketIndex(v);
    ASSERT_LT(b, kHistogramBuckets);
    // The overflow bucket's bound is inclusive (UINT64_MAX is in range).
    EXPECT_LE(v, HistogramBucketBound(b)) << "value " << v;
    if (b > 0 && b + 1 < kHistogramBuckets) {
      EXPECT_GE(v, HistogramBucketBound(b - 1)) << "value " << v;
    }
  }
}

TEST(HistogramBuckets, HugeValuesOverflowIntoLastBucket) {
  EXPECT_EQ(HistogramBucketIndex(~0ull), kHistogramBuckets - 1);
  EXPECT_EQ(HistogramBucketBound(kHistogramBuckets - 1), ~0ull);
}

// --- registry semantics ----------------------------------------------------

TEST(MetricsRegistry, SameNameSharesOneMetric) {
  Counter a("obs_test.shared");
  Counter b("obs_test.shared");
  a.Inc(2);
  b.Inc(3);
  const MetricsSnapshot snap = MetricsRegistry::Instance().Snapshot();
  const MetricValue* m = snap.Find("obs_test.shared");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->value, 5u);
}

TEST(MetricsRegistry, GaugeKeepsHighWatermark) {
  Gauge gauge("obs_test.gauge");
  gauge.Set(7);
  gauge.Set(3);
  const MetricsSnapshot snap = MetricsRegistry::Instance().Snapshot();
  const MetricValue* m = snap.Find("obs_test.gauge");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->value, 7u);
}

TEST(MetricsRegistry, DisabledWritesAreDropped) {
  Counter counter("obs_test.disabled");
  MetricsRegistry::Instance().SetEnabled(false);
  counter.Inc(100);
  MetricsRegistry::Instance().SetEnabled(true);
  counter.Inc(1);
  const MetricsSnapshot snap = MetricsRegistry::Instance().Snapshot();
  const MetricValue* m = snap.Find("obs_test.disabled");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->value, 1u);
}

TEST(MetricsRegistry, ParallelWritersMergeDeterministically) {
  // The merge must equal the arithmetic total no matter how ParallelFor
  // schedules the writers across pool threads (sum is commutative), and the
  // histogram must place every sample. Mirrors the engines' --jobs mode.
  Counter counter("obs_test.parallel_counter");
  Histogram histogram("obs_test.parallel_histogram");
  Gauge gauge("obs_test.parallel_gauge");
  constexpr std::size_t kTasks = 64;
  constexpr std::uint64_t kPerTask = 1000;
  for (int round = 0; round < 3; ++round) {
    ParallelFor(8, kTasks, [&](std::size_t i) {
      counter.Inc(kPerTask);
      histogram.Record(i);
      gauge.Set(i);
    });
  }
  const MetricsSnapshot snap = MetricsRegistry::Instance().Snapshot();
  const MetricValue* c = snap.Find("obs_test.parallel_counter");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value, 3 * kTasks * kPerTask);
  const MetricValue* h = snap.Find("obs_test.parallel_histogram");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 3 * kTasks);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t b : h->buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, h->count);
  const MetricValue* g = snap.Find("obs_test.parallel_gauge");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->value, kTasks - 1);
}

TEST(MetricsRegistry, ShardsAreRecycledAcrossPools) {
  Counter counter("obs_test.recycle");
  for (int round = 0; round < 4; ++round) {
    ParallelFor(4, 16, [&](std::size_t) { counter.Inc(); });
  }
  const std::size_t after_first_rounds =
      MetricsRegistry::Instance().shard_count();
  for (int round = 0; round < 4; ++round) {
    ParallelFor(4, 16, [&](std::size_t) { counter.Inc(); });
  }
  // Exited pool threads return their shards to the free list, so repeated
  // pools reuse them instead of growing the shard set without bound.
  EXPECT_EQ(MetricsRegistry::Instance().shard_count(), after_first_rounds);
}

// --- snapshot JSON schema --------------------------------------------------

TEST(MetricsSnapshot, ToJsonHasStableSchema) {
  Counter counter("obs_test.json_counter");
  Histogram histogram("obs_test.json_histogram");
  counter.Inc(5);
  histogram.Record(100);
  const std::string text = MetricsRegistry::Instance().Snapshot().ToJson();
  auto parsed = ParseJson(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const Json* version = parsed->Find("version");
  ASSERT_NE(version, nullptr);
  EXPECT_EQ(version->as_int(), 1);
  const Json* counters = parsed->Find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_TRUE(counters->is_object());
  const Json* c = counters->Find("obs_test.json_counter");
  ASSERT_NE(c, nullptr);
  EXPECT_GE(c->as_number(), 5);
  // Counter keys are sorted, so the snapshot diffs cleanly in CI.
  std::string prev;
  for (const JsonMember& member : counters->members()) {
    EXPECT_LT(prev, member.first);
    prev = member.first;
  }
  const Json* histograms = parsed->Find("histograms");
  ASSERT_NE(histograms, nullptr);
  const Json* h = histograms->Find("obs_test.json_histogram");
  ASSERT_NE(h, nullptr);
  ASSERT_NE(h->Find("count"), nullptr);
  ASSERT_NE(h->Find("sum"), nullptr);
  ASSERT_NE(h->Find("buckets"), nullptr);
}

// --- zero-allocation steady state ------------------------------------------

TEST(MetricsAlloc, SteadyStateWritesDoNotAllocate) {
  Counter counter("obs_test.alloc_counter");
  Histogram histogram("obs_test.alloc_histogram");
  Gauge gauge("obs_test.alloc_gauge");
  // Warm: the first write per thread may grow this thread's shard.
  counter.Inc();
  histogram.Record(1);
  gauge.Set(1);
  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  for (std::uint64_t i = 0; i < 10000; ++i) {
    counter.Inc();
    histogram.Record(i);
    gauge.Set(i);
  }
  const std::size_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u);
}

TEST(TraceAlloc, SpansWithoutTracerDoNotAllocate) {
  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 10000; ++i) {
    TDX_TRACE_SPAN("obs_test.noop");
  }
  const std::size_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u);
}

TEST(TraceAlloc, RecordingStaysWithinReservedBuffer) {
  Tracer tracer;
  ScopedTracer installed(&tracer);
  // Warm: first span acquires this thread's event buffer (reserved ahead).
  { TDX_TRACE_SPAN("obs_test.warm"); }
  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 100; ++i) {
    TDX_TRACE_SPAN("obs_test.record");
  }
  const std::size_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u);
  EXPECT_GE(tracer.event_count(), 101u);
}

// --- trace well-formedness -------------------------------------------------

/// Parses a tracer's output and returns the events array (asserting the
/// document shape on the way).
Json ParseTrace(const Tracer& tracer) {
  auto parsed = ParseJson(tracer.ToChromeTraceJson());
  EXPECT_TRUE(parsed.ok()) << parsed.status();
  if (!parsed.ok()) return Json();
  const Json* events = parsed->Find("traceEvents");
  EXPECT_NE(events, nullptr);
  if (events == nullptr) return Json();
  EXPECT_TRUE(events->is_array());
  return *events;
}

TEST(Trace, EmitsWellFormedCompleteEvents) {
  Tracer tracer;
  {
    ScopedTracer installed(&tracer);
    TDX_TRACE_SPAN("outer");
    { TDX_TRACE_SPAN("inner"); }
    { TDX_TRACE_SPAN("inner"); }
  }
  const Json events = ParseTrace(tracer);
  ASSERT_EQ(events.items().size(), 3u);
  for (const Json& event : events.items()) {
    // Complete events only: a trace can never contain an orphaned begin or
    // end, even when a guard trip unwinds an engine mid-phase.
    const Json* ph = event.Find("ph");
    ASSERT_NE(ph, nullptr);
    EXPECT_EQ(ph->as_string(), "X");
    EXPECT_NE(event.Find("name"), nullptr);
    EXPECT_NE(event.Find("ts"), nullptr);
    EXPECT_NE(event.Find("dur"), nullptr);
    EXPECT_NE(event.Find("tid"), nullptr);
  }
}

TEST(Trace, SpansNestPerThread) {
  Tracer tracer;
  {
    ScopedTracer installed(&tracer);
    TDX_TRACE_SPAN("root");
    ParallelFor(4, 16, [&](std::size_t i) {
      TDX_TRACE_SPAN("task");
      if (i % 2 == 0) {
        TDX_TRACE_SPAN("subtask");
      }
    });
  }
  const Json events = ParseTrace(tracer);
  ASSERT_GE(events.items().size(), 25u);
  // On one thread, any two spans either nest or are disjoint — intervals
  // never partially overlap. This is the property chrome://tracing renders
  // as a clean flame graph.
  const auto& items = events.items();
  for (std::size_t i = 0; i < items.size(); ++i) {
    for (std::size_t j = i + 1; j < items.size(); ++j) {
      if (items[i].Find("tid")->as_int() != items[j].Find("tid")->as_int()) {
        continue;
      }
      const double a0 = items[i].Find("ts")->as_number();
      const double a1 = a0 + items[i].Find("dur")->as_number();
      const double b0 = items[j].Find("ts")->as_number();
      const double b1 = b0 + items[j].Find("dur")->as_number();
      const bool disjoint = a1 <= b0 || b1 <= a0;
      const bool a_contains_b = a0 <= b0 && b1 <= a1;
      const bool b_contains_a = b0 <= a0 && a1 <= b1;
      EXPECT_TRUE(disjoint || a_contains_b || b_contains_a)
          << "spans " << i << " and " << j << " partially overlap";
    }
  }
}

TEST(Trace, ParentsPrecedeChildren) {
  Tracer tracer;
  const auto spin_micros = [&tracer](std::uint64_t n) {
    const std::uint64_t until = tracer.NowMicros() + n;
    while (tracer.NowMicros() < until) {
    }
  };
  {
    ScopedTracer installed(&tracer);
    TDX_TRACE_SPAN("parent");
    {
      TDX_TRACE_SPAN("child");
      spin_micros(2);
    }
    // The parent must outlast the child so the (ts asc, dur desc) sort has
    // a strict order to establish.
    spin_micros(2);
  }
  const Json events = ParseTrace(tracer);
  ASSERT_EQ(events.items().size(), 2u);
  // Sorted by (ts asc, dur desc): the enclosing span comes first.
  EXPECT_EQ(events.items()[0].Find("name")->as_string(), "parent");
  EXPECT_EQ(events.items()[1].Find("name")->as_string(), "child");
}

TEST(Trace, ArgsRenderIntoTheEvent) {
  Tracer tracer;
  {
    ScopedTracer installed(&tracer);
    TraceSpan span("with_arg");
    span.SetArg("tasks", 42);
  }
  const Json events = ParseTrace(tracer);
  ASSERT_EQ(events.items().size(), 1u);
  const Json* args = events.items()[0].Find("args");
  ASSERT_NE(args, nullptr);
  const Json* tasks = args->Find("tasks");
  ASSERT_NE(tasks, nullptr);
  EXPECT_EQ(tasks->as_int(), 42);
}

TEST(Trace, MarkProcessStartBackdatesTheEpoch) {
  Tracer tracer;
  tracer.MarkProcessStart();
  if (tracer.event_count() == 0) {
    GTEST_SKIP() << "no process start time on this platform";
  }
  {
    ScopedTracer installed(&tracer);
    TDX_TRACE_SPAN("work");
  }
  const Json events = ParseTrace(tracer);
  ASSERT_EQ(events.items().size(), 2u);
  // The init span sorts first (ts 0) and ends at or before every later
  // span's start: startup and run time never overlap in the trace.
  const Json& init = events.items()[0];
  EXPECT_EQ(init.Find("name")->as_string(), "process.init");
  EXPECT_EQ(init.Find("ts")->as_number(), 0.0);
  const double init_end = init.Find("dur")->as_number();
  EXPECT_GT(init_end, 0.0);
  EXPECT_GE(events.items()[1].Find("ts")->as_number(), init_end);
}

TEST(Trace, NoTracerMeansNoEvents) {
  Tracer tracer;
  { TDX_TRACE_SPAN("not_recorded"); }
  EXPECT_EQ(tracer.event_count(), 0u);
}

TEST(Trace, WriteMatchesToChromeTraceJson) {
  Tracer tracer;
  {
    ScopedTracer installed(&tracer);
    TDX_TRACE_SPAN("span");
  }
  std::ostringstream out;
  tracer.Write(out);
  EXPECT_EQ(out.str(), tracer.ToChromeTraceJson() + "\n");
}

}  // namespace
}  // namespace tdx::obs
