#include "src/relational/chase.h"

#include <gtest/gtest.h>

#include "src/relational/universal.h"

namespace tdx {
namespace {

// The paper's Example 1 mapping over snapshot relations:
//   sigma1: E(n, c) -> exists s: Emp(n, c, s)
//   sigma2: E(n, c) & S(n, s) -> Emp(n, c, s)
//   e1:     Emp(n, c, s) & Emp(n, c, s2) -> s = s2
class ChaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    e_ = *schema_.AddRelation("E", {"name", "company"}, SchemaRole::kSource);
    s_ = *schema_.AddRelation("S", {"name", "salary"}, SchemaRole::kSource);
    emp_ = *schema_.AddRelation("Emp", {"name", "company", "salary"},
                                SchemaRole::kTarget);

    Tgd sigma1;
    sigma1.label = "sigma1";
    sigma1.body.atoms = {MakeAtom(e_, {Term::Var(0), Term::Var(1)})};
    sigma1.head.atoms = {
        MakeAtom(emp_, {Term::Var(0), Term::Var(1), Term::Var(2)})};
    sigma1.body.num_vars = sigma1.head.num_vars = 3;
    ASSERT_TRUE(sigma1.Finalize().ok());

    Tgd sigma2;
    sigma2.label = "sigma2";
    sigma2.body.atoms = {MakeAtom(e_, {Term::Var(0), Term::Var(1)}),
                         MakeAtom(s_, {Term::Var(0), Term::Var(2)})};
    sigma2.head.atoms = {
        MakeAtom(emp_, {Term::Var(0), Term::Var(1), Term::Var(2)})};
    sigma2.body.num_vars = sigma2.head.num_vars = 3;
    ASSERT_TRUE(sigma2.Finalize().ok());

    Egd e1;
    e1.label = "e1";
    e1.body.atoms = {MakeAtom(emp_, {Term::Var(0), Term::Var(1), Term::Var(2)}),
                     MakeAtom(emp_, {Term::Var(0), Term::Var(1), Term::Var(3)})};
    e1.body.num_vars = 4;
    e1.x1 = 2;
    e1.x2 = 3;
    ASSERT_TRUE(e1.Finalize().ok());

    mapping_.st_tgds = {std::move(sigma1), std::move(sigma2)};
    mapping_.egds = {std::move(e1)};
    ASSERT_TRUE(ValidateMapping(mapping_, schema_).ok());
  }

  Atom MakeAtom(RelationId rel, std::vector<Term> terms) {
    Atom atom;
    atom.rel = rel;
    atom.terms = std::move(terms);
    return atom;
  }

  Universe u_;
  Schema schema_;
  Mapping mapping_;
  RelationId e_ = 0, s_ = 0, emp_ = 0;
};

TEST_F(ChaseTest, KnownSalaryProducesCompleteFact) {
  // Figure 1, snapshot 2013 for Ada: E(Ada, IBM), S(Ada, 18k).
  Instance source(&schema_);
  source.Insert(e_, {u_.Constant("Ada"), u_.Constant("IBM")});
  source.Insert(s_, {u_.Constant("Ada"), u_.Constant("18k")});

  auto outcome = ChaseSnapshot(source, mapping_, &u_);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->kind, ChaseResultKind::kSuccess);
  EXPECT_TRUE(outcome->target.Contains(Fact(
      emp_, {u_.Constant("Ada"), u_.Constant("IBM"), u_.Constant("18k")})));
  // After the egd merges sigma1's null into 18k there is exactly one fact.
  EXPECT_EQ(outcome->target.size(), 1u);
}

TEST_F(ChaseTest, UnknownSalaryProducesNull) {
  // Figure 1, snapshot 2013 for Bob: E(Bob, IBM), no salary.
  Instance source(&schema_);
  source.Insert(e_, {u_.Constant("Bob"), u_.Constant("IBM")});

  auto outcome = ChaseSnapshot(source, mapping_, &u_);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->kind, ChaseResultKind::kSuccess);
  ASSERT_EQ(outcome->target.facts(emp_).size(), 1u);
  const FactView fact = outcome->target.facts(emp_)[0];
  EXPECT_EQ(fact.arg(0), u_.Constant("Bob"));
  EXPECT_EQ(fact.arg(1), u_.Constant("IBM"));
  EXPECT_TRUE(fact.arg(2).is_null());
}

TEST_F(ChaseTest, EgdFailureOnConflictingConstants) {
  Instance source(&schema_);
  source.Insert(e_, {u_.Constant("Ada"), u_.Constant("IBM")});
  source.Insert(s_, {u_.Constant("Ada"), u_.Constant("18k")});
  source.Insert(s_, {u_.Constant("Ada"), u_.Constant("20k")});

  auto outcome = ChaseSnapshot(source, mapping_, &u_);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->kind, ChaseResultKind::kFailure);
  EXPECT_FALSE(outcome->failure_reason.empty());
}

TEST_F(ChaseTest, EmptySourceProducesEmptyTarget) {
  Instance source(&schema_);
  auto outcome = ChaseSnapshot(source, mapping_, &u_);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->kind, ChaseResultKind::kSuccess);
  EXPECT_TRUE(outcome->target.empty());
}

TEST_F(ChaseTest, RestrictedChaseSkipsWitnessedTriggers) {
  // With both sigma2 and sigma1 applicable, firing order matters only for
  // economy: sigma2's complete fact should satisfy sigma1's trigger. The
  // chase fires sigma1 first (declaration order), so an extra null is
  // created and then merged by the egd; either way the final target is the
  // single complete fact and at most one null is minted.
  Instance source(&schema_);
  source.Insert(e_, {u_.Constant("Ada"), u_.Constant("IBM")});
  source.Insert(s_, {u_.Constant("Ada"), u_.Constant("18k")});
  auto outcome = ChaseSnapshot(source, mapping_, &u_);
  ASSERT_TRUE(outcome.ok());
  EXPECT_LE(outcome->stats.fresh_nulls, 1u);
  EXPECT_EQ(outcome->target.size(), 1u);
}

TEST_F(ChaseTest, TriggersDedupedByHeadValues) {
  // Two S facts with the same salary for the same person yield the same
  // head image; the trigger fires once.
  Instance source(&schema_);
  source.Insert(e_, {u_.Constant("Ada"), u_.Constant("IBM")});
  source.Insert(s_, {u_.Constant("Ada"), u_.Constant("18k")});
  auto outcome = ChaseSnapshot(source, mapping_, &u_);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->target.facts(emp_).size(), 1u);
}

TEST_F(ChaseTest, ResultIsUniversalAmongHandBuiltSolutions) {
  Instance source(&schema_);
  source.Insert(e_, {u_.Constant("Ada"), u_.Constant("IBM")});
  source.Insert(e_, {u_.Constant("Bob"), u_.Constant("IBM")});
  source.Insert(s_, {u_.Constant("Ada"), u_.Constant("18k")});
  auto outcome = ChaseSnapshot(source, mapping_, &u_);
  ASSERT_TRUE(outcome.ok());
  ASSERT_EQ(outcome->kind, ChaseResultKind::kSuccess);

  // A solution instantiating Bob's unknown salary with a constant.
  Instance solution1(&schema_);
  solution1.Insert(emp_, {u_.Constant("Ada"), u_.Constant("IBM"),
                          u_.Constant("18k")});
  solution1.Insert(emp_, {u_.Constant("Bob"), u_.Constant("IBM"),
                          u_.Constant("55k")});
  EXPECT_TRUE(
      FindInstanceHomomorphism(outcome->target, solution1).has_value());

  // A solution with extra facts is still a solution; hom must exist.
  Instance solution2 = solution1;
  solution2.Insert(emp_, {u_.Constant("Eve"), u_.Constant("ACME"),
                          u_.Constant("1k")});
  EXPECT_TRUE(
      FindInstanceHomomorphism(outcome->target, solution2).has_value());

  // A non-solution (wrong salary for Ada) admits no homomorphism, since
  // 18k is a constant in the chase result.
  Instance non_solution(&schema_);
  non_solution.Insert(emp_, {u_.Constant("Ada"), u_.Constant("IBM"),
                             u_.Constant("99k")});
  non_solution.Insert(emp_, {u_.Constant("Bob"), u_.Constant("IBM"),
                             u_.Constant("55k")});
  EXPECT_FALSE(
      FindInstanceHomomorphism(outcome->target, non_solution).has_value());
}

TEST_F(ChaseTest, EgdMergesTwoNulls) {
  // Schema P(a), target Q(a, b) with tgd P(x) -> exists y: Q(x, y) twice
  // via two tgds, then an egd forcing the two nulls equal.
  Schema schema;
  const RelationId p = *schema.AddRelation("P", {"a"}, SchemaRole::kSource);
  const RelationId q =
      *schema.AddRelation("Q", {"a", "b"}, SchemaRole::kTarget);
  const RelationId r =
      *schema.AddRelation("Rr", {"a", "b"}, SchemaRole::kTarget);

  auto atom = [](RelationId rel, std::vector<Term> terms) {
    Atom a;
    a.rel = rel;
    a.terms = std::move(terms);
    return a;
  };

  Tgd t1;
  t1.body.atoms = {atom(p, {Term::Var(0)})};
  t1.head.atoms = {atom(q, {Term::Var(0), Term::Var(1)})};
  t1.body.num_vars = t1.head.num_vars = 2;
  ASSERT_TRUE(t1.Finalize().ok());
  Tgd t2;
  t2.body.atoms = {atom(p, {Term::Var(0)})};
  t2.head.atoms = {atom(r, {Term::Var(0), Term::Var(1)})};
  t2.body.num_vars = t2.head.num_vars = 2;
  ASSERT_TRUE(t2.Finalize().ok());

  Egd egd;  // Q(x, y) & Rr(x, z) -> y = z
  egd.body.atoms = {atom(q, {Term::Var(0), Term::Var(1)}),
                    atom(r, {Term::Var(0), Term::Var(2)})};
  egd.body.num_vars = 3;
  egd.x1 = 1;
  egd.x2 = 2;
  ASSERT_TRUE(egd.Finalize().ok());

  Mapping mapping;
  mapping.st_tgds = {t1, t2};
  mapping.egds = {egd};

  Universe u;
  Instance source(&schema);
  source.Insert(p, {u.Constant("a")});
  auto outcome = ChaseSnapshot(source, mapping, &u);
  ASSERT_TRUE(outcome.ok());
  ASSERT_EQ(outcome->kind, ChaseResultKind::kSuccess);
  ASSERT_EQ(outcome->target.facts(q).size(), 1u);
  ASSERT_EQ(outcome->target.facts(r).size(), 1u);
  // After the egd, both facts carry the same null.
  EXPECT_EQ(outcome->target.facts(q)[0].arg(1),
            outcome->target.facts(r)[0].arg(1));
  EXPECT_EQ(outcome->stats.egd_steps, 1u);
}

}  // namespace
}  // namespace tdx
