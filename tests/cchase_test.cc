#include "src/core/cchase.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace tdx {
namespace {

using ::tdx::testing::HasConcreteFact;
using ::tdx::testing::ParseOrDie;

class PaperCChaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    program_ = ParseOrDie(testing::kPaperProgram);
    auto outcome = CChase(program_->source, program_->lifted,
                          &program_->universe);
    ASSERT_TRUE(outcome.ok()) << outcome.status();
    outcome_ = std::make_unique<CChaseOutcome>(std::move(outcome).value());
  }

  std::unique_ptr<ParsedProgram> program_;
  std::unique_ptr<CChaseOutcome> outcome_;
};

// Example 17 / Figure 9: the complete rows of the c-chase result.
TEST_F(PaperCChaseTest, Figure9CompleteRows) {
  ASSERT_EQ(outcome_->kind, ChaseResultKind::kSuccess);
  const Universe& u = program_->universe;
  const ConcreteInstance& jc = outcome_->target;
  EXPECT_TRUE(
      HasConcreteFact(jc, u, "Emp+", {"Ada", "IBM", "18k"},
                      Interval(2013, 2014)));
  EXPECT_TRUE(HasConcreteFact(jc, u, "Emp+", {"Ada", "Google", "18k"},
                              Interval::FromStart(2014)));
  EXPECT_TRUE(HasConcreteFact(jc, u, "Emp+", {"Bob", "IBM", "13k"},
                              Interval(2015, 2018)));
}

// Figure 9's two unknown rows carry interval-annotated nulls whose
// annotations equal the facts' intervals.
TEST_F(PaperCChaseTest, Figure9AnnotatedNullRows) {
  const Universe& u = program_->universe;
  const ConcreteInstance& jc = outcome_->target;
  const RelationId emp_plus = *program_->schema.Find("Emp+");

  std::size_t null_rows = 0;
  for (const FactView fact : jc.facts().facts(emp_plus)) {
    const Value& salary = fact.arg(2);
    if (!salary.is_annotated_null()) continue;
    ++null_rows;
    EXPECT_EQ(salary.interval(), fact.interval());
    const std::string name = u.Render(fact.arg(0));
    if (name == "Ada") {
      EXPECT_EQ(fact.interval(), Interval(2012, 2013));
      EXPECT_EQ(u.Render(fact.arg(1)), "IBM");
    } else {
      EXPECT_EQ(name, "Bob");
      EXPECT_EQ(fact.interval(), Interval(2013, 2015));
      EXPECT_EQ(u.Render(fact.arg(1)), "IBM");
    }
  }
  EXPECT_EQ(null_rows, 2u);
  EXPECT_EQ(jc.size(), 5u);  // exactly the five rows of Figure 9
}

TEST_F(PaperCChaseTest, NormalizedSourceIsFigure5) {
  // Step 1 of the c-chase materializes Figure 5.
  EXPECT_EQ(outcome_->source_norm_stats.output_facts, 9u);
  EXPECT_TRUE(HasConcreteFact(outcome_->normalized_source,
                              program_->universe, "E+", {"Bob", "IBM"},
                              Interval(2013, 2015)));
}

TEST_F(PaperCChaseTest, TargetIsValidConcreteInstance) {
  EXPECT_TRUE(outcome_->target.Validate().ok());
  EXPECT_FALSE(outcome_->target.IsComplete());
}

TEST(CChaseTest, FailsOnConflictingConstants) {
  auto program = ParseOrDie(R"(
    source E(name, company);
    source S(name, salary);
    target Emp(name, company, salary);
    tgd E(n, c) & S(n, s) -> Emp(n, c, s);
    egd Emp(n, c, s) & Emp(n, c, s2) -> s = s2;
    fact E("Ada", "IBM") @ [0, 10);
    fact S("Ada", "18k") @ [0, 10);
    fact S("Ada", "20k") @ [5, 10);
  )");
  auto outcome = CChase(program->source, program->lifted, &program->universe);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->kind, ChaseResultKind::kFailure);
  EXPECT_FALSE(outcome->failure_reason.empty());
}

TEST(CChaseTest, DisjointConflictDoesNotFail) {
  // The same two salaries on DISJOINT intervals are consistent: the egd's
  // shared t never binds across them.
  auto program = ParseOrDie(R"(
    source E(name, company);
    source S(name, salary);
    target Emp(name, company, salary);
    tgd E(n, c) & S(n, s) -> Emp(n, c, s);
    egd Emp(n, c, s) & Emp(n, c, s2) -> s = s2;
    fact E("Ada", "IBM") @ [0, 10);
    fact S("Ada", "18k") @ [0, 5);
    fact S("Ada", "20k") @ [5, 10);
  )");
  auto outcome = CChase(program->source, program->lifted, &program->universe);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->kind, ChaseResultKind::kSuccess);
  EXPECT_TRUE(HasConcreteFact(outcome->target, program->universe, "Emp+",
                              {"Ada", "IBM", "18k"}, Interval(0, 5)));
  EXPECT_TRUE(HasConcreteFact(outcome->target, program->universe, "Emp+",
                              {"Ada", "IBM", "20k"}, Interval(5, 10)));
}

TEST(CChaseTest, RejectsIncompleteSource) {
  auto program = ParseOrDie(R"(
    source E(name, company);
    target T(name);
    tgd E(n, c) -> T(n);
  )");
  const RelationId e_plus = *program->schema.Find("E+");
  ASSERT_TRUE(program->source
                  .Add(e_plus,
                       {program->universe.Constant("Ada"),
                        program->universe.FreshAnnotatedNull(Interval(0, 2))},
                       Interval(0, 2))
                  .ok());
  EXPECT_FALSE(CChase(program->source, program->lifted,
                      &program->universe)
                   .ok());
}

TEST(CChaseTest, EgdFragmentsTargetBeforeMerging) {
  // sigma1 produces Emp(Ada, IBM, N^[0,10), [0,10)); sigma2 produces
  // Emp(Ada, IBM, 18k, [3,6)). Target normalization w.r.t. the egd body
  // must fragment the null row so the egd can equate the middle piece.
  auto program = ParseOrDie(R"(
    source E(name, company);
    source S(name, salary);
    target Emp(name, company, salary);
    tgd sigma1: E(n, c) -> exists s: Emp(n, c, s);
    tgd sigma2: E(n, c) & S(n, s) -> Emp(n, c, s);
    egd Emp(n, c, s) & Emp(n, c, s2) -> s = s2;
    fact E("Ada", "IBM") @ [0, 10);
    fact S("Ada", "18k") @ [3, 6);
  )");
  auto outcome = CChase(program->source, program->lifted, &program->universe);
  ASSERT_TRUE(outcome.ok());
  ASSERT_EQ(outcome->kind, ChaseResultKind::kSuccess);
  const Universe& u = program->universe;
  EXPECT_TRUE(HasConcreteFact(outcome->target, u, "Emp+",
                              {"Ada", "IBM", "18k"}, Interval(3, 6)));
  // The unknown pieces surround the known one.
  EXPECT_TRUE(HasConcreteFact(outcome->target, u, "Emp+", {"Ada", "IBM", "_"},
                              Interval(0, 3)));
  EXPECT_TRUE(HasConcreteFact(outcome->target, u, "Emp+", {"Ada", "IBM", "_"},
                              Interval(6, 10)));
  EXPECT_EQ(outcome->target.size(), 3u);
  EXPECT_TRUE(outcome->target.Validate().ok());
}

TEST(CChaseTest, CoalesceOptionCompactsResult) {
  auto program = ParseOrDie(R"(
    source E(name, company);
    source S(name, salary);
    target Emp(name, company, salary);
    tgd E(n, c) & S(n, s) -> Emp(n, c, s);
    fact E("Ada", "IBM") @ [0, 10);
    fact S("Ada", "18k") @ [0, 4);
    fact S("Ada", "18k") @ [4, 10);
  )");
  CChaseOptions plain;
  auto loose = CChase(program->source, program->lifted, &program->universe,
                      plain);
  ASSERT_TRUE(loose.ok());
  CChaseOptions opts;
  opts.coalesce_result = true;
  auto tight = CChase(program->source, program->lifted, &program->universe,
                      opts);
  ASSERT_TRUE(tight.ok());
  EXPECT_GT(loose->target.size(), tight->target.size());
  EXPECT_TRUE(HasConcreteFact(tight->target, program->universe, "Emp+",
                              {"Ada", "IBM", "18k"}, Interval(0, 10)));
}

TEST(CChaseTest, NaiveNormalizerOptionGivesEquivalentResult) {
  auto p1 = ParseOrDie(testing::kPaperProgram);
  auto p2 = ParseOrDie(testing::kPaperProgram);
  auto with_alg = CChase(p1->source, p1->lifted, &p1->universe);
  CChaseOptions opts;
  opts.use_naive_normalizer = true;
  auto with_naive = CChase(p2->source, p2->lifted, &p2->universe, opts);
  ASSERT_TRUE(with_alg.ok());
  ASSERT_TRUE(with_naive.ok());
  EXPECT_EQ(with_alg->kind, with_naive->kind);
  // The naive normalizer fragments more, so the target has at least as
  // many rows; both contain the fully known rows.
  EXPECT_GE(with_naive->target.size(), with_alg->target.size());
  EXPECT_TRUE(HasConcreteFact(with_naive->target, p2->universe, "Emp+",
                              {"Ada", "IBM", "18k"}, Interval(2013, 2014)));
}

TEST(CChaseTest, InferTemporalVarValidation) {
  Schema schema;
  const RelationId r =
      *schema.AddTemporalRelation("R+", {"a"}, SchemaRole::kSource);
  Conjunction good;
  Atom a1, a2;
  a1.rel = r;
  a1.terms = {Term::Var(0), Term::Var(2)};
  a2.rel = r;
  a2.terms = {Term::Var(1), Term::Var(2)};
  good.atoms = {a1, a2};
  good.num_vars = 3;
  auto t = InferTemporalVar(good);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(*t, 2u);

  Conjunction mismatched = good;
  mismatched.atoms[1].terms.back() = Term::Var(1);
  EXPECT_FALSE(InferTemporalVar(mismatched).ok());

  Conjunction non_var = good;
  non_var.atoms[0].terms.back() = Term::Val(Value::OfInterval(Interval(0, 1)));
  EXPECT_FALSE(InferTemporalVar(non_var).ok());
}

}  // namespace
}  // namespace tdx
