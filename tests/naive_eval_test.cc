#include "src/core/naive_eval.h"

#include <gtest/gtest.h>

#include "src/core/cchase.h"
#include "tests/test_util.h"

namespace tdx {
namespace {

using ::tdx::testing::ParseOrDie;

class NaiveEvalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    program_ = ParseOrDie(testing::kPaperProgram);
    auto outcome =
        CChase(program_->source, program_->lifted, &program_->universe);
    ASSERT_TRUE(outcome.ok());
    ASSERT_EQ(outcome->kind, ChaseResultKind::kSuccess);
    jc_ = std::make_unique<ConcreteInstance>(std::move(outcome->target));
    auto lifted =
        LiftUnionQuery(**program_->FindQuery("salaries"), program_->schema);
    ASSERT_TRUE(lifted.ok());
    lifted_query_ = std::make_unique<UnionQuery>(std::move(lifted).value());
  }

  std::unique_ptr<ParsedProgram> program_;
  std::unique_ptr<ConcreteInstance> jc_;
  std::unique_ptr<UnionQuery> lifted_query_;
};

TEST_F(NaiveEvalTest, KnownSalariesAreAnswers) {
  auto answers = NaiveEvaluateConcrete(*lifted_query_, *jc_);
  ASSERT_TRUE(answers.ok());
  Universe& u = program_->universe;
  const Tuple ada_ibm{u.Constant("Ada"), u.Constant("18k"),
                      Value::OfInterval(Interval(2013, 2014))};
  const Tuple ada_google{u.Constant("Ada"), u.Constant("18k"),
                         Value::OfInterval(Interval::FromStart(2014))};
  const Tuple bob{u.Constant("Bob"), u.Constant("13k"),
                  Value::OfInterval(Interval(2015, 2018))};
  EXPECT_NE(std::find(answers->begin(), answers->end(), ada_ibm),
            answers->end());
  EXPECT_NE(std::find(answers->begin(), answers->end(), ada_google),
            answers->end());
  EXPECT_NE(std::find(answers->begin(), answers->end(), bob), answers->end());
}

TEST_F(NaiveEvalTest, UnknownSalariesAreDropped) {
  auto answers = NaiveEvaluateConcrete(*lifted_query_, *jc_);
  ASSERT_TRUE(answers.ok());
  for (const Tuple& t : *answers) {
    for (const Value& v : t) {
      EXPECT_FALSE(v.is_any_null());
    }
    // No answer may cover 2012 (Ada's salary is unknown then) ...
    EXPECT_FALSE(t.back().interval().Contains(2012));
  }
}

TEST_F(NaiveEvalTest, ConcreteAnswersAtSlicesTuples) {
  auto answers = NaiveEvaluateConcrete(*lifted_query_, *jc_);
  ASSERT_TRUE(answers.ok());
  Universe& u = program_->universe;
  const auto at2013 = ConcreteAnswersAt(*answers, 2013);
  ASSERT_EQ(at2013.size(), 1u);
  EXPECT_EQ(at2013[0], (Tuple{u.Constant("Ada"), u.Constant("18k")}));
  const auto at2016 = ConcreteAnswersAt(*answers, 2016);
  EXPECT_EQ(at2016.size(), 2u);
  const auto at2012 = ConcreteAnswersAt(*answers, 2012);
  EXPECT_TRUE(at2012.empty());
  const auto at2030 = ConcreteAnswersAt(*answers, 2030);
  ASSERT_EQ(at2030.size(), 1u);  // only Ada@Google persists
}

// Theorem 21: [[q+(Jc)!]] = q([[Jc]])! — checked snapshot-wise across the
// interesting time points.
TEST_F(NaiveEvalTest, Theorem21SnapshotAgreement) {
  auto answers = NaiveEvaluateConcrete(*lifted_query_, *jc_);
  ASSERT_TRUE(answers.ok());
  auto jc_abs = AbstractInstance::FromConcrete(*jc_);
  ASSERT_TRUE(jc_abs.ok());
  const UnionQuery& q = **program_->FindQuery("salaries");
  for (TimePoint l : {2011u, 2012u, 2013u, 2014u, 2015u, 2017u, 2018u,
                      2019u, 2040u}) {
    const auto concrete_side = ConcreteAnswersAt(*answers, l);
    const auto abstract_side =
        NaiveEvaluateAbstractAt(q, *jc_abs, l, &program_->universe);
    EXPECT_EQ(concrete_side, abstract_side) << "l=" << l;
  }
}

TEST_F(NaiveEvalTest, QueryJoiningOnNullSeesItAsConstant) {
  // Naive-table semantics: a join through an annotated null succeeds when
  // both atoms carry the SAME null (it acts as a fresh constant), and the
  // tuple is then dropped only if the null appears in the head.
  auto program = ParseOrDie(R"(
    source A(x, y);
    target P(x, y);
    target Q(x, y);
    tgd A(x, y) -> P(x, y);
    query join(x): P(x, y) & Q(y, x);
  )");
  Universe& u = program->universe;
  const RelationId p_plus = *program->schema.Find("P+");
  const RelationId q_plus = *program->schema.Find("Q+");
  ConcreteInstance jc(&program->schema);
  const Value n = u.FreshAnnotatedNull(Interval(0, 5));
  ASSERT_TRUE(jc.Add(p_plus, {u.Constant("a"), n}, Interval(0, 5)).ok());
  ASSERT_TRUE(jc.Add(q_plus, {n, u.Constant("a")}, Interval(0, 5)).ok());

  auto lifted = LiftUnionQuery(**program->FindQuery("join"), program->schema);
  ASSERT_TRUE(lifted.ok());
  auto answers = NaiveEvaluateConcrete(*lifted, jc);
  ASSERT_TRUE(answers.ok());
  ASSERT_EQ(answers->size(), 1u);
  EXPECT_EQ((*answers)[0][0], u.Constant("a"));
}

TEST_F(NaiveEvalTest, NormalizationInsideEvalAlignsIntervals) {
  // P holds on [0, 10), Q on [4, 6): the join answer must carry [4, 6),
  // which only exists after normalizing Jc w.r.t. the query body.
  auto program = ParseOrDie(R"(
    source A(x);
    target P(x);
    target Q(x);
    tgd A(x) -> P(x);
    query pq(x): P(x) & Q(x);
  )");
  Universe& u = program->universe;
  ConcreteInstance jc(&program->schema);
  ASSERT_TRUE(jc.Add(*program->schema.Find("P+"), {u.Constant("a")},
                     Interval(0, 10))
                  .ok());
  ASSERT_TRUE(jc.Add(*program->schema.Find("Q+"), {u.Constant("a")},
                     Interval(4, 6))
                  .ok());
  auto lifted = LiftUnionQuery(**program->FindQuery("pq"), program->schema);
  ASSERT_TRUE(lifted.ok());
  auto answers = NaiveEvaluateConcrete(*lifted, jc);
  ASSERT_TRUE(answers.ok());
  const Tuple expected{u.Constant("a"), Value::OfInterval(Interval(4, 6))};
  EXPECT_NE(std::find(answers->begin(), answers->end(), expected),
            answers->end());
}

}  // namespace
}  // namespace tdx
