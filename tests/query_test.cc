#include "src/core/query.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace tdx {
namespace {

using ::tdx::testing::ParseOrDie;

class QueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    program_ = ParseOrDie(R"(
      source E(name, company);
      target Emp(name, company, salary);
      tgd E(n, c) -> exists s: Emp(n, c, s);
      query names(n): Emp(n, _, _);
      query pairs(n, s): Emp(n, _, s);
    )");
    emp_ = *program_->schema.Find("Emp");
  }

  std::unique_ptr<ParsedProgram> program_;
  RelationId emp_ = 0;
};

TEST_F(QueryTest, EvaluateProjectsHead) {
  Universe& u = program_->universe;
  Instance inst(&program_->schema);
  inst.Insert(emp_, {u.Constant("Ada"), u.Constant("IBM"), u.Constant("18k")});
  inst.Insert(emp_, {u.Constant("Bob"), u.Constant("IBM"), u.Constant("13k")});
  const UnionQuery* q = *program_->FindQuery("names");
  const std::vector<Tuple> answers = Evaluate(*q, inst);
  ASSERT_EQ(answers.size(), 2u);
  EXPECT_EQ(answers[0], Tuple{u.Constant("Ada")});
  EXPECT_EQ(answers[1], Tuple{u.Constant("Bob")});
}

TEST_F(QueryTest, EvaluateDeduplicates) {
  Universe& u = program_->universe;
  Instance inst(&program_->schema);
  inst.Insert(emp_, {u.Constant("Ada"), u.Constant("IBM"), u.Constant("18k")});
  inst.Insert(emp_,
              {u.Constant("Ada"), u.Constant("Google"), u.Constant("20k")});
  const UnionQuery* q = *program_->FindQuery("names");
  EXPECT_EQ(Evaluate(*q, inst).size(), 1u);
}

TEST_F(QueryTest, NullsFlowIntoAnswers) {
  Universe& u = program_->universe;
  Instance inst(&program_->schema);
  const Value n = u.FreshNull();
  inst.Insert(emp_, {u.Constant("Ada"), u.Constant("IBM"), n});
  const UnionQuery* q = *program_->FindQuery("pairs");
  const std::vector<Tuple> raw = Evaluate(*q, inst);
  ASSERT_EQ(raw.size(), 1u);
  EXPECT_EQ(raw[0][1], n);
  EXPECT_TRUE(DropTuplesWithNulls(raw).empty());
}

TEST_F(QueryTest, LiftQueryAddsTemporalHead) {
  const UnionQuery* q = *program_->FindQuery("pairs");
  auto lifted = LiftUnionQuery(*q, program_->schema);
  ASSERT_TRUE(lifted.ok());
  const ConjunctiveQuery& lq = lifted->disjuncts[0];
  ASSERT_TRUE(lq.temporal_var.has_value());
  EXPECT_EQ(lq.head.size(), 3u);  // n, s, t
  EXPECT_EQ(lq.head.back(), *lq.temporal_var);
  for (const Atom& atom : lq.body.atoms) {
    EXPECT_TRUE(program_->schema.relation(atom.rel).temporal);
    EXPECT_EQ(atom.terms.back().var(), *lq.temporal_var);
  }
}

TEST_F(QueryTest, UnionQueryValidateChecksArity) {
  UnionQuery uq;
  uq.name = "bad";
  ConjunctiveQuery q1 = (*program_->FindQuery("names"))->disjuncts[0];
  ConjunctiveQuery q2 = (*program_->FindQuery("pairs"))->disjuncts[0];
  uq.disjuncts = {q1, q2};
  EXPECT_FALSE(uq.Validate().ok());
}

TEST_F(QueryTest, ValidateRejectsHeadVarNotInBody) {
  ConjunctiveQuery q = (*program_->FindQuery("names"))->disjuncts[0];
  q.head.push_back(99);
  EXPECT_FALSE(q.Validate().ok());
}

TEST_F(QueryTest, UnionOfDisjunctsMergesAnswers) {
  auto program = ParseOrDie(R"(
    source A(x);
    source B(x);
    target Ta(x);
    target Tb(x);
    tgd A(x) -> Ta(x);
    tgd B(x) -> Tb(x);
    query both(x): Ta(x);
    query both(x): Tb(x);
  )");
  Universe& u = program->universe;
  Instance inst(&program->schema);
  inst.Insert(*program->schema.Find("Ta"), {u.Constant("1")});
  inst.Insert(*program->schema.Find("Tb"), {u.Constant("2")});
  inst.Insert(*program->schema.Find("Tb"), {u.Constant("1")});
  const UnionQuery* q = *program->FindQuery("both");
  ASSERT_EQ(q->disjuncts.size(), 2u);
  EXPECT_EQ(Evaluate(*q, inst).size(), 2u);  // {1, 2}, deduplicated
}

TEST_F(QueryTest, BooleanQueryYieldsEmptyTupleWhenSatisfied) {
  auto program = ParseOrDie(R"(
    source A(x);
    target Ta(x);
    tgd A(x) -> Ta(x);
    query any(): Ta(x);
  )");
  Universe& u = program->universe;
  Instance inst(&program->schema);
  const UnionQuery* q = *program->FindQuery("any");
  EXPECT_TRUE(Evaluate(*q, inst).empty());
  inst.Insert(*program->schema.Find("Ta"), {u.Constant("1")});
  const std::vector<Tuple> answers = Evaluate(*q, inst);
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_TRUE(answers[0].empty());
}

}  // namespace
}  // namespace tdx
