#include "src/relational/schema.h"

#include <gtest/gtest.h>

namespace tdx {
namespace {

TEST(SchemaTest, AddAndFindRelation) {
  Schema schema;
  auto id = schema.AddRelation("E", {"name", "company"}, SchemaRole::kSource);
  ASSERT_TRUE(id.ok());
  auto found = schema.Find("E");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, *id);
  const RelationSchema& rel = schema.relation(*id);
  EXPECT_EQ(rel.name, "E");
  EXPECT_EQ(rel.arity(), 2u);
  EXPECT_EQ(rel.data_arity(), 2u);
  EXPECT_FALSE(rel.temporal);
}

TEST(SchemaTest, TemporalRelationAppendsT) {
  Schema schema;
  auto id = schema.AddTemporalRelation("E+", {"name", "company"},
                                       SchemaRole::kSource);
  ASSERT_TRUE(id.ok());
  const RelationSchema& rel = schema.relation(*id);
  EXPECT_TRUE(rel.temporal);
  EXPECT_EQ(rel.arity(), 3u);
  EXPECT_EQ(rel.data_arity(), 2u);
  EXPECT_EQ(rel.attributes.back(), "T");
  EXPECT_EQ(rel.temporal_position(), 2u);
}

TEST(SchemaTest, RelationPairLinksTwins) {
  Schema schema;
  auto conc = schema.AddRelationPair("E", {"name", "company"},
                                     SchemaRole::kSource);
  ASSERT_TRUE(conc.ok());
  EXPECT_TRUE(schema.relation(*conc).temporal);
  EXPECT_EQ(schema.relation(*conc).name, "E+");

  auto snap = schema.TwinOf(*conc);
  ASSERT_TRUE(snap.ok());
  EXPECT_FALSE(schema.relation(*snap).temporal);
  EXPECT_EQ(schema.relation(*snap).name, "E");
  auto back = schema.TwinOf(*snap);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, *conc);
}

TEST(SchemaTest, DuplicateNameRejected) {
  Schema schema;
  ASSERT_TRUE(schema.AddRelation("E", {"a"}, SchemaRole::kSource).ok());
  auto dup = schema.AddRelation("E", {"b"}, SchemaRole::kSource);
  EXPECT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
}

TEST(SchemaTest, EmptyNameAndAttributesRejected) {
  Schema schema;
  EXPECT_EQ(schema.AddRelation("", {"a"}, SchemaRole::kSource).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(schema.AddRelation("R", {}, SchemaRole::kSource).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SchemaTest, FindMissingIsNotFound) {
  Schema schema;
  EXPECT_EQ(schema.Find("nope").status().code(), StatusCode::kNotFound);
}

TEST(SchemaTest, TwinOfUnpairedIsNotFound) {
  Schema schema;
  auto id = schema.AddRelation("E", {"a"}, SchemaRole::kSource);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(schema.TwinOf(*id).status().code(), StatusCode::kNotFound);
}

TEST(SchemaTest, RelationsWhereFilters) {
  Schema schema;
  ASSERT_TRUE(schema.AddRelationPair("E", {"a"}, SchemaRole::kSource).ok());
  ASSERT_TRUE(schema.AddRelationPair("T", {"a"}, SchemaRole::kTarget).ok());
  EXPECT_EQ(schema.RelationsWhere(SchemaRole::kSource, false).size(), 1u);
  EXPECT_EQ(schema.RelationsWhere(SchemaRole::kSource, true).size(), 1u);
  EXPECT_EQ(schema.RelationsWhere(SchemaRole::kTarget, true).size(), 1u);
  EXPECT_EQ(schema.relation_count(), 4u);
}

}  // namespace
}  // namespace tdx
