#include "src/core/temporal_ops.h"

#include <gtest/gtest.h>

#include "src/core/align.h"
#include "src/core/cchase.h"
#include "src/temporal/snapshot.h"
#include "tests/test_util.h"

namespace tdx {
namespace {

using ::tdx::testing::HasConcreteFact;
using ::tdx::testing::ParseOrDie;

TEST(TemporalOpNamesTest, RoundTrip) {
  for (TemporalOp op : {TemporalOp::kOncePast, TemporalOp::kAlwaysPast,
                        TemporalOp::kOnceFuture, TemporalOp::kAlwaysFuture}) {
    TemporalOp back;
    ASSERT_TRUE(TemporalOpFromName(TemporalOpName(op), &back));
    EXPECT_EQ(back, op);
  }
  TemporalOp out;
  EXPECT_FALSE(TemporalOpFromName("nonsense", &out));
  EXPECT_EQ(ClosureRelationName("R", TemporalOp::kOncePast), "R__once_past");
}

class ClosureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    r_plus_ = *schema_.AddRelationPair("R", {"a"}, SchemaRole::kSource);
    c_plus_ = *schema_.AddRelationPair("C", {"a"}, SchemaRole::kSource);
  }

  /// Materializes `op` over R+ (facts given as intervals for constant "x")
  /// and returns the closure intervals produced.
  std::vector<Interval> Closure(TemporalOp op,
                                const std::vector<Interval>& ivs) {
    Universe u;
    ConcreteInstance ic(&schema_);
    for (const Interval& iv : ivs) {
      EXPECT_TRUE(ic.Add(r_plus_, {u.Constant("x")}, iv).ok());
    }
    EXPECT_TRUE(MaterializeClosure(ic, r_plus_, op, c_plus_, &ic).ok());
    std::vector<Interval> out;
    for (const FactView f : ic.facts().facts(c_plus_)) {
      out.push_back(f.interval());
    }
    return out;
  }

  Schema schema_;
  RelationId r_plus_ = 0, c_plus_ = 0;
};

TEST_F(ClosureTest, OncePastStartsAtEarliestPoint) {
  const auto out = Closure(TemporalOp::kOncePast,
                           {Interval(5, 8), Interval(2, 3)});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], Interval::FromStart(2));
}

TEST_F(ClosureTest, AlwaysPastRequiresCoverageFromZero) {
  EXPECT_TRUE(Closure(TemporalOp::kAlwaysPast, {Interval(2, 9)}).empty());
  const auto out = Closure(TemporalOp::kAlwaysPast,
                           {Interval(0, 4), Interval(4, 7), Interval(9, 12)});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], Interval(0, 7));  // the run starting at 0, coalesced
}

TEST_F(ClosureTest, OnceFutureEndsAtLatestPoint) {
  const auto out = Closure(TemporalOp::kOnceFuture,
                           {Interval(5, 8), Interval(10, 12)});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], Interval(0, 12));
}

TEST_F(ClosureTest, OnceFutureUnboundedCoversEverything) {
  const auto out = Closure(TemporalOp::kOnceFuture,
                           {Interval(5, 8), Interval::FromStart(20)});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], Interval::FromStart(0));
}

TEST_F(ClosureTest, AlwaysFutureNeedsUnboundedRun) {
  EXPECT_TRUE(Closure(TemporalOp::kAlwaysFuture, {Interval(2, 9)}).empty());
  const auto out = Closure(TemporalOp::kAlwaysFuture,
                           {Interval(2, 5), Interval::FromStart(8)});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], Interval::FromStart(8));
}

TEST_F(ClosureTest, AdjacentRunsCoalesceBeforeClosure) {
  const auto out = Closure(TemporalOp::kAlwaysFuture,
                           {Interval(2, 5), Interval(5, 9),
                            Interval::FromStart(9)});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], Interval::FromStart(2));
}

TEST_F(ClosureTest, RejectsNullsAndWrongArity) {
  Universe u;
  ConcreteInstance ic(&schema_);
  const Value n = u.FreshAnnotatedNull(Interval(0, 2));
  ASSERT_TRUE(ic.Add(r_plus_, {n}, Interval(0, 2)).ok());
  EXPECT_FALSE(
      MaterializeClosure(ic, r_plus_, TemporalOp::kOncePast, c_plus_, &ic)
          .ok());
}

// The paper's Section 7 example: every PhD graduate was once a candidate.
TEST(TemporalOpsParserTest, PhdExampleEndToEnd) {
  auto program = ParseOrDie(R"(
    source Grad(name);
    source Cand(name, adviser);
    target Alum(name, adviser);
    # Alum records pair graduates with an adviser they had at SOME point
    # in the past (the body-side fragment of the paper's extension).
    tgd g1: Grad(n) & once_past(Cand(n, a)) -> Alum(n, a);

    fact Cand("ada", "turing") @ [1, 4);
    fact Grad("ada")           @ [6, inf);
    fact Grad("eve")           @ [6, inf);
  )");
  // The closure relation was created and materialized.
  auto closure = program->schema.Find("Cand__once_past+");
  ASSERT_TRUE(closure.ok());
  EXPECT_TRUE(HasConcreteFact(program->source, program->universe,
                              "Cand__once_past+", {"ada", "turing"},
                              Interval::FromStart(1)));

  auto chase = CChase(program->source, program->lifted, &program->universe);
  ASSERT_TRUE(chase.ok()) << chase.status();
  ASSERT_EQ(chase->kind, ChaseResultKind::kSuccess);
  // Ada graduates at 6, was a candidate in the past: Alum from 6 on.
  EXPECT_TRUE(HasConcreteFact(chase->target, program->universe, "Alum+",
                              {"ada", "turing"}, Interval::FromStart(6)));
  // Eve was never a candidate: no Alum fact.
  const RelationId alum_plus = *program->schema.Find("Alum+");
  for (const FactView f : chase->target.facts().facts(alum_plus)) {
    EXPECT_NE(program->universe.Render(f.arg(0)), "eve");
  }
}

TEST(TemporalOpsParserTest, ClosureIsPlainSourceDataSoCorollary20Holds) {
  auto program = ParseOrDie(R"(
    source Grad(name);
    source Cand(name, adviser);
    target Alum(name, adviser);
    tgd Grad(n) & once_past(Cand(n, a)) -> Alum(n, a);
    fact Cand("ada", "turing") @ [1, 4);
    fact Cand("ada", "hopper") @ [3, 7);
    fact Grad("ada")           @ [5, inf);
  )");
  auto report = VerifyCorollary20(program->source, program->mapping,
                                  program->lifted, &program->universe);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->aligned());
}

TEST(TemporalOpsParserTest, OperatorsRejectedOutsideTgdBodies) {
  auto in_head = ParseProgram(R"(
    source A(x);
    target T(x);
    tgd A(x) -> once_past(T(x));
  )");
  EXPECT_FALSE(in_head.ok());

  auto in_query = ParseProgram(R"(
    source A(x);
    target T(x);
    tgd A(x) -> T(x);
    query q(x): once_past(T(x));
  )");
  EXPECT_FALSE(in_query.ok());

  auto in_egd = ParseProgram(R"(
    source A(x);
    target T(x, y);
    tgd A(x) -> T(x, x);
    egd T(x, y) & once_past(T(x, z)) -> y = z;
  )");
  EXPECT_FALSE(in_egd.ok());
}

TEST(TemporalOpsParserTest, SharedClosureRelationAcrossTgds) {
  auto program = ParseOrDie(R"(
    source A(x);
    target T1(x);
    target T2(x);
    tgd A(x) & once_past(A(x)) -> T1(x);
    tgd once_past(A(x)) -> T2(x);
    fact A("v") @ [3, 5);
  )");
  // One closure spec despite two uses.
  EXPECT_EQ(program->closures.size(), 1u);
  CChaseOptions opts;
  opts.coalesce_result = true;  // normalization fragments the closure rows
  auto chase =
      CChase(program->source, program->lifted, &program->universe, opts);
  ASSERT_TRUE(chase.ok());
  // T2 holds from 3 on (once_past), T1 only while A holds.
  EXPECT_TRUE(HasConcreteFact(chase->target, program->universe, "T2+", {"v"},
                              Interval::FromStart(3)));
  EXPECT_TRUE(HasConcreteFact(chase->target, program->universe, "T1+", {"v"},
                              Interval(3, 5)));
}

}  // namespace
}  // namespace tdx
