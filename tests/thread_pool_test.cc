#include "src/common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace tdx {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), 100);
  }
}

TEST(ThreadPoolTest, WaitIsReusable) {
  std::atomic<int> counter{0};
  ThreadPool pool(2);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 3);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // no tasks: must not hang
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // No Wait: the destructor joins after the queue drains.
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, ClampsToAtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, HardwareJobsIsPositive) {
  EXPECT_GE(ThreadPool::HardwareJobs(), 1u);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (unsigned jobs : {1u, 2u, 5u, 16u}) {
    std::vector<std::atomic<int>> hits(37);
    ParallelFor(jobs, hits.size(),
                [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "jobs=" << jobs << " i=" << i;
    }
  }
}

TEST(ParallelForTest, ZeroCountIsANoOp) {
  std::atomic<int> counter{0};
  ParallelFor(4, 0, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 0);
}

TEST(ParallelForTest, ResultsLandAtTheirIndex) {
  std::vector<int> out(100, -1);
  ParallelFor(8, out.size(),
              [&](std::size_t i) { out[i] = static_cast<int>(i) * 3; });
  for (int i = 0; i < 100; ++i) EXPECT_EQ(out[i], i * 3);
}

}  // namespace
}  // namespace tdx
