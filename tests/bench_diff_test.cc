// Tests for the benchmark report merge/check library behind
// tools/tdx_bench_diff — the perf-regression gate CI's bench-smoke job
// runs. Reports are built from JSON literals shaped like google-benchmark
// output.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/obs/bench_diff.h"
#include "src/obs/json.h"

namespace tdx::obs {
namespace {

Json Parse(const std::string& text) {
  auto parsed = ParseJson(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status();
  return parsed.ok() ? std::move(*parsed) : Json();
}

/// A report with one context and the given benchmarks array body.
Json Report(const std::string& benchmarks) {
  return Parse(R"({"context":{"date":"2026-01-01","num_cpus":8},)"
               R"("benchmarks":[)" + benchmarks + "]}");
}

const char kFast[] =
    R"({"name":"BM_A/1","real_time":100.0,"time_unit":"ns","fires":7})";
const char kSlow[] = R"({"name":"BM_A/0","real_time":400.0,"time_unit":"ns"})";

TEST(MergeBenchReports, ConcatenatesUnderFirstContextMinusDate) {
  std::vector<Json> reports;
  reports.push_back(Report(kFast));
  reports.push_back(Report(kSlow));
  auto merged = MergeBenchReports(reports);
  ASSERT_TRUE(merged.ok()) << merged.status();
  const Json* context = merged->Find("context");
  ASSERT_NE(context, nullptr);
  EXPECT_EQ(context->Find("date"), nullptr);  // dropped for reproducibility
  ASSERT_NE(context->Find("num_cpus"), nullptr);
  const Json* benchmarks = merged->Find("benchmarks");
  ASSERT_NE(benchmarks, nullptr);
  ASSERT_EQ(benchmarks->items().size(), 2u);
  EXPECT_EQ(benchmarks->items()[0].Find("name")->as_string(), "BM_A/1");
  EXPECT_EQ(benchmarks->items()[1].Find("name")->as_string(), "BM_A/0");
}

TEST(MergeBenchReports, ErrorsOnReportWithoutBenchmarks) {
  std::vector<Json> reports;
  reports.push_back(Parse(R"({"context":{}})"));
  EXPECT_FALSE(MergeBenchReports(reports).ok());
}

TEST(CheckBenchGates, RatioMinPassesAndFails) {
  const Json fresh = Report(std::string(kFast) + "," + kSlow);
  const Json pass_gates = Parse(
      R"({"ratio_gates":[{"name":"speedup","num":"BM_A/0","den":"BM_A/1",)"
      R"("min":2.0}]})");
  auto report = CheckBenchGates(fresh, nullptr, pass_gates);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->pass);
  ASSERT_EQ(report->checks.size(), 1u);
  EXPECT_DOUBLE_EQ(report->checks[0].actual, 4.0);

  const Json fail_gates = Parse(
      R"({"ratio_gates":[{"name":"speedup","num":"BM_A/0","den":"BM_A/1",)"
      R"("min":5.0}]})");
  report = CheckBenchGates(fresh, nullptr, fail_gates);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report->pass);  // a failed gate is a verdict, not an error
  EXPECT_FALSE(report->checks[0].pass);
}

TEST(CheckBenchGates, RatioMaxBoundsOverhead) {
  const Json fresh = Report(std::string(kFast) + "," + kSlow);
  const Json gates = Parse(
      R"({"ratio_gates":[{"name":"overhead","num":"BM_A/1","den":"BM_A/0",)"
      R"("max":1.05}]})");
  auto report = CheckBenchGates(fresh, nullptr, gates);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->pass);
  EXPECT_DOUBLE_EQ(report->checks[0].actual, 0.25);
}

TEST(CheckBenchGates, DriftComparesAgainstBaselineRatio) {
  const Json fresh = Report(std::string(kFast) + "," + kSlow);
  // Baseline ratio 8x vs fresh 4x: within 1.10x drift? 4*1.10 < 8 — fail.
  const Json baseline = Report(
      R"({"name":"BM_A/1","real_time":50.0,"time_unit":"ns"},)"
      R"({"name":"BM_A/0","real_time":400.0,"time_unit":"ns"})");
  const Json gates = Parse(
      R"({"ratio_gates":[{"name":"speedup","num":"BM_A/0","den":"BM_A/1",)"
      R"("min":2.0,"baseline_drift":1.10}]})");
  auto report = CheckBenchGates(fresh, &baseline, gates);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report->pass);
  ASSERT_EQ(report->checks.size(), 2u);
  EXPECT_TRUE(report->checks[0].pass);   // min 2.0 holds
  EXPECT_FALSE(report->checks[1].pass);  // drift does not
  EXPECT_EQ(report->checks[1].kind, "ratio_drift");
}

TEST(CheckBenchGates, DriftIsSoftOnMissingBaselineBenchmark) {
  // A gate added in the same change as its benchmarks has no committed
  // history yet; the drift check skips, the min bound still applies.
  const Json fresh = Report(std::string(kFast) + "," + kSlow);
  const Json baseline = Report(
      R"({"name":"BM_Other","real_time":1.0,"time_unit":"ns"})");
  const Json gates = Parse(
      R"({"ratio_gates":[{"name":"speedup","num":"BM_A/0","den":"BM_A/1",)"
      R"("min":2.0,"baseline_drift":1.10}]})");
  auto report = CheckBenchGates(fresh, &baseline, gates);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->pass);
  ASSERT_EQ(report->checks.size(), 1u);
}

TEST(CheckBenchGates, MissingFreshBenchmarkIsAnError) {
  // A renamed benchmark must not silently turn its gate off.
  const Json fresh = Report(kFast);
  const Json gates = Parse(
      R"({"ratio_gates":[{"name":"speedup","num":"BM_Gone","den":"BM_A/1",)"
      R"("min":2.0}]})");
  EXPECT_FALSE(CheckBenchGates(fresh, nullptr, gates).ok());
}

TEST(CheckBenchGates, CounterGateReadsUserCounters) {
  const Json fresh = Report(kFast);
  const Json gates = Parse(
      R"({"counter_gates":[{"name":"fires","benchmark":"BM_A/1",)"
      R"("counter":"fires","min":5}]})");
  auto report = CheckBenchGates(fresh, nullptr, gates);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->pass);
  EXPECT_DOUBLE_EQ(report->checks[0].actual, 7.0);

  const Json missing = Parse(
      R"({"counter_gates":[{"name":"fires","benchmark":"BM_A/1",)"
      R"("counter":"nope","min":5}]})");
  EXPECT_FALSE(CheckBenchGates(fresh, nullptr, missing).ok());
}

TEST(CheckBenchGates, TimeUnitsAreNormalized) {
  // 0.4us vs 100ns: same 4x ratio once normalized.
  const Json fresh = Report(
      R"({"name":"BM_A/1","real_time":100.0,"time_unit":"ns"},)"
      R"({"name":"BM_A/0","real_time":0.4,"time_unit":"us"})");
  const Json gates = Parse(
      R"({"ratio_gates":[{"name":"speedup","num":"BM_A/0","den":"BM_A/1",)"
      R"("min":3.9}]})");
  auto report = CheckBenchGates(fresh, nullptr, gates);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->pass);
  EXPECT_NEAR(report->checks[0].actual, 4.0, 1e-9);
}

TEST(CheckBenchGates, PerBenchmarkThresholdAgainstBaseline) {
  const Json fresh = Report(
      R"({"name":"BM_A/1","real_time":130.0,"time_unit":"ns"},)"
      R"({"name":"BM_Noise","real_time":20.0,"time_unit":"ns"})");
  const Json baseline = Report(
      R"({"name":"BM_A/1","real_time":100.0,"time_unit":"ns"},)"
      R"({"name":"BM_Noise","real_time":10.0,"time_unit":"ns"})");
  const Json gates = Parse(
      R"({"per_benchmark":{"enabled":true,"threshold":1.25,)"
      R"("noise_floor_ns":50}})");
  auto report = CheckBenchGates(fresh, &baseline, gates);
  ASSERT_TRUE(report.ok()) << report.status();
  // BM_A/1 regressed 1.3x > 1.25x; BM_Noise doubled but sits under the
  // noise floor and is not gated.
  EXPECT_FALSE(report->pass);
  ASSERT_EQ(report->checks.size(), 1u);
  EXPECT_EQ(report->checks[0].gate, "BM_A/1");
}

TEST(GateReport, VerdictsSerialize) {
  const Json fresh = Report(std::string(kFast) + "," + kSlow);
  const Json gates = Parse(
      R"({"ratio_gates":[{"name":"speedup","num":"BM_A/0","den":"BM_A/1",)"
      R"("min":5.0}]})");
  auto report = CheckBenchGates(fresh, nullptr, gates);
  ASSERT_TRUE(report.ok()) << report.status();
  const std::string text = report->ToText();
  EXPECT_NE(text.find("FAIL"), std::string::npos);
  EXPECT_NE(text.find("REGRESSION"), std::string::npos);
  auto verdict = ParseJson(report->ToJson());
  ASSERT_TRUE(verdict.ok()) << verdict.status();
  const Json* pass = verdict->Find("pass");
  ASSERT_NE(pass, nullptr);
  EXPECT_FALSE(pass->as_bool());
  ASSERT_NE(verdict->Find("checks"), nullptr);
  EXPECT_EQ(verdict->Find("checks")->items().size(), 1u);
}

}  // namespace
}  // namespace tdx::obs
