#include "src/common/status.h"

#include <gtest/gtest.h>

namespace tdx {
namespace {

TEST(StatusTest, DefaultIsOk) {
  const Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad arity");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad arity");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad arity");
}

TEST(StatusTest, AllFactoriesProduceTheirCode) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  const Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  const Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  TDX_ASSIGN_OR_RETURN(int half, Half(x));
  *out = half;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(UseHalf(8, &out).ok());
  EXPECT_EQ(out, 4);
  const Status bad = UseHalf(7, &out);
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
}

Status Chain(bool fail) {
  TDX_RETURN_IF_ERROR(fail ? Status::Internal("boom") : Status::OK());
  return Status::OK();
}

TEST(ResultTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chain(false).ok());
  EXPECT_EQ(Chain(true).code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(StatusTest, ResourceExhausted) {
  const Status s = Status::ResourceExhausted("tgd fire budget spent");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(s.ToString(), "ResourceExhausted: tgd fire budget spent");
}

TEST(StatusTest, DeadlineExceeded) {
  const Status s = Status::DeadlineExceeded("ran past 50ms");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(s.ToString(), "DeadlineExceeded: ran past 50ms");
}

}  // namespace
}  // namespace tdx
