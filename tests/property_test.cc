// Randomized property tests: the paper's theorems, checked over families of
// generated workloads (TEST_P sweeps over seeds and size profiles).

#include <gtest/gtest.h>

#include "src/core/align.h"
#include "src/core/certain.h"
#include "src/core/naive_eval.h"
#include "src/core/normalize.h"
#include "src/gen/workload.h"
#include "src/relational/universal.h"
#include "src/temporal/abstract_chase.h"
#include "src/temporal/coalesce.h"
#include "src/temporal/snapshot.h"

namespace tdx {
namespace {

struct SweepParam {
  std::uint64_t seed;
  std::size_t num_facts;
  TimePoint horizon;
  TimePoint max_len;
  double unbounded_probability;
};

std::vector<SweepParam> MakeSweep() {
  std::vector<SweepParam> params;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    params.push_back({seed, 20 + 7 * seed, 12 + seed, 4 + seed % 5,
                      (seed % 3) * 0.1});
  }
  return params;
}

class RandomWorkloadSweep : public ::testing::TestWithParam<SweepParam> {
 protected:
  std::unique_ptr<Workload> MakeWorkload() const {
    const SweepParam& p = GetParam();
    RandomConfig cfg;
    cfg.num_facts = p.num_facts;
    cfg.num_names = 5;
    cfg.num_companies = 3;
    cfg.num_salaries = 3;
    cfg.horizon = p.horizon;
    cfg.max_interval_length = p.max_len;
    cfg.unbounded_probability = p.unbounded_probability;
    cfg.seed = p.seed;
    return MakeRandomWorkload(cfg);
  }

  /// Same profile but with a single salary constant: the egd can never
  /// equate two distinct constants, so the chase always succeeds. Used by
  /// the properties that need a solution to exist.
  std::unique_ptr<Workload> MakeSolvableWorkload() const {
    const SweepParam& p = GetParam();
    RandomConfig cfg;
    cfg.num_facts = p.num_facts;
    cfg.num_names = 5;
    cfg.num_companies = 3;
    cfg.num_salaries = 1;
    cfg.horizon = p.horizon;
    cfg.max_interval_length = p.max_len;
    cfg.unbounded_probability = p.unbounded_probability;
    cfg.seed = p.seed;
    return MakeRandomWorkload(cfg);
  }

  /// Interesting time points: all endpoints, one point between, one beyond.
  std::vector<TimePoint> ProbePoints(const ConcreteInstance& ic) const {
    std::vector<TimePoint> pts = ic.Endpoints();
    pts.push_back(ic.StabilizationPoint() + 3);
    pts.push_back(0);
    return pts;
  }
};

// Coalescing is semantics-preserving and canonical.
TEST_P(RandomWorkloadSweep, CoalescePreservesSemantics) {
  auto w = MakeWorkload();
  const ConcreteInstance coalesced = Coalesce(w->source);
  EXPECT_TRUE(coalesced.IsCoalesced());
  EXPECT_LE(coalesced.size(), w->source.size());
  for (TimePoint l : ProbePoints(w->source)) {
    auto before = SnapshotAt(w->source, l, &w->universe);
    auto after = SnapshotAt(coalesced, l, &w->universe);
    ASSERT_TRUE(before.ok());
    ASSERT_TRUE(after.ok());
    EXPECT_EQ(*before, *after) << "l=" << l;
  }
}

// Theorem 11 / Theorem 15: Algorithm 1's output has the empty intersection
// property, preserves semantics, and is never larger than the naive one.
TEST_P(RandomWorkloadSweep, NormalizationProperties) {
  auto w = MakeWorkload();
  const auto phis = w->lifted.TgdBodies();
  NormalizeStats alg_stats, naive_stats;
  const ConcreteInstance byalg = Normalize(w->source, phis, &alg_stats);
  const ConcreteInstance bynaive = NaiveNormalize(w->source, &naive_stats);

  EXPECT_TRUE(HasEmptyIntersectionProperty(byalg, phis));
  EXPECT_TRUE(HasEmptyIntersectionProperty(bynaive, phis));
  EXPECT_LE(byalg.size(), bynaive.size());

  for (TimePoint l : ProbePoints(w->source)) {
    auto before = SnapshotAt(w->source, l, &w->universe);
    auto after = SnapshotAt(byalg, l, &w->universe);
    ASSERT_TRUE(before.ok());
    ASSERT_TRUE(after.ok());
    EXPECT_EQ(*before, *after) << "l=" << l;
  }
}

// Corollary 20 end to end: success/failure agreement plus homomorphic
// equivalence of [[c-chase(Ic)]] and chase([[Ic]]).
TEST_P(RandomWorkloadSweep, Corollary20Alignment) {
  auto w = MakeWorkload();
  auto report =
      VerifyCorollary20(w->source, w->mapping, w->lifted, &w->universe);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->outcome_agreed);
  EXPECT_TRUE(report->aligned());
}

// The c-chase must agree snapshot-wise with the ground-truth chase of each
// materialized snapshot (homomorphic equivalence per snapshot).
TEST_P(RandomWorkloadSweep, CChaseMatchesPerSnapshotChase) {
  auto w = MakeSolvableWorkload();
  auto concrete = CChase(w->source, w->lifted, &w->universe);
  ASSERT_TRUE(concrete.ok());
  ASSERT_EQ(concrete->kind, ChaseResultKind::kSuccess);
  auto jc_abs = AbstractInstance::FromConcrete(concrete->target);
  ASSERT_TRUE(jc_abs.ok());
  auto ia = AbstractInstance::FromConcrete(w->source);
  ASSERT_TRUE(ia.ok());
  for (TimePoint l : ProbePoints(w->source)) {
    auto ground = ChaseSnapshotAt(*ia, l, w->mapping, &w->universe);
    ASSERT_TRUE(ground.ok());
    ASSERT_EQ(ground->kind, ChaseResultKind::kSuccess);
    EXPECT_TRUE(AreHomomorphicallyEquivalent(ground->target,
                                             jc_abs->At(l, &w->universe)))
        << "l=" << l;
  }
}

// Theorem 21 on random instances: [[q+(Jc)!]] = q([[Jc]])! snapshot-wise.
TEST_P(RandomWorkloadSweep, Theorem21OnRandomWorkloads) {
  auto w = MakeSolvableWorkload();
  auto concrete = CChase(w->source, w->lifted, &w->universe);
  ASSERT_TRUE(concrete.ok());
  ASSERT_EQ(concrete->kind, ChaseResultKind::kSuccess);

  // q(n, s) :- Emp(n, c, s) over the snapshot target schema.
  const RelationId emp = *w->schema.Find("Emp");
  ConjunctiveQuery q;
  q.name = "salaries";
  Atom atom;
  atom.rel = emp;
  atom.terms = {Term::Var(0), Term::Var(1), Term::Var(2)};
  q.body.atoms = {atom};
  q.body.num_vars = 3;
  q.head = {0, 2};
  UnionQuery uq;
  uq.name = q.name;
  uq.disjuncts = {q};
  auto lifted = LiftUnionQuery(uq, w->schema);
  ASSERT_TRUE(lifted.ok());

  auto answers = NaiveEvaluateConcrete(*lifted, concrete->target);
  ASSERT_TRUE(answers.ok());
  auto jc_abs = AbstractInstance::FromConcrete(concrete->target);
  ASSERT_TRUE(jc_abs.ok());
  for (TimePoint l : ProbePoints(w->source)) {
    EXPECT_EQ(ConcreteAnswersAt(*answers, l),
              NaiveEvaluateAbstractAt(uq, *jc_abs, l, &w->universe))
        << "l=" << l;
  }
}

// The c-chase result is a valid concrete instance whose annotated nulls obey
// the annotation-equals-interval invariant, and the chase is deterministic.
TEST_P(RandomWorkloadSweep, CChaseInvariantsAndDeterminism) {
  auto w1 = MakeWorkload();
  auto w2 = MakeWorkload();
  auto o1 = CChase(w1->source, w1->lifted, &w1->universe);
  auto o2 = CChase(w2->source, w2->lifted, &w2->universe);
  ASSERT_TRUE(o1.ok());
  ASSERT_TRUE(o2.ok());
  EXPECT_EQ(o1->kind, o2->kind);
  if (o1->kind == ChaseResultKind::kSuccess) {
    EXPECT_TRUE(o1->target.Validate().ok());
    // Same universes evolve identically, so rendering must agree.
    EXPECT_EQ(o1->target.facts().ToString(w1->universe),
              o2->target.facts().ToString(w2->universe));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomWorkloadSweep,
                         ::testing::ValuesIn(MakeSweep()),
                         [](const ::testing::TestParamInfo<SweepParam>& param_info) {
                           return "seed" + std::to_string(param_info.param.seed);
                         });

// Employment-shaped sweeps: larger, more structured instances.
class EmploymentSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EmploymentSweep, Corollary20OnEmploymentHistories) {
  auto w = MakeEmploymentWorkload(
      EmploymentConfig{.num_people = 8, .num_companies = 3, .avg_jobs = 3,
                       .horizon = 40, .salary_known_fraction = 0.5,
                       .inject_conflict = false, .seed = GetParam()});
  auto report =
      VerifyCorollary20(w->source, w->mapping, w->lifted, &w->universe);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->aligned());
}

TEST_P(EmploymentSweep, CertainAnswersHoldInPerturbedSolutions) {
  auto w = MakeEmploymentWorkload(
      EmploymentConfig{.num_people = 5, .num_companies = 2, .avg_jobs = 2,
                       .horizon = 25, .salary_known_fraction = 0.6,
                       .inject_conflict = false, .seed = GetParam()});
  auto chase = CChase(w->source, w->lifted, &w->universe);
  ASSERT_TRUE(chase.ok());
  ASSERT_EQ(chase->kind, ChaseResultKind::kSuccess);

  const RelationId emp = *w->schema.Find("Emp");
  ConjunctiveQuery q;
  Atom atom;
  atom.rel = emp;
  atom.terms = {Term::Var(0), Term::Var(1), Term::Var(2)};
  q.body.atoms = {atom};
  q.body.num_vars = 3;
  q.head = {0, 2};
  UnionQuery uq;
  uq.disjuncts = {q};
  uq.name = "q";
  auto lifted = LiftUnionQuery(uq, w->schema);
  ASSERT_TRUE(lifted.ok());
  auto answers = NaiveEvaluateConcrete(*lifted, chase->target);
  ASSERT_TRUE(answers.ok());

  // Build a perturbed solution: substitute all nulls, add a noise fact.
  Instance solution = chase->target.facts();
  std::vector<Value> nulls;
  solution.ForEach([&](FactView f) {
    for (const Value& v : f.args()) {
      if (v.is_annotated_null()) nulls.push_back(v);
    }
  });
  int i = 0;
  for (const Value& n : nulls) {
    solution = solution.ReplaceValue(
        n, w->universe.Constant("subst" + std::to_string(i++)));
  }
  ConcreteInstance sol_ci(std::move(solution));
  auto sol_abs = AbstractInstance::FromConcrete(sol_ci);
  ASSERT_TRUE(sol_abs.ok());

  for (TimePoint l : {3u, 10u, 20u}) {
    const std::vector<Tuple> solution_answers = DropTuplesWithNulls(
        Evaluate(uq, sol_abs->At(l, &w->universe)));
    for (const Tuple& t : ConcreteAnswersAt(*answers, l)) {
      EXPECT_NE(std::find(solution_answers.begin(), solution_answers.end(), t),
                solution_answers.end())
          << "l=" << l;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EmploymentSweep, ::testing::Range<std::uint64_t>(1, 9));

// Theorem 13 sweep: the worst-case family's normalized size is exactly n^2.
class WorstCaseSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WorstCaseSweep, QuadraticNormalizedSize) {
  const std::size_t n = GetParam();
  auto w = MakeWorstCaseNormalizationWorkload(n);
  const ConcreteInstance normalized =
      Normalize(w->source, w->lifted.TgdBodies());
  EXPECT_EQ(normalized.size(), n * n);
  EXPECT_TRUE(
      HasEmptyIntersectionProperty(normalized, w->lifted.TgdBodies()));
}

INSTANTIATE_TEST_SUITE_P(Sizes, WorstCaseSweep,
                         ::testing::Values(2, 3, 5, 8, 12, 20));

}  // namespace
}  // namespace tdx
