// The mapping analyzer: termination ladder, position graphs, certificates,
// and the diagnostic catalogue (positive and negative cases per ID).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/analysis/analyzer.h"
#include "src/analysis/position_graph.h"
#include "src/analysis/termination.h"
#include "src/core/cchase.h"
#include "src/relational/chase.h"
#include "tests/test_util.h"

namespace tdx {
namespace {

using ::tdx::testing::kPaperProgram;
using ::tdx::testing::ParseOrDie;

Atom MakeAtom(RelationId rel, std::vector<Term> terms) {
  Atom atom;
  atom.rel = rel;
  atom.terms = std::move(terms);
  return atom;
}

std::vector<const Diagnostic*> FindAll(const AnalysisReport& report,
                                       std::string_view id) {
  std::vector<const Diagnostic*> out;
  for (const Diagnostic& d : report.diagnostics) {
    if (d.id == id) out.push_back(&d);
  }
  return out;
}

bool Has(const AnalysisReport& report, std::string_view id) {
  return !FindAll(report, id).empty();
}

AnalysisReport LintText(std::string_view text) {
  auto program = ParseOrDie(text);
  return AnalyzeProgram(*program);
}

/// E(x, y) -> exists z: E(y, z): the classic non-terminating self-feed.
Tgd SelfFeedTgd(RelationId e) {
  Tgd loop;
  loop.body.atoms = {MakeAtom(e, {Term::Var(0), Term::Var(1)})};
  loop.head.atoms = {MakeAtom(e, {Term::Var(1), Term::Var(2)})};
  loop.body.num_vars = loop.head.num_vars = 3;
  EXPECT_TRUE(loop.Finalize().ok());
  return loop;
}

/// Two tgds that are not weakly acyclic but stratify thanks to a constant
/// clash: s1 tags its B facts "new", s2 only reads "old"-tagged ones, so
/// s1 can never re-activate s2 and the position cycle is harmless.
///   s1: A(x) -> exists z: B(x, z, "new")
///   s2: B(u, y, "old") -> A(y)
struct StratifiedPair {
  Schema schema;
  Universe universe;
  std::vector<Tgd> tgds;
};

StratifiedPair MakeStratifiedPair() {
  StratifiedPair p;
  const RelationId a = *p.schema.AddRelation("A", {"v"}, SchemaRole::kTarget);
  const RelationId b =
      *p.schema.AddRelation("B", {"v", "w", "tag"}, SchemaRole::kTarget);
  Tgd s1;
  s1.body.atoms = {MakeAtom(a, {Term::Var(0)})};
  s1.head.atoms = {MakeAtom(
      b, {Term::Var(0), Term::Var(1), Term::Val(p.universe.Constant("new"))})};
  s1.body.num_vars = s1.head.num_vars = 2;
  EXPECT_TRUE(s1.Finalize().ok());
  Tgd s2;
  s2.body.atoms = {MakeAtom(
      b, {Term::Var(0), Term::Var(1), Term::Val(p.universe.Constant("old"))})};
  s2.head.atoms = {MakeAtom(a, {Term::Var(1)})};
  s2.body.num_vars = s2.head.num_vars = 2;
  EXPECT_TRUE(s2.Finalize().ok());
  p.tgds = {s1, s2};
  return p;
}

/// The parsed counterpart of MakeStratifiedPair, as a full program.
constexpr std::string_view kStratifiedProgram = R"(
  source Src(v);
  target A(v);
  target B(v, w, tag);
  tgd feed: Src(x) -> A(x);
  ttgd s1: A(x) -> exists z: B(x, z, "new");
  ttgd s2: B(_, y, "old") -> A(y);
  fact Src("a") @ [0, 4);
)";

constexpr std::string_view kAcyclicTtgdProgram = R"(
  source F(a, b);
  target R(a, b);
  tgd copy: F(x, y) -> R(x, y);
  ttgd trans: R(x, y) & R(y, z) -> R(x, z);
)";

// ---------------------------------------------------------------------------
// The clean baseline: the paper's own program lints clean.

TEST(AnalyzerTest, PaperProgramIsDiagnosticFree) {
  const AnalysisReport report = LintText(kPaperProgram);
  EXPECT_TRUE(report.diagnostics.empty()) << RenderText(report, "paper");
  EXPECT_EQ(report.certificate.criterion, TerminationCriterion::kNoTargetTgds);
  EXPECT_TRUE(report.certificate.guarantees_termination());
  EXPECT_FALSE(report.HasErrors());
}

// ---------------------------------------------------------------------------
// The termination ladder.

TEST(TerminationLadderTest, EmptyTgdsAreTheBottomRung) {
  Schema schema;
  const TerminationCertificate cert = CertifyTermination({}, schema);
  EXPECT_EQ(cert.criterion, TerminationCriterion::kNoTargetTgds);
  EXPECT_TRUE(cert.guarantees_termination());
}

TEST(TerminationLadderTest, FullTgdsAreRichlyAcyclic) {
  Schema schema;
  const RelationId edge =
      *schema.AddRelation("Edge", {"a", "b"}, SchemaRole::kTarget);
  Tgd tc;
  tc.body.atoms = {MakeAtom(edge, {Term::Var(0), Term::Var(1)}),
                   MakeAtom(edge, {Term::Var(1), Term::Var(2)})};
  tc.head.atoms = {MakeAtom(edge, {Term::Var(0), Term::Var(2)})};
  tc.body.num_vars = tc.head.num_vars = 3;
  ASSERT_TRUE(tc.Finalize().ok());
  const TerminationCertificate cert = CertifyTermination({tc}, schema);
  EXPECT_EQ(cert.criterion, TerminationCriterion::kRichlyAcyclic);
}

TEST(TerminationLadderTest, HeadDisconnectedExistentialIsWeaklyNotRichly) {
  // N(x) -> exists y: N(y): no weak edges at all, but the extended graph
  // draws the special self-loop N.a -*-> N.a.
  Schema schema;
  const RelationId n = *schema.AddRelation("N", {"a"}, SchemaRole::kTarget);
  Tgd pad;
  pad.body.atoms = {MakeAtom(n, {Term::Var(0)})};
  pad.head.atoms = {MakeAtom(n, {Term::Var(1)})};
  pad.body.num_vars = pad.head.num_vars = 2;
  ASSERT_TRUE(pad.Finalize().ok());
  const TerminationCertificate cert = CertifyTermination({pad}, schema);
  EXPECT_EQ(cert.criterion, TerminationCriterion::kWeaklyAcyclic);
  EXPECT_TRUE(cert.guarantees_termination());
}

TEST(TerminationLadderTest, ConstantClashStratifies) {
  StratifiedPair p = MakeStratifiedPair();
  const TerminationCertificate cert = CertifyTermination(p.tgds, p.schema);
  EXPECT_EQ(cert.criterion, TerminationCriterion::kStratified);
  EXPECT_TRUE(cert.guarantees_termination());
  EXPECT_NE(cert.witness.find("not weakly acyclic"), std::string::npos)
      << cert.witness;
}

TEST(TerminationLadderTest, SelfFeedDefeatsEveryRung) {
  Schema schema;
  const RelationId e =
      *schema.AddRelation("E", {"a", "b"}, SchemaRole::kTarget);
  const TerminationCertificate cert =
      CertifyTermination({SelfFeedTgd(e)}, schema);
  EXPECT_EQ(cert.criterion, TerminationCriterion::kUnknown);
  EXPECT_FALSE(cert.guarantees_termination());
  EXPECT_NE(cert.witness.find("-*->"), std::string::npos) << cert.witness;
}

TEST(TerminationLadderTest, MayActivateRespectsConstantClash) {
  StratifiedPair p = MakeStratifiedPair();
  // s1 writes tag "new"; s2 reads tag "old": no activation.
  EXPECT_FALSE(MayActivate(p.tgds[0], p.tgds[1]));
  // s2 writes A facts, which s1 reads.
  EXPECT_TRUE(MayActivate(p.tgds[1], p.tgds[0]));
  // With the clash, the precedence graph is acyclic: two singleton SCCs.
  const auto components = PrecedenceComponents(p.tgds);
  ASSERT_EQ(components.size(), 2u);
  EXPECT_EQ(components[0].size(), 1u);
  EXPECT_EQ(components[1].size(), 1u);
}

TEST(TerminationLadderTest, PrecedenceCycleFormsOneComponent) {
  Schema schema;
  const RelationId b =
      *schema.AddRelation("B", {"v", "w"}, SchemaRole::kTarget);
  const RelationId d =
      *schema.AddRelation("D", {"v", "w"}, SchemaRole::kTarget);
  Tgd t1;
  t1.body.atoms = {MakeAtom(b, {Term::Var(0), Term::Var(1)})};
  t1.head.atoms = {MakeAtom(d, {Term::Var(1), Term::Var(2)})};
  t1.body.num_vars = t1.head.num_vars = 3;
  ASSERT_TRUE(t1.Finalize().ok());
  Tgd t2;
  t2.body.atoms = {MakeAtom(d, {Term::Var(0), Term::Var(1)})};
  t2.head.atoms = {MakeAtom(b, {Term::Var(1), Term::Var(2)})};
  t2.body.num_vars = t2.head.num_vars = 3;
  ASSERT_TRUE(t2.Finalize().ok());
  const auto components = PrecedenceComponents({t1, t2});
  ASSERT_EQ(components.size(), 1u);
  EXPECT_EQ(components[0].size(), 2u);
}

// ---------------------------------------------------------------------------
// Position graphs and the compatibility shim.

TEST(PositionGraphTest, WeakGraphNamesTheSpecialCycle) {
  Schema schema;
  const RelationId e =
      *schema.AddRelation("E", {"a", "b"}, SchemaRole::kTarget);
  const std::vector<Tgd> tgds = {SelfFeedTgd(e)};
  const PositionGraph g =
      PositionGraph::Build(tgds, schema, PositionGraph::Kind::kWeak);
  const auto cycle = g.FindSpecialCycle();
  ASSERT_TRUE(cycle.has_value());
  EXPECT_EQ(cycle->tgd_index, 0u);
  const std::string rendered = g.FormatCycle(schema, *cycle);
  EXPECT_NE(rendered.find("-*->"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("E.b"), std::string::npos) << rendered;
}

TEST(PositionGraphTest, RichGraphSeesHeadDisconnectedExistentials) {
  Schema schema;
  const RelationId n = *schema.AddRelation("N", {"a"}, SchemaRole::kTarget);
  Tgd pad;
  pad.body.atoms = {MakeAtom(n, {Term::Var(0)})};
  pad.head.atoms = {MakeAtom(n, {Term::Var(1)})};
  pad.body.num_vars = pad.head.num_vars = 2;
  ASSERT_TRUE(pad.Finalize().ok());
  const std::vector<Tgd> tgds = {pad};
  const PositionGraph weak =
      PositionGraph::Build(tgds, schema, PositionGraph::Kind::kWeak);
  EXPECT_FALSE(weak.FindSpecialCycle().has_value());
  const PositionGraph rich =
      PositionGraph::Build(tgds, schema, PositionGraph::Kind::kRich);
  const auto cycle = rich.FindSpecialCycle();
  ASSERT_TRUE(cycle.has_value());
  EXPECT_EQ(rich.FormatCycle(schema, *cycle), "N.a -*-> N.a");
}

TEST(PositionGraphTest, CheckWeaklyAcyclicNamesTheCycle) {
  Schema schema;
  const RelationId e =
      *schema.AddRelation("E", {"a", "b"}, SchemaRole::kTarget);
  const Status status = CheckWeaklyAcyclic({SelfFeedTgd(e)}, schema);
  ASSERT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("-*->"), std::string::npos)
      << status.message();
  EXPECT_NE(status.message().find("E.b"), std::string::npos)
      << status.message();
}

// ---------------------------------------------------------------------------
// Certificates in the validators and engines.

TEST(CertificateTest, ToStringRendersCriterionAndWitness) {
  TerminationCertificate cert;
  EXPECT_EQ(cert.ToString(), "no-target-tgds");
  cert.criterion = TerminationCriterion::kUnknown;
  cert.witness = "E.b -*-> E.b";
  EXPECT_EQ(cert.ToString(), "unknown (cycle: E.b -*-> E.b)");
  cert.criterion = TerminationCriterion::kStratified;
  cert.witness = "w";
  EXPECT_EQ(cert.ToString(), "stratified (w)");
}

TEST(CertificateTest, ValidateMappingAcceptsStratifiedTgds) {
  StratifiedPair p = MakeStratifiedPair();
  Mapping mapping;
  mapping.target_tgds = p.tgds;
  EXPECT_TRUE(ValidateMapping(mapping, p.schema).ok());
}

TEST(CertificateTest, ValidateMappingRejectsUnknownWithCycle) {
  Schema schema;
  const RelationId e =
      *schema.AddRelation("E", {"a", "b"}, SchemaRole::kTarget);
  Mapping mapping;
  mapping.target_tgds = {SelfFeedTgd(e)};
  const Status status = ValidateMapping(mapping, schema);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("weakly acyclic"), std::string::npos);
  EXPECT_NE(status.message().find("-*->"), std::string::npos)
      << status.message();
}

TEST(CertificateTest, ValidateAndCertifyStoresTheCertificate) {
  StratifiedPair p = MakeStratifiedPair();
  Mapping mapping;
  mapping.target_tgds = p.tgds;
  ASSERT_FALSE(mapping.certificate.has_value());
  ASSERT_TRUE(ValidateAndCertifyMapping(&mapping, p.schema).ok());
  ASSERT_TRUE(mapping.certificate.has_value());
  EXPECT_EQ(mapping.certificate->criterion, TerminationCriterion::kStratified);
}

TEST(CertificateTest, ParserCertifiesMappingAndLifted) {
  auto program = ParseOrDie(kPaperProgram);
  ASSERT_TRUE(program->mapping.certificate.has_value());
  EXPECT_EQ(program->mapping.certificate->criterion,
            TerminationCriterion::kNoTargetTgds);
  ASSERT_TRUE(program->lifted.certificate.has_value());
  EXPECT_EQ(program->lifted.certificate->criterion,
            TerminationCriterion::kNoTargetTgds);

  auto ttgds = ParseOrDie(kAcyclicTtgdProgram);
  ASSERT_TRUE(ttgds->mapping.certificate.has_value());
  EXPECT_EQ(ttgds->mapping.certificate->criterion,
            TerminationCriterion::kRichlyAcyclic);
}

TEST(CertificateTest, ChaseSnapshotRecordsCertificate) {
  Schema schema;
  Universe u;
  const RelationId flight =
      *schema.AddRelation("Flight", {"a", "b"}, SchemaRole::kSource);
  const RelationId reach =
      *schema.AddRelation("Reach", {"a", "b"}, SchemaRole::kTarget);
  Tgd copy;
  copy.body.atoms = {MakeAtom(flight, {Term::Var(0), Term::Var(1)})};
  copy.head.atoms = {MakeAtom(reach, {Term::Var(0), Term::Var(1)})};
  copy.body.num_vars = copy.head.num_vars = 2;
  ASSERT_TRUE(copy.Finalize().ok());
  Tgd trans;
  trans.body.atoms = {MakeAtom(reach, {Term::Var(0), Term::Var(1)}),
                      MakeAtom(reach, {Term::Var(1), Term::Var(2)})};
  trans.head.atoms = {MakeAtom(reach, {Term::Var(0), Term::Var(2)})};
  trans.body.num_vars = trans.head.num_vars = 3;
  ASSERT_TRUE(trans.Finalize().ok());
  Mapping mapping;
  mapping.st_tgds = {copy};
  mapping.target_tgds = {trans};

  Instance source(&schema);
  source.Insert(flight, {u.Constant("a"), u.Constant("b")});
  auto outcome = ChaseSnapshot(source, mapping, &u);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  ASSERT_TRUE(outcome->stats.certificate.has_value());
  EXPECT_EQ(outcome->stats.certificate->criterion,
            TerminationCriterion::kRichlyAcyclic);
}

TEST(CertificateTest, ChaseSnapshotRefusesNonTerminatingTgds) {
  Schema schema;
  Universe u;
  const RelationId e =
      *schema.AddRelation("E", {"a", "b"}, SchemaRole::kTarget);
  Mapping mapping;
  mapping.target_tgds = {SelfFeedTgd(e)};
  Instance source(&schema);
  auto outcome = ChaseSnapshot(source, mapping, &u);
  ASSERT_FALSE(outcome.ok());
  EXPECT_NE(outcome.status().message().find("refusing to chase"),
            std::string::npos)
      << outcome.status();
}

TEST(CertificateTest, CChaseRecordsCertificate) {
  auto program = ParseOrDie(kPaperProgram);
  auto chase = CChase(program->source, program->lifted, &program->universe);
  ASSERT_TRUE(chase.ok()) << chase.status();
  ASSERT_TRUE(chase->stats.certificate.has_value());
  EXPECT_EQ(chase->stats.certificate->criterion,
            TerminationCriterion::kNoTargetTgds);
}

TEST(CertificateTest, CChaseConsultsAProvidedCertificate) {
  auto program = ParseOrDie(kPaperProgram);
  TerminationCertificate unknown;
  unknown.criterion = TerminationCriterion::kUnknown;
  unknown.witness = "X.a -*-> X.a";
  program->lifted.certificate = unknown;
  auto chase = CChase(program->source, program->lifted, &program->universe);
  ASSERT_FALSE(chase.ok());
  EXPECT_NE(chase.status().message().find("refusing to c-chase"),
            std::string::npos)
      << chase.status();
}

TEST(CertificateTest, CChaseRunsStratifiedMappings) {
  auto program = ParseOrDie(kStratifiedProgram);
  auto chase = CChase(program->source, program->lifted, &program->universe);
  ASSERT_TRUE(chase.ok()) << chase.status();
  EXPECT_EQ(chase->kind, ChaseResultKind::kSuccess);
  ASSERT_TRUE(chase->stats.certificate.has_value());
  EXPECT_EQ(chase->stats.certificate->criterion,
            TerminationCriterion::kStratified);
}

// ---------------------------------------------------------------------------
// Parse errors point at the offending statement.

TEST(AnalyzerTest, SemanticParseErrorsCarryTheStatementSpan) {
  auto r = ParseProgram(R"(
    source A(x);
    target T(x);
    egd e1: T(x) -> x = y;
  )");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("at line 4"), std::string::npos)
      << r.status();
}

// ---------------------------------------------------------------------------
// TDX000: structurally broken input.

TEST(AnalyzerTest, Tdx000StructurallyInvalidMapping) {
  Schema schema;
  const RelationId r = *schema.AddRelation("R", {"a", "b"}, SchemaRole::kSource);
  Tgd broken;
  broken.body.atoms = {MakeAtom(r, {Term::Var(0)})};  // arity mismatch
  broken.head.atoms = {MakeAtom(r, {Term::Var(0), Term::Var(0)})};
  broken.body.num_vars = broken.head.num_vars = 1;
  Mapping mapping;
  mapping.st_tgds = {broken};
  AnalysisInput input;
  input.schema = &schema;
  input.mapping = &mapping;
  const AnalysisReport report = Analyze(input);
  ASSERT_EQ(report.diagnostics.size(), 1u) << RenderText(report, "t");
  EXPECT_EQ(report.diagnostics[0].id, "TDX000");
  EXPECT_TRUE(report.HasErrors());
}

TEST(AnalyzerTest, Tdx000AbsentOnWellFormedInput) {
  EXPECT_FALSE(Has(LintText(kPaperProgram), "TDX000"));
}

// ---------------------------------------------------------------------------
// TDX001 / TDX002 / TDX003: the ladder's diagnostics.

TEST(AnalyzerTest, Tdx001NonTerminatingTargetTgds) {
  Schema schema;
  const RelationId e =
      *schema.AddRelation("E", {"a", "b"}, SchemaRole::kTarget);
  Mapping mapping;
  mapping.target_tgds = {SelfFeedTgd(e)};
  AnalysisInput input;
  input.schema = &schema;
  input.mapping = &mapping;
  const AnalysisReport report = Analyze(input);
  const auto found = FindAll(report, "TDX001");
  ASSERT_EQ(found.size(), 1u) << RenderText(report, "t");
  EXPECT_EQ(found[0]->severity, Severity::kError);
  EXPECT_NE(found[0]->message.find("-*->"), std::string::npos)
      << found[0]->message;
  EXPECT_TRUE(report.HasErrors());
  EXPECT_EQ(report.certificate.criterion, TerminationCriterion::kUnknown);
}

TEST(AnalyzerTest, Tdx001AbsentOnAcyclicTargetTgds) {
  const AnalysisReport report = LintText(kAcyclicTtgdProgram);
  EXPECT_FALSE(Has(report, "TDX001")) << RenderText(report, "t");
  EXPECT_TRUE(report.certificate.guarantees_termination());
}

TEST(AnalyzerTest, Tdx002StratifiedOnlyMapping) {
  const AnalysisReport report = LintText(kStratifiedProgram);
  const auto found = FindAll(report, "TDX002");
  ASSERT_EQ(found.size(), 1u) << RenderText(report, "t");
  EXPECT_EQ(found[0]->severity, Severity::kWarning);
  EXPECT_NE(found[0]->message.find("stratification"), std::string::npos)
      << found[0]->message;
  EXPECT_TRUE(found[0]->span.valid());
  EXPECT_EQ(report.certificate.criterion, TerminationCriterion::kStratified);
  // The planner also notices that s2 can never fire: the only head writing
  // B carries "new" where s2's body demands "old".
  EXPECT_TRUE(Has(report, "TDX018")) << RenderText(report, "t");
  EXPECT_EQ(report.diagnostics.size(), 2u) << RenderText(report, "t");
}

TEST(AnalyzerTest, Tdx002AbsentOnWeaklyAcyclicMapping) {
  EXPECT_FALSE(Has(LintText(kAcyclicTtgdProgram), "TDX002"));
}

TEST(AnalyzerTest, Tdx003WeaklyButNotRichlyAcyclic) {
  const AnalysisReport report = LintText(R"(
    source A(x);
    target N(x);
    tgd copy: A(x) -> N(x);
    ttgd pad: N(_) -> exists y: N(y);
  )");
  const auto found = FindAll(report, "TDX003");
  ASSERT_EQ(found.size(), 1u) << RenderText(report, "t");
  EXPECT_EQ(found[0]->severity, Severity::kNote);
  EXPECT_NE(found[0]->message.find("richly"), std::string::npos)
      << found[0]->message;
  EXPECT_EQ(report.certificate.criterion,
            TerminationCriterion::kWeaklyAcyclic);
}

TEST(AnalyzerTest, Tdx003AbsentOnFullTgds) {
  const AnalysisReport report = LintText(kAcyclicTtgdProgram);
  EXPECT_FALSE(Has(report, "TDX003")) << RenderText(report, "t");
  EXPECT_EQ(report.certificate.criterion,
            TerminationCriterion::kRichlyAcyclic);
}

// ---------------------------------------------------------------------------
// TDX010: bodies that never hold at a common time point.

TEST(AnalyzerTest, Tdx010DisjointTimeCoverage) {
  const AnalysisReport report = LintText(R"(
    source A(x);
    source B(x);
    target T(x);
    tgd join: A(x) & B(x) -> T(x);
    fact A("a") @ [0, 5);
    fact B("a") @ [5, 10);
  )");
  const auto found = FindAll(report, "TDX010");
  ASSERT_EQ(found.size(), 1u) << RenderText(report, "t");
  EXPECT_EQ(found[0]->severity, Severity::kWarning);
  EXPECT_NE(found[0]->message.find("common time point"), std::string::npos);
  EXPECT_NE(found[0]->message.find("'A'"), std::string::npos);
  EXPECT_NE(found[0]->message.find("'B'"), std::string::npos);
}

TEST(AnalyzerTest, Tdx010AbsentWhenCoverageOverlaps) {
  const AnalysisReport report = LintText(R"(
    source A(x);
    source B(x);
    target T(x);
    tgd join: A(x) & B(x) -> T(x);
    fact A("a") @ [0, 5);
    fact B("a") @ [3, 10);
  )");
  EXPECT_FALSE(Has(report, "TDX010")) << RenderText(report, "t");
}

// ---------------------------------------------------------------------------
// TDX011: egds that can only equate distinct constants.

TEST(AnalyzerTest, Tdx011EgdOverDisjointConstants) {
  const AnalysisReport report = LintText(R"(
    source A(x);
    target L(x, v);
    target R(x, v);
    tgd t1: A(x) -> L(x, "red");
    tgd t2: A(x) -> R(x, "blue");
    egd e1: L(x, v1) & R(x, v2) -> v1 = v2;
  )");
  const auto found = FindAll(report, "TDX011");
  ASSERT_EQ(found.size(), 1u) << RenderText(report, "t");
  EXPECT_EQ(found[0]->severity, Severity::kWarning);
  EXPECT_NE(found[0]->message.find("distinct constants"), std::string::npos);
  EXPECT_EQ(report.diagnostics.size(), 1u) << RenderText(report, "t");
}

TEST(AnalyzerTest, Tdx011AbsentWhenConstantsCanAgree) {
  const AnalysisReport report = LintText(R"(
    source A(x);
    target L(x, v);
    target R(x, v);
    tgd t1: A(x) -> L(x, "red");
    tgd t2: A(x) -> R(x, "red");
    egd e1: L(x, v1) & R(x, v2) -> v1 = v2;
  )");
  EXPECT_FALSE(Has(report, "TDX011")) << RenderText(report, "t");
}

TEST(AnalyzerTest, Tdx011AbsentWhenASideMayBeNull) {
  const AnalysisReport report = LintText(R"(
    source A(x);
    target L(x, v);
    target R(x, v);
    tgd t1: A(x) -> L(x, "red");
    tgd t2: A(x) -> exists v: R(x, v);
    egd e1: L(x, v1) & R(x, v2) -> v1 = v2;
  )");
  EXPECT_FALSE(Has(report, "TDX011")) << RenderText(report, "t");
}

// ---------------------------------------------------------------------------
// TDX012: single-use variables.

TEST(AnalyzerTest, Tdx012SingleUseVariable) {
  const AnalysisReport report = LintText(R"(
    source A(x, y);
    target T(x);
    tgd t1: A(x, y) -> T(x);
  )");
  const auto found = FindAll(report, "TDX012");
  ASSERT_EQ(found.size(), 1u) << RenderText(report, "t");
  EXPECT_EQ(found[0]->severity, Severity::kNote);
  EXPECT_NE(found[0]->message.find("'y'"), std::string::npos);
  EXPECT_NE(found[0]->hint.find("'_'"), std::string::npos);
}

TEST(AnalyzerTest, Tdx012AbsentForAnonymousAndEqualityUses) {
  const AnalysisReport report = LintText(R"(
    source A(x, y);
    target T(x, y);
    tgd t1: A(x, _) -> T(x, x);
    egd e1: T(x, y) -> x = y;
  )");
  EXPECT_FALSE(Has(report, "TDX012")) << RenderText(report, "t");
}

// ---------------------------------------------------------------------------
// TDX013: dead relations.

TEST(AnalyzerTest, Tdx013DeadRelation) {
  const AnalysisReport report = LintText(R"(
    source A(x);
    source Unused(x);
    target T(x);
    tgd t1: A(x) -> T(x);
  )");
  const auto found = FindAll(report, "TDX013");
  ASSERT_EQ(found.size(), 1u) << RenderText(report, "t");
  EXPECT_EQ(found[0]->severity, Severity::kWarning);
  EXPECT_NE(found[0]->message.find("'Unused'"), std::string::npos);
  // The diagnostic points at the declaration on line 3.
  EXPECT_EQ(found[0]->span.line, 3u);
}

TEST(AnalyzerTest, Tdx013AbsentWhenAllRelationsAreUsed) {
  const AnalysisReport report = LintText(R"(
    source A(x);
    target T(x);
    tgd t1: A(x) -> T(x);
  )");
  EXPECT_FALSE(Has(report, "TDX013")) << RenderText(report, "t");
}

// ---------------------------------------------------------------------------
// TDX014 / TDX015: duplicate and implied dependencies.

TEST(AnalyzerTest, Tdx014DuplicateTgdUpToRenaming) {
  const AnalysisReport report = LintText(R"(
    source A(x, y);
    target T(x, y);
    tgd t1: A(x, y) -> T(x, y);
    tgd t2: A(u, v) -> T(u, v);
  )");
  const auto found = FindAll(report, "TDX014");
  ASSERT_EQ(found.size(), 1u) << RenderText(report, "t");
  EXPECT_EQ(found[0]->severity, Severity::kWarning);
  EXPECT_NE(found[0]->message.find("'t2'"), std::string::npos);
  EXPECT_NE(found[0]->message.find("'t1'"), std::string::npos);
  EXPECT_EQ(report.diagnostics.size(), 1u) << RenderText(report, "t");
}

TEST(AnalyzerTest, Tdx014DuplicateEgdUpToRenaming) {
  const AnalysisReport report = LintText(R"(
    source A(x, y);
    target T(x, y);
    tgd t1: A(x, y) -> T(x, y);
    egd e1: T(x, y) & T(x, y2) -> y = y2;
    egd e2: T(a, b) & T(a, b2) -> b = b2;
  )");
  const auto found = FindAll(report, "TDX014");
  ASSERT_EQ(found.size(), 1u) << RenderText(report, "t");
  EXPECT_NE(found[0]->message.find("'e2'"), std::string::npos);
}

TEST(AnalyzerTest, Tdx014AbsentForPermutedHeads) {
  const AnalysisReport report = LintText(R"(
    source A(x, y);
    target T(x, y);
    tgd t1: A(x, y) -> T(x, y);
    tgd t2: A(u, v) -> T(v, u);
  )");
  EXPECT_FALSE(Has(report, "TDX014")) << RenderText(report, "t");
  EXPECT_FALSE(Has(report, "TDX015")) << RenderText(report, "t");
}

TEST(AnalyzerTest, Tdx015SpecializedTgdIsImplied) {
  const AnalysisReport report = LintText(R"(
    source A(x, y);
    target T(x, y);
    tgd gen: A(x, y) -> T(x, y);
    tgd spec: A(x, x) -> T(x, x);
  )");
  const auto found = FindAll(report, "TDX015");
  ASSERT_EQ(found.size(), 1u) << RenderText(report, "t");
  EXPECT_EQ(found[0]->severity, Severity::kNote);
  EXPECT_NE(found[0]->message.find("'spec'"), std::string::npos);
  EXPECT_NE(found[0]->message.find("'gen'"), std::string::npos);
  EXPECT_EQ(report.diagnostics.size(), 1u) << RenderText(report, "t");
}

TEST(AnalyzerTest, Tdx015AbsentOnIndependentTgds) {
  EXPECT_FALSE(Has(LintText(kPaperProgram), "TDX015"));
}

// ---------------------------------------------------------------------------
// TDX016: normalization blowup estimate.

std::string BlowupProgram(bool fragmented) {
  std::string text =
      "source A(x);\n"
      "source B(x);\n"
      "target T(x, y);\n"
      "tgd t1: A(x) & B(y) -> T(x, y);\n";
  for (int i = 0; i < 8; ++i) {
    text += "fact A(\"a" + std::to_string(i) + "\") @ [0, 100);\n";
  }
  for (int i = 0; i < 8; ++i) {
    // Fragmented: 8 narrow B facts whose 16 endpoints each cut every A
    // fact. Benign: B facts share A's endpoints, so nothing fragments.
    const int start = fragmented ? 2 * i + 1 : 0;
    const int end = fragmented ? 2 * i + 2 : 100;
    text += "fact B(\"b" + std::to_string(i) + "\") @ [" +
            std::to_string(start) + ", " + std::to_string(end) + ");\n";
  }
  return text;
}

TEST(AnalyzerTest, Tdx016FragmentationBlowup) {
  const AnalysisReport report = LintText(BlowupProgram(true));
  const auto found = FindAll(report, "TDX016");
  ASSERT_EQ(found.size(), 1u) << RenderText(report, "t");
  EXPECT_EQ(found[0]->severity, Severity::kWarning);
  EXPECT_NE(found[0]->message.find("fragment"), std::string::npos);
}

TEST(AnalyzerTest, Tdx016AbsentWhenIntervalsAlign) {
  const AnalysisReport report = LintText(BlowupProgram(false));
  EXPECT_FALSE(Has(report, "TDX016")) << RenderText(report, "t");
}

// ---------------------------------------------------------------------------
// TDX017: mappings with no s-t tgds.

TEST(AnalyzerTest, Tdx017EmptyMapping) {
  const AnalysisReport report = LintText(R"(
    source A(x);
    fact A("a") @ [0, 1);
  )");
  const auto found = FindAll(report, "TDX017");
  ASSERT_EQ(found.size(), 1u) << RenderText(report, "t");
  EXPECT_EQ(found[0]->severity, Severity::kWarning);
  EXPECT_NE(found[0]->message.find("no s-t tgds"), std::string::npos);
  // The unused source relation is flagged as dead too.
  EXPECT_TRUE(Has(report, "TDX013")) << RenderText(report, "t");
}

TEST(AnalyzerTest, Tdx017AbsentWhenTgdsExist) {
  EXPECT_FALSE(Has(LintText(kPaperProgram), "TDX017"));
}

// ---------------------------------------------------------------------------
// TDX018 / TDX019: rules the chase planner proves can never do anything.

TEST(AnalyzerTest, Tdx018DeadRuleOnUnwrittenRelation) {
  const AnalysisReport report = LintText(R"(
    source A(x);
    target T(x);
    target U(x);
    target V(x);
    tgd t1: A(x) -> T(x);
    ttgd dead: U(x) -> V(x);
  )");
  const auto found = FindAll(report, "TDX018");
  ASSERT_EQ(found.size(), 1u) << RenderText(report, "t");
  EXPECT_EQ(found[0]->severity, Severity::kWarning);
  EXPECT_NE(found[0]->message.find("'dead'"), std::string::npos);
  EXPECT_NE(found[0]->message.find("no live rule head ever writes"),
            std::string::npos);
  EXPECT_EQ(found[0]->span.line, 7u);
}

TEST(AnalyzerTest, Tdx018DeadRuleOnConstantClash) {
  const AnalysisReport report = LintText(R"(
    source A(x);
    target T(x, tag);
    target U(x);
    tgd t1: A(x) -> T(x, "ok");
    ttgd dead: T(x, "bad") -> U(x);
  )");
  const auto found = FindAll(report, "TDX018");
  ASSERT_EQ(found.size(), 1u) << RenderText(report, "t");
  EXPECT_NE(found[0]->message.find("clashes"), std::string::npos);
}

TEST(AnalyzerTest, Tdx018AbsentWhenEveryRuleCanFire) {
  EXPECT_FALSE(Has(LintText(kAcyclicTtgdProgram), "TDX018"));
}

TEST(AnalyzerTest, Tdx019EffectFreeEgd) {
  const AnalysisReport report = LintText(R"(
    source A(x);
    target T(x, tag);
    tgd t1: A(x) -> T(x, "ok");
    egd e1: T(x, s) & T(x, s2) -> s = s2;
  )");
  const auto found = FindAll(report, "TDX019");
  ASSERT_EQ(found.size(), 1u) << RenderText(report, "t");
  EXPECT_EQ(found[0]->severity, Severity::kWarning);
  EXPECT_NE(found[0]->message.find("'e1'"), std::string::npos);
  EXPECT_EQ(found[0]->span.line, 5u);
}

TEST(AnalyzerTest, Tdx019AbsentWhenEgdCanFail) {
  // Pinned to two *different* constants: every firing fails the chase, so
  // the egd is anything but effect-free (TDX011 covers this case instead).
  const AnalysisReport report = LintText(R"(
    source A(x);
    target T(x, tag);
    tgd t1: A(x) -> T(x, "a");
    tgd t2: A(x) -> T(x, "b");
    egd e1: T(x, s) & T(x, s2) -> s = s2;
  )");
  EXPECT_FALSE(Has(report, "TDX019")) << RenderText(report, "t");
}

TEST(AnalyzerTest, Tdx019AbsentWhenEgdMergesNulls) {
  const AnalysisReport report = LintText(R"(
    source A(x);
    target T(x, v);
    tgd t1: A(x) -> exists v: T(x, v);
    egd e1: T(x, v) & T(x, v2) -> v = v2;
  )");
  EXPECT_FALSE(Has(report, "TDX019")) << RenderText(report, "t");
}

// ---------------------------------------------------------------------------
// TDX020: egd-tgd interference.

TEST(AnalyzerTest, Tdx020EgdInterferesWithTgdBody) {
  const AnalysisReport report = LintText(R"(
    source A(x);
    target T(x, v);
    target U(x, v);
    tgd t1: A(x) -> exists v: T(x, v);
    egd e1: T(x, v) & T(x, v2) -> v = v2;
    ttgd t2: T(x, v) -> U(x, v);
  )");
  const auto found = FindAll(report, "TDX020");
  ASSERT_EQ(found.size(), 1u) << RenderText(report, "t");
  EXPECT_EQ(found[0]->severity, Severity::kNote);
  EXPECT_NE(found[0]->message.find("'e1'"), std::string::npos);
  EXPECT_NE(found[0]->message.find("'t2'"), std::string::npos);
  // Points at the tgd whose frontier the merges invalidate.
  EXPECT_EQ(found[0]->span.line, 7u);
}

TEST(AnalyzerTest, Tdx020AbsentWithoutNulls) {
  // Same shape, but the head value is copied from the source instead of
  // invented: the egd can fail yet never merges, so no interference.
  const AnalysisReport report = LintText(R"(
    source A(x, v);
    target T(x, v);
    target U(x, v);
    tgd t1: A(x, v) -> T(x, v);
    egd e1: T(x, v) & T(x, v2) -> v = v2;
    ttgd t2: T(x, v) -> U(x, v);
  )");
  EXPECT_FALSE(Has(report, "TDX020")) << RenderText(report, "t");
}

// ---------------------------------------------------------------------------
// TDX021 / TDX022: stratum shape diagnostics.

TEST(AnalyzerTest, Tdx021MutualRecursionSharesAStratum) {
  const AnalysisReport report = LintText(R"(
    source A(x);
    target E(x);
    target O(x);
    tgd s: A(x) -> E(x);
    ttgd o1: E(x) -> O(x);
    ttgd o2: O(x) -> E(x);
  )");
  const auto found = FindAll(report, "TDX021");
  ASSERT_EQ(found.size(), 1u) << RenderText(report, "t");
  EXPECT_EQ(found[0]->severity, Severity::kNote);
  EXPECT_NE(found[0]->message.find("'o1'"), std::string::npos);
  EXPECT_NE(found[0]->message.find("'o2'"), std::string::npos);
}

TEST(AnalyzerTest, Tdx021AbsentOnSelfRecursion) {
  // A rule feeding itself is a singleton component; only genuine
  // multi-rule cycles are worth a note.
  EXPECT_FALSE(Has(LintText(kAcyclicTtgdProgram), "TDX021"));
}

TEST(AnalyzerTest, Tdx022DeclarationInvertsStratumOrder) {
  const AnalysisReport report = LintText(R"(
    source A(x);
    target R(x);
    target T(x);
    target U(x);
    tgd s: A(x) -> R(x);
    ttgd late: T(x) -> U(x);
    ttgd mk: R(x) -> T(x);
  )");
  const auto found = FindAll(report, "TDX022");
  ASSERT_EQ(found.size(), 1u) << RenderText(report, "t");
  EXPECT_EQ(found[0]->severity, Severity::kNote);
  EXPECT_NE(found[0]->message.find("'late'"), std::string::npos);
  EXPECT_EQ(found[0]->span.line, 7u);
}

TEST(AnalyzerTest, Tdx022AbsentInStratumOrder) {
  const AnalysisReport report = LintText(R"(
    source A(x);
    target R(x);
    target T(x);
    target U(x);
    tgd s: A(x) -> R(x);
    ttgd mk: R(x) -> T(x);
    ttgd late: T(x) -> U(x);
  )");
  EXPECT_FALSE(Has(report, "TDX022")) << RenderText(report, "t");
}

// ---------------------------------------------------------------------------
// TDX023 / TDX024: dataflow that never reaches a query.

TEST(AnalyzerTest, Tdx023WrittenNeverReadRelation) {
  const AnalysisReport report = LintText(R"(
    source A(x);
    target T(x);
    target L(x);
    tgd t1: A(x) -> T(x);
    tgd t2: A(x) -> L(x);
    query q(x): T(x);
  )");
  const auto found = FindAll(report, "TDX023");
  ASSERT_EQ(found.size(), 1u) << RenderText(report, "t");
  EXPECT_EQ(found[0]->severity, Severity::kNote);
  EXPECT_NE(found[0]->message.find("'L'"), std::string::npos);
  // Points at the relation declaration.
  EXPECT_EQ(found[0]->span.line, 4u);
}

TEST(AnalyzerTest, Tdx023GatedOnQueries) {
  // Without queries every terminal relation would be "write-only"; the
  // lint stays silent so query-less mappings do not drown in notes.
  const AnalysisReport report = LintText(R"(
    source A(x);
    target T(x);
    target L(x);
    tgd t1: A(x) -> T(x);
    tgd t2: A(x) -> L(x);
  )");
  EXPECT_FALSE(Has(report, "TDX023")) << RenderText(report, "t");
}

TEST(AnalyzerTest, Tdx024TargetTgdFeedsNoQuery) {
  const AnalysisReport report = LintText(R"(
    source A(x);
    target T(x);
    target U(x);
    tgd s: A(x) -> T(x);
    ttgd t2: T(x) -> U(x);
    query q(x): T(x);
  )");
  const auto found = FindAll(report, "TDX024");
  ASSERT_EQ(found.size(), 1u) << RenderText(report, "t");
  EXPECT_EQ(found[0]->severity, Severity::kNote);
  EXPECT_NE(found[0]->message.find("'t2'"), std::string::npos);
  EXPECT_EQ(found[0]->span.line, 6u);
}

TEST(AnalyzerTest, Tdx024AbsentWhenDownstreamIsQueried) {
  const AnalysisReport report = LintText(R"(
    source A(x);
    target T(x);
    target U(x);
    tgd s: A(x) -> T(x);
    ttgd t2: T(x) -> U(x);
    query q(x): U(x);
  )");
  EXPECT_FALSE(Has(report, "TDX024")) << RenderText(report, "t");
}

// ---------------------------------------------------------------------------
// Rendering.

TEST(RenderTest, DiagnosticRendersClangStyle) {
  Diagnostic d;
  d.id = "TDX013";
  d.severity = Severity::kWarning;
  d.message = "relation 'X' is never used";
  d.span = SourceSpan{3, 5};
  d.hint = "delete it";
  EXPECT_EQ(RenderDiagnostic(d, "f.tdx"),
            "f.tdx:3:5: warning: relation 'X' is never used [TDX013]\n"
            "    hint: delete it\n");
}

TEST(RenderTest, TextSummaryCountsBySeverity) {
  AnalysisReport report;
  report.Add("TDX001", Severity::kError, "boom");
  report.Add("TDX013", Severity::kWarning, "dead");
  const std::string text = RenderText(report, "f.tdx");
  EXPECT_NE(text.find("1 error(s), 1 warning(s), 0 note(s)"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("f.tdx: termination: no-target-tgds"),
            std::string::npos)
      << text;
}

TEST(RenderTest, JsonEscapesControlCharacters) {
  EXPECT_EQ(JsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(JsonEscape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(RenderTest, PromoteWarningsImplementsWerror) {
  AnalysisReport report;
  report.Add("TDX013", Severity::kWarning, "dead");
  EXPECT_FALSE(report.HasErrors());
  report.PromoteWarnings();
  EXPECT_TRUE(report.HasErrors());
}

}  // namespace
}  // namespace tdx
