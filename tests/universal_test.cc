#include "src/relational/universal.h"

#include <gtest/gtest.h>

namespace tdx {
namespace {

class UniversalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    emp_ = *schema_.AddRelation("Emp", {"name", "company", "salary"},
                                SchemaRole::kTarget);
  }

  Universe u_;
  Schema schema_;
  RelationId emp_ = 0;
};

TEST_F(UniversalTest, IdentityHomomorphismAlwaysExists) {
  Instance j(&schema_);
  j.Insert(emp_, {u_.Constant("Ada"), u_.Constant("IBM"), u_.FreshNull()});
  EXPECT_TRUE(FindInstanceHomomorphism(j, j).has_value());
}

TEST_F(UniversalTest, NullMapsToConstant) {
  Instance j1(&schema_);
  const Value n = u_.FreshNull();
  j1.Insert(emp_, {u_.Constant("Ada"), u_.Constant("IBM"), n});
  Instance j2(&schema_);
  j2.Insert(emp_,
            {u_.Constant("Ada"), u_.Constant("IBM"), u_.Constant("18k")});
  auto hom = FindInstanceHomomorphism(j1, j2);
  ASSERT_TRUE(hom.has_value());
  EXPECT_EQ(hom->at(n), u_.Constant("18k"));
  // The reverse direction does not hold: constants must map to themselves.
  EXPECT_FALSE(FindInstanceHomomorphism(j2, j1).has_value());
}

TEST_F(UniversalTest, ConstantsArePreserved) {
  Instance j1(&schema_);
  j1.Insert(emp_,
            {u_.Constant("Ada"), u_.Constant("IBM"), u_.Constant("18k")});
  Instance j2(&schema_);
  j2.Insert(emp_,
            {u_.Constant("Ada"), u_.Constant("IBM"), u_.Constant("20k")});
  EXPECT_FALSE(FindInstanceHomomorphism(j1, j2).has_value());
}

TEST_F(UniversalTest, SharedNullForcesConsistentImage) {
  // Emp(Ada, IBM, N) and Emp(Bob, IBM, N): N must map to one value.
  Instance j1(&schema_);
  const Value n = u_.FreshNull();
  j1.Insert(emp_, {u_.Constant("Ada"), u_.Constant("IBM"), n});
  j1.Insert(emp_, {u_.Constant("Bob"), u_.Constant("IBM"), n});

  Instance j2(&schema_);
  j2.Insert(emp_,
            {u_.Constant("Ada"), u_.Constant("IBM"), u_.Constant("18k")});
  j2.Insert(emp_,
            {u_.Constant("Bob"), u_.Constant("IBM"), u_.Constant("18k")});
  EXPECT_TRUE(FindInstanceHomomorphism(j1, j2).has_value());

  Instance j3(&schema_);
  j3.Insert(emp_,
            {u_.Constant("Ada"), u_.Constant("IBM"), u_.Constant("18k")});
  j3.Insert(emp_,
            {u_.Constant("Bob"), u_.Constant("IBM"), u_.Constant("20k")});
  EXPECT_FALSE(FindInstanceHomomorphism(j1, j3).has_value());
}

TEST_F(UniversalTest, DistinctNullsMayMapIndependently) {
  Instance j1(&schema_);
  j1.Insert(emp_, {u_.Constant("Ada"), u_.Constant("IBM"), u_.FreshNull()});
  j1.Insert(emp_, {u_.Constant("Bob"), u_.Constant("IBM"), u_.FreshNull()});
  Instance j2(&schema_);
  j2.Insert(emp_,
            {u_.Constant("Ada"), u_.Constant("IBM"), u_.Constant("18k")});
  j2.Insert(emp_,
            {u_.Constant("Bob"), u_.Constant("IBM"), u_.Constant("20k")});
  EXPECT_TRUE(FindInstanceHomomorphism(j1, j2).has_value());
}

TEST_F(UniversalTest, NullMayMapToNull) {
  Instance j1(&schema_);
  j1.Insert(emp_, {u_.Constant("Ada"), u_.Constant("IBM"), u_.FreshNull()});
  Instance j2(&schema_);
  j2.Insert(emp_, {u_.Constant("Ada"), u_.Constant("IBM"), u_.FreshNull()});
  EXPECT_TRUE(AreHomomorphicallyEquivalent(j1, j2));
}

TEST_F(UniversalTest, ExtraFactsInCodomainAreFine) {
  Instance j1(&schema_);
  j1.Insert(emp_, {u_.Constant("Ada"), u_.Constant("IBM"), u_.FreshNull()});
  Instance j2(&schema_);
  j2.Insert(emp_,
            {u_.Constant("Ada"), u_.Constant("IBM"), u_.Constant("18k")});
  j2.Insert(emp_,
            {u_.Constant("Eve"), u_.Constant("ACME"), u_.Constant("5k")});
  EXPECT_TRUE(FindInstanceHomomorphism(j1, j2).has_value());
  EXPECT_FALSE(FindInstanceHomomorphism(j2, j1).has_value());
  EXPECT_FALSE(AreHomomorphicallyEquivalent(j1, j2));
}

TEST_F(UniversalTest, EmptyInstanceMapsAnywhere) {
  Instance empty(&schema_);
  Instance j(&schema_);
  j.Insert(emp_, {u_.Constant("Ada"), u_.Constant("IBM"), u_.Constant("1k")});
  EXPECT_TRUE(FindInstanceHomomorphism(empty, j).has_value());
  EXPECT_FALSE(FindInstanceHomomorphism(j, empty).has_value());
}

TEST_F(UniversalTest, AnnotatedNullsActAsNulls) {
  auto ep = schema_.AddTemporalRelation("Emp+", {"name", "company", "salary"},
                                        SchemaRole::kTarget);
  ASSERT_TRUE(ep.ok());
  Instance j1(&schema_);
  const Value n = u_.FreshAnnotatedNull(Interval(1, 5));
  j1.Insert(*ep, {u_.Constant("Ada"), u_.Constant("IBM"), n,
                  Value::OfInterval(Interval(1, 5))});
  Instance j2(&schema_);
  j2.Insert(*ep, {u_.Constant("Ada"), u_.Constant("IBM"), u_.Constant("18k"),
                  Value::OfInterval(Interval(1, 5))});
  auto hom = FindInstanceHomomorphism(j1, j2);
  ASSERT_TRUE(hom.has_value());
  EXPECT_EQ(hom->at(n), u_.Constant("18k"));
}

}  // namespace
}  // namespace tdx
