// Fuzz-style property tests over RANDOM schemas and mappings (not just the
// employment shape): the paper's correctness statements must hold for any
// valid setting. Each seed yields a different schema, tgd/egd structure,
// and source instance.

#include <gtest/gtest.h>

#include <cstdlib>

#include "src/analysis/analyzer.h"
#include "src/analysis/planner.h"
#include "src/core/align.h"
#include "src/core/cchase.h"
#include "src/core/naive_eval.h"
#include "src/core/normalize.h"
#include "src/core/solution_core.h"
#include "src/gen/workload.h"
#include "src/parser/printer.h"
#include "src/relational/universal.h"
#include "src/temporal/abstract_chase.h"
#include "src/temporal/snapshot.h"
#include "src/temporal/abstract_hom.h"

namespace tdx {
namespace {

class FuzzMappingSweep : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  std::unique_ptr<Workload> MakeWorkload() const {
    RandomMappingConfig cfg;
    cfg.seed = GetParam();
    return MakeRandomMappingWorkload(cfg);
  }

  std::vector<TimePoint> ProbePoints(const ConcreteInstance& ic) const {
    std::vector<TimePoint> pts = ic.Endpoints();
    pts.push_back(ic.StabilizationPoint() + 2);
    pts.push_back(0);
    return pts;
  }
};

TEST_P(FuzzMappingSweep, GeneratedSettingIsWellFormed) {
  auto w = MakeWorkload();
  EXPECT_TRUE(ValidateMapping(w->mapping, w->schema).ok());
  EXPECT_TRUE(w->source.Validate().ok());
  EXPECT_TRUE(w->source.IsComplete());
  EXPECT_FALSE(w->mapping.st_tgds.empty());
}

TEST_P(FuzzMappingSweep, Corollary20OnRandomMappings) {
  auto w = MakeWorkload();
  auto report =
      VerifyCorollary20(w->source, w->mapping, w->lifted, &w->universe);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->outcome_agreed) << "seed=" << GetParam();
  EXPECT_TRUE(report->aligned()) << "seed=" << GetParam();
}

TEST_P(FuzzMappingSweep, NormalizationPropertiesOnRandomMappings) {
  auto w = MakeWorkload();
  const auto phis = w->lifted.TgdBodies();
  const ConcreteInstance normalized = Normalize(w->source, phis);
  EXPECT_TRUE(HasEmptyIntersectionProperty(normalized, phis));
  EXPECT_LE(normalized.size(), NaiveNormalize(w->source).size());
  for (TimePoint l : ProbePoints(w->source)) {
    auto before = SnapshotAt(w->source, l, &w->universe);
    auto after = SnapshotAt(normalized, l, &w->universe);
    ASSERT_TRUE(before.ok());
    ASSERT_TRUE(after.ok());
    EXPECT_EQ(*before, *after) << "l=" << l;
  }
}

TEST_P(FuzzMappingSweep, CChaseResultIsValidAndUniversalPerSnapshot) {
  auto w = MakeWorkload();
  auto concrete = CChase(w->source, w->lifted, &w->universe);
  ASSERT_TRUE(concrete.ok()) << concrete.status();
  if (concrete->kind == ChaseResultKind::kFailure) {
    GTEST_SKIP() << "no solution for seed " << GetParam();
  }
  EXPECT_TRUE(concrete->target.Validate().ok());

  auto jc_abs = AbstractInstance::FromConcrete(concrete->target);
  ASSERT_TRUE(jc_abs.ok());
  auto ia = AbstractInstance::FromConcrete(w->source);
  ASSERT_TRUE(ia.ok());
  for (TimePoint l : ProbePoints(w->source)) {
    auto ground = ChaseSnapshotAt(*ia, l, w->mapping, &w->universe);
    ASSERT_TRUE(ground.ok());
    ASSERT_EQ(ground->kind, ChaseResultKind::kSuccess);
    EXPECT_TRUE(AreHomomorphicallyEquivalent(ground->target,
                                             jc_abs->At(l, &w->universe)))
        << "seed=" << GetParam() << " l=" << l;
  }
}

TEST_P(FuzzMappingSweep, CoreStaysEquivalentOnRandomMappings) {
  auto w = MakeWorkload();
  auto concrete = CChase(w->source, w->lifted, &w->universe);
  ASSERT_TRUE(concrete.ok());
  if (concrete->kind == ChaseResultKind::kFailure) {
    GTEST_SKIP() << "no solution for seed " << GetParam();
  }
  const ConcreteInstance core = ComputeConcreteCore(concrete->target);
  EXPECT_LE(core.size(), concrete->target.size());
  auto a = AbstractInstance::FromConcrete(core);
  auto b = AbstractInstance::FromConcrete(concrete->target);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(AreAbstractEquivalent(*a, *b)) << "seed=" << GetParam();
}

TEST_P(FuzzMappingSweep, AnalyzerAcceptsGeneratedMappings) {
  // The static analyzer must never crash on a generated setting, and a
  // valid mapping must lint without error-severity findings and with a
  // termination guarantee (warnings/notes are fine: random settings do
  // produce dead relations and redundant dependencies).
  auto w = MakeWorkload();
  AnalysisInput input;
  input.schema = &w->schema;
  input.mapping = &w->mapping;
  input.source = &w->source;
  const AnalysisReport report = Analyze(input);
  EXPECT_EQ(report.CountOf(Severity::kError), 0u)
      << "seed=" << GetParam() << "\n"
      << RenderText(report, "fuzz");
  EXPECT_TRUE(report.certificate.guarantees_termination())
      << "seed=" << GetParam() << " certificate="
      << report.certificate.ToString();
}

TEST_P(FuzzMappingSweep, PlannerScheduleIsSoundOnRandomMappings) {
  // The planner must never crash on a generated mapping, its strata must
  // partition the rule set, and every justification edge must respect the
  // topological stratum order.
  auto w = MakeWorkload();
  const PlanDetails details = PlanChaseDetailed(w->mapping, w->schema);
  const ChaseSchedule& schedule = details.schedule;
  std::vector<std::size_t> seen(schedule.rules.size(), 0);
  for (const auto& stratum : schedule.strata) {
    for (std::size_t id : stratum) {
      ASSERT_LT(id, schedule.rules.size()) << "seed=" << GetParam();
      ++seen[id];
    }
  }
  for (std::size_t count : seen) EXPECT_EQ(count, 1u) << "seed=" << GetParam();
  for (const ScheduleEdge& edge : schedule.edges) {
    EXPECT_LE(schedule.rules[edge.from].stratum,
              schedule.rules[edge.to].stratum)
        << "seed=" << GetParam() << "\n"
        << schedule.ToText();
  }
  // Parallel groups hold live target tgds in declaration order.
  for (const auto& group : schedule.parallel_groups) {
    for (std::size_t k = 0; k < group.size(); ++k) {
      if (k > 0) {
        EXPECT_LT(group[k - 1], group[k]) << "seed=" << GetParam();
      }
      EXPECT_LT(group[k], w->mapping.target_tgds.size());
    }
  }
}

TEST_P(FuzzMappingSweep, ScheduledCChaseMatchesUnscheduled) {
  // The schedule only removes provably no-op work: scheduled and flat runs
  // must agree bit-for-bit on outcome, target, and chase statistics.
  auto w_flat = MakeWorkload();
  auto w_sched = MakeWorkload();
  CChaseOptions flat_options;
  flat_options.scheduled = false;
  CChaseOptions sched_options;
  sched_options.jobs = 4;
  auto flat = CChase(w_flat->source, w_flat->lifted, &w_flat->universe,
                     flat_options);
  auto sched = CChase(w_sched->source, w_sched->lifted, &w_sched->universe,
                      sched_options);
  ASSERT_TRUE(flat.ok()) << flat.status();
  ASSERT_TRUE(sched.ok()) << sched.status();
  ASSERT_EQ(flat->kind, sched->kind) << "seed=" << GetParam();
  EXPECT_EQ(RenderConcreteInstance(flat->target, w_flat->universe),
            RenderConcreteInstance(sched->target, w_sched->universe))
      << "seed=" << GetParam();
  EXPECT_EQ(flat->stats.tgd_triggers, sched->stats.tgd_triggers);
  EXPECT_EQ(flat->stats.tgd_fires, sched->stats.tgd_fires);
  EXPECT_EQ(flat->stats.egd_steps, sched->stats.egd_steps);
  EXPECT_EQ(flat->stats.fresh_nulls, sched->stats.fresh_nulls);
  EXPECT_EQ(flat->stats.values_rewritten, sched->stats.values_rewritten);
}

// Seeds swept: [1, TDX_FUZZ_SEEDS) from the environment, default 21. PR CI
// runs the default; the nightly fuzz job sets 201 for a 10x-deeper sweep.
std::uint64_t FuzzSeedEnd() {
  const char* env = std::getenv("TDX_FUZZ_SEEDS");
  if (env != nullptr) {
    char* end = nullptr;
    const unsigned long long n = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0' && n > 1) return n;
  }
  return 21;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzMappingSweep,
                         ::testing::Range<std::uint64_t>(1, FuzzSeedEnd()));

}  // namespace
}  // namespace tdx
