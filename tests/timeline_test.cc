#include "src/temporal/timeline.h"

#include <gtest/gtest.h>

#include "src/temporal/coalesce.h"

namespace tdx {
namespace {

TEST(TimelineTest, FromIntervalsNormalizes) {
  const Timeline t = Timeline::FromIntervals(
      {Interval(5, 8), Interval(1, 3), Interval(3, 5), Interval(10, 12)});
  ASSERT_EQ(t.runs().size(), 2u);
  EXPECT_EQ(t.runs()[0], Interval(1, 8));
  EXPECT_EQ(t.runs()[1], Interval(10, 12));
  EXPECT_EQ(t.ToString(), "{[1, 8), [10, 12)}");
}

TEST(TimelineTest, EmptyAndAll) {
  const Timeline empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.ToString(), "{}");
  EXPECT_EQ(*empty.Cardinality(), 0u);
  EXPECT_FALSE(empty.Min().has_value());

  const Timeline all = Timeline::All();
  EXPECT_TRUE(all.Contains(0));
  EXPECT_TRUE(all.Contains(1u << 30));
  EXPECT_FALSE(all.Cardinality().has_value());
  EXPECT_EQ(all.Complement(), Timeline());
}

TEST(TimelineTest, ContainsBinarySearch) {
  const Timeline t = Timeline::FromIntervals(
      {Interval(1, 3), Interval(6, 9), Interval::FromStart(20)});
  EXPECT_FALSE(t.Contains(0));
  EXPECT_TRUE(t.Contains(1));
  EXPECT_TRUE(t.Contains(2));
  EXPECT_FALSE(t.Contains(3));
  EXPECT_FALSE(t.Contains(5));
  EXPECT_TRUE(t.Contains(8));
  EXPECT_FALSE(t.Contains(19));
  EXPECT_TRUE(t.Contains(20));
  EXPECT_TRUE(t.Contains(1000000));
}

TEST(TimelineTest, CardinalityAndBounds) {
  const Timeline t = Timeline::FromIntervals({Interval(1, 3), Interval(6, 9)});
  EXPECT_EQ(*t.Cardinality(), 5u);
  EXPECT_EQ(*t.Min(), 1u);
  EXPECT_EQ(*t.Max(), 9u);
  const Timeline open = Timeline::FromIntervals({Interval::FromStart(4)});
  EXPECT_FALSE(open.Cardinality().has_value());
  EXPECT_FALSE(open.Max().has_value());
}

TEST(TimelineTest, UnionIntersectDifference) {
  const Timeline a = Timeline::FromIntervals({Interval(0, 5), Interval(8, 12)});
  const Timeline b = Timeline::FromIntervals({Interval(3, 9)});
  EXPECT_EQ(a.Union(b),
            Timeline::FromIntervals({Interval(0, 12)}));
  EXPECT_EQ(a.Intersect(b),
            Timeline::FromIntervals({Interval(3, 5), Interval(8, 9)}));
  EXPECT_EQ(a.Difference(b),
            Timeline::FromIntervals({Interval(0, 3), Interval(9, 12)}));
  EXPECT_EQ(b.Difference(a), Timeline::FromIntervals({Interval(5, 8)}));
}

TEST(TimelineTest, ComplementRoundTrips) {
  const Timeline t = Timeline::FromIntervals(
      {Interval(2, 4), Interval(7, 9), Interval::FromStart(15)});
  const Timeline c = t.Complement();
  EXPECT_EQ(c, Timeline::FromIntervals(
                   {Interval(0, 2), Interval(4, 7), Interval(9, 15)}));
  EXPECT_EQ(c.Complement(), t);
  EXPECT_TRUE(t.Intersect(c).empty());
  EXPECT_EQ(t.Union(c), Timeline::All());
}

TEST(TimelineTest, Gaps) {
  const Timeline t = Timeline::FromIntervals(
      {Interval(1, 3), Interval(5, 7), Interval(10, 11)});
  EXPECT_EQ(t.Gaps(),
            Timeline::FromIntervals({Interval(3, 5), Interval(7, 10)}));
  EXPECT_TRUE(Timeline::FromIntervals({Interval(1, 3)}).Gaps().empty());
  EXPECT_TRUE(Timeline().Gaps().empty());
}

TEST(TimelineTest, AddMergesInPlace) {
  Timeline t;
  t.Add(Interval(5, 8));
  t.Add(Interval(1, 2));
  t.Add(Interval(2, 5));
  EXPECT_EQ(t, Timeline::FromIntervals({Interval(1, 8)}));
}

// Timeline as an independent oracle for coalescing: the coalesced runs of
// one data tuple are exactly Timeline::FromIntervals of its fact intervals.
TEST(TimelineTest, AgreesWithCoalesce) {
  Universe u;
  Schema schema;
  const RelationId e_plus =
      *schema.AddRelationPair("E", {"name"}, SchemaRole::kSource);
  ConcreteInstance ic(&schema);
  const std::vector<Interval> ivs = {Interval(1, 4), Interval(4, 6),
                                     Interval(9, 12), Interval(11, 15)};
  for (const Interval& iv : ivs) {
    ASSERT_TRUE(ic.Add(e_plus, {u.Constant("x")}, iv).ok());
  }
  const ConcreteInstance coalesced = Coalesce(ic);
  std::vector<Interval> coalesced_ivs;
  coalesced.facts().ForEach(
      [&](FactView f) { coalesced_ivs.push_back(f.interval()); });
  std::sort(coalesced_ivs.begin(), coalesced_ivs.end());
  EXPECT_EQ(Timeline::FromIntervals(ivs).runs(), coalesced_ivs);
}

// Property sweep: set-algebra laws on dense small universes.
class TimelineLaws : public ::testing::TestWithParam<int> {
 protected:
  /// Decodes a bitmask over points 0..7 into a timeline.
  static Timeline FromMask(int mask) {
    std::vector<Interval> ivs;
    for (int bit = 0; bit < 8; ++bit) {
      if (mask & (1 << bit)) {
        ivs.emplace_back(static_cast<TimePoint>(bit),
                         static_cast<TimePoint>(bit + 1));
      }
    }
    return Timeline::FromIntervals(std::move(ivs));
  }
  static bool MaskBit(int mask, int bit) { return (mask >> bit) & 1; }
};

TEST_P(TimelineLaws, PointwiseSemantics) {
  const int combined = GetParam();
  const int mask_a = combined & 0xFF;
  const int mask_b = (combined >> 8) & 0xFF;
  const Timeline a = FromMask(mask_a);
  const Timeline b = FromMask(mask_b);
  const Timeline u = a.Union(b);
  const Timeline i = a.Intersect(b);
  const Timeline d = a.Difference(b);
  for (int p = 0; p < 10; ++p) {
    const bool in_a = p < 8 && MaskBit(mask_a, p);
    const bool in_b = p < 8 && MaskBit(mask_b, p);
    EXPECT_EQ(u.Contains(p), in_a || in_b) << p;
    EXPECT_EQ(i.Contains(p), in_a && in_b) << p;
    EXPECT_EQ(d.Contains(p), in_a && !in_b) << p;
    EXPECT_EQ(a.Complement().Contains(p), !in_a) << p;
  }
}

INSTANTIATE_TEST_SUITE_P(MaskPairs, TimelineLaws,
                         ::testing::Range(0, 1 << 16, 1309));

}  // namespace
}  // namespace tdx
