#include "src/temporal/semantic_diff.h"

#include <gtest/gtest.h>

#include "src/core/normalize.h"
#include "src/temporal/coalesce.h"
#include "tests/test_util.h"

namespace tdx {
namespace {

class SemanticDiffTest : public ::testing::Test {
 protected:
  void SetUp() override {
    e_plus_ = *schema_.AddRelationPair("E", {"name", "company"},
                                       SchemaRole::kSource);
  }

  void Add(ConcreteInstance* ic, const char* n, const char* c,
           const Interval& iv) {
    ASSERT_TRUE(ic->Add(e_plus_, {u_.Constant(n), u_.Constant(c)}, iv).ok());
  }

  Universe u_;
  Schema schema_;
  RelationId e_plus_ = 0;
};

TEST_F(SemanticDiffTest, IdenticalInstancesAreEqual) {
  ConcreteInstance a(&schema_);
  Add(&a, "Ada", "IBM", Interval(0, 5));
  auto diff = SemanticDiff(a, a, &u_);
  ASSERT_TRUE(diff.ok());
  EXPECT_TRUE(diff->equal());
  EXPECT_TRUE(diff->ToString().empty());
}

TEST_F(SemanticDiffTest, FragmentationIsInvisible) {
  ConcreteInstance whole(&schema_);
  Add(&whole, "Ada", "IBM", Interval(0, 10));
  ConcreteInstance split(&schema_);
  Add(&split, "Ada", "IBM", Interval(0, 4));
  Add(&split, "Ada", "IBM", Interval(4, 10));
  auto diff = SemanticDiff(whole, split, &u_);
  ASSERT_TRUE(diff.ok());
  EXPECT_TRUE(diff->equal());
}

TEST_F(SemanticDiffTest, ReportsDifferingRun) {
  ConcreteInstance a(&schema_);
  Add(&a, "Ada", "IBM", Interval(0, 10));
  ConcreteInstance b(&schema_);
  Add(&b, "Ada", "IBM", Interval(0, 6));
  auto diff = SemanticDiff(a, b, &u_);
  ASSERT_TRUE(diff.ok());
  ASSERT_EQ(diff->spans.size(), 1u);
  EXPECT_EQ(diff->spans[0].span, Interval(6, 10));
  ASSERT_EQ(diff->spans[0].only_in_a.size(), 1u);
  EXPECT_EQ(diff->spans[0].only_in_a[0], "E(Ada, IBM)");
  EXPECT_TRUE(diff->spans[0].only_in_b.empty());
}

TEST_F(SemanticDiffTest, MergesAdjacentIdenticalSpans) {
  // a has the fact on [0,4) and [6,10); b never — the diff spans the two
  // runs separately (gap at [4,6) where both agree on emptiness).
  ConcreteInstance a(&schema_);
  Add(&a, "Ada", "IBM", Interval(0, 4));
  Add(&a, "Ada", "IBM", Interval(6, 10));
  ConcreteInstance b(&schema_);
  auto diff = SemanticDiff(a, b, &u_);
  ASSERT_TRUE(diff.ok());
  ASSERT_EQ(diff->spans.size(), 2u);
  EXPECT_EQ(diff->spans[0].span, Interval(0, 4));
  EXPECT_EQ(diff->spans[1].span, Interval(6, 10));
}

TEST_F(SemanticDiffTest, BothDirectionsReported) {
  ConcreteInstance a(&schema_);
  Add(&a, "Ada", "IBM", Interval(0, 5));
  ConcreteInstance b(&schema_);
  Add(&b, "Ada", "Google", Interval(0, 5));
  auto diff = SemanticDiff(a, b, &u_);
  ASSERT_TRUE(diff.ok());
  ASSERT_EQ(diff->spans.size(), 1u);
  EXPECT_EQ(diff->spans[0].only_in_a[0], "E(Ada, IBM)");
  EXPECT_EQ(diff->spans[0].only_in_b[0], "E(Ada, Google)");
  const std::string report = diff->ToString();
  EXPECT_NE(report.find("- E(Ada, IBM)"), std::string::npos);
  EXPECT_NE(report.find("+ E(Ada, Google)"), std::string::npos);
}

TEST_F(SemanticDiffTest, UnboundedTailDifference) {
  ConcreteInstance a(&schema_);
  Add(&a, "Ada", "IBM", Interval::FromStart(3));
  ConcreteInstance b(&schema_);
  auto diff = SemanticDiff(a, b, &u_);
  ASSERT_TRUE(diff.ok());
  ASSERT_EQ(diff->spans.size(), 1u);
  EXPECT_EQ(diff->spans[0].span, Interval::FromStart(3));
}

TEST_F(SemanticDiffTest, NormalizationAndCoalescingAreNoOpsSemantically) {
  auto program = ::tdx::testing::ParseOrDie(::tdx::testing::kPaperProgram);
  const ConcreteInstance normalized =
      Normalize(program->source, program->lifted.TgdBodies());
  const ConcreteInstance coalesced = Coalesce(program->source);
  auto d1 = SemanticDiff(program->source, normalized, &program->universe);
  auto d2 = SemanticDiff(program->source, coalesced, &program->universe);
  ASSERT_TRUE(d1.ok());
  ASSERT_TRUE(d2.ok());
  EXPECT_TRUE(d1->equal()) << d1->ToString();
  EXPECT_TRUE(d2->equal()) << d2->ToString();
}

}  // namespace
}  // namespace tdx
