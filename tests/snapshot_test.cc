#include "src/temporal/snapshot.h"

#include <gtest/gtest.h>

namespace tdx {
namespace {

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    e_plus_ = *schema_.AddRelationPair("E", {"name", "company"},
                                       SchemaRole::kSource);
    e_ = *schema_.TwinOf(e_plus_);
    emp_plus_ = *schema_.AddRelationPair("Emp", {"name", "company", "salary"},
                                         SchemaRole::kTarget);
    emp_ = *schema_.TwinOf(emp_plus_);
  }

  Universe u_;
  Schema schema_;
  RelationId e_plus_ = 0, e_ = 0, emp_plus_ = 0, emp_ = 0;
};

TEST_F(SnapshotTest, FactVisibleExactlyWithinInterval) {
  // Figure 4 -> Figure 1: E+(Ada, IBM, [2012, 2014)).
  ConcreteInstance ic(&schema_);
  ASSERT_TRUE(ic.Add(e_plus_, {u_.Constant("Ada"), u_.Constant("IBM")},
                     Interval(2012, 2014))
                  .ok());
  const Fact expected(e_, {u_.Constant("Ada"), u_.Constant("IBM")});
  for (TimePoint l : {2012u, 2013u}) {
    auto snap = SnapshotAt(ic, l, &u_);
    ASSERT_TRUE(snap.ok());
    EXPECT_TRUE(snap->Contains(expected)) << l;
    EXPECT_EQ(snap->size(), 1u);
  }
  for (TimePoint l : {2011u, 2014u, 2020u}) {
    auto snap = SnapshotAt(ic, l, &u_);
    ASSERT_TRUE(snap.ok());
    EXPECT_TRUE(snap->empty()) << l;
  }
}

TEST_F(SnapshotTest, UnboundedFactVisibleForever) {
  ConcreteInstance ic(&schema_);
  ASSERT_TRUE(ic.Add(e_plus_, {u_.Constant("Ada"), u_.Constant("Intel")},
                     Interval::FromStart(2014))
                  .ok());
  auto snap = SnapshotAt(ic, 5000, &u_);
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->size(), 1u);
}

TEST_F(SnapshotTest, AnnotatedNullProjectsPerSnapshot) {
  // Section 4.1: Emp(Ada, IBM, N^[8, inf), [8, inf)): db8 contains N_8,
  // db9 contains N_9, and so on — all distinct, all deterministic.
  ConcreteInstance ic(&schema_);
  const Value n = u_.FreshAnnotatedNull(Interval::FromStart(8));
  ASSERT_TRUE(ic.Add(emp_plus_, {u_.Constant("Ada"), u_.Constant("IBM"), n},
                     Interval::FromStart(8))
                  .ok());
  auto db8 = SnapshotAt(ic, 8, &u_);
  auto db9 = SnapshotAt(ic, 9, &u_);
  auto db8_again = SnapshotAt(ic, 8, &u_);
  ASSERT_TRUE(db8.ok());
  ASSERT_TRUE(db9.ok());
  ASSERT_TRUE(db8_again.ok());
  ASSERT_EQ(db8->facts(emp_).size(), 1u);
  ASSERT_EQ(db9->facts(emp_).size(), 1u);
  const Value n8 = db8->facts(emp_)[0].arg(2);
  const Value n9 = db9->facts(emp_)[0].arg(2);
  EXPECT_TRUE(n8.is_null());
  EXPECT_TRUE(n9.is_null());
  EXPECT_NE(n8, n9);
  EXPECT_EQ(*db8, *db8_again);  // [[.]] is a function
}

TEST_F(SnapshotTest, MultipleRelationsAndFacts) {
  ConcreteInstance ic(&schema_);
  ASSERT_TRUE(ic.Add(e_plus_, {u_.Constant("Ada"), u_.Constant("IBM")},
                     Interval(2012, 2014))
                  .ok());
  ASSERT_TRUE(ic.Add(e_plus_, {u_.Constant("Bob"), u_.Constant("IBM")},
                     Interval(2013, 2018))
                  .ok());
  ASSERT_TRUE(ic.Add(emp_plus_,
                     {u_.Constant("Ada"), u_.Constant("IBM"),
                      u_.Constant("18k")},
                     Interval(2013, 2014))
                  .ok());
  auto snap = SnapshotAt(ic, 2013, &u_);
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->facts(e_).size(), 2u);
  EXPECT_EQ(snap->facts(emp_).size(), 1u);
}

TEST_F(SnapshotTest, FailsWithoutTwin) {
  Schema bare;
  const RelationId r =
      *bare.AddTemporalRelation("R+", {"a"}, SchemaRole::kSource);
  ConcreteInstance ic(&bare);
  ASSERT_TRUE(ic.Add(r, {u_.Constant("x")}, Interval(0, 2)).ok());
  EXPECT_FALSE(SnapshotAt(ic, 0, &u_).ok());
}

}  // namespace
}  // namespace tdx
