#include "src/parser/serialize.h"

#include <gtest/gtest.h>

#include "src/core/align.h"
#include "src/core/cchase.h"
#include "tests/test_util.h"

namespace tdx {
namespace {

using ::tdx::testing::ParseOrDie;

TEST(SerializeTest, SchemaEmitsPairsOnly) {
  auto program = ParseOrDie(testing::kPaperProgram);
  const std::string out = SerializeSchema(program->schema);
  EXPECT_NE(out.find("source E(name, company);"), std::string::npos);
  EXPECT_NE(out.find("source S(name, salary);"), std::string::npos);
  EXPECT_NE(out.find("target Emp(name, company, salary);"),
            std::string::npos);
  EXPECT_EQ(out.find("E+"), std::string::npos);  // concrete side implicit
}

TEST(SerializeTest, MappingEmitsParseableDependencies) {
  auto program = ParseOrDie(testing::kPaperProgram);
  const std::string out =
      SerializeMapping(program->mapping, program->schema, program->universe);
  EXPECT_NE(out.find("tgd sigma1: E(n, c) -> exists s: Emp(n, c, s);"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("egd e1: Emp(n, c, s) & Emp(n, c, s2) -> s = s2;"),
            std::string::npos);
}

TEST(SerializeTest, FactsQuoteConstants) {
  auto program = ParseOrDie(testing::kPaperProgram);
  auto out = SerializeInstanceFacts(program->source, program->universe);
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out->find("fact E(\"Ada\", \"IBM\") @ [2012, 2014);"),
            std::string::npos)
      << *out;
  EXPECT_NE(out->find("fact S(\"Bob\", \"13k\") @ [2015, inf);"),
            std::string::npos);
}

TEST(SerializeTest, InstancesWithNullsAreRejected) {
  auto program = ParseOrDie(testing::kPaperProgram);
  auto chase = CChase(program->source, program->lifted, &program->universe);
  ASSERT_TRUE(chase.ok());
  // The solution contains annotated nulls — not serializable as facts.
  EXPECT_FALSE(
      SerializeInstanceFacts(chase->target, program->universe).ok());
}

TEST(SerializeTest, RoundTripPreservesEverything) {
  auto program = ParseOrDie(testing::kPaperProgram);
  auto text = SerializeProgram(*program);
  ASSERT_TRUE(text.ok()) << text.status();
  auto reparsed = ParseOrDie(*text);

  EXPECT_EQ(reparsed->mapping.st_tgds.size(),
            program->mapping.st_tgds.size());
  EXPECT_EQ(reparsed->mapping.egds.size(), program->mapping.egds.size());
  EXPECT_EQ(reparsed->source.size(), program->source.size());
  EXPECT_EQ(reparsed->queries.size(), program->queries.size());
  // Same rendered source instance (universes differ, spellings agree).
  EXPECT_EQ(reparsed->source.facts().ToString(reparsed->universe),
            program->source.facts().ToString(program->universe));
}

TEST(SerializeTest, RoundTripProducesSameChaseResult) {
  auto program = ParseOrDie(testing::kPaperProgram);
  auto text = SerializeProgram(*program);
  ASSERT_TRUE(text.ok());
  auto reparsed = ParseOrDie(*text);

  auto chase1 = CChase(program->source, program->lifted, &program->universe);
  auto chase2 =
      CChase(reparsed->source, reparsed->lifted, &reparsed->universe);
  ASSERT_TRUE(chase1.ok());
  ASSERT_TRUE(chase2.ok());
  EXPECT_EQ(chase1->kind, chase2->kind);
  EXPECT_EQ(chase1->target.facts().ToString(program->universe),
            chase2->target.facts().ToString(reparsed->universe));
}

TEST(SerializeTest, TemporalOperatorsRoundTrip) {
  auto program = ParseOrDie(R"(
    source Grad(name);
    source Cand(name, adviser);
    target Alum(name, adviser);
    tgd g1: Grad(n) & once_past(Cand(n, a)) -> Alum(n, a);
    fact Cand("ada", "turing") @ [1, 4);
    fact Grad("ada") @ [6, inf);
  )");
  auto text = SerializeProgram(*program);
  ASSERT_TRUE(text.ok()) << text.status();
  // Operator syntax restored; closure relation and its facts omitted.
  EXPECT_NE(text->find("once_past(Cand(n, a))"), std::string::npos) << *text;
  EXPECT_EQ(text->find("Cand__once_past("), std::string::npos);
  EXPECT_EQ(text->find("fact Cand__once_past"), std::string::npos);

  auto reparsed = ParseOrDie(*text);
  EXPECT_EQ(reparsed->closures.size(), 1u);
  auto chase =
      CChase(reparsed->source, reparsed->lifted, &reparsed->universe);
  ASSERT_TRUE(chase.ok());
  EXPECT_TRUE(::tdx::testing::HasConcreteFact(
      chase->target, reparsed->universe, "Alum+", {"ada", "turing"},
      Interval::FromStart(6)));
}

TEST(SerializeTest, TargetTgdsAndConstantsRoundTrip) {
  auto program = ParseOrDie(R"(
    source Flight(from, to);
    target Reach(from, to);
    target Kind(from, kind);
    tgd Flight(x, y) -> Reach(x, y);
    tgd Flight(x, "hub") -> Kind(x, "feeder");
    ttgd tc: Reach(x, y) & Reach(y, z) -> Reach(x, z);
    fact Flight("a", "hub") @ [0, 5);
  )");
  auto text = SerializeProgram(*program);
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("ttgd tc:"), std::string::npos) << *text;
  EXPECT_NE(text->find("\"feeder\""), std::string::npos);
  auto reparsed = ParseOrDie(*text);
  EXPECT_EQ(reparsed->mapping.target_tgds.size(), 1u);
  EXPECT_EQ(reparsed->mapping.st_tgds.size(), 2u);
}

TEST(SerializeTest, QueriesRoundTripIncludingUnions) {
  auto program = ParseOrDie(R"(
    source A(x);
    source B(x);
    target Ta(x);
    target Tb(x);
    tgd A(x) -> Ta(x);
    tgd B(x) -> Tb(x);
    query u(x): Ta(x);
    query u(x): Tb(x);
  )");
  auto text = SerializeProgram(*program);
  ASSERT_TRUE(text.ok());
  auto reparsed = ParseOrDie(*text);
  ASSERT_EQ(reparsed->queries.size(), 1u);
  EXPECT_EQ(reparsed->queries[0].disjuncts.size(), 2u);
}

}  // namespace
}  // namespace tdx
