// Resource governance: every engine must halt cleanly at its budget with a
// structured kAborted / kResourceExhausted, never returning a partial target
// as a claimed solution. Budgets default to unlimited, so the guard must
// also be invisible when unset.

#include "src/common/resource.h"

#include <gtest/gtest.h>

#include <chrono>

#include "src/core/cchase.h"
#include "src/core/certain.h"
#include "src/core/naive_eval.h"
#include "src/core/normalize.h"
#include "src/core/query.h"
#include "src/parser/parser.h"
#include "src/temporal/abstract_chase.h"
#include "src/temporal/snapshot.h"
#include "tests/test_util.h"

namespace tdx {
namespace {

using ::tdx::testing::kPaperProgram;
using ::tdx::testing::ParseOrDie;

// ---------------------------------------------------------------------------
// ResourceGuard unit behavior
// ---------------------------------------------------------------------------

TEST(ResourceGuardTest, UnlimitedGuardNeverTrips) {
  ResourceGuard guard;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(guard.ChargeTgdFire());
    EXPECT_TRUE(guard.ChargeEgdSteps(100));
    EXPECT_TRUE(guard.ChargeFreshNull());
    EXPECT_TRUE(guard.ChargeFact());
    EXPECT_TRUE(guard.ChargeFragment());
    EXPECT_TRUE(guard.CheckDeadline());
  }
  EXPECT_TRUE(guard.ok());
  EXPECT_EQ(guard.dimension(), ResourceDimension::kNone);
  EXPECT_TRUE(guard.ToStatus().ok());
  EXPECT_TRUE(guard.reason().empty());
}

TEST(ResourceGuardTest, CountBudgetTripsAtLimit) {
  ChaseLimits limits;
  limits.max_tgd_fires = 3;
  ResourceGuard guard(limits);
  EXPECT_TRUE(guard.ChargeTgdFire());
  EXPECT_TRUE(guard.ChargeTgdFire());
  EXPECT_TRUE(guard.ChargeTgdFire());
  EXPECT_FALSE(guard.ChargeTgdFire());
  EXPECT_TRUE(guard.tripped());
  EXPECT_EQ(guard.dimension(), ResourceDimension::kTgdFires);
  EXPECT_EQ(guard.ToStatus().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(guard.reason().find("tgd-fires"), std::string::npos);
}

TEST(ResourceGuardTest, TripsOnceAndKeepsFirstDimension) {
  ChaseLimits limits;
  limits.max_egd_steps = 1;
  limits.max_facts = 1;
  ResourceGuard guard(limits);
  EXPECT_FALSE(guard.ChargeEgdSteps(5));
  EXPECT_EQ(guard.dimension(), ResourceDimension::kEgdSteps);
  // A later over-budget charge on a different dimension must not overwrite
  // the original trip.
  EXPECT_FALSE(guard.ChargeFact());
  EXPECT_FALSE(guard.ChargeFact());
  EXPECT_EQ(guard.dimension(), ResourceDimension::kEgdSteps);
}

TEST(ResourceGuardTest, FragmentBudgetIsPerPass) {
  ChaseLimits limits;
  limits.max_normalize_fragments = 2;
  ResourceGuard guard(limits);
  EXPECT_TRUE(guard.ChargeFragment());
  EXPECT_TRUE(guard.ChargeFragment());
  guard.ResetFragmentCount();
  EXPECT_TRUE(guard.ChargeFragment());
  EXPECT_TRUE(guard.ChargeFragment());
  EXPECT_FALSE(guard.ChargeFragment());
  EXPECT_EQ(guard.dimension(), ResourceDimension::kNormalizeFragments);
}

TEST(ResourceGuardTest, ExpiredDeadlineTripsOnFirstPoll) {
  ChaseLimits limits;
  limits.deadline = std::chrono::milliseconds(0);
  ResourceGuard guard(limits);
  EXPECT_FALSE(guard.CheckDeadline());
  EXPECT_EQ(guard.dimension(), ResourceDimension::kWallClock);
  EXPECT_EQ(guard.ToStatus().code(), StatusCode::kDeadlineExceeded);
}

TEST(ResourceGuardTest, GenerousDeadlineDoesNotTrip) {
  ChaseLimits limits;
  limits.deadline = std::chrono::milliseconds(60000);
  ResourceGuard guard(limits);
  for (int i = 0; i < 10000; ++i) EXPECT_TRUE(guard.CheckDeadline());
  EXPECT_TRUE(guard.ok());
}

TEST(ResourceGuardTest, DimensionTokensAreStable) {
  EXPECT_EQ(ResourceDimensionToString(ResourceDimension::kTgdFires),
            "tgd-fires");
  EXPECT_EQ(ResourceDimensionToString(ResourceDimension::kEgdSteps),
            "egd-steps");
  EXPECT_EQ(ResourceDimensionToString(ResourceDimension::kFreshNulls),
            "fresh-nulls");
  EXPECT_EQ(ResourceDimensionToString(ResourceDimension::kFacts), "facts");
  EXPECT_EQ(ResourceDimensionToString(ResourceDimension::kNormalizeFragments),
            "normalize-fragments");
  EXPECT_EQ(ResourceDimensionToString(ResourceDimension::kWallClock),
            "wall-clock");
  EXPECT_EQ(ResourceDimensionToString(ResourceDimension::kInjectedFault),
            "injected-fault");
}

TEST(ChaseLimitsTest, DefaultIsUnlimited) {
  EXPECT_TRUE(ChaseLimits{}.Unlimited());
  ChaseLimits limits;
  limits.max_facts = 10;
  EXPECT_FALSE(limits.Unlimited());
  ChaseLimits timed;
  timed.deadline = std::chrono::milliseconds(5);
  EXPECT_FALSE(timed.Unlimited());
}

// ---------------------------------------------------------------------------
// The c-chase under each budget dimension
// ---------------------------------------------------------------------------

CChaseOutcome CChaseWithLimits(ParsedProgram& program,
                               const ChaseLimits& limits) {
  CChaseOptions options;
  options.limits = limits;
  auto outcome =
      CChase(program.source, program.lifted, &program.universe, options);
  EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
  return std::move(outcome).value();
}

TEST(CChaseBudgetTest, UnlimitedSucceeds) {
  auto program = ParseOrDie(kPaperProgram);
  const CChaseOutcome outcome = CChaseWithLimits(*program, ChaseLimits{});
  EXPECT_EQ(outcome.kind, ChaseResultKind::kSuccess);
  EXPECT_EQ(outcome.abort_dimension, ResourceDimension::kNone);
}

TEST(CChaseBudgetTest, TgdFireBudgetAborts) {
  auto program = ParseOrDie(kPaperProgram);
  ChaseLimits limits;
  limits.max_tgd_fires = 1;
  const CChaseOutcome outcome = CChaseWithLimits(*program, limits);
  EXPECT_EQ(outcome.kind, ChaseResultKind::kAborted);
  EXPECT_EQ(outcome.abort_dimension, ResourceDimension::kTgdFires);
  // Partial stats are preserved: exactly the budgeted number of fires ran.
  EXPECT_EQ(outcome.stats.tgd_fires, 1u);
  EXPECT_FALSE(outcome.abort_reason.empty());
}

TEST(CChaseBudgetTest, EgdStepBudgetAborts) {
  auto program = ParseOrDie(kPaperProgram);
  // The unbudgeted run performs egd merges (sigma1's fresh salary nulls get
  // equated with sigma2's concrete salaries); a zero budget must abort.
  const CChaseOutcome full = CChaseWithLimits(*program, ChaseLimits{});
  ASSERT_GT(full.stats.egd_steps, 0u);

  auto rerun = ParseOrDie(kPaperProgram);
  ChaseLimits limits;
  limits.max_egd_steps = 0;
  const CChaseOutcome outcome = CChaseWithLimits(*rerun, limits);
  EXPECT_EQ(outcome.kind, ChaseResultKind::kAborted);
  EXPECT_EQ(outcome.abort_dimension, ResourceDimension::kEgdSteps);
}

TEST(CChaseBudgetTest, FreshNullBudgetAborts) {
  auto program = ParseOrDie(kPaperProgram);
  ChaseLimits limits;
  limits.max_fresh_nulls = 0;
  const CChaseOutcome outcome = CChaseWithLimits(*program, limits);
  EXPECT_EQ(outcome.kind, ChaseResultKind::kAborted);
  EXPECT_EQ(outcome.abort_dimension, ResourceDimension::kFreshNulls);
  EXPECT_EQ(outcome.stats.fresh_nulls, 0u);
}

TEST(CChaseBudgetTest, FactBudgetAborts) {
  auto program = ParseOrDie(kPaperProgram);
  ChaseLimits limits;
  limits.max_facts = 1;
  const CChaseOutcome outcome = CChaseWithLimits(*program, limits);
  EXPECT_EQ(outcome.kind, ChaseResultKind::kAborted);
  EXPECT_EQ(outcome.abort_dimension, ResourceDimension::kFacts);
}

TEST(CChaseBudgetTest, FragmentBudgetAborts) {
  auto program = ParseOrDie(kPaperProgram);
  ChaseLimits limits;
  limits.max_normalize_fragments = 1;
  const CChaseOutcome outcome = CChaseWithLimits(*program, limits);
  EXPECT_EQ(outcome.kind, ChaseResultKind::kAborted);
  EXPECT_EQ(outcome.abort_dimension, ResourceDimension::kNormalizeFragments);
}

TEST(CChaseBudgetTest, ExpiredDeadlineAborts) {
  auto program = ParseOrDie(kPaperProgram);
  ChaseLimits limits;
  limits.deadline = std::chrono::milliseconds(0);
  const CChaseOutcome outcome = CChaseWithLimits(*program, limits);
  EXPECT_EQ(outcome.kind, ChaseResultKind::kAborted);
  EXPECT_EQ(outcome.abort_dimension, ResourceDimension::kWallClock);
}

TEST(CChaseBudgetTest, GenerousBudgetMatchesUnlimited) {
  auto unlimited = ParseOrDie(kPaperProgram);
  const CChaseOutcome full = CChaseWithLimits(*unlimited, ChaseLimits{});
  ASSERT_EQ(full.kind, ChaseResultKind::kSuccess);

  auto budgeted = ParseOrDie(kPaperProgram);
  ChaseLimits limits;
  limits.max_tgd_fires = 100000;
  limits.max_egd_steps = 100000;
  limits.max_fresh_nulls = 100000;
  limits.max_facts = 100000;
  limits.max_normalize_fragments = 100000;
  const CChaseOutcome governed = CChaseWithLimits(*budgeted, limits);
  ASSERT_EQ(governed.kind, ChaseResultKind::kSuccess);
  EXPECT_EQ(governed.stats.tgd_fires, full.stats.tgd_fires);
  EXPECT_EQ(governed.stats.egd_steps, full.stats.egd_steps);
  EXPECT_EQ(governed.stats.fresh_nulls, full.stats.fresh_nulls);
  EXPECT_EQ(governed.target.size(), full.target.size());
}

// ---------------------------------------------------------------------------
// The relational per-snapshot chase
// ---------------------------------------------------------------------------

TEST(SnapshotChaseBudgetTest, EachDimensionAborts) {
  struct Case {
    ChaseLimits limits;
    ResourceDimension want;
  };
  std::vector<Case> cases;
  {
    Case c;
    c.limits.max_tgd_fires = 1;
    c.want = ResourceDimension::kTgdFires;
    cases.push_back(c);
  }
  {
    Case c;
    c.limits.max_fresh_nulls = 0;
    c.want = ResourceDimension::kFreshNulls;
    cases.push_back(c);
  }
  {
    Case c;
    c.limits.max_facts = 1;
    c.want = ResourceDimension::kFacts;
    cases.push_back(c);
  }
  for (const Case& c : cases) {
    auto program = ParseOrDie(kPaperProgram);
    auto snapshot = SnapshotAt(program->source, 2015, &program->universe);
    ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
    auto outcome = ChaseSnapshot(*snapshot, program->mapping,
                                 &program->universe, c.limits);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    EXPECT_EQ(outcome->kind, ChaseResultKind::kAborted);
    EXPECT_EQ(outcome->abort_dimension, c.want)
        << "dimension " << ResourceDimensionToString(c.want);
  }
}

TEST(SnapshotChaseBudgetTest, UnlimitedStillSucceeds) {
  auto program = ParseOrDie(kPaperProgram);
  auto snapshot = SnapshotAt(program->source, 2015, &program->universe);
  ASSERT_TRUE(snapshot.ok());
  auto outcome =
      ChaseSnapshot(*snapshot, program->mapping, &program->universe);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->kind, ChaseResultKind::kSuccess);
}

// ---------------------------------------------------------------------------
// The abstract chase
// ---------------------------------------------------------------------------

TEST(AbstractChaseBudgetTest, BudgetAbortsWithPieceSpan) {
  auto program = ParseOrDie(kPaperProgram);
  auto ia = AbstractInstance::FromConcrete(program->source);
  ASSERT_TRUE(ia.ok()) << ia.status().ToString();
  ChaseLimits limits;
  limits.max_tgd_fires = 1;
  auto outcome =
      AbstractChase(*ia, program->mapping, &program->universe, limits);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->kind, ChaseResultKind::kAborted);
  EXPECT_EQ(outcome->abort_dimension, ResourceDimension::kTgdFires);
  EXPECT_TRUE(outcome->failure_span.has_value());
}

// ---------------------------------------------------------------------------
// Naive evaluation and certain answers
// ---------------------------------------------------------------------------

TEST(NaiveEvalBudgetTest, FragmentBudgetReturnsResourceExhausted) {
  auto program = ParseOrDie(kPaperProgram);
  const CChaseOutcome chase = CChaseWithLimits(*program, ChaseLimits{});
  ASSERT_EQ(chase.kind, ChaseResultKind::kSuccess);
  auto query = program->FindQuery("salaries");
  ASSERT_TRUE(query.ok());
  auto lifted = LiftUnionQuery(**query, program->schema);
  ASSERT_TRUE(lifted.ok()) << lifted.status().ToString();

  ChaseLimits limits;
  limits.max_normalize_fragments = 1;
  auto answers = NaiveEvaluateConcrete(*lifted, chase.target, limits);
  ASSERT_FALSE(answers.ok());
  EXPECT_EQ(answers.status().code(), StatusCode::kResourceExhausted);
}

TEST(CertainAnswersBudgetTest, AbortedChaseYieldsNoAnswers) {
  auto program = ParseOrDie(kPaperProgram);
  auto query = program->FindQuery("salaries");
  ASSERT_TRUE(query.ok());
  auto lifted = LiftUnionQuery(**query, program->schema);
  ASSERT_TRUE(lifted.ok());

  ChaseLimits limits;
  limits.max_tgd_fires = 1;
  auto result = CertainAnswers(*lifted, program->source, program->lifted,
                               &program->universe, limits);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // An aborted chase must never be read as "no certain answers exist" — the
  // kind flags the answers as absent, not empty-and-certain.
  EXPECT_EQ(result->chase_kind, ChaseResultKind::kAborted);
  EXPECT_TRUE(result->answers.empty());
}

// ---------------------------------------------------------------------------
// Abort safety: a partial target is never a claimed solution
// ---------------------------------------------------------------------------

TEST(AbortSafetyTest, AbortedTargetIsSmallerThanSolution) {
  auto unlimited = ParseOrDie(kPaperProgram);
  const CChaseOutcome full = CChaseWithLimits(*unlimited, ChaseLimits{});
  ASSERT_EQ(full.kind, ChaseResultKind::kSuccess);

  auto budgeted = ParseOrDie(kPaperProgram);
  ChaseLimits limits;
  limits.max_tgd_fires = 1;
  const CChaseOutcome partial = CChaseWithLimits(*budgeted, limits);
  ASSERT_EQ(partial.kind, ChaseResultKind::kAborted);
  // The partial target is for diagnosis only; it cannot have caught up with
  // the real solution.
  EXPECT_LT(partial.target.size(), full.target.size());
}

// ---------------------------------------------------------------------------
// Ledger & resume: the guard's clock is steady and its budget transfers
// ---------------------------------------------------------------------------

TEST(ResourceLedgerTest, ConsumedIsMonotonic) {
  ChaseLimits limits;
  limits.max_tgd_fires = 1000;  // any finite limit enables count bookkeeping
  ResourceGuard guard(limits);
  // Deadlines and elapsed time ride std::chrono::steady_clock, which never
  // goes backwards — a wall-clock adjustment mid-run must not inflate or
  // refund budget. Consumed() asserts the invariant internally; here we pin
  // the observable consequence across repeated samples.
  std::chrono::milliseconds last{-1};
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(guard.ChargeTgdFire());
    const ResourceLedger ledger = guard.Consumed();
    EXPECT_GE(ledger.elapsed.count(), 0);
    EXPECT_GE(ledger.elapsed, last);
    EXPECT_EQ(ledger.tgd_fires, static_cast<std::size_t>(i + 1));
    last = ledger.elapsed;
  }
}

TEST(ResourceLedgerTest, ResumedGuardChargesRemainingCounts) {
  ChaseLimits limits;
  limits.max_tgd_fires = 10;

  ResourceLedger consumed;
  consumed.tgd_fires = 7;
  ResourceGuard guard(limits, consumed);
  // Only 3 of the 10 fires remain.
  EXPECT_TRUE(guard.ChargeTgdFire());
  EXPECT_TRUE(guard.ChargeTgdFire());
  EXPECT_TRUE(guard.ChargeTgdFire());
  EXPECT_FALSE(guard.ChargeTgdFire());
  EXPECT_TRUE(guard.tripped());
  EXPECT_EQ(guard.dimension(), ResourceDimension::kTgdFires);
}

TEST(ResourceLedgerTest, ResumedGuardShrinksDeadline) {
  ChaseLimits limits;
  limits.deadline = std::chrono::milliseconds(10000);

  ResourceLedger consumed;
  consumed.elapsed = std::chrono::milliseconds(9999);
  ResourceGuard shrunk(limits, consumed);
  // 1ms left: CheckDeadline may pass briefly, but the ledger carries the
  // prior spend forward instead of restarting the clock.
  EXPECT_GE(shrunk.Consumed().elapsed, consumed.elapsed);

  consumed.elapsed = std::chrono::milliseconds(10001);
  ResourceGuard exhausted(limits, consumed);
  // The budget was already gone before the resume: tripped on construction.
  EXPECT_TRUE(exhausted.tripped());
  EXPECT_EQ(exhausted.dimension(), ResourceDimension::kWallClock);
  EXPECT_FALSE(exhausted.CheckDeadline());
}

TEST(ResourceLedgerTest, ConsumedCarriesPriorElapsedForward) {
  ResourceLedger consumed;
  consumed.elapsed = std::chrono::milliseconds(5000);
  ResourceGuard guard(ChaseLimits{}, consumed);
  // Even an unlimited resumed guard reports cumulative elapsed time, so a
  // chain of checkpoints never under-reports the run's true cost.
  EXPECT_GE(guard.Consumed().elapsed, std::chrono::milliseconds(5000));
}

}  // namespace
}  // namespace tdx
