#include "src/core/solution_core.h"

#include <gtest/gtest.h>

#include "src/core/cchase.h"
#include "src/relational/universal.h"
#include "src/temporal/abstract_hom.h"
#include "tests/test_util.h"

namespace tdx {
namespace {

using ::tdx::testing::ParseOrDie;

class SolutionCoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    emp_ = *schema_.AddRelation("Emp", {"name", "company", "salary"},
                                SchemaRole::kTarget);
  }

  Universe u_;
  Schema schema_;
  RelationId emp_ = 0;
};

TEST_F(SolutionCoreTest, NullFreeInstanceIsItsOwnCore) {
  Instance j(&schema_);
  j.Insert(emp_, {u_.Constant("Ada"), u_.Constant("IBM"), u_.Constant("18k")});
  const Instance core = ComputeCore(j);
  EXPECT_EQ(core, j);
  EXPECT_TRUE(IsCore(j));
}

TEST_F(SolutionCoreTest, RedundantNullFactFoldsAway) {
  // Emp(Ada, IBM, N) is subsumed by Emp(Ada, IBM, 18k).
  Instance j(&schema_);
  j.Insert(emp_, {u_.Constant("Ada"), u_.Constant("IBM"), u_.Constant("18k")});
  j.Insert(emp_, {u_.Constant("Ada"), u_.Constant("IBM"), u_.FreshNull()});
  CoreStats stats;
  const Instance core = ComputeCore(j, &stats);
  EXPECT_EQ(core.size(), 1u);
  EXPECT_TRUE(core.Contains(Fact(
      emp_, {u_.Constant("Ada"), u_.Constant("IBM"), u_.Constant("18k")})));
  EXPECT_EQ(stats.facts_removed, 1u);
  EXPECT_FALSE(IsCore(j));
  EXPECT_TRUE(IsCore(core));
}

TEST_F(SolutionCoreTest, NonRedundantNullSurvives) {
  Instance j(&schema_);
  j.Insert(emp_, {u_.Constant("Ada"), u_.Constant("IBM"), u_.Constant("18k")});
  j.Insert(emp_, {u_.Constant("Bob"), u_.Constant("IBM"), u_.FreshNull()});
  const Instance core = ComputeCore(j);
  EXPECT_EQ(core.size(), 2u);
}

TEST_F(SolutionCoreTest, ChainOfRedundantNullsFullyCollapses) {
  // Several null variants of the same complete fact all fold away.
  Instance j(&schema_);
  j.Insert(emp_, {u_.Constant("Ada"), u_.Constant("IBM"), u_.Constant("18k")});
  for (int i = 0; i < 4; ++i) {
    j.Insert(emp_, {u_.Constant("Ada"), u_.Constant("IBM"), u_.FreshNull()});
  }
  const Instance core = ComputeCore(j);
  EXPECT_EQ(core.size(), 1u);
}

TEST_F(SolutionCoreTest, CoreIsHomEquivalentToInput) {
  Instance j(&schema_);
  j.Insert(emp_, {u_.Constant("Ada"), u_.Constant("IBM"), u_.Constant("18k")});
  j.Insert(emp_, {u_.Constant("Ada"), u_.Constant("IBM"), u_.FreshNull()});
  j.Insert(emp_, {u_.Constant("Bob"), u_.Constant("IBM"), u_.FreshNull()});
  const Instance core = ComputeCore(j);
  EXPECT_TRUE(AreHomomorphicallyEquivalent(core, j));
}

TEST_F(SolutionCoreTest, LinkedNullsFoldTogetherOrNotAtAll) {
  // P(a, N) & P(N, a): N is "linked" — folding requires mapping both facts
  // consistently. With the constant pair present, both fold.
  Schema schema;
  const RelationId p = *schema.AddRelation("P", {"x", "y"},
                                           SchemaRole::kTarget);
  Universe u;
  Instance j(&schema);
  const Value n = u.FreshNull();
  j.Insert(p, {u.Constant("a"), n});
  j.Insert(p, {n, u.Constant("a")});
  j.Insert(p, {u.Constant("a"), u.Constant("b")});
  j.Insert(p, {u.Constant("b"), u.Constant("a")});
  const Instance core = ComputeCore(j);
  EXPECT_EQ(core.size(), 2u);

  // Without a consistent constant image, the null facts survive.
  Instance j2(&schema);
  const Value m = u.FreshNull();
  j2.Insert(p, {u.Constant("a"), m});
  j2.Insert(p, {m, u.Constant("a")});
  j2.Insert(p, {u.Constant("a"), u.Constant("b")});
  j2.Insert(p, {u.Constant("c"), u.Constant("a")});
  const Instance core2 = ComputeCore(j2);
  EXPECT_EQ(core2.size(), 4u);
}

TEST_F(SolutionCoreTest, PaperChaseResultIsAlreadyACore) {
  // In the Figure 9 result, each annotated null is the only witness of its
  // time slice, so nothing folds.
  auto program = ParseOrDie(testing::kPaperProgram);
  auto chase = CChase(program->source, program->lifted, &program->universe);
  ASSERT_TRUE(chase.ok());
  CoreStats stats;
  const ConcreteInstance core = ComputeConcreteCore(chase->target, &stats);
  EXPECT_EQ(core.size(), chase->target.size());
  EXPECT_EQ(stats.facts_removed, 0u);
}

TEST_F(SolutionCoreTest, ConcreteCoreFoldsOnlyWithinSameInterval) {
  auto program = ParseOrDie(R"(
    source A(x);
    target T(x, y);
    tgd A(x) -> T(x, x);
  )");
  Universe& u = program->universe;
  const RelationId t_plus = *program->schema.Find("T+");
  ConcreteInstance jc(&program->schema);
  // Redundant null row at [0, 5) folds into the constant row at [0, 5);
  // the equal row at [5, 9) must NOT absorb it (different interval).
  const Value n1 = u.FreshAnnotatedNull(Interval(0, 5));
  ASSERT_TRUE(jc.Add(t_plus, {u.Constant("a"), n1}, Interval(0, 5)).ok());
  ASSERT_TRUE(jc.Add(t_plus, {u.Constant("a"), u.Constant("b")},
                     Interval(0, 5))
                  .ok());
  const Value n2 = u.FreshAnnotatedNull(Interval(5, 9));
  ASSERT_TRUE(jc.Add(t_plus, {u.Constant("a"), n2}, Interval(5, 9)).ok());

  CoreStats stats;
  const ConcreteInstance core = ComputeConcreteCore(jc, &stats);
  EXPECT_EQ(core.size(), 2u);
  EXPECT_EQ(stats.facts_removed, 1u);
  EXPECT_TRUE(core.Validate().ok());

  // Semantics preserved: [[core]] ~ [[jc]].
  auto a = AbstractInstance::FromConcrete(core);
  auto b = AbstractInstance::FromConcrete(jc);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(AreAbstractEquivalent(*a, *b));
}

TEST_F(SolutionCoreTest, EmptyInstanceIsACore) {
  Instance empty(&schema_);
  EXPECT_TRUE(IsCore(empty));
  EXPECT_TRUE(ComputeCore(empty).empty());
}

}  // namespace
}  // namespace tdx
