// Semi-naive chase equivalence: the delta-driven engine must produce
// EXACTLY the same run as the naive oracle — same trigger firings, same
// fresh-null sequence, same egd merges, same target instance. The argument
// (chase.h): a trigger over wholly-old facts was already enumerated the
// round its newest fact arrived, and witnesses never disappear during
// tgd-only rounds, so old triggers never re-fire; per-round firing order is
// the canonical key order either way.

#include <gtest/gtest.h>

#include <memory>

#include "src/core/cchase.h"
#include "src/gen/workload.h"
#include "src/relational/chase.h"
#include "src/temporal/abstract_instance.h"
#include "src/temporal/snapshot.h"

namespace tdx {
namespace {

ChaseOptions Mode(bool semi_naive) {
  ChaseOptions options;
  options.semi_naive = semi_naive;
  return options;
}

/// Chases every probe-point snapshot of `w`'s source in the given mode.
/// Workloads generated from one seed are identical, so runs on two copies
/// share every interned id and the outcomes must be bit-for-bit comparable.
struct ModeRun {
  std::vector<ChaseOutcome> outcomes;
};

ModeRun ChaseAllSnapshots(Workload* w, bool semi_naive) {
  ModeRun run;
  std::vector<TimePoint> points = w->source.Endpoints();
  points.push_back(w->source.StabilizationPoint() + 2);
  points.push_back(0);
  for (TimePoint l : points) {
    auto snapshot = SnapshotAt(w->source, l, &w->universe);
    EXPECT_TRUE(snapshot.ok());
    auto outcome =
        ChaseSnapshot(*snapshot, w->mapping, &w->universe, Mode(semi_naive));
    EXPECT_TRUE(outcome.ok()) << outcome.status();
    run.outcomes.push_back(std::move(*outcome));
  }
  return run;
}

void ExpectIdenticalRuns(const ModeRun& semi, const ModeRun& naive) {
  ASSERT_EQ(semi.outcomes.size(), naive.outcomes.size());
  for (std::size_t i = 0; i < semi.outcomes.size(); ++i) {
    const ChaseOutcome& a = semi.outcomes[i];
    const ChaseOutcome& b = naive.outcomes[i];
    EXPECT_EQ(a.kind, b.kind) << "snapshot " << i;
    EXPECT_EQ(a.stats.tgd_fires, b.stats.tgd_fires) << "snapshot " << i;
    EXPECT_EQ(a.stats.fresh_nulls, b.stats.fresh_nulls) << "snapshot " << i;
    EXPECT_EQ(a.stats.egd_steps, b.stats.egd_steps) << "snapshot " << i;
    EXPECT_TRUE(a.target == b.target) << "snapshot " << i;
  }
}

class SemiNaiveSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SemiNaiveSweep, MatchesNaiveOnRandomMappings) {
  // Two identical workloads (same seed): identical universes, so both modes
  // mint identical null ids and the targets compare EQUAL, not just
  // isomorphic.
  RandomMappingConfig cfg;
  cfg.seed = GetParam();
  auto w_semi = MakeRandomMappingWorkload(cfg);
  auto w_naive = MakeRandomMappingWorkload(cfg);
  ExpectIdenticalRuns(ChaseAllSnapshots(w_semi.get(), true),
                      ChaseAllSnapshots(w_naive.get(), false));
}

TEST_P(SemiNaiveSweep, MatchesNaiveOnFlightCascades) {
  // The reachability ttgd chases to a transitive-closure fixpoint: many
  // rounds, so the delta frontier actually prunes (the random-mapping sweep
  // has no target tgds).
  FlightConfig cfg;
  cfg.num_airports = 8;
  cfg.num_flights = 16;
  cfg.seed = GetParam();
  auto w_semi = MakeFlightWorkload(cfg);
  auto w_naive = MakeFlightWorkload(cfg);
  ExpectIdenticalRuns(ChaseAllSnapshots(w_semi.get(), true),
                      ChaseAllSnapshots(w_naive.get(), false));
}

TEST_P(SemiNaiveSweep, MatchesNaiveInsideCChase) {
  FlightConfig cfg;
  cfg.num_airports = 6;
  cfg.num_flights = 12;
  cfg.seed = GetParam();
  auto w_semi = MakeFlightWorkload(cfg);
  auto w_naive = MakeFlightWorkload(cfg);
  CChaseOptions semi, naive;
  naive.semi_naive = false;
  auto a = CChase(w_semi->source, w_semi->lifted, &w_semi->universe, semi);
  auto b = CChase(w_naive->source, w_naive->lifted, &w_naive->universe, naive);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_EQ(a->kind, b->kind);
  EXPECT_EQ(a->stats.tgd_fires, b->stats.tgd_fires);
  EXPECT_EQ(a->stats.fresh_nulls, b->stats.fresh_nulls);
  EXPECT_EQ(a->stats.egd_steps, b->stats.egd_steps);
  EXPECT_TRUE(a->target.facts() == b->target.facts());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SemiNaiveSweep,
                         ::testing::Range<std::uint64_t>(1, 21));

// ---------------------------------------------------------------------------
// Delta-frontier unit tests on a hand-built multi-round cascade.
// ---------------------------------------------------------------------------

class CascadeFixture : public ::testing::Test {
 protected:
  // Source A(x, y); the target tgds halve paths level by level:
  //   Li(x, y) -> exists m: Li+1(x, m) & Li+1(m, y)
  // Weakly acyclic (levels strictly increase), runs one target-tgd round
  // per level, and every head is MULTI-ATOM with an existential — the case
  // where the old engine had to rebuild its witness finder after every
  // insert (a head can become witnessed by MIXED combinations of old and
  // new facts); the incremental finder must reproduce that behavior.
  void SetUp() override {
    a_ = *schema_.AddRelation("A", {"x", "y"}, SchemaRole::kSource);
    for (int i = 0; i < 4; ++i) {
      levels_[i] = *schema_.AddRelation("L" + std::to_string(i), {"x", "y"},
                                        SchemaRole::kTarget);
    }
    {  // A(x, y) -> L0(x, y)
      Tgd st;
      st.label = "copy";
      st.body.atoms.push_back({a_, {Term::Var(0), Term::Var(1)}});
      st.body.num_vars = 2;
      st.head.atoms.push_back({levels_[0], {Term::Var(0), Term::Var(1)}});
      ASSERT_TRUE(st.Finalize().ok());
      mapping_.st_tgds.push_back(st);
    }
    for (int i = 0; i < 3; ++i) {
      // Li(x, y) -> exists m: Li+1(x, m) & Li+1(m, y)
      Tgd t;
      t.label = "split" + std::to_string(i);
      t.body.atoms.push_back({levels_[i], {Term::Var(0), Term::Var(1)}});
      t.body.num_vars = 3;
      t.head.atoms.push_back({levels_[i + 1], {Term::Var(0), Term::Var(2)}});
      t.head.atoms.push_back({levels_[i + 1], {Term::Var(2), Term::Var(1)}});
      ASSERT_TRUE(t.Finalize().ok());
      mapping_.target_tgds.push_back(t);
    }
  }

  Universe u_;
  Schema schema_;
  Mapping mapping_;
  RelationId a_ = 0;
  RelationId levels_[4] = {0, 0, 0, 0};
};

TEST_F(CascadeFixture, MultiAtomHeadCascadeMatchesNaive) {
  // Two universes so null ids line up exactly between the modes.
  Universe u_semi, u_naive;
  Instance source(&schema_);
  for (int i = 0; i < 4; ++i) {
    source.Insert(a_, {u_semi.Constant("n" + std::to_string(i)),
                       u_semi.Constant("n" + std::to_string(i + 1))});
  }
  // Mirror the constants in the naive universe (same interning order).
  for (int i = 0; i < 4; ++i) {
    u_naive.Constant("n" + std::to_string(i));
    u_naive.Constant("n" + std::to_string(i + 1));
  }
  auto semi = ChaseSnapshot(source, mapping_, &u_semi, Mode(true));
  auto naive = ChaseSnapshot(source, mapping_, &u_naive, Mode(false));
  ASSERT_TRUE(semi.ok()) << semi.status();
  ASSERT_TRUE(naive.ok()) << naive.status();
  ASSERT_EQ(semi->kind, ChaseResultKind::kSuccess);
  EXPECT_EQ(semi->stats.tgd_fires, naive->stats.tgd_fires);
  EXPECT_EQ(semi->stats.fresh_nulls, naive->stats.fresh_nulls);
  EXPECT_TRUE(semi->target == naive->target);
  // The cascade actually ran all the way down: every level is populated.
  EXPECT_GT(semi->stats.fresh_nulls, 0u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(semi->target.facts(levels_[i]).empty()) << "level " << i;
  }
}

TEST_F(CascadeFixture, SemiNaiveEnumeratesFewerTriggers) {
  // The perf contract behind the whole engine: on a multi-round cascade the
  // delta frontier must strictly prune re-enumeration (naive re-joins the
  // entire target every round).
  Universe u_semi, u_naive;
  Instance source(&schema_);
  for (int i = 0; i < 8; ++i) {
    source.Insert(a_, {u_semi.Constant("n" + std::to_string(i)),
                       u_semi.Constant("n" + std::to_string(i + 1))});
  }
  for (int i = 0; i < 8; ++i) {
    u_naive.Constant("n" + std::to_string(i));
    u_naive.Constant("n" + std::to_string(i + 1));
  }
  auto semi = ChaseSnapshot(source, mapping_, &u_semi, Mode(true));
  auto naive = ChaseSnapshot(source, mapping_, &u_naive, Mode(false));
  ASSERT_TRUE(semi.ok());
  ASSERT_TRUE(naive.ok());
  EXPECT_EQ(semi->stats.tgd_fires, naive->stats.tgd_fires);
  EXPECT_LT(semi->stats.tgd_triggers, naive->stats.tgd_triggers);
}

TEST_F(CascadeFixture, DeltaFrontierBookkeeping) {
  DeltaFrontier frontier;
  EXPECT_TRUE(frontier.full());
  EXPECT_EQ(frontier.mark(0), 0u);
  EXPECT_EQ(frontier.mark(7), 0u);  // unseen relation: whole range is delta
  frontier.AdvanceTo({3, 5});
  EXPECT_FALSE(frontier.full());
  EXPECT_EQ(frontier.mark(0), 3u);
  EXPECT_EQ(frontier.mark(1), 5u);
  EXPECT_EQ(frontier.mark(2), 0u);
  frontier.Reset();
  EXPECT_TRUE(frontier.full());
  EXPECT_EQ(frontier.mark(0), 0u);
}

TEST_F(CascadeFixture, ValuesRewrittenSurfacesEgdWork) {
  // Two tgds disagree on who fills the Hop endpoint; the egd merges a null
  // with a constant, and the rewrite work must show up in the new counter.
  Schema schema;
  const RelationId e = *schema.AddRelation("E", {"n", "c"}, SchemaRole::kSource);
  const RelationId s = *schema.AddRelation("S", {"n", "s"}, SchemaRole::kSource);
  const RelationId emp =
      *schema.AddRelation("Emp", {"n", "c", "s"}, SchemaRole::kTarget);
  Mapping mapping;
  {  // E(n, c) -> exists s: Emp(n, c, s)
    Tgd t;
    t.body.atoms.push_back({e, {Term::Var(0), Term::Var(1)}});
    t.body.num_vars = 3;
    t.head.atoms.push_back({emp, {Term::Var(0), Term::Var(1), Term::Var(2)}});
    t.head.num_vars = 3;
    t.existential.push_back(2);
    mapping.st_tgds.push_back(t);
  }
  {  // E(n, c) & S(n, s) -> Emp(n, c, s)
    Tgd t;
    t.body.atoms.push_back({e, {Term::Var(0), Term::Var(1)}});
    t.body.atoms.push_back({s, {Term::Var(0), Term::Var(2)}});
    t.body.num_vars = 3;
    t.head.atoms.push_back({emp, {Term::Var(0), Term::Var(1), Term::Var(2)}});
    t.head.num_vars = 3;
    mapping.st_tgds.push_back(t);
  }
  {  // Emp(n, c, s) & Emp(n, c, s2) -> s = s2
    Egd egd;
    egd.body.atoms.push_back({emp, {Term::Var(0), Term::Var(1), Term::Var(2)}});
    egd.body.atoms.push_back({emp, {Term::Var(0), Term::Var(1), Term::Var(3)}});
    egd.body.num_vars = 4;
    egd.x1 = 2;
    egd.x2 = 3;
    mapping.egds.push_back(egd);
  }
  Universe u;
  Instance source(&schema);
  source.Insert(e, {u.Constant("ada"), u.Constant("ibm")});
  source.Insert(s, {u.Constant("ada"), u.Constant("90k")});
  auto outcome = ChaseSnapshot(source, mapping, &u);
  ASSERT_TRUE(outcome.ok());
  ASSERT_EQ(outcome->kind, ChaseResultKind::kSuccess);
  EXPECT_GT(outcome->stats.egd_steps, 0u);
  EXPECT_GT(outcome->stats.values_rewritten, 0u);
}

}  // namespace
}  // namespace tdx
