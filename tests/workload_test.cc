#include "src/gen/workload.h"

#include <gtest/gtest.h>

#include "src/analysis/planner.h"
#include "src/core/cchase.h"
#include "src/parser/printer.h"

namespace tdx {
namespace {

TEST(EmploymentWorkloadTest, ProducesValidCompleteSource) {
  auto w = MakeEmploymentWorkload(
      EmploymentConfig{.num_people = 20, .num_companies = 4, .avg_jobs = 3,
                       .horizon = 60, .salary_known_fraction = 0.5,
                       .inject_conflict = false, .seed = 7});
  EXPECT_TRUE(w->source.Validate().ok());
  EXPECT_TRUE(w->source.IsComplete());
  EXPECT_GT(w->source.size(), 20u);
  EXPECT_TRUE(ValidateMapping(w->mapping, w->schema).ok());
  EXPECT_EQ(w->lifted.st_tgds.size(), 2u);
  EXPECT_EQ(w->lifted.egds.size(), 1u);
}

TEST(EmploymentWorkloadTest, DeterministicForFixedSeed) {
  const EmploymentConfig cfg{.num_people = 10, .num_companies = 3,
                             .avg_jobs = 2, .horizon = 40,
                             .salary_known_fraction = 0.5,
                             .inject_conflict = false, .seed = 11};
  auto w1 = MakeEmploymentWorkload(cfg);
  auto w2 = MakeEmploymentWorkload(cfg);
  EXPECT_EQ(w1->source.size(), w2->source.size());
}

TEST(EmploymentWorkloadTest, DifferentSeedsDiffer) {
  EmploymentConfig cfg{.num_people = 10, .num_companies = 3, .avg_jobs = 2,
                       .horizon = 40, .salary_known_fraction = 0.5,
                       .inject_conflict = false, .seed = 11};
  auto w1 = MakeEmploymentWorkload(cfg);
  cfg.seed = 12;
  auto w2 = MakeEmploymentWorkload(cfg);
  // Extremely likely to differ in size or content.
  EXPECT_NE(w1->source.facts().ToString(w1->universe),
            w2->source.facts().ToString(w2->universe));
}

TEST(EmploymentWorkloadTest, ConflictInjectionCanFailChase) {
  // With conflicts injected, at least one seed in a small range must
  // produce a failing chase (two salaries for one employment span).
  bool saw_failure = false;
  for (std::uint64_t seed = 1; seed <= 6 && !saw_failure; ++seed) {
    auto w = MakeEmploymentWorkload(
        EmploymentConfig{.num_people = 20, .num_companies = 3, .avg_jobs = 3,
                         .horizon = 50, .salary_known_fraction = 0.9,
                         .inject_conflict = true, .seed = seed});
    auto outcome = CChase(w->source, w->lifted, &w->universe);
    ASSERT_TRUE(outcome.ok());
    saw_failure = (outcome->kind == ChaseResultKind::kFailure);
  }
  EXPECT_TRUE(saw_failure);
}

TEST(WorstCaseWorkloadTest, AllIntervalsPairwiseOverlap) {
  auto w = MakeWorstCaseNormalizationWorkload(10);
  EXPECT_EQ(w->source.size(), 10u);
  std::vector<Interval> ivs;
  w->source.facts().ForEach(
      [&](FactView f) { ivs.push_back(f.interval()); });
  for (std::size_t i = 0; i < ivs.size(); ++i) {
    for (std::size_t j = i + 1; j < ivs.size(); ++j) {
      EXPECT_TRUE(ivs[i].Overlaps(ivs[j]));
    }
  }
}

TEST(RandomWorkloadTest, RespectsConfigBounds) {
  RandomConfig cfg;
  cfg.num_facts = 100;
  cfg.horizon = 30;
  cfg.max_interval_length = 5;
  cfg.unbounded_probability = 0.0;
  cfg.seed = 3;
  auto w = MakeRandomWorkload(cfg);
  EXPECT_LE(w->source.size(), 100u);  // duplicates may collapse
  EXPECT_GT(w->source.size(), 50u);
  w->source.facts().ForEach([&](FactView f) {
    EXPECT_LT(f.interval().start(), 30u);
    ASSERT_TRUE(f.interval().length().has_value());
    EXPECT_LE(*f.interval().length(), 5u);
  });
}

TEST(ChainWorkloadTest, ClosesTheFullChain) {
  ChainConfig cfg;
  cfg.hops = 8;
  auto w = MakeChainWorkload(cfg);
  EXPECT_EQ(w->source.size(), 8u);
  auto outcome = CChase(w->source, w->lifted, &w->universe);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  ASSERT_EQ(outcome->kind, ChaseResultKind::kSuccess);
  // 8 Edge copies + one Reach fact per ordered pair i < j on 9 airports.
  EXPECT_EQ(outcome->target.size(), 8u + (9u * 8u) / 2u);
}

TEST(ChainWorkloadTest, SemiNaivePrunesTheCascade) {
  ChainConfig cfg;
  cfg.hops = 12;
  auto semi_w = MakeChainWorkload(cfg);
  auto naive_w = MakeChainWorkload(cfg);
  CChaseOptions semi, naive;
  semi.semi_naive = true;
  naive.semi_naive = false;
  auto a = CChase(semi_w->source, semi_w->lifted, &semi_w->universe, semi);
  auto b = CChase(naive_w->source, naive_w->lifted, &naive_w->universe, naive);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->stats.tgd_fires, b->stats.tgd_fires);
  EXPECT_EQ(a->target.size(), b->target.size());
  // The linear cascade needs `hops` rounds: naive re-enumerates the whole
  // Reach relation every round, semi-naive only the delta.
  EXPECT_LT(a->stats.tgd_triggers, b->stats.tgd_triggers);
}

TEST(StratifiedWorkloadTest, PlannerProvesTheStatusEgdEffectFree) {
  StratifiedConfig cfg;
  cfg.hops = 6;
  auto w = MakeStratifiedWorkload(cfg);
  const ChaseSchedule schedule = PlanChase(w->mapping, w->schema);
  ASSERT_EQ(schedule.rules.size(), 5u);
  EXPECT_GE(schedule.stratum_count(), 2u);
  EXPECT_FALSE(schedule.egd_fixpoint_live());
  const ScheduleRule& egd = schedule.rules.back();
  EXPECT_TRUE(egd.live);
  EXPECT_TRUE(egd.effect_free);
}

TEST(StratifiedWorkloadTest, ScheduledChaseSkipsNoOpPassesBitIdentically) {
  StratifiedConfig cfg;
  cfg.hops = 10;
  auto w_flat = MakeStratifiedWorkload(cfg);
  auto w_sched = MakeStratifiedWorkload(cfg);
  CChaseOptions flat_options, sched_options;
  flat_options.scheduled = false;
  auto flat = CChase(w_flat->source, w_flat->lifted, &w_flat->universe,
                     flat_options);
  auto sched = CChase(w_sched->source, w_sched->lifted, &w_sched->universe,
                      sched_options);
  ASSERT_TRUE(flat.ok()) << flat.status();
  ASSERT_TRUE(sched.ok()) << sched.status();
  ASSERT_EQ(flat->kind, ChaseResultKind::kSuccess);
  ASSERT_EQ(sched->kind, ChaseResultKind::kSuccess);
  EXPECT_EQ(RenderConcreteInstance(flat->target, w_flat->universe),
            RenderConcreteInstance(sched->target, w_sched->universe));
  EXPECT_EQ(flat->stats.tgd_fires, sched->stats.tgd_fires);
  EXPECT_EQ(flat->stats.egd_steps, sched->stats.egd_steps);
  EXPECT_EQ(sched->stats.egd_steps, 0u);
  // The savings the ablation benchmark measures: the scheduled run skips
  // the provably no-op egd fixpoint (and its re-normalization) outright.
  EXPECT_GT(sched->stats.skipped_egd_passes, 0u);
  EXPECT_EQ(flat->stats.skipped_egd_passes, 0u);
}

TEST(RandomWorkloadTest, UnboundedProbabilityOneGivesAllUnbounded) {
  RandomConfig cfg;
  cfg.num_facts = 20;
  cfg.unbounded_probability = 1.0;
  cfg.seed = 5;
  auto w = MakeRandomWorkload(cfg);
  w->source.facts().ForEach(
      [&](FactView f) { EXPECT_TRUE(f.interval().unbounded()); });
}

}  // namespace
}  // namespace tdx
