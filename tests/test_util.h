// Shared helpers for the tdx test suite.

#ifndef TDX_TESTS_TEST_UTIL_H_
#define TDX_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/parser/parser.h"
#include "src/temporal/concrete_instance.h"

namespace tdx::testing {

/// The paper's running example: Example 1/6 mapping and the Figure 4 source
/// instance, plus the query of Section 5 style.
inline constexpr std::string_view kPaperProgram = R"(
  # Example 1 / Example 6 of the paper.
  source E(name, company);
  source S(name, salary);
  target Emp(name, company, salary);

  tgd sigma1: E(n, c) -> exists s: Emp(n, c, s);
  tgd sigma2: E(n, c) & S(n, s) -> Emp(n, c, s);
  egd e1: Emp(n, c, s) & Emp(n, c, s2) -> s = s2;

  # Figure 4.
  fact E("Ada", "IBM")    @ [2012, 2014);
  fact E("Ada", "Google") @ [2014, inf);
  fact E("Bob", "IBM")    @ [2013, 2018);
  fact S("Ada", "18k")    @ [2013, inf);
  fact S("Bob", "13k")    @ [2015, inf);

  query salaries(n, s): Emp(n, _, s);
)";

/// Parses or fails the test.
inline std::unique_ptr<ParsedProgram> ParseOrDie(std::string_view text) {
  auto result = ParseProgram(text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  if (!result.ok()) std::abort();
  return std::move(result).value();
}

/// True if `instance` contains a fact over the relation named `rel` whose
/// data arguments are the given constants (by spelling) and whose interval
/// is `iv`. Positions holding "_" match any value.
inline bool HasConcreteFact(const ConcreteInstance& instance,
                            const Universe& u, std::string_view rel,
                            const std::vector<std::string>& data,
                            const Interval& iv) {
  auto rel_id = instance.schema().Find(rel);
  if (!rel_id.ok()) return false;
  bool found = false;
  for (const FactView fact : instance.facts().facts(*rel_id)) {
    if (fact.interval() != iv) continue;
    if (fact.arity() != data.size() + 1) continue;
    bool match = true;
    for (std::size_t i = 0; i < data.size(); ++i) {
      if (data[i] == "_") continue;
      if (u.Render(fact.arg(i)) != data[i]) {
        match = false;
        break;
      }
    }
    if (match) found = true;
  }
  return found;
}

/// Counts facts of a relation.
inline std::size_t CountFacts(const ConcreteInstance& instance,
                              std::string_view rel) {
  auto rel_id = instance.schema().Find(rel);
  if (!rel_id.ok()) return 0;
  return instance.facts().facts(*rel_id).size();
}

}  // namespace tdx::testing

#endif  // TDX_TESTS_TEST_UTIL_H_
