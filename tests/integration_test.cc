// End-to-end pipeline tests: parse a program, run the c-chase, answer
// queries, and verify the abstract semantics — the full workflow a library
// user would follow.

#include <gtest/gtest.h>

#include "src/core/align.h"
#include "src/core/certain.h"
#include "src/core/naive_eval.h"
#include "src/parser/printer.h"
#include "tests/test_util.h"

namespace tdx {
namespace {

using ::tdx::testing::HasConcreteFact;
using ::tdx::testing::ParseOrDie;

TEST(IntegrationTest, PaperPipelineEndToEnd) {
  auto program = ParseOrDie(testing::kPaperProgram);

  // Exchange.
  auto chase = CChase(program->source, program->lifted, &program->universe);
  ASSERT_TRUE(chase.ok());
  ASSERT_EQ(chase->kind, ChaseResultKind::kSuccess);

  // Query.
  auto lifted =
      LiftUnionQuery(**program->FindQuery("salaries"), program->schema);
  ASSERT_TRUE(lifted.ok());
  auto answers = NaiveEvaluateConcrete(*lifted, chase->target);
  ASSERT_TRUE(answers.ok());
  EXPECT_FALSE(answers->empty());

  // Verify semantics.
  auto report = VerifyCorollary20(program->source, program->mapping,
                                  program->lifted, &program->universe);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->aligned());
}

// A multi-step scenario with hospital-style data: patients, wards,
// diagnoses; two tgds project and join, one egd enforces one ward per
// patient per time.
TEST(IntegrationTest, MedicalRecordsScenario) {
  auto program = ParseOrDie(R"(
    source Admit(patient, ward);
    source Diag(patient, code);
    target Record(patient, ward, code);
    tgd a1: Admit(p, w) -> exists c: Record(p, w, c);
    tgd a2: Admit(p, w) & Diag(p, c) -> Record(p, w, c);
    egd  w1: Record(p, w, c) & Record(p, w2, c2) -> w = w2;

    fact Admit("ann", "icu")     @ [0, 5);
    fact Admit("ann", "general") @ [5, 12);
    fact Diag("ann", "j18")      @ [2, 8);
    fact Admit("ben", "general") @ [3, 9);

    query wards(p, w): Record(p, w, _);
  )");
  auto chase = CChase(program->source, program->lifted, &program->universe);
  ASSERT_TRUE(chase.ok()) << chase.status();
  ASSERT_EQ(chase->kind, ChaseResultKind::kSuccess);
  Universe& u = program->universe;
  EXPECT_TRUE(HasConcreteFact(chase->target, u, "Record+",
                              {"ann", "icu", "j18"}, Interval(2, 5)));
  EXPECT_TRUE(HasConcreteFact(chase->target, u, "Record+",
                              {"ann", "general", "j18"}, Interval(5, 8)));

  auto lifted = LiftUnionQuery(**program->FindQuery("wards"), program->schema);
  ASSERT_TRUE(lifted.ok());
  auto answers = NaiveEvaluateConcrete(*lifted, chase->target);
  ASSERT_TRUE(answers.ok());
  const Tuple expected{u.Constant("ann"), u.Constant("icu"),
                       Value::OfInterval(Interval(2, 5))};
  EXPECT_NE(std::find(answers->begin(), answers->end(), expected),
            answers->end());

  auto report = VerifyCorollary20(program->source, program->mapping,
                                  program->lifted, &program->universe);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->aligned());
}

// Conflicting ward assignments at overlapping times: no solution.
TEST(IntegrationTest, MedicalConflictHasNoSolution) {
  auto program = ParseOrDie(R"(
    source Admit(patient, ward);
    target Record(patient, ward);
    tgd Admit(p, w) -> Record(p, w);
    egd Record(p, w) & Record(p, w2) -> w = w2;
    fact Admit("ann", "icu")     @ [0, 6);
    fact Admit("ann", "general") @ [4, 9);
  )");
  auto chase = CChase(program->source, program->lifted, &program->universe);
  ASSERT_TRUE(chase.ok());
  EXPECT_EQ(chase->kind, ChaseResultKind::kFailure);
  // The abstract view agrees: snapshots 4 and 5 are inconsistent.
  auto report = VerifyCorollary20(program->source, program->mapping,
                                  program->lifted, &program->universe);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->outcome_agreed);
}

// An audit-trail scenario exercising unions of conjunctive queries.
TEST(IntegrationTest, AuditTrailUnionQueries) {
  auto program = ParseOrDie(R"(
    source Login(user, host);
    source Sudo(user, host);
    target Access(user, host, kind);
    tgd Login(u, h) -> Access(u, h, "login");
    tgd Sudo(u, h) -> Access(u, h, "sudo");

    fact Login("root", "db1") @ [10, 20);
    fact Sudo("root", "db1")  @ [12, 15);
    fact Login("eve", "web1") @ [14, inf);

    query touched(u): Access(u, "db1", "login");
    query touched(u): Access(u, "db1", "sudo");
  )");
  auto chase = CChase(program->source, program->lifted, &program->universe);
  ASSERT_TRUE(chase.ok());
  ASSERT_EQ(chase->kind, ChaseResultKind::kSuccess);
  auto lifted =
      LiftUnionQuery(**program->FindQuery("touched"), program->schema);
  ASSERT_TRUE(lifted.ok());
  auto answers = NaiveEvaluateConcrete(*lifted, chase->target);
  ASSERT_TRUE(answers.ok());
  Universe& u = program->universe;
  // root reached db1 via login on the whole [10, 20) (possibly fragmented)
  // and via sudo on [12, 15); eve never touched db1.
  bool saw_root = false, saw_eve = false;
  for (const Tuple& t : *answers) {
    if (t[0] == u.Constant("root")) saw_root = true;
    if (t[0] == u.Constant("eve")) saw_eve = true;
  }
  EXPECT_TRUE(saw_root);
  EXPECT_FALSE(saw_eve);
}

// Constants inside dependency atoms restrict triggers.
TEST(IntegrationTest, ConstantsInDependencies) {
  auto program = ParseOrDie(R"(
    source E(name, company);
    target Alumni(name);
    tgd E(n, "IBM") -> Alumni(n);
    fact E("Ada", "IBM") @ [0, 5);
    fact E("Bob", "Google") @ [0, 5);
  )");
  auto chase = CChase(program->source, program->lifted, &program->universe);
  ASSERT_TRUE(chase.ok());
  ASSERT_EQ(chase->kind, ChaseResultKind::kSuccess);
  EXPECT_TRUE(HasConcreteFact(chase->target, program->universe, "Alumni+",
                              {"Ada"}, Interval(0, 5)));
  EXPECT_EQ(chase->target.size(), 1u);
}

// Render the whole pipeline's artifacts without crashing (smoke test for
// the printers used by the example binaries).
TEST(IntegrationTest, PrintingSmokeTest) {
  auto program = ParseOrDie(testing::kPaperProgram);
  auto chase = CChase(program->source, program->lifted, &program->universe);
  ASSERT_TRUE(chase.ok());
  auto ia = AbstractInstance::FromConcrete(program->source);
  ASSERT_TRUE(ia.ok());
  EXPECT_FALSE(
      RenderConcreteInstance(program->source, program->universe).empty());
  EXPECT_FALSE(
      RenderConcreteInstance(chase->target, program->universe).empty());
  EXPECT_FALSE(RenderAbstractInstance(*ia, program->universe).empty());
  EXPECT_FALSE(program->mapping
                   .ToString(program->schema, program->universe)
                   .empty());
}

}  // namespace
}  // namespace tdx
