#include "src/core/exchange.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace tdx {
namespace {

TEST(ExchangeTest, FullWorkflowOnPaperExample) {
  auto exchange = Exchange::FromProgram(testing::kPaperProgram);
  ASSERT_TRUE(exchange.ok()) << exchange.status();
  Exchange& ex = **exchange;
  ASSERT_TRUE(ex.HasSolution());
  EXPECT_EQ(ex.Solution().size(), 5u);  // Figure 9

  auto answers = ex.CertainAnswers("salaries");
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->size(), 3u);

  auto at2013 = ex.AnswersAt("salaries", 2013);
  ASSERT_TRUE(at2013.ok());
  ASSERT_EQ(at2013->size(), 1u);
  EXPECT_EQ(ex.universe().Render((*at2013)[0][0]), "Ada");

  auto report = ex.Verify();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->aligned());
}

TEST(ExchangeTest, ParseErrorsPropagate) {
  auto exchange = Exchange::FromProgram("bogus;");
  EXPECT_FALSE(exchange.ok());
  EXPECT_EQ(exchange.status().code(), StatusCode::kParseError);
}

TEST(ExchangeTest, FailureIsAnOutcomeNotAnError) {
  auto exchange = Exchange::FromProgram(R"(
    source A(x, y);
    target T(x, y);
    tgd A(x, y) -> T(x, y);
    egd T(x, y) & T(x, y2) -> y = y2;
    fact A("k", "1") @ [0, 5);
    fact A("k", "2") @ [3, 8);
  )");
  ASSERT_TRUE(exchange.ok());
  EXPECT_FALSE((*exchange)->HasSolution());
  EXPECT_FALSE((*exchange)->failure_reason().empty());
  // Certain answers are rejected without a solution.
  EXPECT_FALSE((*exchange)->CertainAnswers("anything").ok());
}

TEST(ExchangeTest, UnknownQueryNameIsNotFound) {
  auto exchange = Exchange::FromProgram(testing::kPaperProgram);
  ASSERT_TRUE(exchange.ok());
  auto missing = (*exchange)->CertainAnswers("nope");
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(ExchangeTest, RepeatedQueriesUseCachedLifting) {
  auto exchange = Exchange::FromProgram(testing::kPaperProgram);
  ASSERT_TRUE(exchange.ok());
  auto a1 = (*exchange)->CertainAnswers("salaries");
  auto a2 = (*exchange)->CertainAnswers("salaries");
  ASSERT_TRUE(a1.ok());
  ASSERT_TRUE(a2.ok());
  EXPECT_EQ(*a1, *a2);
}

}  // namespace
}  // namespace tdx
