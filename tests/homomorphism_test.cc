#include "src/relational/homomorphism.h"

#include <gtest/gtest.h>

#include <set>

namespace tdx {
namespace {

class HomomorphismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto e = schema_.AddRelation("E", {"name", "company"}, SchemaRole::kSource);
    ASSERT_TRUE(e.ok());
    e_ = *e;
    auto s = schema_.AddRelation("S", {"name", "salary"}, SchemaRole::kSource);
    ASSERT_TRUE(s.ok());
    s_ = *s;
    auto p = schema_.AddRelation("P", {"a", "b"}, SchemaRole::kSource);
    ASSERT_TRUE(p.ok());
    p_ = *p;
  }

  Atom MakeAtom(RelationId rel, std::vector<Term> terms) {
    Atom atom;
    atom.rel = rel;
    atom.terms = std::move(terms);
    return atom;
  }

  std::size_t CountHoms(const Conjunction& conj, const Instance& inst) {
    HomomorphismFinder finder(inst);
    std::size_t count = 0;
    finder.ForEach(conj, Binding(conj.num_vars),
                   [&](const Binding&, const AtomImage&) {
                     ++count;
                     return true;
                   });
    return count;
  }

  Universe u_;
  Schema schema_;
  RelationId e_ = 0, s_ = 0, p_ = 0;
};

TEST_F(HomomorphismTest, SingleAtomAllVariables) {
  Instance inst(&schema_);
  inst.Insert(e_, {u_.Constant("Ada"), u_.Constant("IBM")});
  inst.Insert(e_, {u_.Constant("Bob"), u_.Constant("IBM")});
  Conjunction conj;
  conj.atoms = {MakeAtom(e_, {Term::Var(0), Term::Var(1)})};
  conj.num_vars = 2;
  EXPECT_EQ(CountHoms(conj, inst), 2u);
}

TEST_F(HomomorphismTest, ConstantsFilter) {
  Instance inst(&schema_);
  inst.Insert(e_, {u_.Constant("Ada"), u_.Constant("IBM")});
  inst.Insert(e_, {u_.Constant("Bob"), u_.Constant("Google")});
  Conjunction conj;
  conj.atoms = {MakeAtom(e_, {Term::Var(0), Term::Val(u_.Constant("IBM"))})};
  conj.num_vars = 1;
  HomomorphismFinder finder(inst);
  auto found = finder.FindFirst(conj, Binding(1));
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->Get(0), u_.Constant("Ada"));
  EXPECT_EQ(CountHoms(conj, inst), 1u);
}

TEST_F(HomomorphismTest, JoinVariableSharedAcrossAtoms) {
  Instance inst(&schema_);
  inst.Insert(e_, {u_.Constant("Ada"), u_.Constant("IBM")});
  inst.Insert(e_, {u_.Constant("Bob"), u_.Constant("IBM")});
  inst.Insert(s_, {u_.Constant("Ada"), u_.Constant("18k")});
  Conjunction conj;  // E(n, c) & S(n, s)
  conj.atoms = {MakeAtom(e_, {Term::Var(0), Term::Var(1)}),
                MakeAtom(s_, {Term::Var(0), Term::Var(2)})};
  conj.num_vars = 3;
  EXPECT_EQ(CountHoms(conj, inst), 1u);
}

TEST_F(HomomorphismTest, RepeatedVariableInOneAtom) {
  Instance inst(&schema_);
  inst.Insert(p_, {u_.Constant("a"), u_.Constant("a")});
  inst.Insert(p_, {u_.Constant("a"), u_.Constant("b")});
  Conjunction conj;  // P(x, x)
  conj.atoms = {MakeAtom(p_, {Term::Var(0), Term::Var(0)})};
  conj.num_vars = 1;
  EXPECT_EQ(CountHoms(conj, inst), 1u);
}

TEST_F(HomomorphismTest, TwoAtomsMayMapToTheSameFact) {
  Instance inst(&schema_);
  inst.Insert(p_, {u_.Constant("a"), u_.Constant("b")});
  Conjunction conj;  // P(x, y) & P(z, w): unconstrained pair
  conj.atoms = {MakeAtom(p_, {Term::Var(0), Term::Var(1)}),
                MakeAtom(p_, {Term::Var(2), Term::Var(3)})};
  conj.num_vars = 4;
  EXPECT_EQ(CountHoms(conj, inst), 1u);  // both atoms onto the single fact
}

TEST_F(HomomorphismTest, EmptyConjunctionHasOneTrivialHom) {
  Instance inst(&schema_);
  Conjunction conj;
  conj.num_vars = 0;
  EXPECT_EQ(CountHoms(conj, inst), 1u);
}

TEST_F(HomomorphismTest, NoMatchOnEmptyRelation) {
  Instance inst(&schema_);
  Conjunction conj;
  conj.atoms = {MakeAtom(e_, {Term::Var(0), Term::Var(1)})};
  conj.num_vars = 2;
  HomomorphismFinder finder(inst);
  EXPECT_FALSE(finder.Exists(conj, Binding(2)));
}

TEST_F(HomomorphismTest, InitialBindingConstrains) {
  Instance inst(&schema_);
  inst.Insert(e_, {u_.Constant("Ada"), u_.Constant("IBM")});
  inst.Insert(e_, {u_.Constant("Bob"), u_.Constant("IBM")});
  Conjunction conj;
  conj.atoms = {MakeAtom(e_, {Term::Var(0), Term::Var(1)})};
  conj.num_vars = 2;
  Binding initial(2);
  initial.Bind(0, u_.Constant("Bob"));
  HomomorphismFinder finder(inst);
  std::size_t count = 0;
  finder.ForEach(conj, initial, [&](const Binding& b, const AtomImage&) {
    EXPECT_EQ(b.Get(0), u_.Constant("Bob"));
    ++count;
    return true;
  });
  EXPECT_EQ(count, 1u);
}

TEST_F(HomomorphismTest, EarlyStopHaltsEnumeration) {
  Instance inst(&schema_);
  for (int i = 0; i < 10; ++i) {
    inst.Insert(e_, {u_.Constant("p" + std::to_string(i)), u_.Constant("c")});
  }
  Conjunction conj;
  conj.atoms = {MakeAtom(e_, {Term::Var(0), Term::Var(1)})};
  conj.num_vars = 2;
  HomomorphismFinder finder(inst);
  std::size_t count = 0;
  const bool completed = finder.ForEach(conj, Binding(2),
                                        [&](const Binding&, const AtomImage&) {
                                          ++count;
                                          return count < 3;
                                        });
  EXPECT_FALSE(completed);
  EXPECT_EQ(count, 3u);
}

TEST_F(HomomorphismTest, ImageReportsMatchedFacts) {
  Instance inst(&schema_);
  inst.Insert(e_, {u_.Constant("Ada"), u_.Constant("IBM")});
  inst.Insert(s_, {u_.Constant("Ada"), u_.Constant("18k")});
  Conjunction conj;
  conj.atoms = {MakeAtom(e_, {Term::Var(0), Term::Var(1)}),
                MakeAtom(s_, {Term::Var(0), Term::Var(2)})};
  conj.num_vars = 3;
  HomomorphismFinder finder(inst);
  finder.ForEach(conj, Binding(3), [&](const Binding&, const AtomImage& img) {
    EXPECT_EQ(img.size(), 2u);
    EXPECT_EQ(img[0].relation(), e_);
    EXPECT_EQ(img[1].relation(), s_);
    return true;
  });
}

TEST_F(HomomorphismTest, IntervalValuesMatchAsConstants) {
  auto ep = schema_.AddTemporalRelation("E+", {"name", "company"},
                                        SchemaRole::kSource);
  ASSERT_TRUE(ep.ok());
  Instance inst(&schema_);
  inst.Insert(*ep, {u_.Constant("Ada"), u_.Constant("IBM"),
                    Value::OfInterval(Interval(1, 5))});
  inst.Insert(*ep, {u_.Constant("Ada"), u_.Constant("IBM"),
                    Value::OfInterval(Interval(5, 9))});
  Conjunction conj;  // E+(n, c, t) with t a variable
  conj.atoms = {MakeAtom(*ep, {Term::Var(0), Term::Var(1), Term::Var(2)})};
  conj.num_vars = 3;
  std::set<TimePoint> starts;
  HomomorphismFinder finder(inst);
  finder.ForEach(conj, Binding(3), [&](const Binding& b, const AtomImage&) {
    EXPECT_TRUE(b.Get(2).is_interval());
    starts.insert(b.Get(2).interval().start());
    return true;
  });
  EXPECT_EQ(starts, (std::set<TimePoint>{1, 5}));
}

TEST_F(HomomorphismTest, NullsMatchByIdentity) {
  Instance inst(&schema_);
  const Value n = u_.FreshNull();
  inst.Insert(e_, {u_.Constant("Ada"), n});
  Conjunction conj;  // E(x, <the null>)
  conj.atoms = {MakeAtom(e_, {Term::Var(0), Term::Val(n)})};
  conj.num_vars = 1;
  HomomorphismFinder finder(inst);
  EXPECT_TRUE(finder.Exists(conj, Binding(1)));
  Conjunction other;
  other.atoms = {MakeAtom(e_, {Term::Var(0), Term::Val(u_.FreshNull())})};
  other.num_vars = 1;
  EXPECT_FALSE(finder.Exists(other, Binding(1)));
}

TEST_F(HomomorphismTest, LargeInstanceJoinCount) {
  Instance inst(&schema_);
  for (int i = 0; i < 1000; ++i) {
    inst.Insert(e_, {u_.Constant("p" + std::to_string(i)),
                     u_.Constant("c" + std::to_string(i % 7))});
    inst.Insert(s_, {u_.Constant("p" + std::to_string(i)),
                     u_.Constant("s" + std::to_string(i % 11))});
  }
  // E(n, "c3") & S(n, s): people whose company is c3; i % 7 == 3 happens
  // 143 times for i in [0, 1000).
  Conjunction conj;
  conj.atoms = {MakeAtom(e_, {Term::Var(0), Term::Val(u_.Constant("c3"))}),
                MakeAtom(s_, {Term::Var(0), Term::Var(1)})};
  conj.num_vars = 2;
  EXPECT_EQ(CountHoms(conj, inst), 143u);
}

TEST_F(HomomorphismTest, CrossProductEnumeratesAllPairs) {
  Instance inst(&schema_);
  for (int i = 0; i < 5; ++i) {
    inst.Insert(p_, {u_.Constant("x" + std::to_string(i)), u_.Constant("y")});
  }
  Conjunction conj;  // P(a, b) & P(c, d): 25 pairs
  conj.atoms = {MakeAtom(p_, {Term::Var(0), Term::Var(1)}),
                MakeAtom(p_, {Term::Var(2), Term::Var(3)})};
  conj.num_vars = 4;
  EXPECT_EQ(CountHoms(conj, inst), 25u);
}

}  // namespace
}  // namespace tdx
