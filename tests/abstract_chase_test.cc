#include "src/temporal/abstract_chase.h"

#include <gtest/gtest.h>

#include "src/gen/workload.h"
#include "src/relational/universal.h"

namespace tdx {
namespace {

std::unique_ptr<Workload> PaperWorkload() {
  // Rebuild Figure 4 exactly via the employment setting.
  auto w = MakeEmploymentWorkload(
      EmploymentConfig{.num_people = 0, .num_companies = 0, .avg_jobs = 0,
                       .horizon = 1, .salary_known_fraction = 0.0,
                       .inject_conflict = false, .seed = 0});
  auto add = [&](const char* rel, std::vector<const char*> data,
                 const Interval& iv) {
    std::vector<Value> values;
    for (const char* d : data) values.push_back(w->universe.Constant(d));
    const RelationId id = *w->schema.Find(rel);
    ASSERT_TRUE(w->source.Add(id, std::move(values), iv).ok());
  };
  add("E+", {"Ada", "IBM"}, Interval(2012, 2014));
  add("E+", {"Ada", "Google"}, Interval::FromStart(2014));
  add("E+", {"Bob", "IBM"}, Interval(2013, 2018));
  add("S+", {"Ada", "18k"}, Interval::FromStart(2013));
  add("S+", {"Bob", "13k"}, Interval::FromStart(2015));
  return w;
}

TEST(AbstractChaseTest, PaperExample5PerSnapshotResults) {
  auto w = PaperWorkload();
  auto ia = AbstractInstance::FromConcrete(w->source);
  ASSERT_TRUE(ia.ok());
  auto outcome = AbstractChase(*ia, w->mapping, &w->universe);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  ASSERT_EQ(outcome->kind, ChaseResultKind::kSuccess);
  ASSERT_TRUE(outcome->target.ValidateCover().ok());

  const RelationId emp = *w->schema.Find("Emp");
  Universe& u = w->universe;

  // Figure 3, year 2012: { Emp(Ada, IBM, N) }.
  {
    const Instance db = outcome->target.At(2012, &u);
    ASSERT_EQ(db.facts(emp).size(), 1u);
    const FactView f = db.facts(emp)[0];
    EXPECT_EQ(f.arg(0), u.Constant("Ada"));
    EXPECT_EQ(f.arg(1), u.Constant("IBM"));
    EXPECT_TRUE(f.arg(2).is_null());
  }
  // Figure 3, year 2013: { Emp(Ada, IBM, 18k), Emp(Bob, IBM, N') }.
  {
    const Instance db = outcome->target.At(2013, &u);
    EXPECT_EQ(db.facts(emp).size(), 2u);
    EXPECT_TRUE(db.Contains(Fact(
        emp, {u.Constant("Ada"), u.Constant("IBM"), u.Constant("18k")})));
  }
  // Figure 3, year 2015: { Emp(Ada, Google, 18k), Emp(Bob, IBM, 13k) }.
  {
    const Instance db = outcome->target.At(2015, &u);
    EXPECT_EQ(db.facts(emp).size(), 2u);
    EXPECT_TRUE(db.Contains(Fact(
        emp, {u.Constant("Ada"), u.Constant("Google"), u.Constant("18k")})));
    EXPECT_TRUE(db.Contains(Fact(
        emp, {u.Constant("Bob"), u.Constant("IBM"), u.Constant("13k")})));
  }
  // Figure 3, year 2018: { Emp(Ada, Google, 18k) } — Bob's employment
  // ended; his dangling salary fact generates nothing.
  {
    const Instance db = outcome->target.At(2018, &u);
    EXPECT_EQ(db.facts(emp).size(), 1u);
    EXPECT_TRUE(db.Contains(Fact(
        emp, {u.Constant("Ada"), u.Constant("Google"), u.Constant("18k")})));
  }
}

TEST(AbstractChaseTest, NullsDifferAcrossSnapshots) {
  // Section 3: fresh nulls produced in one snapshot are distinct from those
  // in every other snapshot — Bob's unknown salary in 2013 and 2014.
  auto w = PaperWorkload();
  auto ia = AbstractInstance::FromConcrete(w->source);
  ASSERT_TRUE(ia.ok());
  auto outcome = AbstractChase(*ia, w->mapping, &w->universe);
  ASSERT_TRUE(outcome.ok());
  const RelationId emp = *w->schema.Find("Emp");
  Universe& u = w->universe;
  auto bob_salary = [&](TimePoint l) {
    const Instance db = outcome->target.At(l, &u);
    for (const FactView f : db.facts(emp)) {
      if (f.arg(0) == u.Constant("Bob")) return f.arg(2);
    }
    return Value();
  };
  const Value n2013 = bob_salary(2013);
  const Value n2014 = bob_salary(2014);
  ASSERT_TRUE(n2013.is_null());
  ASSERT_TRUE(n2014.is_null());
  EXPECT_NE(n2013, n2014);
}

TEST(AbstractChaseTest, AgreesWithGroundTruthSnapshotChase) {
  auto w = PaperWorkload();
  auto ia = AbstractInstance::FromConcrete(w->source);
  ASSERT_TRUE(ia.ok());
  auto compact = AbstractChase(*ia, w->mapping, &w->universe);
  ASSERT_TRUE(compact.ok());
  for (TimePoint l : {2011u, 2012u, 2013u, 2014u, 2016u, 2018u, 2025u}) {
    auto ground = ChaseSnapshotAt(*ia, l, w->mapping, &w->universe);
    ASSERT_TRUE(ground.ok());
    ASSERT_EQ(ground->kind, ChaseResultKind::kSuccess);
    const Instance compact_at = compact->target.At(l, &w->universe);
    EXPECT_TRUE(AreHomomorphicallyEquivalent(ground->target, compact_at))
        << "snapshot " << l;
  }
}

TEST(AbstractChaseTest, FailurePropagatesWithSpan) {
  auto w = PaperWorkload();
  // Conflicting salary for Ada during [2013, 2014): chase of those
  // snapshots fails.
  const RelationId s_plus = *w->schema.Find("S+");
  ASSERT_TRUE(w->source
                  .Add(s_plus, {w->universe.Constant("Ada"),
                                w->universe.Constant("99k")},
                       Interval(2013, 2014))
                  .ok());
  auto ia = AbstractInstance::FromConcrete(w->source);
  ASSERT_TRUE(ia.ok());
  auto outcome = AbstractChase(*ia, w->mapping, &w->universe);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->kind, ChaseResultKind::kFailure);
  ASSERT_TRUE(outcome->failure_span.has_value());
  EXPECT_EQ(*outcome->failure_span, Interval(2013, 2014));
}

TEST(AbstractChaseTest, RejectsIncompleteSource) {
  auto w = PaperWorkload();
  AbstractInstance ia(&w->schema);
  Instance snapshot(&w->schema);
  const RelationId e = *w->schema.Find("E");
  snapshot.Insert(e, {w->universe.Constant("Ada"), w->universe.FreshNull()});
  ia.AddPiece(Interval::FromStart(0), std::move(snapshot));
  EXPECT_FALSE(AbstractChase(ia, w->mapping, &w->universe).ok());
}

TEST(AbstractChaseTest, EmptySourceChasesToEmpty) {
  auto w = PaperWorkload();
  ConcreteInstance empty(&w->schema);
  auto ia = AbstractInstance::FromConcrete(empty);
  ASSERT_TRUE(ia.ok());
  auto outcome = AbstractChase(*ia, w->mapping, &w->universe);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->kind, ChaseResultKind::kSuccess);
  for (const AbstractPiece& piece : outcome->target.pieces()) {
    EXPECT_TRUE(piece.snapshot.empty());
  }
}

}  // namespace
}  // namespace tdx
