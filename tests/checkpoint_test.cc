// Checkpoint/resume mechanics: the durable encoding round-trips every field
// (interval-annotated nulls included), the loader rejects anything it cannot
// trust (wrong program, wrong version, torn or tampered file), the cadence
// gates round-level safe points, and the engines refuse checkpoints written
// under different execution options. The end-to-end kill/resume guarantees
// live in tests/chaos_resume_test.cc.

#include "src/common/checkpoint.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "src/core/cchase.h"
#include "src/parser/parser.h"
#include "src/parser/serialize.h"
#include "tests/test_util.h"

namespace tdx {
namespace {

using ::tdx::testing::kPaperProgram;
using ::tdx::testing::ParseOrDie;

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteAll(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
}

// Runs the paper's c-chase with an in-memory checkpointer at cadence 1 and
// returns the newest checkpoint (a real, resumable "loop-top" snapshot with
// annotated nulls in the target).
ChaseCheckpoint CaptureFromPaperRun(ParsedProgram* program) {
  Checkpointer checkpointer("", &program->schema, &program->universe);
  checkpointer.set_cadence(1);
  checkpointer.set_max_overhead(0);  // persist every safe point
  checkpointer.set_fingerprint(FingerprintText(kPaperProgram));
  CChaseOptions options;
  options.checkpointer = &checkpointer;
  auto outcome =
      CChase(program->source, program->lifted, &program->universe, options);
  EXPECT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_TRUE(checkpointer.latest().has_value());
  return *checkpointer.latest();
}

TEST(FingerprintTest, DistinguishesTexts) {
  EXPECT_EQ(FingerprintText("abc"), FingerprintText("abc"));
  EXPECT_NE(FingerprintText("abc"), FingerprintText("abd"));
  EXPECT_NE(FingerprintText(""), FingerprintText(std::string_view("\0", 1)));
}

TEST(CheckpointRoundTripTest, SerializeParseIsIdentity) {
  auto program = ParseOrDie(kPaperProgram);
  const ChaseCheckpoint original = CaptureFromPaperRun(program.get());
  ASSERT_TRUE(original.target.has_value());

  auto text = SerializeCheckpoint(original, program->schema,
                                  program->universe);
  ASSERT_TRUE(text.ok()) << text.status();
  auto parsed = ParseCheckpoint(*text, &program->schema, &program->universe);
  ASSERT_TRUE(parsed.ok()) << parsed.status();

  EXPECT_EQ(parsed->engine, original.engine);
  EXPECT_EQ(parsed->program_fingerprint, original.program_fingerprint);
  EXPECT_EQ(parsed->config, original.config);
  EXPECT_EQ(parsed->phase, original.phase);
  EXPECT_EQ(parsed->rounds, original.rounds);
  EXPECT_EQ(parsed->stats.tgd_fires, original.stats.tgd_fires);
  EXPECT_EQ(parsed->stats.fresh_nulls, original.stats.fresh_nulls);
  EXPECT_EQ(parsed->source_norm_stats.output_facts,
            original.source_norm_stats.output_facts);
  EXPECT_EQ(parsed->next_null, original.next_null);
  EXPECT_EQ(parsed->null_names, original.null_names);
  EXPECT_EQ(parsed->frontier_full, original.frontier_full);
  EXPECT_EQ(parsed->frontier_marks, original.frontier_marks);
  ASSERT_TRUE(parsed->target.has_value());
  EXPECT_EQ(parsed->target->size(), original.target->size());
  ASSERT_TRUE(parsed->normalized_source.has_value());
  EXPECT_EQ(parsed->normalized_source->size(),
            original.normalized_source->size());

  // Second serialization of the parse is byte-identical: the encoding is
  // canonical, so re-saving a loaded checkpoint never churns the file.
  auto text2 =
      SerializeCheckpoint(*parsed, program->schema, program->universe);
  ASSERT_TRUE(text2.ok()) << text2.status();
  EXPECT_EQ(*text, *text2);
}

TEST(CheckpointRoundTripTest, ConsumedLedgerRoundTrips) {
  auto program = ParseOrDie(kPaperProgram);
  ChaseCheckpoint ck = CaptureFromPaperRun(program.get());
  ck.consumed.tgd_fires = 7;
  ck.consumed.egd_steps = 3;
  ck.consumed.fresh_nulls = 5;
  ck.consumed.facts = 11;
  ck.consumed.fragments = 2;
  ck.consumed.elapsed = std::chrono::milliseconds(1234);

  auto text = SerializeCheckpoint(ck, program->schema, program->universe);
  ASSERT_TRUE(text.ok()) << text.status();
  auto parsed = ParseCheckpoint(*text, &program->schema, &program->universe);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->consumed.tgd_fires, 7u);
  EXPECT_EQ(parsed->consumed.egd_steps, 3u);
  EXPECT_EQ(parsed->consumed.fresh_nulls, 5u);
  EXPECT_EQ(parsed->consumed.facts, 11u);
  EXPECT_EQ(parsed->consumed.fragments, 2u);
  EXPECT_EQ(parsed->consumed.elapsed, std::chrono::milliseconds(1234));
}

TEST(CheckpointRoundTripTest, ScheduleSkipCountersRoundTrip) {
  auto program = ParseOrDie(kPaperProgram);
  ChaseCheckpoint ck = CaptureFromPaperRun(program.get());
  ck.stats.skipped_egd_passes = 4;
  ck.stats.skipped_normalize_passes = 9;

  auto text = SerializeCheckpoint(ck, program->schema, program->universe);
  ASSERT_TRUE(text.ok()) << text.status();
  auto parsed = ParseCheckpoint(*text, &program->schema, &program->universe);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->stats.skipped_egd_passes, 4u);
  EXPECT_EQ(parsed->stats.skipped_normalize_passes, 9u);
}

// Rewrites the checkpoint's stats line to its first `keep` fields and
// re-signs the checksum, imitating a file written by an older build.
std::string TruncateStatsLine(const std::string& text, int keep) {
  const std::size_t end_pos = text.rfind("\nend ");
  EXPECT_NE(end_pos, std::string::npos);
  std::string body = text.substr(0, end_pos + 1);
  const std::size_t line_start = body.find("\nstats ") + 1;
  EXPECT_NE(line_start, std::string::npos + 1);
  const std::size_t line_end = body.find('\n', line_start);
  std::istringstream fields(body.substr(line_start, line_end - line_start));
  std::string token, rebuilt;
  fields >> rebuilt;  // "stats"
  for (int i = 0; i < keep && (fields >> token); ++i) rebuilt += " " + token;
  body.replace(line_start, line_end - line_start, rebuilt);
  char checksum[17];
  std::snprintf(checksum, sizeof(checksum), "%016llx",
                static_cast<unsigned long long>(FingerprintText(body)));
  return body + "end " + checksum + "\n";
}

TEST(CheckpointRoundTripTest, LegacyFiveFieldStatsLineDecodes) {
  // Checkpoints written before the chase planner carry a 5-field stats
  // line; they must load with both skip counters at zero.
  auto program = ParseOrDie(kPaperProgram);
  ChaseCheckpoint ck = CaptureFromPaperRun(program.get());
  ck.stats.skipped_egd_passes = 4;
  ck.stats.skipped_normalize_passes = 9;
  auto text = SerializeCheckpoint(ck, program->schema, program->universe);
  ASSERT_TRUE(text.ok()) << text.status();

  auto parsed = ParseCheckpoint(TruncateStatsLine(*text, 5), &program->schema,
                                &program->universe);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->stats.tgd_fires, ck.stats.tgd_fires);
  EXPECT_EQ(parsed->stats.skipped_egd_passes, 0u);
  EXPECT_EQ(parsed->stats.skipped_normalize_passes, 0u);
}

TEST(CheckpointRoundTripTest, SixFieldStatsLineIsMalformed) {
  // Six fields is no version this code ever wrote: the skip counters come
  // as a pair, so a line with only one of them is a torn write.
  auto program = ParseOrDie(kPaperProgram);
  const ChaseCheckpoint ck = CaptureFromPaperRun(program.get());
  auto text = SerializeCheckpoint(ck, program->schema, program->universe);
  ASSERT_TRUE(text.ok()) << text.status();

  auto parsed = ParseCheckpoint(TruncateStatsLine(*text, 6), &program->schema,
                                &program->universe);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("stats"), std::string::npos);
}

TEST(CheckpointFileTest, SaveLoadRoundTrips) {
  auto program = ParseOrDie(kPaperProgram);
  const ChaseCheckpoint ck = CaptureFromPaperRun(program.get());
  const std::string path = TempPath("save_load.tdxckpt");

  ASSERT_TRUE(
      SaveChaseCheckpoint(ck, program->schema, program->universe, path).ok());
  auto loaded = LoadChaseCheckpoint(path, kPaperProgram, &program->schema,
                                    &program->universe);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->phase, ck.phase);
  EXPECT_EQ(loaded->null_names, ck.null_names);
  std::remove(path.c_str());
}

TEST(CheckpointFileTest, RejectsDifferentProgram) {
  auto program = ParseOrDie(kPaperProgram);
  const ChaseCheckpoint ck = CaptureFromPaperRun(program.get());
  const std::string path = TempPath("wrong_program.tdxckpt");
  ASSERT_TRUE(
      SaveChaseCheckpoint(ck, program->schema, program->universe, path).ok());

  auto loaded = LoadChaseCheckpoint(path, "not the same program",
                                    &program->schema, &program->universe);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(CheckpointFileTest, RejectsMissingFile) {
  auto program = ParseOrDie(kPaperProgram);
  auto loaded = LoadChaseCheckpoint(TempPath("does_not_exist.tdxckpt"),
                                    kPaperProgram, &program->schema,
                                    &program->universe);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(CheckpointFileTest, RejectsTamperedFile) {
  auto program = ParseOrDie(kPaperProgram);
  const ChaseCheckpoint ck = CaptureFromPaperRun(program.get());
  const std::string path = TempPath("tampered.tdxckpt");
  ASSERT_TRUE(
      SaveChaseCheckpoint(ck, program->schema, program->universe, path).ok());

  std::string text = ReadAll(path);
  const std::size_t pos = text.find("rounds ");
  ASSERT_NE(pos, std::string::npos);
  text[pos + 7] = '9';  // flip the round counter without fixing the checksum
  WriteAll(path, text);

  auto loaded = LoadChaseCheckpoint(path, kPaperProgram, &program->schema,
                                    &program->universe);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
  std::remove(path.c_str());
}

TEST(CheckpointFileTest, RejectsTruncatedFile) {
  auto program = ParseOrDie(kPaperProgram);
  const ChaseCheckpoint ck = CaptureFromPaperRun(program.get());
  const std::string path = TempPath("truncated.tdxckpt");
  ASSERT_TRUE(
      SaveChaseCheckpoint(ck, program->schema, program->universe, path).ok());

  std::string text = ReadAll(path);
  WriteAll(path, text.substr(0, text.size() / 2));
  auto loaded = LoadChaseCheckpoint(path, kPaperProgram, &program->schema,
                                    &program->universe);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(CheckpointFileTest, RejectsUnknownVersion) {
  auto program = ParseOrDie(kPaperProgram);
  auto parsed = ParseCheckpoint("tdxckpt v99\nend 0000000000000000\n",
                                &program->schema, &program->universe);
  EXPECT_FALSE(parsed.ok());
}

TEST(CheckpointerTest, CadenceGatesRoundPointsNotBoundaries) {
  auto program = ParseOrDie(kPaperProgram);
  Checkpointer checkpointer("", &program->schema, &program->universe);
  checkpointer.set_cadence(3);
  checkpointer.set_max_overhead(0);

  auto build = [&] {
    ChaseCheckpoint ck;
    ck.engine = ChaseCheckpoint::Engine::kCChase;
    return ck;
  };
  // Boundaries always persist.
  EXPECT_TRUE(checkpointer.AtSafePoint(true, build));
  // Round points persist on every 3rd offer only.
  EXPECT_FALSE(checkpointer.AtSafePoint(false, build));
  EXPECT_FALSE(checkpointer.AtSafePoint(false, build));
  EXPECT_TRUE(checkpointer.AtSafePoint(false, build));
  EXPECT_FALSE(checkpointer.AtSafePoint(false, build));
  EXPECT_EQ(checkpointer.safe_points(), 5u);
  EXPECT_EQ(checkpointer.writes(), 2u);
  EXPECT_TRUE(checkpointer.last_error().ok());
}

TEST(CheckpointerTest, WriteFailureIsRecordedNotFatal) {
  auto program = ParseOrDie(kPaperProgram);
  // A directory that does not exist: every write fails, the chase goes on.
  Checkpointer checkpointer(TempPath("no/such/dir/ck.tdxckpt"),
                            &program->schema, &program->universe);
  checkpointer.set_cadence(1);
  CChaseOptions options;
  options.checkpointer = &checkpointer;
  auto outcome =
      CChase(program->source, program->lifted, &program->universe, options);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome->kind, ChaseResultKind::kSuccess);
  EXPECT_FALSE(checkpointer.last_error().ok());
  EXPECT_EQ(checkpointer.writes(), 0u);
}

TEST(CheckpointResumeValidationTest, RejectsWrongEngine) {
  auto program = ParseOrDie(kPaperProgram);
  ChaseCheckpoint ck = CaptureFromPaperRun(program.get());
  ck.engine = ChaseCheckpoint::Engine::kSnapshot;
  CChaseOptions options;
  options.resume_from = &ck;
  auto outcome =
      CChase(program->source, program->lifted, &program->universe, options);
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kInvalidArgument);
}

TEST(CheckpointResumeValidationTest, RejectsDifferentExecutionOptions) {
  auto program = ParseOrDie(kPaperProgram);
  const ChaseCheckpoint ck = CaptureFromPaperRun(program.get());
  CChaseOptions options;
  options.semi_naive = false;  // checkpoint was taken under semi-naive
  options.resume_from = &ck;
  auto outcome =
      CChase(program->source, program->lifted, &program->universe, options);
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kInvalidArgument);
}

TEST(CheckpointResumeValidationTest, RejectsUnknownPhase) {
  auto program = ParseOrDie(kPaperProgram);
  ChaseCheckpoint ck = CaptureFromPaperRun(program.get());
  ck.phase = "pieces";  // an abstract-engine phase
  CChaseOptions options;
  options.resume_from = &ck;
  auto outcome =
      CChase(program->source, program->lifted, &program->universe, options);
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace tdx
