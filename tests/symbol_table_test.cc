#include "src/common/symbol_table.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace tdx {
namespace {

TEST(SymbolTableTest, InternReturnsStableIds) {
  SymbolTable table;
  const SymbolId a = table.Intern("Ada");
  const SymbolId b = table.Intern("Bob");
  EXPECT_NE(a, b);
  EXPECT_EQ(table.Intern("Ada"), a);
  EXPECT_EQ(table.size(), 2u);
}

TEST(SymbolTableTest, SpellingRoundTrips) {
  SymbolTable table;
  const SymbolId id = table.Intern("IBM");
  EXPECT_EQ(table.Spelling(id), "IBM");
}

TEST(SymbolTableTest, LookupDoesNotIntern) {
  SymbolTable table;
  SymbolId out = 0;
  EXPECT_FALSE(table.Lookup("missing", &out));
  EXPECT_EQ(table.size(), 0u);
  const SymbolId id = table.Intern("x");
  EXPECT_TRUE(table.Lookup("x", &out));
  EXPECT_EQ(out, id);
}

TEST(SymbolTableTest, EmptyStringIsInternable) {
  SymbolTable table;
  const SymbolId id = table.Intern("");
  EXPECT_EQ(table.Spelling(id), "");
  EXPECT_EQ(table.Intern(""), id);
}

// Regression guard for the SSO-dangling-view hazard: ids and spellings must
// survive heavy growth (reallocation of any backing storage).
TEST(SymbolTableTest, SpellingsSurviveGrowth) {
  SymbolTable table;
  std::vector<SymbolId> ids;
  for (int i = 0; i < 10000; ++i) {
    ids.push_back(table.Intern("sym" + std::to_string(i)));
  }
  for (int i = 0; i < 10000; ++i) {
    EXPECT_EQ(table.Spelling(ids[i]), "sym" + std::to_string(i));
    SymbolId out = 0;
    ASSERT_TRUE(table.Lookup("sym" + std::to_string(i), &out));
    EXPECT_EQ(out, ids[i]);
  }
}

}  // namespace
}  // namespace tdx
