// Unit tests for the chase planner (src/analysis/planner.h): liveness and
// effect-freeness proofs, stratification invariants, parallel-group safety,
// and the engines' contract that a schedule never changes chase results —
// scheduled and unscheduled runs are bit-identical, for any jobs count.

#include "src/analysis/planner.h"

#include <gtest/gtest.h>

#include <string_view>

#include "src/core/cchase.h"
#include "src/core/normalize.h"
#include "src/parser/parser.h"
#include "src/parser/printer.h"
#include "src/relational/chase.h"
#include "src/temporal/snapshot.h"
#include "tests/test_util.h"

namespace tdx {
namespace {

using ::tdx::testing::kPaperProgram;
using ::tdx::testing::ParseOrDie;

// A terminating multi-stratum pipeline: two s-t copies, a recursive closure
// rule, a constant-tagging rule, a downstream projection, and an egd whose
// equality is pinned to "ok" on both sides (provably effect-free).
constexpr std::string_view kPipelineProgram = R"(
  source Src(x, y);
  target Edge(x, y);
  target Reach(x, y);
  target Audit(x, y, status);
  target Log(x, status);
  tgd s1: Src(x, y) -> Edge(x, y);
  tgd s2: Src(x, y) -> Reach(x, y);
  ttgd t1: Reach(x, y) & Edge(y, z) -> Reach(x, z);
  ttgd t2: Reach(x, y) -> Audit(x, y, "ok");
  ttgd t3: Audit(x, _, s) -> Log(x, s);
  egd e1: Audit(x, y, s) & Audit(x, y, s2) -> s = s2;
  fact Src("a", "b") @ [0, 8);
  fact Src("b", "c") @ [0, 8);
)";

ChaseSchedule PlanOf(const ParsedProgram& program) {
  if (program.mapping.schedule.has_value()) return *program.mapping.schedule;
  return PlanChase(program.mapping, program.schema);
}

// Every justification edge must point into an equal-or-later stratum, and
// the strata must partition the rule set.
void ExpectWellFormedSchedule(const ChaseSchedule& schedule) {
  std::vector<std::size_t> seen(schedule.rules.size(), 0);
  for (const auto& stratum : schedule.strata) {
    for (std::size_t id : stratum) {
      ASSERT_LT(id, schedule.rules.size());
      ++seen[id];
    }
  }
  for (std::size_t count : seen) EXPECT_EQ(count, 1u);
  for (const ScheduleEdge& edge : schedule.edges) {
    EXPECT_LE(schedule.rules[edge.from].stratum,
              schedule.rules[edge.to].stratum)
        << schedule.ToText();
  }
}

TEST(PlannerTest, EmptyMappingYieldsAnEmptySchedule) {
  const ChaseSchedule schedule = PlanChase(Mapping{}, Schema{});
  EXPECT_TRUE(schedule.rules.empty());
  EXPECT_EQ(schedule.stratum_count(), 0u);
  EXPECT_FALSE(schedule.egd_fixpoint_live());
}

TEST(PlannerTest, PaperMappingKeepsItsMergingEgdLive) {
  auto program = ParseOrDie(kPaperProgram);
  const ChaseSchedule schedule = PlanOf(*program);
  ASSERT_EQ(schedule.rules.size(), 3u);  // sigma1, sigma2, e1
  ExpectWellFormedSchedule(schedule);
  // sigma1 invents salary nulls that e1 merges against sigma2's constants:
  // the fixpoint is anything but a no-op.
  EXPECT_TRUE(schedule.egd_fixpoint_live());
  ASSERT_EQ(schedule.live_egds.size(), 1u);
  EXPECT_EQ(schedule.live_egds[0], 0u);
}

TEST(PlannerTest, PipelineStrataAreTopological) {
  auto program = ParseOrDie(kPipelineProgram);
  const ChaseSchedule schedule = PlanOf(*program);
  ExpectWellFormedSchedule(schedule);
  EXPECT_GE(schedule.stratum_count(), 2u);
}

TEST(PlannerTest, EffectFreeEgdSkipsTheFixpoint) {
  auto program = ParseOrDie(kPipelineProgram);
  const ChaseSchedule schedule = PlanOf(*program);
  EXPECT_FALSE(schedule.egd_fixpoint_live());
  for (const ScheduleRule& rule : schedule.rules) {
    if (rule.kind != ScheduleRuleKind::kEgd) continue;
    EXPECT_TRUE(rule.live);  // it fires — its firings just do nothing
    EXPECT_TRUE(rule.effect_free);
    EXPECT_FALSE(rule.skip_reason.empty());
  }
}

TEST(PlannerTest, AlwaysFailingEgdStaysLive) {
  // Both sides pinned to DIFFERENT constants: any firing fails the chase,
  // so skipping the fixpoint would change results on sources that trigger
  // it. The planner must keep it live.
  auto program = ParseOrDie(R"(
    source A(x);
    target T(x, tag);
    tgd t1: A(x) -> T(x, "a");
    tgd t2: A(x) -> T(x, "b");
    egd e1: T(x, s) & T(x, s2) -> s = s2;
  )");
  const ChaseSchedule schedule = PlanOf(*program);
  EXPECT_TRUE(schedule.egd_fixpoint_live());
  ASSERT_EQ(schedule.live_egds.size(), 1u);
}

TEST(PlannerTest, DeadRuleIsExcludedFromLiveSetsAndGroups) {
  auto program = ParseOrDie(R"(
    source A(x);
    target T(x, tag);
    target U(x);
    tgd t1: A(x) -> T(x, "ok");
    ttgd live: T(x, "ok") -> U(x);
    ttgd dead: T(x, "bad") -> U(x);
  )");
  const ChaseSchedule schedule = PlanOf(*program);
  ASSERT_EQ(schedule.live_target_tgds.size(), 1u);
  EXPECT_EQ(schedule.live_target_tgds[0], 0u);  // 'live' is target tgd #0
  for (const auto& group : schedule.parallel_groups) {
    for (std::size_t index : group) EXPECT_NE(index, 1u);
  }
  for (const ScheduleRule& rule : schedule.rules) {
    if (rule.kind == ScheduleRuleKind::kTargetTgd && rule.index == 1) {
      EXPECT_FALSE(rule.live);
      EXPECT_FALSE(rule.skip_reason.empty());
    }
  }
}

TEST(PlannerTest, IndependentTgdsShareAParallelGroup) {
  auto program = ParseOrDie(R"(
    source A(x);
    target Base(x);
    target Out1(x);
    target Out2(x);
    tgd s: A(x) -> Base(x);
    ttgd p1: Base(x) -> Out1(x);
    ttgd p2: Base(x) -> Out2(x);
  )");
  const ChaseSchedule schedule = PlanOf(*program);
  // p1 cannot feed p2 (different head relations), so both collect their
  // triggers concurrently.
  ASSERT_EQ(schedule.parallel_groups.size(), 1u);
  EXPECT_EQ(schedule.parallel_groups[0], (std::vector<std::size_t>{0, 1}));
}

TEST(PlannerTest, ChainedTgdsSplitIntoSingletonGroups) {
  auto program = ParseOrDie(R"(
    source A(x);
    target Base(x);
    target Mid(x);
    target Out(x);
    tgd s: A(x) -> Base(x);
    ttgd p1: Base(x) -> Mid(x);
    ttgd p2: Mid(x) -> Out(x);
  )");
  const ChaseSchedule schedule = PlanOf(*program);
  // p1 feeds p2: collecting p2's triggers before p1's fires would miss the
  // facts p1 inserts this round, so they may not share a group.
  ASSERT_EQ(schedule.parallel_groups.size(), 2u);
  EXPECT_EQ(schedule.parallel_groups[0], (std::vector<std::size_t>{0}));
  EXPECT_EQ(schedule.parallel_groups[1], (std::vector<std::size_t>{1}));
}

TEST(PlannerTest, ParallelGroupMembersNeverFeedLaterMembers) {
  auto program = ParseOrDie(kPipelineProgram);
  const ChaseSchedule schedule = PlanOf(*program);
  // Map target-tgd mapping index -> rule id.
  std::vector<std::size_t> rule_id(program->mapping.target_tgds.size(), 0);
  for (std::size_t id = 0; id < schedule.rules.size(); ++id) {
    if (schedule.rules[id].kind == ScheduleRuleKind::kTargetTgd) {
      rule_id[schedule.rules[id].index] = id;
    }
  }
  for (const auto& group : schedule.parallel_groups) {
    for (std::size_t i = 0; i < group.size(); ++i) {
      for (std::size_t j = i + 1; j < group.size(); ++j) {
        EXPECT_LT(group[i], group[j]);  // declaration order
        for (const ScheduleEdge& edge : schedule.edges) {
          const bool forward_feed = edge.from == rule_id[group[i]] &&
                                    edge.to == rule_id[group[j]] &&
                                    edge.reason == ScheduleEdgeReason::kFeeds;
          EXPECT_FALSE(forward_feed) << schedule.ToText();
        }
      }
    }
  }
}

TEST(PlannerTest, InterferencePairsUseMappingIndices) {
  auto program = ParseOrDie(R"(
    source A(x);
    target T(x, v);
    target U(x, v);
    tgd t1: A(x) -> exists v: T(x, v);
    egd e1: T(x, v) & T(x, v2) -> v = v2;
    ttgd t2: T(x, v) -> U(x, v);
  )");
  const PlanDetails details =
      PlanChaseDetailed(program->mapping, program->schema);
  ASSERT_EQ(details.interference.size(), 1u);
  EXPECT_EQ(details.interference[0].first, 0u);   // egd e1
  EXPECT_EQ(details.interference[0].second, 0u);  // target tgd t2
}

// ---------------------------------------------------------------------------
// The engines' contract: a schedule never changes what the chase computes.

void ExpectSameOutcome(const CChaseOutcome& flat, const CChaseOutcome& sched,
                       const Universe& u_flat, const Universe& u_sched) {
  ASSERT_EQ(flat.kind, sched.kind);
  EXPECT_EQ(RenderConcreteInstance(flat.target, u_flat),
            RenderConcreteInstance(sched.target, u_sched));
  EXPECT_EQ(flat.stats.tgd_triggers, sched.stats.tgd_triggers);
  EXPECT_EQ(flat.stats.tgd_fires, sched.stats.tgd_fires);
  EXPECT_EQ(flat.stats.egd_steps, sched.stats.egd_steps);
  EXPECT_EQ(flat.stats.fresh_nulls, sched.stats.fresh_nulls);
  EXPECT_EQ(flat.stats.values_rewritten, sched.stats.values_rewritten);
}

TEST(PlannerTest, ScheduledCChaseMatchesUnscheduledOnThePaperProgram) {
  auto flat_program = ParseOrDie(kPaperProgram);
  auto sched_program = ParseOrDie(kPaperProgram);
  CChaseOptions flat_options;
  flat_options.scheduled = false;
  CChaseOptions sched_options;
  sched_options.jobs = 4;
  auto flat = CChase(flat_program->source, flat_program->lifted,
                     &flat_program->universe, flat_options);
  auto sched = CChase(sched_program->source, sched_program->lifted,
                      &sched_program->universe, sched_options);
  ASSERT_TRUE(flat.ok()) << flat.status();
  ASSERT_TRUE(sched.ok()) << sched.status();
  ExpectSameOutcome(*flat, *sched, flat_program->universe,
                    sched_program->universe);
  EXPECT_EQ(flat->stats.schedule_strata, 0u);
  EXPECT_GT(sched->stats.schedule_strata, 0u);
}

TEST(PlannerTest, ScheduledCChaseMatchesUnscheduledOnThePipeline) {
  auto flat_program = ParseOrDie(kPipelineProgram);
  auto sched_program = ParseOrDie(kPipelineProgram);
  CChaseOptions flat_options;
  flat_options.scheduled = false;
  CChaseOptions sched_options;
  sched_options.jobs = 4;
  auto flat = CChase(flat_program->source, flat_program->lifted,
                     &flat_program->universe, flat_options);
  auto sched = CChase(sched_program->source, sched_program->lifted,
                      &sched_program->universe, sched_options);
  ASSERT_TRUE(flat.ok()) << flat.status();
  ASSERT_TRUE(sched.ok()) << sched.status();
  ExpectSameOutcome(*flat, *sched, flat_program->universe,
                    sched_program->universe);
  // The pipeline's egd is effect-free, so the scheduled run skipped every
  // would-be fixpoint pass (and egd_steps stayed 0 in both runs).
  EXPECT_EQ(flat->stats.skipped_egd_passes, 0u);
  EXPECT_GT(sched->stats.skipped_egd_passes, 0u);
  EXPECT_EQ(sched->stats.egd_steps, 0u);
}

TEST(PlannerTest, ScheduledSnapshotChaseMatchesUnscheduled) {
  auto flat_program = ParseOrDie(kPaperProgram);
  auto sched_program = ParseOrDie(kPaperProgram);
  auto flat_snap = SnapshotAt(flat_program->source, 2013,
                              &flat_program->universe);
  auto sched_snap = SnapshotAt(sched_program->source, 2013,
                               &sched_program->universe);
  ASSERT_TRUE(flat_snap.ok());
  ASSERT_TRUE(sched_snap.ok());
  ChaseOptions flat_options;
  flat_options.scheduled = false;
  ChaseOptions sched_options;
  sched_options.jobs = 4;
  auto flat = ChaseSnapshot(*flat_snap, flat_program->mapping,
                            &flat_program->universe, flat_options);
  auto sched = ChaseSnapshot(*sched_snap, sched_program->mapping,
                             &sched_program->universe, sched_options);
  ASSERT_TRUE(flat.ok()) << flat.status();
  ASSERT_TRUE(sched.ok()) << sched.status();
  ASSERT_EQ(flat->kind, sched->kind);
  EXPECT_TRUE(flat->target == sched->target);
  EXPECT_EQ(flat->stats.tgd_triggers, sched->stats.tgd_triggers);
  EXPECT_EQ(flat->stats.tgd_fires, sched->stats.tgd_fires);
  EXPECT_EQ(flat->stats.egd_steps, sched->stats.egd_steps);
  EXPECT_EQ(flat->stats.fresh_nulls, sched->stats.fresh_nulls);
}

TEST(PlannerTest, JobsCountDoesNotChangeTheResult) {
  auto one_program = ParseOrDie(kPipelineProgram);
  auto eight_program = ParseOrDie(kPipelineProgram);
  CChaseOptions one_options;
  one_options.jobs = 1;
  CChaseOptions eight_options;
  eight_options.jobs = 8;
  auto one = CChase(one_program->source, one_program->lifted,
                    &one_program->universe, one_options);
  auto eight = CChase(eight_program->source, eight_program->lifted,
                      &eight_program->universe, eight_options);
  ASSERT_TRUE(one.ok()) << one.status();
  ASSERT_TRUE(eight.ok()) << eight.status();
  ExpectSameOutcome(*one, *eight, one_program->universe,
                    eight_program->universe);
}

TEST(PlannerTest, NormalizeIsIdempotent) {
  // Pins the c-chase normalize-skip assumption: re-normalizing an already
  // normalized instance is the identity, so skipping the loop-top pass when
  // nothing changed since the last one cannot alter results.
  auto program = ParseOrDie(kPaperProgram);
  const auto phis = program->lifted.TgdBodies();
  const ConcreteInstance once = Normalize(program->source, phis);
  const ConcreteInstance twice = Normalize(once, phis);
  EXPECT_EQ(RenderConcreteInstance(once, program->universe),
            RenderConcreteInstance(twice, program->universe));
}

}  // namespace
}  // namespace tdx
