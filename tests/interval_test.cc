#include "src/common/interval.h"

#include <gtest/gtest.h>

namespace tdx {
namespace {

TEST(IntervalTest, BasicAccessors) {
  const Interval iv(3, 7);
  EXPECT_EQ(iv.start(), 3u);
  EXPECT_EQ(iv.end(), 7u);
  EXPECT_FALSE(iv.unbounded());
  ASSERT_TRUE(iv.length().has_value());
  EXPECT_EQ(*iv.length(), 4u);
}

TEST(IntervalTest, UnboundedInterval) {
  const Interval iv = Interval::FromStart(5);
  EXPECT_TRUE(iv.unbounded());
  EXPECT_EQ(iv.end(), kTimeInfinity);
  EXPECT_FALSE(iv.length().has_value());
  EXPECT_TRUE(iv.Contains(5));
  EXPECT_TRUE(iv.Contains(1000000));
  EXPECT_FALSE(iv.Contains(4));
}

TEST(IntervalTest, ContainsTimePoint) {
  const Interval iv(3, 7);
  EXPECT_FALSE(iv.Contains(2));
  EXPECT_TRUE(iv.Contains(3));
  EXPECT_TRUE(iv.Contains(6));
  EXPECT_FALSE(iv.Contains(7));  // half-open
}

TEST(IntervalTest, ContainsInterval) {
  const Interval outer(3, 10);
  EXPECT_TRUE(outer.Contains(Interval(3, 10)));
  EXPECT_TRUE(outer.Contains(Interval(4, 9)));
  EXPECT_FALSE(outer.Contains(Interval(2, 9)));
  EXPECT_FALSE(outer.Contains(Interval(4, 11)));
  EXPECT_TRUE(Interval::FromStart(0).Contains(Interval::FromStart(5)));
}

TEST(IntervalTest, Overlaps) {
  EXPECT_TRUE(Interval(1, 5).Overlaps(Interval(4, 8)));
  EXPECT_TRUE(Interval(4, 8).Overlaps(Interval(1, 5)));
  EXPECT_FALSE(Interval(1, 5).Overlaps(Interval(5, 8)));  // adjacent
  EXPECT_FALSE(Interval(1, 5).Overlaps(Interval(6, 8)));
  EXPECT_TRUE(Interval(1, 5).Overlaps(Interval(1, 5)));
  EXPECT_TRUE(Interval::FromStart(3).Overlaps(Interval(0, 4)));
}

TEST(IntervalTest, AdjacencyMatchesPaperDefinition) {
  // Section 2: [s,e), [s',e') adjacent iff s' = e or s = e'.
  EXPECT_TRUE(Interval(1, 5).AdjacentTo(Interval(5, 8)));
  EXPECT_TRUE(Interval(5, 8).AdjacentTo(Interval(1, 5)));
  EXPECT_FALSE(Interval(1, 5).AdjacentTo(Interval(6, 8)));
  EXPECT_FALSE(Interval(1, 5).AdjacentTo(Interval(4, 8)));  // overlap
}

TEST(IntervalTest, Intersect) {
  const auto i1 = Interval(1, 5).Intersect(Interval(3, 8));
  ASSERT_TRUE(i1.has_value());
  EXPECT_EQ(*i1, Interval(3, 5));
  EXPECT_FALSE(Interval(1, 5).Intersect(Interval(5, 8)).has_value());
  const auto i2 = Interval::FromStart(3).Intersect(Interval(0, 10));
  ASSERT_TRUE(i2.has_value());
  EXPECT_EQ(*i2, Interval(3, 10));
  const auto i3 = Interval::FromStart(3).Intersect(Interval::FromStart(7));
  ASSERT_TRUE(i3.has_value());
  EXPECT_EQ(*i3, Interval::FromStart(7));
}

TEST(IntervalTest, MergeWith) {
  EXPECT_EQ(Interval(1, 5).MergeWith(Interval(5, 8)), Interval(1, 8));
  EXPECT_EQ(Interval(1, 5).MergeWith(Interval(3, 8)), Interval(1, 8));
  EXPECT_EQ(Interval(1, 5).MergeWith(Interval::FromStart(4)),
            Interval::FromStart(1));
}

TEST(IntervalTest, SplitAt) {
  const auto [left, right] = Interval(2, 9).SplitAt(5);
  EXPECT_EQ(left, Interval(2, 5));
  EXPECT_EQ(right, Interval(5, 9));
}

TEST(IntervalTest, ToString) {
  EXPECT_EQ(Interval(2012, 2014).ToString(), "[2012, 2014)");
  EXPECT_EQ(Interval::FromStart(2014).ToString(), "[2014, inf)");
}

TEST(IntervalTest, Ordering) {
  EXPECT_LT(Interval(1, 5), Interval(2, 3));
  EXPECT_LT(Interval(1, 3), Interval(1, 5));
  EXPECT_LT(Interval(1, 5), Interval::FromStart(1));
}

TEST(IntervalTest, HashEqualIntervalsAgree) {
  IntervalHash hash;
  EXPECT_EQ(hash(Interval(1, 5)), hash(Interval(1, 5)));
  EXPECT_NE(hash(Interval(1, 5)), hash(Interval(1, 6)));  // overwhelmingly
}

TEST(FragmentIntervalTest, NoInteriorCutsIsIdentity) {
  const auto fragments = FragmentInterval(Interval(3, 8), {1, 3, 8, 10});
  ASSERT_EQ(fragments.size(), 1u);
  EXPECT_EQ(fragments[0], Interval(3, 8));
}

TEST(FragmentIntervalTest, InteriorCutsSplit) {
  const auto fragments = FragmentInterval(Interval(3, 10), {5, 7});
  ASSERT_EQ(fragments.size(), 3u);
  EXPECT_EQ(fragments[0], Interval(3, 5));
  EXPECT_EQ(fragments[1], Interval(5, 7));
  EXPECT_EQ(fragments[2], Interval(7, 10));
}

TEST(FragmentIntervalTest, UnboundedIntervalKeepsUnboundedTail) {
  const auto fragments = FragmentInterval(Interval::FromStart(3), {5, 9});
  ASSERT_EQ(fragments.size(), 3u);
  EXPECT_EQ(fragments[2], Interval::FromStart(9));
}

TEST(FragmentIntervalTest, FragmentsCoverOriginal) {
  const Interval iv(0, 20);
  const auto fragments = FragmentInterval(iv, {1, 4, 9, 13, 19});
  TimePoint cursor = iv.start();
  for (const Interval& f : fragments) {
    EXPECT_EQ(f.start(), cursor);
    cursor = f.end();
  }
  EXPECT_EQ(cursor, iv.end());
}

TEST(DistinctFiniteEndpointsTest, SortsAndDedupes) {
  const auto pts = DistinctFiniteEndpoints(
      {Interval(5, 11), Interval(8, 15), Interval::FromStart(8)});
  EXPECT_EQ(pts, (std::vector<TimePoint>{5, 8, 11, 15}));
}

TEST(DistinctFiniteEndpointsTest, OmitsInfinity) {
  const auto pts = DistinctFiniteEndpoints({Interval::FromStart(3)});
  EXPECT_EQ(pts, (std::vector<TimePoint>{3}));
}

// Property sweep: fragmentation at arbitrary cut sets always yields
// contiguous, non-empty fragments covering the original interval.
class FragmentSweep : public ::testing::TestWithParam<int> {};

TEST_P(FragmentSweep, CoversAndContiguous) {
  const int mask = GetParam();
  std::vector<TimePoint> cuts;
  for (int bit = 0; bit < 10; ++bit) {
    if (mask & (1 << bit)) cuts.push_back(static_cast<TimePoint>(bit + 1));
  }
  const Interval iv(2, 9);
  const auto fragments = FragmentInterval(iv, cuts);
  ASSERT_FALSE(fragments.empty());
  EXPECT_EQ(fragments.front().start(), iv.start());
  EXPECT_EQ(fragments.back().end(), iv.end());
  for (std::size_t i = 1; i < fragments.size(); ++i) {
    EXPECT_EQ(fragments[i].start(), fragments[i - 1].end());
  }
}

INSTANTIATE_TEST_SUITE_P(AllCutMasks, FragmentSweep,
                         ::testing::Range(0, 1 << 10, 37));

// Make() is the checked factory for untrusted boundaries (parser,
// deserialization); the asserting constructor stays for internal callers
// that already hold the invariant.

TEST(IntervalMakeTest, ValidIntervalSucceeds) {
  auto iv = Interval::Make(3, 7);
  ASSERT_TRUE(iv.ok());
  EXPECT_EQ(iv->start(), 3u);
  EXPECT_EQ(iv->end(), 7u);
}

TEST(IntervalMakeTest, UnboundedIntervalSucceeds) {
  auto iv = Interval::Make(0, kTimeInfinity);
  ASSERT_TRUE(iv.ok());
  EXPECT_TRUE(iv->unbounded());
}

TEST(IntervalMakeTest, EmptyIntervalIsRejected) {
  auto iv = Interval::Make(5, 5);
  ASSERT_FALSE(iv.ok());
  EXPECT_EQ(iv.status().code(), StatusCode::kInvalidArgument);
}

TEST(IntervalMakeTest, ReversedIntervalIsRejected) {
  auto iv = Interval::Make(9, 2);
  ASSERT_FALSE(iv.ok());
  EXPECT_EQ(iv.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace tdx
