#include "src/core/align.h"

#include <gtest/gtest.h>

#include "src/gen/workload.h"
#include "tests/test_util.h"

namespace tdx {
namespace {

using ::tdx::testing::ParseOrDie;

// Figure 10 / Corollary 20 on the paper's running example:
// [[c-chase(Ic)]] ~ chase([[Ic]]).
TEST(AlignTest, Corollary20OnPaperExample) {
  auto program = ParseOrDie(testing::kPaperProgram);
  auto report = VerifyCorollary20(program->source, program->mapping,
                                  program->lifted, &program->universe);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->outcome_agreed);
  EXPECT_TRUE(report->forward);
  EXPECT_TRUE(report->backward);
  EXPECT_TRUE(report->aligned());
}

TEST(AlignTest, FailureOutcomesAgree) {
  auto program = ParseOrDie(R"(
    source E(name, company);
    source S(name, salary);
    target Emp(name, company, salary);
    tgd E(n, c) & S(n, s) -> Emp(n, c, s);
    egd Emp(n, c, s) & Emp(n, c, s2) -> s = s2;
    fact E("Ada", "IBM") @ [0, 10);
    fact S("Ada", "18k") @ [2, 8);
    fact S("Ada", "20k") @ [4, 6);
  )");
  auto report = VerifyCorollary20(program->source, program->mapping,
                                  program->lifted, &program->universe);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->outcome_agreed);
  EXPECT_FALSE(report->forward_checked);  // nothing to compare on failure
  EXPECT_TRUE(report->aligned());
}

TEST(AlignTest, MisalignedInstancesDetected) {
  // Deliberately wrong "solution": the salary constant differs from what
  // the c-chase produces, so equivalence fails.
  auto program = ParseOrDie(testing::kPaperProgram);
  auto chase = CChase(program->source, program->lifted, &program->universe);
  ASSERT_TRUE(chase.ok());

  auto wrong_program = ParseOrDie(R"(
    source E(name, company);
    source S(name, salary);
    target Emp(name, company, salary);
    tgd E(n, c) & S(n, s) -> Emp(n, c, s);
    fact E("Ada", "IBM") @ [2013, 2014);
    fact S("Ada", "99k") @ [2013, 2014);
  )");
  auto wrong_chase =
      CChase(wrong_program->source, wrong_program->lifted,
             &wrong_program->universe);
  ASSERT_TRUE(wrong_chase.ok());
  auto wrong_abstract =
      AbstractInstance::FromConcrete(wrong_chase->target);
  ASSERT_TRUE(wrong_abstract.ok());

  auto report = VerifyAlignment(chase->target, *wrong_abstract);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->forward && report->backward);
  EXPECT_FALSE(report->aligned());
}

TEST(AlignTest, GeneratedEmploymentWorkloadsAlign) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    auto w = MakeEmploymentWorkload(
        EmploymentConfig{.num_people = 6, .num_companies = 3, .avg_jobs = 2,
                         .horizon = 30, .salary_known_fraction = 0.6,
                         .inject_conflict = false, .seed = seed});
    auto report =
        VerifyCorollary20(w->source, w->mapping, w->lifted, &w->universe);
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_TRUE(report->aligned()) << "seed=" << seed;
  }
}

TEST(AlignTest, RandomWorkloadsAlignIncludingFailures) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    RandomConfig cfg;
    cfg.num_facts = 30;
    cfg.num_names = 4;
    cfg.num_companies = 2;
    cfg.num_salaries = 3;
    cfg.horizon = 15;
    cfg.max_interval_length = 6;
    cfg.seed = seed;
    auto w = MakeRandomWorkload(cfg);
    auto report =
        VerifyCorollary20(w->source, w->mapping, w->lifted, &w->universe);
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_TRUE(report->outcome_agreed) << "seed=" << seed;
    EXPECT_TRUE(report->aligned()) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace tdx
