#include "src/core/possible.h"

#include <gtest/gtest.h>

#include "src/core/cchase.h"
#include "src/core/naive_eval.h"
#include "tests/test_util.h"

namespace tdx {
namespace {

using ::tdx::testing::ParseOrDie;

class PossibleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    emp_ = *schema_.AddRelation("Emp", {"name", "company", "salary"},
                                SchemaRole::kTarget);
    // q(n, s) :- Emp(n, c, s)
    Atom atom;
    atom.rel = emp_;
    atom.terms = {Term::Var(0), Term::Var(1), Term::Var(2)};
    ConjunctiveQuery q;
    q.body.atoms = {atom};
    q.body.num_vars = 3;
    q.head = {0, 2};
    query_.name = "q";
    query_.disjuncts = {q};
  }

  Universe u_;
  Schema schema_;
  RelationId emp_ = 0;
  UnionQuery query_;
};

TEST_F(PossibleTest, CompleteFactsAreBothCertainAndPossible) {
  Instance db(&schema_);
  db.Insert(emp_, {u_.Constant("Ada"), u_.Constant("IBM"), u_.Constant("18k")});
  const auto possible = PossibleAnswers(query_, db);
  ASSERT_EQ(possible.size(), 1u);
  EXPECT_EQ(possible[0], (Tuple{u_.Constant("Ada"), u_.Constant("18k")}));
}

TEST_F(PossibleTest, NullInHeadPositionIsAWildcard) {
  Instance db(&schema_);
  const Value n = u_.FreshNull();
  db.Insert(emp_, {u_.Constant("Bob"), u_.Constant("IBM"), n});
  const auto possible = PossibleAnswers(query_, db);
  ASSERT_EQ(possible.size(), 1u);
  EXPECT_EQ(possible[0][0], u_.Constant("Bob"));
  EXPECT_EQ(possible[0][1], n);  // any salary is possible
  // Certain answers drop the tuple entirely.
  EXPECT_TRUE(DropTuplesWithNulls(Evaluate(query_, db)).empty());
}

TEST_F(PossibleTest, NullUnifiesWithQueryConstant) {
  // q'(n) :- Emp(n, c, "18k"): with an unknown salary, Bob is possible.
  Atom atom;
  atom.rel = emp_;
  atom.terms = {Term::Var(0), Term::Var(1), Term::Val(u_.Constant("18k"))};
  ConjunctiveQuery q;
  q.body.atoms = {atom};
  q.body.num_vars = 2;
  q.head = {0};
  UnionQuery uq;
  uq.name = "q18";
  uq.disjuncts = {q};

  Instance db(&schema_);
  db.Insert(emp_, {u_.Constant("Bob"), u_.Constant("IBM"), u_.FreshNull()});
  db.Insert(emp_, {u_.Constant("Eve"), u_.Constant("IBM"), u_.Constant("20k")});
  const auto possible = PossibleAnswers(uq, db);
  ASSERT_EQ(possible.size(), 1u);
  EXPECT_EQ(possible[0][0], u_.Constant("Bob"));
  // Standard (certain-flavored) evaluation sees no match at all.
  EXPECT_TRUE(Evaluate(uq, db).empty());
}

TEST_F(PossibleTest, OneNullTakesOneValuePerMatch) {
  // q''() :- Emp(n, c, "18k") & Emp(n, c, "20k"): a single null salary
  // cannot be both 18k and 20k within one valuation.
  Atom a1, a2;
  a1.rel = a2.rel = emp_;
  a1.terms = {Term::Var(0), Term::Var(1), Term::Val(u_.Constant("18k"))};
  a2.terms = {Term::Var(0), Term::Var(1), Term::Val(u_.Constant("20k"))};
  ConjunctiveQuery q;
  q.body.atoms = {a1, a2};
  q.body.num_vars = 2;
  q.head = {};
  UnionQuery uq;
  uq.name = "conflict";
  uq.disjuncts = {q};

  Instance db(&schema_);
  db.Insert(emp_, {u_.Constant("Bob"), u_.Constant("IBM"), u_.FreshNull()});
  EXPECT_TRUE(PossibleAnswers(uq, db).empty());

  // With two distinct nulls the valuation can split: possible.
  Instance db2(&schema_);
  db2.Insert(emp_, {u_.Constant("Bob"), u_.Constant("IBM"), u_.FreshNull()});
  db2.Insert(emp_, {u_.Constant("Bob"), u_.Constant("IBM"), u_.FreshNull()});
  EXPECT_EQ(PossibleAnswers(uq, db2).size(), 1u);  // the empty tuple
}

TEST_F(PossibleTest, TwoNullsUnifyWithEachOther) {
  // q(n1, n2) :- Emp(n1, c, s) & Emp(n2, c, s): join through the salary.
  Atom a1, a2;
  a1.rel = a2.rel = emp_;
  a1.terms = {Term::Var(0), Term::Var(2), Term::Var(3)};
  a2.terms = {Term::Var(1), Term::Var(2), Term::Var(3)};
  ConjunctiveQuery q;
  q.body.atoms = {a1, a2};
  q.body.num_vars = 4;
  q.head = {0, 1};
  UnionQuery uq;
  uq.name = "colleagues";
  uq.disjuncts = {q};

  Instance db(&schema_);
  db.Insert(emp_, {u_.Constant("Ada"), u_.Constant("IBM"), u_.FreshNull()});
  db.Insert(emp_, {u_.Constant("Bob"), u_.Constant("IBM"), u_.FreshNull()});
  // Possible: the two unknown salaries may be equal.
  const auto possible = PossibleAnswers(uq, db);
  bool ada_bob = false;
  for (const Tuple& t : possible) {
    if (t[0] == u_.Constant("Ada") && t[1] == u_.Constant("Bob")) {
      ada_bob = true;
    }
  }
  EXPECT_TRUE(ada_bob);
  // Certain: only the reflexive pairs.
  const auto certain = DropTuplesWithNulls(Evaluate(uq, db));
  EXPECT_EQ(certain.size(), 2u);
}

TEST_F(PossibleTest, CertainAnswersAreAlwaysPossible) {
  auto program = ParseOrDie(testing::kPaperProgram);
  auto chase = CChase(program->source, program->lifted, &program->universe);
  ASSERT_TRUE(chase.ok());
  const UnionQuery& q = **program->FindQuery("salaries");
  auto lifted = LiftUnionQuery(q, program->schema);
  ASSERT_TRUE(lifted.ok());
  auto temporal = NaiveEvaluateConcrete(*lifted, chase->target);
  ASSERT_TRUE(temporal.ok());
  for (TimePoint l : {2012u, 2013u, 2015u, 2020u}) {
    auto possible =
        PossibleAnswersAt(q, chase->target, l, &program->universe);
    ASSERT_TRUE(possible.ok());
    for (const Tuple& t : ConcreteAnswersAt(*temporal, l)) {
      EXPECT_NE(std::find(possible->begin(), possible->end(), t),
                possible->end())
          << "certain answer not possible at l=" << l;
    }
  }
}

TEST_F(PossibleTest, WildcardAnswersAppearWhereCertainHasNone) {
  auto program = ParseOrDie(testing::kPaperProgram);
  auto chase = CChase(program->source, program->lifted, &program->universe);
  ASSERT_TRUE(chase.ok());
  const UnionQuery& q = **program->FindQuery("salaries");
  // 2012: Ada's salary is unknown — certain empty, possible has a wildcard.
  auto possible =
      PossibleAnswersAt(q, chase->target, 2012, &program->universe);
  ASSERT_TRUE(possible.ok());
  ASSERT_EQ(possible->size(), 1u);
  EXPECT_EQ((*possible)[0][0], program->universe.Constant("Ada"));
  EXPECT_TRUE((*possible)[0][1].is_any_null());
}

}  // namespace
}  // namespace tdx
