#include "src/parser/lexer.h"

#include <gtest/gtest.h>

namespace tdx {
namespace {

std::vector<TokenKind> Kinds(const std::vector<Token>& tokens) {
  std::vector<TokenKind> out;
  for (const Token& t : tokens) out.push_back(t.kind);
  return out;
}

TEST(LexerTest, TokenizesFactStatement) {
  auto tokens = Tokenize(R"(fact E("Ada", "IBM") @ [2012, 2014);)");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(Kinds(*tokens),
            (std::vector<TokenKind>{
                TokenKind::kIdentifier, TokenKind::kIdentifier,
                TokenKind::kLParen, TokenKind::kString, TokenKind::kComma,
                TokenKind::kString, TokenKind::kRParen, TokenKind::kAt,
                TokenKind::kLBracket, TokenKind::kNumber, TokenKind::kComma,
                TokenKind::kNumber, TokenKind::kRParen,
                TokenKind::kSemicolon, TokenKind::kEnd}));
  EXPECT_EQ((*tokens)[3].text, "Ada");
  EXPECT_EQ((*tokens)[9].number, 2012u);
}

TEST(LexerTest, ArrowAndAmpersand) {
  auto tokens = Tokenize("E(n, c) & S(n, s) -> Emp(n, c, s)");
  ASSERT_TRUE(tokens.ok());
  bool has_arrow = false, has_amp = false;
  for (const Token& t : *tokens) {
    if (t.kind == TokenKind::kArrow) has_arrow = true;
    if (t.kind == TokenKind::kAmp) has_amp = true;
  }
  EXPECT_TRUE(has_arrow);
  EXPECT_TRUE(has_amp);
}

TEST(LexerTest, CommentsAreSkipped) {
  auto tokens = Tokenize("# a comment\nfoo # trailing\nbar");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 3u);  // foo, bar, end
  EXPECT_EQ((*tokens)[0].text, "foo");
  EXPECT_EQ((*tokens)[1].text, "bar");
}

TEST(LexerTest, LineAndColumnTracking) {
  auto tokens = Tokenize("a\n  b");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].line, 1u);
  EXPECT_EQ((*tokens)[0].column, 1u);
  EXPECT_EQ((*tokens)[1].line, 2u);
  EXPECT_EQ((*tokens)[1].column, 3u);
}

TEST(LexerTest, UnterminatedStringFails) {
  auto tokens = Tokenize("fact E(\"Ada");
  EXPECT_FALSE(tokens.ok());
  EXPECT_EQ(tokens.status().code(), StatusCode::kParseError);
}

TEST(LexerTest, UnexpectedCharacterFails) {
  auto tokens = Tokenize("a $ b");
  EXPECT_FALSE(tokens.ok());
}

TEST(LexerTest, InfIsAnIdentifier) {
  auto tokens = Tokenize("[2014, inf)");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kIdentifier);
  EXPECT_EQ((*tokens)[3].text, "inf");
}

TEST(LexerTest, IdentifiersMayContainPlus) {
  auto tokens = Tokenize("Emp+");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "Emp+");
}

TEST(LexerTest, EmptyInputYieldsEnd) {
  auto tokens = Tokenize("");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 1u);
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kEnd);
}

TEST(LexerTest, NumbersParseValue) {
  auto tokens = Tokenize("18446744073709551614");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].number, 18446744073709551614ull);
}

}  // namespace
}  // namespace tdx
