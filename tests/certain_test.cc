#include "src/core/certain.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace tdx {
namespace {

using ::tdx::testing::ParseOrDie;

class CertainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    program_ = ParseOrDie(testing::kPaperProgram);
    auto lifted =
        LiftUnionQuery(**program_->FindQuery("salaries"), program_->schema);
    ASSERT_TRUE(lifted.ok());
    lifted_query_ = std::make_unique<UnionQuery>(std::move(lifted).value());
  }

  std::unique_ptr<ParsedProgram> program_;
  std::unique_ptr<UnionQuery> lifted_query_;
};

TEST_F(CertainTest, TemporalCertainAnswersOnPaperExample) {
  auto result = CertainAnswers(*lifted_query_, program_->source,
                               program_->lifted, &program_->universe);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->chase_kind, ChaseResultKind::kSuccess);
  Universe& u = program_->universe;
  const Tuple bob{u.Constant("Bob"), u.Constant("13k"),
                  Value::OfInterval(Interval(2015, 2018))};
  EXPECT_NE(std::find(result->answers.begin(), result->answers.end(), bob),
            result->answers.end());
  // Nothing certain about 2012 — Ada's salary is unknown then.
  for (const Tuple& t : result->answers) {
    EXPECT_FALSE(t.back().interval().Contains(2012));
  }
}

// Corollary 22: certain(q, [[Ic]], M) = [[q+(Jc)!]] — the per-snapshot
// oracle (chase the materialized snapshot, naive-evaluate) agrees with
// slicing the temporal answers.
TEST_F(CertainTest, Corollary22AgreesWithSnapshotOracle) {
  auto temporal = CertainAnswers(*lifted_query_, program_->source,
                                 program_->lifted, &program_->universe);
  ASSERT_TRUE(temporal.ok());
  const UnionQuery& q = **program_->FindQuery("salaries");
  for (TimePoint l : {2012u, 2013u, 2014u, 2016u, 2018u, 2025u}) {
    auto oracle = CertainAnswersAt(q, program_->source, program_->mapping, l,
                                   &program_->universe);
    ASSERT_TRUE(oracle.ok());
    ASSERT_EQ(oracle->chase_kind, ChaseResultKind::kSuccess);
    EXPECT_EQ(ConcreteAnswersAt(temporal->answers, l), oracle->answers)
        << "l=" << l;
  }
}

TEST_F(CertainTest, CertainAnswersAreSoundForRandomSolutions) {
  // Every certain answer must hold in arbitrary solutions; solutions are
  // built from the chase result by substituting nulls with constants and
  // adding noise facts.
  auto chase = CChase(program_->source, program_->lifted, &program_->universe);
  ASSERT_TRUE(chase.ok());
  auto certain = CertainAnswers(*lifted_query_, program_->source,
                                program_->lifted, &program_->universe);
  ASSERT_TRUE(certain.ok());

  Universe& u = program_->universe;
  // Substitute every annotated null with a made-up constant; add noise.
  Instance solution = chase->target.facts();
  std::vector<Value> nulls;
  solution.ForEach([&](FactView f) {
    for (const Value& v : f.args()) {
      if (v.is_annotated_null()) nulls.push_back(v);
    }
  });
  int i = 0;
  for (const Value& n : nulls) {
    solution =
        solution.ReplaceValue(n, u.Constant("made_up" + std::to_string(i++)));
  }
  const RelationId emp_plus = *program_->schema.Find("Emp+");
  solution.Insert(emp_plus, {u.Constant("Eve"), u.Constant("ACME"),
                             u.Constant("5k"),
                             Value::OfInterval(Interval(2000, 2005))});
  ConcreteInstance solution_ci(std::move(solution));

  auto jc_abs = AbstractInstance::FromConcrete(solution_ci);
  ASSERT_TRUE(jc_abs.ok());
  const UnionQuery& q = **program_->FindQuery("salaries");
  for (TimePoint l : {2013u, 2016u, 2020u}) {
    const Instance snapshot = jc_abs->At(l, &u);
    const std::vector<Tuple> solution_answers =
        DropTuplesWithNulls(Evaluate(q, snapshot));
    for (const Tuple& t : ConcreteAnswersAt(certain->answers, l)) {
      EXPECT_NE(std::find(solution_answers.begin(), solution_answers.end(), t),
                solution_answers.end())
          << "certain answer missing from a solution at l=" << l;
    }
  }
}

TEST_F(CertainTest, FailureYieldsFailureKind) {
  auto program = ParseOrDie(R"(
    source E(name, company);
    source S(name, salary);
    target Emp(name, company, salary);
    tgd E(n, c) & S(n, s) -> Emp(n, c, s);
    egd Emp(n, c, s) & Emp(n, c, s2) -> s = s2;
    fact E("Ada", "IBM") @ [0, 5);
    fact S("Ada", "18k") @ [0, 5);
    fact S("Ada", "20k") @ [0, 5);
    query q(n, s): Emp(n, _, s);
  )");
  auto lifted = LiftUnionQuery(**program->FindQuery("q"), program->schema);
  ASSERT_TRUE(lifted.ok());
  auto result = CertainAnswers(*lifted, program->source, program->lifted,
                               &program->universe);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->chase_kind, ChaseResultKind::kFailure);
  EXPECT_TRUE(result->answers.empty());
}

}  // namespace
}  // namespace tdx
