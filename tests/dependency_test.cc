#include "src/relational/dependency.h"

#include <gtest/gtest.h>

namespace tdx {
namespace {

class DependencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    e_ = *schema_.AddRelationPair("E", {"name", "company"},
                                  SchemaRole::kSource);
    s_ = *schema_.AddRelationPair("S", {"name", "salary"},
                                  SchemaRole::kSource);
    emp_ = *schema_.AddRelationPair("Emp", {"name", "company", "salary"},
                                    SchemaRole::kTarget);
    e_snap_ = *schema_.TwinOf(e_);
    s_snap_ = *schema_.TwinOf(s_);
    emp_snap_ = *schema_.TwinOf(emp_);
  }

  Atom MakeAtom(RelationId rel, std::vector<Term> terms) {
    Atom atom;
    atom.rel = rel;
    atom.terms = std::move(terms);
    return atom;
  }

  Tgd MakeSigma1() {
    // E(n, c) -> exists s: Emp(n, c, s)
    Tgd tgd;
    tgd.label = "sigma1";
    tgd.body.atoms = {MakeAtom(e_snap_, {Term::Var(0), Term::Var(1)})};
    tgd.head.atoms = {
        MakeAtom(emp_snap_, {Term::Var(0), Term::Var(1), Term::Var(2)})};
    tgd.body.num_vars = tgd.head.num_vars = 3;
    tgd.body.var_names = {"n", "c", "s"};
    return tgd;
  }

  Universe u_;
  Schema schema_;
  RelationId e_ = 0, s_ = 0, emp_ = 0;
  RelationId e_snap_ = 0, s_snap_ = 0, emp_snap_ = 0;
};

TEST_F(DependencyTest, FinalizeComputesExistentialVars) {
  Tgd tgd = MakeSigma1();
  ASSERT_TRUE(tgd.Finalize().ok());
  ASSERT_EQ(tgd.existential.size(), 1u);
  EXPECT_EQ(tgd.existential[0], 2u);
}

TEST_F(DependencyTest, FinalizeRejectsEmptyHead) {
  Tgd tgd = MakeSigma1();
  tgd.head.atoms.clear();
  EXPECT_FALSE(tgd.Finalize().ok());
}

TEST_F(DependencyTest, EgdFinalizeValidatesVariables) {
  Egd egd;
  egd.body.atoms = {
      MakeAtom(emp_snap_, {Term::Var(0), Term::Var(1), Term::Var(2)}),
      MakeAtom(emp_snap_, {Term::Var(0), Term::Var(1), Term::Var(3)})};
  egd.body.num_vars = 4;
  egd.x1 = 2;
  egd.x2 = 3;
  EXPECT_TRUE(egd.Finalize().ok());

  Egd self = egd;
  self.x2 = 2;
  EXPECT_FALSE(self.Finalize().ok());

  Egd missing = egd;
  missing.x2 = 9;
  missing.body.num_vars = 10;
  EXPECT_FALSE(missing.Finalize().ok());
}

TEST_F(DependencyTest, LiftTgdAddsTemporalVariable) {
  Tgd tgd = MakeSigma1();
  ASSERT_TRUE(tgd.Finalize().ok());
  auto lifted = LiftTgd(tgd, schema_);
  ASSERT_TRUE(lifted.ok()) << lifted.status();
  ASSERT_TRUE(lifted->temporal_var.has_value());
  EXPECT_EQ(*lifted->temporal_var, 3u);
  // Every atom moved to its concrete twin and gained the t variable.
  EXPECT_EQ(lifted->body.atoms[0].rel, e_);
  EXPECT_EQ(lifted->body.atoms[0].terms.size(), 3u);
  EXPECT_TRUE(lifted->body.atoms[0].terms.back().is_var());
  EXPECT_EQ(lifted->body.atoms[0].terms.back().var(), 3u);
  EXPECT_EQ(lifted->head.atoms[0].rel, emp_);
  EXPECT_EQ(lifted->head.atoms[0].terms.back().var(), 3u);
  // Existential variables unchanged by lifting.
  ASSERT_EQ(lifted->existential.size(), 1u);
  EXPECT_EQ(lifted->existential[0], 2u);
  EXPECT_EQ(lifted->label, "sigma1+");
}

TEST_F(DependencyTest, LiftEgdAddsTemporalVariable) {
  Egd egd;
  egd.label = "e1";
  egd.body.atoms = {
      MakeAtom(emp_snap_, {Term::Var(0), Term::Var(1), Term::Var(2)}),
      MakeAtom(emp_snap_, {Term::Var(0), Term::Var(1), Term::Var(3)})};
  egd.body.num_vars = 4;
  egd.x1 = 2;
  egd.x2 = 3;
  ASSERT_TRUE(egd.Finalize().ok());
  auto lifted = LiftEgd(egd, schema_);
  ASSERT_TRUE(lifted.ok());
  ASSERT_TRUE(lifted->temporal_var.has_value());
  EXPECT_EQ(*lifted->temporal_var, 4u);
  for (const Atom& atom : lifted->body.atoms) {
    EXPECT_EQ(atom.rel, emp_);
    EXPECT_EQ(atom.terms.back().var(), 4u);
  }
}

TEST_F(DependencyTest, LiftFailsWithoutTwin) {
  Schema bare;
  const RelationId r = *bare.AddRelation("R", {"a"}, SchemaRole::kSource);
  const RelationId t =
      *bare.AddRelation("T", {"a"}, SchemaRole::kTarget);
  Tgd tgd;
  tgd.body.atoms = {MakeAtom(r, {Term::Var(0)})};
  tgd.head.atoms = {MakeAtom(t, {Term::Var(0)})};
  tgd.body.num_vars = tgd.head.num_vars = 1;
  ASSERT_TRUE(tgd.Finalize().ok());
  EXPECT_FALSE(LiftTgd(tgd, bare).ok());
}

TEST_F(DependencyTest, ValidateMappingChecksRoles) {
  Tgd tgd = MakeSigma1();
  ASSERT_TRUE(tgd.Finalize().ok());
  Mapping mapping;
  mapping.st_tgds = {tgd};
  EXPECT_TRUE(ValidateMapping(mapping, schema_).ok());

  // A tgd whose body uses a target relation is rejected.
  Tgd backwards;
  backwards.body.atoms = {
      MakeAtom(emp_snap_, {Term::Var(0), Term::Var(1), Term::Var(2)})};
  backwards.head.atoms = {MakeAtom(e_snap_, {Term::Var(0), Term::Var(1)})};
  backwards.body.num_vars = backwards.head.num_vars = 3;
  ASSERT_TRUE(backwards.Finalize().ok());
  Mapping bad;
  bad.st_tgds = {backwards};
  EXPECT_FALSE(ValidateMapping(bad, schema_).ok());
}

TEST_F(DependencyTest, ValidateMappingChecksArity) {
  Tgd tgd = MakeSigma1();
  tgd.body.atoms[0].terms.push_back(Term::Var(0));  // E with 3 terms
  ASSERT_TRUE(tgd.Finalize().ok());
  Mapping mapping;
  mapping.st_tgds = {tgd};
  EXPECT_FALSE(ValidateMapping(mapping, schema_).ok());
}

TEST_F(DependencyTest, MappingBodiesAccessors) {
  Tgd tgd = MakeSigma1();
  ASSERT_TRUE(tgd.Finalize().ok());
  Egd egd;
  egd.body.atoms = {
      MakeAtom(emp_snap_, {Term::Var(0), Term::Var(1), Term::Var(2)}),
      MakeAtom(emp_snap_, {Term::Var(0), Term::Var(1), Term::Var(3)})};
  egd.body.num_vars = 4;
  egd.x1 = 2;
  egd.x2 = 3;
  ASSERT_TRUE(egd.Finalize().ok());
  Mapping mapping;
  mapping.st_tgds = {tgd};
  mapping.egds = {egd};
  EXPECT_EQ(mapping.TgdBodies().size(), 1u);
  EXPECT_EQ(mapping.EgdBodies().size(), 1u);
}

TEST_F(DependencyTest, ToStringRendersReadably) {
  Tgd tgd = MakeSigma1();
  ASSERT_TRUE(tgd.Finalize().ok());
  EXPECT_EQ(tgd.ToString(schema_, u_),
            "sigma1: E(n, c) -> exists s: Emp(n, c, s)");
}

}  // namespace
}  // namespace tdx
