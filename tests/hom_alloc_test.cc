// Verifies the homomorphism engine is allocation-free in steady state: once
// a finder's scratch buffers and indexes are warm, repeated enumerations
// over an unchanged instance perform zero heap allocations.
//
// The counting allocator overrides global operator new/delete for THIS test
// binary only (each tdx test is its own executable), so the counters see
// every allocation the search makes — frames, probe keys, candidate
// buffers, atom images, all of it.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "src/relational/homomorphism.h"

namespace {

std::atomic<std::size_t> g_allocations{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace tdx {
namespace {

class HomAllocTest : public ::testing::Test {
 protected:
  void SetUp() override {
    e_ = *schema_.AddRelation("E", {"a", "b"}, SchemaRole::kSource);
    instance_ = std::make_unique<Instance>(&schema_);
    // A small dense graph so two-atom joins have work to do.
    for (int i = 0; i < 20; ++i) {
      instance_->Insert(e_, {u_.Constant("n" + std::to_string(i)),
                             u_.Constant("n" + std::to_string((i + 1) % 20))});
      instance_->Insert(e_, {u_.Constant("n" + std::to_string(i)),
                             u_.Constant("n" + std::to_string((i + 7) % 20))});
    }
  }

  /// Two-atom path query E(x, y) & E(y, z).
  Conjunction PathQuery() {
    Conjunction conj;
    conj.num_vars = 3;
    conj.atoms.push_back(Atom{e_, {Term::Var(0), Term::Var(1)}});
    conj.atoms.push_back(Atom{e_, {Term::Var(1), Term::Var(2)}});
    return conj;
  }

  Universe u_;
  Schema schema_;
  RelationId e_ = 0;
  std::unique_ptr<Instance> instance_;
};

TEST_F(HomAllocTest, SteadyStateForEachIsAllocationFree) {
  HomomorphismFinder finder(*instance_);
  const Conjunction conj = PathQuery();
  Binding binding(conj.num_vars);
  std::size_t count = 0;
  const auto cb = [&](const Binding&, const AtomImage&) {
    ++count;
    return true;
  };
  // Warm-up: builds indexes, sizes scratch frames, grows the image.
  finder.ForEach(conj, &binding, cb);
  const std::size_t warm_count = count;
  ASSERT_GT(warm_count, 0u);

  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  for (int round = 0; round < 5; ++round) {
    count = 0;
    finder.ForEach(conj, &binding, cb);
    EXPECT_EQ(count, warm_count);
  }
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed), before)
      << "ForEach allocated in steady state";
}

TEST_F(HomAllocTest, SteadyStateForEachSeededIsAllocationFree) {
  HomomorphismFinder finder(*instance_);
  const Conjunction conj = PathQuery();
  Binding binding(conj.num_vars);
  const std::uint32_t n =
      static_cast<std::uint32_t>(instance_->facts(e_).size());
  std::size_t count = 0;
  const auto cb = [&](const Binding&, const AtomImage&) {
    ++count;
    return true;
  };
  // Warm up both seed atoms (semi-naive rounds seed each body atom).
  finder.ForEachSeeded(conj, 0, 0, n, &binding, cb);
  finder.ForEachSeeded(conj, 1, 0, n, &binding, cb);
  const std::size_t warm_count = count;
  ASSERT_GT(warm_count, 0u);

  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  for (int round = 0; round < 5; ++round) {
    count = 0;
    finder.ForEachSeeded(conj, 0, 0, n, &binding, cb);
    finder.ForEachSeeded(conj, 1, 0, n, &binding, cb);
    EXPECT_EQ(count, warm_count);
  }
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed), before)
      << "ForEachSeeded allocated in steady state";
}

}  // namespace
}  // namespace tdx
