#include "src/relational/instance.h"

#include <gtest/gtest.h>

namespace tdx {
namespace {

class InstanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto e = schema_.AddRelation("E", {"name", "company"}, SchemaRole::kSource);
    ASSERT_TRUE(e.ok());
    e_ = *e;
    auto s = schema_.AddRelation("S", {"name", "salary"}, SchemaRole::kSource);
    ASSERT_TRUE(s.ok());
    s_ = *s;
  }

  Universe u_;
  Schema schema_;
  RelationId e_ = 0;
  RelationId s_ = 0;
};

TEST_F(InstanceTest, InsertAndContains) {
  Instance inst(&schema_);
  const Fact f(e_, {u_.Constant("Ada"), u_.Constant("IBM")});
  EXPECT_TRUE(inst.Insert(f));
  EXPECT_TRUE(inst.Contains(f));
  EXPECT_EQ(inst.size(), 1u);
}

TEST_F(InstanceTest, DuplicateInsertIsNoop) {
  Instance inst(&schema_);
  const Fact f(e_, {u_.Constant("Ada"), u_.Constant("IBM")});
  EXPECT_TRUE(inst.Insert(f));
  EXPECT_FALSE(inst.Insert(f));
  EXPECT_EQ(inst.size(), 1u);
  EXPECT_EQ(inst.facts(e_).size(), 1u);
}

TEST_F(InstanceTest, EraseRemovesEverywhere) {
  Instance inst(&schema_);
  const Fact f(e_, {u_.Constant("Ada"), u_.Constant("IBM")});
  inst.Insert(f);
  EXPECT_TRUE(inst.Erase(f));
  EXPECT_FALSE(inst.Contains(f));
  EXPECT_TRUE(inst.facts(e_).empty());
  EXPECT_FALSE(inst.Erase(f));
}

TEST_F(InstanceTest, FactsAreKeptPerRelation) {
  Instance inst(&schema_);
  inst.Insert(e_, {u_.Constant("Ada"), u_.Constant("IBM")});
  inst.Insert(s_, {u_.Constant("Ada"), u_.Constant("18k")});
  EXPECT_EQ(inst.facts(e_).size(), 1u);
  EXPECT_EQ(inst.facts(s_).size(), 1u);
  EXPECT_EQ(inst.size(), 2u);
}

TEST_F(InstanceTest, ForEachVisitsAllFacts) {
  Instance inst(&schema_);
  inst.Insert(e_, {u_.Constant("Ada"), u_.Constant("IBM")});
  inst.Insert(s_, {u_.Constant("Ada"), u_.Constant("18k")});
  std::size_t count = 0;
  inst.ForEach([&](FactView) { ++count; });
  EXPECT_EQ(count, 2u);
}

TEST_F(InstanceTest, ReplaceValueSubstitutesEverywhere) {
  Instance inst(&schema_);
  const Value n = u_.FreshNull();
  inst.Insert(e_, {u_.Constant("Ada"), n});
  inst.Insert(s_, {n, u_.Constant("18k")});
  const Instance replaced = inst.ReplaceValue(n, u_.Constant("IBM"));
  EXPECT_TRUE(replaced.Contains(
      Fact(e_, {u_.Constant("Ada"), u_.Constant("IBM")})));
  EXPECT_TRUE(replaced.Contains(
      Fact(s_, {u_.Constant("IBM"), u_.Constant("18k")})));
  EXPECT_EQ(replaced.size(), 2u);
}

TEST_F(InstanceTest, ReplaceValueCollapsesDuplicates) {
  Instance inst(&schema_);
  const Value n = u_.FreshNull();
  inst.Insert(e_, {u_.Constant("Ada"), n});
  inst.Insert(e_, {u_.Constant("Ada"), u_.Constant("IBM")});
  const Instance replaced = inst.ReplaceValue(n, u_.Constant("IBM"));
  EXPECT_EQ(replaced.size(), 1u);
}

TEST_F(InstanceTest, UnionMergesSets) {
  Instance a(&schema_);
  a.Insert(e_, {u_.Constant("Ada"), u_.Constant("IBM")});
  Instance b(&schema_);
  b.Insert(e_, {u_.Constant("Ada"), u_.Constant("IBM")});
  b.Insert(s_, {u_.Constant("Ada"), u_.Constant("18k")});
  const Instance merged = Instance::Union(a, b);
  EXPECT_EQ(merged.size(), 2u);
}

TEST_F(InstanceTest, EqualityIsSetEquality) {
  Instance a(&schema_);
  Instance b(&schema_);
  a.Insert(e_, {u_.Constant("Ada"), u_.Constant("IBM")});
  a.Insert(s_, {u_.Constant("Ada"), u_.Constant("18k")});
  b.Insert(s_, {u_.Constant("Ada"), u_.Constant("18k")});
  b.Insert(e_, {u_.Constant("Ada"), u_.Constant("IBM")});
  EXPECT_EQ(a, b);
  b.Insert(e_, {u_.Constant("Bob"), u_.Constant("IBM")});
  EXPECT_NE(a, b);
}

TEST_F(InstanceTest, ToStringIsSortedAndDeterministic) {
  Instance inst(&schema_);
  inst.Insert(s_, {u_.Constant("Ada"), u_.Constant("18k")});
  inst.Insert(e_, {u_.Constant("Ada"), u_.Constant("IBM")});
  EXPECT_EQ(inst.ToString(u_), "E(Ada, IBM)\nS(Ada, 18k)\n");
}

TEST_F(InstanceTest, FactDataEquals) {
  auto ep = schema_.AddTemporalRelation("E+", {"name", "company"},
                                        SchemaRole::kSource);
  ASSERT_TRUE(ep.ok());
  const Fact f1(*ep, {u_.Constant("Ada"), u_.Constant("IBM"),
                      Value::OfInterval(Interval(1, 3))});
  const Fact f2(*ep, {u_.Constant("Ada"), u_.Constant("IBM"),
                      Value::OfInterval(Interval(5, 9))});
  const Fact f3(*ep, {u_.Constant("Bob"), u_.Constant("IBM"),
                      Value::OfInterval(Interval(1, 3))});
  EXPECT_TRUE(f1.DataEquals(f2));
  EXPECT_FALSE(f1.DataEquals(f3));
  EXPECT_EQ(f1.interval(), Interval(1, 3));
}

TEST_F(InstanceTest, FactWithIntervalReannotatesNulls) {
  auto ep = schema_.AddTemporalRelation("E+", {"name", "company"},
                                        SchemaRole::kSource);
  ASSERT_TRUE(ep.ok());
  const Value n = u_.FreshAnnotatedNull(Interval(1, 9));
  const Fact f(*ep, {u_.Constant("Ada"), n, Value::OfInterval(Interval(1, 9))});
  const Fact frag = f.WithInterval(Interval(1, 4));
  EXPECT_EQ(frag.interval(), Interval(1, 4));
  ASSERT_TRUE(frag.arg(1).is_annotated_null());
  EXPECT_EQ(frag.arg(1).interval(), Interval(1, 4));
  EXPECT_EQ(frag.arg(1).null_id(), n.null_id());
}

}  // namespace
}  // namespace tdx
