// tdx command-line interface.
//
// Reads a tdx program file (schemas, mapping, facts, queries — see
// src/parser/parser.h for the format) and runs one of:
//
//   tdx_cli chase <file>           c-chase; print the concrete solution
//   tdx_cli normalize <file>       print norm(Ic, lhs(Sigma_st)) and the
//                                  naive normalization side by side
//   tdx_cli abstract <file>        print the abstract view of the source
//   tdx_cli query <file> <name>    certain answers for the named query
//   tdx_cli verify <file>          check Corollary 20 on the instance
//   tdx_cli core <file>            c-chase, then the core of the solution
//   tdx_cli snapshots <file> <l..> print target snapshots at time points
//   tdx_cli emit <file>            re-emit the parsed program (round-trip)
//   tdx_cli possible <file> <q> <l> possible answers of query q at time l
//   tdx_cli query-at <file> <q> <l..> per-snapshot certain answers of q,
//                                  chasing the snapshots in parallel (--jobs)
//   tdx_cli resume <file> <ckpt>   continue a checkpointed c-chase run
//   tdx_cli plan <file>            print the chase schedule (strata, skipped
//                                  rules, parallel groups, graph edges)
//
// Resource-governance flags (any command; default unlimited):
//
//   --max-tgd-fires=N --max-egd-steps=N --max-fresh-nulls=N --max-facts=N
//   --max-fragments=N --deadline-ms=N
//   --max-input-bytes=N --max-tokens=N --max-nesting-depth=N
//
// Execution flags: --jobs=N (0 = all cores), --stats, --naive-chase,
// --no-schedule (ignore the chase planner's schedule: run every rule and
// every egd/normalization pass, as if the planner did not exist), and
// --format=text|json (plan command only)
//
// Checkpointing (chase/core/resume): --checkpoint=PATH writes a resumable
// checkpoint at every phase boundary and every --checkpoint-every=N-th
// target-tgd round seam (default 16). `tdx_cli resume <file> <ckpt>`
// continues the run to the bit-identical result, charging any resource
// limits against the remaining (not a reset) budget. --inject-fault=SITE
// (optionally SITE@SKIP to let the first SKIP hits pass) arms a named
// fault site — see kRegisteredFaultSites — for the chaos harness.
//
// A chase that exhausts its budget prints "ABORTED (<dimension>): <reason>"
// and exits non-zero; the partial target is never printed as a solution.
//
// Exit codes: 0 success; 1 error (bad input, I/O, internal); 2 usage;
// 3 no solution exists (chase failure is an answer, not an error);
// 4 aborted (budget exhausted or injected fault; partial state only).

#include <charconv>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/analysis/analyzer.h"
#include "src/analysis/planner.h"
#include "src/common/checkpoint.h"
#include "src/common/resource.h"
#include "src/common/thread_pool.h"
#include "src/core/align.h"
#include "src/core/certain.h"
#include "src/core/naive_eval.h"
#include "src/core/normalize.h"
#include "src/core/possible.h"
#include "src/core/satisfaction.h"
#include "src/core/solution_core.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/parser/parser.h"
#include "src/parser/serialize.h"
#include "src/parser/printer.h"
#include "src/temporal/abstract_chase.h"
#include "src/temporal/snapshot.h"

namespace {

// Exit codes (documented in the file comment and README): distinguishing
// "no solution exists" and "aborted under budget" from plain errors lets
// the chaos harness and CI assert on the precise outcome.
constexpr int kExitSuccess = 0;
constexpr int kExitError = 1;
constexpr int kExitUsage = 2;
constexpr int kExitNoSolution = 3;
constexpr int kExitAborted = 4;

int Usage() {
  std::cerr
      << "usage: tdx_cli <command> <program-file> [args] [flags]\n"
         "commands:\n"
         "  chase      run the c-chase and print the concrete solution\n"
         "  normalize  print Algorithm-1 and naive normalizations\n"
         "  abstract   print the abstract view of the source\n"
         "  query      certain answers: tdx_cli query <file> <query-name>\n"
         "  verify     check Corollary 20 (c-chase vs abstract chase)\n"
         "  core       c-chase, then the core of the solution\n"
         "  snapshots  print target snapshots: tdx_cli snapshots <file> <l>...\n"
         "  emit       re-emit the parsed program in the text format\n"
         "  possible   possible answers: tdx_cli possible <file> <q> <l>\n"
         "  query-at   per-snapshot certain answers:\n"
         "             tdx_cli query-at <file> <query-name> <l>...\n"
         "  resume     continue a checkpointed c-chase:\n"
         "             tdx_cli resume <file> <checkpoint-file>\n"
         "  plan       print the chase schedule: strata, skipped rules,\n"
         "             parallel groups, and the dependency-graph edges\n"
         "flags (default unlimited):\n"
         "  --max-tgd-fires=N     abort the chase after N tgd firings\n"
         "  --max-egd-steps=N     abort after N egd applications\n"
         "  --max-fresh-nulls=N   abort after minting N labeled nulls\n"
         "  --max-facts=N         abort once the target holds N facts\n"
         "  --max-fragments=N     abort a normalization pass at N fragments\n"
         "  --deadline-ms=N       abort any engine after N milliseconds\n"
         "  --max-input-bytes=N   reject program files larger than N bytes\n"
         "  --max-tokens=N        reject programs with more than N tokens\n"
         "  --max-nesting-depth=N reject atoms nested deeper than N\n"
         "  --no-lint             skip the static-analysis warnings pass\n"
         "  --jobs=N              snapshot-parallel commands use N threads\n"
         "                        (0 = all hardware threads; default 1)\n"
         "  --stats               print chase statistics after chase/core\n"
         "  --naive-chase         disable semi-naive target-tgd rounds\n"
         "  --no-schedule         ignore the chase planner's schedule: run\n"
         "                        every rule and every egd pass unconditionally\n"
         "  --no-incremental-normalize  re-run every target normalization\n"
         "                        pass from scratch instead of reusing the\n"
         "                        previous pass's components (same output)\n"
         "  --format=FMT          plan output format: text (default) or json\n"
         "  --checkpoint=PATH     chase/core/resume: write a resumable\n"
         "                        checkpoint to PATH at every safe point\n"
         "  --checkpoint-every=N  persist every N-th round-level safe point\n"
         "                        (default 16; boundaries always persist)\n"
         "  --inject-fault=SITE[@SKIP]  arm a named fault site (chaos\n"
         "                        harness); SKIP hits pass before it fires\n"
         "  --trace-out=FILE      write a Chrome-trace JSON of the run\n"
         "                        (load in chrome://tracing or Perfetto)\n"
         "  --metrics-out=FILE    write the run's metrics snapshot as JSON\n"
         "exit codes: 0 success, 1 error, 2 usage, 3 no solution, 4 aborted\n";
  return kExitUsage;
}

struct CliOptions {
  tdx::ChaseLimits limits;
  tdx::ParseLimits parse_limits;
  bool lint = true;
  bool stats = false;
  bool semi_naive = true;
  bool scheduled = true;
  bool incremental_normalize = true;
  std::string format = "text";
  unsigned jobs = 1;
  std::string checkpoint_path;
  std::size_t checkpoint_every = 16;
  std::string inject_fault;  // "site" or "site@skip"
  std::string trace_out;     // Chrome-trace JSON destination ("" = off)
  std::string metrics_out;   // metrics-snapshot JSON destination ("" = off)
  // Wired by main() after the program is parsed (the checkpointer needs the
  // parsed schema/universe); consumed by RunCChase.
  tdx::Checkpointer* checkpointer = nullptr;
  const tdx::ChaseCheckpoint* resume_from = nullptr;
};

bool ParseSize(std::string_view text, std::size_t* out) {
  const char* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(text.data(), end, *out);
  return ec == std::errc() && ptr == end;
}

// Consumes `--flag=N` arguments into `options`; everything else (command,
// file, positional args) is appended to `positional`. Returns false and
// prints a diagnostic on a malformed or unknown flag.
bool ParseFlags(int argc, char** argv, CliOptions* options,
                std::vector<std::string>* positional) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional->emplace_back(arg);
      continue;
    }
    if (arg == "--no-lint") {
      options->lint = false;
      continue;
    }
    if (arg == "--stats") {
      options->stats = true;
      continue;
    }
    if (arg == "--naive-chase") {
      options->semi_naive = false;
      continue;
    }
    if (arg == "--no-schedule") {
      options->scheduled = false;
      continue;
    }
    if (arg == "--no-incremental-normalize") {
      options->incremental_normalize = false;
      continue;
    }
    const std::size_t eq = arg.find('=');
    if (eq == std::string_view::npos) {
      std::cerr << "flag '" << arg << "' expects --flag=N\n";
      return false;
    }
    const std::string_view name = arg.substr(0, eq);
    const std::string_view value = arg.substr(eq + 1);
    // String-valued flags come before the numeric conversion.
    if (name == "--checkpoint") {
      options->checkpoint_path = std::string(value);
      continue;
    }
    if (name == "--inject-fault") {
      options->inject_fault = std::string(value);
      continue;
    }
    if (name == "--trace-out") {
      options->trace_out = std::string(value);
      continue;
    }
    if (name == "--metrics-out") {
      options->metrics_out = std::string(value);
      continue;
    }
    if (name == "--format") {
      if (value != "text" && value != "json") {
        std::cerr << "--format expects 'text' or 'json', got '" << value
                  << "'\n";
        return false;
      }
      options->format = std::string(value);
      continue;
    }
    std::size_t n = 0;
    if (!ParseSize(value, &n)) {
      std::cerr << "flag '" << name << "' expects a non-negative integer, got '"
                << value << "'\n";
      return false;
    }
    if (name == "--max-tgd-fires") {
      options->limits.max_tgd_fires = n;
    } else if (name == "--max-egd-steps") {
      options->limits.max_egd_steps = n;
    } else if (name == "--max-fresh-nulls") {
      options->limits.max_fresh_nulls = n;
    } else if (name == "--max-facts") {
      options->limits.max_facts = n;
    } else if (name == "--max-fragments") {
      options->limits.max_normalize_fragments = n;
    } else if (name == "--deadline-ms") {
      options->limits.deadline = std::chrono::milliseconds(n);
    } else if (name == "--max-input-bytes") {
      options->parse_limits.max_input_bytes = n;
    } else if (name == "--max-tokens") {
      options->parse_limits.max_tokens = n;
    } else if (name == "--max-nesting-depth") {
      options->parse_limits.max_nesting_depth = n;
    } else if (name == "--jobs") {
      options->jobs =
          n == 0 ? tdx::ThreadPool::HardwareJobs() : static_cast<unsigned>(n);
    } else if (name == "--checkpoint-every") {
      options->checkpoint_every = n;
    } else {
      std::cerr << "unknown flag '" << name << "'\n";
      return false;
    }
  }
  return true;
}

tdx::Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return tdx::Status::NotFound("cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// Prints the structured abort line. The partial target is deliberately not
// rendered: an aborted chase never produced a solution.
int ReportAbort(tdx::ResourceDimension dimension, const std::string& reason) {
  std::cout << "ABORTED (" << tdx::ResourceDimensionToString(dimension)
            << "): " << reason << "\n";
  return kExitAborted;
}

tdx::Result<tdx::CChaseOutcome> RunCChase(tdx::ParsedProgram& program,
                                          const CliOptions& options) {
  tdx::CChaseOptions chase_options;
  chase_options.limits = options.limits;
  chase_options.semi_naive = options.semi_naive;
  chase_options.scheduled = options.scheduled;
  chase_options.incremental_normalize = options.incremental_normalize;
  chase_options.jobs = options.jobs;
  chase_options.checkpointer = options.checkpointer;
  chase_options.resume_from = options.resume_from;
  return tdx::CChase(program.source, program.lifted, &program.universe,
                     chase_options);
}

void PrintChaseStats(const tdx::ChaseStats& stats) {
  std::cout << "(stats: triggers=" << stats.tgd_triggers
            << " fires=" << stats.tgd_fires << " egd_steps=" << stats.egd_steps
            << " fresh_nulls=" << stats.fresh_nulls
            << " values_rewritten=" << stats.values_rewritten
            << " schedule_strata=" << stats.schedule_strata
            << " skipped_egd_passes=" << stats.skipped_egd_passes
            << " skipped_normalize_passes=" << stats.skipped_normalize_passes
            << " index_probes=" << stats.search.index_probes
            << " index_candidates=" << stats.search.index_candidates
            << " full_scans=" << stats.search.full_scans
            << ")\n";
}

void PrintNormStats(const char* label, const tdx::NormalizeStats& stats) {
  std::cout << "(" << label << ": input=" << stats.input_facts
            << " output=" << stats.output_facts
            << " homs=" << stats.homomorphisms << " groups=" << stats.groups
            << " delta=" << stats.delta_facts
            << " dirty=" << stats.dirty_components
            << " reused=" << stats.reused_components
            << " partial=" << (stats.partial ? 1 : 0) << ")\n";
}

int RunChase(tdx::ParsedProgram& program, const CliOptions& options,
             bool with_core) {
  auto chase = RunCChase(program, options);
  if (!chase.ok()) {
    std::cerr << chase.status() << "\n";
    return kExitError;
  }
  if (chase->kind == tdx::ChaseResultKind::kAborted) {
    return ReportAbort(chase->abort_dimension, chase->abort_reason);
  }
  if (chase->kind == tdx::ChaseResultKind::kFailure) {
    std::cout << "NO SOLUTION: " << chase->failure_reason << "\n";
    return kExitNoSolution;
  }
  if (with_core) {
    tdx::CoreStats stats;
    const tdx::ConcreteInstance core =
        tdx::ComputeConcreteCore(chase->target, &stats);
    std::cout << tdx::RenderConcreteInstance(core, program.universe);
    std::cout << "(core: removed " << stats.facts_removed << " of "
              << chase->target.size() << " facts)\n";
  } else {
    std::cout << tdx::RenderConcreteInstance(chase->target, program.universe);
  }
  if (options.stats) {
    PrintChaseStats(chase->stats);
    PrintNormStats("norm-source", chase->source_norm_stats);
    PrintNormStats("norm-target", chase->target_norm_stats);
  }
  return EXIT_SUCCESS;
}

// Per-snapshot certain answers for a batch of time points; the snapshot
// chases fan out over --jobs threads (core/certain.h).
int RunQueryAt(tdx::ParsedProgram& program, const CliOptions& options,
               const std::vector<std::string>& positional) {
  auto query = program.FindQuery(positional[2]);
  if (!query.ok()) {
    std::cerr << query.status() << "\n";
    return EXIT_FAILURE;
  }
  std::vector<tdx::TimePoint> points;
  for (std::size_t i = 3; i < positional.size(); ++i) {
    points.push_back(std::stoull(positional[i]));
  }
  auto results = tdx::CertainAnswersAtMany(**query, program.source,
                                           program.mapping, points,
                                           &program.universe, options.jobs,
                                           options.limits);
  if (!results.ok()) {
    std::cerr << results.status() << "\n";
    return EXIT_FAILURE;
  }
  for (std::size_t i = 0; i < points.size(); ++i) {
    const tdx::CertainAnswersResult& result = (*results)[i];
    std::cout << "--- certain(" << positional[2] << ", db_" << points[i]
              << ") ---\n";
    if (result.chase_kind == tdx::ChaseResultKind::kAborted) {
      std::cout << "ABORTED: chase budget exhausted; answers are unknown\n";
      return kExitAborted;
    }
    if (result.chase_kind == tdx::ChaseResultKind::kFailure) {
      std::cout << "NO SOLUTION\n";
      continue;
    }
    std::cout << tdx::RenderAnswers(result.answers, program.universe);
  }
  return EXIT_SUCCESS;
}

int RunNormalize(tdx::ParsedProgram& program, const CliOptions& options) {
  tdx::ResourceGuard guard(options.limits);
  tdx::NormalizeStats alg, naive;
  const tdx::ConcreteInstance by_alg = tdx::Normalize(
      program.source, program.lifted.TgdBodies(), &alg, &guard);
  if (guard.tripped()) return ReportAbort(guard.dimension(), guard.reason());
  const tdx::ConcreteInstance by_naive =
      tdx::NaiveNormalize(program.source, &naive, &guard);
  if (guard.tripped()) return ReportAbort(guard.dimension(), guard.reason());
  std::cout << "--- norm(Ic, lhs(Sigma_st)), " << alg.output_facts
            << " facts ---\n"
            << tdx::RenderConcreteInstance(by_alg, program.universe)
            << "\n--- naive normalization, " << naive.output_facts
            << " facts ---\n"
            << tdx::RenderConcreteInstance(by_naive, program.universe);
  return EXIT_SUCCESS;
}

int RunAbstract(tdx::ParsedProgram& program) {
  auto ia = tdx::AbstractInstance::FromConcrete(program.source);
  if (!ia.ok()) {
    std::cerr << ia.status() << "\n";
    return EXIT_FAILURE;
  }
  std::cout << tdx::RenderAbstractInstance(*ia, program.universe);
  return EXIT_SUCCESS;
}

int RunQuery(tdx::ParsedProgram& program, const CliOptions& options,
             const std::string& name) {
  auto query = program.FindQuery(name);
  if (!query.ok()) {
    std::cerr << query.status() << "\n";
    return EXIT_FAILURE;
  }
  auto lifted = tdx::LiftUnionQuery(**query, program.schema);
  if (!lifted.ok()) {
    std::cerr << lifted.status() << "\n";
    return EXIT_FAILURE;
  }
  auto result = tdx::CertainAnswers(*lifted, program.source, program.lifted,
                                    &program.universe, options.limits);
  if (!result.ok()) {
    if (result.status().code() == tdx::StatusCode::kResourceExhausted ||
        result.status().code() == tdx::StatusCode::kDeadlineExceeded) {
      std::cout << "ABORTED: " << result.status().message() << "\n";
      return kExitAborted;
    }
    std::cerr << result.status() << "\n";
    return EXIT_FAILURE;
  }
  if (result->chase_kind == tdx::ChaseResultKind::kAborted) {
    std::cout << "ABORTED: chase budget exhausted; answers are unknown\n";
    return kExitAborted;
  }
  if (result->chase_kind == tdx::ChaseResultKind::kFailure) {
    std::cout << "NO SOLUTION\n";
    return kExitNoSolution;
  }
  std::cout << tdx::RenderAnswers(result->answers, program.universe);
  return EXIT_SUCCESS;
}

int RunVerify(tdx::ParsedProgram& program, const CliOptions& options) {
  // Independent oracle first: the c-chase result must satisfy the mapping.
  auto chase = RunCChase(program, options);
  if (chase.ok() && chase->kind == tdx::ChaseResultKind::kAborted) {
    return ReportAbort(chase->abort_dimension, chase->abort_reason);
  }
  if (chase.ok() && chase->kind == tdx::ChaseResultKind::kSuccess) {
    auto sat = tdx::CheckSolution(program.source, chase->target,
                                  program.mapping, &program.universe);
    if (!sat.ok()) {
      std::cerr << sat.status() << "\n";
      return EXIT_FAILURE;
    }
    std::cout << "target satisfies the mapping: "
              << (sat->satisfied ? "yes" : ("NO (" + sat->violation + ")"))
              << "\n";
  }
  auto report = tdx::VerifyCorollary20(program.source, program.mapping,
                                       program.lifted, &program.universe);
  if (!report.ok()) {
    std::cerr << report.status() << "\n";
    return EXIT_FAILURE;
  }
  std::cout << "chase outcomes agree: "
            << (report->outcome_agreed ? "yes" : "NO") << "\n";
  if (report->forward_checked) {
    std::cout << "[[c-chase(Ic)]] -> chase([[Ic]]): "
              << (report->forward ? "yes" : "NO") << "\n"
              << "chase([[Ic]]) -> [[c-chase(Ic)]]: "
              << (report->backward ? "yes" : "NO") << "\n";
  }
  std::cout << (report->aligned() ? "ALIGNED (Corollary 20 verified)"
                                  : "MISALIGNED")
            << "\n";
  return report->aligned() ? EXIT_SUCCESS : EXIT_FAILURE;
}

int RunSnapshots(tdx::ParsedProgram& program, const CliOptions& options,
                 const std::vector<std::string>& positional) {
  auto chase = RunCChase(program, options);
  if (chase.ok() && chase->kind == tdx::ChaseResultKind::kAborted) {
    return ReportAbort(chase->abort_dimension, chase->abort_reason);
  }
  if (!chase.ok() || chase->kind != tdx::ChaseResultKind::kSuccess) {
    std::cerr << "chase failed\n";
    return EXIT_FAILURE;
  }
  auto ja = tdx::AbstractInstance::FromConcrete(chase->target);
  if (!ja.ok()) {
    std::cerr << ja.status() << "\n";
    return EXIT_FAILURE;
  }
  for (std::size_t i = 2; i < positional.size(); ++i) {
    const tdx::TimePoint l = std::stoull(positional[i]);
    std::cout << "--- db_" << l << " ---\n"
              << tdx::RenderInstanceTables(ja->At(l, &program.universe),
                                           program.universe);
  }
  return EXIT_SUCCESS;
}

// Renders the chase planner's schedule for the program's mapping. The
// parser attaches a schedule during certification; re-plan only if it is
// absent (hand-built mappings).
int RunPlan(tdx::ParsedProgram& program, const CliOptions& options) {
  std::optional<tdx::ChaseSchedule> derived;
  const tdx::ChaseSchedule* schedule;
  if (program.mapping.schedule.has_value()) {
    schedule = &*program.mapping.schedule;
  } else {
    derived = tdx::PlanChase(program.mapping, program.schema);
    schedule = &*derived;
  }
  if (options.format == "json") {
    std::cout << schedule->ToJson() << "\n";
  } else {
    std::cout << schedule->ToText();
  }
  return EXIT_SUCCESS;
}

// The whole command pipeline — read, parse, lint, dispatch — so main() can
// wrap it in one root trace span and flush --trace-out/--metrics-out on
// every exit path (including usage errors and aborts).
int RunCli(CliOptions& options, const std::vector<std::string>& positional) {
  if (positional.size() < 2) return Usage();
  const std::string& command = positional[0];

  // Arm the chaos fault before anything that can hit a site (the parser
  // has one). "site" fires on the first hit; "site@K" lets K hits pass.
  if (!options.inject_fault.empty()) {
    std::string site = options.inject_fault;
    std::size_t skip = 0;
    const std::size_t at = site.find('@');
    if (at != std::string::npos) {
      if (!ParseSize(site.substr(at + 1), &skip)) {
        std::cerr << "--inject-fault expects SITE or SITE@SKIP, got '"
                  << options.inject_fault << "'\n";
        return Usage();
      }
      site.resize(at);
    }
    tdx::FaultRegistry::Arm(site, tdx::Status::Internal("injected fault"),
                            skip);
  }

  auto text = ReadFile(positional[1]);
  if (!text.ok()) {
    std::cerr << text.status() << "\n";
    return kExitError;
  }
  auto parsed = tdx::ParseProgram(*text, options.parse_limits);
  if (!parsed.ok()) {
    std::cerr << parsed.status() << "\n";
    return kExitError;
  }
  tdx::ParsedProgram& program = **parsed;

  // Checkpointing wiring for the chase-family commands. The checkpointer
  // lives here (not in CliOptions) because it borrows the parsed program's
  // schema and universe.
  tdx::Checkpointer checkpointer(options.checkpoint_path, &program.schema,
                                 &program.universe);
  checkpointer.set_cadence(options.checkpoint_every);
  checkpointer.set_fingerprint(tdx::FingerprintText(*text));
  if (!options.checkpoint_path.empty()) options.checkpointer = &checkpointer;

  // Advisory static-analysis pass: warnings and notes go to stderr so they
  // never corrupt command output; a parsed program cannot carry lint
  // *errors* (the parser already rejects those). Run tdx_lint for the full
  // report.
  if (options.lint) {
    const tdx::AnalysisReport report = tdx::AnalyzeProgram(program);
    for (const tdx::Diagnostic& d : report.diagnostics) {
      std::cerr << tdx::RenderDiagnostic(d, positional[1]);
    }
  }

  if (command == "chase") return RunChase(program, options, false);
  if (command == "core") return RunChase(program, options, true);
  if (command == "resume") {
    if (positional.size() < 3) return Usage();
    auto checkpoint = tdx::LoadChaseCheckpoint(
        positional[2], *text, &program.schema, &program.universe);
    if (!checkpoint.ok()) {
      std::cerr << checkpoint.status() << "\n";
      return kExitError;
    }
    if (checkpoint->engine != tdx::ChaseCheckpoint::Engine::kCChase) {
      std::cerr << "resume supports c-chase checkpoints only (run with "
                   "'chase --checkpoint=...')\n";
      return kExitError;
    }
    options.resume_from = &*checkpoint;
    return RunChase(program, options, false);
  }
  if (command == "plan") return RunPlan(program, options);
  if (command == "normalize") return RunNormalize(program, options);
  if (command == "abstract") return RunAbstract(program);
  if (command == "verify") return RunVerify(program, options);
  if (command == "query") {
    if (positional.size() < 3) return Usage();
    return RunQuery(program, options, positional[2]);
  }
  if (command == "snapshots") return RunSnapshots(program, options, positional);
  if (command == "query-at") {
    if (positional.size() < 4) return Usage();
    return RunQueryAt(program, options, positional);
  }
  if (command == "possible") {
    if (positional.size() < 4) return Usage();
    auto chase = RunCChase(program, options);
    if (chase.ok() && chase->kind == tdx::ChaseResultKind::kAborted) {
      return ReportAbort(chase->abort_dimension, chase->abort_reason);
    }
    if (!chase.ok() || chase->kind != tdx::ChaseResultKind::kSuccess) {
      std::cerr << "chase failed\n";
      return EXIT_FAILURE;
    }
    auto query = program.FindQuery(positional[2]);
    if (!query.ok()) {
      std::cerr << query.status() << "\n";
      return EXIT_FAILURE;
    }
    auto answers = tdx::PossibleAnswersAt(**query, chase->target,
                                          std::stoull(positional[3]),
                                          &program.universe);
    if (!answers.ok()) {
      std::cerr << answers.status() << "\n";
      return EXIT_FAILURE;
    }
    std::cout << tdx::RenderAnswers(*answers, program.universe);
    return EXIT_SUCCESS;
  }
  if (command == "emit") {
    auto emitted = tdx::SerializeProgram(program);
    if (!emitted.ok()) {
      std::cerr << emitted.status() << "\n";
      return EXIT_FAILURE;
    }
    std::cout << *emitted;
    return EXIT_SUCCESS;
  }
  return Usage();
}

// Writes `text` to `path`, demoting a success exit to kExitError on I/O
// failure — a run whose requested trace/metrics file is missing should not
// look green, but an already-failing run keeps its more specific code.
int WriteObsFile(const std::string& path, const std::string& text, int code) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
  out.flush();
  if (!out) {
    std::cerr << "cannot write '" << path << "'\n";
    return code == kExitSuccess ? kExitError : code;
  }
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  std::vector<std::string> positional;
  if (!ParseFlags(argc, argv, &options, &positional)) return Usage();

  // Install the tracer before any file I/O so the root span covers the
  // whole run (read + parse + command); export after RunCli returns, on
  // every exit path. MarkProcessStart additionally backdates the epoch to
  // process creation so the trace accounts for fork/exec/loader time.
  std::optional<tdx::obs::Tracer> tracer;
  if (!options.trace_out.empty()) {
    tracer.emplace();
    tracer->MarkProcessStart();
  }
  int code;
  {
    std::optional<tdx::obs::ScopedTracer> installed;
    if (tracer.has_value()) installed.emplace(&*tracer);
    TDX_TRACE_SPAN("cli.run");
    code = RunCli(options, positional);
  }
  if (tracer.has_value()) {
    code = WriteObsFile(options.trace_out, tracer->ToChromeTraceJson(), code);
  }
  if (!options.metrics_out.empty()) {
    code = WriteObsFile(
        options.metrics_out,
        tdx::obs::MetricsRegistry::Instance().Snapshot().ToJson() + "\n",
        code);
  }
  return code;
}
