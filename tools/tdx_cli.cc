// tdx command-line interface.
//
// Reads a tdx program file (schemas, mapping, facts, queries — see
// src/parser/parser.h for the format) and runs one of:
//
//   tdx_cli chase <file>           c-chase; print the concrete solution
//   tdx_cli normalize <file>       print norm(Ic, lhs(Sigma_st)) and the
//                                  naive normalization side by side
//   tdx_cli abstract <file>        print the abstract view of the source
//   tdx_cli query <file> <name>    certain answers for the named query
//   tdx_cli verify <file>          check Corollary 20 on the instance
//   tdx_cli core <file>            c-chase, then the core of the solution
//   tdx_cli snapshots <file> <l..> print target snapshots at time points
//   tdx_cli emit <file>            re-emit the parsed program (round-trip)
//   tdx_cli possible <file> <q> <l> possible answers of query q at time l

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "src/core/align.h"
#include "src/core/certain.h"
#include "src/core/naive_eval.h"
#include "src/core/normalize.h"
#include "src/core/possible.h"
#include "src/core/satisfaction.h"
#include "src/core/solution_core.h"
#include "src/parser/parser.h"
#include "src/parser/serialize.h"
#include "src/parser/printer.h"
#include "src/temporal/abstract_chase.h"
#include "src/temporal/snapshot.h"

namespace {

int Usage() {
  std::cerr
      << "usage: tdx_cli <command> <program-file> [args]\n"
         "commands:\n"
         "  chase      run the c-chase and print the concrete solution\n"
         "  normalize  print Algorithm-1 and naive normalizations\n"
         "  abstract   print the abstract view of the source\n"
         "  query      certain answers: tdx_cli query <file> <query-name>\n"
         "  verify     check Corollary 20 (c-chase vs abstract chase)\n"
         "  core       c-chase, then the core of the solution\n"
         "  snapshots  print target snapshots: tdx_cli snapshots <file> <l>...\n"
         "  emit       re-emit the parsed program in the text format\n"
         "  possible   possible answers: tdx_cli possible <file> <q> <l>\n";
  return EXIT_FAILURE;
}

tdx::Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return tdx::Status::NotFound("cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int RunChase(tdx::ParsedProgram& program, bool with_core) {
  auto chase =
      tdx::CChase(program.source, program.lifted, &program.universe);
  if (!chase.ok()) {
    std::cerr << chase.status() << "\n";
    return EXIT_FAILURE;
  }
  if (chase->kind == tdx::ChaseResultKind::kFailure) {
    std::cout << "NO SOLUTION: " << chase->failure_reason << "\n";
    return EXIT_FAILURE;
  }
  if (with_core) {
    tdx::CoreStats stats;
    const tdx::ConcreteInstance core =
        tdx::ComputeConcreteCore(chase->target, &stats);
    std::cout << tdx::RenderConcreteInstance(core, program.universe);
    std::cout << "(core: removed " << stats.facts_removed << " of "
              << chase->target.size() << " facts)\n";
  } else {
    std::cout << tdx::RenderConcreteInstance(chase->target, program.universe);
  }
  return EXIT_SUCCESS;
}

int RunNormalize(tdx::ParsedProgram& program) {
  tdx::NormalizeStats alg, naive;
  const tdx::ConcreteInstance by_alg =
      tdx::Normalize(program.source, program.lifted.TgdBodies(), &alg);
  const tdx::ConcreteInstance by_naive =
      tdx::NaiveNormalize(program.source, &naive);
  std::cout << "--- norm(Ic, lhs(Sigma_st)), " << alg.output_facts
            << " facts ---\n"
            << tdx::RenderConcreteInstance(by_alg, program.universe)
            << "\n--- naive normalization, " << naive.output_facts
            << " facts ---\n"
            << tdx::RenderConcreteInstance(by_naive, program.universe);
  return EXIT_SUCCESS;
}

int RunAbstract(tdx::ParsedProgram& program) {
  auto ia = tdx::AbstractInstance::FromConcrete(program.source);
  if (!ia.ok()) {
    std::cerr << ia.status() << "\n";
    return EXIT_FAILURE;
  }
  std::cout << tdx::RenderAbstractInstance(*ia, program.universe);
  return EXIT_SUCCESS;
}

int RunQuery(tdx::ParsedProgram& program, const std::string& name) {
  auto query = program.FindQuery(name);
  if (!query.ok()) {
    std::cerr << query.status() << "\n";
    return EXIT_FAILURE;
  }
  auto lifted = tdx::LiftUnionQuery(**query, program.schema);
  if (!lifted.ok()) {
    std::cerr << lifted.status() << "\n";
    return EXIT_FAILURE;
  }
  auto result = tdx::CertainAnswers(*lifted, program.source, program.lifted,
                                    &program.universe);
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    return EXIT_FAILURE;
  }
  if (result->chase_kind == tdx::ChaseResultKind::kFailure) {
    std::cout << "NO SOLUTION\n";
    return EXIT_FAILURE;
  }
  std::cout << tdx::RenderAnswers(result->answers, program.universe);
  return EXIT_SUCCESS;
}

int RunVerify(tdx::ParsedProgram& program) {
  // Independent oracle first: the c-chase result must satisfy the mapping.
  auto chase =
      tdx::CChase(program.source, program.lifted, &program.universe);
  if (chase.ok() && chase->kind == tdx::ChaseResultKind::kSuccess) {
    auto sat = tdx::CheckSolution(program.source, chase->target,
                                  program.mapping, &program.universe);
    if (!sat.ok()) {
      std::cerr << sat.status() << "\n";
      return EXIT_FAILURE;
    }
    std::cout << "target satisfies the mapping: "
              << (sat->satisfied ? "yes" : ("NO (" + sat->violation + ")"))
              << "\n";
  }
  auto report = tdx::VerifyCorollary20(program.source, program.mapping,
                                       program.lifted, &program.universe);
  if (!report.ok()) {
    std::cerr << report.status() << "\n";
    return EXIT_FAILURE;
  }
  std::cout << "chase outcomes agree: "
            << (report->outcome_agreed ? "yes" : "NO") << "\n";
  if (report->forward_checked) {
    std::cout << "[[c-chase(Ic)]] -> chase([[Ic]]): "
              << (report->forward ? "yes" : "NO") << "\n"
              << "chase([[Ic]]) -> [[c-chase(Ic)]]: "
              << (report->backward ? "yes" : "NO") << "\n";
  }
  std::cout << (report->aligned() ? "ALIGNED (Corollary 20 verified)"
                                  : "MISALIGNED")
            << "\n";
  return report->aligned() ? EXIT_SUCCESS : EXIT_FAILURE;
}

int RunSnapshots(tdx::ParsedProgram& program, int argc, char** argv) {
  auto chase =
      tdx::CChase(program.source, program.lifted, &program.universe);
  if (!chase.ok() || chase->kind == tdx::ChaseResultKind::kFailure) {
    std::cerr << "chase failed\n";
    return EXIT_FAILURE;
  }
  auto ja = tdx::AbstractInstance::FromConcrete(chase->target);
  if (!ja.ok()) {
    std::cerr << ja.status() << "\n";
    return EXIT_FAILURE;
  }
  for (int i = 3; i < argc; ++i) {
    const tdx::TimePoint l = std::stoull(argv[i]);
    std::cout << "--- db_" << l << " ---\n"
              << tdx::RenderInstanceTables(ja->At(l, &program.universe),
                                           program.universe);
  }
  return EXIT_SUCCESS;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string command = argv[1];

  auto text = ReadFile(argv[2]);
  if (!text.ok()) {
    std::cerr << text.status() << "\n";
    return EXIT_FAILURE;
  }
  auto parsed = tdx::ParseProgram(*text);
  if (!parsed.ok()) {
    std::cerr << parsed.status() << "\n";
    return EXIT_FAILURE;
  }
  tdx::ParsedProgram& program = **parsed;

  if (command == "chase") return RunChase(program, /*with_core=*/false);
  if (command == "core") return RunChase(program, /*with_core=*/true);
  if (command == "normalize") return RunNormalize(program);
  if (command == "abstract") return RunAbstract(program);
  if (command == "verify") return RunVerify(program);
  if (command == "query") {
    if (argc < 4) return Usage();
    return RunQuery(program, argv[3]);
  }
  if (command == "snapshots") return RunSnapshots(program, argc, argv);
  if (command == "possible") {
    if (argc < 5) return Usage();
    auto chase =
        tdx::CChase(program.source, program.lifted, &program.universe);
    if (!chase.ok() || chase->kind == tdx::ChaseResultKind::kFailure) {
      std::cerr << "chase failed\n";
      return EXIT_FAILURE;
    }
    auto query = program.FindQuery(argv[3]);
    if (!query.ok()) {
      std::cerr << query.status() << "\n";
      return EXIT_FAILURE;
    }
    auto answers = tdx::PossibleAnswersAt(**query, chase->target,
                                          std::stoull(argv[4]),
                                          &program.universe);
    if (!answers.ok()) {
      std::cerr << answers.status() << "\n";
      return EXIT_FAILURE;
    }
    std::cout << tdx::RenderAnswers(*answers, program.universe);
    return EXIT_SUCCESS;
  }
  if (command == "emit") {
    auto emitted = tdx::SerializeProgram(program);
    if (!emitted.ok()) {
      std::cerr << emitted.status() << "\n";
      return EXIT_FAILURE;
    }
    std::cout << *emitted;
    return EXIT_SUCCESS;
  }
  return Usage();
}
