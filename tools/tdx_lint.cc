// tdx_lint: static analysis of tdx programs.
//
//   tdx_lint [flags] <program-file>...
//
// Parses each program and runs the mapping analyzer (src/analysis/) over
// it, printing the diagnostics (see src/analysis/diagnostic.h for the ID
// catalogue). A program that does not parse yields a single TDX000 error
// carrying the parse message.
//
// Flags:
//   --format=text   clang-style lines plus a summary (default)
//   --format=json   one JSON object per file, wrapped in a JSON array
//   --Werror        treat warnings as errors
//   --explain-plan  also render the chase planner's schedule per file
//                   (text: appended after the report; json: a "plan" key
//                   added to the file's object)
//
// Exit status: 0 when no file produced an error-severity diagnostic,
// 1 when at least one did, 2 on usage or I/O problems.

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/analysis/analyzer.h"
#include "src/analysis/planner.h"
#include "src/parser/parser.h"

namespace {

int Usage() {
  std::cerr << "usage: tdx_lint [--format=text|json] [--Werror] "
               "[--explain-plan] <file>...\n";
  return 2;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

/// Lints one file; parse failures become a TDX000 report with an unknown
/// certificate (nothing was proven about an unparsed program). When `plan`
/// is non-null and the file parses, *plan receives the mapping's chase
/// schedule (for --explain-plan).
tdx::AnalysisReport LintFile(const std::string& text,
                             std::optional<tdx::ChaseSchedule>* plan) {
  auto parsed = tdx::ParseProgram(text);
  if (!parsed.ok()) {
    tdx::AnalysisReport report;
    report.certificate.criterion = tdx::TerminationCriterion::kUnknown;
    report.Add("TDX000", tdx::Severity::kError,
               "program does not parse: " + parsed.status().message());
    return report;
  }
  if (plan != nullptr) {
    if ((*parsed)->mapping.schedule.has_value()) {
      *plan = *(*parsed)->mapping.schedule;
    } else {
      *plan = tdx::PlanChase((*parsed)->mapping, (*parsed)->schema);
    }
  }
  return tdx::AnalyzeProgram(**parsed);
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool werror = false;
  bool explain_plan = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--format=text") {
      json = false;
    } else if (arg == "--format=json") {
      json = true;
    } else if (arg == "--Werror") {
      werror = true;
    } else if (arg == "--explain-plan") {
      explain_plan = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "unknown flag '" << arg << "'\n";
      return Usage();
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) return Usage();

  bool any_errors = false;
  std::string json_out = "[";
  for (std::size_t i = 0; i < files.size(); ++i) {
    std::string text;
    if (!ReadFile(files[i], &text)) {
      std::cerr << "cannot open '" << files[i] << "'\n";
      return 2;
    }
    std::optional<tdx::ChaseSchedule> plan;
    tdx::AnalysisReport report =
        LintFile(text, explain_plan ? &plan : nullptr);
    if (werror) report.PromoteWarnings();
    any_errors = any_errors || report.HasErrors();
    if (json) {
      if (i > 0) json_out += ',';
      std::string object = tdx::RenderJson(report, files[i]);
      if (plan.has_value()) {
        // Splice the schedule into the file's object, before the final '}'.
        object.insert(object.size() - 1, ", \"plan\": " + plan->ToJson());
      }
      json_out += object;
    } else {
      std::cout << tdx::RenderText(report, files[i]);
      if (plan.has_value()) std::cout << plan->ToText();
    }
  }
  if (json) std::cout << json_out << "]\n";
  return any_errors ? 1 : 0;
}
