// tdx_lint: static analysis of tdx programs.
//
//   tdx_lint [flags] <program-file>...
//
// Parses each program and runs the mapping analyzer (src/analysis/) over
// it, printing the diagnostics (see src/analysis/diagnostic.h for the ID
// catalogue). A program that does not parse yields a single TDX000 error
// carrying the parse message.
//
// Flags:
//   --format=text   clang-style lines plus a summary (default)
//   --format=json   one JSON object per file, wrapped in a JSON array
//   --Werror        treat warnings as errors
//
// Exit status: 0 when no file produced an error-severity diagnostic,
// 1 when at least one did, 2 on usage or I/O problems.

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/analysis/analyzer.h"
#include "src/parser/parser.h"

namespace {

int Usage() {
  std::cerr << "usage: tdx_lint [--format=text|json] [--Werror] <file>...\n";
  return 2;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

/// Lints one file; parse failures become a TDX000 report with an unknown
/// certificate (nothing was proven about an unparsed program).
tdx::AnalysisReport LintFile(const std::string& text) {
  auto parsed = tdx::ParseProgram(text);
  if (!parsed.ok()) {
    tdx::AnalysisReport report;
    report.certificate.criterion = tdx::TerminationCriterion::kUnknown;
    report.Add("TDX000", tdx::Severity::kError,
               "program does not parse: " + parsed.status().message());
    return report;
  }
  return tdx::AnalyzeProgram(**parsed);
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool werror = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--format=text") {
      json = false;
    } else if (arg == "--format=json") {
      json = true;
    } else if (arg == "--Werror") {
      werror = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "unknown flag '" << arg << "'\n";
      return Usage();
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) return Usage();

  bool any_errors = false;
  std::string json_out = "[";
  for (std::size_t i = 0; i < files.size(); ++i) {
    std::string text;
    if (!ReadFile(files[i], &text)) {
      std::cerr << "cannot open '" << files[i] << "'\n";
      return 2;
    }
    tdx::AnalysisReport report = LintFile(text);
    if (werror) report.PromoteWarnings();
    any_errors = any_errors || report.HasErrors();
    if (json) {
      if (i > 0) json_out += ',';
      json_out += tdx::RenderJson(report, files[i]);
    } else {
      std::cout << tdx::RenderText(report, files[i]);
    }
  }
  if (json) std::cout << json_out << "]\n";
  return any_errors ? 1 : 0;
}
