// tdx_bench_diff: merge google-benchmark JSON reports and check them
// against a perf-regression gates config. This is the single gate CI's
// bench-smoke job calls (replacing the inline python/awk checks it used to
// carry); the committed baseline is BENCH_chase.json and the CI gate
// config is bench/bench_gates.json.
//
//   tdx_bench_diff merge --out=FILE in1.json in2.json ...
//       Concatenate the reports' benchmark arrays under the first report's
//       context (minus "date") and write the result to FILE ("-" = stdout).
//
//   tdx_bench_diff check --fresh=FILE --gates=FILE [--baseline=FILE]
//                        [--json-out=FILE]
//       Evaluate the gates against the fresh report (and baseline, for
//       drift/per-benchmark gates). Prints the text verdict to stdout;
//       --json-out additionally writes the machine-readable verdict.
//
// Exit codes: 0 all gates pass; 1 at least one gate failed; 2 usage, I/O,
// or parse error. A missing benchmark/counter that a gate references is an
// error (exit 2), not a silent pass — a renamed benchmark must not turn
// the gate off.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "src/obs/bench_diff.h"
#include "src/obs/json.h"

namespace {

constexpr int kExitPass = 0;
constexpr int kExitFail = 1;
constexpr int kExitUsage = 2;

int Usage() {
  std::cerr
      << "usage:\n"
         "  tdx_bench_diff merge --out=FILE in1.json in2.json ...\n"
         "  tdx_bench_diff check --fresh=FILE --gates=FILE\n"
         "                       [--baseline=FILE] [--json-out=FILE]\n"
         "merge concatenates google-benchmark reports under the first\n"
         "report's context (dropping its date); check evaluates a gates\n"
         "config (see bench/bench_gates.json) against the fresh report.\n"
         "exit codes: 0 gates pass, 1 gate failure, 2 usage/io/parse error\n";
  return kExitUsage;
}

bool ReadWholeFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "cannot open '" << path << "'\n";
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

bool ParseFile(const std::string& path, tdx::obs::Json* out) {
  std::string text;
  if (!ReadWholeFile(path, &text)) return false;
  auto parsed = tdx::obs::ParseJson(text);
  if (!parsed.ok()) {
    std::cerr << path << ": " << parsed.status() << "\n";
    return false;
  }
  *out = std::move(*parsed);
  return true;
}

bool WriteWholeFile(const std::string& path, const std::string& text) {
  if (path == "-") {
    std::cout << text;
    return static_cast<bool>(std::cout);
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
  out.flush();
  if (!out) {
    std::cerr << "cannot write '" << path << "'\n";
    return false;
  }
  return true;
}

int RunMerge(const std::vector<std::string>& args) {
  std::string out_path;
  std::vector<std::string> inputs;
  for (const std::string& arg : args) {
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "unknown merge flag '" << arg << "'\n";
      return Usage();
    } else {
      inputs.push_back(arg);
    }
  }
  if (out_path.empty() || inputs.empty()) return Usage();
  std::vector<tdx::obs::Json> reports;
  reports.reserve(inputs.size());
  for (const std::string& path : inputs) {
    tdx::obs::Json report;
    if (!ParseFile(path, &report)) return kExitUsage;
    reports.push_back(std::move(report));
  }
  auto merged = tdx::obs::MergeBenchReports(reports);
  if (!merged.ok()) {
    std::cerr << merged.status() << "\n";
    return kExitUsage;
  }
  if (!WriteWholeFile(out_path, merged->Dump(2) + "\n")) return kExitUsage;
  return kExitPass;
}

int RunCheck(const std::vector<std::string>& args) {
  std::string fresh_path, gates_path, baseline_path, json_out;
  for (const std::string& arg : args) {
    if (arg.rfind("--fresh=", 0) == 0) {
      fresh_path = arg.substr(8);
    } else if (arg.rfind("--gates=", 0) == 0) {
      gates_path = arg.substr(8);
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(11);
    } else if (arg.rfind("--json-out=", 0) == 0) {
      json_out = arg.substr(11);
    } else {
      std::cerr << "unknown check argument '" << arg << "'\n";
      return Usage();
    }
  }
  if (fresh_path.empty() || gates_path.empty()) return Usage();
  tdx::obs::Json fresh, gates, baseline;
  if (!ParseFile(fresh_path, &fresh)) return kExitUsage;
  if (!ParseFile(gates_path, &gates)) return kExitUsage;
  const tdx::obs::Json* baseline_ptr = nullptr;
  if (!baseline_path.empty()) {
    if (!ParseFile(baseline_path, &baseline)) return kExitUsage;
    baseline_ptr = &baseline;
  }
  auto report = tdx::obs::CheckBenchGates(fresh, baseline_ptr, gates);
  if (!report.ok()) {
    std::cerr << report.status() << "\n";
    return kExitUsage;
  }
  std::cout << report->ToText();
  if (!json_out.empty() &&
      !WriteWholeFile(json_out, report->ToJson() + "\n")) {
    return kExitUsage;
  }
  return report->pass ? kExitPass : kExitFail;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string_view command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  if (command == "merge") return RunMerge(args);
  if (command == "check") return RunCheck(args);
  return Usage();
}
