// Employment histories at scale: generates a synthetic HR database (the
// paper's running scenario, scaled up), exchanges it into the target
// schema with the c-chase, and reports what the exchange produced — how
// much of the salary history is known vs. unknown, and how normalization
// grew the instance.
//
// Usage: employment_history [num_people] [horizon] [seed]

#include <cstdlib>
#include <iostream>
#include <string>

#include "src/core/cchase.h"
#include "src/core/naive_eval.h"
#include "src/gen/workload.h"
#include "src/temporal/coalesce.h"

int main(int argc, char** argv) {
  tdx::EmploymentConfig cfg;
  cfg.num_people = argc > 1 ? std::stoul(argv[1]) : 200;
  cfg.horizon = argc > 2 ? std::stoul(argv[2]) : 120;
  cfg.seed = argc > 3 ? std::stoul(argv[3]) : 42;
  cfg.num_companies = 12;
  cfg.avg_jobs = 3;
  cfg.salary_known_fraction = 0.65;

  auto w = tdx::MakeEmploymentWorkload(cfg);
  std::cout << "generated " << w->source.size() << " source facts for "
            << cfg.num_people << " people over horizon " << cfg.horizon
            << "\n";

  auto outcome = tdx::CChase(w->source, w->lifted, &w->universe);
  if (!outcome.ok()) {
    std::cerr << outcome.status() << "\n";
    return EXIT_FAILURE;
  }
  if (outcome->kind == tdx::ChaseResultKind::kFailure) {
    std::cout << "no solution: " << outcome->failure_reason << "\n";
    return EXIT_FAILURE;
  }

  std::cout << "normalization: " << outcome->source_norm_stats.input_facts
            << " -> " << outcome->source_norm_stats.output_facts
            << " source facts (" << outcome->source_norm_stats.groups
            << " overlap groups)\n";
  std::cout << "c-chase: " << outcome->stats.tgd_fires << " tgd steps, "
            << outcome->stats.egd_steps << " egd steps, "
            << outcome->stats.fresh_nulls << " interval-annotated nulls\n";

  // How much of the exchanged history is complete?
  std::size_t known = 0, unknown = 0;
  outcome->target.facts().ForEach([&](tdx::FactView fact) {
    bool has_null = false;
    for (const tdx::Value& v : fact.args()) {
      if (v.is_any_null()) has_null = true;
    }
    (has_null ? unknown : known) += 1;
  });
  std::cout << "target rows: " << known << " complete, " << unknown
            << " with unknown salary\n";

  const tdx::ConcreteInstance compact = tdx::Coalesce(outcome->target);
  std::cout << "coalesced target: " << outcome->target.size() << " -> "
            << compact.size() << " rows\n";

  // Certain salary answers across the whole timeline.
  const tdx::RelationId emp = *w->schema.Find("Emp");
  tdx::ConjunctiveQuery q;
  q.name = "salaries";
  tdx::Atom atom;
  atom.rel = emp;
  atom.terms = {tdx::Term::Var(0), tdx::Term::Var(1), tdx::Term::Var(2)};
  q.body.atoms = {atom};
  q.body.num_vars = 3;
  q.head = {0, 2};
  tdx::UnionQuery uq;
  uq.name = q.name;
  uq.disjuncts = {q};
  auto lifted = tdx::LiftUnionQuery(uq, w->schema);
  if (!lifted.ok()) {
    std::cerr << lifted.status() << "\n";
    return EXIT_FAILURE;
  }
  auto answers = tdx::NaiveEvaluateConcrete(*lifted, outcome->target);
  if (!answers.ok()) {
    std::cerr << answers.status() << "\n";
    return EXIT_FAILURE;
  }
  std::cout << "certain salary answers (temporal tuples): " << answers->size()
            << "\n";
  return EXIT_SUCCESS;
}
