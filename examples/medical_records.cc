// Medical records: a hospital integrates admission and diagnosis feeds
// into a unified per-patient record. Shows how the egd detects an
// impossible integration (a patient in two wards at once) versus how
// disjoint stays integrate cleanly — the paper's failure semantics
// (Theorem 19(2): a failing chase means NO solution exists).

#include <cstdlib>
#include <iostream>

#include "src/core/align.h"
#include "src/core/naive_eval.h"
#include "src/parser/parser.h"
#include "src/parser/printer.h"

namespace {

constexpr const char* kCleanProgram = R"(
  source Admit(patient, ward);
  source Diag(patient, code);
  target Record(patient, ward, code);

  # Every admission yields a record, with the diagnosis possibly unknown.
  tgd a1: Admit(p, w) -> exists c: Record(p, w, c);
  # A concurrent diagnosis completes the record.
  tgd a2: Admit(p, w) & Diag(p, c) -> Record(p, w, c);
  # A patient is in one ward at a time.
  egd w1: Record(p, w, c) & Record(p, w2, c2) -> w = w2;

  fact Admit("ann", "icu")     @ [0, 5);
  fact Admit("ann", "general") @ [5, 12);
  fact Diag("ann", "j18")      @ [2, 8);
  fact Admit("ben", "general") @ [3, 9);
  fact Diag("ben", "k35")      @ [9, 14);

  query wards(p, w): Record(p, w, _);
  query diagnosed(p, c): Record(p, _, c);
)";

constexpr const char* kConflictProgram = R"(
  source Admit(patient, ward);
  target Record(patient, ward);
  tgd Admit(p, w) -> Record(p, w);
  egd Record(p, w) & Record(p, w2) -> w = w2;
  # Overlapping stays in two wards: inconsistent during [4, 6).
  fact Admit("ann", "icu")     @ [0, 6);
  fact Admit("ann", "general") @ [4, 9);
)";

int RunClean() {
  auto parsed = tdx::ParseProgram(kCleanProgram);
  if (!parsed.ok()) {
    std::cerr << parsed.status() << "\n";
    return EXIT_FAILURE;
  }
  tdx::ParsedProgram& program = **parsed;

  auto chase = tdx::CChase(program.source, program.lifted, &program.universe);
  if (!chase.ok() || chase->kind == tdx::ChaseResultKind::kFailure) {
    std::cerr << "unexpected failure\n";
    return EXIT_FAILURE;
  }
  std::cout << "=== Integrated records ===\n"
            << tdx::RenderConcreteInstance(chase->target, program.universe);

  for (const char* name : {"wards", "diagnosed"}) {
    auto lifted =
        tdx::LiftUnionQuery(**program.FindQuery(name), program.schema);
    if (!lifted.ok()) {
      std::cerr << lifted.status() << "\n";
      return EXIT_FAILURE;
    }
    auto answers = tdx::NaiveEvaluateConcrete(*lifted, chase->target);
    if (!answers.ok()) {
      std::cerr << answers.status() << "\n";
      return EXIT_FAILURE;
    }
    std::cout << "\n=== certain " << name << " ===\n"
              << tdx::RenderAnswers(*answers, program.universe);
  }

  auto report = tdx::VerifyCorollary20(program.source, program.mapping,
                                       program.lifted, &program.universe);
  if (!report.ok()) {
    std::cerr << report.status() << "\n";
    return EXIT_FAILURE;
  }
  std::cout << "\nsemantics verified against the abstract chase: "
            << (report->aligned() ? "aligned" : "MISALIGNED") << "\n";
  return EXIT_SUCCESS;
}

int RunConflict() {
  auto parsed = tdx::ParseProgram(kConflictProgram);
  if (!parsed.ok()) {
    std::cerr << parsed.status() << "\n";
    return EXIT_FAILURE;
  }
  tdx::ParsedProgram& program = **parsed;
  auto chase = tdx::CChase(program.source, program.lifted, &program.universe);
  if (!chase.ok()) {
    std::cerr << chase.status() << "\n";
    return EXIT_FAILURE;
  }
  std::cout << "\n=== Conflicting feed ===\n";
  if (chase->kind == tdx::ChaseResultKind::kFailure) {
    std::cout << "c-chase failed as expected: " << chase->failure_reason
              << "\nno target instance can satisfy the mapping "
                 "(Theorem 19(2)).\n";
    return EXIT_SUCCESS;
  }
  std::cerr << "conflict was not detected!\n";
  return EXIT_FAILURE;
}

}  // namespace

int main() {
  const int clean = RunClean();
  const int conflict = RunConflict();
  return (clean == EXIT_SUCCESS && conflict == EXIT_SUCCESS) ? EXIT_SUCCESS
                                                             : EXIT_FAILURE;
}
