// Audit trail: security events from several feeds are exchanged into a
// unified access log, then interrogated with unions of conjunctive
// queries. Demonstrates constants in dependency heads, union queries,
// unbounded ("still ongoing") intervals, and temporal certain answers.

#include <cstdlib>
#include <iostream>

#include "src/core/certain.h"
#include "src/core/naive_eval.h"
#include "src/parser/parser.h"
#include "src/parser/printer.h"

namespace {

constexpr const char* kProgram = R"(
  source Login(user, host);
  source Sudo(user, host);
  source Ticket(user, reason);
  target Access(user, host, kind);
  target Justified(user, reason);

  tgd l1: Login(u, h) -> Access(u, h, "login");
  tgd s1: Sudo(u, h) -> Access(u, h, "sudo");
  tgd t1: Ticket(u, r) -> Justified(u, r);

  fact Login("root", "db1")  @ [10, 20);
  fact Sudo("root", "db1")   @ [12, 15);
  fact Login("eve", "web1")  @ [14, inf);
  fact Sudo("eve", "web1")   @ [16, 18);
  fact Login("mallory", "db1") @ [19, 25);
  fact Ticket("root", "maintenance") @ [9, 21);

  # Anyone who touched db1, by any means.
  query touched_db1(u): Access(u, "db1", "login");
  query touched_db1(u): Access(u, "db1", "sudo");

  # Privileged access anywhere.
  query privileged(u, h): Access(u, h, "sudo");
)";

}  // namespace

int main() {
  auto parsed = tdx::ParseProgram(kProgram);
  if (!parsed.ok()) {
    std::cerr << parsed.status() << "\n";
    return EXIT_FAILURE;
  }
  tdx::ParsedProgram& program = **parsed;

  auto chase = tdx::CChase(program.source, program.lifted, &program.universe);
  if (!chase.ok() || chase->kind == tdx::ChaseResultKind::kFailure) {
    std::cerr << "exchange failed\n";
    return EXIT_FAILURE;
  }
  std::cout << "=== Unified access log ===\n"
            << tdx::RenderConcreteInstance(chase->target, program.universe);

  for (const char* name : {"touched_db1", "privileged"}) {
    auto lifted =
        tdx::LiftUnionQuery(**program.FindQuery(name), program.schema);
    if (!lifted.ok()) {
      std::cerr << lifted.status() << "\n";
      return EXIT_FAILURE;
    }
    // The one-call path: chase + naive evaluation = certain answers.
    auto certain = tdx::CertainAnswers(*lifted, program.source,
                                       program.lifted, &program.universe);
    if (!certain.ok()) {
      std::cerr << certain.status() << "\n";
      return EXIT_FAILURE;
    }
    std::cout << "\n=== certain " << name << " (when) ===\n"
              << tdx::RenderAnswers(certain->answers, program.universe);
  }

  // Slice the timeline: who is on db1 at selected instants?
  auto lifted =
      tdx::LiftUnionQuery(**program.FindQuery("touched_db1"), program.schema);
  auto answers = tdx::NaiveEvaluateConcrete(*lifted, chase->target);
  if (!answers.ok()) {
    std::cerr << answers.status() << "\n";
    return EXIT_FAILURE;
  }
  std::cout << "\n=== db1 access at selected instants ===\n";
  for (tdx::TimePoint l : {11u, 13u, 21u, 30u}) {
    std::cout << "t=" << l << ":";
    for (const tdx::Tuple& t : tdx::ConcreteAnswersAt(*answers, l)) {
      std::cout << " " << tdx::TupleToString(t, program.universe);
    }
    std::cout << "\n";
  }
  return EXIT_SUCCESS;
}
