// Flight network: demonstrates the two tdx extensions working together —
// target tgds under weak acyclicity (per-snapshot transitive closure of
// reachability) and temporal operators in tgd bodies (a route is "proven"
// once it has been flown at some point in the past).

#include <cstdlib>
#include <iostream>

#include "src/core/align.h"
#include "src/core/naive_eval.h"
#include "src/core/solution_core.h"
#include "src/parser/parser.h"
#include "src/parser/printer.h"

namespace {

constexpr const char* kProgram = R"(
  source Flight(from, to);
  target Reach(from, to);
  target Proven(from, to);

  # Direct flights are reachable while scheduled.
  tgd f1: Flight(x, y) -> Reach(x, y);
  # A pair is "proven" from the moment a direct flight has ever operated.
  tgd f2: once_past(Flight(x, y)) -> Proven(x, y);
  # Reachability closes transitively, snapshot by snapshot (weakly
  # acyclic: no existentials).
  ttgd t1: Reach(x, y) & Reach(y, z) -> Reach(x, z);

  fact Flight("vie", "fra") @ [0, 20);
  fact Flight("fra", "jfk") @ [5, 15);
  fact Flight("jfk", "sfo") @ [0, 30);
  fact Flight("vie", "jfk") @ [25, 30);

  query transatlantic(x): Reach(x, "sfo");
  query proven(x, y): Proven(x, y);
)";

}  // namespace

int main() {
  auto parsed = tdx::ParseProgram(kProgram);
  if (!parsed.ok()) {
    std::cerr << parsed.status() << "\n";
    return EXIT_FAILURE;
  }
  tdx::ParsedProgram& program = **parsed;

  auto chase = tdx::CChase(program.source, program.lifted, &program.universe);
  if (!chase.ok() || chase->kind == tdx::ChaseResultKind::kFailure) {
    std::cerr << "exchange failed\n";
    return EXIT_FAILURE;
  }
  std::cout << "=== Reachability (transitively closed per snapshot) ===\n"
            << tdx::RenderConcreteInstance(chase->target, program.universe);

  for (const char* name : {"transatlantic", "proven"}) {
    auto lifted =
        tdx::LiftUnionQuery(**program.FindQuery(name), program.schema);
    if (!lifted.ok()) {
      std::cerr << lifted.status() << "\n";
      return EXIT_FAILURE;
    }
    auto answers = tdx::NaiveEvaluateConcrete(*lifted, chase->target);
    if (!answers.ok()) {
      std::cerr << answers.status() << "\n";
      return EXIT_FAILURE;
    }
    std::cout << "\n=== certain " << name << " ===\n"
              << tdx::RenderAnswers(*answers, program.universe);
  }

  tdx::CoreStats core_stats;
  const tdx::ConcreteInstance core =
      tdx::ComputeConcreteCore(chase->target, &core_stats);
  std::cout << "\ncore: " << chase->target.size() << " -> " << core.size()
            << " facts\n";

  auto report = tdx::VerifyCorollary20(program.source, program.mapping,
                                       program.lifted, &program.universe);
  if (!report.ok()) {
    std::cerr << report.status() << "\n";
    return EXIT_FAILURE;
  }
  std::cout << "semantics verified (Corollary 20 with target tgds): "
            << (report->aligned() ? "aligned" : "MISALIGNED") << "\n";
  return report->aligned() ? EXIT_SUCCESS : EXIT_FAILURE;
}
