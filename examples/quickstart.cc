// Quickstart: the paper's running example, end to end.
//
// Reproduces, in order: the concrete source instance (Figure 4), its
// abstract view (Figure 1), the normalized source (Figure 5), the naive
// normalization for comparison (Figure 6), the c-chase result (Figure 9),
// the abstract chase result (Figure 3), the semantic-alignment check
// (Figure 10 / Corollary 20), and certain answers to a query (Section 5).
//
// Build and run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdlib>
#include <iostream>

#include "src/core/align.h"
#include "src/core/certain.h"
#include "src/core/naive_eval.h"
#include "src/core/normalize.h"
#include "src/parser/parser.h"
#include "src/parser/printer.h"
#include "src/temporal/abstract_chase.h"

namespace {

constexpr const char* kProgram = R"(
  # The schemas of Example 1 and the mapping of Example 6.
  source E(name, company);
  source S(name, salary);
  target Emp(name, company, salary);

  tgd sigma1: E(n, c) -> exists s: Emp(n, c, s);
  tgd sigma2: E(n, c) & S(n, s) -> Emp(n, c, s);
  egd e1: Emp(n, c, s) & Emp(n, c, s2) -> s = s2;

  # The concrete source instance of Figure 4.
  fact E("Ada", "IBM")    @ [2012, 2014);
  fact E("Ada", "Google") @ [2014, inf);
  fact E("Bob", "IBM")    @ [2013, 2018);
  fact S("Ada", "18k")    @ [2013, inf);
  fact S("Bob", "13k")    @ [2015, inf);

  # "Who earns what, and when?" (Section 5).
  query salaries(n, s): Emp(n, _, s);
)";

void Section(const char* title) {
  std::cout << "\n=== " << title << " ===\n";
}

}  // namespace

int main() {
  auto parsed = tdx::ParseProgram(kProgram);
  if (!parsed.ok()) {
    std::cerr << "parse error: " << parsed.status() << "\n";
    return EXIT_FAILURE;
  }
  tdx::ParsedProgram& program = **parsed;
  tdx::Universe& u = program.universe;

  Section("Concrete source instance Ic (Figure 4)");
  std::cout << tdx::RenderConcreteInstance(program.source, u);

  Section("Schema mapping M");
  std::cout << program.mapping.ToString(program.schema, u);

  Section("Abstract view [[Ic]] (Figure 1)");
  auto abstract_source = tdx::AbstractInstance::FromConcrete(program.source);
  if (!abstract_source.ok()) {
    std::cerr << abstract_source.status() << "\n";
    return EXIT_FAILURE;
  }
  std::cout << tdx::RenderAbstractInstance(*abstract_source, u);

  Section("norm(Ic, lhs(Sigma_st)) — Algorithm 1 (Figure 5)");
  tdx::NormalizeStats norm_stats;
  const tdx::ConcreteInstance normalized =
      tdx::Normalize(program.source, program.lifted.TgdBodies(), &norm_stats);
  std::cout << tdx::RenderConcreteInstance(normalized, u);
  std::cout << "facts: " << norm_stats.input_facts << " -> "
            << norm_stats.output_facts << " (groups: " << norm_stats.groups
            << ")\n";

  Section("Naive normalization for comparison (Figure 6)");
  tdx::NormalizeStats naive_stats;
  const tdx::ConcreteInstance naive =
      tdx::NaiveNormalize(program.source, &naive_stats);
  std::cout << tdx::RenderConcreteInstance(naive, u);
  std::cout << "facts: " << naive_stats.input_facts << " -> "
            << naive_stats.output_facts << "\n";

  Section("c-chase result Jc (Figure 9)");
  auto chase = tdx::CChase(program.source, program.lifted, &u);
  if (!chase.ok()) {
    std::cerr << chase.status() << "\n";
    return EXIT_FAILURE;
  }
  if (chase->kind == tdx::ChaseResultKind::kFailure) {
    std::cout << "chase failed: " << chase->failure_reason << "\n";
    return EXIT_FAILURE;
  }
  std::cout << tdx::RenderConcreteInstance(chase->target, u);

  Section("Abstract chase of [[Ic]] (Figure 3)");
  auto abstract_chase =
      tdx::AbstractChase(*abstract_source, program.mapping, &u);
  if (!abstract_chase.ok()) {
    std::cerr << abstract_chase.status() << "\n";
    return EXIT_FAILURE;
  }
  std::cout << tdx::RenderAbstractInstance(abstract_chase->target, u);

  Section("Semantic alignment [[Jc]] ~ chase([[Ic]]) (Corollary 20)");
  auto report = tdx::VerifyAlignment(chase->target, abstract_chase->target);
  if (!report.ok()) {
    std::cerr << report.status() << "\n";
    return EXIT_FAILURE;
  }
  std::cout << "forward homomorphism:  " << (report->forward ? "yes" : "NO")
            << "\nbackward homomorphism: " << (report->backward ? "yes" : "NO")
            << "\n";

  Section("Certain answers to salaries(n, s) (Section 5)");
  auto lifted_query =
      tdx::LiftUnionQuery(**program.FindQuery("salaries"), program.schema);
  if (!lifted_query.ok()) {
    std::cerr << lifted_query.status() << "\n";
    return EXIT_FAILURE;
  }
  auto answers = tdx::NaiveEvaluateConcrete(*lifted_query, chase->target);
  if (!answers.ok()) {
    std::cerr << answers.status() << "\n";
    return EXIT_FAILURE;
  }
  std::cout << tdx::RenderAnswers(*answers, u);
  return EXIT_SUCCESS;
}
