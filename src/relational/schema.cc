#include "src/relational/schema.h"

#include <utility>

namespace tdx {

Result<RelationId> Schema::AddRelation(std::string_view name,
                                       std::vector<std::string> attributes,
                                       SchemaRole role) {
  if (name.empty()) {
    return Status::InvalidArgument("relation name must be non-empty");
  }
  if (attributes.empty()) {
    return Status::InvalidArgument("relation '" + std::string(name) +
                                   "' must have at least one attribute");
  }
  if (by_name_.count(std::string(name)) != 0) {
    return Status::AlreadyExists("relation '" + std::string(name) +
                                 "' is already registered");
  }
  RelationSchema rel;
  rel.id = static_cast<RelationId>(relations_.size());
  rel.name = std::string(name);
  rel.attributes = std::move(attributes);
  rel.temporal = false;
  rel.role = role;
  by_name_.emplace(rel.name, rel.id);
  relations_.push_back(std::move(rel));
  return relations_.back().id;
}

Result<RelationId> Schema::AddTemporalRelation(
    std::string_view name, std::vector<std::string> attributes,
    SchemaRole role) {
  attributes.emplace_back("T");
  TDX_ASSIGN_OR_RETURN(RelationId id,
                       AddRelation(name, std::move(attributes), role));
  relations_[id].temporal = true;
  return id;
}

Result<RelationId> Schema::AddRelationPair(std::string_view name,
                                           std::vector<std::string> attributes,
                                           SchemaRole role) {
  TDX_ASSIGN_OR_RETURN(RelationId snap, AddRelation(name, attributes, role));
  std::string concrete_name(name);
  concrete_name += "+";
  TDX_ASSIGN_OR_RETURN(
      RelationId conc,
      AddTemporalRelation(concrete_name, std::move(attributes), role));
  relations_[snap].twin = conc;
  relations_[conc].twin = snap;
  return conc;
}

Result<RelationId> Schema::Find(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) {
    return Status::NotFound("no relation named '" + std::string(name) + "'");
  }
  return it->second;
}

Result<RelationId> Schema::TwinOf(RelationId id) const {
  assert(id < relations_.size());
  if (!relations_[id].twin.has_value()) {
    return Status::NotFound("relation '" + relations_[id].name +
                            "' has no registered twin");
  }
  return *relations_[id].twin;
}

std::vector<RelationId> Schema::RelationsWhere(SchemaRole role,
                                               bool temporal) const {
  std::vector<RelationId> out;
  for (const RelationSchema& rel : relations_) {
    if (rel.role == role && rel.temporal == temporal) out.push_back(rel.id);
  }
  return out;
}

}  // namespace tdx
