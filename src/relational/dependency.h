// Schema-mapping dependencies: source-to-target tuple-generating
// dependencies (s-t tgds) and equality-generating dependencies (egds).
//
//   s-t tgd:  forall x  phi(x)  ->  exists y  psi(x, y)
//   egd:      forall x  phi(x)  ->  x1 = x2
//
// Following the paper we consider only s-t tgds and egds (no target tgds),
// which makes every chase sequence terminate (Section 1: tgds are excluded
// to avoid non-termination issues orthogonal to temporal matters).
//
// A Mapping bundles Sigma_st and Sigma_eg; together with a Schema holding
// the source and target relations it forms the data exchange setting
// M = (RS, RT, Sigma_st, Sigma_eg).
//
// Lifting (Section 4): LiftMapping produces M+ for the concrete schemas by
// replacing every relation R with its concrete twin R+ and appending one
// shared, universally quantified temporal variable t to every atom on both
// sides. Lifted dependencies are still "implicitly non-temporal": t cannot
// express relationships between different time points.

#ifndef TDX_RELATIONAL_DEPENDENCY_H_
#define TDX_RELATIONAL_DEPENDENCY_H_

#include <optional>
#include <string>
#include <vector>

#include "src/analysis/certificate.h"
#include "src/analysis/schedule.h"
#include "src/common/source.h"
#include "src/common/status.h"
#include "src/relational/homomorphism.h"

namespace tdx {

/// A source-to-target tuple-generating dependency.
struct Tgd {
  Conjunction body;  ///< phi(x); over source relations
  Conjunction head;  ///< psi(x, y); over target relations, same var ids
  /// Variables occurring in the head but not in the body (the existentially
  /// quantified y). Computed by Finalize().
  std::vector<VarId> existential;
  /// The shared temporal variable t of a lifted dependency, if lifted.
  std::optional<VarId> temporal_var;
  /// Optional display label, e.g. "sigma1".
  std::string label;
  /// Position of the declaring statement; invalid for hand-built tgds.
  SourceSpan span;

  std::size_t num_vars() const { return body.num_vars; }

  /// Computes `existential`, propagates num_vars/var_names from body to
  /// head, and validates the structure (body vars used, head non-empty).
  Status Finalize();

  std::string ToString(const Schema& schema, const Universe& u) const;
};

/// An equality-generating dependency.
struct Egd {
  Conjunction body;  ///< phi(x)
  VarId x1 = 0;      ///< left side of the equality
  VarId x2 = 0;      ///< right side of the equality
  std::optional<VarId> temporal_var;
  std::string label;
  /// Position of the declaring statement; invalid for hand-built egds.
  SourceSpan span;

  std::size_t num_vars() const { return body.num_vars; }

  Status Finalize();

  std::string ToString(const Schema& schema, const Universe& u) const;
};

/// Sigma_st together with Sigma_t (target tgds) and Sigma_eg.
///
/// The paper itself considers only s-t tgds and egds ("we do not consider
/// tgds to avoid dealing with non-termination issues ... which are
/// orthogonal to temporal database issues", Section 1). tdx additionally
/// supports target tgds under the standard weak-acyclicity condition of
/// Fagin et al., which restores guaranteed chase termination; see
/// CheckWeaklyAcyclic.
struct Mapping {
  std::vector<Tgd> st_tgds;
  std::vector<Tgd> target_tgds;
  std::vector<Egd> egds;
  /// Chase-termination certificate for `target_tgds`, filled in by
  /// ValidateAndCertifyMapping (the parser does this for every program).
  /// Engines consult it to skip re-deriving the termination check; absent
  /// on hand-built mappings, in which case engines derive it on entry.
  std::optional<TerminationCertificate> certificate;
  /// Chase schedule from the planner (analysis/planner.h): strata, dead
  /// rules, skippable egd passes, and parallel trigger-collection groups.
  /// Filled alongside the certificate by ValidateAndCertifyMapping; the
  /// engines derive it on entry when absent (unless scheduling is off).
  std::optional<ChaseSchedule> schedule;

  /// Left-hand sides of all s-t tgds (the Phi+ that the source instance is
  /// normalized against, Section 4.3).
  std::vector<Conjunction> TgdBodies() const;
  /// Left-hand sides of all target tgds.
  std::vector<Conjunction> TargetTgdBodies() const;
  /// Left-hand sides of all egds (the Phi+ for target normalization).
  std::vector<Conjunction> EgdBodies() const;

  std::string ToString(const Schema& schema, const Universe& u) const;
};

/// Lifts a non-temporal dependency to its concrete counterpart: every atom's
/// relation is replaced by its registered twin (R -> R+) and the fresh
/// temporal variable t is appended to every atom (body and head). Fails with
/// NotFound if some relation has no twin.
Result<Tgd> LiftTgd(const Tgd& tgd, const Schema& schema);
Result<Egd> LiftEgd(const Egd& egd, const Schema& schema);
Result<Mapping> LiftMapping(const Mapping& mapping, const Schema& schema);

/// Validates that `mapping` is a proper mapping over `schema`: s-t tgd
/// bodies use only source relations and heads only target relations;
/// target tgds and egds mention only target relations; all equality
/// variables occur in their bodies; and the target tgds carry a chase
/// termination guarantee (weak acyclicity or any other rung of the ladder
/// in src/analysis/termination.h). A mapping whose `certificate` is already
/// set skips re-deriving the termination check.
Status ValidateMapping(const Mapping& mapping, const Schema& schema);

/// ValidateMapping, then computes and stores `mapping->certificate` so
/// every later engine run can consult it instead of re-deriving it.
Status ValidateAndCertifyMapping(Mapping* mapping, const Schema& schema);

/// Weak acyclicity (Fagin, Kolaitis, Miller, Popa 2005): build the
/// dependency graph over positions (relation, attribute); every chase
/// sequence with a weakly acyclic set of target tgds terminates. Returns
/// InvalidArgument naming the concrete offending cycle of positions
/// ("R.a -*-> S.b -> R.a") when one goes through a special (existential)
/// edge. The temporal attribute of lifted dependencies participates like
/// any other position; the shared variable t only ever produces regular
/// self-loops, which are harmless.
///
/// Compatibility shim over analysis/position_graph.h — new code that wants
/// the full ladder should call CertifyTermination instead.
Status CheckWeaklyAcyclic(const std::vector<Tgd>& target_tgds,
                          const Schema& schema);

}  // namespace tdx

#endif  // TDX_RELATIONAL_DEPENDENCY_H_
