// The classical chase of Fagin, Kolaitis, Miller, and Popa ("Data exchange:
// semantics and query answering", TCS 2005) restricted to s-t tgds and egds.
//
// This is the per-snapshot building block of the paper's *abstract* chase
// (Section 3): chase(Ia, M) = <chase(db0, M), chase(db1, M), ...>. Because
// only s-t tgds and egds are allowed, every chase sequence is finite.
//
// The chase has two phases:
//   1. s-t tgd steps: for every homomorphism h from a tgd body to the
//      source with no extension h' from body & head to (I, J), fire — add
//      the head facts with a fresh labeled null per existential variable.
//   2. egd steps to fixpoint: for every homomorphism from an egd body to J
//      with h(x1) != h(x2): if both are non-nulls, the chase FAILS (no
//      solution exists, Proposition 4(2)); otherwise a null is replaced
//      everywhere by the other value.
//
// Chase failure is an outcome, not a Status error.

#ifndef TDX_RELATIONAL_CHASE_H_
#define TDX_RELATIONAL_CHASE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/common/resource.h"
#include "src/common/status.h"
#include "src/relational/dependency.h"
#include "src/relational/homomorphism.h"
#include "src/relational/instance.h"

namespace tdx {

// Checkpoint/resume support (src/common/checkpoint.h); forward-declared so
// the options structs can carry the hooks without an include cycle.
class Checkpointer;
struct ChaseCheckpoint;

enum class ChaseResultKind {
  kSuccess,  ///< target is a universal solution
  kFailure,  ///< an egd equated two distinct non-null values: no solution
  kAborted,  ///< a ChaseLimits budget was exhausted; target is PARTIAL
};

struct ChaseStats {
  std::size_t tgd_triggers = 0;  ///< body homomorphisms found
  std::size_t tgd_fires = 0;     ///< triggers that actually fired
  std::size_t egd_steps = 0;     ///< successful egd applications
  std::size_t fresh_nulls = 0;   ///< labeled nulls created
  /// Argument slots rewritten by egd merges ("replaced everywhere",
  /// Definition 16) — a measure of how much substitution work the egd
  /// fixpoint did beyond the merge decisions themselves.
  std::size_t values_rewritten = 0;
  /// Egd-fixpoint invocations skipped because the schedule proved every
  /// pass a no-op (every egd dead or effect-free). Counted only when the
  /// mapping has egds at all.
  std::size_t skipped_egd_passes = 0;
  /// C-chase only: loop-top re-normalization passes skipped because
  /// nothing changed since the last normalization.
  std::size_t skipped_normalize_passes = 0;
  /// Stratum count of the schedule the run consulted; 0 when the run was
  /// unscheduled (ChaseOptions::scheduled == false).
  std::size_t schedule_strata = 0;
  /// Homomorphism-engine index counters (probes answered by a mask index,
  /// candidates those probes returned, full relation scans). Deterministic
  /// for a given program and engine configuration — independent of job
  /// count, since parallel collection probes the same round-start state.
  IndexStats search;
  /// The termination certificate the run consulted: taken from
  /// Mapping::certificate when the parser filled it in, otherwise derived
  /// on entry. Runs whose certificate is kUnknown are refused upfront.
  std::optional<TerminationCertificate> certificate;
};

/// Execution knobs for the snapshot chase (the c-chase mirrors them in
/// CChaseOptions).
struct ChaseOptions {
  ChaseLimits limits;
  /// Delta-driven (semi-naive) target-tgd rounds: each round enumerates only
  /// the triggers whose body image touches at least one fact inserted since
  /// the frontier last advanced, instead of re-joining the entire target.
  /// Both modes produce identical outcomes — a trigger over wholly-old facts
  /// was already enumerated the round its newest fact arrived, and fired or
  /// found witnessed then — so the naive mode survives purely as the
  /// correctness oracle (tests/seminaive_chase_test.cc pins the equivalence).
  bool semi_naive = true;
  /// Consume the mapping's ChaseSchedule (deriving one when absent): skip
  /// dead rules, skip provably no-op egd-fixpoint passes, and enable
  /// parallel trigger collection under `jobs`. Scheduled and unscheduled
  /// runs produce bit-identical outcomes — the schedule only removes work
  /// the graph proves is a no-op; rule firing order never changes. Off =
  /// the exact legacy engine, kept as the oracle.
  bool scheduled = true;
  /// Worker threads for trigger collection within a provably
  /// non-interfering parallel group (ChaseSchedule::parallel_groups); 1 =
  /// fully sequential. Firing stays sequential in declaration order
  /// regardless, so results are deterministic and jobs-independent.
  unsigned jobs = 1;
  /// When set, the engine offers a checkpoint at every safe point (phase
  /// boundaries and fired target-tgd rounds); the checkpointer decides which
  /// to persist. Not owned; may be null.
  Checkpointer* checkpointer = nullptr;
  /// When set, the engine restores the checkpointed state and continues from
  /// its safe point instead of starting fresh. The checkpoint must have been
  /// written by this engine under the same execution options (validated);
  /// limits may differ — raising the budget is the intended recovery path.
  /// Not owned; must outlive the call. May be null.
  const ChaseCheckpoint* resume_from = nullptr;
};

struct ChaseOutcome {
  explicit ChaseOutcome(Instance target_in) : target(std::move(target_in)) {}

  ChaseResultKind kind = ChaseResultKind::kSuccess;
  /// The chase target. A universal solution iff kind == kSuccess; on
  /// kAborted it holds whatever was materialized before the budget ran out
  /// (useful for diagnosis, NEVER a solution).
  Instance target;
  ChaseStats stats;
  /// Human-readable explanation when kind == kFailure.
  std::string failure_reason;
  /// The exhausted budget dimension and its description when kAborted.
  ResourceDimension abort_dimension = ResourceDimension::kNone;
  std::string abort_reason;
};

/// Runs the chase of `source` with `mapping`, materializing a target
/// instance over the same Schema. Fresh labeled nulls come from `universe`.
/// `limits` bounds the run; the default is unlimited. A run that exhausts
/// its budget returns kAborted with partial stats — rerunning with a larger
/// budget from the same source reproduces the identical solution
/// (determinism is unaffected by where the budget cut the previous run).
///
/// Deterministic: tgds fire in declaration order with triggers in canonical
/// order; egds likewise. The result of a successful chase is a universal
/// solution (Fagin et al., Theorem 3.3).
Result<ChaseOutcome> ChaseSnapshot(const Instance& source,
                                   const Mapping& mapping, Universe* universe,
                                   const ChaseLimits& limits = {});

/// Same, with execution knobs (semi-naive vs naive rounds).
Result<ChaseOutcome> ChaseSnapshot(const Instance& source,
                                   const Mapping& mapping, Universe* universe,
                                   const ChaseOptions& options);

// ---------------------------------------------------------------------------
// Building blocks, shared with the concrete chase (core/cchase.h), which
// differs only in how fresh nulls are minted (interval-annotated with h(t))
// and in the normalization steps between phases.
// ---------------------------------------------------------------------------

/// Mints the value substituted for an existential variable when `tgd` fires
/// with `trigger`. The snapshot chase returns a fresh labeled null; the
/// concrete chase returns a fresh null annotated with trigger(t).
using FreshNullFactory =
    std::function<Value(const Tgd& tgd, const Binding& trigger)>;

/// Phase 1: fires every s-t tgd trigger from `source` into `target`
/// (restricted chase: triggers whose head is already witnessed are skipped).
/// Charges `guard` per fire/null/fact and stops early once it trips; the
/// caller checks guard->tripped() to surface the abort.
void TgdPhase(const Instance& source, Instance* target,
              const std::vector<Tgd>& tgds, const FreshNullFactory& fresh,
              ChaseStats* stats, ResourceGuard* guard);

/// Phase 2: applies egd steps on `target` until fixpoint. Returns kFailure
/// (and fills `failure_reason`) when an egd equates two distinct non-null
/// values, kAborted when `guard` trips (budget, deadline, or the armed
/// fault point "chase/egd-fixpoint"). Handles labeled and
/// interval-annotated nulls uniformly.
///
/// Merges are applied through an in-place substitution over only the facts
/// that mention a merged value (found via a reverse value->fact index kept
/// across passes), falling back to a full instance rebuild when a pass
/// touches more than half the facts. Slots rewritten either way accrue to
/// ChaseStats::values_rewritten.
ChaseResultKind EgdFixpoint(Instance* target, const std::vector<Egd>& egds,
                            ChaseStats* stats, std::string* failure_reason,
                            ResourceGuard* guard);

/// One round of target-tgd firing: collects all triggers over the current
/// target, fires those without an extension witness, and returns true if
/// anything was inserted. Callers loop rounds to a fixpoint (guaranteed to
/// exist for weakly acyclic target tgds) and interleave with EgdFixpoint.
/// This is the naive round: every trigger is re-enumerated every round. It
/// is kept as the oracle the semi-naive engine is tested (and benchmarked)
/// against.
bool TargetTgdRound(Instance* target, const std::vector<Tgd>& tgds,
                    const FreshNullFactory& fresh, ChaseStats* stats,
                    ResourceGuard* guard);

/// Per-relation delta frontier for semi-naive target-tgd rounds: facts of
/// relation r at positions >= mark(r) form the frontier (inserted since the
/// frontier last advanced). A fresh or Reset frontier covers every fact —
/// round 0 seeds semi-naive evaluation with the full instance; callers also
/// Reset after anything rewrites existing facts (egd merges, normalization),
/// since rewritten facts can participate in triggers the frontier would
/// otherwise skip.
class DeltaFrontier {
 public:
  DeltaFrontier() = default;

  /// True while the frontier covers the whole instance.
  bool full() const { return full_; }

  /// First frontier position of `rel` (0 while full or for relations that
  /// appeared after the last advance).
  std::uint32_t mark(RelationId rel) const {
    return rel < marks_.size() ? marks_[rel] : 0;
  }

  /// Re-seed with the full instance.
  void Reset() {
    full_ = true;
    marks_.clear();
  }

  /// Raw per-relation marks, for checkpointing. Meaningful when !full().
  const std::vector<std::uint32_t>& marks() const { return marks_; }

  /// Advances the frontier: facts of `rel` below `sizes[rel]` stop being
  /// frontier. Callers pass the per-relation sizes captured at round start,
  /// so everything a round inserts is the next round's frontier.
  void AdvanceTo(std::vector<std::uint32_t> sizes) {
    full_ = false;
    marks_ = std::move(sizes);
  }

 private:
  bool full_ = true;
  std::vector<std::uint32_t> marks_;
};

/// Semi-naive round: like TargetTgdRound, but only enumerates triggers whose
/// body image touches the frontier, and probes the restricted-chase Exists
/// check against `finder` — a persistent HomomorphismFinder over `target`
/// whose indexes catch up incrementally instead of being rebuilt per round.
/// Advances `frontier` past the facts that existed at round start.
bool TargetTgdRoundDelta(Instance* target, const std::vector<Tgd>& tgds,
                         const FreshNullFactory& fresh, ChaseStats* stats,
                         ResourceGuard* guard, DeltaFrontier* frontier,
                         HomomorphismFinder* finder);

// ---------------------------------------------------------------------------
// Scheduled execution (analysis/planner.h). A TgdRunPlan is the runtime
// form of a ChaseSchedule for one tgd vector: dead rules dropped, the rest
// partitioned into consecutive groups whose trigger collections commute
// (so they may fan out onto the thread pool), head-universal key variables
// precomputed. Firing is ALWAYS sequential in declaration order — parallel
// collection over the immutable round-start state is the only concurrency,
// which keeps fresh-null identities and therefore the whole outcome
// bit-identical to the flat engine at any job count.
// ---------------------------------------------------------------------------

struct TgdRunPlan {
  /// Indices into the tgd vector: live rules in declaration order,
  /// partitioned into runs where no earlier member's head may feed a later
  /// member's body (singleton groups collect sequentially).
  std::vector<std::vector<std::size_t>> groups;
  /// Per tgd (all indices, dead included): its head-visible universal
  /// variables, precomputed once per run instead of once per round.
  std::vector<std::vector<VarId>> key_vars;
  /// Worker threads for group collection; <= 1 disables concurrency.
  unsigned jobs = 1;
};

/// Plan for the s-t tgd phase: every collection reads only the immutable
/// source, so all tgds form one group regardless of the schedule.
TgdRunPlan BuildStTgdRunPlan(const std::vector<Tgd>& tgds, unsigned jobs);

/// Plan for target-tgd rounds, from the mapping's schedule: dead rules
/// dropped, ChaseSchedule::parallel_groups as the groups.
TgdRunPlan BuildTargetTgdRunPlan(const std::vector<Tgd>& tgds,
                                 const ChaseSchedule& schedule, unsigned jobs);

/// TgdPhase consuming a plan. Bit-identical to TgdPhase for every plan and
/// job count; with jobs > 1 the per-tgd trigger collections run
/// concurrently (each task owns a scratch finder over the source).
void TgdPhasePlanned(const Instance& source, Instance* target,
                     const std::vector<Tgd>& tgds, const TgdRunPlan& plan,
                     const FreshNullFactory& fresh, ChaseStats* stats,
                     ResourceGuard* guard);

/// TargetTgdRoundDelta consuming a plan: skips dead rules and collects
/// each multi-member group concurrently over the round-start instance
/// before firing its members in declaration order. Bit-identical to
/// TargetTgdRoundDelta for every plan and job count.
bool TargetTgdRoundDeltaPlanned(Instance* target, const std::vector<Tgd>& tgds,
                                const TgdRunPlan& plan,
                                const FreshNullFactory& fresh,
                                ChaseStats* stats, ResourceGuard* guard,
                                DeltaFrontier* frontier,
                                HomomorphismFinder* finder);

/// TargetTgdRound (the naive oracle) consuming a plan: dead rules are
/// skipped; collection stays sequential (the naive path exists for oracle
/// clarity, not speed).
bool TargetTgdRoundPlanned(Instance* target, const std::vector<Tgd>& tgds,
                           const TgdRunPlan& plan,
                           const FreshNullFactory& fresh, ChaseStats* stats,
                           ResourceGuard* guard);

}  // namespace tdx

#endif  // TDX_RELATIONAL_CHASE_H_
