// The classical chase of Fagin, Kolaitis, Miller, and Popa ("Data exchange:
// semantics and query answering", TCS 2005) restricted to s-t tgds and egds.
//
// This is the per-snapshot building block of the paper's *abstract* chase
// (Section 3): chase(Ia, M) = <chase(db0, M), chase(db1, M), ...>. Because
// only s-t tgds and egds are allowed, every chase sequence is finite.
//
// The chase has two phases:
//   1. s-t tgd steps: for every homomorphism h from a tgd body to the
//      source with no extension h' from body & head to (I, J), fire — add
//      the head facts with a fresh labeled null per existential variable.
//   2. egd steps to fixpoint: for every homomorphism from an egd body to J
//      with h(x1) != h(x2): if both are non-nulls, the chase FAILS (no
//      solution exists, Proposition 4(2)); otherwise a null is replaced
//      everywhere by the other value.
//
// Chase failure is an outcome, not a Status error.

#ifndef TDX_RELATIONAL_CHASE_H_
#define TDX_RELATIONAL_CHASE_H_

#include <functional>
#include <optional>
#include <string>

#include "src/common/resource.h"
#include "src/common/status.h"
#include "src/relational/dependency.h"
#include "src/relational/instance.h"

namespace tdx {

enum class ChaseResultKind {
  kSuccess,  ///< target is a universal solution
  kFailure,  ///< an egd equated two distinct non-null values: no solution
  kAborted,  ///< a ChaseLimits budget was exhausted; target is PARTIAL
};

struct ChaseStats {
  std::size_t tgd_triggers = 0;  ///< body homomorphisms found
  std::size_t tgd_fires = 0;     ///< triggers that actually fired
  std::size_t egd_steps = 0;     ///< successful egd applications
  std::size_t fresh_nulls = 0;   ///< labeled nulls created
  /// The termination certificate the run consulted: taken from
  /// Mapping::certificate when the parser filled it in, otherwise derived
  /// on entry. Runs whose certificate is kUnknown are refused upfront.
  std::optional<TerminationCertificate> certificate;
};

struct ChaseOutcome {
  explicit ChaseOutcome(Instance target_in) : target(std::move(target_in)) {}

  ChaseResultKind kind = ChaseResultKind::kSuccess;
  /// The chase target. A universal solution iff kind == kSuccess; on
  /// kAborted it holds whatever was materialized before the budget ran out
  /// (useful for diagnosis, NEVER a solution).
  Instance target;
  ChaseStats stats;
  /// Human-readable explanation when kind == kFailure.
  std::string failure_reason;
  /// The exhausted budget dimension and its description when kAborted.
  ResourceDimension abort_dimension = ResourceDimension::kNone;
  std::string abort_reason;
};

/// Runs the chase of `source` with `mapping`, materializing a target
/// instance over the same Schema. Fresh labeled nulls come from `universe`.
/// `limits` bounds the run; the default is unlimited. A run that exhausts
/// its budget returns kAborted with partial stats — rerunning with a larger
/// budget from the same source reproduces the identical solution
/// (determinism is unaffected by where the budget cut the previous run).
///
/// Deterministic: tgds fire in declaration order with triggers in canonical
/// order; egds likewise. The result of a successful chase is a universal
/// solution (Fagin et al., Theorem 3.3).
Result<ChaseOutcome> ChaseSnapshot(const Instance& source,
                                   const Mapping& mapping, Universe* universe,
                                   const ChaseLimits& limits = {});

// ---------------------------------------------------------------------------
// Building blocks, shared with the concrete chase (core/cchase.h), which
// differs only in how fresh nulls are minted (interval-annotated with h(t))
// and in the normalization steps between phases.
// ---------------------------------------------------------------------------

/// Mints the value substituted for an existential variable when `tgd` fires
/// with `trigger`. The snapshot chase returns a fresh labeled null; the
/// concrete chase returns a fresh null annotated with trigger(t).
using FreshNullFactory =
    std::function<Value(const Tgd& tgd, const Binding& trigger)>;

/// Phase 1: fires every s-t tgd trigger from `source` into `target`
/// (restricted chase: triggers whose head is already witnessed are skipped).
/// Charges `guard` per fire/null/fact and stops early once it trips; the
/// caller checks guard->tripped() to surface the abort.
void TgdPhase(const Instance& source, Instance* target,
              const std::vector<Tgd>& tgds, const FreshNullFactory& fresh,
              ChaseStats* stats, ResourceGuard* guard);

/// Phase 2: applies egd steps on `target` until fixpoint. Returns kFailure
/// (and fills `failure_reason`) when an egd equates two distinct non-null
/// values, kAborted when `guard` trips (budget, deadline, or the armed
/// fault point "chase/egd-fixpoint"). Handles labeled and
/// interval-annotated nulls uniformly.
ChaseResultKind EgdFixpoint(Instance* target, const std::vector<Egd>& egds,
                            ChaseStats* stats, std::string* failure_reason,
                            ResourceGuard* guard);

/// One round of target-tgd firing: collects all triggers over the current
/// target, fires those without an extension witness, and returns true if
/// anything was inserted. Callers loop rounds to a fixpoint (guaranteed to
/// exist for weakly acyclic target tgds) and interleave with EgdFixpoint.
bool TargetTgdRound(Instance* target, const std::vector<Tgd>& tgds,
                    const FreshNullFactory& fresh, ChaseStats* stats,
                    ResourceGuard* guard);

}  // namespace tdx

#endif  // TDX_RELATIONAL_CHASE_H_
