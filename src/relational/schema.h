// Database schemas for both the snapshot (non-temporal) world and the
// concrete (temporal) world.
//
// The paper works with a schema R and its concrete counterpart R+ (Section
// 2): for each n-ary relation R(A1, ..., An) in R there is an (n+1)-ary
// concrete relation R+(A1, ..., An, T) whose last attribute T takes time
// intervals as values.
//
// A tdx Schema holds both source and target relations of a data exchange
// setting (their instances are compared and chased together), and records
// twin links between a snapshot relation R and its concrete counterpart R+
// so that dependencies and queries can be lifted (adding the universally
// quantified temporal variable t of Section 4) and instances can be moved
// between the two views (the semantics function [[.]] of Section 2).

#ifndef TDX_RELATIONAL_SCHEMA_H_
#define TDX_RELATIONAL_SCHEMA_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"

namespace tdx {

/// Dense id of a relation within a Schema.
using RelationId = std::uint32_t;

/// Which side of the data exchange setting a relation belongs to.
enum class SchemaRole : std::uint8_t { kSource, kTarget };

/// Metadata of one relation.
struct RelationSchema {
  RelationId id = 0;
  std::string name;
  /// Attribute names; for temporal relations the last one is the temporal
  /// attribute T.
  std::vector<std::string> attributes;
  /// True for concrete relations R+ (last attribute is interval-valued).
  bool temporal = false;
  SchemaRole role = SchemaRole::kSource;
  /// Twin link: for R the id of R+, for R+ the id of R. Unset when the
  /// relation was registered without a twin.
  std::optional<RelationId> twin;

  /// Total number of attributes (including T for temporal relations).
  std::size_t arity() const { return attributes.size(); }
  /// Number of data attributes (excludes T).
  std::size_t data_arity() const { return arity() - (temporal ? 1 : 0); }
  /// Index of the temporal attribute. Precondition: temporal.
  std::size_t temporal_position() const {
    assert(temporal);
    return arity() - 1;
  }
};

/// A collection of relations. Append-only; instances hold a pointer to the
/// Schema they are over, so a Schema must outlive its instances.
class Schema {
 public:
  Schema() = default;
  Schema(const Schema&) = delete;
  Schema& operator=(const Schema&) = delete;
  Schema(Schema&&) = default;
  Schema& operator=(Schema&&) = default;

  /// Registers a non-temporal (snapshot) relation.
  Result<RelationId> AddRelation(std::string_view name,
                                 std::vector<std::string> attributes,
                                 SchemaRole role);

  /// Registers a concrete relation R+(A1, ..., An, T); `attributes` are the
  /// data attributes only, the temporal attribute "T" is appended.
  Result<RelationId> AddTemporalRelation(std::string_view name,
                                         std::vector<std::string> attributes,
                                         SchemaRole role);

  /// Registers the twin pair R (snapshot) and R+ (concrete) in one call and
  /// links them. `name` names R; R+ is named `name` + "+". Returns the id of
  /// the *concrete* relation; the snapshot twin is reachable via twin().
  Result<RelationId> AddRelationPair(std::string_view name,
                                     std::vector<std::string> attributes,
                                     SchemaRole role);

  /// Looks up a relation id by name.
  Result<RelationId> Find(std::string_view name) const;

  const RelationSchema& relation(RelationId id) const {
    assert(id < relations_.size());
    return relations_[id];
  }

  /// Twin of a relation registered via AddRelationPair.
  Result<RelationId> TwinOf(RelationId id) const;

  std::size_t relation_count() const { return relations_.size(); }

  /// All relation ids with the given role and temporality.
  std::vector<RelationId> RelationsWhere(SchemaRole role, bool temporal) const;

 private:
  std::vector<RelationSchema> relations_;
  std::unordered_map<std::string, RelationId> by_name_;
};

}  // namespace tdx

#endif  // TDX_RELATIONAL_SCHEMA_H_
