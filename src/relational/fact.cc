#include "src/relational/fact.h"

namespace tdx {

namespace {

std::string RenderFact(RelationId rel, const Value* args, std::size_t n,
                       const Schema& schema, const Universe& u) {
  std::string out = schema.relation(rel).name;
  out += "(";
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0) out += ", ";
    out += u.Render(args[i]);
  }
  out += ")";
  return out;
}

}  // namespace

Fact Fact::WithInterval(const Interval& iv) const {
  assert(has_interval());
  std::vector<Value> args = args_;
  for (std::size_t i = 0; i + 1 < args.size(); ++i) {
    if (args[i].is_annotated_null()) args[i] = args[i].Reannotated(iv);
  }
  args.back() = Value::OfInterval(iv);
  return Fact(rel_, std::move(args));
}

Fact FactView::WithInterval(const Interval& iv) const {
  assert(has_interval());
  std::vector<Value> args(args_, args_ + arity_);
  for (std::size_t i = 0; i + 1 < args.size(); ++i) {
    if (args[i].is_annotated_null()) args[i] = args[i].Reannotated(iv);
  }
  args.back() = Value::OfInterval(iv);
  return Fact(rel_, std::move(args));
}

std::string Fact::ToString(const Schema& schema, const Universe& u) const {
  return RenderFact(rel_, args_.data(), args_.size(), schema, u);
}

std::string FactView::ToString(const Schema& schema, const Universe& u) const {
  return RenderFact(rel_, args_, arity_, schema, u);
}

}  // namespace tdx
