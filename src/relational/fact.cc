#include "src/relational/fact.h"

namespace tdx {

Fact Fact::WithInterval(const Interval& iv) const {
  assert(has_interval());
  std::vector<Value> args = args_;
  for (std::size_t i = 0; i + 1 < args.size(); ++i) {
    if (args[i].is_annotated_null()) args[i] = args[i].Reannotated(iv);
  }
  args.back() = Value::OfInterval(iv);
  return Fact(rel_, std::move(args));
}

std::string Fact::ToString(const Schema& schema, const Universe& u) const {
  std::string out = schema.relation(rel_).name;
  out += "(";
  for (std::size_t i = 0; i < args_.size(); ++i) {
    if (i > 0) out += ", ";
    out += u.Render(args_[i]);
  }
  out += ")";
  return out;
}

}  // namespace tdx
