#include "src/relational/universal.h"

namespace tdx {

Conjunction InstanceToConjunction(
    const Instance& instance,
    std::unordered_map<Value, VarId, ValueHash>* null_vars) {
  Conjunction conj;
  instance.ForEach([&](FactView fact) {
    Atom atom;
    atom.rel = fact.relation();
    atom.terms.reserve(fact.arity());
    for (const Value& v : fact.args()) {
      if (v.is_any_null()) {
        auto [it, inserted] = null_vars->emplace(
            v, static_cast<VarId>(null_vars->size()));
        (void)inserted;
        atom.terms.push_back(Term::Var(it->second));
      } else {
        atom.terms.push_back(Term::Val(v));
      }
    }
    conj.atoms.push_back(std::move(atom));
  });
  conj.num_vars = null_vars->size();
  return conj;
}

std::optional<NullAssignment> FindInstanceHomomorphism(const Instance& from,
                                                       const Instance& to) {
  std::unordered_map<Value, VarId, ValueHash> null_vars;
  const Conjunction conj = InstanceToConjunction(from, &null_vars);
  HomomorphismFinder finder(to);
  std::optional<Binding> found =
      finder.FindFirst(conj, Binding(conj.num_vars));
  if (!found.has_value()) return std::nullopt;
  NullAssignment assignment;
  for (const auto& [null, var] : null_vars) {
    assignment.emplace(null, found->Get(var));
  }
  return assignment;
}

bool AreHomomorphicallyEquivalent(const Instance& a, const Instance& b) {
  return FindInstanceHomomorphism(a, b).has_value() &&
         FindInstanceHomomorphism(b, a).has_value();
}

}  // namespace tdx
