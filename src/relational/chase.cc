#include "src/relational/chase.h"

#include <functional>
#include <map>
#include <memory>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/analysis/termination.h"

namespace tdx {

namespace {

/// Universally quantified variables that occur in the head. Two triggers
/// that agree on these produce interchangeable head images, so they are
/// deduplicated before firing.
std::vector<VarId> HeadUniversalVars(const Tgd& tgd) {
  std::unordered_set<VarId> existential(tgd.existential.begin(),
                                        tgd.existential.end());
  std::unordered_set<VarId> seen;
  std::vector<VarId> out;
  for (const Atom& atom : tgd.head.atoms) {
    for (const Term& t : atom.terms) {
      if (t.is_var() && existential.count(t.var()) == 0 &&
          seen.insert(t.var()).second) {
        out.push_back(t.var());
      }
    }
  }
  return out;
}

/// Substitutes `binding` into `atom`; every variable must be bound.
Fact Instantiate(const Atom& atom, const Binding& binding) {
  std::vector<Value> args;
  args.reserve(atom.terms.size());
  for (const Term& t : atom.terms) {
    args.push_back(t.is_var() ? binding.Get(t.var()) : t.value());
  }
  return Fact(atom.rel, std::move(args));
}

}  // namespace

namespace {

/// Fires all of `tgd`'s triggers found in `source` into `target` (which may
/// alias `source` for target tgds; triggers are fully collected before any
/// insertion). Returns true if at least one new fact was inserted.
bool FireTgd(const Instance& source, Instance* target, const Tgd& tgd,
             const FreshNullFactory& fresh, ChaseStats* stats,
             ResourceGuard* guard);

}  // namespace

void TgdPhase(const Instance& source, Instance* target,
              const std::vector<Tgd>& tgds, const FreshNullFactory& fresh,
              ChaseStats* stats, ResourceGuard* guard) {
  for (const Tgd& tgd : tgds) {
    if (guard->tripped()) return;
    FireTgd(source, target, tgd, fresh, stats, guard);
  }
}

bool TargetTgdRound(Instance* target, const std::vector<Tgd>& tgds,
                    const FreshNullFactory& fresh, ChaseStats* stats,
                    ResourceGuard* guard) {
  bool inserted = false;
  for (const Tgd& tgd : tgds) {
    if (guard->tripped()) break;
    if (FireTgd(*target, target, tgd, fresh, stats, guard)) inserted = true;
  }
  return inserted;
}

namespace {

bool FireTgd(const Instance& source, Instance* target, const Tgd& tgd,
             const FreshNullFactory& fresh, ChaseStats* stats,
             ResourceGuard* guard) {
  bool inserted_any = false;
  {
    // Collect triggers, deduplicated by the head-visible universal values:
    // triggers agreeing there would fire indistinguishable head images.
    // Collection completes before any firing, so `source` may alias
    // `*target` (target tgds) without invalidation.
    const std::vector<VarId> key_vars = HeadUniversalVars(tgd);
    std::map<std::vector<Value>, Binding> triggers;
    HomomorphismFinder source_finder(source);
    source_finder.ForEach(
        tgd.body, Binding(tgd.num_vars()),
        [&](const Binding& binding, const AtomImage&) {
          ++stats->tgd_triggers;
          std::vector<Value> key;
          key.reserve(key_vars.size());
          for (VarId v : key_vars) key.push_back(binding.Get(v));
          triggers.emplace(std::move(key), binding);
          return true;
        });

    // Fire each unique trigger unless an extension homomorphism already
    // exists in the current target (restricted chase). With a single-atom
    // head, a fired fact carries its own trigger's universal values at
    // every universal position, so it can never witness a DIFFERENT key:
    // the extension finder built at phase start stays exact and is not
    // rebuilt. Multi-atom heads can witness other keys through mixed fact
    // combinations, so there the finder is rebuilt whenever the target
    // grows.
    const bool rebuild_on_insert = tgd.head.atoms.size() > 1;
    std::unique_ptr<HomomorphismFinder> target_finder;
    bool target_dirty = true;
    for (auto& [key, binding] : triggers) {
      if (!guard->CheckDeadline()) break;
      if (target_dirty) {
        target_finder = std::make_unique<HomomorphismFinder>(*target);
        target_dirty = false;
      }
      if (target_finder->Exists(tgd.head, binding)) continue;
      // Budget checks come before the corresponding work, so an aborted
      // firing never half-materializes: no nulls are minted and no facts
      // inserted once the guard trips.
      if (!guard->ChargeTgdFire()) break;
      Binding extended = binding;
      for (VarId y : tgd.existential) {
        if (!guard->ChargeFreshNull()) break;
        extended.Bind(y, fresh(tgd, binding));
        ++stats->fresh_nulls;
      }
      if (guard->tripped()) break;
      bool fact_budget_ok = true;
      for (const Atom& atom : tgd.head.atoms) {
        if (target->Insert(Instantiate(atom, extended))) {
          if (rebuild_on_insert) target_dirty = true;
          inserted_any = true;
          // Duplicates are free: only facts that grew the instance count.
          if (!guard->ChargeFact()) {
            fact_budget_ok = false;
            break;
          }
        }
      }
      ++stats->tgd_fires;
      if (!fact_budget_ok) break;
    }
  }
  return inserted_any;
}

}  // namespace

ChaseResultKind EgdFixpoint(Instance* target, const std::vector<Egd>& egds,
                            ChaseStats* stats, std::string* failure_reason,
                            ResourceGuard* guard) {
  // Batched passes: collect every violated equality, merge the equivalence
  // classes with union-find, rebuild the instance once, repeat. This is
  // equivalent to applying egd steps one at a time (the egd chase is
  // confluent up to null renaming) but costs one rebuild per pass instead
  // of one per step.
  while (true) {
    if (!guard->PokeFault("chase/egd-fixpoint") || !guard->CheckDeadline()) {
      return ChaseResultKind::kAborted;
    }
    // ---- collect all violated equalities --------------------------------
    std::vector<std::pair<Value, Value>> pairs;
    std::string violated_label;
    {
      HomomorphismFinder finder(*target);
      for (const Egd& egd : egds) {
        finder.ForEach(egd.body, Binding(egd.num_vars()),
                       [&](const Binding& binding, const AtomImage&) {
                         const Value& a = binding.Get(egd.x1);
                         const Value& b = binding.Get(egd.x2);
                         if (a != b) {
                           pairs.emplace_back(a, b);
                           if (violated_label.empty()) {
                             violated_label = egd.label;
                           }
                         }
                         return true;
                       });
      }
    }
    if (pairs.empty()) return ChaseResultKind::kSuccess;

    // ---- union-find over the values involved -----------------------------
    std::unordered_map<Value, std::size_t, ValueHash> index;
    std::vector<Value> values;
    std::vector<std::size_t> parent;
    auto intern = [&](const Value& v) {
      auto [it, inserted] = index.emplace(v, values.size());
      if (inserted) {
        values.push_back(v);
        parent.push_back(parent.size());
      }
      return it->second;
    };
    std::function<std::size_t(std::size_t)> find =
        [&](std::size_t x) -> std::size_t {
      while (parent[x] != x) {
        parent[x] = parent[parent[x]];
        x = parent[x];
      }
      return x;
    };
    for (const auto& [a, b] : pairs) {
      parent[find(intern(a))] = find(intern(b));
    }

    // ---- pick a representative per class ---------------------------------
    // A non-null wins; two distinct non-nulls in one class is chase
    // failure; among nulls, the smallest id wins (deterministic).
    std::unordered_map<std::size_t, Value> representative;
    for (std::size_t i = 0; i < values.size(); ++i) {
      const std::size_t root = find(i);
      const Value& v = values[i];
      auto it = representative.find(root);
      if (it == representative.end()) {
        representative.emplace(root, v);
        continue;
      }
      const Value& cur = it->second;
      if (!v.is_any_null()) {
        if (!cur.is_any_null()) {
          *failure_reason = "egd '" + violated_label +
                            "' equates two distinct non-null values";
          return ChaseResultKind::kFailure;
        }
        it->second = v;
      } else if (cur.is_any_null() && v.null_id() < cur.null_id()) {
        it->second = v;
      }
    }

    // ---- apply all merges in one rebuild ----------------------------------
    // The pass's steps are charged before the rebuild: a pass that blows
    // the egd budget aborts without paying for the rebuild.
    if (!guard->ChargeEgdSteps(index.size() - representative.size())) {
      return ChaseResultKind::kAborted;
    }
    Instance next(&target->schema());
    std::size_t replaced = 0;
    target->ForEach([&](const Fact& fact) {
      std::vector<Value> args;
      args.reserve(fact.arity());
      for (const Value& v : fact.args()) {
        auto it = index.find(v);
        if (it == index.end()) {
          args.push_back(v);
          continue;
        }
        const Value& rep = representative.at(find(it->second));
        if (rep != v) ++replaced;
        args.push_back(rep);
      }
      next.Insert(Fact(fact.relation(), std::move(args)));
    });
    stats->egd_steps += index.size() - representative.size();
    (void)replaced;
    *target = std::move(next);
  }
}

Result<ChaseOutcome> ChaseSnapshot(const Instance& source,
                                   const Mapping& mapping, Universe* universe,
                                   const ChaseLimits& limits) {
  ResourceGuard guard(limits);
  ChaseOutcome outcome(Instance(&source.schema()));
  // Consult the mapping's termination certificate (or derive one) before
  // doing any work: an uncertified set of target tgds may chase forever.
  outcome.stats.certificate =
      mapping.certificate.has_value()
          ? *mapping.certificate
          : CertifyTermination(mapping.target_tgds, source.schema());
  if (!outcome.stats.certificate->guarantees_termination()) {
    return Status::InvalidArgument(
        "refusing to chase: target tgds are not weakly acyclic (cycle " +
        outcome.stats.certificate->witness + "); the chase might not "
        "terminate");
  }
  const auto aborted = [&]() {
    outcome.kind = ChaseResultKind::kAborted;
    outcome.abort_dimension = guard.dimension();
    outcome.abort_reason = guard.reason();
    return outcome;
  };
  const FreshNullFactory fresh = [universe](const Tgd&, const Binding&) {
    return universe->FreshNull();
  };
  if (!guard.PokeFault("chase/tgd-phase")) return aborted();
  TgdPhase(source, &outcome.target, mapping.st_tgds, fresh, &outcome.stats,
           &guard);
  if (guard.tripped()) return aborted();

  // Interleave target-tgd rounds and egd steps to a joint fixpoint. Weak
  // acyclicity (ValidateMapping) bounds the number of fresh nulls, so this
  // terminates; the round cap is a defensive backstop for unvalidated input.
  std::size_t rounds = 0;
  while (true) {
    bool fired = false;
    while (TargetTgdRound(&outcome.target, mapping.target_tgds, fresh,
                          &outcome.stats, &guard)) {
      fired = true;
      if (guard.tripped()) return aborted();
      if (++rounds > 100000) {
        return Status::Internal(
            "target-tgd chase exceeded its iteration budget; are the "
            "target tgds weakly acyclic?");
      }
    }
    if (guard.tripped()) return aborted();
    const std::size_t egd_before = outcome.stats.egd_steps;
    outcome.kind = EgdFixpoint(&outcome.target, mapping.egds, &outcome.stats,
                               &outcome.failure_reason, &guard);
    if (outcome.kind == ChaseResultKind::kFailure) return outcome;
    if (outcome.kind == ChaseResultKind::kAborted) return aborted();
    if (!fired && outcome.stats.egd_steps == egd_before) break;
    if (++rounds > 100000) {
      return Status::Internal(
          "chase exceeded its iteration budget; are the target tgds weakly "
          "acyclic?");
    }
  }
  return outcome;
}

}  // namespace tdx
