#include "src/relational/chase.h"

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/analysis/planner.h"
#include "src/analysis/termination.h"
#include "src/common/checkpoint.h"
#include "src/common/thread_pool.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace tdx {

namespace {

/// Run-level metrics for the snapshot engine. Published once per run, as
/// bulk deltas of the ChaseStats the engine maintains anyway, so the chase
/// interior pays nothing per trigger. See docs/INTERNALS.md
/// ("Observability") for the name registry.
struct SnapshotMetrics {
  obs::Counter runs{"snapshot.runs"};
  obs::Counter aborts{"snapshot.aborts"};
  obs::Counter rounds{"snapshot.rounds"};
  obs::Counter tgd_triggers{"snapshot.tgd_triggers"};
  obs::Counter tgd_fires{"snapshot.tgd_fires"};
  obs::Counter egd_steps{"snapshot.egd_steps"};
  obs::Counter fresh_nulls{"snapshot.fresh_nulls"};
  obs::Counter values_rewritten{"snapshot.values_rewritten"};
  obs::Counter skipped_egd_passes{"snapshot.skipped_egd_passes"};
  obs::Gauge strata{"snapshot.schedule_strata"};
  obs::Histogram run_us{"snapshot.run_us"};
};

SnapshotMetrics& GetSnapshotMetrics() {
  static auto* metrics = new SnapshotMetrics();
  return *metrics;
}

/// Publishes the run's stats deltas (and round count) when the engine
/// returns by any path — success, chase failure, abort, or Status error.
class SnapshotRunScope {
 public:
  SnapshotRunScope(const ChaseStats* stats, const std::size_t* rounds,
                   const ChaseResultKind* kind)
      : stats_(stats),
        rounds_(rounds),
        kind_(kind),
        entry_(*stats),
        entry_rounds_(*rounds),
        latency_(&GetSnapshotMetrics().run_us) {}

  ~SnapshotRunScope() {
    SnapshotMetrics& m = GetSnapshotMetrics();
    m.runs.Inc();
    if (*kind_ == ChaseResultKind::kAborted) m.aborts.Inc();
    m.rounds.Inc(*rounds_ - entry_rounds_);
    m.tgd_triggers.Inc(stats_->tgd_triggers - entry_.tgd_triggers);
    m.tgd_fires.Inc(stats_->tgd_fires - entry_.tgd_fires);
    m.egd_steps.Inc(stats_->egd_steps - entry_.egd_steps);
    m.fresh_nulls.Inc(stats_->fresh_nulls - entry_.fresh_nulls);
    m.values_rewritten.Inc(stats_->values_rewritten -
                           entry_.values_rewritten);
    m.skipped_egd_passes.Inc(stats_->skipped_egd_passes -
                             entry_.skipped_egd_passes);
    m.strata.Set(stats_->schedule_strata);
  }

 private:
  const ChaseStats* stats_;
  const std::size_t* rounds_;
  const ChaseResultKind* kind_;
  ChaseStats entry_;
  std::size_t entry_rounds_;
  obs::ScopedLatency latency_;
};

}  // namespace

namespace {

/// Universally quantified variables that occur in the head. Two triggers
/// that agree on these produce interchangeable head images, so they are
/// deduplicated before firing.
std::vector<VarId> HeadUniversalVars(const Tgd& tgd) {
  std::unordered_set<VarId> existential(tgd.existential.begin(),
                                        tgd.existential.end());
  std::unordered_set<VarId> seen;
  std::vector<VarId> out;
  for (const Atom& atom : tgd.head.atoms) {
    for (const Term& t : atom.terms) {
      if (t.is_var() && existential.count(t.var()) == 0 &&
          seen.insert(t.var()).second) {
        out.push_back(t.var());
      }
    }
  }
  return out;
}

/// Triggers of one tgd, deduplicated and canonically ordered by the
/// head-visible universal values: triggers agreeing there would fire
/// indistinguishable head images (the fresh-null factories only consult
/// head-visible variables), so the first collected binding represents the
/// key. Collection always completes before any firing, so the enumerated
/// instance may alias the insertion target.
using TriggerSet = std::map<std::vector<Value>, Binding>;

void CollectTriggers(HomomorphismFinder* finder, const Tgd& tgd,
                     const std::vector<VarId>& key_vars, ChaseStats* stats,
                     TriggerSet* triggers) {
  finder->ForEach(tgd.body, Binding(tgd.num_vars()),
                  [&](const Binding& binding, const AtomImage&) {
                    ++stats->tgd_triggers;
                    std::vector<Value> key;
                    key.reserve(key_vars.size());
                    for (VarId v : key_vars) key.push_back(binding.Get(v));
                    triggers->emplace(std::move(key), binding);
                    return true;
                  });
}

/// Semi-naive collection: seeds enumeration on each body atom's frontier
/// range, so only triggers whose image touches at least one frontier fact
/// are found. Triggers touching several frontier facts are enumerated once
/// per touched atom; the key map absorbs the duplicates.
void CollectTriggersDelta(HomomorphismFinder* finder, const Instance& inst,
                          const Tgd& tgd, const std::vector<VarId>& key_vars,
                          const DeltaFrontier& frontier, ChaseStats* stats,
                          TriggerSet* triggers) {
  for (std::size_t i = 0; i < tgd.body.atoms.size(); ++i) {
    const RelationId rel = tgd.body.atoms[i].rel;
    const std::uint32_t begin = frontier.mark(rel);
    const auto end = static_cast<std::uint32_t>(inst.facts(rel).size());
    if (begin >= end) continue;
    finder->ForEachSeeded(tgd.body, i, begin, end, Binding(tgd.num_vars()),
                          [&](const Binding& binding, const AtomImage&) {
                            ++stats->tgd_triggers;
                            std::vector<Value> key;
                            key.reserve(key_vars.size());
                            for (VarId v : key_vars) {
                              key.push_back(binding.Get(v));
                            }
                            triggers->emplace(std::move(key), binding);
                            return true;
                          });
  }
}

/// Fires every collected trigger that lacks an extension witness in the
/// current target (restricted chase). `head_finder` enumerates over the
/// live target: its index cache absorbs the inserts this loop performs, so
/// a witness fired moments ago is visible to the next Exists probe — the
/// behavior the old per-insert finder rebuild bought, at append cost.
/// Returns true if at least one new fact was inserted.
bool FireTriggers(Instance* target, const Tgd& tgd, TriggerSet& triggers,
                  const FreshNullFactory& fresh, ChaseStats* stats,
                  ResourceGuard* guard, HomomorphismFinder* head_finder) {
  bool inserted_any = false;
  std::vector<Value> row;  // reused head-instantiation scratch
  for (auto& [key, binding] : triggers) {
    if (!guard->CheckDeadline()) break;
    // In-place witness check: the binding is extended during the search and
    // fully restored before Exists returns.
    if (head_finder->Exists(tgd.head, &binding)) continue;
    // Budget checks come before the corresponding work, so an aborted
    // firing never half-materializes: no nulls are minted and no facts
    // inserted once the guard trips.
    if (!guard->ChargeTgdFire()) break;
    Binding extended = binding;
    for (VarId y : tgd.existential) {
      if (!guard->ChargeFreshNull()) break;
      extended.Bind(y, fresh(tgd, binding));
      ++stats->fresh_nulls;
    }
    if (guard->tripped()) break;
    bool fact_budget_ok = true;
    for (const Atom& atom : tgd.head.atoms) {
      row.clear();
      for (const Term& t : atom.terms) {
        row.push_back(t.is_var() ? extended.Get(t.var()) : t.value());
      }
      if (target->InsertSpan(atom.rel, row.data(), row.size())) {
        inserted_any = true;
        // Duplicates are free: only facts that grew the instance count.
        if (!guard->ChargeFact()) {
          fact_budget_ok = false;
          break;
        }
      }
    }
    ++stats->tgd_fires;
    if (!fact_budget_ok) break;
  }
  return inserted_any;
}

/// Naive firing of one tgd: full trigger enumeration via `body_finder`,
/// witness checks via `head_finder` (the two may be one finder when source
/// aliases target).
bool FireTgd(const Instance& source, Instance* target, const Tgd& tgd,
             const FreshNullFactory& fresh, ChaseStats* stats,
             ResourceGuard* guard, HomomorphismFinder* body_finder,
             HomomorphismFinder* head_finder) {
  (void)source;
  const std::vector<VarId> key_vars = HeadUniversalVars(tgd);
  TriggerSet triggers;
  CollectTriggers(body_finder, tgd, key_vars, stats, &triggers);
  return FireTriggers(target, tgd, triggers, fresh, stats, guard, head_finder);
}

}  // namespace

void TgdPhase(const Instance& source, Instance* target,
              const std::vector<Tgd>& tgds, const FreshNullFactory& fresh,
              ChaseStats* stats, ResourceGuard* guard) {
  // One finder per side for the whole phase: the source is immutable here,
  // and the target finder's indexes absorb the phase's own inserts.
  HomomorphismFinder body_finder(source, &stats->search);
  HomomorphismFinder head_finder(*target, &stats->search);
  for (const Tgd& tgd : tgds) {
    if (guard->tripped()) return;
    FireTgd(source, target, tgd, fresh, stats, guard, &body_finder,
            &head_finder);
  }
}

bool TargetTgdRound(Instance* target, const std::vector<Tgd>& tgds,
                    const FreshNullFactory& fresh, ChaseStats* stats,
                    ResourceGuard* guard) {
  bool inserted = false;
  for (const Tgd& tgd : tgds) {
    if (guard->tripped()) break;
    // A fresh finder per tgd, as the naive engine always did: this path is
    // the oracle, kept deliberately simple.
    HomomorphismFinder finder(*target, &stats->search);
    if (FireTgd(*target, target, tgd, fresh, stats, guard, &finder, &finder)) {
      inserted = true;
    }
  }
  return inserted;
}

bool TargetTgdRoundDelta(Instance* target, const std::vector<Tgd>& tgds,
                         const FreshNullFactory& fresh, ChaseStats* stats,
                         ResourceGuard* guard, DeltaFrontier* frontier,
                         HomomorphismFinder* finder) {
  // Everything inserted from here on is the next round's frontier. Sizes
  // are captured before any firing; facts a tgd inserts this round are
  // enumerated by later tgds' collections (they are past the current marks)
  // AND again next round — redundant but harmless, the witness check skips
  // re-fires.
  const std::size_t relation_count = target->schema().relation_count();
  std::vector<std::uint32_t> start_sizes(relation_count);
  for (RelationId rel = 0; rel < relation_count; ++rel) {
    start_sizes[rel] = static_cast<std::uint32_t>(target->facts(rel).size());
  }
  bool inserted = false;
  for (const Tgd& tgd : tgds) {
    if (guard->tripped()) break;
    const std::vector<VarId> key_vars = HeadUniversalVars(tgd);
    TriggerSet triggers;
    if (frontier->full()) {
      CollectTriggers(finder, tgd, key_vars, stats, &triggers);
    } else {
      CollectTriggersDelta(finder, *target, tgd, key_vars, *frontier, stats,
                           &triggers);
    }
    if (FireTriggers(target, tgd, triggers, fresh, stats, guard, finder)) {
      inserted = true;
    }
  }
  frontier->AdvanceTo(std::move(start_sizes));
  return inserted;
}

TgdRunPlan BuildStTgdRunPlan(const std::vector<Tgd>& tgds, unsigned jobs) {
  TgdRunPlan plan;
  plan.jobs = jobs;
  plan.key_vars.reserve(tgds.size());
  for (const Tgd& tgd : tgds) plan.key_vars.push_back(HeadUniversalVars(tgd));
  if (!tgds.empty()) {
    // Collections read only the immutable source: one all-inclusive group.
    std::vector<std::size_t> all(tgds.size());
    for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
    plan.groups.push_back(std::move(all));
  }
  return plan;
}

TgdRunPlan BuildTargetTgdRunPlan(const std::vector<Tgd>& tgds,
                                 const ChaseSchedule& schedule,
                                 unsigned jobs) {
  TgdRunPlan plan;
  plan.jobs = jobs;
  plan.key_vars.reserve(tgds.size());
  for (const Tgd& tgd : tgds) plan.key_vars.push_back(HeadUniversalVars(tgd));
  plan.groups = schedule.parallel_groups;
  return plan;
}

namespace {

/// Collects the triggers of every group member, concurrently when the plan
/// allows, then fires the members in declaration order through the shared
/// `fire_finder`. `collect` runs against per-task scratch finders (each
/// task owns one over `collect_instance`); it must only READ the instance.
/// Trigger counts accrue per member right before its firing — exactly when
/// the flat engine would have counted them — so stats sequences match the
/// unplanned path even across guard trips.
bool RunGroup(
    const std::vector<std::size_t>& group, Instance* target,
    const std::vector<Tgd>& tgds, const TgdRunPlan& plan,
    const Instance& collect_instance, const FreshNullFactory& fresh,
    ChaseStats* stats, ResourceGuard* guard, HomomorphismFinder* fire_finder,
    const std::function<void(HomomorphismFinder*, std::size_t, ChaseStats*,
                             TriggerSet*)>& collect) {
  std::vector<TriggerSet> sets(group.size());
  std::vector<ChaseStats> local(group.size());
  if (plan.jobs > 1 && group.size() > 1) {
    ParallelFor(plan.jobs, group.size(), [&](std::size_t k) {
      HomomorphismFinder scratch(collect_instance, &local[k].search);
      collect(&scratch, group[k], &local[k], &sets[k]);
    });
  } else {
    for (std::size_t k = 0; k < group.size(); ++k) {
      collect(fire_finder, group[k], &local[k], &sets[k]);
    }
  }
  bool inserted = false;
  for (std::size_t k = 0; k < group.size(); ++k) {
    if (guard->tripped()) break;
    stats->tgd_triggers += local[k].tgd_triggers;
    stats->search += local[k].search;
    if (FireTriggers(target, tgds[group[k]], sets[k], fresh, stats, guard,
                     fire_finder)) {
      inserted = true;
    }
  }
  return inserted;
}

}  // namespace

void TgdPhasePlanned(const Instance& source, Instance* target,
                     const std::vector<Tgd>& tgds, const TgdRunPlan& plan,
                     const FreshNullFactory& fresh, ChaseStats* stats,
                     ResourceGuard* guard) {
  HomomorphismFinder body_finder(source, &stats->search);
  HomomorphismFinder head_finder(*target, &stats->search);
  for (const std::vector<std::size_t>& group : plan.groups) {
    if (guard->tripped()) return;
    // The st phase never aliases source and target, so collection always
    // goes through `body_finder` (or scratch copies of it) while witness
    // checks and fires go through `head_finder`.
    std::vector<TriggerSet> sets(group.size());
    std::vector<ChaseStats> local(group.size());
    const auto collect = [&](HomomorphismFinder* finder, std::size_t k) {
      CollectTriggers(finder, tgds[group[k]], plan.key_vars[group[k]],
                      &local[k], &sets[k]);
    };
    if (plan.jobs > 1 && group.size() > 1) {
      ParallelFor(plan.jobs, group.size(), [&](std::size_t k) {
        HomomorphismFinder scratch(source, &local[k].search);
        collect(&scratch, k);
      });
    } else {
      for (std::size_t k = 0; k < group.size(); ++k) collect(&body_finder, k);
    }
    for (std::size_t k = 0; k < group.size(); ++k) {
      if (guard->tripped()) return;
      stats->tgd_triggers += local[k].tgd_triggers;
      stats->search += local[k].search;
      FireTriggers(target, tgds[group[k]], sets[k], fresh, stats, guard,
                   &head_finder);
    }
  }
}

bool TargetTgdRoundDeltaPlanned(Instance* target, const std::vector<Tgd>& tgds,
                                const TgdRunPlan& plan,
                                const FreshNullFactory& fresh,
                                ChaseStats* stats, ResourceGuard* guard,
                                DeltaFrontier* frontier,
                                HomomorphismFinder* finder) {
  const std::size_t relation_count = target->schema().relation_count();
  std::vector<std::uint32_t> start_sizes(relation_count);
  for (RelationId rel = 0; rel < relation_count; ++rel) {
    start_sizes[rel] = static_cast<std::uint32_t>(target->facts(rel).size());
  }
  // Frontier ranges are pinned to the round-start sizes for the parallel
  // path: an earlier group member's inserts land past these sizes, and
  // non-interference guarantees they could not match a later member's body
  // anyway — the flat engine enumerates them as candidates and matches
  // nothing, so the trigger sets (and counts) come out identical.
  const DeltaFrontier frontier_now = *frontier;
  const auto collect = [&](HomomorphismFinder* f, std::size_t index,
                           ChaseStats* local, TriggerSet* triggers) {
    if (frontier_now.full()) {
      CollectTriggers(f, tgds[index], plan.key_vars[index], local, triggers);
    } else {
      CollectTriggersDelta(f, *target, tgds[index], plan.key_vars[index],
                           frontier_now, local, triggers);
    }
  };
  bool inserted = false;
  for (const std::vector<std::size_t>& group : plan.groups) {
    if (guard->tripped()) break;
    if (RunGroup(group, target, tgds, plan, *target, fresh, stats, guard,
                 finder, collect)) {
      inserted = true;
    }
  }
  frontier->AdvanceTo(std::move(start_sizes));
  return inserted;
}

bool TargetTgdRoundPlanned(Instance* target, const std::vector<Tgd>& tgds,
                           const TgdRunPlan& plan,
                           const FreshNullFactory& fresh, ChaseStats* stats,
                           ResourceGuard* guard) {
  bool inserted = false;
  for (const std::vector<std::size_t>& group : plan.groups) {
    for (std::size_t index : group) {
      if (guard->tripped()) return inserted;
      HomomorphismFinder finder(*target, &stats->search);
      if (FireTgd(*target, target, tgds[index], fresh, stats, guard, &finder,
                  &finder)) {
        inserted = true;
      }
    }
  }
  return inserted;
}

ChaseResultKind EgdFixpoint(Instance* target, const std::vector<Egd>& egds,
                            ChaseStats* stats, std::string* failure_reason,
                            ResourceGuard* guard) {
  // Batched passes: collect every violated equality, merge the equivalence
  // classes with union-find, substitute, repeat. This is equivalent to
  // applying egd steps one at a time (the egd chase is confluent up to null
  // renaming) but costs one substitution pass per batch instead of one per
  // step.
  //
  // The substitution itself is in-place over only the facts that mention a
  // merged value. Those facts are found through a reverse null->positions
  // index built on the first merging pass and maintained incrementally
  // afterwards; it is dropped (and lazily rebuilt) whenever fact positions
  // shift. Only nulls need indexing: a merge never replaces a constant (a
  // non-null representative always wins, and two non-nulls fail the chase).
  std::unordered_map<Value, std::vector<FactRef>, ValueHash> reverse;
  bool reverse_valid = false;
  while (true) {
    if (!guard->PokeFault("chase/egd-fixpoint") || !guard->CheckDeadline()) {
      return ChaseResultKind::kAborted;
    }
    // ---- collect all violated equalities --------------------------------
    std::vector<std::pair<Value, Value>> pairs;
    std::string violated_label;
    {
      HomomorphismFinder finder(*target, &stats->search);
      for (const Egd& egd : egds) {
        finder.ForEach(egd.body, Binding(egd.num_vars()),
                       [&](const Binding& binding, const AtomImage&) {
                         const Value& a = binding.Get(egd.x1);
                         const Value& b = binding.Get(egd.x2);
                         if (a != b) {
                           pairs.emplace_back(a, b);
                           if (violated_label.empty()) {
                             violated_label = egd.label;
                           }
                         }
                         return true;
                       });
      }
    }
    if (pairs.empty()) return ChaseResultKind::kSuccess;

    // ---- union-find over the values involved -----------------------------
    std::unordered_map<Value, std::size_t, ValueHash> index;
    std::vector<Value> values;
    std::vector<std::size_t> parent;
    auto intern = [&](const Value& v) {
      auto [it, inserted] = index.emplace(v, values.size());
      if (inserted) {
        values.push_back(v);
        parent.push_back(parent.size());
      }
      return it->second;
    };
    std::function<std::size_t(std::size_t)> find =
        [&](std::size_t x) -> std::size_t {
      while (parent[x] != x) {
        parent[x] = parent[parent[x]];
        x = parent[x];
      }
      return x;
    };
    for (const auto& [a, b] : pairs) {
      parent[find(intern(a))] = find(intern(b));
    }

    // ---- pick a representative per class ---------------------------------
    // A non-null wins; two distinct non-nulls in one class is chase
    // failure; among nulls, the smallest id wins (deterministic).
    std::unordered_map<std::size_t, Value> representative;
    for (std::size_t i = 0; i < values.size(); ++i) {
      const std::size_t root = find(i);
      const Value& v = values[i];
      auto it = representative.find(root);
      if (it == representative.end()) {
        representative.emplace(root, v);
        continue;
      }
      const Value& cur = it->second;
      if (!v.is_any_null()) {
        if (!cur.is_any_null()) {
          *failure_reason = "egd '" + violated_label +
                            "' equates two distinct non-null values";
          return ChaseResultKind::kFailure;
        }
        it->second = v;
      } else if (cur.is_any_null() && v.null_id() < cur.null_id()) {
        it->second = v;
      }
    }

    // ---- flatten the classes into a substitution map ---------------------
    std::unordered_map<Value, Value, ValueHash> subst;
    for (std::size_t i = 0; i < values.size(); ++i) {
      const Value& rep = representative.at(find(i));
      if (rep != values[i]) subst.emplace(values[i], rep);
    }

    // The pass's steps are charged before the substitution: a pass that
    // blows the egd budget aborts without paying for the rewrite.
    if (!guard->ChargeEgdSteps(index.size() - representative.size())) {
      return ChaseResultKind::kAborted;
    }
    stats->egd_steps += index.size() - representative.size();

    // ---- find the affected facts through the reverse index ---------------
    if (!reverse_valid) {
      reverse.clear();
      const std::size_t relation_count = target->schema().relation_count();
      for (RelationId rel = 0; rel < relation_count; ++rel) {
        const FactColumn facts = target->facts(rel);
        for (std::uint32_t pos = 0; pos < facts.size(); ++pos) {
          for (const Value& v : facts[pos].args()) {
            if (v.is_any_null()) reverse[v].push_back({rel, pos});
          }
        }
      }
      reverse_valid = true;
    }
    std::vector<FactRef> affected;
    for (const auto& [from, to] : subst) {
      (void)to;
      auto it = reverse.find(from);
      if (it == reverse.end()) continue;
      affected.insert(affected.end(), it->second.begin(), it->second.end());
    }
    std::sort(affected.begin(), affected.end(),
              [](const FactRef& a, const FactRef& b) {
                return a.rel != b.rel ? a.rel < b.rel : a.pos < b.pos;
              });
    affected.erase(std::unique(affected.begin(), affected.end(),
                               [](const FactRef& a, const FactRef& b) {
                                 return a.rel == b.rel && a.pos == b.pos;
                               }),
                   affected.end());

    if (affected.size() > target->size() / 2) {
      // ---- heavy merge: rebuild the instance wholesale -------------------
      Instance next(&target->schema());
      std::vector<Value> args;
      target->ForEach([&](FactView fact) {
        args.clear();
        for (const Value& v : fact.args()) {
          auto it = subst.find(v);
          if (it == subst.end()) {
            args.push_back(v);
            continue;
          }
          ++stats->values_rewritten;
          args.push_back(it->second);
        }
        next.InsertSpan(fact.relation(), args.data(), args.size());
      });
      *target = std::move(next);
      reverse_valid = false;
    } else {
      // ---- light merge: rewrite only the affected facts in place ---------
      const RewriteResult result = target->RewriteFacts(affected, subst);
      stats->values_rewritten += result.values_rewritten;
      if (result.compacted) {
        // Positions shifted; the reverse index is stale beyond repair.
        reverse_valid = false;
      } else {
        // Maintain the index: the merged nulls are gone everywhere (every
        // occurrence was just rewritten), and each affected fact now holds
        // representative values at the rewritten slots.
        std::unordered_set<Value, ValueHash> null_reps;
        for (const auto& [from, to] : subst) {
          reverse.erase(from);
          if (to.is_any_null()) null_reps.insert(to);
        }
        if (!null_reps.empty()) {
          for (const FactRef& ref : affected) {
            for (const Value& v : target->facts(ref.rel)[ref.pos].args()) {
              if (null_reps.count(v) != 0) reverse[v].push_back(ref);
            }
          }
        }
      }
    }
  }
}

namespace {

Result<ChaseOutcome> ChaseSnapshotImpl(const Instance& source,
                                       const Mapping& mapping,
                                       Universe* universe,
                                       const ChaseOptions& options) {
  TDX_TRACE_SPAN("snapshot.run");
  const ChaseCheckpoint* resume = options.resume_from;
  const std::string config = std::string("engine=snapshot semi-naive=") +
                             (options.semi_naive ? "1" : "0");
  if (resume != nullptr) {
    if (resume->engine != ChaseCheckpoint::Engine::kSnapshot) {
      return Status::InvalidArgument(
          "checkpoint was not written by the snapshot chase engine");
    }
    if (resume->config != config) {
      return Status::InvalidArgument(
          "checkpoint was written under different execution options (\"" +
          resume->config + "\" vs \"" + config + "\")");
    }
    if (!resume->target.has_value()) {
      return Status::InvalidArgument(
          "snapshot checkpoint is missing its target instance");
    }
  }
  ResourceGuard guard = resume != nullptr
                            ? ResourceGuard(options.limits, resume->consumed)
                            : ResourceGuard(options.limits);
  ChaseOutcome outcome(resume != nullptr ? *resume->target
                                         : Instance(&source.schema()));
  // Consult the mapping's termination certificate (or derive one) before
  // doing any work: an uncertified set of target tgds may chase forever.
  outcome.stats.certificate =
      mapping.certificate.has_value()
          ? *mapping.certificate
          : CertifyTermination(mapping.target_tgds, source.schema());
  if (!outcome.stats.certificate->guarantees_termination()) {
    return Status::InvalidArgument(
        "refusing to chase: target tgds are not weakly acyclic (cycle " +
        outcome.stats.certificate->witness + "); the chase might not "
        "terminate");
  }
  if (resume != nullptr) {
    // Stats and the null namespace resume from the safe point; the
    // certificate is derived state and keeps the recomputed value.
    const auto certificate = outcome.stats.certificate;
    outcome.stats = resume->stats;
    outcome.stats.certificate = certificate;
    universe->RestoreNullState(resume->next_null, resume->null_names);
  }
  const auto aborted = [&]() {
    outcome.kind = ChaseResultKind::kAborted;
    outcome.abort_dimension = guard.dimension();
    outcome.abort_reason = guard.reason();
    return outcome;
  };
  const FreshNullFactory fresh = [universe](const Tgd&, const Binding&) {
    return universe->FreshNull();
  };

  // The schedule steers only provably-no-op skips and parallel trigger
  // collection; the fire order (and with it every fresh-null id) is the
  // unscheduled one, so the config string needs no scheduling fields —
  // checkpoints interchange freely between scheduled and flat runs.
  std::optional<ChaseSchedule> derived_schedule;
  const ChaseSchedule* schedule = nullptr;
  if (options.scheduled) {
    if (mapping.schedule.has_value()) {
      schedule = &*mapping.schedule;
    } else {
      derived_schedule = PlanChase(mapping, source.schema());
      schedule = &*derived_schedule;
    }
  }
  // schedule_strata is derived state like the certificate: recomputed even
  // on resume rather than trusted from the checkpoint.
  outcome.stats.schedule_strata =
      schedule != nullptr ? schedule->stratum_count() : 0;
  TgdRunPlan st_plan;
  TgdRunPlan target_plan;
  std::vector<Egd> live_egds;
  if (schedule != nullptr) {
    st_plan = BuildStTgdRunPlan(mapping.st_tgds, options.jobs);
    target_plan =
        BuildTargetTgdRunPlan(mapping.target_tgds, *schedule, options.jobs);
    live_egds.reserve(schedule->live_egds.size());
    for (std::size_t index : schedule->live_egds) {
      live_egds.push_back(mapping.egds[index]);
    }
  }

  DeltaFrontier frontier;
  // Init-phase checkpoints carry rounds == 0, so seeding from the resume
  // point is correct for every phase; the loop-top dispatch below re-assigns
  // the same value.
  std::size_t rounds = resume != nullptr ? resume->rounds : 0;
  bool mid_rounds = false;
  // From here on the stats reflect only this run's work (the resume restore
  // above already happened), so the scope's exit-time deltas attribute
  // resumed work to the run that actually did it.
  SnapshotRunScope run_metrics(&outcome.stats, &rounds, &outcome.kind);
  // Offers a safe point to the checkpointer. Everything captured is the
  // state a fresh run would hold at the same point, so resuming from the
  // checkpoint and re-executing produces bit-identical results.
  const auto offer_checkpoint = [&](bool boundary, const char* phase) {
    if (options.checkpointer == nullptr) return;
    options.checkpointer->AtSafePoint(boundary, [&]() {
      ChaseCheckpoint ck;
      ck.engine = ChaseCheckpoint::Engine::kSnapshot;
      ck.config = config;
      ck.phase = phase;
      ck.rounds = rounds;
      ck.stats = outcome.stats;
      ck.consumed = guard.Consumed();
      CaptureUniverseNulls(*universe, &ck);
      ck.frontier_full = frontier.full();
      ck.frontier_marks = frontier.marks();
      ck.target = outcome.target;
      return ck;
    });
  };

  if (guard.tripped()) return aborted();
  const std::string start_phase = resume != nullptr ? resume->phase : "init";
  if (start_phase == "init") {
    if (resume == nullptr) offer_checkpoint(true, "init");
    if (!guard.PokeFault("chase/tgd-phase")) return aborted();
    {
      TDX_TRACE_SPAN("snapshot.st_tgd");
      if (schedule != nullptr) {
        TgdPhasePlanned(source, &outcome.target, mapping.st_tgds, st_plan,
                        fresh, &outcome.stats, &guard);
      } else {
        TgdPhase(source, &outcome.target, mapping.st_tgds, fresh,
                 &outcome.stats, &guard);
      }
    }
    if (guard.tripped()) return aborted();
    offer_checkpoint(true, "loop-top");
  } else if (start_phase == "loop-top" || start_phase == "rounds") {
    rounds = resume->rounds;
    if (resume->frontier_full) {
      frontier.Reset();
    } else {
      frontier.AdvanceTo(resume->frontier_marks);
    }
    // A "rounds" checkpoint sits between two fired rounds: the resumed
    // iteration continues the inner loop with the fired flag already set.
    mid_rounds = start_phase == "rounds";
  } else {
    return Status::InvalidArgument("unknown snapshot checkpoint phase '" +
                                   start_phase + "'");
  }

  // Interleave target-tgd rounds and egd steps to a joint fixpoint. Weak
  // acyclicity (ValidateMapping) bounds the number of fresh nulls, so this
  // terminates; the round cap is a defensive backstop for unvalidated input.
  //
  // Semi-naive execution keeps ONE finder alive across every round; its
  // indexes absorb inserts incrementally and rebuild after egd rewrites
  // (generation check). The frontier resets whenever the egd fixpoint
  // rewrote anything, since rewritten facts can seed triggers the frontier
  // would otherwise never revisit. The finder is derived state: on resume
  // it is rebuilt fresh over the restored target.
  HomomorphismFinder finder(outcome.target, &outcome.stats.search);
  const auto run_round = [&]() {
    TDX_TRACE_SPAN("snapshot.tgd_round");
    if (schedule != nullptr) {
      return options.semi_naive
                 ? TargetTgdRoundDeltaPlanned(&outcome.target,
                                              mapping.target_tgds, target_plan,
                                              fresh, &outcome.stats, &guard,
                                              &frontier, &finder)
                 : TargetTgdRoundPlanned(&outcome.target, mapping.target_tgds,
                                         target_plan, fresh, &outcome.stats,
                                         &guard);
    }
    return options.semi_naive
               ? TargetTgdRoundDelta(&outcome.target, mapping.target_tgds,
                                     fresh, &outcome.stats, &guard, &frontier,
                                     &finder)
               : TargetTgdRound(&outcome.target, mapping.target_tgds, fresh,
                                &outcome.stats, &guard);
  };
  while (true) {
    bool fired = mid_rounds;
    mid_rounds = false;
    while (run_round()) {
      fired = true;
      if (guard.tripped()) return aborted();
      if (++rounds > 100000) {
        return Status::Internal(
            "target-tgd chase exceeded its iteration budget; are the "
            "target tgds weakly acyclic?");
      }
      offer_checkpoint(false, "rounds");
    }
    if (guard.tripped()) return aborted();
    const std::size_t egd_before = outcome.stats.egd_steps;
    if (schedule != nullptr && !schedule->egd_fixpoint_live()) {
      // Every egd is dead or effect-free: the pass would collect nothing
      // and return success without touching the target. Count the skip only
      // when there was a pass to skip at all.
      outcome.kind = ChaseResultKind::kSuccess;
      if (!mapping.egds.empty()) ++outcome.stats.skipped_egd_passes;
    } else {
      TDX_TRACE_SPAN("snapshot.egd_fixpoint");
      outcome.kind = EgdFixpoint(
          &outcome.target,
          schedule != nullptr ? live_egds : mapping.egds, &outcome.stats,
          &outcome.failure_reason, &guard);
    }
    if (outcome.kind == ChaseResultKind::kFailure) return outcome;
    if (outcome.kind == ChaseResultKind::kAborted) return aborted();
    if (!fired && outcome.stats.egd_steps == egd_before) break;
    if (outcome.stats.egd_steps != egd_before) frontier.Reset();
    if (++rounds > 100000) {
      return Status::Internal(
          "chase exceeded its iteration budget; are the target tgds weakly "
          "acyclic?");
    }
    offer_checkpoint(true, "loop-top");
  }
  return outcome;
}

}  // namespace

Result<ChaseOutcome> ChaseSnapshot(const Instance& source,
                                   const Mapping& mapping, Universe* universe,
                                   const ChaseOptions& options) {
  return ChaseSnapshotImpl(source, mapping, universe, options);
}

Result<ChaseOutcome> ChaseSnapshot(const Instance& source,
                                   const Mapping& mapping, Universe* universe,
                                   const ChaseLimits& limits) {
  ChaseOptions options;
  options.limits = limits;
  return ChaseSnapshotImpl(source, mapping, universe, options);
}

}  // namespace tdx
