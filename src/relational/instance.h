// In-memory relational instances.
//
// An Instance is a set of facts over a Schema. Storage is columnar: each
// relation's facts live back-to-back in one contiguous Value arena (fact i
// of relation R occupies arena[i*arity, (i+1)*arity)), in insertion order
// for deterministic iteration and reproducible chase runs. Facts are handed
// out as FactView handles (fact.h) — (relation, position, argument-run)
// triples into the arena — so enumeration copies nothing.
//
// Duplicate elimination and membership tests go through a flat
// open-addressing table of (hash, relation, position) slots probed against
// the arena, replacing a node-based unordered_set of owning Facts.
//
// Instances serve as: snapshots of abstract temporal databases, concrete
// temporal instances (facts carry an interval as last argument), and the
// source/target halves of a data exchange problem.

#ifndef TDX_RELATIONAL_INSTANCE_H_
#define TDX_RELATIONAL_INSTANCE_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/relational/fact.h"
#include "src/relational/schema.h"

namespace tdx {

/// Position of one fact inside an Instance: (relation, index into
/// facts(relation)). Valid until the instance compacts (see
/// Instance::generation).
struct FactRef {
  RelationId rel = 0;
  std::uint32_t pos = 0;
};

/// Outcome of an in-place substitution pass (Instance::RewriteFacts).
struct RewriteResult {
  std::size_t facts_rewritten = 0;   ///< facts whose arguments changed
  std::size_t values_rewritten = 0;  ///< argument slots replaced
  /// True when a rewritten fact collided with another fact and was removed:
  /// fact positions after the collision point shifted, so position-based
  /// caches (FactRef lists, mask indexes) must be rebuilt.
  bool compacted = false;
};

/// Random-access view over one relation's facts inside an Instance arena,
/// in insertion order. Iteration yields FactView handles by value.
/// Invalidated by any mutation of the instance (Insert may reallocate the
/// arena) — re-fetch via Instance::facts after mutating.
class FactColumn {
 public:
  FactColumn() = default;
  FactColumn(RelationId rel, const Value* data, std::size_t count,
             std::size_t arity)
      : data_(data), count_(count), arity_(arity), rel_(rel) {}

  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  std::size_t arity() const { return arity_; }

  FactView operator[](std::size_t i) const {
    assert(i < count_);
    return FactView(rel_, static_cast<std::uint32_t>(i), data_ + i * arity_,
                    static_cast<std::uint32_t>(arity_));
  }

  class iterator {
   public:
    iterator(const FactColumn* col, std::size_t i) : col_(col), i_(i) {}
    FactView operator*() const { return (*col_)[i_]; }
    iterator& operator++() {
      ++i_;
      return *this;
    }
    bool operator==(const iterator& o) const { return i_ == o.i_; }
    bool operator!=(const iterator& o) const { return i_ != o.i_; }

   private:
    const FactColumn* col_;
    std::size_t i_;
  };
  iterator begin() const { return iterator(this, 0); }
  iterator end() const { return iterator(this, count_); }

 private:
  const Value* data_ = nullptr;
  std::size_t count_ = 0;
  std::size_t arity_ = 0;
  RelationId rel_ = 0;
};

class Instance {
 public:
  /// The schema may still grow after construction (instances are often
  /// created while a program is being parsed); per-relation storage is
  /// sized on demand.
  explicit Instance(const Schema* schema) : schema_(schema) {
    assert(schema != nullptr);
    by_rel_.resize(schema->relation_count());
  }

  Instance(const Instance&) = default;
  Instance(Instance&&) = default;
  /// Assignment replaces the contents of an instance other code may hold
  /// position-based views into (IndexCache keys candidates by fact
  /// position), so it advances the generation past both operands: any view
  /// keyed to either old generation sees a mismatch and rebuilds.
  Instance& operator=(const Instance& other) {
    if (this == &other) return *this;
    const std::uint64_t gen = std::max(generation_, other.generation_) + 1;
    schema_ = other.schema_;
    by_rel_ = other.by_rel_;
    members_ = other.members_;
    size_ = other.size_;
    tombstones_ = other.tombstones_;
    generation_ = gen;
    return *this;
  }
  Instance& operator=(Instance&& other) noexcept {
    if (this == &other) return *this;
    const std::uint64_t gen = std::max(generation_, other.generation_) + 1;
    schema_ = other.schema_;
    by_rel_ = std::move(other.by_rel_);
    members_ = std::move(other.members_);
    size_ = other.size_;
    tombstones_ = other.tombstones_;
    generation_ = gen;
    return *this;
  }

  const Schema& schema() const { return *schema_; }

  /// Mutation generation. Bumped by every operation that can invalidate a
  /// position-based view of the instance — Erase, RewriteFacts, assignment —
  /// but NOT by Insert, which only appends (positions of existing facts are
  /// stable, so an index can catch up incrementally instead of rebuilding).
  std::uint64_t generation() const { return generation_; }

  /// Inserts a fact; returns true if newly inserted, false if duplicate.
  /// Asserts the fact's arity matches its relation's schema.
  bool Insert(const Fact& fact) {
    return InsertSpan(fact.relation(), fact.args().data(), fact.arity());
  }
  bool Insert(FactView fact) {
    return InsertSpan(fact.relation(), fact.args().data(), fact.arity());
  }

  /// Convenience: Insert(Fact(rel, args)).
  bool Insert(RelationId rel, const std::vector<Value>& args) {
    return InsertSpan(rel, args.data(), args.size());
  }

  /// Core insertion primitive: appends the argument run to the relation's
  /// arena unless an equal fact is already present. `args` may alias this
  /// instance's own arena (the run is copied out first if so).
  bool InsertSpan(RelationId rel, const Value* args, std::size_t n);

  bool Contains(const Fact& fact) const {
    return FindMember(fact.relation(), fact.args().data(), fact.arity(),
                      fact.Hash()) != kNpos;
  }
  bool Contains(FactView fact) const {
    return FindMember(fact.relation(), fact.args().data(), fact.arity(),
                      fact.Hash()) != kNpos;
  }

  /// Removes a fact; returns true if it was present. Facts after it in the
  /// same relation shift down one position (generation bumps).
  bool Erase(const Fact& fact);

  /// Facts of one relation in insertion order, as a view into the arena.
  FactColumn facts(RelationId rel) const {
    assert(rel < schema_->relation_count());
    if (rel >= by_rel_.size() || by_rel_[rel].count == 0) {
      return FactColumn(rel, nullptr, 0, schema_->relation(rel).arity());
    }
    const RelationStore& store = by_rel_[rel];
    return FactColumn(rel, store.arena.data(), store.count, store.arity);
  }

  /// Materialized copy of one relation's facts (for callers that sort or
  /// otherwise outlive instance mutations).
  std::vector<Fact> CopyFacts(RelationId rel) const;

  /// Applies `fn` to every fact (relation id order, then insertion order).
  /// The views passed to `fn` are invalidated when `fn` returns if it
  /// mutates any instance; do not mutate THIS instance from `fn`.
  void ForEach(const std::function<void(FactView)>& fn) const;

  /// Total number of facts.
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Returns a copy in which every occurrence of `from` (as an argument) is
  /// replaced by `to`. This is the substitution primitive of egd chase steps
  /// ("replaced everywhere", Definition 16). Duplicates created by the
  /// substitution collapse (set semantics).
  Instance ReplaceValue(const Value& from, const Value& to) const;

  /// In-place substitution primitive for egd merges: rewrites ONLY the
  /// facts at `refs`, replacing every argument that appears in `subst` with
  /// its mapped value. `refs` must cover every fact that mentions a key of
  /// `subst` (the egd fixpoint finds them through its reverse value->fact
  /// index); other facts are untouched, which is what makes this cheaper
  /// than a full rebuild when a merge touches few facts.
  ///
  /// A rewritten fact that collides with another fact is removed (set
  /// semantics); the result reports `compacted` so callers drop
  /// position-based caches. Always bumps the generation (rewritten facts
  /// hash differently, so mask indexes over them are stale either way).
  RewriteResult RewriteFacts(
      const std::vector<FactRef>& refs,
      const std::unordered_map<Value, Value, ValueHash>& subst);

  /// Set-union of two instances over the same schema.
  static Instance Union(const Instance& a, const Instance& b);

  /// True if both instances contain exactly the same facts.
  friend bool operator==(const Instance& a, const Instance& b);
  friend bool operator!=(const Instance& a, const Instance& b) {
    return !(a == b);
  }

  /// Multi-line rendering, one fact per line, deterministic order.
  std::string ToString(const Universe& u) const;

 private:
  /// One relation's columnar storage: fact i occupies
  /// arena[i*arity, (i+1)*arity).
  struct RelationStore {
    std::vector<Value> arena;
    std::uint32_t count = 0;
    std::uint32_t arity = 0;
  };

  static constexpr std::uint32_t kEmptySlot = 0xFFFFFFFFu;
  static constexpr std::uint32_t kTombstone = 0xFFFFFFFEu;
  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

  /// One open-addressing slot of the membership table. pos doubles as the
  /// occupancy marker (kEmptySlot / kTombstone); real fact positions are
  /// bounded far below by the 32-bit arena offsets.
  struct MemberSlot {
    std::size_t hash = 0;
    RelationId rel = 0;
    std::uint32_t pos = kEmptySlot;
  };

  const Value* Row(RelationId rel, std::uint32_t pos) const {
    const RelationStore& store = by_rel_[rel];
    return store.arena.data() + std::size_t{pos} * store.arity;
  }

  /// Index of the live slot holding a fact equal to (rel, args[0..n)), or
  /// kNpos.
  std::size_t FindMember(RelationId rel, const Value* args, std::size_t n,
                         std::size_t hash) const;
  /// Marks the slot of fact (rel, pos) dead; false if absent (already
  /// erased). Probes along `hash`'s chain.
  bool EraseMemberAt(RelationId rel, std::uint32_t pos, std::size_t hash);
  /// Raw slot insert (no duplicate check; caller guarantees absence).
  void InsertMember(RelationId rel, std::uint32_t pos, std::size_t hash);
  /// Grows/rehashes so one more insert keeps the load factor under 0.7.
  void ReserveMember();
  /// Rebuilds the table from scratch hashing every arena row (used after
  /// compaction moved positions).
  void RebuildMembersFromArena();

  const Schema* schema_;
  std::vector<RelationStore> by_rel_;
  std::vector<MemberSlot> members_;  // open addressing, power-of-two size
  std::size_t size_ = 0;             // live facts
  std::size_t tombstones_ = 0;
  std::uint64_t generation_ = 0;
};

}  // namespace tdx

#endif  // TDX_RELATIONAL_INSTANCE_H_
