// In-memory relational instances.
//
// An Instance is a set of facts over a Schema, stored per relation in
// insertion order (for deterministic iteration and reproducible chase runs)
// with a hash set for O(1) duplicate elimination and membership tests.
//
// Instances serve as: snapshots of abstract temporal databases, concrete
// temporal instances (facts carry an interval as last argument), and the
// source/target halves of a data exchange problem.

#ifndef TDX_RELATIONAL_INSTANCE_H_
#define TDX_RELATIONAL_INSTANCE_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/relational/fact.h"
#include "src/relational/schema.h"

namespace tdx {

/// Position of one fact inside an Instance: (relation, index into
/// facts(relation)). Valid until the instance compacts (see
/// Instance::generation).
struct FactRef {
  RelationId rel = 0;
  std::uint32_t pos = 0;
};

/// Outcome of an in-place substitution pass (Instance::RewriteFacts).
struct RewriteResult {
  std::size_t facts_rewritten = 0;   ///< facts whose arguments changed
  std::size_t values_rewritten = 0;  ///< argument slots replaced
  /// True when a rewritten fact collided with another fact and was removed:
  /// fact positions after the collision point shifted, so position-based
  /// caches (FactRef lists, mask indexes) must be rebuilt.
  bool compacted = false;
};

class Instance {
 public:
  /// The schema may still grow after construction (instances are often
  /// created while a program is being parsed); per-relation storage is
  /// sized on demand.
  explicit Instance(const Schema* schema) : schema_(schema) {
    assert(schema != nullptr);
    by_rel_.resize(schema->relation_count());
  }

  Instance(const Instance&) = default;
  Instance(Instance&&) = default;
  /// Assignment replaces the contents of an instance other code may hold
  /// position-based views into (IndexCache keys candidates by fact
  /// position), so it advances the generation past both operands: any view
  /// keyed to either old generation sees a mismatch and rebuilds.
  Instance& operator=(const Instance& other) {
    if (this == &other) return *this;
    const std::uint64_t gen = std::max(generation_, other.generation_) + 1;
    schema_ = other.schema_;
    by_rel_ = other.by_rel_;
    all_ = other.all_;
    generation_ = gen;
    return *this;
  }
  Instance& operator=(Instance&& other) noexcept {
    if (this == &other) return *this;
    const std::uint64_t gen = std::max(generation_, other.generation_) + 1;
    schema_ = other.schema_;
    by_rel_ = std::move(other.by_rel_);
    all_ = std::move(other.all_);
    generation_ = gen;
    return *this;
  }

  const Schema& schema() const { return *schema_; }

  /// Mutation generation. Bumped by every operation that can invalidate a
  /// position-based view of the instance — Erase, RewriteFacts, assignment —
  /// but NOT by Insert, which only appends (positions of existing facts are
  /// stable, so an index can catch up incrementally instead of rebuilding).
  std::uint64_t generation() const { return generation_; }

  /// Inserts a fact; returns true if newly inserted, false if duplicate.
  /// Asserts the fact's arity matches its relation's schema.
  bool Insert(Fact fact);

  /// Convenience: Insert(Fact(rel, args)).
  bool Insert(RelationId rel, std::vector<Value> args) {
    return Insert(Fact(rel, std::move(args)));
  }

  bool Contains(const Fact& fact) const { return all_.count(fact) != 0; }

  /// Removes a fact; returns true if it was present.
  bool Erase(const Fact& fact);

  /// Facts of one relation in insertion order.
  const std::vector<Fact>& facts(RelationId rel) const {
    assert(rel < schema_->relation_count());
    if (rel >= by_rel_.size()) {
      static const std::vector<Fact> kEmpty;
      return kEmpty;
    }
    return by_rel_[rel];
  }

  /// Applies `fn` to every fact (relation id order, then insertion order).
  void ForEach(const std::function<void(const Fact&)>& fn) const;

  /// Total number of facts.
  std::size_t size() const { return all_.size(); }
  bool empty() const { return all_.empty(); }

  /// Returns a copy in which every occurrence of `from` (as an argument) is
  /// replaced by `to`. This is the substitution primitive of egd chase steps
  /// ("replaced everywhere", Definition 16). Duplicates created by the
  /// substitution collapse (set semantics).
  Instance ReplaceValue(const Value& from, const Value& to) const;

  /// In-place substitution primitive for egd merges: rewrites ONLY the
  /// facts at `refs`, replacing every argument that appears in `subst` with
  /// its mapped value. `refs` must cover every fact that mentions a key of
  /// `subst` (the egd fixpoint finds them through its reverse value->fact
  /// index); other facts are untouched, which is what makes this cheaper
  /// than a full rebuild when a merge touches few facts.
  ///
  /// A rewritten fact that collides with another fact is removed (set
  /// semantics); the result reports `compacted` so callers drop
  /// position-based caches. Always bumps the generation (rewritten facts
  /// hash differently, so mask indexes over them are stale either way).
  RewriteResult RewriteFacts(
      const std::vector<FactRef>& refs,
      const std::unordered_map<Value, Value, ValueHash>& subst);

  /// Set-union of two instances over the same schema.
  static Instance Union(const Instance& a, const Instance& b);

  /// True if both instances contain exactly the same facts.
  friend bool operator==(const Instance& a, const Instance& b);
  friend bool operator!=(const Instance& a, const Instance& b) {
    return !(a == b);
  }

  /// Multi-line rendering, one fact per line, deterministic order.
  std::string ToString(const Universe& u) const;

 private:
  const Schema* schema_;
  std::vector<std::vector<Fact>> by_rel_;
  std::unordered_set<Fact, FactHash> all_;
  std::uint64_t generation_ = 0;
};

}  // namespace tdx

#endif  // TDX_RELATIONAL_INSTANCE_H_
