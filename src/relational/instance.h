// In-memory relational instances.
//
// An Instance is a set of facts over a Schema, stored per relation in
// insertion order (for deterministic iteration and reproducible chase runs)
// with a hash set for O(1) duplicate elimination and membership tests.
//
// Instances serve as: snapshots of abstract temporal databases, concrete
// temporal instances (facts carry an interval as last argument), and the
// source/target halves of a data exchange problem.

#ifndef TDX_RELATIONAL_INSTANCE_H_
#define TDX_RELATIONAL_INSTANCE_H_

#include <functional>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/relational/fact.h"
#include "src/relational/schema.h"

namespace tdx {

class Instance {
 public:
  /// The schema may still grow after construction (instances are often
  /// created while a program is being parsed); per-relation storage is
  /// sized on demand.
  explicit Instance(const Schema* schema) : schema_(schema) {
    assert(schema != nullptr);
    by_rel_.resize(schema->relation_count());
  }

  const Schema& schema() const { return *schema_; }

  /// Inserts a fact; returns true if newly inserted, false if duplicate.
  /// Asserts the fact's arity matches its relation's schema.
  bool Insert(Fact fact);

  /// Convenience: Insert(Fact(rel, args)).
  bool Insert(RelationId rel, std::vector<Value> args) {
    return Insert(Fact(rel, std::move(args)));
  }

  bool Contains(const Fact& fact) const { return all_.count(fact) != 0; }

  /// Removes a fact; returns true if it was present.
  bool Erase(const Fact& fact);

  /// Facts of one relation in insertion order.
  const std::vector<Fact>& facts(RelationId rel) const {
    assert(rel < schema_->relation_count());
    if (rel >= by_rel_.size()) {
      static const std::vector<Fact> kEmpty;
      return kEmpty;
    }
    return by_rel_[rel];
  }

  /// Applies `fn` to every fact (relation id order, then insertion order).
  void ForEach(const std::function<void(const Fact&)>& fn) const;

  /// Total number of facts.
  std::size_t size() const { return all_.size(); }
  bool empty() const { return all_.empty(); }

  /// Returns a copy in which every occurrence of `from` (as an argument) is
  /// replaced by `to`. This is the substitution primitive of egd chase steps
  /// ("replaced everywhere", Definition 16). Duplicates created by the
  /// substitution collapse (set semantics).
  Instance ReplaceValue(const Value& from, const Value& to) const;

  /// Set-union of two instances over the same schema.
  static Instance Union(const Instance& a, const Instance& b);

  /// True if both instances contain exactly the same facts.
  friend bool operator==(const Instance& a, const Instance& b);
  friend bool operator!=(const Instance& a, const Instance& b) {
    return !(a == b);
  }

  /// Multi-line rendering, one fact per line, deterministic order.
  std::string ToString(const Universe& u) const;

 private:
  const Schema* schema_;
  std::vector<std::vector<Fact>> by_rel_;
  std::unordered_set<Fact, FactHash> all_;
};

}  // namespace tdx

#endif  // TDX_RELATIONAL_INSTANCE_H_
