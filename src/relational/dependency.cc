#include "src/relational/dependency.h"

#include <algorithm>
#include <unordered_set>

namespace tdx {

namespace {

/// Set of variables appearing in a conjunction.
std::unordered_set<VarId> VarsOf(const Conjunction& conj) {
  std::unordered_set<VarId> vars;
  for (const Atom& atom : conj.atoms) {
    for (const Term& t : atom.terms) {
      if (t.is_var()) vars.insert(t.var());
    }
  }
  return vars;
}

/// Appends the temporal variable to every atom and remaps relations to
/// their concrete twins.
Result<Conjunction> LiftConjunction(const Conjunction& conj,
                                    const Schema& schema, VarId t_var) {
  Conjunction out = conj;
  out.num_vars = std::max<std::size_t>(out.num_vars, t_var + 1);
  out.var_names.resize(out.num_vars);
  out.var_names[t_var] = "t";
  for (Atom& atom : out.atoms) {
    TDX_ASSIGN_OR_RETURN(RelationId twin, schema.TwinOf(atom.rel));
    if (!schema.relation(twin).temporal) {
      return Status::InvalidArgument(
          "lifting requires the twin of '" + schema.relation(atom.rel).name +
          "' to be temporal; lift only non-temporal dependencies");
    }
    atom.rel = twin;
    atom.terms.push_back(Term::Var(t_var));
  }
  return out;
}

}  // namespace

Status Tgd::Finalize() {
  if (head.atoms.empty()) {
    return Status::InvalidArgument("tgd '" + label + "' has an empty head");
  }
  const std::size_t nv = std::max(body.num_vars, head.num_vars);
  body.num_vars = head.num_vars = nv;
  if (body.var_names.size() < nv) body.var_names.resize(nv);
  head.var_names = body.var_names;
  const std::unordered_set<VarId> body_vars = VarsOf(body);
  const std::unordered_set<VarId> head_vars = VarsOf(head);
  existential.clear();
  for (VarId v : head_vars) {
    if (body_vars.count(v) == 0) existential.push_back(v);
  }
  std::sort(existential.begin(), existential.end());
  return Status::OK();
}

Status Egd::Finalize() {
  if (body.atoms.empty()) {
    return Status::InvalidArgument("egd '" + label + "' has an empty body");
  }
  const std::unordered_set<VarId> body_vars = VarsOf(body);
  if (body_vars.count(x1) == 0 || body_vars.count(x2) == 0) {
    return Status::InvalidArgument(
        "egd '" + label + "': equality variables must occur in the body");
  }
  if (x1 == x2) {
    return Status::InvalidArgument("egd '" + label +
                                   "' equates a variable with itself");
  }
  return Status::OK();
}

std::string Tgd::ToString(const Schema& schema, const Universe& u) const {
  std::string out = label.empty() ? "" : (label + ": ");
  out += body.ToString(schema, u);
  out += " -> ";
  if (!existential.empty()) {
    out += "exists ";
    for (std::size_t i = 0; i < existential.size(); ++i) {
      if (i > 0) out += ", ";
      const VarId v = existential[i];
      out += (v < head.var_names.size() && !head.var_names[v].empty())
                 ? head.var_names[v]
                 : ("?" + std::to_string(v));
    }
    out += ": ";
  }
  out += head.ToString(schema, u);
  return out;
}

std::string Egd::ToString(const Schema& schema, const Universe& u) const {
  auto var_name = [this](VarId v) {
    return (v < body.var_names.size() && !body.var_names[v].empty())
               ? body.var_names[v]
               : ("?" + std::to_string(v));
  };
  std::string out = label.empty() ? "" : (label + ": ");
  out += body.ToString(schema, u);
  out += " -> " + var_name(x1) + " = " + var_name(x2);
  return out;
}

std::vector<Conjunction> Mapping::TgdBodies() const {
  std::vector<Conjunction> out;
  out.reserve(st_tgds.size());
  for (const Tgd& tgd : st_tgds) out.push_back(tgd.body);
  return out;
}

std::vector<Conjunction> Mapping::TargetTgdBodies() const {
  std::vector<Conjunction> out;
  out.reserve(target_tgds.size());
  for (const Tgd& tgd : target_tgds) out.push_back(tgd.body);
  return out;
}

std::vector<Conjunction> Mapping::EgdBodies() const {
  std::vector<Conjunction> out;
  out.reserve(egds.size());
  for (const Egd& egd : egds) out.push_back(egd.body);
  return out;
}

std::string Mapping::ToString(const Schema& schema, const Universe& u) const {
  std::string out;
  for (const Tgd& tgd : st_tgds) out += tgd.ToString(schema, u) + "\n";
  for (const Tgd& tgd : target_tgds) out += tgd.ToString(schema, u) + "\n";
  for (const Egd& egd : egds) out += egd.ToString(schema, u) + "\n";
  return out;
}

Result<Tgd> LiftTgd(const Tgd& tgd, const Schema& schema) {
  Tgd out = tgd;
  const VarId t_var = static_cast<VarId>(tgd.num_vars());
  TDX_ASSIGN_OR_RETURN(out.body, LiftConjunction(tgd.body, schema, t_var));
  TDX_ASSIGN_OR_RETURN(out.head, LiftConjunction(tgd.head, schema, t_var));
  out.temporal_var = t_var;
  if (!out.label.empty()) out.label += "+";
  TDX_RETURN_IF_ERROR(out.Finalize());
  return out;
}

Result<Egd> LiftEgd(const Egd& egd, const Schema& schema) {
  Egd out = egd;
  const VarId t_var = static_cast<VarId>(egd.num_vars());
  TDX_ASSIGN_OR_RETURN(out.body, LiftConjunction(egd.body, schema, t_var));
  out.temporal_var = t_var;
  if (!out.label.empty()) out.label += "+";
  TDX_RETURN_IF_ERROR(out.Finalize());
  return out;
}

Result<Mapping> LiftMapping(const Mapping& mapping, const Schema& schema) {
  Mapping out;
  out.st_tgds.reserve(mapping.st_tgds.size());
  out.target_tgds.reserve(mapping.target_tgds.size());
  out.egds.reserve(mapping.egds.size());
  for (const Tgd& tgd : mapping.st_tgds) {
    TDX_ASSIGN_OR_RETURN(Tgd lifted, LiftTgd(tgd, schema));
    out.st_tgds.push_back(std::move(lifted));
  }
  for (const Tgd& tgd : mapping.target_tgds) {
    TDX_ASSIGN_OR_RETURN(Tgd lifted, LiftTgd(tgd, schema));
    out.target_tgds.push_back(std::move(lifted));
  }
  for (const Egd& egd : mapping.egds) {
    TDX_ASSIGN_OR_RETURN(Egd lifted, LiftEgd(egd, schema));
    out.egds.push_back(std::move(lifted));
  }
  return out;
}

Status ValidateMapping(const Mapping& mapping, const Schema& schema) {
  auto check_role = [&schema](const Conjunction& conj, SchemaRole role,
                              const std::string& what) -> Status {
    for (const Atom& atom : conj.atoms) {
      const RelationSchema& rel = schema.relation(atom.rel);
      if (rel.role != role) {
        return Status::InvalidArgument(
            what + " uses relation '" + rel.name + "' with the wrong role");
      }
      if (atom.terms.size() != rel.arity()) {
        return Status::InvalidArgument(what + ": atom over '" + rel.name +
                                       "' has wrong arity");
      }
    }
    return Status::OK();
  };
  for (const Tgd& tgd : mapping.st_tgds) {
    TDX_RETURN_IF_ERROR(
        check_role(tgd.body, SchemaRole::kSource, "tgd body " + tgd.label));
    TDX_RETURN_IF_ERROR(
        check_role(tgd.head, SchemaRole::kTarget, "tgd head " + tgd.label));
  }
  for (const Tgd& tgd : mapping.target_tgds) {
    TDX_RETURN_IF_ERROR(check_role(tgd.body, SchemaRole::kTarget,
                                   "target tgd body " + tgd.label));
    TDX_RETURN_IF_ERROR(check_role(tgd.head, SchemaRole::kTarget,
                                   "target tgd head " + tgd.label));
  }
  for (const Egd& egd : mapping.egds) {
    TDX_RETURN_IF_ERROR(
        check_role(egd.body, SchemaRole::kTarget, "egd body " + egd.label));
  }
  return CheckWeaklyAcyclic(mapping.target_tgds, schema);
}

Status CheckWeaklyAcyclic(const std::vector<Tgd>& target_tgds,
                          const Schema& schema) {
  if (target_tgds.empty()) return Status::OK();

  // Dense node ids for positions (relation, attribute index).
  auto node = [&schema](RelationId rel, std::size_t pos) {
    std::size_t base = 0;
    for (RelationId r = 0; r < rel; ++r) {
      base += schema.relation(r).arity();
    }
    return base + pos;
  };
  std::size_t num_nodes = 0;
  for (RelationId r = 0; r < schema.relation_count(); ++r) {
    num_nodes += schema.relation(r).arity();
  }

  // adjacency[u] = list of (v, special?).
  std::vector<std::vector<std::pair<std::size_t, bool>>> adj(num_nodes);
  for (const Tgd& tgd : target_tgds) {
    const std::unordered_set<VarId> existential(tgd.existential.begin(),
                                                tgd.existential.end());
    // Positions of each universally quantified variable in the body.
    std::unordered_map<VarId, std::vector<std::size_t>> body_positions;
    for (const Atom& atom : tgd.body.atoms) {
      for (std::size_t i = 0; i < atom.terms.size(); ++i) {
        if (atom.terms[i].is_var()) {
          body_positions[atom.terms[i].var()].push_back(node(atom.rel, i));
        }
      }
    }
    // Positions of existential variables in the head.
    std::vector<std::size_t> existential_positions;
    for (const Atom& atom : tgd.head.atoms) {
      for (std::size_t i = 0; i < atom.terms.size(); ++i) {
        const Term& t = atom.terms[i];
        if (t.is_var() && existential.count(t.var()) != 0) {
          existential_positions.push_back(node(atom.rel, i));
        }
      }
    }
    // Regular edges: body position of x -> each head position of x.
    // Special edges: body position of any head-occurring universal x ->
    // every position of every existential variable in the head.
    for (const Atom& atom : tgd.head.atoms) {
      for (std::size_t i = 0; i < atom.terms.size(); ++i) {
        const Term& t = atom.terms[i];
        if (!t.is_var()) continue;
        const VarId v = t.var();
        auto it = body_positions.find(v);
        if (it == body_positions.end()) continue;  // existential
        for (std::size_t from : it->second) {
          adj[from].emplace_back(node(atom.rel, i), false);
          for (std::size_t special_to : existential_positions) {
            adj[from].emplace_back(special_to, true);
          }
        }
      }
    }
  }

  // Weak acyclicity fails iff some cycle contains a special edge, i.e.
  // some special edge (u, v) has u reachable from v.
  auto reaches = [&adj, num_nodes](std::size_t from, std::size_t to) {
    std::vector<bool> seen(num_nodes, false);
    std::vector<std::size_t> stack{from};
    seen[from] = true;
    while (!stack.empty()) {
      const std::size_t cur = stack.back();
      stack.pop_back();
      if (cur == to) return true;
      for (const auto& [next, special] : adj[cur]) {
        if (!seen[next]) {
          seen[next] = true;
          stack.push_back(next);
        }
      }
    }
    return false;
  };
  for (std::size_t u = 0; u < num_nodes; ++u) {
    for (const auto& [v, special] : adj[u]) {
      if (special && reaches(v, u)) {
        return Status::InvalidArgument(
            "target tgds are not weakly acyclic: a cycle passes through a "
            "special (existential) edge; the chase might not terminate");
      }
    }
  }
  return Status::OK();
}

}  // namespace tdx
