#include "src/relational/dependency.h"

#include <algorithm>
#include <unordered_set>

#include "src/analysis/planner.h"
#include "src/analysis/termination.h"

namespace tdx {

namespace {

/// Set of variables appearing in a conjunction.
std::unordered_set<VarId> VarsOf(const Conjunction& conj) {
  std::unordered_set<VarId> vars;
  for (const Atom& atom : conj.atoms) {
    for (const Term& t : atom.terms) {
      if (t.is_var()) vars.insert(t.var());
    }
  }
  return vars;
}

/// Appends the temporal variable to every atom and remaps relations to
/// their concrete twins.
Result<Conjunction> LiftConjunction(const Conjunction& conj,
                                    const Schema& schema, VarId t_var) {
  Conjunction out = conj;
  out.num_vars = std::max<std::size_t>(out.num_vars, t_var + 1);
  out.var_names.resize(out.num_vars);
  out.var_names[t_var] = "t";
  for (Atom& atom : out.atoms) {
    TDX_ASSIGN_OR_RETURN(RelationId twin, schema.TwinOf(atom.rel));
    if (!schema.relation(twin).temporal) {
      return Status::InvalidArgument(
          "lifting requires the twin of '" + schema.relation(atom.rel).name +
          "' to be temporal; lift only non-temporal dependencies");
    }
    atom.rel = twin;
    atom.terms.push_back(Term::Var(t_var));
  }
  return out;
}

}  // namespace

Status Tgd::Finalize() {
  if (head.atoms.empty()) {
    return Status::InvalidArgument("tgd '" + label + "' has an empty head");
  }
  const std::size_t nv = std::max(body.num_vars, head.num_vars);
  body.num_vars = head.num_vars = nv;
  if (body.var_names.size() < nv) body.var_names.resize(nv);
  head.var_names = body.var_names;
  const std::unordered_set<VarId> body_vars = VarsOf(body);
  const std::unordered_set<VarId> head_vars = VarsOf(head);
  existential.clear();
  for (VarId v : head_vars) {
    if (body_vars.count(v) == 0) existential.push_back(v);
  }
  std::sort(existential.begin(), existential.end());
  return Status::OK();
}

Status Egd::Finalize() {
  if (body.atoms.empty()) {
    return Status::InvalidArgument("egd '" + label + "' has an empty body");
  }
  const std::unordered_set<VarId> body_vars = VarsOf(body);
  if (body_vars.count(x1) == 0 || body_vars.count(x2) == 0) {
    return Status::InvalidArgument(
        "egd '" + label + "': equality variables must occur in the body");
  }
  if (x1 == x2) {
    return Status::InvalidArgument("egd '" + label +
                                   "' equates a variable with itself");
  }
  return Status::OK();
}

std::string Tgd::ToString(const Schema& schema, const Universe& u) const {
  std::string out = label.empty() ? "" : (label + ": ");
  out += body.ToString(schema, u);
  out += " -> ";
  if (!existential.empty()) {
    out += "exists ";
    for (std::size_t i = 0; i < existential.size(); ++i) {
      if (i > 0) out += ", ";
      const VarId v = existential[i];
      out += (v < head.var_names.size() && !head.var_names[v].empty())
                 ? head.var_names[v]
                 : ("?" + std::to_string(v));
    }
    out += ": ";
  }
  out += head.ToString(schema, u);
  return out;
}

std::string Egd::ToString(const Schema& schema, const Universe& u) const {
  auto var_name = [this](VarId v) {
    return (v < body.var_names.size() && !body.var_names[v].empty())
               ? body.var_names[v]
               : ("?" + std::to_string(v));
  };
  std::string out = label.empty() ? "" : (label + ": ");
  out += body.ToString(schema, u);
  out += " -> " + var_name(x1) + " = " + var_name(x2);
  return out;
}

std::vector<Conjunction> Mapping::TgdBodies() const {
  std::vector<Conjunction> out;
  out.reserve(st_tgds.size());
  for (const Tgd& tgd : st_tgds) out.push_back(tgd.body);
  return out;
}

std::vector<Conjunction> Mapping::TargetTgdBodies() const {
  std::vector<Conjunction> out;
  out.reserve(target_tgds.size());
  for (const Tgd& tgd : target_tgds) out.push_back(tgd.body);
  return out;
}

std::vector<Conjunction> Mapping::EgdBodies() const {
  std::vector<Conjunction> out;
  out.reserve(egds.size());
  for (const Egd& egd : egds) out.push_back(egd.body);
  return out;
}

std::string Mapping::ToString(const Schema& schema, const Universe& u) const {
  std::string out;
  for (const Tgd& tgd : st_tgds) out += tgd.ToString(schema, u) + "\n";
  for (const Tgd& tgd : target_tgds) out += tgd.ToString(schema, u) + "\n";
  for (const Egd& egd : egds) out += egd.ToString(schema, u) + "\n";
  return out;
}

Result<Tgd> LiftTgd(const Tgd& tgd, const Schema& schema) {
  Tgd out = tgd;
  const VarId t_var = static_cast<VarId>(tgd.num_vars());
  TDX_ASSIGN_OR_RETURN(out.body, LiftConjunction(tgd.body, schema, t_var));
  TDX_ASSIGN_OR_RETURN(out.head, LiftConjunction(tgd.head, schema, t_var));
  out.temporal_var = t_var;
  if (!out.label.empty()) out.label += "+";
  TDX_RETURN_IF_ERROR(out.Finalize());
  return out;
}

Result<Egd> LiftEgd(const Egd& egd, const Schema& schema) {
  Egd out = egd;
  const VarId t_var = static_cast<VarId>(egd.num_vars());
  TDX_ASSIGN_OR_RETURN(out.body, LiftConjunction(egd.body, schema, t_var));
  out.temporal_var = t_var;
  if (!out.label.empty()) out.label += "+";
  TDX_RETURN_IF_ERROR(out.Finalize());
  return out;
}

Result<Mapping> LiftMapping(const Mapping& mapping, const Schema& schema) {
  Mapping out;
  out.st_tgds.reserve(mapping.st_tgds.size());
  out.target_tgds.reserve(mapping.target_tgds.size());
  out.egds.reserve(mapping.egds.size());
  for (const Tgd& tgd : mapping.st_tgds) {
    TDX_ASSIGN_OR_RETURN(Tgd lifted, LiftTgd(tgd, schema));
    out.st_tgds.push_back(std::move(lifted));
  }
  for (const Tgd& tgd : mapping.target_tgds) {
    TDX_ASSIGN_OR_RETURN(Tgd lifted, LiftTgd(tgd, schema));
    out.target_tgds.push_back(std::move(lifted));
  }
  for (const Egd& egd : mapping.egds) {
    TDX_ASSIGN_OR_RETURN(Egd lifted, LiftEgd(egd, schema));
    out.egds.push_back(std::move(lifted));
  }
  return out;
}

Status ValidateMapping(const Mapping& mapping, const Schema& schema) {
  auto where = [](const SourceSpan& span) {
    return span.valid() ? " (" + span.ToString() + ")" : std::string();
  };
  auto check_role = [&schema](const Conjunction& conj, SchemaRole role,
                              const std::string& what) -> Status {
    for (const Atom& atom : conj.atoms) {
      const RelationSchema& rel = schema.relation(atom.rel);
      if (rel.role != role) {
        return Status::InvalidArgument(
            what + " uses relation '" + rel.name + "' with the wrong role");
      }
      if (atom.terms.size() != rel.arity()) {
        return Status::InvalidArgument(what + ": atom over '" + rel.name +
                                       "' has wrong arity");
      }
    }
    return Status::OK();
  };
  for (const Tgd& tgd : mapping.st_tgds) {
    TDX_RETURN_IF_ERROR(check_role(tgd.body, SchemaRole::kSource,
                                   "tgd body " + tgd.label + where(tgd.span)));
    TDX_RETURN_IF_ERROR(check_role(tgd.head, SchemaRole::kTarget,
                                   "tgd head " + tgd.label + where(tgd.span)));
  }
  for (const Tgd& tgd : mapping.target_tgds) {
    TDX_RETURN_IF_ERROR(
        check_role(tgd.body, SchemaRole::kTarget,
                   "target tgd body " + tgd.label + where(tgd.span)));
    TDX_RETURN_IF_ERROR(
        check_role(tgd.head, SchemaRole::kTarget,
                   "target tgd head " + tgd.label + where(tgd.span)));
  }
  for (const Egd& egd : mapping.egds) {
    TDX_RETURN_IF_ERROR(check_role(egd.body, SchemaRole::kTarget,
                                   "egd body " + egd.label + where(egd.span)));
  }
  // Termination: any rung of the ladder will do. An attached certificate is
  // trusted (the parser certifies every program once).
  const TerminationCertificate certificate =
      mapping.certificate.has_value()
          ? *mapping.certificate
          : CertifyTermination(mapping.target_tgds, schema);
  if (!certificate.guarantees_termination()) {
    return Status::InvalidArgument(
        "target tgds are not weakly acyclic (nor stratified): the cycle " +
        certificate.witness +
        " passes through a special (existential) edge; the chase might not "
        "terminate");
  }
  return Status::OK();
}

Status ValidateAndCertifyMapping(Mapping* mapping, const Schema& schema) {
  mapping->certificate.reset();
  mapping->schedule.reset();
  TDX_RETURN_IF_ERROR(ValidateMapping(*mapping, schema));
  mapping->certificate = CertifyTermination(mapping->target_tgds, schema);
  mapping->schedule = PlanChase(*mapping, schema);
  return Status::OK();
}

Status CheckWeaklyAcyclic(const std::vector<Tgd>& target_tgds,
                          const Schema& schema) {
  if (target_tgds.empty()) return Status::OK();
  const PositionGraph graph =
      PositionGraph::Build(target_tgds, schema, PositionGraph::Kind::kWeak);
  const std::optional<SpecialCycle> cycle = graph.FindSpecialCycle();
  if (!cycle.has_value()) return Status::OK();
  const Tgd& culprit = target_tgds[cycle->tgd_index];
  std::string label =
      culprit.label.empty() ? ("#" + std::to_string(cycle->tgd_index + 1))
                            : ("'" + culprit.label + "'");
  return Status::InvalidArgument(
      "target tgds are not weakly acyclic: the cycle " +
      graph.FormatCycle(schema, *cycle) +
      " passes through a special (existential) edge of tgd " + label +
      (culprit.span.valid() ? " (" + culprit.span.ToString() + ")" : "") +
      "; the chase might not terminate");
}

}  // namespace tdx
