// Incrementally maintained hash indexes over an Instance, keyed by
// (relation, set of bound attribute positions).
//
// The homomorphism engine (homomorphism.h) probes an index with the values
// an atom has already bound; the index returns candidate fact positions.
// Indexes are built on first use per (relation, position mask) and then kept
// in sync with the instance:
//
//  * Appends (Instance::Insert) leave existing fact positions stable, so a
//    probe catches an index up by hashing only the tail of facts added since
//    the last probe (AppendNewFacts) — the chase inserts between rounds and
//    the next round's probes pay O(delta), not O(instance).
//  * Mutations that move or rewrite facts (Erase, RewriteFacts, assignment)
//    bump the instance's generation; a probe that observes a new generation
//    discards every mask index and rebuilds lazily.
//
// This is what lets a HomomorphismFinder persist across chase rounds instead
// of being rebuilt per round (see chase.cc's semi-naive trigger enumeration).
//
// Probing is approximate: candidates are bucketed by a hash of the bound
// values, and the engine re-verifies every candidate during matching, so
// hash collisions cost time but never correctness.

#ifndef TDX_RELATIONAL_INDEX_H_
#define TDX_RELATIONAL_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/relational/instance.h"

namespace tdx {

class IndexCache {
 public:
  explicit IndexCache(const Instance* instance)
      : instance_(instance), generation_(instance->generation()) {}

  IndexCache(const IndexCache&) = delete;
  IndexCache& operator=(const IndexCache&) = delete;

  /// Candidate positions (indexes into instance.facts(rel)) of facts whose
  /// arguments at `positions` hash-match `values`. `positions` must be
  /// sorted ascending and non-empty; `values[i]` corresponds to
  /// `positions[i]`. The returned pointer is valid until the next Probe.
  ///
  /// Returns nullptr when the index cannot cover the probe — an attribute
  /// position >= 64 does not fit the mask key (wide relations) — in which
  /// case the caller scans the full relation instead. Never UB.
  const std::vector<std::uint32_t>* Probe(
      RelationId rel, const std::vector<std::uint32_t>& positions,
      const std::vector<Value>& values);

 private:
  struct MaskIndex {
    // bucket hash -> fact positions
    std::unordered_map<std::size_t, std::vector<std::uint32_t>> buckets;
    // The probed positions (the expansion of the mask key), kept so the
    // catch-up path can hash new facts without re-deriving them.
    std::vector<std::uint32_t> positions;
    // Facts [0, indexed_count) are in the buckets; facts beyond are the
    // un-indexed tail appended since the last probe.
    std::uint32_t indexed_count = 0;
  };
  struct MaskKey {
    RelationId rel;
    std::uint64_t mask;
    bool operator==(const MaskKey& other) const {
      return rel == other.rel && mask == other.mask;
    }
  };
  struct MaskKeyHash {
    std::size_t operator()(const MaskKey& k) const {
      return std::hash<std::uint64_t>()((std::uint64_t{k.rel} << 32) ^ k.mask);
    }
  };

  static std::size_t HashValuesAt(const Fact& fact,
                                  const std::vector<std::uint32_t>& positions);
  static std::size_t HashValues(const std::vector<Value>& values);

  /// Hashes the facts appended since `index` was last caught up.
  void AppendNewFacts(RelationId rel, MaskIndex* index);

  const Instance* instance_;
  std::uint64_t generation_;
  std::unordered_map<MaskKey, MaskIndex, MaskKeyHash> indexes_;
  std::vector<std::uint32_t> empty_;
};

}  // namespace tdx

#endif  // TDX_RELATIONAL_INDEX_H_
