// Lazy hash indexes over an Instance, keyed by (relation, set of bound
// attribute positions).
//
// The homomorphism engine (homomorphism.h) probes an index with the values
// an atom has already bound; the index returns candidate fact positions.
// Indexes are built on first use per (relation, position mask) and are valid
// as long as the underlying Instance is not mutated — the engine owns the
// cache and is itself a short-lived view over an immutable instance.
//
// Probing is approximate: candidates are bucketed by a hash of the bound
// values, and the engine re-verifies every candidate during matching, so
// hash collisions cost time but never correctness.

#ifndef TDX_RELATIONAL_INDEX_H_
#define TDX_RELATIONAL_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/relational/instance.h"

namespace tdx {

class IndexCache {
 public:
  explicit IndexCache(const Instance* instance) : instance_(instance) {}

  IndexCache(const IndexCache&) = delete;
  IndexCache& operator=(const IndexCache&) = delete;

  /// Candidate positions (indexes into instance.facts(rel)) of facts whose
  /// arguments at `positions` hash-match `values`. `positions` must be
  /// sorted ascending and non-empty; `values[i]` corresponds to
  /// `positions[i]`. The returned reference is valid until the next Probe.
  const std::vector<std::uint32_t>& Probe(RelationId rel,
                                          const std::vector<std::uint32_t>& positions,
                                          const std::vector<Value>& values);

 private:
  struct MaskIndex {
    // bucket hash -> fact positions
    std::unordered_map<std::size_t, std::vector<std::uint32_t>> buckets;
  };
  struct MaskKey {
    RelationId rel;
    std::uint64_t mask;
    bool operator==(const MaskKey& other) const {
      return rel == other.rel && mask == other.mask;
    }
  };
  struct MaskKeyHash {
    std::size_t operator()(const MaskKey& k) const {
      return std::hash<std::uint64_t>()((std::uint64_t{k.rel} << 32) ^ k.mask);
    }
  };

  static std::size_t HashValuesAt(const Fact& fact,
                                  const std::vector<std::uint32_t>& positions);
  static std::size_t HashValues(const std::vector<Value>& values);

  const Instance* instance_;
  std::unordered_map<MaskKey, MaskIndex, MaskKeyHash> indexes_;
  std::vector<std::uint32_t> empty_;
};

}  // namespace tdx

#endif  // TDX_RELATIONAL_INDEX_H_
