// Incrementally maintained hash indexes over an Instance, keyed by
// (relation, set of bound attribute positions).
//
// The homomorphism engine (homomorphism.h) probes an index with the values
// an atom has already bound; the index returns candidate fact positions.
// Indexes are built on first use per (relation, position mask) and then kept
// in sync with the instance:
//
//  * Appends (Instance::Insert) leave existing fact positions stable, so a
//    probe catches an index up by hashing only the tail of facts added since
//    the last probe (AppendNewFacts) — the chase inserts between rounds and
//    the next round's probes pay O(delta), not O(instance).
//  * Mutations that move or rewrite facts (Erase, RewriteFacts, assignment)
//    bump the instance's generation; a probe that observes a new generation
//    discards every mask index and rebuilds lazily.
//
// This is what lets a HomomorphismFinder persist across chase rounds instead
// of being rebuilt per round (see chase.cc's semi-naive trigger enumeration).
//
// Layout: one MaskIndex is a flat open-addressing table of buckets (probed
// by the hash of the bound values) whose candidate runs live back-to-back in
// one contiguous slots array — no per-bucket heap nodes, no rehash of
// candidate lists. A run that outgrows its capacity relocates to the end of
// the slots array (classic doubling); the dead space left behind is tracked
// and compacted away when it dominates.
//
// Probing is approximate: candidates are bucketed by a hash of the bound
// values, and the engine re-verifies every candidate during matching, so
// hash collisions cost time but never correctness. Candidate runs preserve
// ascending fact-position order, which keeps enumeration order — and thus
// chase output — identical to a full scan filtered by the predicate.

#ifndef TDX_RELATIONAL_INDEX_H_
#define TDX_RELATIONAL_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/relational/instance.h"

namespace tdx {

/// Counters for index effectiveness, accumulated by the homomorphism engine
/// (and surfaced through ChaseStats / tdx_cli --stats).
struct IndexStats {
  std::uint64_t index_probes = 0;      ///< probes answered by a mask index
  std::uint64_t index_candidates = 0;  ///< candidate facts those probes returned
  std::uint64_t full_scans = 0;        ///< relation scans (nothing bound, or
                                       ///< wide-relation mask fallback)

  IndexStats& operator+=(const IndexStats& o) {
    index_probes += o.index_probes;
    index_candidates += o.index_candidates;
    full_scans += o.full_scans;
    return *this;
  }
};

/// Result of IndexCache::Probe: a run of candidate fact positions (indexes
/// into instance.facts(rel)), in ascending position order. When `covered` is
/// false the index could not answer (a bound position >= 64 does not fit the
/// mask key) and the caller must scan the full relation. The run points into
/// the cache and is valid until the next Probe.
struct CandidateRange {
  const std::uint32_t* data = nullptr;
  std::uint32_t count = 0;
  bool covered = false;

  const std::uint32_t* begin() const { return data; }
  const std::uint32_t* end() const { return data + count; }
  std::uint32_t size() const { return count; }
};

class IndexCache {
 public:
  explicit IndexCache(const Instance* instance)
      : instance_(instance), generation_(instance->generation()) {}

  IndexCache(const IndexCache&) = delete;
  IndexCache& operator=(const IndexCache&) = delete;

  /// Candidate positions of facts whose arguments at `positions` hash-match
  /// `values`. `positions` must be sorted ascending and non-empty;
  /// `values[i]` corresponds to `positions[i]`.
  CandidateRange Probe(RelationId rel, const std::uint32_t* positions,
                       const Value* values, std::size_t n);

  /// Convenience overload (tests).
  CandidateRange Probe(RelationId rel,
                       const std::vector<std::uint32_t>& positions,
                       const std::vector<Value>& values) {
    assert(positions.size() == values.size());
    return Probe(rel, positions.data(), values.data(), positions.size());
  }

 private:
  /// One bucket: the candidate run for one bound-value hash, stored at
  /// slots[begin, begin+len) with capacity cap. cap == 0 marks an empty
  /// table entry (a real bucket always has capacity).
  struct Bucket {
    std::size_t hash = 0;
    std::uint32_t begin = 0;
    std::uint32_t len = 0;
    std::uint32_t cap = 0;
  };
  struct MaskIndex {
    std::vector<Bucket> table;  // open addressing, power-of-two size
    std::vector<std::uint32_t> slots;
    std::uint32_t used = 0;   // occupied buckets
    std::uint32_t waste = 0;  // dead slots left behind by run relocation
    // The probed positions (the expansion of the mask key), kept so the
    // catch-up path can hash new facts without re-deriving them.
    std::vector<std::uint32_t> positions;
    // Facts [0, indexed_count) are in the buckets; facts beyond are the
    // un-indexed tail appended since the last probe.
    std::uint32_t indexed_count = 0;
  };
  struct MaskKey {
    RelationId rel;
    std::uint64_t mask;
    bool operator==(const MaskKey& other) const {
      return rel == other.rel && mask == other.mask;
    }
  };
  struct MaskKeyHash {
    std::size_t operator()(const MaskKey& k) const {
      return std::hash<std::uint64_t>()((std::uint64_t{k.rel} << 32) ^ k.mask);
    }
  };

  static std::size_t HashValuesAt(FactView fact,
                                  const std::vector<std::uint32_t>& positions);
  static std::size_t HashValues(const Value* values, std::size_t n);

  /// Appends fact position `pos` to the run for `hash`, claiming a bucket /
  /// relocating the run as needed.
  static void Add(MaskIndex* index, std::size_t hash, std::uint32_t pos);
  static void GrowTable(MaskIndex* index);
  static void CompactSlots(MaskIndex* index);
  static const Bucket* FindBucket(const MaskIndex& index, std::size_t hash);

  /// Hashes the facts appended since `index` was last caught up.
  void AppendNewFacts(RelationId rel, MaskIndex* index);

  const Instance* instance_;
  std::uint64_t generation_;
  std::unordered_map<MaskKey, MaskIndex, MaskKeyHash> indexes_;
};

}  // namespace tdx

#endif  // TDX_RELATIONAL_INDEX_H_
