#include "src/relational/index.h"

namespace tdx {

std::size_t IndexCache::HashValuesAt(
    const Fact& fact, const std::vector<std::uint32_t>& positions) {
  std::size_t h = 0;
  for (std::uint32_t pos : positions) {
    h ^= fact.arg(pos).Hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

std::size_t IndexCache::HashValues(const std::vector<Value>& values) {
  std::size_t h = 0;
  for (const Value& v : values) {
    h ^= v.Hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

const std::vector<std::uint32_t>& IndexCache::Probe(
    RelationId rel, const std::vector<std::uint32_t>& positions,
    const std::vector<Value>& values) {
  assert(!positions.empty());
  assert(positions.size() == values.size());
  std::uint64_t mask = 0;
  for (std::uint32_t pos : positions) {
    assert(pos < 64 && "indexes support up to 64 attributes");
    mask |= (std::uint64_t{1} << pos);
  }
  const MaskKey key{rel, mask};
  auto it = indexes_.find(key);
  if (it == indexes_.end()) {
    MaskIndex index;
    const std::vector<Fact>& facts = instance_->facts(rel);
    for (std::uint32_t i = 0; i < facts.size(); ++i) {
      index.buckets[HashValuesAt(facts[i], positions)].push_back(i);
    }
    it = indexes_.emplace(key, std::move(index)).first;
  }
  auto bucket = it->second.buckets.find(HashValues(values));
  if (bucket == it->second.buckets.end()) return empty_;
  return bucket->second;
}

}  // namespace tdx
