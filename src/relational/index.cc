#include "src/relational/index.h"

namespace tdx {

std::size_t IndexCache::HashValuesAt(
    const Fact& fact, const std::vector<std::uint32_t>& positions) {
  std::size_t h = 0;
  for (std::uint32_t pos : positions) {
    h ^= fact.arg(pos).Hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

std::size_t IndexCache::HashValues(const std::vector<Value>& values) {
  std::size_t h = 0;
  for (const Value& v : values) {
    h ^= v.Hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

void IndexCache::AppendNewFacts(RelationId rel, MaskIndex* index) {
  const std::vector<Fact>& facts = instance_->facts(rel);
  for (std::uint32_t i = index->indexed_count; i < facts.size(); ++i) {
    index->buckets[HashValuesAt(facts[i], index->positions)].push_back(i);
  }
  index->indexed_count = static_cast<std::uint32_t>(facts.size());
}

const std::vector<std::uint32_t>* IndexCache::Probe(
    RelationId rel, const std::vector<std::uint32_t>& positions,
    const std::vector<Value>& values) {
  assert(!positions.empty());
  assert(positions.size() == values.size());
  // A generation change means facts moved or were rewritten in place; every
  // cached bucket may now point at the wrong fact, so start over. Appends
  // do not change the generation and are handled incrementally below.
  if (instance_->generation() != generation_) {
    indexes_.clear();
    generation_ = instance_->generation();
  }
  std::uint64_t mask = 0;
  for (std::uint32_t pos : positions) {
    if (pos >= 64) return nullptr;  // wide relation: caller scans instead
    mask |= (std::uint64_t{1} << pos);
  }
  const MaskKey key{rel, mask};
  auto it = indexes_.find(key);
  if (it == indexes_.end()) {
    MaskIndex index;
    index.positions = positions;
    it = indexes_.emplace(key, std::move(index)).first;
  }
  AppendNewFacts(rel, &it->second);
  auto bucket = it->second.buckets.find(HashValues(values));
  if (bucket == it->second.buckets.end()) return &empty_;
  return &bucket->second;
}

}  // namespace tdx
