#include "src/relational/index.h"

#include <algorithm>

namespace tdx {

std::size_t IndexCache::HashValuesAt(
    FactView fact, const std::vector<std::uint32_t>& positions) {
  std::size_t h = 0;
  for (std::uint32_t pos : positions) {
    h ^= fact.arg(pos).Hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

std::size_t IndexCache::HashValues(const Value* values, std::size_t n) {
  std::size_t h = 0;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= values[i].Hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

void IndexCache::GrowTable(MaskIndex* index) {
  std::vector<Bucket> old = std::move(index->table);
  index->table.assign(old.size() * 2, Bucket{});
  const std::size_t mask = index->table.size() - 1;
  for (const Bucket& b : old) {
    if (b.cap == 0) continue;
    std::size_t i = b.hash & mask;
    while (index->table[i].cap != 0) i = (i + 1) & mask;
    index->table[i] = b;
  }
}

void IndexCache::CompactSlots(MaskIndex* index) {
  // Rewrite every run back-to-back; runs keep their internal (ascending
  // position) order, so probe results are unchanged. Round capacities up to
  // a power of two so the next few appends don't immediately relocate.
  std::vector<std::uint32_t> fresh;
  fresh.reserve(index->slots.size() - index->waste);
  for (Bucket& b : index->table) {
    if (b.cap == 0) continue;
    std::uint32_t cap = 4;
    while (cap < b.len) cap <<= 1;
    const std::uint32_t begin = static_cast<std::uint32_t>(fresh.size());
    fresh.resize(fresh.size() + cap);
    std::copy(index->slots.begin() + b.begin,
              index->slots.begin() + b.begin + b.len, fresh.begin() + begin);
    b.begin = begin;
    b.cap = cap;
  }
  index->slots = std::move(fresh);
  index->waste = 0;
}

void IndexCache::Add(MaskIndex* index, std::size_t hash, std::uint32_t pos) {
  if (index->table.empty()) {
    index->table.assign(16, Bucket{});
  } else if ((std::size_t{index->used} + 1) * 4 > index->table.size() * 3) {
    GrowTable(index);
  }
  const std::size_t mask = index->table.size() - 1;
  std::size_t i = hash & mask;
  while (index->table[i].cap != 0 && index->table[i].hash != hash) {
    i = (i + 1) & mask;
  }
  Bucket& b = index->table[i];
  if (b.cap == 0) {
    b.hash = hash;
    b.begin = static_cast<std::uint32_t>(index->slots.size());
    b.len = 0;
    b.cap = 4;
    index->slots.resize(index->slots.size() + b.cap);
    ++index->used;
  } else if (b.len == b.cap) {
    // Run full: relocate to the end of the slots array with doubled
    // capacity; the old run becomes tracked waste.
    const std::uint32_t begin = static_cast<std::uint32_t>(index->slots.size());
    index->slots.resize(index->slots.size() + std::size_t{b.cap} * 2);
    std::copy(index->slots.begin() + b.begin,
              index->slots.begin() + b.begin + b.len,
              index->slots.begin() + begin);
    index->waste += b.cap;
    b.begin = begin;
    b.cap *= 2;
  }
  index->slots[b.begin + b.len] = pos;
  ++b.len;
  if (index->waste > index->slots.size() / 2 && index->slots.size() > 1024) {
    CompactSlots(index);
  }
}

const IndexCache::Bucket* IndexCache::FindBucket(const MaskIndex& index,
                                                 std::size_t hash) {
  if (index.table.empty()) return nullptr;
  const std::size_t mask = index.table.size() - 1;
  std::size_t i = hash & mask;
  while (index.table[i].cap != 0) {
    if (index.table[i].hash == hash) return &index.table[i];
    i = (i + 1) & mask;
  }
  return nullptr;
}

void IndexCache::AppendNewFacts(RelationId rel, MaskIndex* index) {
  const FactColumn facts = instance_->facts(rel);
  for (std::uint32_t i = index->indexed_count; i < facts.size(); ++i) {
    Add(index, HashValuesAt(facts[i], index->positions), i);
  }
  index->indexed_count = static_cast<std::uint32_t>(facts.size());
}

CandidateRange IndexCache::Probe(RelationId rel,
                                 const std::uint32_t* positions,
                                 const Value* values, std::size_t n) {
  assert(n > 0);
  // A generation change means facts moved or were rewritten in place; every
  // cached bucket may now point at the wrong fact, so start over. Appends
  // do not change the generation and are handled incrementally below.
  if (instance_->generation() != generation_) {
    indexes_.clear();
    generation_ = instance_->generation();
  }
  std::uint64_t mask = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (positions[i] >= 64) return CandidateRange{};  // wide relation: scan
    mask |= (std::uint64_t{1} << positions[i]);
  }
  auto [it, fresh] = indexes_.try_emplace(MaskKey{rel, mask});
  MaskIndex& index = it->second;
  if (fresh) index.positions.assign(positions, positions + n);
  AppendNewFacts(rel, &index);
  const Bucket* bucket = FindBucket(index, HashValues(values, n));
  if (bucket == nullptr) return CandidateRange{nullptr, 0, true};
  return CandidateRange{index.slots.data() + bucket->begin, bucket->len, true};
}

}  // namespace tdx
