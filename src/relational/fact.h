// Facts: one tuple of one relation.
//
// A fact is R(v1, ..., vn); in a concrete instance the last value is the
// fact's time interval (Value of kind kInterval). The paper's notation
// f[T] (the time interval of a concrete fact) and f[D] (its data attribute
// values) is mirrored by interval() and DataEquals().

#ifndef TDX_RELATIONAL_FACT_H_
#define TDX_RELATIONAL_FACT_H_

#include <cassert>
#include <string>
#include <vector>

#include "src/common/value.h"
#include "src/relational/schema.h"

namespace tdx {

/// One tuple of one relation. Equality/hash/order are structural and include
/// the relation id, so facts from different relations never collide.
class Fact {
 public:
  Fact(RelationId rel, std::vector<Value> args)
      : rel_(rel), args_(std::move(args)) {}

  RelationId relation() const { return rel_; }
  const std::vector<Value>& args() const { return args_; }
  std::size_t arity() const { return args_.size(); }
  const Value& arg(std::size_t i) const {
    assert(i < args_.size());
    return args_[i];
  }

  /// f[T]: the time interval of a concrete fact — its last argument, which
  /// must be an interval value.
  const Interval& interval() const {
    assert(!args_.empty() && args_.back().is_interval());
    return args_.back().interval();
  }
  bool has_interval() const {
    return !args_.empty() && args_.back().is_interval();
  }

  /// f[D] = g[D]: same data attribute values (all but the last argument).
  /// Only meaningful for concrete facts of the same relation.
  bool DataEquals(const Fact& other) const {
    if (rel_ != other.rel_ || args_.size() != other.args_.size()) return false;
    for (std::size_t i = 0; i + 1 < args_.size(); ++i) {
      if (args_[i] != other.args_[i]) return false;
    }
    return true;
  }

  /// Copy of this concrete fact restamped with `iv`; interval-annotated
  /// nulls among the data values are re-annotated to `iv` as well, keeping
  /// the paper's invariant that a null's annotation always equals the time
  /// interval of the fact it occurs in (Section 4.2, after Example 12).
  Fact WithInterval(const Interval& iv) const;

  std::size_t Hash() const {
    std::size_t h = std::hash<RelationId>()(rel_);
    for (const Value& v : args_) {
      h ^= v.Hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h;
  }

  /// Renders as "R(v1, ..., vn)" resolving names through `u` and `schema`.
  std::string ToString(const Schema& schema, const Universe& u) const;

  friend bool operator==(const Fact& a, const Fact& b) {
    return a.rel_ == b.rel_ && a.args_ == b.args_;
  }
  friend bool operator!=(const Fact& a, const Fact& b) { return !(a == b); }
  friend bool operator<(const Fact& a, const Fact& b) {
    if (a.rel_ != b.rel_) return a.rel_ < b.rel_;
    return a.args_ < b.args_;
  }

 private:
  RelationId rel_;
  std::vector<Value> args_;
};

struct FactHash {
  std::size_t operator()(const Fact& f) const { return f.Hash(); }
};

}  // namespace tdx

#endif  // TDX_RELATIONAL_FACT_H_
