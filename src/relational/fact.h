// Facts: one tuple of one relation.
//
// A fact is R(v1, ..., vn); in a concrete instance the last value is the
// fact's time interval (Value of kind kInterval). The paper's notation
// f[T] (the time interval of a concrete fact) and f[D] (its data attribute
// values) is mirrored by interval() and DataEquals().
//
// Two representations share one identity:
//
//  * Fact owns its arguments (std::vector<Value>) — the materialized form
//    used for serialization, sorting, and set containers.
//  * FactView is a non-owning (relation, position, argument-run) handle into
//    an Instance's columnar arena (instance.h) — the form the hot matching
//    paths traffic in, so enumerating candidates copies nothing.
//
// Both hash and compare by (relation, argument values), so a view and its
// materialization are interchangeable as keys.

#ifndef TDX_RELATIONAL_FACT_H_
#define TDX_RELATIONAL_FACT_H_

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/value.h"
#include "src/relational/schema.h"

namespace tdx {

/// Structural hash of a fact spelled as (relation, argument run). The single
/// definition shared by Fact, FactView, and the Instance membership table —
/// all three must bucket identically.
inline std::size_t HashFactSpan(RelationId rel, const Value* args,
                                std::size_t n) {
  std::size_t h = std::hash<RelationId>()(rel);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= args[i].Hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

/// Non-owning run of contiguous values: one fact's arguments inside an
/// Instance arena. Iterable like a container; valid until the owning arena
/// mutates.
class ValueSpan {
 public:
  ValueSpan() = default;
  ValueSpan(const Value* data, std::size_t size) : data_(data), size_(size) {}

  const Value* begin() const { return data_; }
  const Value* end() const { return data_ + size_; }
  const Value* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const Value& operator[](std::size_t i) const {
    assert(i < size_);
    return data_[i];
  }
  const Value& front() const { return (*this)[0]; }
  const Value& back() const { return (*this)[size_ - 1]; }

 private:
  const Value* data_ = nullptr;
  std::size_t size_ = 0;
};

class Fact;

/// Non-owning handle to one fact stored in an Instance arena: the relation,
/// the fact's position within facts(relation), and a pointer to its
/// contiguous argument run. Trivially copyable — the homomorphism engine
/// passes these around instead of copying Facts. Invalidated by any
/// instance mutation (appends can reallocate the arena; see
/// Instance::generation for moves/rewrites).
class FactView {
 public:
  FactView() = default;
  FactView(RelationId rel, std::uint32_t pos, const Value* args,
           std::uint32_t arity)
      : args_(args), arity_(arity), pos_(pos), rel_(rel) {}

  RelationId relation() const { return rel_; }
  /// Index of this fact within Instance::facts(relation()).
  std::uint32_t pos() const { return pos_; }
  std::size_t arity() const { return arity_; }
  ValueSpan args() const { return ValueSpan(args_, arity_); }
  const Value& arg(std::size_t i) const {
    assert(i < arity_);
    return args_[i];
  }

  /// f[T]: the time interval of a concrete fact — its last argument.
  const Interval& interval() const {
    assert(arity_ > 0 && args_[arity_ - 1].is_interval());
    return args_[arity_ - 1].interval();
  }
  bool has_interval() const {
    return arity_ > 0 && args_[arity_ - 1].is_interval();
  }

  /// f[D] = g[D]: same data attribute values (all but the last argument).
  bool DataEquals(FactView other) const {
    if (rel_ != other.rel_ || arity_ != other.arity_) return false;
    for (std::size_t i = 0; i + 1 < arity_; ++i) {
      if (args_[i] != other.args_[i]) return false;
    }
    return true;
  }

  /// Materializes an owning Fact with the same content.
  Fact ToFact() const;

  /// Materialized copy restamped with `iv` (see Fact::WithInterval).
  Fact WithInterval(const Interval& iv) const;

  std::size_t Hash() const { return HashFactSpan(rel_, args_, arity_); }

  std::string ToString(const Schema& schema, const Universe& u) const;

  friend bool operator==(FactView a, FactView b) {
    if (a.rel_ != b.rel_ || a.arity_ != b.arity_) return false;
    for (std::size_t i = 0; i < a.arity_; ++i) {
      if (a.args_[i] != b.args_[i]) return false;
    }
    return true;
  }
  friend bool operator!=(FactView a, FactView b) { return !(a == b); }

 private:
  const Value* args_ = nullptr;
  std::uint32_t arity_ = 0;
  std::uint32_t pos_ = 0;
  RelationId rel_ = 0;
};

/// One tuple of one relation, owning its arguments. Equality/hash/order are
/// structural and include the relation id, so facts from different relations
/// never collide.
class Fact {
 public:
  Fact(RelationId rel, std::vector<Value> args)
      : rel_(rel), args_(std::move(args)) {}

  RelationId relation() const { return rel_; }
  const std::vector<Value>& args() const { return args_; }
  std::size_t arity() const { return args_.size(); }
  const Value& arg(std::size_t i) const {
    assert(i < args_.size());
    return args_[i];
  }

  /// Non-owning view of this fact's content (position 0: an owning Fact has
  /// no arena position).
  FactView View() const {
    return FactView(rel_, 0, args_.data(),
                    static_cast<std::uint32_t>(args_.size()));
  }

  /// f[T]: the time interval of a concrete fact — its last argument, which
  /// must be an interval value.
  const Interval& interval() const {
    assert(!args_.empty() && args_.back().is_interval());
    return args_.back().interval();
  }
  bool has_interval() const {
    return !args_.empty() && args_.back().is_interval();
  }

  /// f[D] = g[D]: same data attribute values (all but the last argument).
  /// Only meaningful for concrete facts of the same relation.
  bool DataEquals(const Fact& other) const {
    if (rel_ != other.rel_ || args_.size() != other.args_.size()) return false;
    for (std::size_t i = 0; i + 1 < args_.size(); ++i) {
      if (args_[i] != other.args_[i]) return false;
    }
    return true;
  }

  /// Copy of this concrete fact restamped with `iv`; interval-annotated
  /// nulls among the data values are re-annotated to `iv` as well, keeping
  /// the paper's invariant that a null's annotation always equals the time
  /// interval of the fact it occurs in (Section 4.2, after Example 12).
  Fact WithInterval(const Interval& iv) const;

  std::size_t Hash() const {
    return HashFactSpan(rel_, args_.data(), args_.size());
  }

  /// Renders as "R(v1, ..., vn)" resolving names through `u` and `schema`.
  std::string ToString(const Schema& schema, const Universe& u) const;

  friend bool operator==(const Fact& a, const Fact& b) {
    return a.rel_ == b.rel_ && a.args_ == b.args_;
  }
  friend bool operator!=(const Fact& a, const Fact& b) { return !(a == b); }
  friend bool operator<(const Fact& a, const Fact& b) {
    if (a.rel_ != b.rel_) return a.rel_ < b.rel_;
    return a.args_ < b.args_;
  }

 private:
  RelationId rel_;
  std::vector<Value> args_;
};

inline Fact FactView::ToFact() const {
  return Fact(rel_, std::vector<Value>(args_, args_ + arity_));
}

struct FactHash {
  std::size_t operator()(const Fact& f) const { return f.Hash(); }
};

}  // namespace tdx

#endif  // TDX_RELATIONAL_FACT_H_
