// Instance-level homomorphisms and universality checks.
//
// A homomorphism h : J1 -> J2 between relational instances maps constants to
// themselves and (labeled or interval-annotated) nulls to arbitrary values
// such that the image of every fact of J1 is a fact of J2 (Section 2). A
// solution is *universal* iff it has a homomorphism into every solution
// (Definition 3); homomorphic equivalence between a computed solution and a
// reference solution is how the paper states correctness (Corollary 20).
//
// The check reduces to conjunctive matching: J1's facts become atoms, its
// distinct nulls become variables, and the engine searches J2.

#ifndef TDX_RELATIONAL_UNIVERSAL_H_
#define TDX_RELATIONAL_UNIVERSAL_H_

#include <optional>
#include <unordered_map>

#include "src/relational/homomorphism.h"
#include "src/relational/instance.h"

namespace tdx {

/// A witness mapping from the nulls of the domain instance to values of the
/// codomain instance (constants map to themselves and are omitted).
using NullAssignment = std::unordered_map<Value, Value, ValueHash>;

/// Finds a homomorphism from `from` to `to`, or nullopt if none exists.
/// Interval values and constants must map to themselves; labeled and
/// interval-annotated nulls may map to anything.
std::optional<NullAssignment> FindInstanceHomomorphism(const Instance& from,
                                                       const Instance& to);

/// Homomorphisms in both directions (Corollary 20's notion of "semantically
/// aligned" at the instance level).
bool AreHomomorphicallyEquivalent(const Instance& a, const Instance& b);

/// Converts an instance into a conjunction: each fact becomes an atom, each
/// distinct null becomes a variable. `null_vars` receives the null -> VarId
/// assignment (useful for interpreting bindings). Exposed for reuse by the
/// abstract-homomorphism checker.
Conjunction InstanceToConjunction(
    const Instance& instance,
    std::unordered_map<Value, VarId, ValueHash>* null_vars);

}  // namespace tdx

#endif  // TDX_RELATIONAL_UNIVERSAL_H_
