// Conjunctions of atomic formulas and the homomorphism (conjunctive-match)
// engine.
//
// A homomorphism h from a conjunction phi(x) to an instance I maps each
// variable to a value so that the image of every atom is a fact of I
// (Section 2). This single engine powers:
//
//  * chase trigger enumeration (homs from tgd/egd bodies, Sections 3, 4.3),
//  * the "no extension" check of restricted chase steps (Definition 16),
//  * the set S of Algorithm 1 (homs from phi* in N(Phi+), Section 4.2),
//  * conjunctive query evaluation and naive evaluation (Section 5),
//  * instance-level homomorphism checks (universality, Definition 3).
//
// Search is backtracking over atoms, dynamically ordered most-bound-first
// (ties broken toward the smaller relation — a cheap selectivity estimate),
// with hash-index probes (index.h) for candidate facts. Because the paper
// treats intervals as values ("intervals behave as constants" after
// normalization), temporal variables need no special handling here.
//
// The search is allocation-free in steady state: probe keys, the
// newly-bound stack, and the atom image live in per-finder scratch buffers
// reused across calls, and the image holds FactView handles into the
// instance arena instead of copied Facts.

#ifndef TDX_RELATIONAL_HOMOMORPHISM_H_
#define TDX_RELATIONAL_HOMOMORPHISM_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/relational/index.h"
#include "src/relational/instance.h"

namespace tdx {

/// Dense variable id within one Conjunction/dependency/query.
using VarId = std::uint32_t;

/// A term of an atom: either a variable or a fixed value.
class Term {
 public:
  static Term Var(VarId v) { return Term(true, v, Value()); }
  static Term Val(const Value& value) { return Term(false, 0, value); }

  bool is_var() const { return is_var_; }
  VarId var() const {
    assert(is_var_);
    return var_;
  }
  const Value& value() const {
    assert(!is_var_);
    return value_;
  }

  friend bool operator==(const Term& a, const Term& b) {
    if (a.is_var_ != b.is_var_) return false;
    return a.is_var_ ? a.var_ == b.var_ : a.value_ == b.value_;
  }

 private:
  Term(bool is_var, VarId var, const Value& value)
      : is_var_(is_var), var_(var), value_(value) {}
  bool is_var_;
  VarId var_;
  Value value_;
};

/// One atomic formula R(t1, ..., tn).
struct Atom {
  RelationId rel;
  std::vector<Term> terms;
};

/// A conjunction of atoms sharing a variable namespace of size num_vars.
/// var_names is optional display metadata (parser fills it in).
struct Conjunction {
  std::vector<Atom> atoms;
  std::size_t num_vars = 0;
  std::vector<std::string> var_names;

  /// Renders e.g. "E+(n, c, t) & S+(n, s, t)".
  std::string ToString(const Schema& schema, const Universe& u) const;
};

/// A partial assignment of variables to values.
class Binding {
 public:
  explicit Binding(std::size_t num_vars)
      : values_(num_vars), bound_(num_vars, false) {}

  bool IsBound(VarId v) const { return bound_[v]; }
  const Value& Get(VarId v) const {
    assert(bound_[v]);
    return values_[v];
  }
  void Bind(VarId v, const Value& value) {
    values_[v] = value;
    bound_[v] = true;
  }
  void Unbind(VarId v) { bound_[v] = false; }
  std::size_t size() const { return values_.size(); }

 private:
  std::vector<Value> values_;
  std::vector<bool> bound_;
};

/// The image of a conjunction under a homomorphism: for each atom (by
/// position), a view of the fact it was mapped to. Views are into the
/// instance's arena and only valid during the callback.
using AtomImage = std::vector<FactView>;

/// Callback invoked per homomorphism found. Return true to continue
/// enumeration, false to stop early.
using HomCallback =
    std::function<bool(const Binding& binding, const AtomImage& image)>;

/// View over an Instance that enumerates homomorphisms. The finder may
/// outlive instance mutations: its index cache catches up incrementally on
/// appends and rebuilds itself when the instance's generation changes
/// (erase, in-place rewrite, assignment) — see index.h. This is what lets
/// the chase keep ONE finder alive across rounds. Do not mutate the
/// instance from inside an enumeration callback, though: candidate lists
/// for the in-flight probe would dangle.
///
/// When `stats` is given, the finder accumulates index probe / candidate /
/// full-scan counters there (the chase engines point it at their
/// ChaseStats).
class HomomorphismFinder {
 public:
  explicit HomomorphismFinder(const Instance& instance,
                              IndexStats* stats = nullptr)
      : instance_(&instance),
        cache_(&instance),
        stats_(stats != nullptr ? stats : &own_stats_) {}

  /// Enumerates every homomorphism from `conj` to the instance extending
  /// `initial` (pass a fresh Binding(conj.num_vars) for no constraints).
  /// Returns false iff the callback stopped enumeration early.
  bool ForEach(const Conjunction& conj, Binding initial,
               const HomCallback& cb) {
    return ForEach(conj, &initial, cb);
  }

  /// In-place variant: extends `*initial` during the search and fully
  /// restores it before returning (even on early stop) — no Binding copy.
  bool ForEach(const Conjunction& conj, Binding* initial,
               const HomCallback& cb);

  /// Semi-naive building block: enumerates every homomorphism extending
  /// `initial` whose image of atom `seed_atom` is one of the facts
  /// facts(conj.atoms[seed_atom].rel)[seed_begin..seed_end). Seeding each
  /// body atom with a delta range enumerates exactly the homomorphisms that
  /// touch at least one delta fact (with overlap when several atoms hit the
  /// delta; chase trigger collection deduplicates by key, so overlap costs
  /// time, never correctness). Returns false iff the callback stopped early.
  bool ForEachSeeded(const Conjunction& conj, std::size_t seed_atom,
                     std::uint32_t seed_begin, std::uint32_t seed_end,
                     Binding initial, const HomCallback& cb) {
    return ForEachSeeded(conj, seed_atom, seed_begin, seed_end, &initial, cb);
  }

  /// In-place variant of ForEachSeeded (restores `*initial` on return).
  bool ForEachSeeded(const Conjunction& conj, std::size_t seed_atom,
                     std::uint32_t seed_begin, std::uint32_t seed_end,
                     Binding* initial, const HomCallback& cb);

  /// Does any homomorphism extending `initial` exist?
  bool Exists(const Conjunction& conj, Binding initial) {
    return Exists(conj, &initial);
  }

  /// In-place variant of Exists (restores `*initial` on return).
  bool Exists(const Conjunction& conj, Binding* initial);

  /// First homomorphism extending `initial`, if any.
  std::optional<Binding> FindFirst(const Conjunction& conj, Binding initial);

 private:
  /// Reusable per-depth search state. One Frame per recursion level; the
  /// frames vector is sized once per enumeration (to the atom count), so
  /// recursion never reallocates it under a live reference.
  struct Frame {
    std::vector<std::uint32_t> positions;  // bound positions (probe key)
    std::vector<Value> values;             // bound values (probe key)
    std::vector<VarId> newly_bound;        // vars bound at this level
  };
  struct Scratch {
    std::vector<Frame> frames;
    std::vector<char> done;
    AtomImage image;
  };
  /// RAII lease of one Scratch from the finder's pool. Nested enumerations
  /// (a callback calling back into the same finder) get distinct scratch.
  class ScratchLease {
   public:
    explicit ScratchLease(HomomorphismFinder* f) : f_(f) {
      if (f_->active_scratch_ == f_->scratch_pool_.size()) {
        f_->scratch_pool_.push_back(std::make_unique<Scratch>());
      }
      s_ = f_->scratch_pool_[f_->active_scratch_++].get();
    }
    ~ScratchLease() { --f_->active_scratch_; }
    ScratchLease(const ScratchLease&) = delete;
    ScratchLease& operator=(const ScratchLease&) = delete;
    Scratch& operator*() const { return *s_; }
    Scratch* operator->() const { return s_; }

   private:
    HomomorphismFinder* f_;
    Scratch* s_;
  };

  bool Search(const Conjunction& conj, Scratch& scratch, std::size_t depth,
              std::size_t remaining, Binding& binding, const HomCallback& cb);

  /// Attempts to match `fact` against `atom` under `binding`; on success
  /// appends newly bound vars to `newly_bound` and returns true.
  static bool MatchAtom(const Atom& atom, FactView fact, Binding& binding,
                        std::vector<VarId>& newly_bound);

  const Instance* instance_;
  IndexCache cache_;
  IndexStats own_stats_;
  IndexStats* stats_;
  std::vector<std::unique_ptr<Scratch>> scratch_pool_;
  std::size_t active_scratch_ = 0;
};

}  // namespace tdx

#endif  // TDX_RELATIONAL_HOMOMORPHISM_H_
