#include "src/relational/instance.h"

#include <algorithm>

namespace tdx {

std::size_t Instance::FindMember(RelationId rel, const Value* args,
                                 std::size_t n, std::size_t hash) const {
  if (members_.empty()) return kNpos;
  if (rel >= by_rel_.size()) return kNpos;
  const RelationStore& store = by_rel_[rel];
  if (store.count == 0 || store.arity != n) return kNpos;
  const std::size_t mask = members_.size() - 1;
  std::size_t i = hash & mask;
  while (true) {
    const MemberSlot& slot = members_[i];
    if (slot.pos == kEmptySlot) return kNpos;
    if (slot.pos != kTombstone && slot.hash == hash && slot.rel == rel) {
      const Value* row = store.arena.data() + std::size_t{slot.pos} * n;
      bool equal = true;
      for (std::size_t j = 0; j < n; ++j) {
        if (row[j] != args[j]) {
          equal = false;
          break;
        }
      }
      if (equal) return i;
    }
    i = (i + 1) & mask;
  }
}

bool Instance::EraseMemberAt(RelationId rel, std::uint32_t pos,
                             std::size_t hash) {
  if (members_.empty()) return false;
  const std::size_t mask = members_.size() - 1;
  std::size_t i = hash & mask;
  while (true) {
    MemberSlot& slot = members_[i];
    if (slot.pos == kEmptySlot) return false;
    if (slot.pos != kTombstone && slot.rel == rel && slot.pos == pos) {
      slot.pos = kTombstone;
      ++tombstones_;
      --size_;
      return true;
    }
    i = (i + 1) & mask;
  }
}

void Instance::InsertMember(RelationId rel, std::uint32_t pos,
                            std::size_t hash) {
  const std::size_t mask = members_.size() - 1;
  std::size_t i = hash & mask;
  while (members_[i].pos != kEmptySlot && members_[i].pos != kTombstone) {
    i = (i + 1) & mask;
  }
  if (members_[i].pos == kTombstone) --tombstones_;
  members_[i] = MemberSlot{hash, rel, pos};
  ++size_;
}

void Instance::ReserveMember() {
  if (members_.empty()) {
    members_.assign(16, MemberSlot{});
    return;
  }
  if ((size_ + tombstones_ + 1) * 10 <= members_.size() * 7) return;
  // Size for the live population; a tombstone-heavy table rehashes in place
  // (same capacity, tombstones dropped).
  std::size_t target = 16;
  while ((size_ + 1) * 10 > target * 7) target <<= 1;
  if (target < members_.size()) target = members_.size();
  std::vector<MemberSlot> old = std::move(members_);
  members_.assign(target, MemberSlot{});
  tombstones_ = 0;
  const std::size_t mask = target - 1;
  for (const MemberSlot& slot : old) {
    if (slot.pos == kEmptySlot || slot.pos == kTombstone) continue;
    std::size_t i = slot.hash & mask;
    while (members_[i].pos != kEmptySlot) i = (i + 1) & mask;
    members_[i] = slot;
  }
}

void Instance::RebuildMembersFromArena() {
  size_ = 0;
  for (const RelationStore& store : by_rel_) size_ += store.count;
  std::size_t target = 16;
  while ((size_ + 1) * 10 > target * 7) target <<= 1;
  members_.assign(target, MemberSlot{});
  tombstones_ = 0;
  const std::size_t mask = target - 1;
  for (RelationId rel = 0; rel < by_rel_.size(); ++rel) {
    const RelationStore& store = by_rel_[rel];
    for (std::uint32_t pos = 0; pos < store.count; ++pos) {
      const Value* row = store.arena.data() + std::size_t{pos} * store.arity;
      const std::size_t hash = HashFactSpan(rel, row, store.arity);
      std::size_t i = hash & mask;
      while (members_[i].pos != kEmptySlot) i = (i + 1) & mask;
      members_[i] = MemberSlot{hash, rel, pos};
    }
  }
}

bool Instance::InsertSpan(RelationId rel, const Value* args, std::size_t n) {
  assert(rel < schema_->relation_count());
  assert(n == schema_->relation(rel).arity() &&
         "fact arity must match relation schema");
  if (rel >= by_rel_.size()) by_rel_.resize(schema_->relation_count());
  RelationStore& store = by_rel_[rel];
  assert(store.count == 0 || store.arity == n);
  const std::size_t hash = HashFactSpan(rel, args, n);
  ReserveMember();
  // One probe pass doubles as duplicate check and slot claim.
  const std::size_t mask = members_.size() - 1;
  std::size_t i = hash & mask;
  std::size_t claim = kNpos;
  while (true) {
    const MemberSlot& slot = members_[i];
    if (slot.pos == kEmptySlot) break;
    if (slot.pos == kTombstone) {
      if (claim == kNpos) claim = i;
    } else if (slot.hash == hash && slot.rel == rel && store.count != 0) {
      const Value* row = store.arena.data() + std::size_t{slot.pos} * n;
      bool equal = true;
      for (std::size_t j = 0; j < n; ++j) {
        if (row[j] != args[j]) {
          equal = false;
          break;
        }
      }
      if (equal) return false;
    }
    i = (i + 1) & mask;
  }
  if (claim == kNpos) claim = i;
  // Append the run; copy out first if `args` aliases this very arena (its
  // reallocation would invalidate the source mid-copy).
  if (args >= store.arena.data() &&
      args < store.arena.data() + store.arena.size()) {
    std::vector<Value> copy(args, args + n);
    store.arena.insert(store.arena.end(), copy.begin(), copy.end());
  } else {
    store.arena.insert(store.arena.end(), args, args + n);
  }
  const std::uint32_t pos = store.count++;
  store.arity = static_cast<std::uint32_t>(n);
  if (members_[claim].pos == kTombstone) --tombstones_;
  members_[claim] = MemberSlot{hash, rel, pos};
  ++size_;
  return true;
}

bool Instance::Erase(const Fact& fact) {
  const RelationId rel = fact.relation();
  if (rel >= by_rel_.size()) return false;
  const std::size_t slot =
      FindMember(rel, fact.args().data(), fact.arity(), fact.Hash());
  if (slot == kNpos) return false;
  const std::uint32_t pos = members_[slot].pos;
  members_[slot].pos = kTombstone;
  ++tombstones_;
  --size_;
  RelationStore& store = by_rel_[rel];
  const std::size_t arity = store.arity;
  Value* base = store.arena.data();
  std::move(base + (std::size_t{pos} + 1) * arity,
            base + std::size_t{store.count} * arity,
            base + std::size_t{pos} * arity);
  --store.count;
  store.arena.resize(std::size_t{store.count} * arity);
  // Facts after the hole shifted down one position; renumber their slots.
  for (MemberSlot& s : members_) {
    if (s.pos != kEmptySlot && s.pos != kTombstone && s.rel == rel &&
        s.pos > pos) {
      --s.pos;
    }
  }
  ++generation_;
  return true;
}

RewriteResult Instance::RewriteFacts(
    const std::vector<FactRef>& refs,
    const std::unordered_map<Value, Value, ValueHash>& subst) {
  RewriteResult result;
  if (refs.empty() || subst.empty()) return result;
  ++generation_;

  // Pass 1: compute the rewritten spellings (into one scratch buffer) and
  // remove the old facts from the membership table, so that pass 2 detects
  // collisions against exactly the facts that survive the whole
  // substitution (matching the semantics of a full rebuild, where every
  // fact is rewritten before dedup applies).
  struct Pending {
    FactRef ref;
    std::size_t offset;  // into `rewritten`
  };
  std::vector<Value> rewritten;
  std::vector<Pending> pending;
  pending.reserve(refs.size());
  for (const FactRef& ref : refs) {
    assert(ref.rel < by_rel_.size() && ref.pos < by_rel_[ref.rel].count);
    const RelationStore& store = by_rel_[ref.rel];
    const std::size_t arity = store.arity;
    const Value* row = store.arena.data() + std::size_t{ref.pos} * arity;
    const std::size_t offset = rewritten.size();
    std::size_t changed = 0;
    for (std::size_t j = 0; j < arity; ++j) {
      auto it = subst.find(row[j]);
      if (it != subst.end() && it->second != row[j]) {
        rewritten.push_back(it->second);
        ++changed;
      } else {
        rewritten.push_back(row[j]);
      }
    }
    if (changed == 0) {  // stale ref: fact mentions no merged value
      rewritten.resize(offset);
      continue;
    }
    const std::size_t old_hash = HashFactSpan(ref.rel, row, arity);
    if (!EraseMemberAt(ref.rel, ref.pos, old_hash)) {
      rewritten.resize(offset);  // duplicate ref: already queued
      continue;
    }
    result.values_rewritten += changed;
    ++result.facts_rewritten;
    pending.push_back({ref, offset});
  }

  // Pass 2: write the rewritten facts back at their original positions; a
  // collision (with an untouched fact or an earlier rewrite) marks the slot
  // dead and forces compaction.
  std::vector<std::vector<std::uint32_t>> dead(by_rel_.size());
  for (const Pending& p : pending) {
    RelationStore& store = by_rel_[p.ref.rel];
    const std::size_t arity = store.arity;
    const Value* row = rewritten.data() + p.offset;
    const std::size_t hash = HashFactSpan(p.ref.rel, row, arity);
    if (FindMember(p.ref.rel, row, arity, hash) != kNpos) {
      dead[p.ref.rel].push_back(p.ref.pos);
      result.compacted = true;
    } else {
      std::copy(row, row + arity,
                store.arena.data() + std::size_t{p.ref.pos} * arity);
      InsertMember(p.ref.rel, p.ref.pos, hash);
    }
  }
  if (!result.compacted) return result;

  // Close the dead holes per relation, then rebuild the membership table
  // (positions after each hole shifted).
  for (RelationId rel = 0; rel < dead.size(); ++rel) {
    std::vector<std::uint32_t>& holes = dead[rel];
    if (holes.empty()) continue;
    std::sort(holes.begin(), holes.end());
    RelationStore& store = by_rel_[rel];
    const std::size_t arity = store.arity;
    Value* base = store.arena.data();
    std::size_t write = holes[0];
    std::size_t next_hole = 0;
    for (std::size_t read = holes[0]; read < store.count; ++read) {
      if (next_hole < holes.size() && read == holes[next_hole]) {
        ++next_hole;
        continue;
      }
      if (read != write) {
        std::move(base + read * arity, base + (read + 1) * arity,
                  base + write * arity);
      }
      ++write;
    }
    store.count = static_cast<std::uint32_t>(write);
    store.arena.resize(write * arity);
  }
  RebuildMembersFromArena();
  return result;
}

std::vector<Fact> Instance::CopyFacts(RelationId rel) const {
  std::vector<Fact> out;
  const FactColumn column = facts(rel);
  out.reserve(column.size());
  for (FactView view : column) out.push_back(view.ToFact());
  return out;
}

void Instance::ForEach(const std::function<void(FactView)>& fn) const {
  for (RelationId rel = 0; rel < by_rel_.size(); ++rel) {
    const RelationStore& store = by_rel_[rel];
    const Value* base = store.arena.data();
    for (std::uint32_t pos = 0; pos < store.count; ++pos) {
      fn(FactView(rel, pos, base + std::size_t{pos} * store.arity,
                  store.arity));
    }
  }
}

Instance Instance::ReplaceValue(const Value& from, const Value& to) const {
  Instance out(schema_);
  std::vector<Value> row;
  ForEach([&](FactView f) {
    row.assign(f.args().begin(), f.args().end());
    for (Value& v : row) {
      if (v == from) v = to;
    }
    out.InsertSpan(f.relation(), row.data(), row.size());
  });
  return out;
}

Instance Instance::Union(const Instance& a, const Instance& b) {
  assert(&a.schema() == &b.schema());
  Instance out(&a.schema());
  a.ForEach([&](FactView f) { out.Insert(f); });
  b.ForEach([&](FactView f) { out.Insert(f); });
  return out;
}

bool operator==(const Instance& a, const Instance& b) {
  if (a.size_ != b.size_) return false;
  for (RelationId rel = 0; rel < a.by_rel_.size(); ++rel) {
    const Instance::RelationStore& store = a.by_rel_[rel];
    const Value* base = store.arena.data();
    for (std::uint32_t pos = 0; pos < store.count; ++pos) {
      const Value* row = base + std::size_t{pos} * store.arity;
      if (b.FindMember(rel, row, store.arity,
                       HashFactSpan(rel, row, store.arity)) ==
          Instance::kNpos) {
        return false;
      }
    }
  }
  return true;
}

std::string Instance::ToString(const Universe& u) const {
  std::vector<Fact> sorted;
  sorted.reserve(size_);
  ForEach([&](FactView f) { sorted.push_back(f.ToFact()); });
  std::sort(sorted.begin(), sorted.end());
  std::string out;
  for (const Fact& f : sorted) {
    out += f.ToString(*schema_, u);
    out += "\n";
  }
  return out;
}

}  // namespace tdx
