#include "src/relational/instance.h"

#include <algorithm>

namespace tdx {

bool Instance::Insert(Fact fact) {
  assert(fact.relation() < schema_->relation_count());
  assert(fact.arity() == schema_->relation(fact.relation()).arity() &&
         "fact arity must match relation schema");
  if (fact.relation() >= by_rel_.size()) {
    by_rel_.resize(schema_->relation_count());
  }
  auto [it, inserted] = all_.insert(fact);
  if (!inserted) return false;
  by_rel_[fact.relation()].push_back(std::move(fact));
  return true;
}

bool Instance::Erase(const Fact& fact) {
  if (all_.erase(fact) == 0) return false;
  std::vector<Fact>& vec = by_rel_[fact.relation()];
  vec.erase(std::remove(vec.begin(), vec.end(), fact), vec.end());
  return true;
}

void Instance::ForEach(const std::function<void(const Fact&)>& fn) const {
  for (const std::vector<Fact>& facts : by_rel_) {
    for (const Fact& f : facts) fn(f);
  }
}

Instance Instance::ReplaceValue(const Value& from, const Value& to) const {
  Instance out(schema_);
  ForEach([&](const Fact& f) {
    std::vector<Value> args = f.args();
    for (Value& v : args) {
      if (v == from) v = to;
    }
    out.Insert(Fact(f.relation(), std::move(args)));
  });
  return out;
}

Instance Instance::Union(const Instance& a, const Instance& b) {
  assert(&a.schema() == &b.schema());
  Instance out(&a.schema());
  a.ForEach([&](const Fact& f) { out.Insert(f); });
  b.ForEach([&](const Fact& f) { out.Insert(f); });
  return out;
}

bool operator==(const Instance& a, const Instance& b) {
  if (a.all_.size() != b.all_.size()) return false;
  for (const Fact& f : a.all_) {
    if (b.all_.count(f) == 0) return false;
  }
  return true;
}

std::string Instance::ToString(const Universe& u) const {
  std::vector<Fact> sorted;
  sorted.reserve(all_.size());
  ForEach([&](const Fact& f) { sorted.push_back(f); });
  std::sort(sorted.begin(), sorted.end());
  std::string out;
  for (const Fact& f : sorted) {
    out += f.ToString(*schema_, u);
    out += "\n";
  }
  return out;
}

}  // namespace tdx
