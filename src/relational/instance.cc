#include "src/relational/instance.h"

#include <algorithm>

namespace tdx {

bool Instance::Insert(Fact fact) {
  assert(fact.relation() < schema_->relation_count());
  assert(fact.arity() == schema_->relation(fact.relation()).arity() &&
         "fact arity must match relation schema");
  if (fact.relation() >= by_rel_.size()) {
    by_rel_.resize(schema_->relation_count());
  }
  auto [it, inserted] = all_.insert(fact);
  if (!inserted) return false;
  by_rel_[fact.relation()].push_back(std::move(fact));
  return true;
}

bool Instance::Erase(const Fact& fact) {
  if (all_.erase(fact) == 0) return false;
  std::vector<Fact>& vec = by_rel_[fact.relation()];
  vec.erase(std::remove(vec.begin(), vec.end(), fact), vec.end());
  ++generation_;
  return true;
}

RewriteResult Instance::RewriteFacts(
    const std::vector<FactRef>& refs,
    const std::unordered_map<Value, Value, ValueHash>& subst) {
  RewriteResult result;
  if (refs.empty() || subst.empty()) return result;
  ++generation_;

  // Pass 1: compute the rewritten spellings and remove the old ones from the
  // membership set, so that pass 2 detects collisions against exactly the
  // facts that survive the whole substitution (matching the semantics of a
  // full rebuild, where every fact is rewritten before dedup applies).
  struct Pending {
    FactRef ref;
    Fact fact;
  };
  std::vector<Pending> pending;
  pending.reserve(refs.size());
  for (const FactRef& ref : refs) {
    assert(ref.rel < by_rel_.size() && ref.pos < by_rel_[ref.rel].size());
    const Fact& old_fact = by_rel_[ref.rel][ref.pos];
    std::vector<Value> args = old_fact.args();
    std::size_t changed = 0;
    for (Value& v : args) {
      auto it = subst.find(v);
      if (it != subst.end() && it->second != v) {
        v = it->second;
        ++changed;
      }
    }
    if (changed == 0) continue;  // stale ref: fact mentions no merged value
    if (all_.erase(old_fact) == 0) continue;  // duplicate ref: already queued
    result.values_rewritten += changed;
    ++result.facts_rewritten;
    pending.push_back({ref, Fact(old_fact.relation(), std::move(args))});
  }

  // Pass 2: re-insert the rewritten facts at their original positions; a
  // collision (with an untouched fact or an earlier rewrite) marks the slot
  // dead and forces compaction.
  std::vector<std::vector<std::uint32_t>> dead(by_rel_.size());
  for (Pending& p : pending) {
    if (all_.insert(p.fact).second) {
      by_rel_[p.ref.rel][p.ref.pos] = std::move(p.fact);
    } else {
      dead[p.ref.rel].push_back(p.ref.pos);
      result.compacted = true;
    }
  }
  for (RelationId rel = 0; rel < dead.size(); ++rel) {
    std::vector<std::uint32_t>& holes = dead[rel];
    if (holes.empty()) continue;
    std::sort(holes.begin(), holes.end());
    std::vector<Fact>& vec = by_rel_[rel];
    std::size_t write = holes[0];
    std::size_t next_hole = 0;
    for (std::size_t read = holes[0]; read < vec.size(); ++read) {
      if (next_hole < holes.size() && read == holes[next_hole]) {
        ++next_hole;
        continue;
      }
      vec[write++] = std::move(vec[read]);
    }
    vec.erase(vec.begin() + static_cast<std::ptrdiff_t>(write), vec.end());
  }
  return result;
}

void Instance::ForEach(const std::function<void(const Fact&)>& fn) const {
  for (const std::vector<Fact>& facts : by_rel_) {
    for (const Fact& f : facts) fn(f);
  }
}

Instance Instance::ReplaceValue(const Value& from, const Value& to) const {
  Instance out(schema_);
  ForEach([&](const Fact& f) {
    std::vector<Value> args = f.args();
    for (Value& v : args) {
      if (v == from) v = to;
    }
    out.Insert(Fact(f.relation(), std::move(args)));
  });
  return out;
}

Instance Instance::Union(const Instance& a, const Instance& b) {
  assert(&a.schema() == &b.schema());
  Instance out(&a.schema());
  a.ForEach([&](const Fact& f) { out.Insert(f); });
  b.ForEach([&](const Fact& f) { out.Insert(f); });
  return out;
}

bool operator==(const Instance& a, const Instance& b) {
  if (a.all_.size() != b.all_.size()) return false;
  for (const Fact& f : a.all_) {
    if (b.all_.count(f) == 0) return false;
  }
  return true;
}

std::string Instance::ToString(const Universe& u) const {
  std::vector<Fact> sorted;
  sorted.reserve(all_.size());
  ForEach([&](const Fact& f) { sorted.push_back(f); });
  std::sort(sorted.begin(), sorted.end());
  std::string out;
  for (const Fact& f : sorted) {
    out += f.ToString(*schema_, u);
    out += "\n";
  }
  return out;
}

}  // namespace tdx
