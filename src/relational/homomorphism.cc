#include "src/relational/homomorphism.h"

#include <algorithm>

namespace tdx {

std::string Conjunction::ToString(const Schema& schema,
                                  const Universe& u) const {
  std::string out;
  for (std::size_t i = 0; i < atoms.size(); ++i) {
    if (i > 0) out += " & ";
    out += schema.relation(atoms[i].rel).name;
    out += "(";
    for (std::size_t j = 0; j < atoms[i].terms.size(); ++j) {
      if (j > 0) out += ", ";
      const Term& t = atoms[i].terms[j];
      if (t.is_var()) {
        out += (t.var() < var_names.size() && !var_names[t.var()].empty())
                   ? var_names[t.var()]
                   : ("?" + std::to_string(t.var()));
      } else {
        out += u.Render(t.value());
      }
    }
    out += ")";
  }
  return out;
}

bool HomomorphismFinder::MatchAtom(const Atom& atom, const Fact& fact,
                                   Binding& binding,
                                   std::vector<VarId>& newly_bound) {
  if (fact.relation() != atom.rel || fact.arity() != atom.terms.size()) {
    return false;
  }
  const std::size_t first_new = newly_bound.size();
  for (std::size_t i = 0; i < atom.terms.size(); ++i) {
    const Term& t = atom.terms[i];
    const Value& v = fact.arg(i);
    if (t.is_var()) {
      if (binding.IsBound(t.var())) {
        if (binding.Get(t.var()) != v) goto fail;
      } else {
        binding.Bind(t.var(), v);
        newly_bound.push_back(t.var());
      }
    } else if (t.value() != v) {
      goto fail;
    }
  }
  return true;
fail:
  for (std::size_t i = first_new; i < newly_bound.size(); ++i) {
    binding.Unbind(newly_bound[i]);
  }
  newly_bound.resize(first_new);
  return false;
}

bool HomomorphismFinder::Search(const Conjunction& conj,
                                std::vector<bool>& done,
                                std::size_t remaining, Binding& binding,
                                AtomImage& image, const HomCallback& cb) {
  if (remaining == 0) return cb(binding, image);

  // Pick the undone atom with the most bound terms (most selective first).
  std::size_t best = conj.atoms.size();
  std::size_t best_bound = 0;
  for (std::size_t i = 0; i < conj.atoms.size(); ++i) {
    if (done[i]) continue;
    std::size_t bound = 0;
    for (const Term& t : conj.atoms[i].terms) {
      if (!t.is_var() || binding.IsBound(t.var())) ++bound;
    }
    if (best == conj.atoms.size() || bound > best_bound) {
      best = i;
      best_bound = bound;
    }
  }
  assert(best < conj.atoms.size());
  const Atom& atom = conj.atoms[best];

  // Candidate facts: index probe on bound positions, else full relation.
  std::vector<std::uint32_t> positions;
  std::vector<Value> values;
  for (std::uint32_t i = 0; i < atom.terms.size(); ++i) {
    const Term& t = atom.terms[i];
    if (!t.is_var()) {
      positions.push_back(i);
      values.push_back(t.value());
    } else if (binding.IsBound(t.var())) {
      positions.push_back(i);
      values.push_back(binding.Get(t.var()));
    }
  }

  const std::vector<Fact>& rel_facts = instance_->facts(atom.rel);
  done[best] = true;
  bool keep_going = true;
  std::vector<VarId> newly_bound;

  auto try_fact = [&](const Fact& fact) {
    newly_bound.clear();
    if (!MatchAtom(atom, fact, binding, newly_bound)) return true;
    image[best] = fact;
    const bool cont =
        Search(conj, done, remaining - 1, binding, image, cb);
    for (VarId v : newly_bound) binding.Unbind(v);
    return cont;
  };

  // Index probe on bound positions; nullptr (nothing bound, or a wide
  // relation beyond the mask width) falls back to a full scan.
  const std::vector<std::uint32_t>* candidates =
      positions.empty() ? nullptr : cache_.Probe(atom.rel, positions, values);
  if (candidates == nullptr) {
    for (const Fact& fact : rel_facts) {
      if (!try_fact(fact)) {
        keep_going = false;
        break;
      }
    }
  } else {
    for (std::uint32_t idx : *candidates) {
      if (!try_fact(rel_facts[idx])) {
        keep_going = false;
        break;
      }
    }
  }
  done[best] = false;
  return keep_going;
}

bool HomomorphismFinder::ForEach(const Conjunction& conj, Binding initial,
                                 const HomCallback& cb) {
  assert(initial.size() >= conj.num_vars);
  if (conj.atoms.empty()) {
    AtomImage empty_image;
    return cb(initial, empty_image);
  }
  std::vector<bool> done(conj.atoms.size(), false);
  // Placeholder facts; every slot is overwritten before the callback runs.
  AtomImage image(conj.atoms.size(), Fact(0, {}));
  return Search(conj, done, conj.atoms.size(), initial, image, cb);
}

bool HomomorphismFinder::ForEachSeeded(const Conjunction& conj,
                                       std::size_t seed_atom,
                                       std::uint32_t seed_begin,
                                       std::uint32_t seed_end, Binding initial,
                                       const HomCallback& cb) {
  assert(initial.size() >= conj.num_vars);
  assert(seed_atom < conj.atoms.size());
  const Atom& atom = conj.atoms[seed_atom];
  const std::vector<Fact>& rel_facts = instance_->facts(atom.rel);
  assert(seed_end <= rel_facts.size());
  std::vector<bool> done(conj.atoms.size(), false);
  AtomImage image(conj.atoms.size(), Fact(0, {}));
  done[seed_atom] = true;
  std::vector<VarId> newly_bound;
  for (std::uint32_t i = seed_begin; i < seed_end; ++i) {
    newly_bound.clear();
    if (!MatchAtom(atom, rel_facts[i], initial, newly_bound)) continue;
    image[seed_atom] = rel_facts[i];
    const bool cont =
        Search(conj, done, conj.atoms.size() - 1, initial, image, cb);
    for (VarId v : newly_bound) initial.Unbind(v);
    if (!cont) return false;
  }
  return true;
}

bool HomomorphismFinder::Exists(const Conjunction& conj, Binding initial) {
  bool found = false;
  ForEach(conj, std::move(initial), [&](const Binding&, const AtomImage&) {
    found = true;
    return false;  // stop at the first one
  });
  return found;
}

std::optional<Binding> HomomorphismFinder::FindFirst(const Conjunction& conj,
                                                     Binding initial) {
  std::optional<Binding> result;
  ForEach(conj, std::move(initial),
          [&](const Binding& binding, const AtomImage&) {
            result = binding;
            return false;
          });
  return result;
}

}  // namespace tdx
