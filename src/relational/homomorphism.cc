#include "src/relational/homomorphism.h"

#include <algorithm>

namespace tdx {

std::string Conjunction::ToString(const Schema& schema,
                                  const Universe& u) const {
  std::string out;
  for (std::size_t i = 0; i < atoms.size(); ++i) {
    if (i > 0) out += " & ";
    out += schema.relation(atoms[i].rel).name;
    out += "(";
    for (std::size_t j = 0; j < atoms[i].terms.size(); ++j) {
      if (j > 0) out += ", ";
      const Term& t = atoms[i].terms[j];
      if (t.is_var()) {
        out += (t.var() < var_names.size() && !var_names[t.var()].empty())
                   ? var_names[t.var()]
                   : ("?" + std::to_string(t.var()));
      } else {
        out += u.Render(t.value());
      }
    }
    out += ")";
  }
  return out;
}

bool HomomorphismFinder::MatchAtom(const Atom& atom, FactView fact,
                                   Binding& binding,
                                   std::vector<VarId>& newly_bound) {
  if (fact.relation() != atom.rel || fact.arity() != atom.terms.size()) {
    return false;
  }
  const std::size_t first_new = newly_bound.size();
  for (std::size_t i = 0; i < atom.terms.size(); ++i) {
    const Term& t = atom.terms[i];
    const Value& v = fact.arg(i);
    if (t.is_var()) {
      if (binding.IsBound(t.var())) {
        if (binding.Get(t.var()) != v) goto fail;
      } else {
        binding.Bind(t.var(), v);
        newly_bound.push_back(t.var());
      }
    } else if (t.value() != v) {
      goto fail;
    }
  }
  return true;
fail:
  for (std::size_t i = first_new; i < newly_bound.size(); ++i) {
    binding.Unbind(newly_bound[i]);
  }
  newly_bound.resize(first_new);
  return false;
}

bool HomomorphismFinder::Search(const Conjunction& conj, Scratch& scratch,
                                std::size_t depth, std::size_t remaining,
                                Binding& binding, const HomCallback& cb) {
  if (remaining == 0) return cb(binding, scratch.image);

  // Pick the undone atom with the most bound terms (most selective first);
  // among equally-bound atoms prefer the one whose relation has fewer facts
  // (cheap selectivity estimate).
  std::size_t best = conj.atoms.size();
  std::size_t best_bound = 0;
  std::size_t best_size = 0;
  for (std::size_t i = 0; i < conj.atoms.size(); ++i) {
    if (scratch.done[i] != 0) continue;
    std::size_t bound = 0;
    for (const Term& t : conj.atoms[i].terms) {
      if (!t.is_var() || binding.IsBound(t.var())) ++bound;
    }
    const std::size_t rel_size = instance_->facts(conj.atoms[i].rel).size();
    if (best == conj.atoms.size() || bound > best_bound ||
        (bound == best_bound && rel_size < best_size)) {
      best = i;
      best_bound = bound;
      best_size = rel_size;
    }
  }
  assert(best < conj.atoms.size());
  const Atom& atom = conj.atoms[best];

  // Probe key: the atom's bound positions and their values, into this
  // depth's reusable frame (frames are pre-sized to the atom count, so the
  // reference stays valid across the recursion below).
  assert(depth < scratch.frames.size());
  Frame& frame = scratch.frames[depth];
  frame.positions.clear();
  frame.values.clear();
  for (std::uint32_t i = 0; i < atom.terms.size(); ++i) {
    const Term& t = atom.terms[i];
    if (!t.is_var()) {
      frame.positions.push_back(i);
      frame.values.push_back(t.value());
    } else if (binding.IsBound(t.var())) {
      frame.positions.push_back(i);
      frame.values.push_back(binding.Get(t.var()));
    }
  }

  const FactColumn rel_facts = instance_->facts(atom.rel);
  scratch.done[best] = 1;
  bool keep_going = true;

  auto try_fact = [&](FactView fact) {
    frame.newly_bound.clear();
    if (!MatchAtom(atom, fact, binding, frame.newly_bound)) return true;
    scratch.image[best] = fact;
    const bool cont =
        Search(conj, scratch, depth + 1, remaining - 1, binding, cb);
    for (VarId v : frame.newly_bound) binding.Unbind(v);
    return cont;
  };

  // Index probe on bound positions; an uncovered probe (nothing bound, or a
  // wide relation beyond the mask width) falls back to a full scan.
  CandidateRange candidates;
  if (!frame.positions.empty()) {
    candidates = cache_.Probe(atom.rel, frame.positions.data(),
                              frame.values.data(), frame.positions.size());
  }
  if (candidates.covered) {
    ++stats_->index_probes;
    stats_->index_candidates += candidates.size();
    for (std::uint32_t idx : candidates) {
      if (!try_fact(rel_facts[idx])) {
        keep_going = false;
        break;
      }
    }
  } else {
    ++stats_->full_scans;
    for (std::size_t i = 0; i < rel_facts.size(); ++i) {
      if (!try_fact(rel_facts[i])) {
        keep_going = false;
        break;
      }
    }
  }
  scratch.done[best] = 0;
  return keep_going;
}

bool HomomorphismFinder::ForEach(const Conjunction& conj, Binding* initial,
                                 const HomCallback& cb) {
  assert(initial->size() >= conj.num_vars);
  if (conj.atoms.empty()) {
    const AtomImage empty_image;
    return cb(*initial, empty_image);
  }
  ScratchLease scratch(this);
  scratch->done.assign(conj.atoms.size(), 0);
  scratch->image.assign(conj.atoms.size(), FactView());
  if (scratch->frames.size() < conj.atoms.size()) {
    scratch->frames.resize(conj.atoms.size());
  }
  return Search(conj, *scratch, 0, conj.atoms.size(), *initial, cb);
}

bool HomomorphismFinder::ForEachSeeded(const Conjunction& conj,
                                       std::size_t seed_atom,
                                       std::uint32_t seed_begin,
                                       std::uint32_t seed_end,
                                       Binding* initial, const HomCallback& cb) {
  assert(initial->size() >= conj.num_vars);
  assert(seed_atom < conj.atoms.size());
  const Atom& atom = conj.atoms[seed_atom];
  const FactColumn rel_facts = instance_->facts(atom.rel);
  assert(seed_end <= rel_facts.size());
  ScratchLease scratch(this);
  scratch->done.assign(conj.atoms.size(), 0);
  scratch->image.assign(conj.atoms.size(), FactView());
  // Frame slot 0 serves the seed loop; recursion starts at depth 1.
  if (scratch->frames.size() < conj.atoms.size() + 1) {
    scratch->frames.resize(conj.atoms.size() + 1);
  }
  scratch->done[seed_atom] = 1;
  std::vector<VarId>& newly_bound = scratch->frames[0].newly_bound;
  for (std::uint32_t i = seed_begin; i < seed_end; ++i) {
    newly_bound.clear();
    if (!MatchAtom(atom, rel_facts[i], *initial, newly_bound)) continue;
    scratch->image[seed_atom] = rel_facts[i];
    const bool cont =
        Search(conj, *scratch, 1, conj.atoms.size() - 1, *initial, cb);
    for (VarId v : newly_bound) initial->Unbind(v);
    if (!cont) return false;
  }
  return true;
}

bool HomomorphismFinder::Exists(const Conjunction& conj, Binding* initial) {
  bool found = false;
  ForEach(conj, initial, [&](const Binding&, const AtomImage&) {
    found = true;
    return false;  // stop at the first one
  });
  return found;
}

std::optional<Binding> HomomorphismFinder::FindFirst(const Conjunction& conj,
                                                     Binding initial) {
  std::optional<Binding> result;
  ForEach(conj, &initial, [&](const Binding& binding, const AtomImage&) {
    result = binding;
    return false;
  });
  return result;
}

}  // namespace tdx
