#include "src/gen/workload.h"

#include <random>
#include <string>

namespace tdx {

namespace {

/// Convenience for building dependencies programmatically: terms by var id.
Atom MakeAtom(RelationId rel, std::initializer_list<Term> terms) {
  Atom atom;
  atom.rel = rel;
  atom.terms = terms;
  return atom;
}

/// Registers the employment schema and mapping into `w` (non-temporal M;
/// the lifted M+ is derived). Returns the concrete relation ids (E+, S+).
struct EmploymentRelations {
  RelationId e_plus;
  RelationId s_plus;
};

Result<EmploymentRelations> BuildEmploymentSetting(Workload* w) {
  TDX_ASSIGN_OR_RETURN(
      RelationId e_plus,
      w->schema.AddRelationPair("E", {"name", "company"}, SchemaRole::kSource));
  TDX_ASSIGN_OR_RETURN(
      RelationId s_plus,
      w->schema.AddRelationPair("S", {"name", "salary"}, SchemaRole::kSource));
  TDX_ASSIGN_OR_RETURN(RelationId emp_plus,
                       w->schema.AddRelationPair(
                           "Emp", {"name", "company", "salary"},
                           SchemaRole::kTarget));
  TDX_ASSIGN_OR_RETURN(RelationId e_rel, w->schema.TwinOf(e_plus));
  TDX_ASSIGN_OR_RETURN(RelationId s_rel, w->schema.TwinOf(s_plus));
  TDX_ASSIGN_OR_RETURN(RelationId emp_rel, w->schema.TwinOf(emp_plus));

  // sigma1: E(n, c) -> exists s: Emp(n, c, s);  vars n=0, c=1, s=2.
  Tgd sigma1;
  sigma1.label = "sigma1";
  sigma1.body.atoms = {MakeAtom(e_rel, {Term::Var(0), Term::Var(1)})};
  sigma1.head.atoms = {
      MakeAtom(emp_rel, {Term::Var(0), Term::Var(1), Term::Var(2)})};
  sigma1.body.num_vars = sigma1.head.num_vars = 3;
  sigma1.body.var_names = {"n", "c", "s"};
  TDX_RETURN_IF_ERROR(sigma1.Finalize());

  // sigma2: E(n, c) & S(n, s) -> Emp(n, c, s).
  Tgd sigma2;
  sigma2.label = "sigma2";
  sigma2.body.atoms = {MakeAtom(e_rel, {Term::Var(0), Term::Var(1)}),
                       MakeAtom(s_rel, {Term::Var(0), Term::Var(2)})};
  sigma2.head.atoms = {
      MakeAtom(emp_rel, {Term::Var(0), Term::Var(1), Term::Var(2)})};
  sigma2.body.num_vars = sigma2.head.num_vars = 3;
  sigma2.body.var_names = {"n", "c", "s"};
  TDX_RETURN_IF_ERROR(sigma2.Finalize());

  // e1: Emp(n, c, s) & Emp(n, c, s2) -> s = s2.
  Egd e1;
  e1.label = "e1";
  e1.body.atoms = {
      MakeAtom(emp_rel, {Term::Var(0), Term::Var(1), Term::Var(2)}),
      MakeAtom(emp_rel, {Term::Var(0), Term::Var(1), Term::Var(3)})};
  e1.body.num_vars = 4;
  e1.body.var_names = {"n", "c", "s", "s2"};
  e1.x1 = 2;
  e1.x2 = 3;
  TDX_RETURN_IF_ERROR(e1.Finalize());

  w->mapping.st_tgds = {std::move(sigma1), std::move(sigma2)};
  w->mapping.egds = {std::move(e1)};
  TDX_RETURN_IF_ERROR(ValidateMapping(w->mapping, w->schema));
  TDX_ASSIGN_OR_RETURN(w->lifted, LiftMapping(w->mapping, w->schema));
  return EmploymentRelations{e_plus, s_plus};
}

/// Crashes on generator-internal errors: generators are test/bench infra,
/// and their settings are built from validated building blocks.
template <typename T>
T Unwrap(Result<T> result) {
  if (!result.ok()) {
    // Generators build fixed, known-good schemas; failure is a programming
    // error in the generator itself.
    assert(false && "workload generator failed to build its setting");
    abort();
  }
  return std::move(result).value();
}

void MustAdd(ConcreteInstance* instance, RelationId rel,
             std::vector<Value> data, const Interval& iv) {
  const Status status = instance->Add(rel, std::move(data), iv);
  if (!status.ok()) {
    assert(false && "workload generator produced an invalid fact");
    abort();
  }
}

}  // namespace

std::unique_ptr<Workload> MakeEmploymentWorkload(const EmploymentConfig& cfg) {
  auto w = std::make_unique<Workload>();
  const EmploymentRelations rels = Unwrap(BuildEmploymentSetting(w.get()));
  std::mt19937_64 rng(cfg.seed);

  std::uniform_int_distribution<std::size_t> company_dist(
      0, cfg.num_companies == 0 ? 0 : cfg.num_companies - 1);
  std::uniform_int_distribution<TimePoint> start_dist(
      0, cfg.horizon > 2 ? cfg.horizon / 2 : 1);

  std::uniform_real_distribution<double> coin(0.0, 1.0);
  for (std::size_t p = 0; p < cfg.num_people; ++p) {
    const Value name = w->universe.Constant("person" + std::to_string(p));
    // Consecutive employment spans: [t0, t1), [t1, t2), ..., last may be inf.
    TimePoint t = start_dist(rng);
    const TimePoint first_start = t;
    std::optional<Interval> last_span;
    const std::size_t jobs =
        1 + (cfg.avg_jobs <= 1
                 ? 0
                 : rng() % (2 * cfg.avg_jobs - 1));  // mean ~= avg_jobs
    for (std::size_t j = 0; j < jobs; ++j) {
      const bool last = (j + 1 == jobs);
      const TimePoint remaining =
          cfg.horizon > t + 2 ? cfg.horizon - t : 2;
      const TimePoint len = 1 + rng() % std::max<TimePoint>(remaining / 2, 1);
      const Interval span = last && (rng() % 4 == 0)
                                ? Interval::FromStart(t)
                                : Interval(t, t + len);
      const Value company = w->universe.Constant(
          "company" + std::to_string(company_dist(rng)));
      MustAdd(&w->source, rels.e_plus, {name, company}, span);
      last_span = span;
      if (span.unbounded()) break;
      t = span.end();
      if (t + 2 >= cfg.horizon) break;
      // Occasional unemployment gap.
      if (rng() % 3 == 0) t += 1 + rng() % 2;
      if (t + 2 >= cfg.horizon) break;
    }

    // Salary history: change points independent of job boundaries (as in
    // the paper's Figure 4, where Ada's salary persists across the
    // IBM->Google move). Segments are disjoint per person, so the egd
    // cannot fail unless a conflict is injected.
    if (!last_span.has_value()) continue;
    const bool open_ended = last_span->unbounded();
    const TimePoint cap =
        open_ended ? std::max<TimePoint>(cfg.horizon, first_start + 2)
                   : last_span->end();
    TimePoint cur = first_start;
    while (cur < cap) {
      const TimePoint len =
          1 + rng() % std::max<TimePoint>(cfg.horizon / 6, 2);
      const TimePoint end = std::min(cur + len, cap);
      const bool final_segment = (end == cap);
      const Interval seg = (final_segment && open_ended)
                               ? Interval::FromStart(cur)
                               : Interval(cur, end);
      if (coin(rng) < cfg.salary_known_fraction) {
        const Value salary = w->universe.Constant(
            std::to_string(10 + rng() % 90) + "k");
        MustAdd(&w->source, rels.s_plus, {name, salary}, seg);
        if (cfg.inject_conflict && rng() % 8 == 0) {
          const Value clash = w->universe.Constant(
              std::to_string(100 + rng() % 90) + "k");
          MustAdd(&w->source, rels.s_plus, {name, clash}, seg);
        }
      }
      cur = end;
    }
  }
  return w;
}

std::unique_ptr<Workload> MakeWorstCaseNormalizationWorkload(std::size_t n) {
  auto w = std::make_unique<Workload>();
  const RelationId r_plus = Unwrap(
      w->schema.AddRelationPair("R", {"a"}, SchemaRole::kSource));
  const RelationId t_plus = Unwrap(
      w->schema.AddRelationPair("T", {"a", "b"}, SchemaRole::kTarget));
  const RelationId r_rel = Unwrap(w->schema.TwinOf(r_plus));
  const RelationId t_rel = Unwrap(w->schema.TwinOf(t_plus));

  // tgd: R(x) & R(y) -> T(x, y): its lhs pairs every two facts.
  Tgd tgd;
  tgd.label = "pairs";
  tgd.body.atoms = {MakeAtom(r_rel, {Term::Var(0)}),
                    MakeAtom(r_rel, {Term::Var(1)})};
  tgd.head.atoms = {MakeAtom(t_rel, {Term::Var(0), Term::Var(1)})};
  tgd.body.num_vars = tgd.head.num_vars = 2;
  tgd.body.var_names = {"x", "y"};
  if (!tgd.Finalize().ok()) abort();
  w->mapping.st_tgds = {std::move(tgd)};
  if (!ValidateMapping(w->mapping, w->schema).ok()) abort();
  w->lifted = Unwrap(LiftMapping(w->mapping, w->schema));

  // Nested intervals [i, 2n - i): every pair overlaps, so normalization
  // forms one group with 2n distinct endpoints.
  for (std::size_t i = 0; i < n; ++i) {
    const Value a = w->universe.Constant("a" + std::to_string(i));
    MustAdd(&w->source, r_plus, {a},
            Interval(i, 2 * n - i));
  }
  return w;
}

std::unique_ptr<Workload> MakeRandomWorkload(const RandomConfig& cfg) {
  auto w = std::make_unique<Workload>();
  const EmploymentRelations rels = Unwrap(BuildEmploymentSetting(w.get()));
  std::mt19937_64 rng(cfg.seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);

  for (std::size_t i = 0; i < cfg.num_facts; ++i) {
    const Value name = w->universe.Constant(
        "n" + std::to_string(rng() % std::max<std::size_t>(cfg.num_names, 1)));
    const TimePoint start = rng() % cfg.horizon;
    const TimePoint len =
        1 + rng() % std::max<TimePoint>(cfg.max_interval_length, 1);
    const Interval iv = (coin(rng) < cfg.unbounded_probability)
                            ? Interval::FromStart(start)
                            : Interval(start, start + len);
    if (rng() % 2 == 0) {
      const Value company = w->universe.Constant(
          "c" + std::to_string(rng() %
                               std::max<std::size_t>(cfg.num_companies, 1)));
      MustAdd(&w->source, rels.e_plus, {name, company}, iv);
    } else {
      // Salaries are usually a deterministic function of the name so that a
      // fair share of random workloads admit a solution; the remainder pick
      // a random salary and may conflict, exercising the failure paths.
      const std::size_t salary_count =
          std::max<std::size_t>(cfg.num_salaries, 1);
      const std::size_t pick = (rng() % 10 < 8)
                                   ? (name.symbol() % salary_count)
                                   : (rng() % salary_count);
      const Value salary =
          w->universe.Constant("s" + std::to_string(pick));
      MustAdd(&w->source, rels.s_plus, {name, salary}, iv);
    }
  }
  return w;
}

std::unique_ptr<Workload> MakeRandomMappingWorkload(
    const RandomMappingConfig& cfg) {
  auto w = std::make_unique<Workload>();
  std::mt19937_64 rng(cfg.seed);
  auto pick = [&rng](std::size_t lo, std::size_t hi) {
    return lo + rng() % (hi - lo + 1);
  };

  // ---- random schema ------------------------------------------------------
  const std::size_t num_src = pick(1, cfg.max_source_relations);
  const std::size_t num_tgt = pick(1, cfg.max_target_relations);
  std::vector<RelationId> src_snap, tgt_snap, src_conc;
  for (std::size_t i = 0; i < num_src; ++i) {
    std::vector<std::string> attrs;
    for (std::size_t a = 0; a < pick(1, cfg.max_arity); ++a) {
      attrs.push_back("a" + std::to_string(a));
    }
    const RelationId conc = Unwrap(w->schema.AddRelationPair(
        "S" + std::to_string(i), std::move(attrs), SchemaRole::kSource));
    src_conc.push_back(conc);
    src_snap.push_back(Unwrap(w->schema.TwinOf(conc)));
  }
  for (std::size_t i = 0; i < num_tgt; ++i) {
    std::vector<std::string> attrs;
    for (std::size_t a = 0; a < pick(1, cfg.max_arity); ++a) {
      attrs.push_back("a" + std::to_string(a));
    }
    const RelationId conc = Unwrap(w->schema.AddRelationPair(
        "T" + std::to_string(i), std::move(attrs), SchemaRole::kTarget));
    tgt_snap.push_back(Unwrap(w->schema.TwinOf(conc)));
  }

  // ---- random s-t tgds ----------------------------------------------------
  const std::size_t num_tgds = pick(1, cfg.max_st_tgds);
  for (std::size_t d = 0; d < num_tgds; ++d) {
    Tgd tgd;
    tgd.label = "g" + std::to_string(d);
    // Body: 1-2 source atoms over a small shared variable pool.
    const std::size_t pool = pick(1, 4);
    const std::size_t body_atoms = pick(1, 2);
    for (std::size_t i = 0; i < body_atoms; ++i) {
      const RelationId rel = src_snap[rng() % src_snap.size()];
      Atom atom;
      atom.rel = rel;
      for (std::size_t j = 0; j < w->schema.relation(rel).arity(); ++j) {
        atom.terms.push_back(Term::Var(static_cast<VarId>(rng() % pool)));
      }
      tgd.body.atoms.push_back(std::move(atom));
    }
    // Head: 1-2 target atoms mixing body variables and fresh existentials.
    const std::size_t head_atoms = pick(1, 2);
    VarId next_var = static_cast<VarId>(pool);
    for (std::size_t i = 0; i < head_atoms; ++i) {
      const RelationId rel = tgt_snap[rng() % tgt_snap.size()];
      Atom atom;
      atom.rel = rel;
      for (std::size_t j = 0; j < w->schema.relation(rel).arity(); ++j) {
        if (rng() % 3 == 0) {
          atom.terms.push_back(Term::Var(next_var++));  // existential
        } else {
          atom.terms.push_back(Term::Var(static_cast<VarId>(rng() % pool)));
        }
      }
      tgd.head.atoms.push_back(std::move(atom));
    }
    tgd.body.num_vars = tgd.head.num_vars = next_var;
    if (!tgd.Finalize().ok()) continue;  // skip malformed combinations
    w->mapping.st_tgds.push_back(std::move(tgd));
  }
  if (w->mapping.st_tgds.empty()) {
    // Guarantee at least one tgd: copy the first source relation into the
    // first target relation position-wise (arities may differ; use min).
    Tgd tgd;
    tgd.label = "g_fallback";
    const RelationId s0 = src_snap[0];
    const RelationId t0 = tgt_snap[0];
    const std::size_t arity = std::min(w->schema.relation(s0).arity(),
                                       w->schema.relation(t0).arity());
    Atom body, head;
    body.rel = s0;
    head.rel = t0;
    for (std::size_t j = 0; j < w->schema.relation(s0).arity(); ++j) {
      body.terms.push_back(Term::Var(static_cast<VarId>(j % arity)));
    }
    VarId next = static_cast<VarId>(arity);
    for (std::size_t j = 0; j < w->schema.relation(t0).arity(); ++j) {
      head.terms.push_back(j < arity ? Term::Var(static_cast<VarId>(j))
                                     : Term::Var(next++));
    }
    tgd.body.atoms = {std::move(body)};
    tgd.head.atoms = {std::move(head)};
    tgd.body.num_vars = tgd.head.num_vars = next;
    if (!tgd.Finalize().ok()) abort();
    w->mapping.st_tgds.push_back(std::move(tgd));
  }

  // ---- random egds ---------------------------------------------------------
  const std::size_t num_egds = rng() % (cfg.max_egds + 1);
  for (std::size_t d = 0; d < num_egds; ++d) {
    // Pick a target relation with arity >= 2: first column is the key,
    // a random later column is determined by it.
    std::vector<RelationId> candidates;
    for (RelationId rel : tgt_snap) {
      if (w->schema.relation(rel).arity() >= 2) candidates.push_back(rel);
    }
    if (candidates.empty()) break;
    const RelationId rel = candidates[rng() % candidates.size()];
    const std::size_t arity = w->schema.relation(rel).arity();
    const std::size_t dep_col = 1 + rng() % (arity - 1);
    Egd egd;
    egd.label = "k" + std::to_string(d);
    Atom a1, a2;
    a1.rel = a2.rel = rel;
    VarId next = 0;
    std::vector<VarId> vars1, vars2;
    for (std::size_t j = 0; j < arity; ++j) {
      vars1.push_back(next++);
    }
    for (std::size_t j = 0; j < arity; ++j) {
      vars2.push_back(j == 0 ? vars1[0] : next++);  // shared key column
    }
    for (std::size_t j = 0; j < arity; ++j) a1.terms.push_back(Term::Var(vars1[j]));
    for (std::size_t j = 0; j < arity; ++j) a2.terms.push_back(Term::Var(vars2[j]));
    egd.body.atoms = {std::move(a1), std::move(a2)};
    egd.body.num_vars = next;
    egd.x1 = vars1[dep_col];
    egd.x2 = vars2[dep_col];
    if (!egd.Finalize().ok()) continue;
    w->mapping.egds.push_back(std::move(egd));
  }

  if (!ValidateMapping(w->mapping, w->schema).ok()) abort();
  w->lifted = Unwrap(LiftMapping(w->mapping, w->schema));

  // ---- random facts ---------------------------------------------------------
  for (std::size_t i = 0; i < cfg.num_facts; ++i) {
    const RelationId conc = src_conc[rng() % src_conc.size()];
    const std::size_t data_arity = w->schema.relation(conc).data_arity();
    std::vector<Value> data;
    for (std::size_t j = 0; j < data_arity; ++j) {
      data.push_back(w->universe.Constant(
          "c" + std::to_string(rng() % cfg.num_constants)));
    }
    const TimePoint start = rng() % cfg.horizon;
    const TimePoint len =
        1 + rng() % std::max<TimePoint>(cfg.max_interval_length, 1);
    const Interval iv = (rng() % 10 == 0) ? Interval::FromStart(start)
                                          : Interval(start, start + len);
    MustAdd(&w->source, conc, std::move(data), iv);
  }
  return w;
}

std::unique_ptr<Workload> MakeFlightWorkload(const FlightConfig& cfg) {
  auto w = std::make_unique<Workload>();
  const RelationId flight_plus = Unwrap(w->schema.AddRelationPair(
      "Flight", {"from", "to"}, SchemaRole::kSource));
  const RelationId reach_plus = Unwrap(w->schema.AddRelationPair(
      "Reach", {"from", "to"}, SchemaRole::kTarget));
  const RelationId flight = Unwrap(w->schema.TwinOf(flight_plus));
  const RelationId reach = Unwrap(w->schema.TwinOf(reach_plus));

  Tgd copy;
  copy.label = "direct";
  copy.body.atoms = {MakeAtom(flight, {Term::Var(0), Term::Var(1)})};
  copy.head.atoms = {MakeAtom(reach, {Term::Var(0), Term::Var(1)})};
  copy.body.num_vars = copy.head.num_vars = 2;
  copy.body.var_names = {"x", "y"};
  if (!copy.Finalize().ok()) abort();

  Tgd trans;
  trans.label = "transitive";
  trans.body.atoms = {MakeAtom(reach, {Term::Var(0), Term::Var(1)}),
                      MakeAtom(reach, {Term::Var(1), Term::Var(2)})};
  trans.head.atoms = {MakeAtom(reach, {Term::Var(0), Term::Var(2)})};
  trans.body.num_vars = trans.head.num_vars = 3;
  trans.body.var_names = {"x", "y", "z"};
  if (!trans.Finalize().ok()) abort();

  w->mapping.st_tgds = {std::move(copy)};
  w->mapping.target_tgds = {std::move(trans)};
  if (!ValidateMapping(w->mapping, w->schema).ok()) abort();
  w->lifted = Unwrap(LiftMapping(w->mapping, w->schema));

  std::mt19937_64 rng(cfg.seed);
  for (std::size_t i = 0; i < cfg.num_flights; ++i) {
    const Value from = w->universe.Constant(
        "ap" + std::to_string(rng() % cfg.num_airports));
    Value to = from;
    while (to == from) {
      to = w->universe.Constant(
          "ap" + std::to_string(rng() % cfg.num_airports));
    }
    const TimePoint start = rng() % cfg.horizon;
    const TimePoint len =
        1 + rng() % std::max<TimePoint>(cfg.max_interval_length, 1);
    MustAdd(&w->source, flight_plus, {from, to},
            Interval(start, start + len));
  }
  return w;
}

std::unique_ptr<Workload> MakeChainWorkload(const ChainConfig& cfg) {
  auto w = std::make_unique<Workload>();
  const RelationId flight_plus = Unwrap(w->schema.AddRelationPair(
      "Flight", {"from", "to"}, SchemaRole::kSource));
  const RelationId edge_plus = Unwrap(w->schema.AddRelationPair(
      "Edge", {"from", "to"}, SchemaRole::kTarget));
  const RelationId reach_plus = Unwrap(w->schema.AddRelationPair(
      "Reach", {"from", "to"}, SchemaRole::kTarget));
  const RelationId flight = Unwrap(w->schema.TwinOf(flight_plus));
  const RelationId edge = Unwrap(w->schema.TwinOf(edge_plus));
  const RelationId reach = Unwrap(w->schema.TwinOf(reach_plus));

  Tgd copy_edge;
  copy_edge.label = "edge";
  copy_edge.body.atoms = {MakeAtom(flight, {Term::Var(0), Term::Var(1)})};
  copy_edge.head.atoms = {MakeAtom(edge, {Term::Var(0), Term::Var(1)})};
  copy_edge.body.num_vars = copy_edge.head.num_vars = 2;
  copy_edge.body.var_names = {"x", "y"};
  if (!copy_edge.Finalize().ok()) abort();

  Tgd copy_reach;
  copy_reach.label = "direct";
  copy_reach.body.atoms = {MakeAtom(flight, {Term::Var(0), Term::Var(1)})};
  copy_reach.head.atoms = {MakeAtom(reach, {Term::Var(0), Term::Var(1)})};
  copy_reach.body.num_vars = copy_reach.head.num_vars = 2;
  copy_reach.body.var_names = {"x", "y"};
  if (!copy_reach.Finalize().ok()) abort();

  Tgd extend;
  extend.label = "extend";
  extend.body.atoms = {MakeAtom(reach, {Term::Var(0), Term::Var(1)}),
                       MakeAtom(edge, {Term::Var(1), Term::Var(2)})};
  extend.head.atoms = {MakeAtom(reach, {Term::Var(0), Term::Var(2)})};
  extend.body.num_vars = extend.head.num_vars = 3;
  extend.body.var_names = {"x", "y", "z"};
  if (!extend.Finalize().ok()) abort();

  w->mapping.st_tgds = {std::move(copy_edge), std::move(copy_reach)};
  w->mapping.target_tgds = {std::move(extend)};
  if (!ValidateMapping(w->mapping, w->schema).ok()) abort();
  w->lifted = Unwrap(LiftMapping(w->mapping, w->schema));

  const Interval span(0, std::max<TimePoint>(cfg.horizon, 1));
  for (std::size_t i = 0; i < cfg.hops; ++i) {
    const Value a = w->universe.Constant("ap" + std::to_string(i));
    const Value b = w->universe.Constant("ap" + std::to_string(i + 1));
    MustAdd(&w->source, flight_plus, {a, b}, span);
  }
  return w;
}

std::unique_ptr<Workload> MakeStratifiedWorkload(const StratifiedConfig& cfg) {
  auto w = std::make_unique<Workload>();
  const RelationId src_plus = Unwrap(
      w->schema.AddRelationPair("Src", {"from", "to"}, SchemaRole::kSource));
  const RelationId edge_plus = Unwrap(
      w->schema.AddRelationPair("Edge", {"from", "to"}, SchemaRole::kTarget));
  const RelationId reach_plus = Unwrap(
      w->schema.AddRelationPair("Reach", {"from", "to"}, SchemaRole::kTarget));
  const RelationId audit_plus = Unwrap(w->schema.AddRelationPair(
      "Audit", {"from", "to", "status"}, SchemaRole::kTarget));
  const RelationId src = Unwrap(w->schema.TwinOf(src_plus));
  const RelationId edge = Unwrap(w->schema.TwinOf(edge_plus));
  const RelationId reach = Unwrap(w->schema.TwinOf(reach_plus));
  const RelationId audit = Unwrap(w->schema.TwinOf(audit_plus));

  Tgd copy_edge;
  copy_edge.label = "s1";
  copy_edge.body.atoms = {MakeAtom(src, {Term::Var(0), Term::Var(1)})};
  copy_edge.head.atoms = {MakeAtom(edge, {Term::Var(0), Term::Var(1)})};
  copy_edge.body.num_vars = copy_edge.head.num_vars = 2;
  copy_edge.body.var_names = {"x", "y"};
  if (!copy_edge.Finalize().ok()) abort();

  Tgd copy_reach;
  copy_reach.label = "s2";
  copy_reach.body.atoms = {MakeAtom(src, {Term::Var(0), Term::Var(1)})};
  copy_reach.head.atoms = {MakeAtom(reach, {Term::Var(0), Term::Var(1)})};
  copy_reach.body.num_vars = copy_reach.head.num_vars = 2;
  copy_reach.body.var_names = {"x", "y"};
  if (!copy_reach.Finalize().ok()) abort();

  Tgd extend;
  extend.label = "t1";
  extend.body.atoms = {MakeAtom(reach, {Term::Var(0), Term::Var(1)}),
                       MakeAtom(edge, {Term::Var(1), Term::Var(2)})};
  extend.head.atoms = {MakeAtom(reach, {Term::Var(0), Term::Var(2)})};
  extend.body.num_vars = extend.head.num_vars = 3;
  extend.body.var_names = {"x", "y", "z"};
  if (!extend.Finalize().ok()) abort();

  const Value ok = w->universe.Constant("ok");
  Tgd tag;
  tag.label = "t2";
  tag.body.atoms = {MakeAtom(reach, {Term::Var(0), Term::Var(1)})};
  tag.head.atoms = {
      MakeAtom(audit, {Term::Var(0), Term::Var(1), Term::Val(ok)})};
  tag.body.num_vars = tag.head.num_vars = 2;
  tag.body.var_names = {"x", "y"};
  if (!tag.Finalize().ok()) abort();

  Egd status_agrees;
  status_agrees.label = "e1";
  status_agrees.body.atoms = {
      MakeAtom(audit, {Term::Var(0), Term::Var(1), Term::Var(2)}),
      MakeAtom(audit, {Term::Var(0), Term::Var(1), Term::Var(3)})};
  status_agrees.body.num_vars = 4;
  status_agrees.body.var_names = {"x", "y", "s", "s2"};
  status_agrees.x1 = 2;
  status_agrees.x2 = 3;
  if (!status_agrees.Finalize().ok()) abort();

  w->mapping.st_tgds = {std::move(copy_edge), std::move(copy_reach)};
  w->mapping.target_tgds = {std::move(extend), std::move(tag)};
  w->mapping.egds = {std::move(status_agrees)};
  if (!ValidateMapping(w->mapping, w->schema).ok()) abort();
  w->lifted = Unwrap(LiftMapping(w->mapping, w->schema));

  const Interval span(0, std::max<TimePoint>(cfg.horizon, 1));
  for (std::size_t i = 0; i < cfg.hops; ++i) {
    const Value a = w->universe.Constant("n" + std::to_string(i));
    const Value b = w->universe.Constant("n" + std::to_string(i + 1));
    MustAdd(&w->source, src_plus, {a, b}, span);
  }
  return w;
}

std::unique_ptr<Workload> MakeCascadeWorkload(const CascadeConfig& cfg) {
  auto w = std::make_unique<Workload>();
  const RelationId schain_plus = Unwrap(w->schema.AddRelationPair(
      "SChain", {"from", "to"}, SchemaRole::kSource));
  const RelationId sseed_plus = Unwrap(
      w->schema.AddRelationPair("SSeed", {"node"}, SchemaRole::kSource));
  const RelationId stok_plus = Unwrap(w->schema.AddRelationPair(
      "STok", {"node", "code"}, SchemaRole::kSource));
  const RelationId sb_plus = Unwrap(w->schema.AddRelationPair(
      "SB", {"key", "idx"}, SchemaRole::kSource));
  const RelationId next_plus = Unwrap(
      w->schema.AddRelationPair("Next", {"from", "to"}, SchemaRole::kTarget));
  const RelationId cur_plus = Unwrap(
      w->schema.AddRelationPair("Cur", {"node"}, SchemaRole::kTarget));
  const RelationId hop_plus = Unwrap(
      w->schema.AddRelationPair("Hop", {"node", "code"}, SchemaRole::kTarget));
  const RelationId token_plus = Unwrap(w->schema.AddRelationPair(
      "Token", {"node", "code"}, SchemaRole::kTarget));
  const RelationId b_plus = Unwrap(w->schema.AddRelationPair(
      "B", {"key", "idx", "tag"}, SchemaRole::kTarget));
  const RelationId schain = Unwrap(w->schema.TwinOf(schain_plus));
  const RelationId sseed = Unwrap(w->schema.TwinOf(sseed_plus));
  const RelationId stok = Unwrap(w->schema.TwinOf(stok_plus));
  const RelationId sb = Unwrap(w->schema.TwinOf(sb_plus));
  const RelationId next = Unwrap(w->schema.TwinOf(next_plus));
  const RelationId cur = Unwrap(w->schema.TwinOf(cur_plus));
  const RelationId hop = Unwrap(w->schema.TwinOf(hop_plus));
  const RelationId token = Unwrap(w->schema.TwinOf(token_plus));
  const RelationId b = Unwrap(w->schema.TwinOf(b_plus));

  Tgd copy_chain;
  copy_chain.label = "s1";
  copy_chain.body.atoms = {MakeAtom(schain, {Term::Var(0), Term::Var(1)})};
  copy_chain.head.atoms = {MakeAtom(next, {Term::Var(0), Term::Var(1)})};
  copy_chain.body.num_vars = copy_chain.head.num_vars = 2;
  copy_chain.body.var_names = {"x", "y"};
  if (!copy_chain.Finalize().ok()) abort();

  Tgd copy_seed;
  copy_seed.label = "s2";
  copy_seed.body.atoms = {MakeAtom(sseed, {Term::Var(0)})};
  copy_seed.head.atoms = {MakeAtom(cur, {Term::Var(0)})};
  copy_seed.body.num_vars = copy_seed.head.num_vars = 1;
  copy_seed.body.var_names = {"x"};
  if (!copy_seed.Finalize().ok()) abort();

  Tgd copy_token;
  copy_token.label = "s3";
  copy_token.body.atoms = {MakeAtom(stok, {Term::Var(0), Term::Var(1)})};
  copy_token.head.atoms = {MakeAtom(token, {Term::Var(0), Term::Var(1)})};
  copy_token.body.num_vars = copy_token.head.num_vars = 2;
  copy_token.body.var_names = {"x", "v"};
  if (!copy_token.Finalize().ok()) abort();

  const Value tag_w = w->universe.Constant("w");
  Tgd copy_ballast;
  copy_ballast.label = "s4";
  copy_ballast.body.atoms = {MakeAtom(sb, {Term::Var(0), Term::Var(1)})};
  copy_ballast.head.atoms = {
      MakeAtom(b, {Term::Var(0), Term::Var(1), Term::Val(tag_w)})};
  copy_ballast.body.num_vars = copy_ballast.head.num_vars = 2;
  copy_ballast.body.var_names = {"k", "j"};
  if (!copy_ballast.Finalize().ok()) abort();

  // t1: Cur(x) & Next(x, y) -> exists s: Hop(y, s); vars x=0, y=1, s=2.
  Tgd step;
  step.label = "t1";
  step.body.atoms = {MakeAtom(cur, {Term::Var(0)}),
                     MakeAtom(next, {Term::Var(0), Term::Var(1)})};
  step.head.atoms = {MakeAtom(hop, {Term::Var(1), Term::Var(2)})};
  step.body.num_vars = step.head.num_vars = 3;
  step.body.var_names = {"x", "y", "s"};
  if (!step.Finalize().ok()) abort();

  // t2: Hop(y, v) & Token(y, v) -> Cur(y) — gated on e1 merging the hop's
  // null into the token constant; fires one outer iteration after t1.
  Tgd advance;
  advance.label = "t2";
  advance.body.atoms = {MakeAtom(hop, {Term::Var(0), Term::Var(1)}),
                        MakeAtom(token, {Term::Var(0), Term::Var(1)})};
  advance.head.atoms = {MakeAtom(cur, {Term::Var(0)})};
  advance.body.num_vars = advance.head.num_vars = 2;
  advance.body.var_names = {"y", "v"};
  if (!advance.Finalize().ok()) abort();

  Egd resolve;
  resolve.label = "e1";
  resolve.body.atoms = {MakeAtom(hop, {Term::Var(0), Term::Var(1)}),
                        MakeAtom(token, {Term::Var(0), Term::Var(2)})};
  resolve.body.num_vars = 3;
  resolve.body.var_names = {"y", "s", "v"};
  resolve.x1 = 1;
  resolve.x2 = 2;
  if (!resolve.Finalize().ok()) abort();

  Egd ballast_agrees;
  ballast_agrees.label = "eB";
  ballast_agrees.body.atoms = {
      MakeAtom(b, {Term::Var(0), Term::Var(1), Term::Var(2)}),
      MakeAtom(b, {Term::Var(0), Term::Var(3), Term::Var(4)})};
  ballast_agrees.body.num_vars = 5;
  ballast_agrees.body.var_names = {"k", "j", "s", "j2", "s2"};
  ballast_agrees.x1 = 2;
  ballast_agrees.x2 = 4;
  if (!ballast_agrees.Finalize().ok()) abort();

  w->mapping.st_tgds = {std::move(copy_chain), std::move(copy_seed),
                        std::move(copy_token), std::move(copy_ballast)};
  w->mapping.target_tgds = {std::move(step), std::move(advance)};
  w->mapping.egds = {std::move(resolve), std::move(ballast_agrees)};
  if (!ValidateMapping(w->mapping, w->schema).ok()) abort();
  w->lifted = Unwrap(LiftMapping(w->mapping, w->schema));

  const Interval span(0, std::max<TimePoint>(cfg.horizon, 1));
  const Value tok = w->universe.Constant("tok");
  for (std::size_t i = 0; i < cfg.stages; ++i) {
    const Value a = w->universe.Constant("n" + std::to_string(i));
    const Value bnode = w->universe.Constant("n" + std::to_string(i + 1));
    MustAdd(&w->source, schain_plus, {a, bnode}, span);
    MustAdd(&w->source, stok_plus, {bnode, tok}, span);
  }
  MustAdd(&w->source, sseed_plus, {w->universe.Constant("n0")}, span);
  // Co-valid distinct facts per key: eB's key-only join pairs all of them,
  // so every full pass sweeps ballast_dup^2 homomorphisms per key, while
  // their shared interval makes each component's fragmentation a pure
  // copy. None of them is ever in a delta, so the incremental pass skips
  // the whole block — hom work grows quadratically in ballast_dup but
  // emission only linearly.
  const Interval covalid(0, 4);
  for (std::size_t k = 0; k < cfg.ballast_keys; ++k) {
    const Value key = w->universe.Constant("b" + std::to_string(k));
    for (std::size_t j = 0; j < cfg.ballast_dup; ++j) {
      MustAdd(&w->source, sb_plus,
              {key, w->universe.Constant("i" + std::to_string(j))}, covalid);
    }
  }
  return w;
}

}  // namespace tdx
