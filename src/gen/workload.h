// Synthetic temporal workload generators.
//
// The paper evaluates its constructions on worked examples only; these
// generators provide parameterized families of the same shape for the
// benchmark harness and the randomized property tests:
//
//  * Employment histories — the paper's running example (Figures 1-9)
//    scaled up: people moving between companies with partially known
//    salary histories. Drives the c-chase, alignment, and query benches.
//  * Worst-case normalization — Theorem 13's O(n^2) bound: n facts with
//    pairwise-overlapping (nested) intervals all matched by one binary
//    conjunction, so every fact fragments at ~2n endpoints.
//  * Random instances — uniform random facts/intervals with a tunable
//    overlap profile, for fuzz-style property tests.
//
// Every workload owns its Universe and Schema; it is heap-allocated and
// pinned (instances hold pointers into the schema member).

#ifndef TDX_GEN_WORKLOAD_H_
#define TDX_GEN_WORKLOAD_H_

#include <memory>

#include "src/relational/dependency.h"
#include "src/temporal/concrete_instance.h"

namespace tdx {

/// A self-contained data exchange setting plus source instance.
struct Workload {
  Universe universe;
  Schema schema;
  Mapping mapping;  ///< non-temporal M
  Mapping lifted;   ///< M+
  ConcreteInstance source;

  Workload() : source(&schema) {}
  Workload(const Workload&) = delete;
  Workload& operator=(const Workload&) = delete;
};

struct EmploymentConfig {
  std::size_t num_people = 100;
  std::size_t num_companies = 10;
  /// Average number of consecutive employments per person.
  std::size_t avg_jobs = 3;
  /// Last finite time point used by generated intervals.
  TimePoint horizon = 100;
  /// Fraction of employment spans covered by salary facts (the rest become
  /// interval-annotated nulls in the chase result).
  double salary_known_fraction = 0.7;
  /// When true, some people get overlapping salary facts with different
  /// values for the same employment — the chase then fails on the egd.
  bool inject_conflict = false;
  std::uint64_t seed = 42;
};

/// The paper's Example 1/6 schema and mapping, with generated histories:
///   source E(name, company); source S(name, salary);
///   target Emp(name, company, salary);
///   tgd  sigma1: E(n, c) -> exists s: Emp(n, c, s)
///   tgd  sigma2: E(n, c) & S(n, s) -> Emp(n, c, s)
///   egd  e1: Emp(n, c, s) & Emp(n, c, s2) -> s = s2
std::unique_ptr<Workload> MakeEmploymentWorkload(const EmploymentConfig& cfg);

/// Theorem 13 worst case: source R(a) with n facts R(a_i) @ [i, 2n - i)
/// (nested, pairwise overlapping), and the mapping
///   tgd: R(x) & R(y) -> T(x, y)
/// whose lhs groups every pair; normalization fragments every fact at every
/// endpoint, giving Theta(n^2) output facts.
std::unique_ptr<Workload> MakeWorstCaseNormalizationWorkload(std::size_t n);

struct RandomConfig {
  std::size_t num_facts = 200;
  std::size_t num_names = 20;
  std::size_t num_companies = 5;
  std::size_t num_salaries = 8;
  TimePoint horizon = 50;
  /// Maximum interval length; longer means more overlap.
  TimePoint max_interval_length = 10;
  /// Probability that a generated interval is unbounded.
  double unbounded_probability = 0.05;
  std::uint64_t seed = 1;
};

/// Uniformly random E/S facts under the employment mapping. Useful as a
/// fuzzer: random instances exercise normalization grouping, egd merges,
/// and (with clashing salaries) chase failure paths.
std::unique_ptr<Workload> MakeRandomWorkload(const RandomConfig& cfg);

struct RandomMappingConfig {
  std::size_t max_source_relations = 3;
  std::size_t max_target_relations = 3;
  std::size_t max_arity = 3;
  std::size_t max_st_tgds = 4;
  std::size_t max_egds = 2;
  std::size_t num_facts = 15;
  std::size_t num_constants = 4;
  TimePoint horizon = 12;
  TimePoint max_interval_length = 6;
  std::uint64_t seed = 1;
};

/// Full-spectrum fuzzer: a RANDOM schema and a random (validated) mapping —
/// random atom shapes, variable sharing, existentials, and egds — plus
/// random facts. Used by the property tests to check Corollary 20 and
/// Theorem 21 beyond the employment shape. The generated mapping always
/// passes ValidateMapping.
std::unique_ptr<Workload> MakeRandomMappingWorkload(
    const RandomMappingConfig& cfg);

struct FlightConfig {
  std::size_t num_airports = 20;
  std::size_t num_flights = 60;
  TimePoint horizon = 40;
  TimePoint max_interval_length = 15;
  std::uint64_t seed = 9;
};

/// Random flight schedules under the reachability mapping
///   tgd  Flight(x, y) -> Reach(x, y)
///   ttgd Reach(x, y) & Reach(y, z) -> Reach(x, z)
/// Drives the target-tgd chase benchmarks: per-snapshot transitive
/// closure computed on the concrete view.
std::unique_ptr<Workload> MakeFlightWorkload(const FlightConfig& cfg);

struct ChainConfig {
  std::size_t hops = 64;        ///< edges in the chain (hops+1 airports)
  TimePoint horizon = 10;       ///< every edge is valid over [0, horizon)
};

/// A single co-valid chain ap0 -> ap1 -> ... -> ap<hops> under the LINEAR
/// reachability mapping
///   tgd  Flight(x, y) -> Edge(x, y)
///   tgd  Flight(x, y) -> Reach(x, y)
///   ttgd Reach(x, y) & Edge(y, z) -> Reach(x, z)
/// Unlike MakeFlightWorkload's doubling self-join, the linear rule extends
/// paths one edge at a time, so the closure takes `hops` chase rounds with
/// an O(hops) delta each: the rounds-heavy cascade that separates naive
/// re-enumeration (O(hops^3) triggers) from semi-naive (O(hops^2)).
std::unique_ptr<Workload> MakeChainWorkload(const ChainConfig& cfg);

struct StratifiedConfig {
  std::size_t hops = 48;   ///< edges in the chain (hops+1 nodes)
  TimePoint horizon = 10;  ///< every fact is valid over [0, horizon)
};

/// The chain closure extended into a multi-stratum pipeline for the chase
/// planner's ablation:
///   tgd  s1: Src(x, y) -> Edge(x, y)
///   tgd  s2: Src(x, y) -> Reach(x, y)
///   ttgd t1: Reach(x, y) & Edge(y, z) -> Reach(x, z)
///   ttgd t2: Reach(x, y) -> Audit(x, y, "ok")
///   egd  e1: Audit(x, y, s) & Audit(x, y, s2) -> s = s2
/// The only head writing Audit's status column pins it to the constant
/// "ok", so the planner proves e1 effect-free: the scheduled engine skips
/// the Audit self-join fixpoint (and the follow-up normalization pass)
/// that the flat engine re-runs to a no-op over the O(hops^2) closure.
std::unique_ptr<Workload> MakeStratifiedWorkload(const StratifiedConfig& cfg);

struct CascadeConfig {
  std::size_t stages = 12;        ///< egd-gated hops (outer c-chase loops)
  std::size_t ballast_keys = 150; ///< distinct B keys
  std::size_t ballast_dup = 4;    ///< co-valid distinct B facts per key
  TimePoint horizon = 8;          ///< chain/token facts valid over [0, horizon)
};

/// Multi-round normalization cascade for the incremental-normalization
/// ablation (core/normalize_incremental.h):
///   tgd  s1: SChain(x, y) -> Next(x, y)
///   tgd  s2: SSeed(x) -> Cur(x)
///   tgd  s3: STok(x, v) -> Token(x, v)
///   tgd  s4: SB(k, j) -> B(k, j, "w")
///   ttgd t1: Cur(x) & Next(x, y) -> exists s: Hop(y, s)
///   ttgd t2: Hop(y, v) & Token(y, v) -> Cur(y)
///   egd  e1: Hop(y, s) & Token(y, v) -> s = v
///   egd  eB: B(k, j, s) & B(k, j2, s2) -> s = s2
/// Each hop needs an egd merge to proceed: t1 mints Hop(n_i, N) with a
/// fresh null, t2 cannot fire until e1 merges N := "tok", so the chase runs
/// `stages` outer iterations, each with a post-rewrite full normalization
/// pass and a post-rounds pass over a ~2-fact delta. The B relation is
/// ballast: eB is provably effect-free (s4 pins the tag column to "w"), so
/// it never fires — but its lhs stays in the normalizer's conjunction set,
/// and eB's key-only join makes every full pass sweep ballast_dup^2
/// homomorphisms over each key's co-valid B facts. Incremental passes skip
/// them entirely (B is never in the delta), which is exactly the reuse the
/// ablation measures.
std::unique_ptr<Workload> MakeCascadeWorkload(const CascadeConfig& cfg);

}  // namespace tdx

#endif  // TDX_GEN_WORKLOAD_H_
