#include "src/analysis/analyzer.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "src/analysis/planner.h"
#include "src/analysis/position_graph.h"
#include "src/analysis/termination.h"
#include "src/parser/parser.h"

namespace tdx {

namespace {

/// Frozen-body nulls reuse the variable id; fresh nulls introduced when
/// firing the implying tgd start here, far above any real variable count.
constexpr NullId kFreshNullBase = 1u << 20;
/// Trigger cap for the TDX015 implication test (fuzz safety).
constexpr std::size_t kMaxImplicationTriggers = 64;

std::string TgdName(const Tgd& tgd, std::size_t index) {
  return tgd.label.empty() ? ("#" + std::to_string(index + 1))
                           : ("'" + tgd.label + "'");
}

std::string EgdName(const Egd& egd, std::size_t index) {
  return egd.label.empty() ? ("#" + std::to_string(index + 1))
                           : ("'" + egd.label + "'");
}

/// Bounds check for one conjunction: relation ids in range, atom arity
/// matching the schema, variable ids under num_vars. Everything downstream
/// (position graphs, frozen instances) assumes this.
bool ConjunctionIsStructural(const Conjunction& conj, const Schema& schema) {
  for (const Atom& atom : conj.atoms) {
    if (atom.rel >= schema.relation_count()) return false;
    if (atom.terms.size() != schema.relation(atom.rel).arity()) return false;
    for (const Term& t : atom.terms) {
      if (t.is_var() && t.var() >= conj.num_vars) return false;
    }
  }
  return true;
}

bool InputIsStructural(const AnalysisInput& in) {
  for (const Tgd& tgd : in.mapping->st_tgds) {
    if (!ConjunctionIsStructural(tgd.body, *in.schema) ||
        !ConjunctionIsStructural(tgd.head, *in.schema)) {
      return false;
    }
  }
  for (const Tgd& tgd : in.mapping->target_tgds) {
    if (!ConjunctionIsStructural(tgd.body, *in.schema) ||
        !ConjunctionIsStructural(tgd.head, *in.schema)) {
      return false;
    }
  }
  for (const Egd& egd : in.mapping->egds) {
    if (!ConjunctionIsStructural(egd.body, *in.schema)) return false;
    if (egd.x1 >= egd.body.num_vars || egd.x2 >= egd.body.num_vars) {
      return false;
    }
  }
  if (in.queries != nullptr) {
    for (const UnionQuery& uq : *in.queries) {
      for (const ConjunctiveQuery& q : uq.disjuncts) {
        if (!ConjunctionIsStructural(q.body, *in.schema)) return false;
        for (VarId v : q.head) {
          if (v >= q.body.num_vars) return false;
        }
      }
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// TDX001 / TDX002 / TDX003: the termination ladder.

void AnalyzeTermination(const AnalysisInput& in, AnalysisReport* report) {
  const Mapping& m = *in.mapping;
  report->certificate = m.certificate.has_value()
                            ? *m.certificate
                            : CertifyTermination(m.target_tgds, *in.schema);
  const TerminationCriterion criterion = report->certificate.criterion;
  if (criterion == TerminationCriterion::kNoTargetTgds ||
      criterion == TerminationCriterion::kRichlyAcyclic) {
    return;
  }
  if (criterion == TerminationCriterion::kWeaklyAcyclic) {
    const PositionGraph rich = PositionGraph::Build(
        m.target_tgds, *in.schema, PositionGraph::Kind::kRich);
    if (const auto cycle = rich.FindSpecialCycle()) {
      const Tgd& tgd = m.target_tgds[cycle->tgd_index];
      report->Add("TDX003", Severity::kNote,
                  "target tgds are weakly but not richly acyclic: the "
                  "extended-graph cycle " +
                      rich.FormatCycle(*in.schema, *cycle) + " through tgd " +
                      TgdName(tgd, cycle->tgd_index) +
                      " means the oblivious chase may not terminate",
                  tgd.span);
    }
    return;
  }
  // Stratified or unknown: the weak graph has a special cycle; name it.
  const PositionGraph weak = PositionGraph::Build(m.target_tgds, *in.schema,
                                                  PositionGraph::Kind::kWeak);
  const auto cycle = weak.FindSpecialCycle();
  SourceSpan span;
  std::string detail = report->certificate.witness;
  std::string culprit;
  if (cycle.has_value()) {
    const Tgd& tgd = m.target_tgds[cycle->tgd_index];
    span = tgd.span;
    detail = weak.FormatCycle(*in.schema, *cycle);
    culprit = " of tgd " + TgdName(tgd, cycle->tgd_index);
  }
  if (criterion == TerminationCriterion::kStratified) {
    report->Add("TDX002", Severity::kWarning,
                "target tgds are not weakly acyclic (cycle " + detail +
                    culprit +
                    "); termination is certified by stratification only",
                span,
                "break the cycle so each rung of the ladder applies, or "
                "keep the precedence strata acyclic");
  } else {
    report->Add("TDX001", Severity::kError,
                "target tgds admit a non-terminating chase: the cycle " +
                    detail + culprit +
                    " passes through a special (existential) edge",
                span,
                "remove an existential variable from the cycle or split "
                "the dependency");
  }
}

// ---------------------------------------------------------------------------
// TDX010: temporal satisfiability of tgd bodies against the source.

/// Sorts and merges overlapping/adjacent intervals into a disjoint cover
/// of the same time points.
std::vector<Interval> MergeCover(std::vector<Interval> ivs) {
  std::sort(ivs.begin(), ivs.end());
  std::vector<Interval> out;
  for (const Interval& iv : ivs) {
    if (!out.empty() && out.back().Mergeable(iv)) {
      out.back() = out.back().MergeWith(iv);
    } else {
      out.push_back(iv);
    }
  }
  return out;
}

/// Pointwise intersection of two disjoint sorted covers.
std::vector<Interval> IntersectCovers(const std::vector<Interval>& a,
                                      const std::vector<Interval>& b) {
  std::vector<Interval> out;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (const auto common = a[i].Intersect(b[j])) out.push_back(*common);
    if (a[i].end() < b[j].end()) {
      ++i;
    } else {
      ++j;
    }
  }
  return out;
}

void AnalyzeSatisfiability(const AnalysisInput& in, AnalysisReport* report) {
  if (in.source == nullptr || in.source->empty()) return;
  const Schema& schema = *in.schema;
  // Time coverage of each snapshot source relation, from its twin's facts.
  std::unordered_map<RelationId, std::vector<Interval>> coverage;
  const auto coverage_of =
      [&](RelationId rel) -> const std::vector<Interval>* {
    auto it = coverage.find(rel);
    if (it != coverage.end()) return &it->second;
    const Result<RelationId> twin = schema.TwinOf(rel);
    if (!twin.ok()) return nullptr;
    std::vector<Interval> ivs;
    for (const FactView f : in.source->facts().facts(*twin)) {
      if (f.has_interval()) ivs.push_back(f.interval());
    }
    return &coverage.emplace(rel, MergeCover(std::move(ivs))).first->second;
  };
  for (std::size_t ti = 0; ti < in.mapping->st_tgds.size(); ++ti) {
    const Tgd& tgd = in.mapping->st_tgds[ti];
    std::vector<RelationId> rels;
    for (const Atom& atom : tgd.body.atoms) {
      if (std::find(rels.begin(), rels.end(), atom.rel) == rels.end()) {
        rels.push_back(atom.rel);
      }
    }
    if (rels.size() < 2) continue;
    std::vector<Interval> common;
    bool usable = true;
    for (std::size_t k = 0; k < rels.size() && usable; ++k) {
      const std::vector<Interval>* cov = coverage_of(rels[k]);
      // Unknown twin or a relation with no facts at all: stay silent (no
      // data is not an interval conflict).
      if (cov == nullptr || cov->empty()) {
        usable = false;
        break;
      }
      common = (k == 0) ? *cov : IntersectCovers(common, *cov);
      if (common.empty()) {
        std::string names;
        for (std::size_t r = 0; r < rels.size(); ++r) {
          if (r > 0) names += ", ";
          names += "'" + schema.relation(rels[r]).name + "'";
        }
        report->Add("TDX010", Severity::kWarning,
                    "body of tgd " + TgdName(tgd, ti) +
                        " can never fire: its relations (" + names +
                        ") never hold at a common time point",
                    tgd.span,
                    "check the fact intervals; a conjunction only matches "
                    "within the intersection of its relations' time "
                    "coverage (Def. 10)");
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// TDX011: egds that can only ever equate distinct constants.

/// Over-approximation of the values a target position can hold, derived
/// from the tgd heads (the only writers of target relations).
struct PosSet {
  bool top = false;       ///< any value (a universal variable is written)
  bool may_null = false;  ///< an existential variable is written
  std::set<Value> constants;
};

PosSet IntersectPosSets(const PosSet& a, const PosSet& b) {
  if (a.top) return b;
  if (b.top) return a;
  PosSet out;
  out.may_null = a.may_null && b.may_null;
  std::set_intersection(a.constants.begin(), a.constants.end(),
                        b.constants.begin(), b.constants.end(),
                        std::inserter(out.constants, out.constants.begin()));
  return out;
}

void AnalyzeEgdConstants(const AnalysisInput& in, AnalysisReport* report) {
  const Mapping& m = *in.mapping;
  if (m.egds.empty()) return;
  std::map<std::pair<RelationId, std::size_t>, PosSet> written;
  const auto absorb_head = [&written](const Tgd& tgd) {
    const std::unordered_set<VarId> existential(tgd.existential.begin(),
                                                tgd.existential.end());
    for (const Atom& atom : tgd.head.atoms) {
      for (std::size_t i = 0; i < atom.terms.size(); ++i) {
        PosSet& pos = written[{atom.rel, i}];
        const Term& t = atom.terms[i];
        if (!t.is_var()) {
          pos.constants.insert(t.value());
        } else if (existential.count(t.var()) != 0) {
          pos.may_null = true;
        } else {
          pos.top = true;
        }
      }
    }
  };
  for (const Tgd& tgd : m.st_tgds) absorb_head(tgd);
  for (const Tgd& tgd : m.target_tgds) absorb_head(tgd);

  for (std::size_t ei = 0; ei < m.egds.size(); ++ei) {
    const Egd& egd = m.egds[ei];
    const auto candidate = [&](VarId x) {
      PosSet cand;
      cand.top = true;
      for (const Atom& atom : egd.body.atoms) {
        for (std::size_t i = 0; i < atom.terms.size(); ++i) {
          const Term& t = atom.terms[i];
          if (!t.is_var() || t.var() != x) continue;
          auto it = written.find({atom.rel, i});
          cand = IntersectPosSets(cand, it == written.end() ? PosSet{}
                                                            : it->second);
        }
      }
      return cand;
    };
    const PosSet left = candidate(egd.x1);
    const PosSet right = candidate(egd.x2);
    if (left.top || right.top || left.may_null || right.may_null) continue;
    if (left.constants.empty() || right.constants.empty()) continue;
    const PosSet both = IntersectPosSets(left, right);
    if (!both.constants.empty()) continue;
    report->Add("TDX011", Severity::kWarning,
                "egd " + EgdName(egd, ei) +
                    " can only ever equate distinct constants; every firing "
                    "would make the chase fail",
                egd.span,
                "the tgd heads feeding its two sides write disjoint "
                "constant sets");
  }
}

// ---------------------------------------------------------------------------
// TDX012: variables used exactly once.

bool LintableVarName(const Conjunction& conj, VarId v, std::string* name) {
  if (v >= conj.var_names.size()) return false;
  const std::string& n = conj.var_names[v];
  if (n.empty() || n[0] == '_') return false;
  *name = n;
  return true;
}

void CountVars(const Conjunction& conj, std::vector<std::size_t>* counts) {
  for (const Atom& atom : conj.atoms) {
    for (const Term& t : atom.terms) {
      if (t.is_var() && t.var() < counts->size()) ++(*counts)[t.var()];
    }
  }
}

void AnalyzeSingleUseVars(const AnalysisInput& in, AnalysisReport* report) {
  const auto report_single =
      [report](const Conjunction& names, const std::vector<std::size_t>& counts,
               const std::unordered_set<VarId>& skip, const std::string& what,
               const SourceSpan& span) {
        for (VarId v = 0; v < counts.size(); ++v) {
          if (counts[v] != 1 || skip.count(v) != 0) continue;
          std::string name;
          if (!LintableVarName(names, v, &name)) continue;
          report->Add("TDX012", Severity::kNote,
                      "variable '" + name + "' occurs only once in " + what,
                      span, "rename it to '_' if the projection is intended");
        }
      };
  const auto analyze_tgds = [&](const std::vector<Tgd>& tgds,
                                const std::string& kind) {
    for (std::size_t ti = 0; ti < tgds.size(); ++ti) {
      const Tgd& tgd = tgds[ti];
      std::vector<std::size_t> counts(tgd.body.num_vars, 0);
      CountVars(tgd.body, &counts);
      CountVars(tgd.head, &counts);
      const std::unordered_set<VarId> skip(tgd.existential.begin(),
                                           tgd.existential.end());
      report_single(tgd.body, counts, skip, kind + " " + TgdName(tgd, ti),
                    tgd.span);
    }
  };
  analyze_tgds(in.mapping->st_tgds, "tgd");
  analyze_tgds(in.mapping->target_tgds, "target tgd");
  for (std::size_t ei = 0; ei < in.mapping->egds.size(); ++ei) {
    const Egd& egd = in.mapping->egds[ei];
    std::vector<std::size_t> counts(egd.body.num_vars, 0);
    CountVars(egd.body, &counts);
    // The equality is a use of both sides.
    if (egd.x1 < counts.size()) ++counts[egd.x1];
    if (egd.x2 < counts.size()) ++counts[egd.x2];
    report_single(egd.body, counts, {}, "egd " + EgdName(egd, ei), egd.span);
  }
  if (in.queries == nullptr) return;
  for (const UnionQuery& uq : *in.queries) {
    for (const ConjunctiveQuery& q : uq.disjuncts) {
      std::vector<std::size_t> counts(q.body.num_vars, 0);
      CountVars(q.body, &counts);
      for (VarId v : q.head) {
        if (v < counts.size()) ++counts[v];
      }
      report_single(q.body, counts, {}, "query '" + q.name + "'", q.span);
    }
  }
}

// ---------------------------------------------------------------------------
// TDX013: relations never mentioned by any dependency or query.

void AnalyzeDeadRelations(const AnalysisInput& in, AnalysisReport* report) {
  const Schema& schema = *in.schema;
  std::vector<bool> used(schema.relation_count(), false);
  const auto mark = [&used](const Conjunction& conj) {
    for (const Atom& atom : conj.atoms) {
      if (atom.rel < used.size()) used[atom.rel] = true;
    }
  };
  for (const Tgd& tgd : in.mapping->st_tgds) {
    mark(tgd.body);
    mark(tgd.head);
  }
  for (const Tgd& tgd : in.mapping->target_tgds) {
    mark(tgd.body);
    mark(tgd.head);
  }
  for (const Egd& egd : in.mapping->egds) mark(egd.body);
  if (in.queries != nullptr) {
    for (const UnionQuery& uq : *in.queries) {
      for (const ConjunctiveQuery& q : uq.disjuncts) mark(q.body);
    }
  }
  for (RelationId r = 0; r < schema.relation_count(); ++r) {
    const RelationSchema& rel = schema.relation(r);
    if (rel.temporal || used[r]) continue;  // report on the snapshot twin
    // A snapshot relation is alive if its concrete twin is used directly
    // (lifted dependencies and facts live there).
    if (rel.twin.has_value() && used[*rel.twin]) continue;
    SourceSpan span;
    if (in.relation_spans != nullptr && r < in.relation_spans->size()) {
      span = (*in.relation_spans)[r];
    }
    report->Add("TDX013", Severity::kWarning,
                "relation '" + rel.name +
                    "' is never used by any dependency or query",
                span, "delete the declaration or add a dependency over it");
  }
}

// ---------------------------------------------------------------------------
// TDX014 / TDX015: duplicate and implied dependencies.

/// Stable spelling of a non-variable term for canonical comparison.
std::string ValueKey(const Value& v) {
  switch (v.kind()) {
    case ValueKind::kConstant:
      return "c" + std::to_string(v.symbol());
    case ValueKind::kNull:
      return "n" + std::to_string(v.null_id());
    case ValueKind::kAnnotatedNull:
      return "a" + std::to_string(v.null_id()) + "@" +
             std::to_string(v.interval().start()) + ":" +
             std::to_string(v.interval().end());
    case ValueKind::kInterval:
      return "i" + std::to_string(v.interval().start()) + ":" +
             std::to_string(v.interval().end());
  }
  return "?";
}

/// Canonical form of a conjunction under first-occurrence variable
/// renaming; `ren` accumulates the renaming across calls so body and head
/// share one namespace.
std::string CanonConjunction(const Conjunction& conj,
                             std::unordered_map<VarId, std::size_t>* ren) {
  std::string out;
  for (const Atom& atom : conj.atoms) {
    out += "R" + std::to_string(atom.rel) + "(";
    for (const Term& t : atom.terms) {
      if (t.is_var()) {
        const auto [it, unused] = ren->emplace(t.var(), ren->size());
        out += "v" + std::to_string(it->second);
      } else {
        out += ValueKey(t.value());
      }
      out += ",";
    }
    out += ")";
  }
  return out;
}

std::string CanonTgd(const Tgd& tgd) {
  std::unordered_map<VarId, std::size_t> ren;
  std::string out = CanonConjunction(tgd.body, &ren);
  out += "->";
  out += CanonConjunction(tgd.head, &ren);
  return out;
}

std::string CanonEgd(const Egd& egd) {
  std::unordered_map<VarId, std::size_t> ren;
  std::string out = CanonConjunction(egd.body, &ren);
  const std::size_t a = ren.count(egd.x1) ? ren[egd.x1] : ren.size();
  const std::size_t b = ren.count(egd.x2) ? ren[egd.x2] : ren.size() + 1;
  out += "->v" + std::to_string(std::min(a, b)) + "=v" +
         std::to_string(std::max(a, b));
  return out;
}

/// One-step chase implication: does firing `a` on the frozen body of `b`
/// always produce everything `b`'s head demands? Sound — a `true` verdict
/// means `b` is redundant whenever `a` is present.
bool TgdImplies(const Tgd& a, const Tgd& b, const Schema& schema) {
  Instance frozen(&schema);
  for (const Atom& atom : b.body.atoms) {
    std::vector<Value> args;
    args.reserve(atom.terms.size());
    for (const Term& t : atom.terms) {
      args.push_back(t.is_var() ? Value::Null(t.var()) : t.value());
    }
    frozen.Insert(atom.rel, std::move(args));
  }
  std::vector<Binding> triggers;
  {
    HomomorphismFinder finder(frozen);
    finder.ForEach(a.body, Binding(a.body.num_vars),
                   [&triggers](const Binding& binding, const AtomImage&) {
                     triggers.push_back(binding);
                     return triggers.size() < kMaxImplicationTriggers;
                   });
  }
  Instance result = frozen;
  NullId fresh = kFreshNullBase;
  for (const Binding& binding : triggers) {
    std::unordered_map<VarId, Value> invented;
    for (VarId v : a.existential) {
      invented.emplace(v, Value::Null(fresh++));
    }
    for (const Atom& atom : a.head.atoms) {
      std::vector<Value> args;
      args.reserve(atom.terms.size());
      for (const Term& t : atom.terms) {
        if (!t.is_var()) {
          args.push_back(t.value());
        } else if (binding.IsBound(t.var())) {
          args.push_back(binding.Get(t.var()));
        } else {
          args.push_back(invented.at(t.var()));
        }
      }
      result.Insert(atom.rel, std::move(args));
    }
  }
  // b's head must embed, with universal variables pinned to their frozen
  // nulls and existentials free.
  const std::unordered_set<VarId> existential(b.existential.begin(),
                                              b.existential.end());
  Binding init(b.head.num_vars);
  for (const Atom& atom : b.head.atoms) {
    for (const Term& t : atom.terms) {
      if (t.is_var() && existential.count(t.var()) == 0) {
        init.Bind(t.var(), Value::Null(t.var()));
      }
    }
  }
  HomomorphismFinder finder(result);
  return finder.Exists(b.head, init);
}

void AnalyzeRedundancy(const AnalysisInput& in, AnalysisReport* report) {
  const auto analyze_group = [&](const std::vector<Tgd>& tgds,
                                 const std::string& kind) {
    std::vector<std::string> canon(tgds.size());
    for (std::size_t i = 0; i < tgds.size(); ++i) canon[i] = CanonTgd(tgds[i]);
    std::unordered_map<std::string, std::size_t> first;
    std::vector<bool> duplicate(tgds.size(), false);
    for (std::size_t i = 0; i < tgds.size(); ++i) {
      const auto [it, inserted] = first.emplace(canon[i], i);
      if (inserted) continue;
      duplicate[i] = true;
      report->Add("TDX014", Severity::kWarning,
                  kind + " " + TgdName(tgds[i], i) + " duplicates " + kind +
                      " " + TgdName(tgds[it->second], it->second) +
                      " (identical up to variable renaming)",
                  tgds[i].span, "delete one of the two");
    }
    for (std::size_t i = 0; i < tgds.size(); ++i) {
      if (duplicate[i]) continue;
      for (std::size_t j = 0; j < tgds.size(); ++j) {
        if (i == j || duplicate[j] || canon[i] == canon[j]) continue;
        if (!TgdImplies(tgds[j], tgds[i], *in.schema)) continue;
        report->Add("TDX015", Severity::kNote,
                    kind + " " + TgdName(tgds[i], i) + " is implied by " +
                        kind + " " + TgdName(tgds[j], j) +
                        " and can be dropped",
                    tgds[i].span);
        break;
      }
    }
  };
  analyze_group(in.mapping->st_tgds, "tgd");
  analyze_group(in.mapping->target_tgds, "target tgd");
  // Egds: duplicates only (implication between egds is rarely actionable).
  std::unordered_map<std::string, std::size_t> first;
  for (std::size_t i = 0; i < in.mapping->egds.size(); ++i) {
    const Egd& egd = in.mapping->egds[i];
    const auto [it, inserted] = first.emplace(CanonEgd(egd), i);
    if (inserted) continue;
    report->Add("TDX014", Severity::kWarning,
                "egd " + EgdName(egd, i) + " duplicates egd " +
                    EgdName(in.mapping->egds[it->second], it->second) +
                    " (identical up to variable renaming)",
                egd.span, "delete one of the two");
  }
}

// ---------------------------------------------------------------------------
// TDX016: normalization blowup estimate.

void AnalyzeBlowup(const AnalysisInput& in, const AnalyzerOptions& options,
                   AnalysisReport* report) {
  if (in.source == nullptr) return;
  const std::size_t total_facts = in.source->size();
  if (total_facts < options.blowup_min_facts) return;
  const Schema& schema = *in.schema;
  // Relations co-occurring in some tgd body fragment each other during
  // normalization against Phi+ (Section 4.2/4.3).
  std::unordered_map<RelationId, std::unordered_set<RelationId>> cobody;
  for (const Tgd& tgd : in.mapping->st_tgds) {
    for (const Atom& a : tgd.body.atoms) {
      for (const Atom& b : tgd.body.atoms) {
        if (a.rel != b.rel) cobody[a.rel].insert(b.rel);
      }
    }
  }
  double estimate = 0;
  std::size_t counted_facts = 0;
  for (const auto& [rel, partners] : cobody) {
    const Result<RelationId> twin = schema.TwinOf(rel);
    if (!twin.ok()) continue;
    std::vector<Interval> partner_ivs;
    for (RelationId p : partners) {
      const Result<RelationId> ptwin = schema.TwinOf(p);
      if (!ptwin.ok()) continue;
      for (const FactView f : in.source->facts().facts(*ptwin)) {
        if (f.has_interval()) partner_ivs.push_back(f.interval());
      }
    }
    const std::vector<TimePoint> cuts = DistinctFiniteEndpoints(partner_ivs);
    for (const FactView f : in.source->facts().facts(*twin)) {
      if (!f.has_interval()) continue;
      const Interval iv = f.interval();
      const auto lo = std::upper_bound(cuts.begin(), cuts.end(), iv.start());
      const auto hi = std::lower_bound(cuts.begin(), cuts.end(), iv.end());
      estimate += 1.0 + static_cast<double>(hi - lo);
      ++counted_facts;
    }
  }
  if (counted_facts == 0) return;
  const double factor = estimate / static_cast<double>(counted_facts);
  if (factor <= options.blowup_warn_factor) return;
  report->Add(
      "TDX016", Severity::kWarning,
      "normalizing the source against Phi+ is estimated to fragment " +
          std::to_string(counted_facts) + " facts into ~" +
          std::to_string(static_cast<std::size_t>(estimate)) +
          " pieces (x" + std::to_string(factor).substr(0, 4) +
          "); Theorem 13 only bounds this by O(n^2)",
      {},
      "coalesce adjacent facts or split multi-relation tgd bodies to "
      "reduce cross-relation interval cuts");
}

// ---------------------------------------------------------------------------
// TDX018-TDX024: the chase planner's rule-dependency diagnostics. One
// PlanChaseDetailed call powers all seven lints — the same graph the
// engines consume as their schedule.

void AnalyzePlanning(const AnalysisInput& in, AnalysisReport* report) {
  const Mapping& m = *in.mapping;
  if (m.st_tgds.empty() && m.target_tgds.empty() && m.egds.empty()) return;
  const PlanDetails details = PlanChaseDetailed(m, *in.schema);
  const ChaseSchedule& schedule = details.schedule;

  const auto rule_span = [&](const ScheduleRule& rule) -> SourceSpan {
    switch (rule.kind) {
      case ScheduleRuleKind::kStTgd:
        return m.st_tgds[rule.index].span;
      case ScheduleRuleKind::kTargetTgd:
        return m.target_tgds[rule.index].span;
      case ScheduleRuleKind::kEgd:
        return m.egds[rule.index].span;
    }
    return {};
  };
  const auto rule_name = [&](const ScheduleRule& rule) -> std::string {
    switch (rule.kind) {
      case ScheduleRuleKind::kStTgd:
        return "tgd " + TgdName(m.st_tgds[rule.index], rule.index);
      case ScheduleRuleKind::kTargetTgd:
        return "target tgd " + TgdName(m.target_tgds[rule.index], rule.index);
      case ScheduleRuleKind::kEgd:
        return "egd " + EgdName(m.egds[rule.index], rule.index);
    }
    return "rule";
  };

  // TDX018/TDX019: rules the engines provably skip. st-tgds are always
  // live, so only target tgds and egds can show up here.
  for (const ScheduleRule& rule : schedule.rules) {
    if (!rule.live) {
      report->Add("TDX018", Severity::kWarning,
                  rule_name(rule) + " can never fire: " + rule.skip_reason,
                  rule_span(rule),
                  "delete it, or fix the heads that should feed it");
    } else if (rule.effect_free) {
      report->Add("TDX019", Severity::kWarning,
                  rule_name(rule) + " is effect-free: " + rule.skip_reason,
                  rule_span(rule), "delete it; it can never merge or fail");
    }
  }

  // TDX020: egd-tgd interference — the merges force the engines to re-seed
  // their semi-naive frontiers after every merging fixpoint.
  for (const auto& [egd_index, tgd_index] : details.interference) {
    report->Add(
        "TDX020", Severity::kNote,
        "egd " + EgdName(m.egds[egd_index], egd_index) +
            " may rewrite nulls in facts that target tgd " +
            TgdName(m.target_tgds[tgd_index], tgd_index) +
            " reads; every merging egd fixpoint re-seeds the chase frontier",
        m.target_tgds[tgd_index].span);
  }

  // TDX021: multi-rule cycles — these rules share one stratum, so no
  // declaration order can topologically sort them.
  for (const std::vector<std::size_t>& cycle : details.cycles) {
    std::string names;
    SourceSpan span;
    for (std::size_t id : cycle) {
      if (!names.empty()) names += ", ";
      names += rule_name(schedule.rules[id]);
      if (!span.valid()) span = rule_span(schedule.rules[id]);
    }
    report->Add("TDX021", Severity::kNote,
                names +
                    " form a dependency cycle and share one chase stratum; "
                    "their joint fixpoint needs repeated rounds",
                span);
  }

  // TDX022: declaration order fights the stratum order.
  for (std::size_t index : details.declaration_inversions) {
    report->Add(
        "TDX022", Severity::kNote,
        "target tgd " + TgdName(m.target_tgds[index], index) +
            " is declared before a rule of an earlier stratum that feeds "
            "it; declaration-order rounds revisit it once per stratum",
        m.target_tgds[index].span,
        "declare rules in stratum order (run 'tdx_cli plan' to see it)");
  }

  // TDX023: written but never read — dead weight in the target. A query
  // read keeps the relation alive; the planner only sees rule bodies.
  std::vector<bool> query_read(in.schema->relation_count(), false);
  if (in.queries != nullptr) {
    for (const UnionQuery& uq : *in.queries) {
      for (const ConjunctiveQuery& q : uq.disjuncts) {
        for (const Atom& atom : q.body.atoms) {
          if (atom.rel < query_read.size()) query_read[atom.rel] = true;
          const Result<RelationId> twin = in.schema->TwinOf(atom.rel);
          if (twin.ok() && *twin < query_read.size()) {
            query_read[*twin] = true;
          }
        }
      }
    }
  }
  const bool has_queries = in.queries != nullptr && !in.queries->empty();
  for (const RelationId rel : details.written_never_read) {
    // Without queries, every terminal target relation is "write-only";
    // the lint is only meaningful when the program says what it reads.
    if (!has_queries) break;
    if (rel < query_read.size() && query_read[rel]) continue;
    // The snapshot twin of a queried concrete relation is read through the
    // lifted program; don't flag it.
    const RelationSchema& relation = in.schema->relation(rel);
    if (relation.twin.has_value() && *relation.twin < query_read.size() &&
        query_read[*relation.twin]) {
      continue;
    }
    SourceSpan span;
    if (in.relation_spans != nullptr && rel < in.relation_spans->size()) {
      span = (*in.relation_spans)[rel];
    }
    report->Add("TDX023", Severity::kNote,
                "relation '" + relation.name +
                    "' is written by the chase but never read by any rule "
                    "body or query",
                span, "query it, feed it into a rule, or drop its writers");
  }

  // TDX024: a target tgd whose entire downstream contribution (its own
  // heads plus everything reachable through feeds edges) is never queried.
  // Meaningful only when the program declares queries at all.
  if (has_queries) {
    const std::size_t st = m.st_tgds.size();
    for (std::size_t index = 0; index < m.target_tgds.size(); ++index) {
      const ScheduleRule& rule = schedule.rules[st + index];
      if (!rule.live) continue;  // already TDX018
      bool queried = false;
      for (const RelationId rel : details.downstream_relations[st + index]) {
        if (rel < query_read.size() && query_read[rel]) {
          queried = true;
          break;
        }
      }
      if (queried) continue;
      report->Add("TDX024", Severity::kNote,
                  "target tgd " + TgdName(m.target_tgds[index], index) +
                      " contributes to no query: nothing it derives, "
                      "directly or downstream, is ever queried",
                  m.target_tgds[index].span,
                  "delete it or add a query over its output");
    }
  }
}

}  // namespace

AnalysisReport Analyze(const AnalysisInput& input,
                       const AnalyzerOptions& options) {
  AnalysisReport report;
  assert(input.schema != nullptr && input.mapping != nullptr);
  if (!InputIsStructural(input)) {
    report.Add("TDX000", Severity::kError,
               "mapping is structurally invalid (atom arity or ids out of "
               "range); run it through the parser first");
    return report;
  }
  AnalyzeTermination(input, &report);
  if (input.mapping->st_tgds.empty()) {
    report.Add("TDX017", Severity::kWarning,
               "mapping has no s-t tgds; the target instance is always empty",
               {}, "add at least one 'tgd' statement");
  }
  AnalyzeRedundancy(input, &report);
  AnalyzeEgdConstants(input, &report);
  AnalyzeSingleUseVars(input, &report);
  AnalyzeDeadRelations(input, &report);
  AnalyzeSatisfiability(input, &report);
  AnalyzePlanning(input, &report);
  AnalyzeBlowup(input, options, &report);
  report.Sort();
  return report;
}

AnalysisReport AnalyzeProgram(const ParsedProgram& program,
                              const AnalyzerOptions& options) {
  AnalysisInput input;
  input.schema = &program.schema;
  input.mapping = &program.mapping;
  input.source = &program.source;
  input.queries = &program.queries;
  input.relation_spans = &program.relation_spans;
  return Analyze(input, options);
}

}  // namespace tdx
