// Chase schedules: the executable certificate produced by the chase
// planner (analysis/planner.h).
//
// The planner builds a rule-dependency graph over every rule of a Mapping
// (s-t tgds, target tgds, egds): a "feeds" edge a -> b when a head atom of
// a is constant-compatible with a body atom of b (firing a may create a
// trigger for b), and an "interferes" edge e -> r when egd e may merge
// nulls inside facts that r's body reads (an egd rewrite can create
// triggers no insertion ever would). The SCC condensation of that graph,
// topologically ordered, is the schedule's strata.
//
// A ChaseSchedule is consumed by all three engines. It never changes WHAT
// the chase computes — only which provably-no-op work is skipped and which
// trigger collections may run concurrently:
//
//   * dead rules (some body atom can never be derived) are never visited;
//   * egd-fixpoint passes are skipped outright when every egd is dead or
//     effect-free, and otherwise run over the live egds only;
//   * consecutive target tgds none of whose earlier members may feed a
//     later member's body collect their triggers in parallel (firing stays
//     sequential in declaration order, so fresh-null ids are untouched).
//
// Engines deliberately do NOT reorder rule firing by stratum: fresh-null
// identities depend on the global fire order, and bit-identical output
// versus the unscheduled chase is part of the engines' contract (the
// chaos-resume harness diffs outputs byte-for-byte). When declarations are
// already topologically ordered — the common case, and what TDX022 nudges
// programs toward — declaration-order rounds visit the strata in
// topological order anyway.
//
// This header is deliberately a leaf (no dependency on relational/), like
// analysis/certificate.h: the schedule is embedded in Mapping and travels
// with it into every engine. All display data is pre-rendered to strings
// at plan time, so the renderers need no Schema or Universe.

#ifndef TDX_ANALYSIS_SCHEDULE_H_
#define TDX_ANALYSIS_SCHEDULE_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace tdx {

enum class ScheduleRuleKind { kStTgd, kTargetTgd, kEgd };

/// Stable lower-case token ("st-tgd", "target-tgd", "egd").
std::string_view ScheduleRuleKindName(ScheduleRuleKind kind);

/// One rule of the mapping as a node of the dependency graph.
struct ScheduleRule {
  ScheduleRuleKind kind = ScheduleRuleKind::kStTgd;
  /// Position within the Mapping vector of its kind.
  std::size_t index = 0;
  /// Display name: the declared label, or "#k" (1-based) when unlabeled.
  std::string name;
  /// Index into ChaseSchedule::strata.
  std::size_t stratum = 0;
  /// False when some body atom can never be derived: no chase over any
  /// source instance ever fires this rule, so engines skip it entirely.
  bool live = true;
  /// Egds only: the rule may fire, but both sides of its equality are
  /// pinned to the same constant, so no firing ever merges anything.
  bool effect_free = false;
  /// Why the rule is skipped (live == false or effect_free); else empty.
  std::string skip_reason;
};

enum class ScheduleEdgeReason {
  kFeeds,       ///< a head atom of `from` may match a body atom of `to`
  kInterferes,  ///< egd `from` may rewrite nulls in facts read by `to`
};

/// A justification edge of the dependency graph, between rule ids (indices
/// into ChaseSchedule::rules).
struct ScheduleEdge {
  std::size_t from = 0;
  std::size_t to = 0;
  ScheduleEdgeReason reason = ScheduleEdgeReason::kFeeds;
  /// The relation carrying the edge, by name.
  std::string relation;
};

/// The planner's output: strata, skip decisions, and parallel groups, with
/// the graph that justifies them.
struct ChaseSchedule {
  /// Every rule of the mapping: st-tgds, then target tgds, then egds, each
  /// block in declaration order. Rule ids used by `edges` and `strata` are
  /// indices into this vector.
  std::vector<ScheduleRule> rules;
  std::vector<ScheduleEdge> edges;
  /// SCC condensation of the graph in topological order: every edge runs
  /// from a rule in an earlier-or-equal stratum to a later-or-equal one.
  std::vector<std::vector<std::size_t>> strata;
  /// Maximal runs of consecutive live target tgds (declaration order,
  /// Mapping indices) where no earlier member may feed a later member's
  /// body: their trigger collections commute with each other's fires, so
  /// they may run concurrently over the round-start instance.
  std::vector<std::vector<std::size_t>> parallel_groups;
  /// Live target tgds / egds, in declaration order (Mapping indices).
  std::vector<std::size_t> live_target_tgds;
  std::vector<std::size_t> live_egds;

  /// True when the egd fixpoint must run at all: false means every egd is
  /// dead or effect-free, so each would-be pass is provably a no-op.
  bool egd_fixpoint_live() const { return !live_egds.empty(); }

  std::size_t stratum_count() const { return strata.size(); }

  /// Multi-line human-readable rendering (strata, skips, parallel groups,
  /// justification edges); used by `tdx_cli plan`.
  std::string ToText() const;
  /// The same as one JSON object; used by `tdx_cli plan --format=json` and
  /// `tdx_lint --explain-plan --format=json`.
  std::string ToJson() const;
};

}  // namespace tdx

#endif  // TDX_ANALYSIS_SCHEDULE_H_
