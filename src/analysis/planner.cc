#include "src/analysis/planner.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <unordered_set>
#include <utility>

#include "src/analysis/termination.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace tdx {

namespace {

std::string RuleName(const std::string& label, std::size_t index) {
  return label.empty() ? ("#" + std::to_string(index + 1)) : label;
}

/// The planner's working view of the mapping: every rule as a graph node.
/// Rule ids are st-tgds, then target tgds, then egds, declaration order.
struct RuleView {
  const Mapping* mapping = nullptr;
  std::size_t st = 0;     ///< number of s-t tgds
  std::size_t tgd = 0;    ///< number of target tgds
  std::size_t egd = 0;    ///< number of egds
  std::size_t total() const { return st + tgd + egd; }

  bool is_st(std::size_t id) const { return id < st; }
  bool is_target(std::size_t id) const { return id >= st && id < st + tgd; }
  bool is_egd(std::size_t id) const { return id >= st + tgd; }

  /// The tgd behind a tgd rule id (st or target).
  const Tgd& tgd_of(std::size_t id) const {
    return is_st(id) ? mapping->st_tgds[id] : mapping->target_tgds[id - st];
  }
  const Egd& egd_of(std::size_t id) const {
    return mapping->egds[id - st - tgd];
  }
  /// Body conjunction of a TARGET-side rule (target tgd or egd); st-tgd
  /// bodies read the source and are outside the derivability analysis.
  const Conjunction& target_body(std::size_t id) const {
    return is_egd(id) ? egd_of(id).body : tgd_of(id).body;
  }
  std::size_t mapping_index(std::size_t id) const {
    if (is_st(id)) return id;
    if (is_target(id)) return id - st;
    return id - st - tgd;
  }
};

}  // namespace

PlanDetails PlanChaseDetailed(const Mapping& mapping, const Schema& schema) {
  TDX_TRACE_SPAN("planner.plan_chase");
  static obs::Counter plans_metric("planner.plans");
  static obs::Gauge strata_metric("planner.schedule_strata");
  plans_metric.Inc();
  PlanDetails details;
  ChaseSchedule& schedule = details.schedule;

  RuleView view;
  view.mapping = &mapping;
  view.st = mapping.st_tgds.size();
  view.tgd = mapping.target_tgds.size();
  view.egd = mapping.egds.size();
  const std::size_t n = view.total();

  schedule.rules.resize(n);
  for (std::size_t id = 0; id < n; ++id) {
    ScheduleRule& rule = schedule.rules[id];
    rule.index = view.mapping_index(id);
    if (view.is_st(id)) {
      rule.kind = ScheduleRuleKind::kStTgd;
      rule.name = RuleName(view.tgd_of(id).label, rule.index);
    } else if (view.is_target(id)) {
      rule.kind = ScheduleRuleKind::kTargetTgd;
      rule.name = RuleName(view.tgd_of(id).label, rule.index);
    } else {
      rule.kind = ScheduleRuleKind::kEgd;
      rule.name = RuleName(view.egd_of(id).label, rule.index);
    }
  }
  if (n == 0) return details;

  // Existential-variable sets, precomputed per tgd rule.
  std::vector<std::unordered_set<VarId>> existential(view.st + view.tgd);
  for (std::size_t id = 0; id < view.st + view.tgd; ++id) {
    const Tgd& tgd = view.tgd_of(id);
    existential[id].insert(tgd.existential.begin(), tgd.existential.end());
  }

  // ---- liveness: which rules can ever fire ------------------------------
  //
  // Facts only enter the target through the heads of live tgds, and no
  // later chase step (egd merge, c-chase normalization) changes a fact's
  // relation or constant arguments. So a body atom is derivable iff some
  // live head atom is constant-compatible with it, and rule liveness is
  // the least fixpoint of "all body atoms derivable".
  std::vector<bool> live(n, false);
  for (std::size_t id = 0; id < view.st; ++id) live[id] = true;

  const auto atom_derivable = [&](const Atom& body_atom) {
    for (std::size_t id = 0; id < view.st + view.tgd; ++id) {
      if (!live[id]) continue;
      for (const Atom& head : view.tgd_of(id).head.atoms) {
        if (AtomsCompatible(head, body_atom)) return true;
      }
    }
    return false;
  };
  const auto body_live = [&](const Conjunction& body) {
    for (const Atom& atom : body.atoms) {
      if (!atom_derivable(atom)) return false;
    }
    return true;
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t id = view.st; id < view.st + view.tgd; ++id) {
      if (live[id] || !body_live(view.tgd_of(id).body)) continue;
      live[id] = true;
      changed = true;
    }
  }
  for (std::size_t id = view.st + view.tgd; id < n; ++id) {
    live[id] = body_live(view.egd_of(id).body);
  }

  // Why a dead rule is dead: the first underivable body atom, with the
  // sharper message when the relation IS written but every writer clashes.
  const auto dead_reason = [&](const Conjunction& body) -> std::string {
    for (const Atom& atom : body.atoms) {
      if (atom_derivable(atom)) continue;
      const std::string rel = schema.relation(atom.rel).name;
      bool written = false;
      for (std::size_t id = 0; id < view.st + view.tgd && !written; ++id) {
        if (!live[id]) continue;
        for (const Atom& head : view.tgd_of(id).head.atoms) {
          if (head.rel == atom.rel) written = true;
        }
      }
      if (!written) {
        return "body reads relation '" + rel +
               "', which no live rule head ever writes";
      }
      return "every head writing '" + rel +
             "' clashes with the body atom on a constant";
    }
    return "";
  };
  for (std::size_t id = view.st; id < n; ++id) {
    if (live[id]) continue;
    schedule.rules[id].live = false;
    schedule.rules[id].skip_reason = dead_reason(view.target_body(id));
  }

  // ---- effect-free egds -------------------------------------------------
  //
  // A variable whose value is pinned — some occurrence position is only
  // ever written with one single constant — can never be anything else.
  // When both sides of an egd are pinned to the SAME constant, every
  // firing equates c = c: no merge, no failure, provably zero egd steps.
  // (Pinned to two DIFFERENT constants is the opposite: every firing
  // fails. That egd stays live — skipping it would hide the failure.)
  const auto pinned_constant = [&](const Egd& egd,
                                   VarId x) -> std::optional<Value> {
    for (const Atom& atom : egd.body.atoms) {
      for (std::size_t k = 0; k < atom.terms.size(); ++k) {
        const Term& t = atom.terms[k];
        if (!t.is_var() || t.var() != x) continue;
        bool top = false;
        bool nulls = false;
        bool any_feeder = false;
        std::set<Value> constants;
        for (std::size_t id = 0; id < view.st + view.tgd; ++id) {
          if (!live[id]) continue;
          for (const Atom& head : view.tgd_of(id).head.atoms) {
            if (!AtomsCompatible(head, atom) || k >= head.terms.size()) {
              continue;
            }
            any_feeder = true;
            const Term& ht = head.terms[k];
            if (!ht.is_var()) {
              constants.insert(ht.value());
            } else if (existential[id].count(ht.var()) != 0) {
              nulls = true;
            } else {
              top = true;
            }
          }
        }
        if (any_feeder && !top && !nulls && constants.size() == 1) {
          return *constants.begin();
        }
      }
    }
    return std::nullopt;
  };
  for (std::size_t id = view.st + view.tgd; id < n; ++id) {
    if (!live[id]) continue;
    const Egd& egd = view.egd_of(id);
    const std::optional<Value> left = pinned_constant(egd, egd.x1);
    const std::optional<Value> right = pinned_constant(egd, egd.x2);
    if (left.has_value() && right.has_value() && *left == *right) {
      schedule.rules[id].effect_free = true;
      schedule.rules[id].skip_reason =
          "both sides of the equality are always the same constant; no "
          "firing can merge or fail";
    }
  }

  // ---- "feeds" edges ----------------------------------------------------
  const auto fires = [&](std::size_t id) {
    return live[id] && !schedule.rules[id].effect_free;
  };
  std::map<std::pair<std::size_t, std::size_t>, std::string> feed_edges;
  for (std::size_t from = 0; from < view.st + view.tgd; ++from) {
    if (!fires(from)) continue;
    for (std::size_t to = view.st; to < n; ++to) {
      const Conjunction& body = view.target_body(to);
      for (const Atom& head : view.tgd_of(from).head.atoms) {
        bool found = false;
        for (const Atom& atom : body.atoms) {
          if (AtomsCompatible(head, atom)) {
            feed_edges.emplace(std::make_pair(from, to),
                               schema.relation(head.rel).name);
            found = true;
            break;
          }
        }
        if (found) break;
      }
    }
  }

  // ---- "interferes" edges ----------------------------------------------
  //
  // Which (relation, position) slots may ever hold a null: existential
  // head terms seed the set; a universal head variable of a TARGET tgd
  // inherits may-null from the body positions it reads (s-t tgd universals
  // are bound from the null-free source). An egd can only rewrite facts
  // when a merged side may be a null, and a side may only be a null when
  // every occurrence position may hold one.
  std::set<std::pair<RelationId, std::size_t>> may_null;
  changed = true;
  while (changed) {
    changed = false;
    for (std::size_t id = 0; id < view.st + view.tgd; ++id) {
      if (!live[id]) continue;
      const Tgd& tgd = view.tgd_of(id);
      for (const Atom& head : tgd.head.atoms) {
        for (std::size_t k = 0; k < head.terms.size(); ++k) {
          const Term& t = head.terms[k];
          if (!t.is_var()) continue;
          bool nullable = existential[id].count(t.var()) != 0;
          if (!nullable && view.is_target(id)) {
            for (const Atom& body : tgd.body.atoms) {
              for (std::size_t j = 0; j < body.terms.size(); ++j) {
                if (body.terms[j].is_var() && body.terms[j].var() == t.var() &&
                    may_null.count({body.rel, j}) != 0) {
                  nullable = true;
                }
              }
            }
          }
          if (nullable && may_null.insert({head.rel, k}).second) {
            changed = true;
          }
        }
      }
    }
  }
  const auto may_bind_null = [&](const Egd& egd, VarId x) {
    bool occurs = false;
    for (const Atom& atom : egd.body.atoms) {
      for (std::size_t k = 0; k < atom.terms.size(); ++k) {
        const Term& t = atom.terms[k];
        if (!t.is_var() || t.var() != x) continue;
        occurs = true;
        if (may_null.count({atom.rel, k}) == 0) return false;
      }
    }
    return occurs;
  };
  std::map<std::pair<std::size_t, std::size_t>, std::string> clash_edges;
  for (std::size_t from = view.st + view.tgd; from < n; ++from) {
    if (!fires(from)) continue;
    const Egd& egd = view.egd_of(from);
    if (!may_bind_null(egd, egd.x1) && !may_bind_null(egd, egd.x2)) {
      continue;  // never merges: any violating firing fails the chase
    }
    for (std::size_t to = view.st; to < n; ++to) {
      if (!live[to]) continue;
      for (const Atom& atom : view.target_body(to).atoms) {
        bool nullable_rel = false;
        for (std::size_t k = 0; k < atom.terms.size(); ++k) {
          if (may_null.count({atom.rel, k}) != 0) nullable_rel = true;
        }
        if (nullable_rel) {
          clash_edges.emplace(std::make_pair(from, to),
                              schema.relation(atom.rel).name);
          break;
        }
      }
    }
  }

  std::vector<std::vector<std::size_t>> adj(n);
  for (const auto& [key, rel] : feed_edges) {
    schedule.edges.push_back(
        {key.first, key.second, ScheduleEdgeReason::kFeeds, rel});
    adj[key.first].push_back(key.second);
  }
  for (const auto& [key, rel] : clash_edges) {
    schedule.edges.push_back(
        {key.first, key.second, ScheduleEdgeReason::kInterferes, rel});
    adj[key.first].push_back(key.second);
  }
  for (std::vector<std::size_t>& out : adj) std::sort(out.begin(), out.end());

  // ---- SCC condensation into strata (iterative Tarjan, like -------------
  // PrecedenceComponents: fuzzed mappings must not overflow the stack).
  std::vector<std::size_t> index(n, SIZE_MAX), low(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<std::size_t> stack;
  std::vector<std::vector<std::size_t>> components;
  std::size_t next_index = 0;
  struct Frame {
    std::size_t v;
    std::size_t edge = 0;
  };
  for (std::size_t root = 0; root < n; ++root) {
    if (index[root] != SIZE_MAX) continue;
    std::vector<Frame> frames{Frame{root}};
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.edge == 0) {
        index[f.v] = low[f.v] = next_index++;
        stack.push_back(f.v);
        on_stack[f.v] = true;
      }
      bool descended = false;
      while (f.edge < adj[f.v].size()) {
        const std::size_t w = adj[f.v][f.edge++];
        if (index[w] == SIZE_MAX) {
          frames.push_back(Frame{w});
          descended = true;
          break;
        }
        if (on_stack[w]) low[f.v] = std::min(low[f.v], index[w]);
      }
      if (descended) continue;
      if (low[f.v] == index[f.v]) {
        std::vector<std::size_t> component;
        while (true) {
          const std::size_t w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          component.push_back(w);
          if (w == f.v) break;
        }
        std::sort(component.begin(), component.end());
        components.push_back(std::move(component));
      }
      const std::size_t finished = f.v;
      frames.pop_back();
      if (!frames.empty()) {
        low[frames.back().v] = std::min(low[frames.back().v], low[finished]);
      }
    }
  }
  // Tarjan emits SCCs sinks-first; reversing yields topological order.
  std::reverse(components.begin(), components.end());
  schedule.strata = std::move(components);
  for (std::size_t s = 0; s < schedule.strata.size(); ++s) {
    for (std::size_t id : schedule.strata[s]) {
      schedule.rules[id].stratum = s;
    }
  }

  // ---- live rule lists and parallel groups ------------------------------
  for (std::size_t id = view.st; id < view.st + view.tgd; ++id) {
    if (live[id]) schedule.live_target_tgds.push_back(id - view.st);
  }
  for (std::size_t id = view.st + view.tgd; id < n; ++id) {
    if (fires(id)) schedule.live_egds.push_back(id - view.st - view.tgd);
  }
  // Greedy maximal runs of consecutive live target tgds (consecutive in
  // the live list: dead rules in between never fire, so they cannot break
  // a run) where no earlier member may feed a later member's body. Within
  // such a run, collecting every member's triggers over the round-start
  // instance enumerates exactly what interleaved collect-fire would: an
  // earlier member's inserts cannot match any later member's body atoms.
  for (const std::size_t j : schedule.live_target_tgds) {
    bool extend = !schedule.parallel_groups.empty();
    if (extend) {
      for (std::size_t i : schedule.parallel_groups.back()) {
        if (MayActivate(mapping.target_tgds[i], mapping.target_tgds[j])) {
          extend = false;
          break;
        }
      }
    }
    if (extend) {
      schedule.parallel_groups.back().push_back(j);
    } else {
      schedule.parallel_groups.push_back({j});
    }
  }

  // ---- diagnostics raw material -----------------------------------------
  for (const auto& [key, rel] : clash_edges) {
    (void)rel;
    if (view.is_target(key.second)) {
      details.interference.emplace_back(view.mapping_index(key.first),
                                        view.mapping_index(key.second));
    }
  }
  for (const std::vector<std::size_t>& stratum : schedule.strata) {
    if (stratum.size() >= 2) details.cycles.push_back(stratum);
  }
  std::set<std::size_t> inverted;
  for (const auto& [key, rel] : feed_edges) {
    (void)rel;
    const auto [from, to] = key;
    if (!view.is_target(from) || !view.is_target(to)) continue;
    if (!live[from] || !live[to]) continue;
    if (schedule.rules[from].stratum == schedule.rules[to].stratum) continue;
    if (view.mapping_index(from) > view.mapping_index(to)) {
      inverted.insert(view.mapping_index(to));
    }
  }
  details.declaration_inversions.assign(inverted.begin(), inverted.end());

  std::vector<bool> written(schema.relation_count(), false);
  std::vector<bool> read(schema.relation_count(), false);
  for (std::size_t id = 0; id < view.st + view.tgd; ++id) {
    if (!live[id]) continue;
    for (const Atom& head : view.tgd_of(id).head.atoms) {
      if (head.rel < written.size()) written[head.rel] = true;
    }
  }
  for (std::size_t id = view.st; id < n; ++id) {
    for (const Atom& atom : view.target_body(id).atoms) {
      if (atom.rel < read.size()) read[atom.rel] = true;
    }
  }
  for (RelationId rel = 0; rel < schema.relation_count(); ++rel) {
    if (written[rel] && !read[rel]) details.written_never_read.push_back(rel);
  }

  details.downstream_relations.resize(n);
  for (std::size_t id = 0; id < n; ++id) {
    std::vector<bool> seen(n, false);
    std::vector<std::size_t> queue{id};
    seen[id] = true;
    std::set<RelationId> rels;
    while (!queue.empty()) {
      const std::size_t v = queue.back();
      queue.pop_back();
      if (v < view.st + view.tgd && fires(v)) {
        for (const Atom& head : view.tgd_of(v).head.atoms) {
          rels.insert(head.rel);
        }
      }
      for (std::size_t w : adj[v]) {
        if (!seen[w]) {
          seen[w] = true;
          queue.push_back(w);
        }
      }
    }
    details.downstream_relations[id].assign(rels.begin(), rels.end());
  }

  strata_metric.Set(schedule.stratum_count());
  return details;
}

ChaseSchedule PlanChase(const Mapping& mapping, const Schema& schema) {
  return PlanChaseDetailed(mapping, schema).schedule;
}

}  // namespace tdx
