#include "src/analysis/schedule.h"

#include <unordered_set>

#include "src/analysis/diagnostic.h"  // JsonEscape

namespace tdx {

std::string_view ScheduleRuleKindName(ScheduleRuleKind kind) {
  switch (kind) {
    case ScheduleRuleKind::kStTgd:
      return "st-tgd";
    case ScheduleRuleKind::kTargetTgd:
      return "target-tgd";
    case ScheduleRuleKind::kEgd:
      return "egd";
  }
  return "?";
}

namespace {

std::string RuleDisplay(const ScheduleRule& rule) {
  std::string out(ScheduleRuleKindName(rule.kind));
  out += " '";
  out += rule.name;
  out += "'";
  return out;
}

std::string_view EdgeReasonName(ScheduleEdgeReason reason) {
  switch (reason) {
    case ScheduleEdgeReason::kFeeds:
      return "feeds";
    case ScheduleEdgeReason::kInterferes:
      return "interferes";
  }
  return "?";
}

}  // namespace

std::string ChaseSchedule::ToText() const {
  std::string out = "chase schedule: " + std::to_string(strata.size()) +
                    (strata.size() == 1 ? " stratum" : " strata") + " over " +
                    std::to_string(rules.size()) +
                    (rules.size() == 1 ? " rule" : " rules") +
                    "; egd fixpoint: ";
  if (rules.empty()) {
    out += "skipped (no egds)\n";
    return out;
  }
  bool has_egds = false;
  for (const ScheduleRule& rule : rules) {
    if (rule.kind == ScheduleRuleKind::kEgd) has_egds = true;
  }
  if (egd_fixpoint_live()) {
    out += "live (" + std::to_string(live_egds.size()) + " of " +
           std::to_string(live_egds.size() +
                          [this] {
                            std::size_t skipped = 0;
                            for (const ScheduleRule& r : rules) {
                              if (r.kind == ScheduleRuleKind::kEgd &&
                                  (!r.live || r.effect_free)) {
                                ++skipped;
                              }
                            }
                            return skipped;
                          }()) +
           " egds participate)\n";
  } else if (has_egds) {
    out += "skipped (every egd is dead or effect-free)\n";
  } else {
    out += "skipped (no egds)\n";
  }

  // Self-loops mark recursive rules; multi-rule strata are cycles.
  std::unordered_set<std::size_t> self_loop;
  for (const ScheduleEdge& edge : edges) {
    if (edge.from == edge.to) self_loop.insert(edge.from);
  }
  for (std::size_t s = 0; s < strata.size(); ++s) {
    out += "  stratum " + std::to_string(s) + ":";
    for (std::size_t id : strata[s]) {
      const ScheduleRule& rule = rules[id];
      out += " " + RuleDisplay(rule);
      if (strata[s].size() == 1 && self_loop.count(id) != 0) {
        out += " (recursive)";
      }
    }
    if (strata[s].size() > 1) out += " (cycle)";
    out += "\n";
  }

  bool any_skipped = false;
  for (const ScheduleRule& rule : rules) {
    if (rule.live && !rule.effect_free) continue;
    if (!any_skipped) {
      out += "skipped rules:\n";
      any_skipped = true;
    }
    out += "  " + RuleDisplay(rule) + ": " + rule.skip_reason + "\n";
  }

  if (!parallel_groups.empty()) {
    out += "parallel trigger-collection groups:\n";
    for (const std::vector<std::size_t>& group : parallel_groups) {
      if (group.size() < 2) continue;  // singleton groups are not parallel
      out += " ";
      for (std::size_t index : group) {
        for (const ScheduleRule& rule : rules) {
          if (rule.kind == ScheduleRuleKind::kTargetTgd &&
              rule.index == index) {
            out += " " + RuleDisplay(rule);
          }
        }
      }
      out += "\n";
    }
  }

  if (!edges.empty()) {
    out += "justification edges:\n";
    for (const ScheduleEdge& edge : edges) {
      out += "  " + RuleDisplay(rules[edge.from]) + " -> " +
             RuleDisplay(rules[edge.to]);
      if (edge.reason == ScheduleEdgeReason::kFeeds) {
        out += " (feeds '" + edge.relation + "')";
      } else {
        out += " (may rewrite nulls in '" + edge.relation + "')";
      }
      out += "\n";
    }
  }
  return out;
}

std::string ChaseSchedule::ToJson() const {
  std::string out = "{\"rules\": [";
  for (std::size_t i = 0; i < rules.size(); ++i) {
    const ScheduleRule& rule = rules[i];
    if (i > 0) out += ", ";
    out += "{\"id\": " + std::to_string(i) + ", \"kind\": \"" +
           std::string(ScheduleRuleKindName(rule.kind)) + "\", \"index\": " +
           std::to_string(rule.index) + ", \"name\": \"" +
           JsonEscape(rule.name) + "\", \"stratum\": " +
           std::to_string(rule.stratum) + ", \"live\": " +
           (rule.live ? "true" : "false") + ", \"effect_free\": " +
           (rule.effect_free ? "true" : "false");
    if (!rule.skip_reason.empty()) {
      out += ", \"skip_reason\": \"" + JsonEscape(rule.skip_reason) + "\"";
    }
    out += "}";
  }
  out += "], \"strata\": [";
  for (std::size_t s = 0; s < strata.size(); ++s) {
    if (s > 0) out += ", ";
    out += "[";
    for (std::size_t k = 0; k < strata[s].size(); ++k) {
      if (k > 0) out += ", ";
      out += std::to_string(strata[s][k]);
    }
    out += "]";
  }
  out += "], \"parallel_groups\": [";
  bool first_group = true;
  for (const std::vector<std::size_t>& group : parallel_groups) {
    if (group.size() < 2) continue;
    if (!first_group) out += ", ";
    first_group = false;
    out += "[";
    for (std::size_t k = 0; k < group.size(); ++k) {
      if (k > 0) out += ", ";
      out += std::to_string(group[k]);
    }
    out += "]";
  }
  out += "], \"edges\": [";
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const ScheduleEdge& edge = edges[i];
    if (i > 0) out += ", ";
    out += "{\"from\": " + std::to_string(edge.from) + ", \"to\": " +
           std::to_string(edge.to) + ", \"reason\": \"" +
           std::string(EdgeReasonName(edge.reason)) + "\", \"relation\": \"" +
           JsonEscape(edge.relation) + "\"}";
  }
  out += "], \"egd_fixpoint\": \"";
  out += egd_fixpoint_live() ? "live" : "skipped";
  out += "\"}";
  return out;
}

}  // namespace tdx
