// Structured diagnostics for the static analysis pass.
//
// Every finding of the mapping analyzer (analysis/analyzer.h) is a
// Diagnostic with a stable ID, a severity, a source position (when the
// parser provided one), and an optional fix-it hint. An AnalysisReport
// bundles the findings of one program together with the mapping's
// TerminationCertificate and renders as human-readable text or as JSON
// (for editor and CI integration; `tdx_lint --format=json`).
//
// Diagnostic ID catalogue (documented in docs/INTERNALS.md):
//
//   TDX000  error    program does not parse (tdx_lint wraps parse errors)
//   TDX001  error    target tgds admit a non-terminating chase (with cycle)
//   TDX002  warning  not weakly acyclic, certified by stratification only
//   TDX003  note     weakly but not richly acyclic (oblivious chase open)
//   TDX010  warning  dependency body can never fire: the body relations'
//                    facts never hold at a common time point (Def. 10)
//   TDX011  warning  egd equates terms that can only be distinct constants
//   TDX012  note     variable occurs exactly once (suggest '_')
//   TDX013  warning  dead relation (never read/written by any statement)
//   TDX014  warning  duplicate dependency (identical up to renaming)
//   TDX015  note     dependency implied by another (body containment)
//   TDX016  warning  normalization blowup: Phi+ fragments the source
//                    heavily (Theorem 13's O(n^2) bound)
//   TDX017  warning  mapping has no s-t tgds; target is always empty
//   TDX018  warning  dead rule: a body atom can never be derived, the rule
//                    never fires on any source (chase planner liveness)
//   TDX019  warning  effect-free egd: both equality sides are pinned to
//                    the same constant; firings never merge or fail
//   TDX020  note     egd may rewrite nulls a target tgd's body reads
//                    (forces frontier re-seeding after merging fixpoints)
//   TDX021  note     rules form a dependency cycle (share one stratum)
//   TDX022  note     declaration order inverts stratum order (a rule is
//                    declared before a feeder from an earlier stratum)
//   TDX023  note     relation is written by the chase but never read by
//                    any rule body or query
//   TDX024  note     target tgd contributes (even transitively) to no
//                    query; only reported when the program has queries

#ifndef TDX_ANALYSIS_DIAGNOSTIC_H_
#define TDX_ANALYSIS_DIAGNOSTIC_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "src/analysis/certificate.h"
#include "src/common/source.h"

namespace tdx {

enum class Severity { kError, kWarning, kNote };

/// "error", "warning", or "note".
std::string_view SeverityName(Severity s);

struct Diagnostic {
  std::string id;  ///< stable identifier, e.g. "TDX013"
  Severity severity = Severity::kWarning;
  std::string message;
  SourceSpan span;   ///< unknown (line 0) when the object was hand-built
  std::string hint;  ///< optional fix-it suggestion; may be empty
};

/// The result of analyzing one program/mapping.
struct AnalysisReport {
  std::vector<Diagnostic> diagnostics;
  /// The termination ladder's verdict for the mapping's target tgds.
  TerminationCertificate certificate;

  void Add(std::string id, Severity severity, std::string message,
           SourceSpan span = {}, std::string hint = {});

  std::size_t CountOf(Severity severity) const;
  bool HasErrors() const { return CountOf(Severity::kError) != 0; }
  /// True after PromoteWarnings (--Werror) or if errors were present.
  void PromoteWarnings();

  /// Stable order for rendering: by position, then ID, then message.
  void Sort();
};

/// One diagnostic in clang style (with trailing newline; two lines when a
/// hint is present):
///   <file>:<line>:<col>: <severity>: <message> [TDXnnn]
///       hint: <hint>
std::string RenderDiagnostic(const Diagnostic& d, std::string_view file);

/// RenderDiagnostic over the whole report, followed by a summary line and
/// the termination certificate.
std::string RenderText(const AnalysisReport& report, std::string_view file);

/// One JSON object per report:
///   {"file": ..., "diagnostics": [...], "certificate": {...},
///    "errors": N, "warnings": N, "notes": N}
std::string RenderJson(const AnalysisReport& report, std::string_view file);

/// Escapes a string for embedding in a JSON string literal (quotes not
/// included). Exposed for the CLI drivers.
std::string JsonEscape(std::string_view s);

}  // namespace tdx

#endif  // TDX_ANALYSIS_DIAGNOSTIC_H_
