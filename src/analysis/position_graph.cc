#include "src/analysis/position_graph.h"

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

namespace tdx {

namespace {

/// Packs (from, to, special) into one key for edge deduplication. Position
/// counts are tiny (sum of arities), so 24 bits per endpoint is plenty.
std::uint64_t EdgeKey(std::size_t from, std::size_t to, bool special) {
  return (static_cast<std::uint64_t>(from) << 25) |
         (static_cast<std::uint64_t>(to) << 1) | (special ? 1u : 0u);
}

}  // namespace

PositionGraph PositionGraph::Build(const std::vector<Tgd>& tgds,
                                   const Schema& schema, Kind kind) {
  PositionGraph g;
  // Dense node ids: positions in relation-id order, attribute order.
  std::vector<std::size_t> base(schema.relation_count() + 1, 0);
  for (RelationId r = 0; r < schema.relation_count(); ++r) {
    base[r + 1] = base[r] + schema.relation(r).arity();
    for (std::size_t i = 0; i < schema.relation(r).arity(); ++i) {
      g.nodes_.push_back(Node{r, i});
    }
  }
  g.adjacency_.resize(g.nodes_.size());
  const auto node_of = [&base](RelationId rel, std::size_t attr) {
    return base[rel] + attr;
  };

  std::unordered_set<std::uint64_t> seen;
  const auto add_edge = [&](std::size_t from, std::size_t to, bool special,
                            std::size_t tgd_index) {
    if (!seen.insert(EdgeKey(from, to, special)).second) return;
    g.adjacency_[from].push_back(Edge{to, special, tgd_index});
    ++g.edge_count_;
  };

  for (std::size_t ti = 0; ti < tgds.size(); ++ti) {
    const Tgd& tgd = tgds[ti];
    const std::unordered_set<VarId> existential(tgd.existential.begin(),
                                                tgd.existential.end());
    // Positions of each universally quantified variable in the body.
    std::unordered_map<VarId, std::vector<std::size_t>> body_positions;
    for (const Atom& atom : tgd.body.atoms) {
      for (std::size_t i = 0; i < atom.terms.size(); ++i) {
        if (atom.terms[i].is_var()) {
          body_positions[atom.terms[i].var()].push_back(node_of(atom.rel, i));
        }
      }
    }
    // Head positions of existential variables (targets of special edges).
    std::vector<std::size_t> existential_positions;
    for (const Atom& atom : tgd.head.atoms) {
      for (std::size_t i = 0; i < atom.terms.size(); ++i) {
        const Term& t = atom.terms[i];
        if (t.is_var() && existential.count(t.var()) != 0) {
          existential_positions.push_back(node_of(atom.rel, i));
        }
      }
    }
    // Regular edges: body position of x -> each head position of x.
    // Special edges (weak graph): body position of each head-occurring
    // universal x -> every head position of every existential variable.
    for (const Atom& atom : tgd.head.atoms) {
      for (std::size_t i = 0; i < atom.terms.size(); ++i) {
        const Term& t = atom.terms[i];
        if (!t.is_var()) continue;
        auto it = body_positions.find(t.var());
        if (it == body_positions.end()) continue;  // existential
        for (std::size_t from : it->second) {
          add_edge(from, node_of(atom.rel, i), false, ti);
          for (std::size_t special_to : existential_positions) {
            add_edge(from, special_to, true, ti);
          }
        }
      }
    }
    // Extended graph: special edges from every body position of every
    // universal variable, exported or not (oblivious-chase coverage).
    if (kind == Kind::kRich) {
      for (const auto& [var, positions] : body_positions) {
        (void)var;
        for (std::size_t from : positions) {
          for (std::size_t special_to : existential_positions) {
            add_edge(from, special_to, true, ti);
          }
        }
      }
    }
  }
  return g;
}

std::string PositionGraph::NodeName(const Schema& schema,
                                    std::size_t id) const {
  const Node& n = nodes_[id];
  const RelationSchema& rel = schema.relation(n.rel);
  std::string out = rel.name;
  out += '.';
  if (n.attr < rel.attributes.size() && !rel.attributes[n.attr].empty()) {
    out += rel.attributes[n.attr];
  } else {
    out += std::to_string(n.attr);
  }
  return out;
}

std::optional<SpecialCycle> PositionGraph::FindSpecialCycle() const {
  // A special edge (u, v) lies on a cycle iff u is reachable from v. BFS
  // with parent pointers recovers the v -> ... -> u path, which closed by
  // the special edge is the witness cycle.
  for (std::size_t u = 0; u < nodes_.size(); ++u) {
    for (const Edge& e : adjacency_[u]) {
      if (!e.special) continue;
      const std::size_t v = e.to;
      std::vector<std::size_t> parent(nodes_.size(), SIZE_MAX);
      std::vector<std::size_t> queue{v};
      std::vector<bool> visited(nodes_.size(), false);
      visited[v] = true;
      bool found = (v == u);
      for (std::size_t qi = 0; qi < queue.size() && !found; ++qi) {
        const std::size_t cur = queue[qi];
        for (const Edge& next : adjacency_[cur]) {
          if (visited[next.to]) continue;
          visited[next.to] = true;
          parent[next.to] = cur;
          if (next.to == u) {
            found = true;
            break;
          }
          queue.push_back(next.to);
        }
      }
      if (!found) continue;
      // Reconstruct u -> v -> ... -> u as a closed walk starting at u.
      std::vector<std::size_t> path;
      for (std::size_t cur = u; cur != v && cur != SIZE_MAX;
           cur = parent[cur]) {
        path.push_back(cur);
      }
      SpecialCycle cycle;
      cycle.tgd_index = e.tgd_index;
      cycle.nodes.push_back(u);
      if (v != u) cycle.nodes.push_back(v);
      // path holds u ... (nodes after v on the v->u walk) in reverse.
      for (auto it = path.rbegin(); it != path.rend(); ++it) {
        if (*it != u) cycle.nodes.push_back(*it);
      }
      return cycle;
    }
  }
  return std::nullopt;
}

std::string PositionGraph::FormatCycle(const Schema& schema,
                                       const SpecialCycle& c) const {
  std::string out;
  for (std::size_t i = 0; i < c.nodes.size(); ++i) {
    out += NodeName(schema, c.nodes[i]);
    // The first hop is the initiating special edge by construction.
    out += (i == 0) ? " -*-> " : " -> ";
  }
  out += NodeName(schema, c.nodes[0]);
  return out;
}

}  // namespace tdx
