// The chase planner: static stratification of a mapping's rule set.
//
// PlanChase builds the rule-dependency graph described in
// analysis/schedule.h — "feeds" edges from constant-compatible head/body
// atom pairs (the same conservative test as the termination ladder's
// precedence analysis, Grahne & Onet), "interferes" edges from egds into
// rules whose bodies read null-carrying relations — condenses it into
// topologically ordered strata, and derives the skip decisions:
//
//   * liveness: a target tgd or egd is DEAD when some body atom can never
//     be derived — its relation is written by no rule head, or every head
//     writing it clashes with the atom on a constant. Facts only enter the
//     target through tgd heads, and neither egd merges (nulls only, never
//     constants) nor c-chase normalization (re-annotation and
//     fragmentation preserve relations and constant arguments) can create
//     a fact a dead body could match, so dead rules are sound to skip on
//     EVERY source instance.
//   * effect-free egds: both sides of the equality are pinned to one and
//     the same constant by every feeding head, so a firing can never merge
//     anything (and never fail). Skipping them drops whole egd-fixpoint
//     enumeration passes without changing a single fact.
//
// The planner is pure analysis: polynomial in the mapping size, never
// consults an instance, and its output is valid for every source.
//
// PlanChaseDetailed additionally returns the raw material for the
// TDX018-TDX024 diagnostics (analysis/analyzer.cc): interference pairs,
// rule cycles, declaration-order inversions, and relation read/write
// liveness, which need the graph but not the schedule.

#ifndef TDX_ANALYSIS_PLANNER_H_
#define TDX_ANALYSIS_PLANNER_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "src/analysis/schedule.h"
#include "src/relational/dependency.h"

namespace tdx {

/// PlanChase plus the graph-derived facts the analyzer turns into
/// diagnostics. Rule ids index ChaseSchedule::rules; "mapping index" means
/// the position within the Mapping vector of the rule's kind.
struct PlanDetails {
  ChaseSchedule schedule;
  /// (egd mapping index, target tgd mapping index): the egd may rewrite
  /// nulls inside facts the tgd body reads, forcing the engines to re-seed
  /// their semi-naive frontiers after every merging fixpoint (TDX020).
  std::vector<std::pair<std::size_t, std::size_t>> interference;
  /// Multi-rule dependency cycles (rule ids, one entry per SCC of size
  /// >= 2), in stratum order (TDX021).
  std::vector<std::vector<std::size_t>> cycles;
  /// Live target tgds declared before one of their feeders from a strictly
  /// earlier stratum position (mapping indices; TDX022).
  std::vector<std::size_t> declaration_inversions;
  /// Target relations written by some live head but read by no rule body;
  /// the analyzer adds query information before reporting (TDX023).
  std::vector<RelationId> written_never_read;
  /// Per rule id: every relation written by this rule or by any rule
  /// reachable from it through "feeds" edges — the downstream contribution
  /// used for the query-reachability lint (TDX024).
  std::vector<std::vector<RelationId>> downstream_relations;
};

/// Runs the planner over a validated mapping. Never fails: a mapping with
/// no rules yields an empty schedule.
PlanDetails PlanChaseDetailed(const Mapping& mapping, const Schema& schema);

/// Just the schedule (what ValidateAndCertifyMapping attaches to the
/// Mapping and the engines consume).
ChaseSchedule PlanChase(const Mapping& mapping, const Schema& schema);

}  // namespace tdx

#endif  // TDX_ANALYSIS_PLANNER_H_
