#include "src/analysis/termination.h"

#include <algorithm>
#include <cstdint>

namespace tdx {

bool AtomsCompatible(const Atom& head, const Atom& body) {
  if (head.rel != body.rel) return false;
  const std::size_t n = std::min(head.terms.size(), body.terms.size());
  for (std::size_t i = 0; i < n; ++i) {
    const Term& h = head.terms[i];
    const Term& b = body.terms[i];
    if (!h.is_var() && !b.is_var() && !(h.value() == b.value())) return false;
  }
  return true;
}

bool MayActivate(const Tgd& a, const Tgd& b) {
  for (const Atom& head : a.head.atoms) {
    for (const Atom& body : b.body.atoms) {
      if (AtomsCompatible(head, body)) return true;
    }
  }
  return false;
}

std::vector<std::vector<std::size_t>> PrecedenceComponents(
    const std::vector<Tgd>& tgds) {
  const std::size_t n = tgds.size();
  std::vector<std::vector<std::size_t>> adj(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (MayActivate(tgds[i], tgds[j])) adj[i].push_back(j);
    }
  }

  // Iterative Tarjan SCC (explicit stack: fuzzed mappings must not be able
  // to overflow the call stack).
  std::vector<std::size_t> index(n, SIZE_MAX), low(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<std::size_t> stack;
  std::vector<std::vector<std::size_t>> components;
  std::size_t next_index = 0;

  struct Frame {
    std::size_t v;
    std::size_t edge = 0;
  };
  for (std::size_t root = 0; root < n; ++root) {
    if (index[root] != SIZE_MAX) continue;
    std::vector<Frame> frames{Frame{root}};
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.edge == 0) {
        index[f.v] = low[f.v] = next_index++;
        stack.push_back(f.v);
        on_stack[f.v] = true;
      }
      bool descended = false;
      while (f.edge < adj[f.v].size()) {
        const std::size_t w = adj[f.v][f.edge++];
        if (index[w] == SIZE_MAX) {
          frames.push_back(Frame{w});
          descended = true;
          break;
        }
        if (on_stack[w]) low[f.v] = std::min(low[f.v], index[w]);
      }
      if (descended) continue;
      if (low[f.v] == index[f.v]) {
        std::vector<std::size_t> component;
        while (true) {
          const std::size_t w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          component.push_back(w);
          if (w == f.v) break;
        }
        components.push_back(std::move(component));
      }
      const std::size_t finished = f.v;
      frames.pop_back();
      if (!frames.empty()) {
        low[frames.back().v] = std::min(low[frames.back().v], low[finished]);
      }
    }
  }
  return components;
}

TerminationCertificate CertifyTermination(const std::vector<Tgd>& target_tgds,
                                          const Schema& schema) {
  TerminationCertificate cert;
  if (target_tgds.empty()) {
    cert.criterion = TerminationCriterion::kNoTargetTgds;
    return cert;
  }

  const PositionGraph rich =
      PositionGraph::Build(target_tgds, schema, PositionGraph::Kind::kRich);
  if (!rich.FindSpecialCycle().has_value()) {
    cert.criterion = TerminationCriterion::kRichlyAcyclic;
    return cert;
  }

  const PositionGraph weak =
      PositionGraph::Build(target_tgds, schema, PositionGraph::Kind::kWeak);
  const std::optional<SpecialCycle> cycle = weak.FindSpecialCycle();
  if (!cycle.has_value()) {
    cert.criterion = TerminationCriterion::kWeaklyAcyclic;
    return cert;
  }

  // Stratification: every precedence SCC must be weakly acyclic on its own.
  bool stratified = true;
  for (const std::vector<std::size_t>& component :
       PrecedenceComponents(target_tgds)) {
    std::vector<Tgd> stratum;
    stratum.reserve(component.size());
    for (std::size_t i : component) stratum.push_back(target_tgds[i]);
    const PositionGraph g =
        PositionGraph::Build(stratum, schema, PositionGraph::Kind::kWeak);
    if (g.FindSpecialCycle().has_value()) {
      stratified = false;
      break;
    }
  }
  if (stratified) {
    cert.criterion = TerminationCriterion::kStratified;
    cert.witness = "not weakly acyclic (" + weak.FormatCycle(schema, *cycle) +
                   "), but every precedence stratum is";
    return cert;
  }

  cert.criterion = TerminationCriterion::kUnknown;
  cert.witness = weak.FormatCycle(schema, *cycle);
  return cert;
}

}  // namespace tdx
