// The mapping analyzer: static diagnostics over a parsed data exchange
// setting.
//
// Analyze() inspects a Schema + Mapping (and, when available, the source
// instance and the queries) and produces an AnalysisReport of structured
// Diagnostics — see analysis/diagnostic.h for the ID catalogue. The
// analyses are:
//
//  * Termination ladder (TDX001/TDX002/TDX003): runs CertifyTermination
//    over the target tgds, stores the TerminationCertificate in the report,
//    and names the concrete offending cycle of positions when one exists.
//  * Temporal satisfiability (TDX010): a tgd whose body relations never
//    hold at a common time point can never fire on the given source
//    (the interval-conjunction emptiness of Def. 10, relaxed to per-
//    relation time coverage — a sound necessary condition).
//  * Egd constant conflicts (TDX011): per-position possible-value sets
//    derived from the tgd heads; an egd whose two sides can only ever be
//    bound to disjoint sets of constants fails the chase whenever it fires.
//  * Style and liveness lints: single-use variables (TDX012), dead
//    relations (TDX013), duplicate dependencies up to variable renaming
//    (TDX014), dependencies implied by another via a one-step chase
//    implication test on a frozen body (TDX015).
//  * Normalization blowup (TDX016): estimates how many fragments
//    normalizing the source against Phi+ produces (Theorem 13's O(n^2)
//    bound) and warns when the estimate exceeds a configurable factor.
//  * Empty mapping (TDX017): no s-t tgds means the target is always empty.
//
// All analyses are conservative: an `error` means the program is wrong
// (the chase cannot terminate / must fail), a `warning` flags a construct
// that is almost certainly unintended, a `note` is stylistic.

#ifndef TDX_ANALYSIS_ANALYZER_H_
#define TDX_ANALYSIS_ANALYZER_H_

#include <cstddef>
#include <vector>

#include "src/analysis/diagnostic.h"
#include "src/common/source.h"
#include "src/core/query.h"
#include "src/relational/dependency.h"
#include "src/temporal/concrete_instance.h"

namespace tdx {

struct ParsedProgram;

/// Tuning knobs for the analyzer; defaults match the CLI tools.
struct AnalyzerOptions {
  /// TDX016 fires when the estimated fragment count exceeds this multiple
  /// of the source fact count ...
  double blowup_warn_factor = 4.0;
  /// ... and the source has at least this many facts (tiny instances
  /// fragment heavily in relative terms without mattering).
  std::size_t blowup_min_facts = 8;
};

/// What to analyze. `schema` and `mapping` (the non-temporal M) are
/// required; the rest widens coverage when present:
///  * `source` enables the data-dependent lints TDX010 and TDX016;
///  * `queries` extends the variable lints (TDX012) to query bodies;
///  * `relation_spans` (indexed by RelationId, parser-provided) lets
///    TDX013 point at the offending declaration.
struct AnalysisInput {
  const Schema* schema = nullptr;
  const Mapping* mapping = nullptr;
  const ConcreteInstance* source = nullptr;
  const std::vector<UnionQuery>* queries = nullptr;
  const std::vector<SourceSpan>* relation_spans = nullptr;
};

/// Runs every applicable analysis and returns the sorted report. Never
/// fails: a structurally broken mapping (atom arity or relation ids out of
/// range) yields a single TDX000 error instead of undefined behavior.
AnalysisReport Analyze(const AnalysisInput& input,
                       const AnalyzerOptions& options = {});

/// Convenience wrapper: analyzes a successfully parsed program (schema,
/// non-temporal mapping, source instance, queries, declaration spans).
AnalysisReport AnalyzeProgram(const ParsedProgram& program,
                              const AnalyzerOptions& options = {});

}  // namespace tdx

#endif  // TDX_ANALYSIS_ANALYZER_H_
