#include "src/analysis/certificate.h"

namespace tdx {

std::string_view TerminationCriterionName(TerminationCriterion c) {
  switch (c) {
    case TerminationCriterion::kNoTargetTgds:
      return "no-target-tgds";
    case TerminationCriterion::kRichlyAcyclic:
      return "richly-acyclic";
    case TerminationCriterion::kWeaklyAcyclic:
      return "weakly-acyclic";
    case TerminationCriterion::kStratified:
      return "stratified";
    case TerminationCriterion::kUnknown:
      return "unknown";
  }
  return "unknown";
}

std::string TerminationCertificate::ToString() const {
  std::string out(TerminationCriterionName(criterion));
  if (!witness.empty()) {
    out += criterion == TerminationCriterion::kUnknown ? " (cycle: " : " (";
    out += witness;
    out += ")";
  }
  return out;
}

}  // namespace tdx
