// The chase-termination ladder (Grahne & Onet, "Anatomy of the chase").
//
// CertifyTermination walks the decidable criteria from strongest to
// weakest and returns a TerminationCertificate naming the first rung that
// applies:
//
//   1. no target tgds      — the paper's own fragment (Section 1): s-t tgds
//                            fire at most once per trigger, egds only merge.
//   2. richly acyclic      — no special cycle in the *extended* dependency
//                            graph; even the oblivious chase terminates.
//   3. weakly acyclic      — no special cycle in the dependency graph
//                            (Fagin et al.); every restricted chase
//                            sequence terminates in polynomial length.
//   4. stratified          — the firing-precedence graph's SCCs are each
//                            weakly acyclic on their own. tdx uses a
//                            conservative atom-level precedence (sigma1
//                            precedes sigma2 iff a head atom of sigma1 is
//                            constant-compatible with a body atom of
//                            sigma2), which over-approximates the real
//                            can-fire relation; strata then consume only
//                            facts from earlier strata, so termination
//                            follows by induction. Constant clashes are the
//                            only refinement over plain relation overlap:
//                            they are robust even under egds, which never
//                            rewrite a constant argument of a fact.
//   5. unknown             — none of the above; the certificate carries the
//                            witness cycle and guarantees_termination() is
//                            false. Engines refuse to chase such mappings.
//
// The ladder is pure analysis: it never runs the chase, and its cost is
// polynomial in the size of the mapping.

#ifndef TDX_ANALYSIS_TERMINATION_H_
#define TDX_ANALYSIS_TERMINATION_H_

#include <vector>

#include "src/analysis/certificate.h"
#include "src/analysis/position_graph.h"
#include "src/relational/dependency.h"

namespace tdx {

/// Runs the ladder over `target_tgds`. Never fails: a mapping that defeats
/// every criterion yields criterion == kUnknown with the witness cycle.
TerminationCertificate CertifyTermination(const std::vector<Tgd>& target_tgds,
                                          const Schema& schema);

/// Could a fact produced from `head` match `body`? False only on a
/// guaranteed mismatch: different relations, or some position where both
/// atoms carry distinct constants. (A constant argument of a fact survives
/// every chase step — egds merge nulls, never constants — so a clash is a
/// permanent obstruction, not just a first-round one.) Shared with the
/// chase planner (analysis/planner.h), whose whole graph is built from it.
bool AtomsCompatible(const Atom& head, const Atom& body);

/// The conservative firing-precedence test behind stratification: true iff
/// some head atom of `a` could produce a fact matching some body atom of
/// `b` — same relation, and no argument position where both atoms carry
/// distinct constants (firing `a` may then create a trigger for `b`).
bool MayActivate(const Tgd& a, const Tgd& b);

/// Partitions tgd indices into strongly connected components of the
/// precedence graph, in an arbitrary deterministic order. Exposed for the
/// analyzer's diagnostics and for tests.
std::vector<std::vector<std::size_t>> PrecedenceComponents(
    const std::vector<Tgd>& tgds);

}  // namespace tdx

#endif  // TDX_ANALYSIS_TERMINATION_H_
