#include "src/analysis/diagnostic.h"

#include <algorithm>

namespace tdx {

std::string_view SeverityName(Severity s) {
  switch (s) {
    case Severity::kError:
      return "error";
    case Severity::kWarning:
      return "warning";
    case Severity::kNote:
      return "note";
  }
  return "note";
}

void AnalysisReport::Add(std::string id, Severity severity,
                         std::string message, SourceSpan span,
                         std::string hint) {
  diagnostics.push_back(Diagnostic{std::move(id), severity, std::move(message),
                                   span, std::move(hint)});
}

std::size_t AnalysisReport::CountOf(Severity severity) const {
  std::size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == severity) ++n;
  }
  return n;
}

void AnalysisReport::PromoteWarnings() {
  for (Diagnostic& d : diagnostics) {
    if (d.severity == Severity::kWarning) d.severity = Severity::kError;
  }
}

void AnalysisReport::Sort() {
  std::stable_sort(diagnostics.begin(), diagnostics.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.span.line != b.span.line) {
                       return a.span.line < b.span.line;
                     }
                     if (a.span.column != b.span.column) {
                       return a.span.column < b.span.column;
                     }
                     if (a.id != b.id) return a.id < b.id;
                     return a.message < b.message;
                   });
}

std::string RenderDiagnostic(const Diagnostic& d, std::string_view file) {
  std::string out(file);
  if (d.span.valid()) {
    out += ':' + std::to_string(d.span.line) + ':' +
           std::to_string(d.span.column);
  }
  out += ": ";
  out += SeverityName(d.severity);
  out += ": " + d.message + " [" + d.id + "]\n";
  if (!d.hint.empty()) out += "    hint: " + d.hint + "\n";
  return out;
}

std::string RenderText(const AnalysisReport& report, std::string_view file) {
  std::string out;
  for (const Diagnostic& d : report.diagnostics) {
    out += RenderDiagnostic(d, file);
  }
  out += file;
  out += ": " + std::to_string(report.CountOf(Severity::kError)) +
         " error(s), " + std::to_string(report.CountOf(Severity::kWarning)) +
         " warning(s), " + std::to_string(report.CountOf(Severity::kNote)) +
         " note(s)\n";
  out += file;
  out += ": termination: " + report.certificate.ToString() + "\n";
  return out;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* kHex = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xf];
          out += kHex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string RenderJson(const AnalysisReport& report, std::string_view file) {
  std::string out = "{\"file\":\"" + JsonEscape(file) + "\",";
  out += "\"diagnostics\":[";
  for (std::size_t i = 0; i < report.diagnostics.size(); ++i) {
    const Diagnostic& d = report.diagnostics[i];
    if (i > 0) out += ',';
    out += "{\"id\":\"" + JsonEscape(d.id) + "\",";
    out += "\"severity\":\"" + std::string(SeverityName(d.severity)) + "\",";
    out += "\"line\":" + std::to_string(d.span.line) + ",";
    out += "\"column\":" + std::to_string(d.span.column) + ",";
    out += "\"message\":\"" + JsonEscape(d.message) + "\"";
    if (!d.hint.empty()) out += ",\"hint\":\"" + JsonEscape(d.hint) + "\"";
    out += '}';
  }
  out += "],";
  out += "\"certificate\":{\"criterion\":\"";
  out += TerminationCriterionName(report.certificate.criterion);
  out += "\",\"guarantees_termination\":";
  out += report.certificate.guarantees_termination() ? "true" : "false";
  if (!report.certificate.witness.empty()) {
    out += ",\"witness\":\"" + JsonEscape(report.certificate.witness) + "\"";
  }
  out += "},";
  out += "\"errors\":" + std::to_string(report.CountOf(Severity::kError)) +
         ",\"warnings\":" +
         std::to_string(report.CountOf(Severity::kWarning)) +
         ",\"notes\":" + std::to_string(report.CountOf(Severity::kNote)) +
         "}";
  return out;
}

}  // namespace tdx
