// Termination certificates: the decidable chase-termination ladder.
//
// The paper restricts itself to s-t tgds and egds precisely because every
// chase sequence then terminates (Section 1); the tdx target-tgd extension
// re-admits non-termination, which must be ruled out *statically*. Grahne &
// Onet ("Anatomy of the chase") survey a hierarchy of decidable criteria;
// tdx implements the three most useful rungs (see analysis/termination.h):
//
//   rich acyclicity  ⊂  weak acyclicity  ⊂  stratification
//
// A TerminationCertificate records which rung certified a mapping (or that
// none did, together with a witness cycle). The certificate travels with
// the Mapping, is recorded in ChaseStats by every engine run, and lets the
// engines skip re-deriving the check on every invocation.
//
// This header is deliberately a leaf (no dependency on relational/): the
// certificate type is embedded in Mapping and ChaseStats, which live below
// the analysis pass that computes it.

#ifndef TDX_ANALYSIS_CERTIFICATE_H_
#define TDX_ANALYSIS_CERTIFICATE_H_

#include <string>
#include <string_view>

namespace tdx {

/// The rung of the termination ladder that certified a set of target tgds,
/// ordered from strongest guarantee to none.
enum class TerminationCriterion {
  /// No target tgds at all: the paper's own fragment; chase always
  /// terminates regardless of anything else.
  kNoTargetTgds,
  /// Richly acyclic: no cycle through a special edge in the *extended*
  /// dependency graph (special edges from every body position). Even the
  /// oblivious (unrestricted) chase terminates.
  kRichlyAcyclic,
  /// Weakly acyclic (Fagin, Kolaitis, Miller, Popa): no cycle through a
  /// special edge in the dependency graph. Every standard/restricted chase
  /// sequence terminates.
  kWeaklyAcyclic,
  /// Stratified: the dependencies partition into strata (SCCs of the
  /// firing-precedence graph) each of which is weakly acyclic on its own.
  /// Every chase sequence still terminates, but no polynomial bound from a
  /// single dependency graph applies.
  kStratified,
  /// No criterion on the ladder applies; the chase may diverge.
  kUnknown,
};

/// Stable lower-case token for a criterion ("weakly-acyclic", ...).
std::string_view TerminationCriterionName(TerminationCriterion c);

/// The result of running the termination ladder over a set of target tgds.
struct TerminationCertificate {
  TerminationCriterion criterion = TerminationCriterion::kNoTargetTgds;
  /// When criterion == kUnknown: a human-readable description of the
  /// offending position cycle (e.g. "N.y -*-> N.y"). Otherwise empty or a
  /// short note on what was certified.
  std::string witness;

  /// True iff every chase sequence with these target tgds terminates.
  bool guarantees_termination() const {
    return criterion != TerminationCriterion::kUnknown;
  }

  /// "weakly-acyclic" or "unknown (cycle: ...)".
  std::string ToString() const;
};

}  // namespace tdx

#endif  // TDX_ANALYSIS_CERTIFICATE_H_
