// The position/dependency graph of a set of tgds — the shared artifact
// behind every rung of the termination ladder (analysis/termination.h) and
// behind CheckWeaklyAcyclic's cycle reporting.
//
// Nodes are *positions* (relation, attribute index). For every tgd and
// every universally quantified variable x occurring in the head, there is a
// regular edge from each body position of x to each head position of x, and
// a special edge from each body position of x to each head position of
// every existentially quantified variable (Fagin, Kolaitis, Miller, Popa).
//
// The *extended* graph of rich acyclicity additionally draws special edges
// from every body position of every universal variable — exported to the
// head or not — so that even the oblivious chase (which fires triggers
// without the no-extension check) is covered.
//
// A set of tgds is weakly (richly) acyclic iff the (extended) graph has no
// cycle through a special edge; FindSpecialCycle produces the concrete
// offending cycle, which the diagnostics name position by position.

#ifndef TDX_ANALYSIS_POSITION_GRAPH_H_
#define TDX_ANALYSIS_POSITION_GRAPH_H_

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "src/relational/dependency.h"

namespace tdx {

/// A cycle through at least one special edge, as a closed walk of node ids:
/// nodes[0] -> nodes[1] -> ... -> nodes[back] -> nodes[0], where the first
/// hop nodes[0] -> nodes[1] is the special edge that makes the cycle fatal.
struct SpecialCycle {
  std::vector<std::size_t> nodes;
  /// Index into the tgd vector of the dependency that contributed the
  /// special edge (for labeling diagnostics).
  std::size_t tgd_index = 0;
};

class PositionGraph {
 public:
  /// Which edge semantics to build; see file comment.
  enum class Kind { kWeak, kRich };

  struct Node {
    RelationId rel = 0;
    std::size_t attr = 0;
  };

  struct Edge {
    std::size_t to = 0;
    bool special = false;
    std::size_t tgd_index = 0;  ///< which tgd contributed the edge
  };

  /// Builds the graph over all positions of `schema` from `tgds`.
  static PositionGraph Build(const std::vector<Tgd>& tgds,
                             const Schema& schema, Kind kind = Kind::kWeak);

  std::size_t node_count() const { return nodes_.size(); }
  const Node& node(std::size_t id) const { return nodes_[id]; }
  const std::vector<Edge>& out_edges(std::size_t id) const {
    return adjacency_[id];
  }
  std::size_t edge_count() const { return edge_count_; }

  /// "R.attr" using the schema's relation and attribute names.
  std::string NodeName(const Schema& schema, std::size_t id) const;

  /// The smallest witness that the graph is not (weakly/richly, per its
  /// Kind) acyclic: a cycle through a special edge. nullopt iff acyclic.
  std::optional<SpecialCycle> FindSpecialCycle() const;

  /// Renders a cycle as "R.a -*-> S.b -> R.a" ("-*->" marks the special
  /// edge; the walk is closed back to its first node).
  std::string FormatCycle(const Schema& schema, const SpecialCycle& c) const;

 private:
  std::vector<Node> nodes_;
  std::vector<std::vector<Edge>> adjacency_;
  std::size_t edge_count_ = 0;
};

}  // namespace tdx

#endif  // TDX_ANALYSIS_POSITION_GRAPH_H_
