#include "src/temporal/abstract_instance.h"

#include <algorithm>

namespace tdx {

Status AbstractInstance::ValidateCover() const {
  if (pieces_.empty()) {
    return Status::InvalidArgument("abstract instance has no pieces");
  }
  if (pieces_.front().span.start() != 0) {
    return Status::InvalidArgument("first piece must start at time 0");
  }
  if (!pieces_.back().span.unbounded()) {
    return Status::InvalidArgument(
        "last piece must be unbounded (finite change condition)");
  }
  for (std::size_t i = 1; i < pieces_.size(); ++i) {
    if (pieces_[i].span.start() != pieces_[i - 1].span.end()) {
      return Status::InvalidArgument("pieces must be contiguous");
    }
  }
  for (const AbstractPiece& piece : pieces_) {
    Status status = Status::OK();
    piece.snapshot.ForEach([&](FactView fact) {
      if (!status.ok()) return;
      for (const Value& v : fact.args()) {
        if (v.is_annotated_null() && !v.interval().Contains(piece.span)) {
          status = Status::InvalidArgument(
              "annotated null's annotation " + v.interval().ToString() +
              " does not contain its piece span " + piece.span.ToString());
        }
      }
    });
    if (!status.ok()) return status;
  }
  return Status::OK();
}

Result<AbstractInstance> AbstractInstance::FromConcrete(
    const ConcreteInstance& ic) {
  const Schema& schema = ic.schema();
  std::vector<TimePoint> boundaries = ic.Endpoints();
  if (boundaries.empty() || boundaries.front() != 0) {
    boundaries.insert(boundaries.begin(), 0);
  }

  AbstractInstance out(&schema);
  for (std::size_t i = 0; i < boundaries.size(); ++i) {
    const Interval span = (i + 1 < boundaries.size())
                              ? Interval(boundaries[i], boundaries[i + 1])
                              : Interval::FromStart(boundaries[i]);
    Instance snapshot(&schema);
    Status status = Status::OK();
    ic.facts().ForEach([&](FactView fact) {
      if (!status.ok()) return;
      // Spans are cut at every fact endpoint, so a fact interval either
      // contains the span or is disjoint from it.
      if (!fact.interval().Contains(span.start())) return;
      Result<RelationId> twin = schema.TwinOf(fact.relation());
      if (!twin.ok()) {
        status = twin.status();
        return;
      }
      std::vector<Value> args(fact.args().begin(), fact.args().end() - 1);
      snapshot.Insert(Fact(*twin, std::move(args)));
    });
    if (!status.ok()) return status;
    out.AddPiece(span, std::move(snapshot));
  }
  return out;
}

Instance AbstractInstance::At(TimePoint l, Universe* universe) const {
  for (const AbstractPiece& piece : pieces_) {
    if (!piece.span.Contains(l)) continue;
    Instance out(schema_);
    piece.snapshot.ForEach([&](FactView fact) {
      std::vector<Value> args;
      args.reserve(fact.arity());
      for (const Value& v : fact.args()) {
        args.push_back(v.is_annotated_null() ? universe->ProjectNull(v, l)
                                             : v);
      }
      out.Insert(Fact(fact.relation(), std::move(args)));
    });
    return out;
  }
  // Not covered (ValidateCover would have failed); empty snapshot.
  return Instance(schema_);
}

std::vector<TimePoint> AbstractInstance::Boundaries() const {
  std::vector<TimePoint> out;
  out.reserve(pieces_.size());
  for (const AbstractPiece& piece : pieces_) out.push_back(piece.span.start());
  return out;
}

AbstractInstance AbstractInstance::RefinedAt(
    const std::vector<TimePoint>& cuts) const {
  AbstractInstance out(schema_);
  for (const AbstractPiece& piece : pieces_) {
    for (const Interval& sub : FragmentInterval(piece.span, cuts)) {
      out.AddPiece(sub, piece.snapshot);
    }
  }
  return out;
}

std::vector<TimePoint> AbstractInstance::Representatives() const {
  return Boundaries();
}

std::string AbstractInstance::ToString(const Universe& u) const {
  std::string out;
  for (const AbstractPiece& piece : pieces_) {
    out += piece.span.ToString();
    out += ":\n";
    std::string body = piece.snapshot.ToString(u);
    if (body.empty()) body = "(empty)\n";
    // indent
    std::size_t pos = 0;
    while (pos < body.size()) {
      std::size_t nl = body.find('\n', pos);
      if (nl == std::string::npos) nl = body.size();
      out += "  " + body.substr(pos, nl - pos) + "\n";
      pos = nl + 1;
    }
  }
  return out;
}

std::pair<AbstractInstance, AbstractInstance> AlignPieces(
    const AbstractInstance& a, const AbstractInstance& b) {
  std::vector<TimePoint> cuts = a.Boundaries();
  const std::vector<TimePoint> more = b.Boundaries();
  cuts.insert(cuts.end(), more.begin(), more.end());
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
  return {a.RefinedAt(cuts), b.RefinedAt(cuts)};
}

}  // namespace tdx
