#include "src/temporal/abstract_hom.h"

#include <unordered_map>
#include <unordered_set>

#include "src/relational/homomorphism.h"

namespace tdx {

namespace {

/// Per-piece symbolic conjunction: which variable stands for which null.
struct PieceProblem {
  Conjunction conj;
  /// Local var -> the labeled null id it stands for (only for labeled nulls
  /// of the domain; annotated nulls are piece-local and unconstrained).
  std::vector<std::pair<VarId, NullId>> labeled_vars;
};

PieceProblem BuildPieceProblem(const Instance& snapshot) {
  PieceProblem problem;
  std::unordered_map<Value, VarId, ValueHash> var_of;
  snapshot.ForEach([&](FactView fact) {
    Atom atom;
    atom.rel = fact.relation();
    for (const Value& v : fact.args()) {
      if (v.is_any_null()) {
        auto [it, inserted] = var_of.emplace(
            v, static_cast<VarId>(var_of.size()));
        if (inserted && v.is_null()) {
          problem.labeled_vars.emplace_back(it->second, v.null_id());
        }
        atom.terms.push_back(Term::Var(it->second));
      } else {
        atom.terms.push_back(Term::Val(v));
      }
    }
    problem.conj.atoms.push_back(std::move(atom));
  });
  problem.conj.num_vars = var_of.size();
  return problem;
}

class AbstractHomSearch {
 public:
  AbstractHomSearch(const AbstractInstance& from, const AbstractInstance& to)
      : from_(&from), to_(&to) {
    // A labeled null may take an annotated (projected) image only when it
    // occupies a single snapshot: exactly one piece, of span length 1.
    std::unordered_map<NullId, std::pair<std::size_t, std::size_t>>
        occurrence;  // null -> (#pieces it occurs in, index of last one)
    for (std::size_t i = 0; i < from.pieces().size(); ++i) {
      std::unordered_set<NullId> here;
      from.pieces()[i].snapshot.ForEach([&](FactView fact) {
        for (const Value& v : fact.args()) {
          if (v.is_null()) here.insert(v.null_id());
        }
      });
      for (NullId n : here) {
        auto [it, inserted] = occurrence.emplace(n, std::make_pair(1u, i));
        if (!inserted) {
          ++it->second.first;
          it->second.second = i;
        }
      }
    }
    for (const auto& [n, occ] : occurrence) {
      const auto& [count, piece] = occ;
      const auto len = from.pieces()[piece].span.length();
      if (count == 1 && len.has_value() && *len == 1) {
        single_snapshot_nulls_.insert(n);
      }
    }
  }

  bool Run() { return SearchPiece(0); }

 private:
  bool SearchPiece(std::size_t i) {
    if (i == from_->pieces().size()) return true;
    PieceProblem problem = BuildPieceProblem(from_->pieces()[i].snapshot);
    Binding initial(problem.conj.num_vars);
    for (const auto& [var, null] : problem.labeled_vars) {
      auto it = global_.find(null);
      if (it != global_.end()) initial.Bind(var, it->second);
    }
    HomomorphismFinder finder(to_->pieces()[i].snapshot);
    bool found = false;
    finder.ForEach(
        problem.conj, std::move(initial),
        [&](const Binding& binding, const AtomImage&) {
          // Validate and collect global extensions for labeled nulls.
          std::vector<NullId> added;
          bool valid = true;
          for (const auto& [var, null] : problem.labeled_vars) {
            const Value& image = binding.Get(var);
            if (image.is_annotated_null() &&
                single_snapshot_nulls_.count(null) == 0) {
              valid = false;  // would violate condition 2 across snapshots
              break;
            }
            if (global_.count(null) == 0) {
              global_.emplace(null, image);
              added.push_back(null);
            }
          }
          if (valid && SearchPiece(i + 1)) found = true;
          for (NullId n : added) global_.erase(n);
          return !found;  // stop enumeration once a full hom is found
        });
    return found;
  }

  const AbstractInstance* from_;
  const AbstractInstance* to_;
  std::unordered_map<NullId, Value> global_;
  std::unordered_set<NullId> single_snapshot_nulls_;
};

}  // namespace

bool AbstractHomomorphismExists(const AbstractInstance& from,
                                const AbstractInstance& to) {
  auto [a, b] = AlignPieces(from, to);
  assert(a.pieces().size() == b.pieces().size());
  return AbstractHomSearch(a, b).Run();
}

bool AreAbstractEquivalent(const AbstractInstance& a,
                           const AbstractInstance& b) {
  return AbstractHomomorphismExists(a, b) &&
         AbstractHomomorphismExists(b, a);
}

}  // namespace tdx
