// Coalescing of concrete instances (Section 2; Boehlen, Snodgrass, Soo,
// VLDB 1996).
//
// A concrete instance is coalesced if facts with identical data attribute
// values have pairwise disjoint and non-adjacent time intervals. Every
// abstract database is represented by a unique coalesced concrete database;
// coalescing is therefore the canonicalization step that makes concrete
// instances comparable and keeps normalization output compact.
//
// Facts are grouped by (relation, data values) — annotated nulls compare by
// null id, since fragments of one annotated null denote the same underlying
// sequence of labeled nulls — and mergeable (overlapping or adjacent)
// intervals within a group are united by a sort-and-sweep pass.

#ifndef TDX_TEMPORAL_COALESCE_H_
#define TDX_TEMPORAL_COALESCE_H_

#include "src/temporal/concrete_instance.h"

namespace tdx {

/// Returns the coalesced form of `instance`. Semantics-preserving:
/// [[Coalesce(I)]] = [[I]] (exercised by property tests).
ConcreteInstance Coalesce(const ConcreteInstance& instance);

}  // namespace tdx

#endif  // TDX_TEMPORAL_COALESCE_H_
