#include "src/temporal/semantic_diff.h"

#include <algorithm>

namespace tdx {

namespace {

/// Facts of `x` missing from `y`, rendered deterministically.
std::vector<std::string> MissingFrom(const Instance& x, const Instance& y,
                                     const Schema& schema,
                                     const Universe& u) {
  std::vector<std::string> out;
  x.ForEach([&](FactView f) {
    if (!y.Contains(f)) out.push_back(f.ToString(schema, u));
  });
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

std::string SemanticDiffResult::ToString() const {
  std::string out;
  for (const DiffSpan& span : spans) {
    out += span.span.ToString() + ":\n";
    for (const std::string& fact : span.only_in_a) {
      out += "  - " + fact + "\n";
    }
    for (const std::string& fact : span.only_in_b) {
      out += "  + " + fact + "\n";
    }
  }
  return out;
}

Result<SemanticDiffResult> SemanticDiff(const ConcreteInstance& a,
                                        const ConcreteInstance& b,
                                        Universe* universe) {
  if (&a.schema() != &b.schema()) {
    return Status::InvalidArgument(
        "semantic diff requires instances over one Schema object");
  }
  TDX_ASSIGN_OR_RETURN(AbstractInstance abs_a,
                       AbstractInstance::FromConcrete(a));
  TDX_ASSIGN_OR_RETURN(AbstractInstance abs_b,
                       AbstractInstance::FromConcrete(b));
  auto [ra, rb] = AlignPieces(abs_a, abs_b);

  SemanticDiffResult result;
  for (std::size_t i = 0; i < ra.pieces().size(); ++i) {
    const Interval& span = ra.pieces()[i].span;
    // Compare one representative snapshot per aligned piece; within a
    // piece the template is constant, so one point decides the whole run.
    const Instance snap_a = ra.At(span.start(), universe);
    const Instance snap_b = rb.At(span.start(), universe);
    if (snap_a == snap_b) continue;
    DiffSpan diff{span,
                  MissingFrom(snap_a, snap_b, a.schema(), *universe),
                  MissingFrom(snap_b, snap_a, a.schema(), *universe)};
    // Merge with the previous span when adjacent and identical in content
    // (maximal runs).
    if (!result.spans.empty() &&
        result.spans.back().span.AdjacentTo(span) &&
        result.spans.back().only_in_a == diff.only_in_a &&
        result.spans.back().only_in_b == diff.only_in_b) {
      result.spans.back().span = result.spans.back().span.MergeWith(span);
    } else {
      result.spans.push_back(std::move(diff));
    }
  }
  return result;
}

}  // namespace tdx
