// Timeline: a set of time points represented as disjoint, non-adjacent,
// sorted intervals — the canonical "finite union of intervals" that
// temporal databases compute with.
//
// Timelines answer questions the paper's machinery keeps re-deriving ad
// hoc: when does a tuple hold (the union of its fact intervals)? when do
// two histories overlap (intersection)? when is a fact missing
// (complement)? The temporal-operator closures of Section 7's extension
// are one-liner timeline computations, and the test suite uses timelines
// as an independent oracle for coalescing.
//
// Representation invariant: intervals are sorted by start, pairwise
// disjoint, and non-adjacent (maximal runs). All operations preserve it.

#ifndef TDX_TEMPORAL_TIMELINE_H_
#define TDX_TEMPORAL_TIMELINE_H_

#include <optional>
#include <string>
#include <vector>

#include "src/common/interval.h"

namespace tdx {

class Timeline {
 public:
  /// The empty set of time points.
  Timeline() = default;

  /// Normalizes arbitrary intervals into a timeline (sort + merge).
  static Timeline FromIntervals(std::vector<Interval> intervals);

  /// All of time: [0, inf).
  static Timeline All() { return FromIntervals({Interval::FromStart(0)}); }

  bool empty() const { return runs_.empty(); }
  const std::vector<Interval>& runs() const { return runs_; }

  bool Contains(TimePoint t) const;
  /// Number of time points; nullopt when unbounded.
  std::optional<std::uint64_t> Cardinality() const;
  /// First / last+1 covered points; nullopt when empty (Max: or unbounded).
  std::optional<TimePoint> Min() const;
  std::optional<TimePoint> Max() const;

  /// Inserts more points (set union with one interval).
  void Add(const Interval& iv);

  Timeline Union(const Timeline& other) const;
  Timeline Intersect(const Timeline& other) const;
  /// Points of this timeline not in `other`.
  Timeline Difference(const Timeline& other) const;
  /// [0, inf) minus this timeline.
  Timeline Complement() const;

  /// The maximal uncovered runs strictly between Min() and Max() (the
  /// "gaps"); empty for timelines with at most one run.
  Timeline Gaps() const;

  friend bool operator==(const Timeline& a, const Timeline& b) {
    return a.runs_ == b.runs_;
  }
  friend bool operator!=(const Timeline& a, const Timeline& b) {
    return !(a == b);
  }

  /// "{[1, 3), [5, inf)}" or "{}".
  std::string ToString() const;

 private:
  std::vector<Interval> runs_;
};

}  // namespace tdx

#endif  // TDX_TEMPORAL_TIMELINE_H_
