// The semantics function [[.]]: from concrete instances to snapshots.
//
// Section 2 (complete instances) and Section 4.1 (instances with
// interval-annotated nulls) define
//
//   db_l = { R(a, proj_l(N^[s,e)))  |  R+(a, N^[s,e), [s,e)) in Ic,
//                                      s <= l < e }
//
// SnapshotAt materializes db_l over the *snapshot twins* of the concrete
// relations (R for R+). Projection of annotated nulls goes through
// Universe::ProjectNull, so repeated materializations are consistent: the
// same annotated null at the same time point always yields the same labeled
// null — this is what makes [[.]] a function.

#ifndef TDX_TEMPORAL_SNAPSHOT_H_
#define TDX_TEMPORAL_SNAPSHOT_H_

#include "src/common/status.h"
#include "src/temporal/concrete_instance.h"

namespace tdx {

/// Materializes the snapshot db_l of [[instance]] over the snapshot twin
/// relations. Fails with NotFound if some concrete relation lacks a twin.
Result<Instance> SnapshotAt(const ConcreteInstance& instance, TimePoint l,
                            Universe* universe);

}  // namespace tdx

#endif  // TDX_TEMPORAL_SNAPSHOT_H_
