// The abstract chase (Section 3).
//
// Because the s-t tgds and egds are non-temporal, the chase applies to each
// snapshot independently:
//
//   chase(Ia, M) = <chase(db0, M), chase(db1, M), ...>
//
// with fresh labeled nulls per snapshot: the nulls produced in one snapshot
// are distinct from those in every other snapshot. If any snapshot's chase
// fails, the whole abstract chase fails (and by Proposition 4(2) there is no
// solution).
//
// Two implementations:
//
//  * AbstractChase — compact: chases each *piece* once (snapshots within a
//    piece are identical, so their chases are isomorphic) and re-labels the
//    fresh nulls as interval-annotated nulls spanning the piece, which is
//    exactly "a different null per snapshot" under the [[.]] semantics.
//    This is the conceptual bridge to the c-chase.
//
//  * ChaseSnapshotAt — ground truth for testing: materializes db_l and
//    chases it directly with genuinely fresh labeled nulls.

#ifndef TDX_TEMPORAL_ABSTRACT_CHASE_H_
#define TDX_TEMPORAL_ABSTRACT_CHASE_H_

#include "src/relational/chase.h"
#include "src/temporal/abstract_instance.h"

namespace tdx {

struct AbstractChaseOptions {
  /// Per-piece snapshot-chase knobs (budget, semi-naive rounds).
  ChaseOptions chase;
  /// Number of pieces chased concurrently. 1 (the default) is the exact
  /// sequential engine. With jobs > 1 every piece is chased against a
  /// scratch Universe on a pool thread and the results are merged — stats
  /// aggregated, nulls re-labeled from the shared universe — sequentially
  /// in piece order, so the outcome is deterministic and independent of
  /// scheduling: identical to the sequential result up to the names of the
  /// labeled nulls consumed mid-chase (the final target's annotated nulls
  /// are assigned in the same piece order either way).
  unsigned jobs = 1;
  /// Checkpoint/resume hooks; see ChaseOptions for the contract. The single
  /// safe point is "pieces": after each piece is merged (even under
  /// parallel execution the merge is sequential in piece order, so per-piece
  /// checkpoints are deterministic). The hooks on `chase` are ignored —
  /// per-piece chases always run with them cleared; resuming restores the
  /// merged prefix and re-chases only the remaining pieces.
  Checkpointer* checkpointer = nullptr;
  const ChaseCheckpoint* resume_from = nullptr;
};

struct AbstractChaseOutcome {
  explicit AbstractChaseOutcome(AbstractInstance target_in)
      : target(std::move(target_in)) {}

  ChaseResultKind kind = ChaseResultKind::kSuccess;
  AbstractInstance target;
  /// Span of the piece whose chase failed or aborted (meaningful iff
  /// kind != kSuccess).
  std::optional<Interval> failure_span;
  /// Aggregated over all pieces.
  ChaseStats stats;
  /// The exhausted budget dimension and its description when kAborted.
  ResourceDimension abort_dimension = ResourceDimension::kNone;
  std::string abort_reason;
};

/// Chases every piece of a *complete* abstract source instance with the
/// non-temporal mapping. Returns InvalidArgument if some piece contains
/// nulls (the paper assumes complete sources). `limits` applies to each
/// per-piece snapshot chase independently; the first piece to exhaust its
/// budget aborts the whole abstract chase (kind == kAborted, failure_span =
/// that piece's span).
Result<AbstractChaseOutcome> AbstractChase(const AbstractInstance& source,
                                           const Mapping& mapping,
                                           Universe* universe,
                                           const ChaseLimits& limits = {});

/// Same, with execution knobs (parallel pieces, semi-naive rounds).
Result<AbstractChaseOutcome> AbstractChase(const AbstractInstance& source,
                                           const Mapping& mapping,
                                           Universe* universe,
                                           const AbstractChaseOptions& options);

/// Materializes db_l of `source` and chases it. Ground truth for property
/// tests comparing against the compact implementations.
Result<ChaseOutcome> ChaseSnapshotAt(const AbstractInstance& source,
                                     TimePoint l, const Mapping& mapping,
                                     Universe* universe);

}  // namespace tdx

#endif  // TDX_TEMPORAL_ABSTRACT_CHASE_H_
