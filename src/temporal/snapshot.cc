#include "src/temporal/snapshot.h"

namespace tdx {

Result<Instance> SnapshotAt(const ConcreteInstance& instance, TimePoint l,
                            Universe* universe) {
  const Schema& schema = instance.schema();
  Instance out(&schema);
  Status status = Status::OK();
  instance.facts().ForEach([&](FactView fact) {
    if (!status.ok()) return;
    if (!fact.interval().Contains(l)) return;
    Result<RelationId> twin = schema.TwinOf(fact.relation());
    if (!twin.ok()) {
      status = twin.status();
      return;
    }
    std::vector<Value> args;
    args.reserve(fact.arity() - 1);
    for (std::size_t i = 0; i + 1 < fact.arity(); ++i) {
      const Value& v = fact.arg(i);
      args.push_back(v.is_annotated_null() ? universe->ProjectNull(v, l) : v);
    }
    out.Insert(Fact(*twin, std::move(args)));
  });
  if (!status.ok()) return status;
  return out;
}

}  // namespace tdx
