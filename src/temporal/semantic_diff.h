// Semantic (snapshot-wise) comparison of concrete instances.
//
// Two concrete instances are semantically equal iff their abstract views
// coincide at every time point — regardless of how the facts are
// fragmented or ordered. SemanticDiff reports WHERE two instances differ:
// the maximal runs of snapshots with a difference, plus the facts present
// on only one side in each run (null-insensitive comparison uses
// homomorphic equivalence instead; this diff is for complete instances and
// for exact comparisons of chase outputs under one Universe).
//
// Used by tests to produce actionable failure messages and by the CLI's
// `diff` command to compare the solutions of two program files.

#ifndef TDX_TEMPORAL_SEMANTIC_DIFF_H_
#define TDX_TEMPORAL_SEMANTIC_DIFF_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/temporal/abstract_instance.h"

namespace tdx {

/// One maximal run of snapshots on which the two instances differ.
struct DiffSpan {
  Interval span;
  /// Facts of the snapshot of `a` not in the snapshot of `b`, rendered.
  std::vector<std::string> only_in_a;
  /// Facts of the snapshot of `b` not in the snapshot of `a`, rendered.
  std::vector<std::string> only_in_b;
};

struct SemanticDiffResult {
  std::vector<DiffSpan> spans;
  bool equal() const { return spans.empty(); }
  /// Multi-line human-readable report; empty string when equal.
  std::string ToString() const;
};

/// Compares [[a]] and [[b]] snapshot-wise. Instances must share a Schema;
/// values are compared exactly (constants by identity, nulls by identity),
/// so this is an EXACT semantic diff, not an up-to-renaming equivalence —
/// use AreAbstractEquivalent for the latter.
Result<SemanticDiffResult> SemanticDiff(const ConcreteInstance& a,
                                        const ConcreteInstance& b,
                                        Universe* universe);

}  // namespace tdx

#endif  // TDX_TEMPORAL_SEMANTIC_DIFF_H_
