// Concrete temporal instances.
//
// The concrete view (Section 2) summarizes temporal data in a single
// database instance over R+ in which every fact is stamped with the time
// interval during which it holds: R+(a1, ..., an, [s, e)). A ConcreteInstance
// wraps a relational Instance whose facts all belong to temporal relations
// and enforces the representation invariants:
//
//  * every fact's last argument is an interval value (the paper's f[T]);
//  * every interval-annotated null occurring among the data arguments is
//    annotated with exactly the fact's time interval (Section 4.2, after
//    Example 12: "the annotation is always equal to the time interval of
//    the fact the interval-annotated null occurs in").
//
// Source instances are complete (constants and intervals only); target
// instances produced by the c-chase additionally contain interval-annotated
// nulls.

#ifndef TDX_TEMPORAL_CONCRETE_INSTANCE_H_
#define TDX_TEMPORAL_CONCRETE_INSTANCE_H_

#include <vector>

#include "src/common/status.h"
#include "src/relational/instance.h"

namespace tdx {

class ConcreteInstance {
 public:
  explicit ConcreteInstance(const Schema* schema) : facts_(schema) {}
  /// Wraps an existing relational instance. Call Validate() to check the
  /// representation invariants.
  explicit ConcreteInstance(Instance instance) : facts_(std::move(instance)) {}

  const Schema& schema() const { return facts_.schema(); }
  const Instance& facts() const { return facts_; }
  Instance& mutable_facts() { return facts_; }

  /// Adds the fact rel(data..., iv). Returns InvalidArgument if `rel` is not
  /// temporal, the arity is wrong, or a data value is an interval or a
  /// mis-annotated null. Duplicate facts are silently ignored.
  Status Add(RelationId rel, std::vector<Value> data, const Interval& iv);

  /// Checks every stored fact against the representation invariants.
  Status Validate() const;

  /// True if the instance contains no nulls of either kind (the paper's
  /// "complete" instances; source instances must be complete).
  bool IsComplete() const;

  /// Distinct finite endpoints of all fact intervals, sorted ascending.
  std::vector<TimePoint> Endpoints() const;

  /// A time point m such that every snapshot db_l with l >= m is equal to
  /// db_m (the finite change condition, Section 2). Returns the largest
  /// finite endpoint, or 0 for an empty instance.
  TimePoint StabilizationPoint() const;

  /// True if facts with identical data attribute values have pairwise
  /// disjoint and non-adjacent time intervals (Section 2). Annotated nulls
  /// are compared by null id, ignoring annotation, since fragments of one
  /// null denote the same underlying sequence.
  bool IsCoalesced() const;

  std::size_t size() const { return facts_.size(); }
  bool empty() const { return facts_.empty(); }

  std::string ToString(const Universe& u) const { return facts_.ToString(u); }

 private:
  Instance facts_;
};

}  // namespace tdx

#endif  // TDX_TEMPORAL_CONCRETE_INSTANCE_H_
