#include "src/temporal/concrete_instance.h"

#include <algorithm>
#include <map>

namespace tdx {

namespace {

Status CheckFact(const Schema& schema, FactView fact) {
  const RelationSchema& rel = schema.relation(fact.relation());
  if (!rel.temporal) {
    return Status::InvalidArgument("relation '" + rel.name +
                                   "' is not temporal");
  }
  if (fact.arity() != rel.arity()) {
    return Status::InvalidArgument("fact over '" + rel.name +
                                   "' has wrong arity");
  }
  if (!fact.arg(rel.temporal_position()).is_interval()) {
    return Status::InvalidArgument(
        "fact over '" + rel.name +
        "' must carry an interval in the temporal attribute");
  }
  const Interval& iv = fact.interval();
  for (std::size_t i = 0; i + 1 < fact.arity(); ++i) {
    const Value& v = fact.arg(i);
    if (v.is_interval()) {
      return Status::InvalidArgument(
          "data attributes of '" + rel.name + "' must not hold intervals");
    }
    if (v.is_null()) {
      return Status::InvalidArgument(
          "concrete facts must use interval-annotated nulls, not plain "
          "labeled nulls");
    }
    if (v.is_annotated_null() && v.interval() != iv) {
      return Status::InvalidArgument(
          "annotated null in a fact over '" + rel.name +
          "' must be annotated with the fact's own interval " + iv.ToString() +
          ", got " + v.interval().ToString());
    }
  }
  return Status::OK();
}

}  // namespace

Status ConcreteInstance::Add(RelationId rel, std::vector<Value> data,
                             const Interval& iv) {
  data.push_back(Value::OfInterval(iv));
  Fact fact(rel, std::move(data));
  TDX_RETURN_IF_ERROR(CheckFact(schema(), fact.View()));
  facts_.Insert(std::move(fact));
  return Status::OK();
}

Status ConcreteInstance::Validate() const {
  Status status = Status::OK();
  facts_.ForEach([&](FactView fact) {
    if (!status.ok()) return;
    status = CheckFact(schema(), fact);
  });
  return status;
}

bool ConcreteInstance::IsComplete() const {
  bool complete = true;
  facts_.ForEach([&](FactView fact) {
    for (const Value& v : fact.args()) {
      if (v.is_any_null()) complete = false;
    }
  });
  return complete;
}

std::vector<TimePoint> ConcreteInstance::Endpoints() const {
  std::vector<Interval> ivs;
  ivs.reserve(facts_.size());
  facts_.ForEach([&](FactView fact) { ivs.push_back(fact.interval()); });
  return DistinctFiniteEndpoints(ivs);
}

TimePoint ConcreteInstance::StabilizationPoint() const {
  const std::vector<TimePoint> endpoints = Endpoints();
  return endpoints.empty() ? 0 : endpoints.back();
}

bool ConcreteInstance::IsCoalesced() const {
  // Group intervals by (relation, data values with annotated nulls reduced
  // to their ids); within each group no two intervals may be mergeable.
  struct Key {
    RelationId rel;
    std::vector<Value> data;
    bool operator<(const Key& other) const {
      if (rel != other.rel) return rel < other.rel;
      return data < other.data;
    }
  };
  std::map<Key, std::vector<Interval>> groups;
  facts_.ForEach([&](FactView fact) {
    Key key{fact.relation(), {}};
    for (std::size_t i = 0; i + 1 < fact.arity(); ++i) {
      const Value& v = fact.arg(i);
      // Reduce annotated nulls to a canonical form so that fragments of the
      // same null sequence land in one group.
      key.data.push_back(v.is_annotated_null() ? Value::Null(v.null_id()) : v);
    }
    groups[std::move(key)].push_back(fact.interval());
  });
  for (auto& [key, ivs] : groups) {
    std::sort(ivs.begin(), ivs.end());
    for (std::size_t i = 1; i < ivs.size(); ++i) {
      if (ivs[i - 1].Mergeable(ivs[i])) return false;
    }
  }
  return true;
}

}  // namespace tdx
