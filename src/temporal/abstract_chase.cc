#include "src/temporal/abstract_chase.h"

#include <unordered_set>

namespace tdx {

Result<AbstractChaseOutcome> AbstractChase(const AbstractInstance& source,
                                           const Mapping& mapping,
                                           Universe* universe,
                                           const ChaseLimits& limits) {
  AbstractChaseOutcome outcome(AbstractInstance(&source.schema()));
  for (const AbstractPiece& piece : source.pieces()) {
    bool complete = true;
    piece.snapshot.ForEach([&](const Fact& fact) {
      for (const Value& v : fact.args()) {
        if (v.is_any_null()) complete = false;
      }
    });
    if (!complete) {
      return Status::InvalidArgument(
          "abstract chase requires a complete source instance");
    }

    TDX_ASSIGN_OR_RETURN(
        ChaseOutcome piece_outcome,
        ChaseSnapshot(piece.snapshot, mapping, universe, limits));
    outcome.stats.tgd_triggers += piece_outcome.stats.tgd_triggers;
    outcome.stats.tgd_fires += piece_outcome.stats.tgd_fires;
    outcome.stats.egd_steps += piece_outcome.stats.egd_steps;
    outcome.stats.fresh_nulls += piece_outcome.stats.fresh_nulls;
    if (piece_outcome.kind != ChaseResultKind::kSuccess) {
      outcome.kind = piece_outcome.kind;
      outcome.failure_span = piece.span;
      outcome.abort_dimension = piece_outcome.abort_dimension;
      outcome.abort_reason = std::move(piece_outcome.abort_reason);
      return outcome;
    }

    // Re-label the chase's fresh labeled nulls as interval-annotated nulls
    // spanning the piece: a distinct unknown at every snapshot (Section 3:
    // "the fresh labeled nulls produced in a snapshot are distinct from
    // those produced in the other snapshots").
    std::unordered_set<NullId> seen;
    std::vector<Value> to_replace;
    piece_outcome.target.ForEach([&](const Fact& fact) {
      for (const Value& v : fact.args()) {
        if (v.is_null() && seen.insert(v.null_id()).second) {
          to_replace.push_back(v);
        }
      }
    });
    Instance relabeled = std::move(piece_outcome.target);
    for (const Value& old_null : to_replace) {
      relabeled = relabeled.ReplaceValue(
          old_null, universe->FreshAnnotatedNull(piece.span));
    }
    outcome.target.AddPiece(piece.span, std::move(relabeled));
  }
  return outcome;
}

Result<ChaseOutcome> ChaseSnapshotAt(const AbstractInstance& source,
                                     TimePoint l, const Mapping& mapping,
                                     Universe* universe) {
  const Instance snapshot = source.At(l, universe);
  return ChaseSnapshot(snapshot, mapping, universe);
}

}  // namespace tdx
