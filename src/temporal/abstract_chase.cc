#include "src/temporal/abstract_chase.h"

#include <cstddef>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/analysis/planner.h"
#include "src/common/checkpoint.h"
#include "src/common/thread_pool.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace tdx {

namespace {

bool PieceIsComplete(const AbstractPiece& piece) {
  bool complete = true;
  piece.snapshot.ForEach([&](FactView fact) {
    for (const Value& v : fact.args()) {
      if (v.is_any_null()) complete = false;
    }
  });
  return complete;
}

/// The distinct labeled nulls of `target` in first-occurrence order (fact
/// order is deterministic, so this order is too).
std::vector<Value> CollectNulls(const Instance& target) {
  std::unordered_set<NullId> seen;
  std::vector<Value> out;
  target.ForEach([&](FactView fact) {
    for (const Value& v : fact.args()) {
      if (v.is_null() && seen.insert(v.null_id()).second) out.push_back(v);
    }
  });
  return out;
}

/// Re-labels the chase's fresh labeled nulls as interval-annotated nulls
/// spanning the piece: a distinct unknown at every snapshot (Section 3:
/// "the fresh labeled nulls produced in a snapshot are distinct from those
/// produced in the other snapshots"). One rebuild pass; the substitution is
/// injective over distinct nulls, so no facts collapse and per-relation
/// fact order is preserved — identical to replacing the nulls one at a time.
Instance RelabelNulls(Instance target, const std::vector<Value>& nulls,
                      const Interval& span, Universe* universe) {
  if (nulls.empty()) return target;
  std::unordered_map<Value, Value, ValueHash> subst;
  subst.reserve(nulls.size());
  for (const Value& old_null : nulls) {
    subst.emplace(old_null, universe->FreshAnnotatedNull(span));
  }
  Instance relabeled(&target.schema());
  std::vector<Value> args;
  target.ForEach([&](FactView fact) {
    args.clear();
    args.reserve(fact.arity());
    for (const Value& v : fact.args()) {
      auto it = subst.find(v);
      args.push_back(it == subst.end() ? v : it->second);
    }
    relabeled.InsertSpan(fact.relation(), args.data(), args.size());
  });
  return relabeled;
}

/// Folds one piece's chase result into the aggregate outcome. Returns true
/// to continue with the next piece, false when the piece failed or aborted
/// (the aggregate then carries the failure and later pieces are dropped,
/// exactly like the sequential engine that never ran them).
bool MergePiece(const AbstractPiece& piece, ChaseOutcome piece_outcome,
                Universe* universe, AbstractChaseOutcome* outcome) {
  outcome->stats.tgd_triggers += piece_outcome.stats.tgd_triggers;
  outcome->stats.tgd_fires += piece_outcome.stats.tgd_fires;
  outcome->stats.egd_steps += piece_outcome.stats.egd_steps;
  outcome->stats.fresh_nulls += piece_outcome.stats.fresh_nulls;
  outcome->stats.values_rewritten += piece_outcome.stats.values_rewritten;
  outcome->stats.skipped_egd_passes += piece_outcome.stats.skipped_egd_passes;
  outcome->stats.skipped_normalize_passes +=
      piece_outcome.stats.skipped_normalize_passes;
  outcome->stats.search += piece_outcome.stats.search;
  // Every piece chases the same mapping, so the stratum count is shared,
  // not additive.
  outcome->stats.schedule_strata = piece_outcome.stats.schedule_strata;
  if (piece_outcome.kind != ChaseResultKind::kSuccess) {
    outcome->kind = piece_outcome.kind;
    outcome->failure_span = piece.span;
    outcome->abort_dimension = piece_outcome.abort_dimension;
    outcome->abort_reason = std::move(piece_outcome.abort_reason);
    return false;
  }
  const std::vector<Value> nulls = CollectNulls(piece_outcome.target);
  outcome->target.AddPiece(
      piece.span, RelabelNulls(std::move(piece_outcome.target), nulls,
                               piece.span, universe));
  return true;
}

}  // namespace

Result<AbstractChaseOutcome> AbstractChase(const AbstractInstance& source,
                                           const Mapping& mapping,
                                           Universe* universe,
                                           const AbstractChaseOptions& options) {
  TDX_TRACE_SPAN("abstract.run");
  static obs::Counter runs_metric("abstract.runs");
  static obs::Counter pieces_metric("abstract.pieces_chased");
  static obs::Counter parallel_runs_metric("abstract.parallel_runs");
  runs_metric.Inc();
  AbstractChaseOutcome outcome(AbstractInstance(&source.schema()));
  const std::vector<AbstractPiece>& pieces = source.pieces();
  const bool parallel = options.jobs > 1 && pieces.size() > 1;
  if (parallel) parallel_runs_metric.Inc();
  const std::string config =
      std::string("engine=abstract semi-naive=") +
      (options.chase.semi_naive ? "1" : "0") + " parallel=" +
      (parallel ? "1" : "0");

  // Per-piece chases never checkpoint themselves: the abstract engine's
  // safe points sit between merged pieces, and a piece's chase is atomic.
  ChaseOptions piece_options = options.chase;
  piece_options.checkpointer = nullptr;
  piece_options.resume_from = nullptr;

  // Plan once, up front: every piece chases the same mapping, and a
  // schedule-less mapping would make each per-piece chase re-derive the
  // schedule from scratch.
  std::optional<Mapping> planned;
  if (piece_options.scheduled && !mapping.schedule.has_value()) {
    planned = mapping;
    planned->schedule = PlanChase(mapping, source.schema());
  }
  const Mapping& piece_mapping = planned.has_value() ? *planned : mapping;

  const ChaseCheckpoint* resume = options.resume_from;
  std::size_t start = 0;
  if (resume != nullptr) {
    if (resume->engine != ChaseCheckpoint::Engine::kAbstract) {
      return Status::InvalidArgument(
          "checkpoint was written by a different engine");
    }
    if (resume->config != config) {
      return Status::InvalidArgument(
          "checkpoint execution options mismatch: expected \"" + config +
          "\", checkpoint has \"" + resume->config + "\"");
    }
    if (resume->phase != "pieces" || resume->piece_cursor > pieces.size() ||
        resume->pieces.size() != resume->piece_cursor) {
      return Status::InvalidArgument(
          "checkpoint does not match this source instance");
    }
    outcome.stats = resume->stats;
    universe->RestoreNullState(resume->next_null, resume->null_names);
    for (const AbstractPiece& merged : resume->pieces) {
      outcome.target.AddPiece(merged.span, Instance(merged.snapshot));
    }
    start = resume->piece_cursor;
  }

  // The armed-fault gate for the merge seam, shared by both execution
  // paths. When the abstract-chase/merge site fires, the run aborts before
  // piece i is merged — exactly the state the "pieces" checkpoint after
  // piece i-1 captured.
  const auto merge_fault = [&](std::size_t i) -> bool {
#ifndef TDX_DISABLE_FAULT_POINTS
    if (FaultRegistry::AnyArmed()) {
      Status fault = FaultRegistry::Fire("abstract-chase/merge");
      if (!fault.ok()) {
        outcome.kind = ChaseResultKind::kAborted;
        outcome.failure_span = pieces[i].span;
        outcome.abort_dimension = ResourceDimension::kInjectedFault;
        outcome.abort_reason = fault.ToString();
        return false;
      }
    }
#else
    (void)i;
#endif
    return true;
  };

  const auto offer_checkpoint = [&](std::size_t merged_count) {
    if (options.checkpointer == nullptr) return;
    options.checkpointer->AtSafePoint(false, [&] {
      ChaseCheckpoint ck;
      ck.engine = ChaseCheckpoint::Engine::kAbstract;
      ck.config = config;
      ck.phase = "pieces";
      ck.piece_cursor = merged_count;
      ck.stats = outcome.stats;
      CaptureUniverseNulls(*universe, &ck);
      ck.pieces.reserve(merged_count);
      for (const AbstractPiece& merged : outcome.target.pieces()) {
        ck.pieces.push_back(AbstractPiece{merged.span,
                                          Instance(merged.snapshot)});
      }
      return ck;
    });
  };

  if (!parallel) {
    // Sequential engine: pieces chase against the shared universe in order.
    for (std::size_t i = start; i < pieces.size(); ++i) {
      const AbstractPiece& piece = pieces[i];
      if (!PieceIsComplete(piece)) {
        return Status::InvalidArgument(
            "abstract chase requires a complete source instance");
      }
      TDX_TRACE_SPAN("abstract.piece");
      pieces_metric.Inc();
      TDX_ASSIGN_OR_RETURN(
          ChaseOutcome piece_outcome,
          ChaseSnapshot(piece.snapshot, piece_mapping, universe,
                        piece_options));
      if (!merge_fault(i)) return outcome;
      if (!MergePiece(piece, std::move(piece_outcome), universe, &outcome)) {
        return outcome;
      }
      offer_checkpoint(i + 1);
    }
    return outcome;
  }

  // Parallel engine: pieces are independent (fresh nulls per snapshot), so
  // each chases against its own scratch Universe on a pool thread. Pieces
  // are complete, so every null in a piece's target is scratch-minted and
  // replaced during the merge — scratch null ids never leak out. Constants
  // stay valid across universes (the chase never interns; it copies values
  // already interned in the shared universe). The merge runs sequentially
  // in piece order, making the outcome independent of thread scheduling.
  std::vector<std::optional<Result<ChaseOutcome>>> results(pieces.size());
  std::vector<char> incomplete(pieces.size(), 0);
  ParallelFor(options.jobs, pieces.size() - start, [&](std::size_t k) {
    const std::size_t i = start + k;
    if (!PieceIsComplete(pieces[i])) {
      incomplete[i] = 1;
      return;
    }
    TDX_TRACE_SPAN("abstract.piece");
    pieces_metric.Inc();
    Universe scratch;
    results[i] = ChaseSnapshot(pieces[i].snapshot, piece_mapping, &scratch,
                               piece_options);
  });
  TDX_TRACE_SPAN("abstract.merge");
  for (std::size_t i = start; i < pieces.size(); ++i) {
    if (incomplete[i] != 0) {
      return Status::InvalidArgument(
          "abstract chase requires a complete source instance");
    }
    if (!results[i].has_value()) {
      // The pool dropped this piece's task (only the thread-pool/dispatch
      // fault site does that — a stand-in for a killed worker). Surface a
      // clean abort with the stats of the pieces already merged; the last
      // checkpoint resumes from exactly here.
      outcome.kind = ChaseResultKind::kAborted;
      outcome.failure_span = pieces[i].span;
      outcome.abort_dimension = ResourceDimension::kInjectedFault;
      outcome.abort_reason = "piece chase task was dropped before execution";
      return outcome;
    }
    TDX_ASSIGN_OR_RETURN(ChaseOutcome piece_outcome, std::move(*results[i]));
    if (!merge_fault(i)) return outcome;
    if (!MergePiece(pieces[i], std::move(piece_outcome), universe, &outcome)) {
      return outcome;
    }
    offer_checkpoint(i + 1);
  }
  return outcome;
}

Result<AbstractChaseOutcome> AbstractChase(const AbstractInstance& source,
                                           const Mapping& mapping,
                                           Universe* universe,
                                           const ChaseLimits& limits) {
  AbstractChaseOptions options;
  options.chase.limits = limits;
  return AbstractChase(source, mapping, universe, options);
}

Result<ChaseOutcome> ChaseSnapshotAt(const AbstractInstance& source,
                                     TimePoint l, const Mapping& mapping,
                                     Universe* universe) {
  const Instance snapshot = source.At(l, universe);
  return ChaseSnapshot(snapshot, mapping, universe);
}

}  // namespace tdx
