// Abstract temporal instances: infinite snapshot sequences, represented
// finitely.
//
// An abstract instance (Section 2) is an infinite sequence of snapshots
// <db0, db1, ...> satisfying the finite change condition: from some point m
// on, db_m = db_{m+1} = .... Such a sequence is piecewise constant, so we
// represent it as a finite list of *pieces* (span, snapshot template)
// covering [0, inf), the last piece unbounded.
//
// A piece's snapshot template is an Instance over the snapshot relations
// whose arguments may be:
//   * constants — the fact holds identically at every point of the span;
//   * labeled nulls — the SAME unknown at every point of the span (the J1
//     of Example 2 / Figure 2);
//   * interval-annotated nulls — a DIFFERENT unknown at every point
//     (the J2 of Figure 2; what the chase produces). Materialization
//     projects them: At(l) replaces N^[s,e) by proj_l(N^[s,e)).
//
// This distinction is the crux of the paper: both kinds of unknowns exist
// in the abstract view, and only the annotated kind is expressible in
// concrete instances produced by data exchange.

#ifndef TDX_TEMPORAL_ABSTRACT_INSTANCE_H_
#define TDX_TEMPORAL_ABSTRACT_INSTANCE_H_

#include <vector>

#include "src/common/status.h"
#include "src/temporal/concrete_instance.h"

namespace tdx {

/// One maximal run of identical snapshot templates.
struct AbstractPiece {
  Interval span;
  Instance snapshot;
};

class AbstractInstance {
 public:
  explicit AbstractInstance(const Schema* schema) : schema_(schema) {}

  const Schema& schema() const { return *schema_; }

  /// Appends a piece. Pieces must be appended left to right; call
  /// ValidateCover() after the last one to check full coverage of [0, inf).
  void AddPiece(const Interval& span, Instance snapshot) {
    pieces_.push_back(AbstractPiece{span, std::move(snapshot)});
  }

  /// Checks pieces are sorted, contiguous, start at 0, and end unbounded,
  /// and that annotated nulls' annotations contain their piece's span.
  Status ValidateCover() const;

  /// [[Ic]]: builds the abstract view of a concrete instance. Fact intervals
  /// are cut at every distinct endpoint, so each piece's template is
  /// constant over its span. Annotated nulls are carried into the templates
  /// un-projected (At() projects them).
  static Result<AbstractInstance> FromConcrete(const ConcreteInstance& ic);

  /// Materializes the snapshot db_l: annotated nulls are projected through
  /// `universe` (deterministically), labeled nulls kept as-is.
  Instance At(TimePoint l, Universe* universe) const;

  const std::vector<AbstractPiece>& pieces() const { return pieces_; }

  /// Piece boundaries: the start of every piece (ascending; first is 0).
  std::vector<TimePoint> Boundaries() const;

  /// Returns a copy whose pieces are additionally split at `cuts` (sorted
  /// ascending). Labeled nulls remain shared between the halves of a split
  /// piece — the unknown still spans the same snapshots.
  AbstractInstance RefinedAt(const std::vector<TimePoint>& cuts) const;

  /// One representative time point per piece (its span start).
  std::vector<TimePoint> Representatives() const;

  std::string ToString(const Universe& u) const;

 private:
  const Schema* schema_;
  std::vector<AbstractPiece> pieces_;
};

/// Refines both instances to the union of their boundaries, so that pieces
/// correspond one-to-one. Used by the abstract homomorphism checker and the
/// alignment verifier.
std::pair<AbstractInstance, AbstractInstance> AlignPieces(
    const AbstractInstance& a, const AbstractInstance& b);

}  // namespace tdx

#endif  // TDX_TEMPORAL_ABSTRACT_INSTANCE_H_
