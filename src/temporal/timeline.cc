#include "src/temporal/timeline.h"

#include <algorithm>

namespace tdx {

Timeline Timeline::FromIntervals(std::vector<Interval> intervals) {
  std::sort(intervals.begin(), intervals.end());
  Timeline out;
  for (const Interval& iv : intervals) {
    if (!out.runs_.empty() && out.runs_.back().Mergeable(iv)) {
      out.runs_.back() = out.runs_.back().MergeWith(iv);
    } else {
      out.runs_.push_back(iv);
    }
  }
  return out;
}

bool Timeline::Contains(TimePoint t) const {
  // Binary search on run starts.
  auto it = std::upper_bound(
      runs_.begin(), runs_.end(), t,
      [](TimePoint lhs, const Interval& run) { return lhs < run.start(); });
  if (it == runs_.begin()) return false;
  return std::prev(it)->Contains(t);
}

std::optional<std::uint64_t> Timeline::Cardinality() const {
  std::uint64_t total = 0;
  for (const Interval& run : runs_) {
    const auto len = run.length();
    if (!len.has_value()) return std::nullopt;
    total += *len;
  }
  return total;
}

std::optional<TimePoint> Timeline::Min() const {
  if (runs_.empty()) return std::nullopt;
  return runs_.front().start();
}

std::optional<TimePoint> Timeline::Max() const {
  if (runs_.empty() || runs_.back().unbounded()) return std::nullopt;
  return runs_.back().end();
}

void Timeline::Add(const Interval& iv) {
  std::vector<Interval> all = runs_;
  all.push_back(iv);
  *this = FromIntervals(std::move(all));
}

Timeline Timeline::Union(const Timeline& other) const {
  std::vector<Interval> all = runs_;
  all.insert(all.end(), other.runs_.begin(), other.runs_.end());
  return FromIntervals(std::move(all));
}

Timeline Timeline::Intersect(const Timeline& other) const {
  std::vector<Interval> out;
  std::size_t i = 0, j = 0;
  while (i < runs_.size() && j < other.runs_.size()) {
    const Interval& a = runs_[i];
    const Interval& b = other.runs_[j];
    const std::optional<Interval> common = a.Intersect(b);
    if (common.has_value()) out.push_back(*common);
    // Advance whichever run ends first.
    if (a.end() <= b.end()) {
      ++i;
    } else {
      ++j;
    }
  }
  return FromIntervals(std::move(out));
}

Timeline Timeline::Complement() const {
  std::vector<Interval> out;
  TimePoint cursor = 0;
  for (const Interval& run : runs_) {
    if (run.start() > cursor) out.emplace_back(cursor, run.start());
    if (run.unbounded()) return FromIntervals(std::move(out));
    cursor = run.end();
  }
  out.push_back(Interval::FromStart(cursor));
  return FromIntervals(std::move(out));
}

Timeline Timeline::Difference(const Timeline& other) const {
  return Intersect(other.Complement());
}

Timeline Timeline::Gaps() const {
  if (runs_.size() < 2) return Timeline();
  std::vector<Interval> out;
  for (std::size_t i = 1; i < runs_.size(); ++i) {
    out.emplace_back(runs_[i - 1].end(), runs_[i].start());
  }
  return FromIntervals(std::move(out));
}

std::string Timeline::ToString() const {
  std::string out = "{";
  for (std::size_t i = 0; i < runs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += runs_[i].ToString();
  }
  out += "}";
  return out;
}

}  // namespace tdx
