// Homomorphisms between abstract instances (Section 3).
//
// h : Ia -> I'a exists iff (1) there is a per-snapshot homomorphism
// h_l : db_l -> db'_l for every l, and (2) all of them agree on every
// labeled null (Example 2 shows why condition 2 matters: the same null
// appearing in two snapshots must map to the same value in both).
//
// Finite reduction: both instances are refined to a common piece partition.
// Within a piece, snapshots are isomorphic via re-projection, so a
// *symbolic* piece-level match decides all of the piece's snapshots at
// once. Variable discipline:
//
//  * an interval-annotated null of the domain denotes a different unknown
//    per snapshot, so its image is free per piece (constant, labeled null,
//    or annotated null of the codomain) and independent across pieces —
//    a (null, piece)-local variable;
//  * a labeled null of the domain denotes the SAME unknown in every
//    snapshot it spans, so it is one global variable whose image must be a
//    constant or a labeled null of the codomain — except when the null
//    occurs in exactly one piece of span length 1 (a single snapshot), in
//    which case an annotated image (one projected codomain null) is fine.
//
// The checker is sound; it is complete for homomorphisms that are uniform
// within pieces (which includes everything arising from chase results —
// non-uniform homomorphisms can only exist when the codomain offers
// distinct images at different snapshots of one piece, and then a uniform
// one exists too whenever any exists at the piece level).

#ifndef TDX_TEMPORAL_ABSTRACT_HOM_H_
#define TDX_TEMPORAL_ABSTRACT_HOM_H_

#include "src/temporal/abstract_instance.h"

namespace tdx {

/// Is there an abstract homomorphism from `from` to `to`?
bool AbstractHomomorphismExists(const AbstractInstance& from,
                                const AbstractInstance& to);

/// Homomorphisms in both directions: the "~" of Corollary 20.
bool AreAbstractEquivalent(const AbstractInstance& a,
                           const AbstractInstance& b);

}  // namespace tdx

#endif  // TDX_TEMPORAL_ABSTRACT_HOM_H_
