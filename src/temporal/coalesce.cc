#include "src/temporal/coalesce.h"

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

namespace tdx {

ConcreteInstance Coalesce(const ConcreteInstance& instance) {
  // Sort-based sweep over arena rows: collect every fact's canonicalized
  // data values (annotated nulls compared by null id — fragments of one
  // null denote the same sequence) into one flat arena, sort row handles by
  // (relation, data, interval), then merge each equal-data run's intervals
  // left to right. One sort replaces the former node-based
  // map<Key, (Fact, vector<Interval>)> grouping; the output is identical:
  // groups emerge in the same (relation, data) order and each group's
  // intervals arrive already ascending.
  std::vector<FactView> rows;
  std::vector<std::size_t> off;
  std::vector<Value> canon;
  instance.facts().ForEach([&](FactView fact) {
    rows.push_back(fact);
    off.push_back(canon.size());
    for (std::size_t i = 0; i + 1 < fact.arity(); ++i) {
      const Value& v = fact.arg(i);
      canon.push_back(v.is_annotated_null() ? Value::Null(v.null_id()) : v);
    }
  });

  // Three-way compare of two rows' canonical data; only called for rows of
  // one relation, whose data runs have equal length (arity - 1).
  const auto data_cmp = [&](std::uint32_t a, std::uint32_t b) {
    const Value* da = canon.data() + off[a];
    const Value* db = canon.data() + off[b];
    const std::size_t n = static_cast<std::size_t>(rows[a].arity()) - 1;
    for (std::size_t i = 0; i < n; ++i) {
      if (da[i] < db[i]) return -1;
      if (db[i] < da[i]) return 1;
    }
    return 0;
  };
  std::vector<std::uint32_t> order(rows.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    if (rows[a].relation() != rows[b].relation()) {
      return rows[a].relation() < rows[b].relation();
    }
    const int c = data_cmp(a, b);
    if (c != 0) return c < 0;
    return rows[a].interval() < rows[b].interval();
  });

  ConcreteInstance out(&instance.schema());
  std::size_t g = 0;
  while (g < order.size()) {
    std::size_t h = g + 1;
    while (h < order.size() &&
           rows[order[g]].relation() == rows[order[h]].relation() &&
           data_cmp(order[g], order[h]) == 0) {
      ++h;
    }
    // The group's template is its first-inserted fact (lowest arena row),
    // as with the former map grouping. The template only matters up to null
    // annotations (WithInterval re-annotates), but first-inserted keeps the
    // output byte-stable across the rewrite.
    const std::uint32_t tmpl_row =
        *std::min_element(order.begin() + g, order.begin() + h);
    const Fact tmpl = rows[tmpl_row].ToFact();
    Interval run = rows[order[g]].interval();
    for (std::size_t k = g + 1; k < h; ++k) {
      const Interval iv = rows[order[k]].interval();
      if (run.Mergeable(iv)) {
        run = run.MergeWith(iv);
      } else {
        out.mutable_facts().Insert(tmpl.WithInterval(run));
        run = iv;
      }
    }
    out.mutable_facts().Insert(tmpl.WithInterval(run));
    g = h;
  }
  return out;
}

}  // namespace tdx
