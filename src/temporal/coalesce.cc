#include "src/temporal/coalesce.h"

#include <algorithm>
#include <map>
#include <vector>

namespace tdx {

ConcreteInstance Coalesce(const ConcreteInstance& instance) {
  // Group: (relation, canonicalized data values) -> (template fact,
  // intervals). The template keeps one representative fact whose interval is
  // re-stamped per merged run (WithInterval also re-annotates nulls).
  struct Key {
    RelationId rel;
    std::vector<Value> data;
    bool operator<(const Key& other) const {
      if (rel != other.rel) return rel < other.rel;
      return data < other.data;
    }
  };
  std::map<Key, std::pair<Fact, std::vector<Interval>>> groups;
  instance.facts().ForEach([&](FactView fact) {
    Key key{fact.relation(), {}};
    for (std::size_t i = 0; i + 1 < fact.arity(); ++i) {
      const Value& v = fact.arg(i);
      key.data.push_back(v.is_annotated_null() ? Value::Null(v.null_id()) : v);
    }
    auto it = groups.find(key);
    if (it == groups.end()) {
      groups.emplace(std::move(key),
                     std::make_pair(fact.ToFact(),
                                    std::vector<Interval>{fact.interval()}));
    } else {
      it->second.second.push_back(fact.interval());
    }
  });

  ConcreteInstance out(&instance.schema());
  for (auto& [key, entry] : groups) {
    auto& [tmpl, ivs] = entry;
    std::sort(ivs.begin(), ivs.end());
    Interval run = ivs.front();
    for (std::size_t i = 1; i < ivs.size(); ++i) {
      if (run.Mergeable(ivs[i])) {
        run = run.MergeWith(ivs[i]);
      } else {
        out.mutable_facts().Insert(tmpl.WithInterval(run));
        run = ivs[i];
      }
    }
    out.mutable_facts().Insert(tmpl.WithInterval(run));
  }
  return out;
}

}  // namespace tdx
