#include "src/parser/parser.h"

#include <unordered_map>

#include "src/analysis/termination.h"
#include "src/parser/lexer.h"

namespace tdx {

namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  Parser(std::vector<Token> tokens, const ParseLimits& limits,
         ParsedProgram* program)
      : tokens_(std::move(tokens)), limits_(limits), program_(program) {}

  Status Run() {
    while (!AtEnd()) {
      TDX_FAULT_POINT("parser/statement");
      TDX_RETURN_IF_ERROR(ParseStatement());
    }
    // Materialize temporal-operator closures now that all facts are known.
    for (const ParsedProgram::ClosureSpec& spec : program_->closures) {
      TDX_RETURN_IF_ERROR(MaterializeClosure(program_->source,
                                             spec.base_concrete, spec.op,
                                             spec.closure_concrete,
                                             &program_->source));
    }
    // Finalize the mapping and derive the lifted version. Validation also
    // attaches the termination certificate that engines consult later; the
    // lifted mapping is certified separately (lifting preserves weak
    // acyclicity, but deriving the certificate from M+ itself keeps the
    // guarantee self-contained).
    TDX_RETURN_IF_ERROR(
        ValidateAndCertifyMapping(&program_->mapping, program_->schema));
    TDX_ASSIGN_OR_RETURN(program_->lifted,
                         LiftMapping(program_->mapping, program_->schema));
    program_->lifted.certificate =
        CertifyTermination(program_->lifted.target_tgds, program_->schema);
    for (const UnionQuery& q : program_->queries) {
      TDX_RETURN_IF_ERROR(q.Validate());
    }
    return Status::OK();
  }

 private:
  // ---- token helpers ------------------------------------------------------
  const Token& Peek(std::size_t ahead = 0) const {
    const std::size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Check(TokenKind kind) const { return Peek().kind == kind; }
  bool Match(TokenKind kind) {
    if (!Check(kind)) return false;
    Advance();
    return true;
  }
  /// Position of the next token; statements record the span of their
  /// introducing keyword.
  SourceSpan SpanHere() const {
    return SourceSpan{Peek().line, Peek().column};
  }
  Status ErrorHere(const std::string& what) const {
    const Token& t = Peek();
    return Status::ParseError(what + " at line " + std::to_string(t.line) +
                              ", column " + std::to_string(t.column) +
                              " (got " + std::string(TokenKindName(t.kind)) +
                              (t.text.empty() ? "" : " '" + t.text + "'") +
                              ")");
  }
  Status Expect(TokenKind kind, const std::string& context) {
    if (Match(kind)) return Status::OK();
    return ErrorHere("expected " + std::string(TokenKindName(kind)) + " " +
                     context);
  }

  // ---- grammar ------------------------------------------------------------
  Status ParseStatement() {
    if (!Check(TokenKind::kIdentifier)) {
      return ErrorHere("expected a statement keyword");
    }
    statement_span_ = SpanHere();
    const std::string keyword = Peek().text;
    if (keyword == "source" || keyword == "target") {
      return ParseRelationDecl(keyword == "source" ? SchemaRole::kSource
                                                   : SchemaRole::kTarget);
    }
    if (keyword == "tgd") return ParseTgd(/*target=*/false);
    if (keyword == "ttgd") return ParseTgd(/*target=*/true);
    if (keyword == "egd") return ParseEgd();
    if (keyword == "fact") return ParseFact();
    if (keyword == "query") return ParseQuery();
    return ErrorHere("unknown statement keyword '" + keyword + "'");
  }

  Status ParseRelationDecl(SchemaRole role) {
    Advance();  // keyword
    if (!Check(TokenKind::kIdentifier)) {
      return ErrorHere("expected relation name");
    }
    const std::string name = Advance().text;
    TDX_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "after relation name"));
    std::vector<std::string> attrs;
    do {
      if (!Check(TokenKind::kIdentifier)) {
        return ErrorHere("expected attribute name");
      }
      attrs.push_back(Advance().text);
    } while (Match(TokenKind::kComma));
    TDX_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "after attribute list"));
    TDX_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon, "after declaration"));
    TDX_ASSIGN_OR_RETURN(
        RelationId ignored,
        program_->schema.AddRelationPair(name, std::move(attrs), role));
    (void)ignored;
    SyncRelationSpans();
    return Status::OK();
  }

  /// Stamps every relation registered since the last call with the current
  /// statement's span (AddRelationPair registers two; closure resolution
  /// can register more mid-statement).
  void SyncRelationSpans() {
    program_->relation_spans.resize(program_->schema.relation_count(),
                                    statement_span_);
  }

  /// Variable table scoped to one dependency or query.
  struct VarScope {
    std::unordered_map<std::string, VarId> ids;
    std::vector<std::string> names;

    VarId Get(const std::string& name) {
      auto it = ids.find(name);
      if (it != ids.end()) return it->second;
      const VarId v = static_cast<VarId>(names.size());
      ids.emplace(name, v);
      names.push_back(name);
      return v;
    }
    VarId Fresh() {
      const VarId v = static_cast<VarId>(names.size());
      names.push_back("_" + std::to_string(v));
      return v;
    }
  };

  Result<Term> ParseTerm(VarScope* scope) {
    if (Check(TokenKind::kString)) {
      return Term::Val(program_->universe.Constant(Advance().text));
    }
    if (Check(TokenKind::kNumber)) {
      return Term::Val(program_->universe.Constant(Advance().text));
    }
    if (Check(TokenKind::kIdentifier)) {
      const std::string name = Advance().text;
      if (name == "_") return Term::Var(scope->Fresh());
      return Term::Var(scope->Get(name));
    }
    return ErrorHere("expected a term (variable, string, or number)");
  }

  Result<Atom> ParseAtom(VarScope* scope, bool allow_temporal_ops = false) {
    if (!Check(TokenKind::kIdentifier)) {
      return ErrorHere("expected relation name in atom");
    }
    const Token& name_token = Peek();
    const std::string name = Advance().text;

    // Temporal operator applied to an atom: op(R(...)).
    TemporalOp op;
    if (TemporalOpFromName(name, &op)) {
      if (!allow_temporal_ops) {
        return Status::ParseError(
            "temporal operator '" + name +
            "' is only allowed in tgd bodies (line " +
            std::to_string(name_token.line) + ")");
      }
      // The grammar itself bounds operator recursion, but the cap keeps the
      // parser safe against hostile nesting if the grammar ever grows.
      if (++atom_depth_ > limits_.max_nesting_depth) {
        atom_depth_ = 0;
        return Status::ParseError(
            "atom nesting exceeds the limit of " +
            std::to_string(limits_.max_nesting_depth) + " at line " +
            std::to_string(name_token.line) + ", column " +
            std::to_string(name_token.column));
      }
      TDX_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "after operator"));
      Result<Atom> inner_result = ParseAtom(scope, false);
      --atom_depth_;
      if (!inner_result.ok()) return inner_result.status();
      Atom inner = std::move(*inner_result);
      TDX_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "after operator atom"));
      TDX_ASSIGN_OR_RETURN(RelationId closure_snap,
                           ResolveClosureRelation(inner.rel, op));
      inner.rel = closure_snap;
      return inner;
    }

    Result<RelationId> rel = program_->schema.Find(name);
    if (!rel.ok()) {
      return Status::ParseError("unknown relation '" + name + "' at line " +
                                std::to_string(name_token.line));
    }
    TDX_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "after relation name"));
    Atom atom;
    atom.rel = *rel;
    do {
      if (atom.terms.size() >= limits_.max_atom_terms) {
        return Status::ParseError(
            "atom over '" + name + "' exceeds the limit of " +
            std::to_string(limits_.max_atom_terms) + " terms at line " +
            std::to_string(name_token.line));
      }
      TDX_ASSIGN_OR_RETURN(Term term, ParseTerm(scope));
      atom.terms.push_back(term);
    } while (Match(TokenKind::kComma));
    TDX_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "after atom terms"));
    if (atom.terms.size() != program_->schema.relation(*rel).arity()) {
      return Status::ParseError(
          "atom over '" + name + "' has arity " +
          std::to_string(atom.terms.size()) + ", expected " +
          std::to_string(program_->schema.relation(*rel).arity()) +
          " at line " + std::to_string(name_token.line));
    }
    return atom;
  }

  Result<Conjunction> ParseConjunction(VarScope* scope,
                                       bool allow_temporal_ops = false) {
    Conjunction conj;
    do {
      TDX_ASSIGN_OR_RETURN(Atom atom, ParseAtom(scope, allow_temporal_ops));
      conj.atoms.push_back(std::move(atom));
    } while (Match(TokenKind::kAmp));
    return conj;
  }

  /// Gets or creates the closure relation pair for op over the snapshot
  /// relation `base_snap`, records the ClosureSpec, and returns the
  /// closure's snapshot relation id.
  Result<RelationId> ResolveClosureRelation(RelationId base_snap,
                                            TemporalOp op) {
    const RelationSchema& base = program_->schema.relation(base_snap);
    const std::string name = ClosureRelationName(base.name, op);
    Result<RelationId> existing = program_->schema.Find(name);
    if (existing.ok()) return *existing;
    std::vector<std::string> attrs = base.attributes;
    TDX_ASSIGN_OR_RETURN(
        RelationId closure_concrete,
        program_->schema.AddRelationPair(name, std::move(attrs), base.role));
    TDX_ASSIGN_OR_RETURN(RelationId base_concrete,
                         program_->schema.TwinOf(base_snap));
    program_->closures.push_back(ParsedProgram::ClosureSpec{
        base_concrete, op, closure_concrete});
    TDX_ASSIGN_OR_RETURN(RelationId closure_snap,
                         program_->schema.TwinOf(closure_concrete));
    SyncRelationSpans();
    return closure_snap;
  }

  /// Optional "label :" prefix after the tgd/egd keyword: an identifier
  /// immediately followed by a colon.
  std::string ParseOptionalLabel() {
    if (Check(TokenKind::kIdentifier) &&
        Peek(1).kind == TokenKind::kColon) {
      const std::string label = Advance().text;
      Advance();  // colon
      return label;
    }
    return "";
  }

  Status ParseTgd(bool target) {
    Advance();  // "tgd" or "ttgd"
    Tgd tgd;
    tgd.span = statement_span_;
    tgd.label = ParseOptionalLabel();
    VarScope scope;
    // Temporal operators need source data to materialize closures over, so
    // they are confined to s-t tgd bodies.
    TDX_ASSIGN_OR_RETURN(
        tgd.body, ParseConjunction(&scope, /*allow_temporal_ops=*/!target));
    TDX_RETURN_IF_ERROR(Expect(TokenKind::kArrow, "in tgd"));
    if (Check(TokenKind::kIdentifier) && Peek().text == "exists") {
      Advance();
      do {
        if (!Check(TokenKind::kIdentifier)) {
          return ErrorHere("expected existential variable name");
        }
        scope.Get(Advance().text);  // registers the variable
      } while (Match(TokenKind::kComma));
      TDX_RETURN_IF_ERROR(
          Expect(TokenKind::kColon, "after existential variables"));
    }
    TDX_ASSIGN_OR_RETURN(tgd.head, ParseConjunction(&scope));
    TDX_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon, "after tgd"));
    tgd.body.num_vars = tgd.head.num_vars = scope.names.size();
    tgd.body.var_names = tgd.head.var_names = scope.names;
    TDX_RETURN_IF_ERROR(WithSpan(tgd.Finalize(), tgd.span));
    if (target) {
      program_->mapping.target_tgds.push_back(std::move(tgd));
    } else {
      program_->mapping.st_tgds.push_back(std::move(tgd));
    }
    return Status::OK();
  }

  Status ParseEgd() {
    Advance();  // "egd"
    Egd egd;
    egd.span = statement_span_;
    egd.label = ParseOptionalLabel();
    VarScope scope;
    TDX_ASSIGN_OR_RETURN(egd.body, ParseConjunction(&scope));
    TDX_RETURN_IF_ERROR(Expect(TokenKind::kArrow, "in egd"));
    if (!Check(TokenKind::kIdentifier)) {
      return ErrorHere("expected variable on the left of '='");
    }
    egd.x1 = scope.Get(Advance().text);
    TDX_RETURN_IF_ERROR(Expect(TokenKind::kEquals, "in egd equality"));
    if (!Check(TokenKind::kIdentifier)) {
      return ErrorHere("expected variable on the right of '='");
    }
    egd.x2 = scope.Get(Advance().text);
    TDX_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon, "after egd"));
    egd.body.num_vars = scope.names.size();
    egd.body.var_names = scope.names;
    TDX_RETURN_IF_ERROR(WithSpan(egd.Finalize(), egd.span));
    program_->mapping.egds.push_back(std::move(egd));
    return Status::OK();
  }

  Result<Interval> ParseInterval() {
    TDX_RETURN_IF_ERROR(Expect(TokenKind::kLBracket, "to open interval"));
    if (!Check(TokenKind::kNumber)) {
      return ErrorHere("expected interval start point");
    }
    const TimePoint start = Advance().number;
    TDX_RETURN_IF_ERROR(Expect(TokenKind::kComma, "in interval"));
    TimePoint end = kTimeInfinity;
    if (Check(TokenKind::kNumber)) {
      end = Advance().number;
    } else if (Check(TokenKind::kIdentifier) && Peek().text == "inf") {
      Advance();
    } else {
      return ErrorHere("expected interval end point or 'inf'");
    }
    TDX_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "to close interval"));
    // Checked factory at the trust boundary: malformed input must not reach
    // the asserting Interval constructor.
    Result<Interval> iv = Interval::Make(start, end);
    if (!iv.ok()) {
      return Status::ParseError(iv.status().message() + " at line " +
                                std::to_string(Peek().line));
    }
    return iv;
  }

  Status ParseFact() {
    Advance();  // "fact"
    if (!Check(TokenKind::kIdentifier)) {
      return ErrorHere("expected relation name in fact");
    }
    const std::string name = Advance().text;
    TDX_ASSIGN_OR_RETURN(RelationId snap, program_->schema.Find(name));
    TDX_ASSIGN_OR_RETURN(RelationId conc, program_->schema.TwinOf(snap));
    TDX_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "after relation name"));
    std::vector<Value> data;
    do {
      if (data.size() >= limits_.max_atom_terms) {
        return ErrorHere("fact over '" + name + "' exceeds the limit of " +
                         std::to_string(limits_.max_atom_terms) +
                         " arguments");
      }
      if (Check(TokenKind::kString) || Check(TokenKind::kNumber)) {
        data.push_back(program_->universe.Constant(Advance().text));
      } else {
        return ErrorHere("fact arguments must be constants");
      }
    } while (Match(TokenKind::kComma));
    TDX_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "after fact arguments"));
    TDX_RETURN_IF_ERROR(Expect(TokenKind::kAt, "before fact interval"));
    TDX_ASSIGN_OR_RETURN(Interval iv, ParseInterval());
    TDX_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon, "after fact"));
    return program_->source.Add(conc, std::move(data), iv);
  }

  Status ParseQuery() {
    Advance();  // "query"
    if (!Check(TokenKind::kIdentifier)) {
      return ErrorHere("expected query name");
    }
    ConjunctiveQuery query;
    query.span = statement_span_;
    query.name = Advance().text;
    TDX_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "after query name"));
    VarScope scope;
    std::vector<std::string> head_names;
    if (!Check(TokenKind::kRParen)) {
      do {
        if (!Check(TokenKind::kIdentifier)) {
          return ErrorHere("expected head variable");
        }
        head_names.push_back(Advance().text);
      } while (Match(TokenKind::kComma));
    }
    TDX_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "after query head"));
    TDX_RETURN_IF_ERROR(Expect(TokenKind::kColon, "before query body"));
    for (const std::string& name : head_names) {
      query.head.push_back(scope.Get(name));
    }
    TDX_ASSIGN_OR_RETURN(query.body, ParseConjunction(&scope));
    TDX_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon, "after query"));
    query.body.num_vars = scope.names.size();
    query.body.var_names = scope.names;
    TDX_RETURN_IF_ERROR(WithSpan(query.Validate(), query.span));

    for (UnionQuery& uq : program_->queries) {
      if (uq.name == query.name) {
        uq.disjuncts.push_back(std::move(query));
        return Status::OK();
      }
    }
    UnionQuery uq;
    uq.name = query.name;
    uq.disjuncts.push_back(std::move(query));
    program_->queries.push_back(std::move(uq));
    return Status::OK();
  }

  /// Rewraps a semantic validation failure as a ParseError pointing at the
  /// offending statement.
  static Status WithSpan(Status status, const SourceSpan& span) {
    if (status.ok() || !span.valid()) return status;
    return Status::ParseError(std::string(status.message()) + " at " +
                              span.ToString());
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  ParseLimits limits_;
  std::size_t atom_depth_ = 0;  ///< temporal-operator nesting in ParseAtom
  SourceSpan statement_span_;   ///< span of the statement being parsed
  ParsedProgram* program_;
};

}  // namespace

Result<const UnionQuery*> ParsedProgram::FindQuery(
    std::string_view name) const {
  for (const UnionQuery& q : queries) {
    if (q.name == name) return &q;
  }
  return Status::NotFound("no query named '" + std::string(name) + "'");
}

Result<std::unique_ptr<ParsedProgram>> ParseProgram(std::string_view text,
                                                    const ParseLimits& limits) {
  TDX_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text, limits));
  auto program = std::make_unique<ParsedProgram>();
  Parser parser(std::move(tokens), limits, program.get());
  TDX_RETURN_IF_ERROR(parser.Run());
  return program;
}

}  // namespace tdx
