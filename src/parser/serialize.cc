#include "src/parser/serialize.h"

#include <charconv>
#include <cstdio>
#include <limits>
#include <optional>
#include <utility>

namespace tdx {

namespace {

/// Is `name` an auxiliary closure relation (base__op or base__op+)?
/// Returns the base snapshot relation name and operator when so.
std::optional<std::pair<std::string, TemporalOp>> SplitClosureName(
    std::string_view name) {
  if (!name.empty() && name.back() == '+') name.remove_suffix(1);
  const std::size_t sep = name.rfind("__");
  if (sep == std::string_view::npos) return std::nullopt;
  TemporalOp op;
  if (!TemporalOpFromName(name.substr(sep + 2), &op)) return std::nullopt;
  return std::make_pair(std::string(name.substr(0, sep)), op);
}

/// Renders a term in the parseable format: variables by name, constants
/// quoted, anything else is unrepresentable (caller checks).
std::string RenderTerm(const Term& term, const Conjunction& conj,
                       const Universe& u) {
  if (term.is_var()) {
    const VarId v = term.var();
    if (v < conj.var_names.size() && !conj.var_names[v].empty()) {
      return conj.var_names[v];
    }
    return "v" + std::to_string(v);
  }
  assert(term.value().is_constant() &&
         "only constants are representable in dependency atoms");
  return "\"" + std::string(u.symbols().Spelling(term.value().symbol())) +
         "\"";
}

/// Renders a conjunction in the parseable format, translating closure
/// relations back to their operator syntax.
std::string RenderConjunction(const Conjunction& conj, const Schema& schema,
                              const Universe& u) {
  std::string out;
  for (std::size_t i = 0; i < conj.atoms.size(); ++i) {
    if (i > 0) out += " & ";
    const Atom& atom = conj.atoms[i];
    const std::string& rel_name = schema.relation(atom.rel).name;
    const auto closure = SplitClosureName(rel_name);
    if (closure.has_value()) {
      out += std::string(TemporalOpName(closure->second)) + "(" +
             closure->first + "(";
    } else {
      out += rel_name + "(";
    }
    for (std::size_t j = 0; j < atom.terms.size(); ++j) {
      if (j > 0) out += ", ";
      out += RenderTerm(atom.terms[j], conj, u);
    }
    out += ")";
    if (closure.has_value()) out += ")";
  }
  return out;
}

std::string VarName(const Conjunction& conj, VarId v) {
  if (v < conj.var_names.size() && !conj.var_names[v].empty()) {
    return conj.var_names[v];
  }
  return "v" + std::to_string(v);
}

std::string RenderTgd(const Tgd& tgd, std::string_view keyword,
                      const Schema& schema, const Universe& u) {
  std::string out(keyword);
  out += " ";
  if (!tgd.label.empty()) out += tgd.label + ": ";
  out += RenderConjunction(tgd.body, schema, u);
  out += " -> ";
  if (!tgd.existential.empty()) {
    out += "exists ";
    for (std::size_t i = 0; i < tgd.existential.size(); ++i) {
      if (i > 0) out += ", ";
      out += VarName(tgd.head, tgd.existential[i]);
    }
    out += ": ";
  }
  out += RenderConjunction(tgd.head, schema, u);
  out += ";\n";
  return out;
}

}  // namespace

std::string SerializeSchema(const Schema& schema) {
  std::string out;
  for (RelationId rel = 0; rel < schema.relation_count(); ++rel) {
    const RelationSchema& r = schema.relation(rel);
    if (r.temporal) continue;                       // emit the snapshot side
    if (!r.twin.has_value()) continue;              // pairs only
    if (SplitClosureName(r.name).has_value()) continue;  // re-derived
    out += (r.role == SchemaRole::kSource ? "source " : "target ");
    out += r.name + "(";
    for (std::size_t i = 0; i < r.attributes.size(); ++i) {
      if (i > 0) out += ", ";
      out += r.attributes[i];
    }
    out += ");\n";
  }
  return out;
}

std::string SerializeMapping(const Mapping& mapping, const Schema& schema,
                             const Universe& u) {
  std::string out;
  for (const Tgd& tgd : mapping.st_tgds) {
    out += RenderTgd(tgd, "tgd", schema, u);
  }
  for (const Tgd& tgd : mapping.target_tgds) {
    out += RenderTgd(tgd, "ttgd", schema, u);
  }
  for (const Egd& egd : mapping.egds) {
    out += "egd ";
    if (!egd.label.empty()) out += egd.label + ": ";
    out += RenderConjunction(egd.body, schema, u);
    out += " -> " + VarName(egd.body, egd.x1) + " = " +
           VarName(egd.body, egd.x2) + ";\n";
  }
  return out;
}

Result<std::string> SerializeInstanceFacts(const ConcreteInstance& instance,
                                           const Universe& u) {
  std::string out;
  Status status = Status::OK();
  const Schema& schema = instance.schema();
  instance.facts().ForEach([&](FactView fact) {
    if (!status.ok()) return;
    const RelationSchema& rel = schema.relation(fact.relation());
    if (SplitClosureName(rel.name).has_value()) return;  // re-derived
    Result<RelationId> snap = schema.TwinOf(fact.relation());
    if (!snap.ok()) {
      status = snap.status();
      return;
    }
    out += "fact " + schema.relation(*snap).name + "(";
    for (std::size_t i = 0; i + 1 < fact.arity(); ++i) {
      const Value& v = fact.arg(i);
      if (!v.is_constant()) {
        status = Status::InvalidArgument(
            "only complete instances are serializable as facts; found a "
            "null in relation '" + rel.name + "'");
        return;
      }
      if (i > 0) out += ", ";
      out += "\"" + std::string(u.symbols().Spelling(v.symbol())) + "\"";
    }
    out += ") @ " + fact.interval().ToString() + ";\n";
  });
  if (!status.ok()) return status;
  return out;
}

std::string SerializeQueries(const std::vector<UnionQuery>& queries,
                             const Schema& schema, const Universe& u) {
  std::string out;
  for (const UnionQuery& uq : queries) {
    for (const ConjunctiveQuery& q : uq.disjuncts) {
      out += "query " + uq.name + "(";
      for (std::size_t i = 0; i < q.head.size(); ++i) {
        if (i > 0) out += ", ";
        out += VarName(q.body, q.head[i]);
      }
      out += "): " + RenderConjunction(q.body, schema, u) + ";\n";
    }
  }
  return out;
}

Result<std::string> SerializeProgram(const ParsedProgram& program) {
  std::string out = SerializeSchema(program.schema);
  out += SerializeMapping(program.mapping, program.schema, program.universe);
  TDX_ASSIGN_OR_RETURN(std::string facts,
                       SerializeInstanceFacts(program.source,
                                              program.universe));
  out += facts;
  out += SerializeQueries(program.queries, program.schema, program.universe);
  return out;
}

// ---------------------------------------------------------------------------
// Checkpoint encoding
// ---------------------------------------------------------------------------

namespace {

std::string_view EngineName(ChaseCheckpoint::Engine engine) {
  switch (engine) {
    case ChaseCheckpoint::Engine::kSnapshot:
      return "snapshot";
    case ChaseCheckpoint::Engine::kCChase:
      return "cchase";
    case ChaseCheckpoint::Engine::kAbstract:
      return "abstract";
  }
  return "?";
}

bool EngineFromName(std::string_view name, ChaseCheckpoint::Engine* out) {
  if (name == "snapshot") *out = ChaseCheckpoint::Engine::kSnapshot;
  else if (name == "cchase") *out = ChaseCheckpoint::Engine::kCChase;
  else if (name == "abstract") *out = ChaseCheckpoint::Engine::kAbstract;
  else return false;
  return true;
}

std::string EscapeCheckpointString(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string Hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return std::string(buf);
}

std::string IntervalToken(const Interval& iv) {
  return "[" + TimePointToString(iv.start()) + "," +
         TimePointToString(iv.end()) + ")";
}

void AppendValue(std::string* out, const Value& v, const Universe& u) {
  switch (v.kind()) {
    case ValueKind::kConstant:
      *out += "c\"";
      *out += EscapeCheckpointString(u.symbols().Spelling(v.symbol()));
      *out += "\"";
      break;
    case ValueKind::kNull:
      *out += "n" + std::to_string(v.null_id());
      break;
    case ValueKind::kAnnotatedNull:
      *out += "a" + std::to_string(v.null_id()) + IntervalToken(v.interval());
      break;
    case ValueKind::kInterval:
      *out += "i" + IntervalToken(v.interval());
      break;
  }
}

void AppendFactLines(std::string* out, const Instance& instance,
                     const Universe& u) {
  const Schema& schema = instance.schema();
  for (RelationId rel = 0; rel < schema.relation_count(); ++rel) {
    for (const FactView fact : instance.facts(rel)) {
      *out += "fact " + schema.relation(rel).name;
      for (std::size_t i = 0; i < fact.arity(); ++i) {
        *out += " ";
        AppendValue(out, fact.arg(i), u);
      }
      *out += "\n";
    }
  }
}

Status Malformed(const std::string& what) {
  return Status::ParseError("checkpoint: " + what);
}

/// Cursor over one checkpoint line.
struct TokenCursor {
  std::string_view s;

  void SkipSpaces() {
    while (!s.empty() && s.front() == ' ') s.remove_prefix(1);
  }
  bool Eat(std::string_view prefix) {
    if (s.substr(0, prefix.size()) != prefix) return false;
    s.remove_prefix(prefix.size());
    return true;
  }
  bool Uint(std::uint64_t* out) {
    SkipSpaces();
    const auto [ptr, ec] =
        std::from_chars(s.data(), s.data() + s.size(), *out, 10);
    if (ec != std::errc() || ptr == s.data()) return false;
    s.remove_prefix(static_cast<std::size_t>(ptr - s.data()));
    return true;
  }
  bool Hex(std::uint64_t* out) {
    SkipSpaces();
    const auto [ptr, ec] =
        std::from_chars(s.data(), s.data() + s.size(), *out, 16);
    if (ec != std::errc() || ptr == s.data()) return false;
    s.remove_prefix(static_cast<std::size_t>(ptr - s.data()));
    return true;
  }
  /// A time point: digits or "inf".
  bool Time(TimePoint* out) {
    SkipSpaces();
    if (Eat("inf")) {
      *out = kTimeInfinity;
      return true;
    }
    std::uint64_t v = 0;
    if (!Uint(&v)) return false;
    *out = v;
    return true;
  }
  /// Next space-delimited word (not quote-aware).
  std::string_view Word() {
    SkipSpaces();
    std::size_t n = 0;
    while (n < s.size() && s[n] != ' ') ++n;
    const std::string_view w = s.substr(0, n);
    s.remove_prefix(n);
    return w;
  }
  /// A quoted, escaped string starting at the cursor.
  bool Quoted(std::string* out) {
    SkipSpaces();
    if (!Eat("\"")) return false;
    out->clear();
    while (!s.empty()) {
      const char c = s.front();
      s.remove_prefix(1);
      if (c == '"') return true;
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (s.empty()) return false;
      const char esc = s.front();
      s.remove_prefix(1);
      switch (esc) {
        case '\\': *out += '\\'; break;
        case '"': *out += '"'; break;
        case 'n': *out += '\n'; break;
        default: return false;
      }
    }
    return false;  // unterminated
  }
  bool AtEnd() {
    SkipSpaces();
    return s.empty();
  }
};

Result<Interval> ParseIntervalToken(TokenCursor* c) {
  TimePoint start = 0;
  TimePoint end = 0;
  if (!c->Eat("[") || !c->Time(&start) || !c->Eat(",") || !c->Time(&end) ||
      !c->Eat(")")) {
    return Malformed("malformed interval");
  }
  return Interval::Make(start, end);
}

Result<Value> ParseValueToken(TokenCursor* c, Universe* universe,
                              NullId null_limit) {
  c->SkipSpaces();
  if (c->s.empty()) return Malformed("missing value");
  const char kind = c->s.front();
  c->s.remove_prefix(1);
  switch (kind) {
    case 'c': {
      std::string spelling;
      if (!c->Quoted(&spelling)) return Malformed("malformed constant");
      return universe->Constant(spelling);
    }
    case 'n': {
      std::uint64_t id = 0;
      if (!c->Uint(&id)) return Malformed("malformed null id");
      if (id >= null_limit) return Malformed("null id out of range");
      return Value::Null(id);
    }
    case 'a': {
      std::uint64_t id = 0;
      if (!c->Uint(&id)) return Malformed("malformed null id");
      if (id >= null_limit) return Malformed("null id out of range");
      TDX_ASSIGN_OR_RETURN(Interval iv, ParseIntervalToken(c));
      return Value::AnnotatedNull(id, iv);
    }
    case 'i': {
      TDX_ASSIGN_OR_RETURN(Interval iv, ParseIntervalToken(c));
      return Value::OfInterval(iv);
    }
    default:
      return Malformed(std::string("unknown value kind '") + kind + "'");
  }
}

/// Sequential reader over the body's lines.
struct LineReader {
  std::string_view body;

  bool done() const { return body.empty(); }
  std::string_view Next() {
    const std::size_t nl = body.find('\n');
    std::string_view line =
        nl == std::string_view::npos ? body : body.substr(0, nl);
    body.remove_prefix(nl == std::string_view::npos ? body.size() : nl + 1);
    return line;
  }
};

Result<Instance> ParseFactBlock(LineReader* reader, std::uint64_t count,
                                const Schema* schema, Universe* universe,
                                NullId null_limit) {
  Instance instance(schema);
  for (std::uint64_t k = 0; k < count; ++k) {
    if (reader->done()) return Malformed("truncated fact block");
    TokenCursor c{reader->Next()};
    if (!c.Eat("fact ")) return Malformed("expected a fact line");
    const std::string_view rel_name = c.Word();
    TDX_ASSIGN_OR_RETURN(RelationId rel, schema->Find(rel_name));
    const std::size_t arity = schema->relation(rel).arity();
    std::vector<Value> args;
    args.reserve(arity);
    while (!c.AtEnd()) {
      TDX_ASSIGN_OR_RETURN(Value v, ParseValueToken(&c, universe, null_limit));
      args.push_back(v);
    }
    if (args.size() != arity) {
      return Malformed("fact arity mismatch for relation '" +
                       std::string(rel_name) + "'");
    }
    instance.Insert(rel, std::move(args));
  }
  return instance;
}

}  // namespace

Result<std::string> SerializeCheckpoint(const ChaseCheckpoint& checkpoint,
                                        const Schema& schema,
                                        const Universe& u) {
  (void)schema;
  if (checkpoint.null_names.size() != checkpoint.next_null) {
    return Status::Internal(
        "checkpoint null-name table does not match its null counter");
  }
  if (checkpoint.config.find('\n') != std::string::npos ||
      checkpoint.phase.find('\n') != std::string::npos) {
    return Status::Internal("checkpoint config/phase must be single-line");
  }
  std::string out = "tdxckpt v" +
                    std::to_string(ChaseCheckpoint::kFormatVersion) + "\n";
  out += "engine ";
  out += EngineName(checkpoint.engine);
  out += "\n";
  out += "fingerprint " + Hex16(checkpoint.program_fingerprint) + "\n";
  out += "config " + checkpoint.config + "\n";
  out += "phase " + checkpoint.phase + "\n";
  out += "rounds " + std::to_string(checkpoint.rounds) + "\n";
  out += "piece-cursor " + std::to_string(checkpoint.piece_cursor) + "\n";
  out += "stats " + std::to_string(checkpoint.stats.tgd_triggers) + " " +
         std::to_string(checkpoint.stats.tgd_fires) + " " +
         std::to_string(checkpoint.stats.egd_steps) + " " +
         std::to_string(checkpoint.stats.fresh_nulls) + " " +
         std::to_string(checkpoint.stats.values_rewritten) + " " +
         std::to_string(checkpoint.stats.skipped_egd_passes) + " " +
         std::to_string(checkpoint.stats.skipped_normalize_passes) + " " +
         std::to_string(checkpoint.stats.search.index_probes) + " " +
         std::to_string(checkpoint.stats.search.index_candidates) + " " +
         std::to_string(checkpoint.stats.search.full_scans) + "\n";
  const auto norm_line = [](const char* head, const NormalizeStats& ns) {
    return std::string(head) + " " + std::to_string(ns.input_facts) + " " +
           std::to_string(ns.output_facts) + " " +
           std::to_string(ns.homomorphisms) + " " +
           std::to_string(ns.groups) + " " +
           std::to_string(ns.delta_facts) + " " +
           std::to_string(ns.dirty_components) + " " +
           std::to_string(ns.reused_components) + " " +
           std::to_string(ns.partial ? 1 : 0) + "\n";
  };
  out += norm_line("norm-source", checkpoint.source_norm_stats);
  out += norm_line("norm-target", checkpoint.target_norm_stats);
  out += "consumed " + std::to_string(checkpoint.consumed.tgd_fires) + " " +
         std::to_string(checkpoint.consumed.egd_steps) + " " +
         std::to_string(checkpoint.consumed.fresh_nulls) + " " +
         std::to_string(checkpoint.consumed.facts) + " " +
         std::to_string(checkpoint.consumed.fragments) + " " +
         std::to_string(checkpoint.consumed.elapsed.count()) + "\n";
  out += "nulls " + std::to_string(checkpoint.next_null) + "\n";
  for (NullId id = 0; id < checkpoint.next_null; ++id) {
    out += "null " + std::to_string(id) + " \"" +
           EscapeCheckpointString(checkpoint.null_names[id]) + "\"\n";
  }
  if (checkpoint.frontier_full) {
    out += "frontier full\n";
  } else {
    out += "frontier marks " +
           std::to_string(checkpoint.frontier_marks.size());
    for (const std::uint32_t m : checkpoint.frontier_marks) {
      out += " " + std::to_string(m);
    }
    out += "\n";
  }
  if (checkpoint.norm_state_valid) {
    out += "norm-state " + std::to_string(checkpoint.norm_components) + "\n";
    out += "norm-marks " + std::to_string(checkpoint.norm_marks.size());
    for (const std::uint32_t m : checkpoint.norm_marks) {
      out += " " + std::to_string(m);
    }
    out += "\nnorm-labels " + std::to_string(checkpoint.norm_labels.size());
    for (const std::uint32_t l : checkpoint.norm_labels) {
      out += " " + std::to_string(l);
    }
    out += "\n";
  }
  if (checkpoint.target.has_value()) {
    out += "instance target " + std::to_string(checkpoint.target->size()) +
           "\n";
    AppendFactLines(&out, *checkpoint.target, u);
  }
  if (checkpoint.normalized_source.has_value()) {
    out += "instance normalized-source " +
           std::to_string(checkpoint.normalized_source->size()) + "\n";
    AppendFactLines(&out, *checkpoint.normalized_source, u);
  }
  for (const AbstractPiece& piece : checkpoint.pieces) {
    out += "piece " + IntervalToken(piece.span) + " " +
           std::to_string(piece.snapshot.size()) + "\n";
    AppendFactLines(&out, piece.snapshot, u);
  }
  out += "end " + Hex16(FingerprintText(out)) + "\n";
  return out;
}

Result<ChaseCheckpoint> ParseCheckpoint(std::string_view text,
                                        const Schema* schema,
                                        Universe* universe) {
  // Verify the trailing checksum over everything before the "end" line.
  const std::size_t end_pos = text.rfind("\nend ");
  if (end_pos == std::string_view::npos) {
    return Malformed("missing end line (truncated file?)");
  }
  const std::string_view body = text.substr(0, end_pos + 1);
  TokenCursor end_cursor{text.substr(end_pos + 1)};
  std::uint64_t checksum = 0;
  if (!end_cursor.Eat("end ") || !end_cursor.Hex(&checksum)) {
    return Malformed("malformed end line");
  }
  if (checksum != FingerprintText(body)) {
    return Malformed("checksum mismatch (corrupt or torn file)");
  }

  LineReader reader{body};
  ChaseCheckpoint ck;

  TokenCursor c{reader.Next()};
  std::uint64_t version = 0;
  if (!c.Eat("tdxckpt v") || !c.Uint(&version)) {
    return Malformed("missing tdxckpt header");
  }
  if (version != ChaseCheckpoint::kFormatVersion) {
    return Malformed("unsupported format version v" +
                     std::to_string(version));
  }
  c = TokenCursor{reader.Next()};
  if (!c.Eat("engine ") || !EngineFromName(c.Word(), &ck.engine)) {
    return Malformed("malformed engine line");
  }
  c = TokenCursor{reader.Next()};
  if (!c.Eat("fingerprint ") || !c.Hex(&ck.program_fingerprint)) {
    return Malformed("malformed fingerprint line");
  }
  c = TokenCursor{reader.Next()};
  if (!c.Eat("config ")) return Malformed("malformed config line");
  ck.config = std::string(c.s);
  c = TokenCursor{reader.Next()};
  if (!c.Eat("phase ")) return Malformed("malformed phase line");
  ck.phase = std::string(c.Word());
  std::uint64_t n = 0;
  c = TokenCursor{reader.Next()};
  if (!c.Eat("rounds ") || !c.Uint(&n)) return Malformed("malformed rounds");
  ck.rounds = static_cast<std::size_t>(n);
  c = TokenCursor{reader.Next()};
  if (!c.Eat("piece-cursor ") || !c.Uint(&n)) {
    return Malformed("malformed piece-cursor");
  }
  ck.piece_cursor = static_cast<std::size_t>(n);
  {
    c = TokenCursor{reader.Next()};
    std::uint64_t v[5];
    if (!c.Eat("stats ") || !c.Uint(&v[0]) || !c.Uint(&v[1]) ||
        !c.Uint(&v[2]) || !c.Uint(&v[3]) || !c.Uint(&v[4])) {
      return Malformed("malformed stats line");
    }
    ck.stats.tgd_triggers = static_cast<std::size_t>(v[0]);
    ck.stats.tgd_fires = static_cast<std::size_t>(v[1]);
    ck.stats.egd_steps = static_cast<std::size_t>(v[2]);
    ck.stats.fresh_nulls = static_cast<std::size_t>(v[3]);
    ck.stats.values_rewritten = static_cast<std::size_t>(v[4]);
    // Scheduler counters, appended in a later format revision: absent from
    // older checkpoints, which decode with both counters at zero.
    std::uint64_t skip = 0;
    if (c.Uint(&skip)) {
      ck.stats.skipped_egd_passes = static_cast<std::size_t>(skip);
      if (c.Uint(&skip)) {
        ck.stats.skipped_normalize_passes = static_cast<std::size_t>(skip);
      } else {
        return Malformed("malformed stats line");
      }
      // Search counters, appended in a yet later revision: 5- and 7-field
      // stats lines decode with all three at zero.
      std::uint64_t probes = 0;
      if (c.Uint(&probes)) {
        std::uint64_t cands = 0;
        std::uint64_t scans = 0;
        if (!c.Uint(&cands) || !c.Uint(&scans)) {
          return Malformed("malformed stats line");
        }
        ck.stats.search.index_probes = probes;
        ck.stats.search.index_candidates = cands;
        ck.stats.search.full_scans = scans;
      }
    }
  }
  const auto parse_norm = [&reader](const char* head, NormalizeStats* ns)
      -> Status {
    TokenCursor line{reader.Next()};
    std::uint64_t v[4];
    if (!line.Eat(head) || !line.Eat(" ") || !line.Uint(&v[0]) ||
        !line.Uint(&v[1]) || !line.Uint(&v[2]) || !line.Uint(&v[3])) {
      return Malformed(std::string("malformed ") + head + " line");
    }
    ns->input_facts = static_cast<std::size_t>(v[0]);
    ns->output_facts = static_cast<std::size_t>(v[1]);
    ns->homomorphisms = static_cast<std::size_t>(v[2]);
    ns->groups = static_cast<std::size_t>(v[3]);
    // Incremental-normalization counters, appended in a later format
    // revision: a 4-field line decodes with all of them zero.
    std::uint64_t delta = 0;
    if (line.Uint(&delta)) {
      std::uint64_t dirty = 0;
      std::uint64_t reused = 0;
      std::uint64_t partial = 0;
      if (!line.Uint(&dirty) || !line.Uint(&reused) || !line.Uint(&partial) ||
          partial > 1) {
        return Malformed(std::string("malformed ") + head + " line");
      }
      ns->delta_facts = static_cast<std::size_t>(delta);
      ns->dirty_components = static_cast<std::size_t>(dirty);
      ns->reused_components = static_cast<std::size_t>(reused);
      ns->partial = partial != 0;
    }
    return Status::OK();
  };
  TDX_RETURN_IF_ERROR(parse_norm("norm-source", &ck.source_norm_stats));
  TDX_RETURN_IF_ERROR(parse_norm("norm-target", &ck.target_norm_stats));
  {
    c = TokenCursor{reader.Next()};
    std::uint64_t v[6];
    if (!c.Eat("consumed ") || !c.Uint(&v[0]) || !c.Uint(&v[1]) ||
        !c.Uint(&v[2]) || !c.Uint(&v[3]) || !c.Uint(&v[4]) ||
        !c.Uint(&v[5])) {
      return Malformed("malformed consumed line");
    }
    ck.consumed.tgd_fires = static_cast<std::size_t>(v[0]);
    ck.consumed.egd_steps = static_cast<std::size_t>(v[1]);
    ck.consumed.fresh_nulls = static_cast<std::size_t>(v[2]);
    ck.consumed.facts = static_cast<std::size_t>(v[3]);
    ck.consumed.fragments = static_cast<std::size_t>(v[4]);
    ck.consumed.elapsed =
        std::chrono::milliseconds(static_cast<std::int64_t>(v[5]));
  }
  c = TokenCursor{reader.Next()};
  if (!c.Eat("nulls ") || !c.Uint(&n)) return Malformed("malformed nulls");
  ck.next_null = n;
  ck.null_names.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t id = 0; id < n; ++id) {
    if (reader.done()) return Malformed("truncated null table");
    c = TokenCursor{reader.Next()};
    std::uint64_t got = 0;
    std::string name;
    if (!c.Eat("null ") || !c.Uint(&got) || got != id || !c.Quoted(&name)) {
      return Malformed("malformed null line");
    }
    ck.null_names.push_back(std::move(name));
  }
  c = TokenCursor{reader.Next()};
  if (!c.Eat("frontier ")) return Malformed("malformed frontier line");
  if (c.Eat("full")) {
    ck.frontier_full = true;
  } else if (c.Eat("marks")) {
    ck.frontier_full = false;
    std::uint64_t count = 0;
    if (!c.Uint(&count)) return Malformed("malformed frontier marks");
    ck.frontier_marks.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t k = 0; k < count; ++k) {
      std::uint64_t m = 0;
      if (!c.Uint(&m) || m > std::numeric_limits<std::uint32_t>::max()) {
        return Malformed("malformed frontier marks");
      }
      ck.frontier_marks.push_back(static_cast<std::uint32_t>(m));
    }
  } else {
    return Malformed("malformed frontier line");
  }

  while (!reader.done()) {
    c = TokenCursor{reader.Next()};
    if (c.AtEnd()) continue;
    if (c.Eat("instance target ")) {
      if (!c.Uint(&n)) return Malformed("malformed instance header");
      TDX_ASSIGN_OR_RETURN(
          Instance inst,
          ParseFactBlock(&reader, n, schema, universe, ck.next_null));
      ck.target = std::move(inst);
    } else if (c.Eat("instance normalized-source ")) {
      if (!c.Uint(&n)) return Malformed("malformed instance header");
      TDX_ASSIGN_OR_RETURN(
          Instance inst,
          ParseFactBlock(&reader, n, schema, universe, ck.next_null));
      ck.normalized_source = std::move(inst);
    } else if (c.Eat("norm-state ")) {
      if (!c.Uint(&n) || n > std::numeric_limits<std::uint32_t>::max()) {
        return Malformed("malformed norm-state line");
      }
      ck.norm_state_valid = true;
      ck.norm_components = static_cast<std::uint32_t>(n);
    } else if (c.Eat("norm-marks ")) {
      if (!c.Uint(&n)) return Malformed("malformed norm-marks line");
      ck.norm_marks.reserve(static_cast<std::size_t>(n));
      for (std::uint64_t k = 0; k < n; ++k) {
        std::uint64_t m = 0;
        if (!c.Uint(&m) || m > std::numeric_limits<std::uint32_t>::max()) {
          return Malformed("malformed norm-marks line");
        }
        ck.norm_marks.push_back(static_cast<std::uint32_t>(m));
      }
    } else if (c.Eat("norm-labels ")) {
      if (!c.Uint(&n)) return Malformed("malformed norm-labels line");
      ck.norm_labels.reserve(static_cast<std::size_t>(n));
      for (std::uint64_t k = 0; k < n; ++k) {
        std::uint64_t l = 0;
        if (!c.Uint(&l) || l > std::numeric_limits<std::uint32_t>::max()) {
          return Malformed("malformed norm-labels line");
        }
        ck.norm_labels.push_back(static_cast<std::uint32_t>(l));
      }
    } else if (c.Eat("piece ")) {
      TDX_ASSIGN_OR_RETURN(Interval span, ParseIntervalToken(&c));
      if (!c.Uint(&n)) return Malformed("malformed piece header");
      TDX_ASSIGN_OR_RETURN(
          Instance inst,
          ParseFactBlock(&reader, n, schema, universe, ck.next_null));
      ck.pieces.push_back(AbstractPiece{span, std::move(inst)});
    } else {
      return Malformed("unexpected line in checkpoint body");
    }
  }
  return ck;
}

}  // namespace tdx
