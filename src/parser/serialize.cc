#include "src/parser/serialize.h"

#include <optional>

namespace tdx {

namespace {

/// Is `name` an auxiliary closure relation (base__op or base__op+)?
/// Returns the base snapshot relation name and operator when so.
std::optional<std::pair<std::string, TemporalOp>> SplitClosureName(
    std::string_view name) {
  if (!name.empty() && name.back() == '+') name.remove_suffix(1);
  const std::size_t sep = name.rfind("__");
  if (sep == std::string_view::npos) return std::nullopt;
  TemporalOp op;
  if (!TemporalOpFromName(name.substr(sep + 2), &op)) return std::nullopt;
  return std::make_pair(std::string(name.substr(0, sep)), op);
}

/// Renders a term in the parseable format: variables by name, constants
/// quoted, anything else is unrepresentable (caller checks).
std::string RenderTerm(const Term& term, const Conjunction& conj,
                       const Universe& u) {
  if (term.is_var()) {
    const VarId v = term.var();
    if (v < conj.var_names.size() && !conj.var_names[v].empty()) {
      return conj.var_names[v];
    }
    return "v" + std::to_string(v);
  }
  assert(term.value().is_constant() &&
         "only constants are representable in dependency atoms");
  return "\"" + std::string(u.symbols().Spelling(term.value().symbol())) +
         "\"";
}

/// Renders a conjunction in the parseable format, translating closure
/// relations back to their operator syntax.
std::string RenderConjunction(const Conjunction& conj, const Schema& schema,
                              const Universe& u) {
  std::string out;
  for (std::size_t i = 0; i < conj.atoms.size(); ++i) {
    if (i > 0) out += " & ";
    const Atom& atom = conj.atoms[i];
    const std::string& rel_name = schema.relation(atom.rel).name;
    const auto closure = SplitClosureName(rel_name);
    if (closure.has_value()) {
      out += std::string(TemporalOpName(closure->second)) + "(" +
             closure->first + "(";
    } else {
      out += rel_name + "(";
    }
    for (std::size_t j = 0; j < atom.terms.size(); ++j) {
      if (j > 0) out += ", ";
      out += RenderTerm(atom.terms[j], conj, u);
    }
    out += ")";
    if (closure.has_value()) out += ")";
  }
  return out;
}

std::string VarName(const Conjunction& conj, VarId v) {
  if (v < conj.var_names.size() && !conj.var_names[v].empty()) {
    return conj.var_names[v];
  }
  return "v" + std::to_string(v);
}

std::string RenderTgd(const Tgd& tgd, std::string_view keyword,
                      const Schema& schema, const Universe& u) {
  std::string out(keyword);
  out += " ";
  if (!tgd.label.empty()) out += tgd.label + ": ";
  out += RenderConjunction(tgd.body, schema, u);
  out += " -> ";
  if (!tgd.existential.empty()) {
    out += "exists ";
    for (std::size_t i = 0; i < tgd.existential.size(); ++i) {
      if (i > 0) out += ", ";
      out += VarName(tgd.head, tgd.existential[i]);
    }
    out += ": ";
  }
  out += RenderConjunction(tgd.head, schema, u);
  out += ";\n";
  return out;
}

}  // namespace

std::string SerializeSchema(const Schema& schema) {
  std::string out;
  for (RelationId rel = 0; rel < schema.relation_count(); ++rel) {
    const RelationSchema& r = schema.relation(rel);
    if (r.temporal) continue;                       // emit the snapshot side
    if (!r.twin.has_value()) continue;              // pairs only
    if (SplitClosureName(r.name).has_value()) continue;  // re-derived
    out += (r.role == SchemaRole::kSource ? "source " : "target ");
    out += r.name + "(";
    for (std::size_t i = 0; i < r.attributes.size(); ++i) {
      if (i > 0) out += ", ";
      out += r.attributes[i];
    }
    out += ");\n";
  }
  return out;
}

std::string SerializeMapping(const Mapping& mapping, const Schema& schema,
                             const Universe& u) {
  std::string out;
  for (const Tgd& tgd : mapping.st_tgds) {
    out += RenderTgd(tgd, "tgd", schema, u);
  }
  for (const Tgd& tgd : mapping.target_tgds) {
    out += RenderTgd(tgd, "ttgd", schema, u);
  }
  for (const Egd& egd : mapping.egds) {
    out += "egd ";
    if (!egd.label.empty()) out += egd.label + ": ";
    out += RenderConjunction(egd.body, schema, u);
    out += " -> " + VarName(egd.body, egd.x1) + " = " +
           VarName(egd.body, egd.x2) + ";\n";
  }
  return out;
}

Result<std::string> SerializeInstanceFacts(const ConcreteInstance& instance,
                                           const Universe& u) {
  std::string out;
  Status status = Status::OK();
  const Schema& schema = instance.schema();
  instance.facts().ForEach([&](const Fact& fact) {
    if (!status.ok()) return;
    const RelationSchema& rel = schema.relation(fact.relation());
    if (SplitClosureName(rel.name).has_value()) return;  // re-derived
    Result<RelationId> snap = schema.TwinOf(fact.relation());
    if (!snap.ok()) {
      status = snap.status();
      return;
    }
    out += "fact " + schema.relation(*snap).name + "(";
    for (std::size_t i = 0; i + 1 < fact.arity(); ++i) {
      const Value& v = fact.arg(i);
      if (!v.is_constant()) {
        status = Status::InvalidArgument(
            "only complete instances are serializable as facts; found a "
            "null in relation '" + rel.name + "'");
        return;
      }
      if (i > 0) out += ", ";
      out += "\"" + std::string(u.symbols().Spelling(v.symbol())) + "\"";
    }
    out += ") @ " + fact.interval().ToString() + ";\n";
  });
  if (!status.ok()) return status;
  return out;
}

std::string SerializeQueries(const std::vector<UnionQuery>& queries,
                             const Schema& schema, const Universe& u) {
  std::string out;
  for (const UnionQuery& uq : queries) {
    for (const ConjunctiveQuery& q : uq.disjuncts) {
      out += "query " + uq.name + "(";
      for (std::size_t i = 0; i < q.head.size(); ++i) {
        if (i > 0) out += ", ";
        out += VarName(q.body, q.head[i]);
      }
      out += "): " + RenderConjunction(q.body, schema, u) + ";\n";
    }
  }
  return out;
}

Result<std::string> SerializeProgram(const ParsedProgram& program) {
  std::string out = SerializeSchema(program.schema);
  out += SerializeMapping(program.mapping, program.schema, program.universe);
  TDX_ASSIGN_OR_RETURN(std::string facts,
                       SerializeInstanceFacts(program.source,
                                              program.universe));
  out += facts;
  out += SerializeQueries(program.queries, program.schema, program.universe);
  return out;
}

}  // namespace tdx
