// Serialization back into the tdx text format.
//
// Everything ParseProgram reads can be written back out: schemas, mappings
// (including target tgds), facts, and queries. The output parses to an
// equivalent program (round-trip property, exercised by tests), which makes
// exchange results durable: `tdx_cli chase --emit-program` produces a
// program whose facts are the computed solution.
//
// Instances containing interval-annotated nulls are NOT serializable as
// `fact` statements (the format deliberately keeps sources complete, as the
// paper requires); SerializeInstanceFacts returns InvalidArgument for them.

#ifndef TDX_PARSER_SERIALIZE_H_
#define TDX_PARSER_SERIALIZE_H_

#include <string>
#include <string_view>

#include "src/common/checkpoint.h"
#include "src/parser/parser.h"

namespace tdx {

/// `source`/`target` declarations for every relation pair in the schema.
/// Auxiliary closure relations (R__once_past, ...) are skipped: they are
/// re-derived from the operators in the mapping on re-parse.
std::string SerializeSchema(const Schema& schema);

/// `tgd`/`ttgd`/`egd` statements. Dependencies must be the NON-temporal
/// mapping (the lifted form is derived on re-parse).
std::string SerializeMapping(const Mapping& mapping, const Schema& schema,
                             const Universe& u);

/// `fact` statements for a complete concrete instance.
Result<std::string> SerializeInstanceFacts(const ConcreteInstance& instance,
                                           const Universe& u);

/// `query` statements.
std::string SerializeQueries(const std::vector<UnionQuery>& queries,
                             const Schema& schema, const Universe& u);

/// The whole program: schema, mapping, facts, queries.
Result<std::string> SerializeProgram(const ParsedProgram& program);

// ---------------------------------------------------------------------------
// Checkpoint encoding
// ---------------------------------------------------------------------------
//
// The `fact` statement format above deliberately rejects nulls (sources are
// complete); a chase checkpoint is exactly a partial target full of labeled
// and interval-annotated nulls, so it gets its own line-based durable
// encoding: a version header, the cursor/stats/ledger scalars, the null
// namespace, then instances as `fact <relation> <value>...` lines with a
// typed value syntax (c"..." constant, n<id> labeled null,
// a<id>[s,e) annotated null, i[s,e) interval; "inf" for the open right
// endpoint), terminated by an FNV-1a checksum line that ParseCheckpoint
// verifies. Deterministic: the same checkpoint serializes to the same bytes.

/// Encodes `checkpoint`. `schema`/`universe` are the ones its instances
/// refer to (relations are written by name, constants by spelling).
Result<std::string> SerializeCheckpoint(const ChaseCheckpoint& checkpoint,
                                        const Schema& schema,
                                        const Universe& u);

/// Decodes a checkpoint: validates the version, checksum, relation names,
/// and arities against `schema`, and re-interns constants into `universe`.
/// Does NOT touch the universe's null namespace — the engine restores it
/// when the checkpoint is passed via resume_from.
Result<ChaseCheckpoint> ParseCheckpoint(std::string_view text,
                                        const Schema* schema,
                                        Universe* universe);

}  // namespace tdx

#endif  // TDX_PARSER_SERIALIZE_H_
