// Lexer for the tdx text format.
//
// The format covers everything the examples and tests need to state a data
// exchange setting the way the paper writes it:
//
//   source E(name, company);
//   target Emp(name, company, salary);
//   tgd sigma1: E(n, c) -> exists s: Emp(n, c, s);
//   egd  e1: Emp(n, c, s) & Emp(n, c, s2) -> s = s2;
//   fact E("Ada", "IBM") @ [2012, 2014);
//   fact E("Ada", "Intel") @ [2014, inf);
//   query q(n, s): Emp(n, _, s);
//
// Tokens: identifiers, quoted strings, unsigned integers, `inf`, and the
// punctuation ( ) [ , ; : & = @ -> plus end-of-input. Comments run from `#`
// to end of line.

#ifndef TDX_PARSER_LEXER_H_
#define TDX_PARSER_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace tdx {

enum class TokenKind {
  kIdentifier,  ///< [A-Za-z_][A-Za-z0-9_]*
  kString,      ///< "..." (no escapes needed by the format)
  kNumber,      ///< unsigned decimal integer
  kLParen,      ///< (
  kRParen,      ///< )
  kLBracket,    ///< [
  kComma,       ///< ,
  kSemicolon,   ///< ;
  kColon,       ///< :
  kAmp,         ///< &
  kEquals,      ///< =
  kAt,          ///< @
  kArrow,       ///< ->
  kEnd,         ///< end of input
};

struct Token {
  TokenKind kind;
  std::string text;     ///< identifier/string contents or number spelling
  std::uint64_t number = 0;  ///< value when kind == kNumber
  std::size_t line = 1;
  std::size_t column = 1;
};

/// Tokenizes `input`; returns ParseError with line/column info on bad input.
Result<std::vector<Token>> Tokenize(std::string_view input);

/// Debug name of a token kind ("identifier", "'('", ...).
std::string_view TokenKindName(TokenKind kind);

}  // namespace tdx

#endif  // TDX_PARSER_LEXER_H_
