// Lexer for the tdx text format.
//
// The format covers everything the examples and tests need to state a data
// exchange setting the way the paper writes it:
//
//   source E(name, company);
//   target Emp(name, company, salary);
//   tgd sigma1: E(n, c) -> exists s: Emp(n, c, s);
//   egd  e1: Emp(n, c, s) & Emp(n, c, s2) -> s = s2;
//   fact E("Ada", "IBM") @ [2012, 2014);
//   fact E("Ada", "Intel") @ [2014, inf);
//   query q(n, s): Emp(n, _, s);
//
// Tokens: identifiers, quoted strings, unsigned integers, `inf`, and the
// punctuation ( ) [ , ; : & = @ -> plus end-of-input. Comments run from `#`
// to end of line.

#ifndef TDX_PARSER_LEXER_H_
#define TDX_PARSER_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/resource.h"
#include "src/common/status.h"

namespace tdx {

enum class TokenKind {
  kIdentifier,  ///< [A-Za-z_][A-Za-z0-9_]*
  kString,      ///< "..." (no escapes needed by the format)
  kNumber,      ///< unsigned decimal integer
  kLParen,      ///< (
  kRParen,      ///< )
  kLBracket,    ///< [
  kComma,       ///< ,
  kSemicolon,   ///< ;
  kColon,       ///< :
  kAmp,         ///< &
  kEquals,      ///< =
  kAt,          ///< @
  kArrow,       ///< ->
  kEnd,         ///< end of input
};

struct Token {
  TokenKind kind;
  std::string text;     ///< identifier/string contents or number spelling
  std::uint64_t number = 0;  ///< value when kind == kNumber
  std::size_t line = 1;
  std::size_t column = 1;
};

/// Hard caps on what the text-format front end will accept. The defaults
/// are far above anything a legitimate program needs but small enough that
/// a hostile input (multi-megabyte atom, pathologically nested operators)
/// is rejected with a structured kParseError instead of tying up the
/// process. All caps are configurable per call; kUnlimited disables one.
struct ParseLimits {
  std::size_t max_input_bytes = 8u << 20;  ///< whole-program size cap (8 MiB)
  std::size_t max_tokens = 2'000'000;      ///< token-stream length cap
  /// Temporal-operator nesting depth in atoms (the grammar itself only
  /// produces depth 2; the cap is a backstop for grammar growth).
  std::size_t max_nesting_depth = 64;
  std::size_t max_atom_terms = 4096;  ///< terms per atom / fact arguments
};

/// Tokenizes `input`; returns ParseError with line/column info on bad input
/// or when `limits` (input size, token count) are exceeded.
Result<std::vector<Token>> Tokenize(std::string_view input,
                                    const ParseLimits& limits = {});

/// Debug name of a token kind ("identifier", "'('", ...).
std::string_view TokenKindName(TokenKind kind);

}  // namespace tdx

#endif  // TDX_PARSER_LEXER_H_
