// Parser for the tdx text format: a whole data exchange setting in one
// self-contained program.
//
//   # Example 1 / Figure 4 of the paper
//   source E(name, company);
//   source S(name, salary);
//   target Emp(name, company, salary);
//
//   tgd sigma1: E(n, c) -> exists s: Emp(n, c, s);
//   tgd sigma2: E(n, c) & S(n, s) -> Emp(n, c, s);
//   egd e1: Emp(n, c, s) & Emp(n, c, s2) -> s = s2;
//
//   fact E("Ada", "IBM")    @ [2012, 2014);
//   fact E("Ada", "Google") @ [2014, inf);
//   fact S("Ada", "18k")    @ [2013, inf);
//
//   query q(n, s): Emp(n, _, s);
//
// Conventions:
//  * `source`/`target` declare a snapshot relation R and its concrete twin
//    R+ in one go (Schema::AddRelationPair).
//  * Dependencies and queries are written over the snapshot relations (they
//    are non-temporal, as in the paper); the parser also produces the
//    lifted M+ via LiftMapping.
//  * Facts are written over the snapshot relation names and stored in the
//    concrete twin with their `@` interval.
//  * In atoms, identifiers are variables, quoted strings and numbers are
//    constants, and `_` is a fresh anonymous variable per occurrence.
//  * Several `query` statements with the same name form one union query.
//  * `ttgd` declares a target tgd (body and head over target relations);
//    the set of target tgds must be weakly acyclic (checked at parse).
//  * Tgd bodies may apply temporal operators to atoms (Section 7 of the
//    paper, body-side fragment): `once_past(R(x))`, `always_past(R(x))`,
//    `once_future(R(x))`, `always_future(R(x))`. The parser creates the
//    auxiliary closure relation, rewrites the atom, and materializes the
//    closure facts into the source instance after all facts are read (see
//    src/core/temporal_ops.h).

#ifndef TDX_PARSER_PARSER_H_
#define TDX_PARSER_PARSER_H_

#include <memory>
#include <string_view>
#include <vector>

#include "src/parser/lexer.h"
#include "src/core/query.h"
#include "src/core/temporal_ops.h"
#include "src/relational/dependency.h"
#include "src/temporal/concrete_instance.h"

namespace tdx {

/// Everything a parsed program defines. Not movable: the instance holds a
/// pointer to the schema member, so the object must stay put (hence the
/// unique_ptr return).
struct ParsedProgram {
  /// One temporal-operator application site: closure facts of
  /// `base_concrete` under `op` are materialized into `closure_concrete`.
  struct ClosureSpec {
    RelationId base_concrete;
    TemporalOp op;
    RelationId closure_concrete;
  };

  Universe universe;
  Schema schema;
  Mapping mapping;  ///< the non-temporal M, certified (Mapping::certificate)
  Mapping lifted;   ///< M+ = LiftMapping(mapping), certified separately
  ConcreteInstance source;
  std::vector<UnionQuery> queries;
  std::vector<ClosureSpec> closures;
  /// Declaration position of each relation, indexed by RelationId (twins
  /// share their declaration's span; auto-created closure relations carry
  /// the span of the statement that introduced them).
  std::vector<SourceSpan> relation_spans;

  ParsedProgram() : source(&schema) {}
  ParsedProgram(const ParsedProgram&) = delete;
  ParsedProgram& operator=(const ParsedProgram&) = delete;

  /// Query lookup by name.
  Result<const UnionQuery*> FindQuery(std::string_view name) const;
};

/// Parses a complete program. All errors are ParseError with position info.
/// `limits` caps input size, token count, operator nesting, and atom arity
/// (see ParseLimits); pathological inputs fail fast with a structured error
/// instead of exhausting memory.
Result<std::unique_ptr<ParsedProgram>> ParseProgram(
    std::string_view text, const ParseLimits& limits = {});

}  // namespace tdx

#endif  // TDX_PARSER_PARSER_H_
