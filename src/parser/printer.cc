#include "src/parser/printer.h"

#include <algorithm>
#include <vector>

namespace tdx {

namespace {

std::string Pad(const std::string& text, std::size_t width) {
  std::string out = text;
  out.resize(std::max(width, text.size()), ' ');
  return out;
}

}  // namespace

std::string RenderRelationTable(const Instance& instance, RelationId rel,
                                const Universe& u) {
  std::vector<Fact> facts = instance.CopyFacts(rel);
  if (facts.empty()) return "";
  std::sort(facts.begin(), facts.end());
  const RelationSchema& schema = instance.schema().relation(rel);

  // Compute column widths over header and all cells.
  std::vector<std::size_t> widths(schema.arity());
  for (std::size_t c = 0; c < schema.arity(); ++c) {
    widths[c] = schema.attributes[c].size();
  }
  std::vector<std::vector<std::string>> rows;
  rows.reserve(facts.size());
  for (const Fact& fact : facts) {
    std::vector<std::string> row;
    row.reserve(fact.arity());
    for (std::size_t c = 0; c < fact.arity(); ++c) {
      row.push_back(u.Render(fact.arg(c)));
      widths[c] = std::max(widths[c], row.back().size());
    }
    rows.push_back(std::move(row));
  }

  std::string out = schema.name + "\n";
  std::string header = "  ";
  for (std::size_t c = 0; c < schema.arity(); ++c) {
    header += Pad(schema.attributes[c], widths[c]) + "  ";
  }
  while (!header.empty() && header.back() == ' ') header.pop_back();
  out += header + "\n";
  for (const std::vector<std::string>& row : rows) {
    std::string line = "  ";
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += Pad(row[c], widths[c]) + "  ";
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    out += line + "\n";
  }
  return out;
}

std::string RenderInstanceTables(const Instance& instance, const Universe& u) {
  std::string out;
  for (RelationId rel = 0; rel < instance.schema().relation_count(); ++rel) {
    const std::string table = RenderRelationTable(instance, rel, u);
    if (table.empty()) continue;
    if (!out.empty()) out += "\n";
    out += table;
  }
  return out;
}

std::string RenderConcreteInstance(const ConcreteInstance& instance,
                                   const Universe& u) {
  return RenderInstanceTables(instance.facts(), u);
}

std::string RenderAbstractInstance(const AbstractInstance& instance,
                                   const Universe& u) {
  std::string out;
  for (const AbstractPiece& piece : instance.pieces()) {
    out += piece.span.ToString() + ":\n";
    std::vector<Fact> facts;
    piece.snapshot.ForEach([&](FactView f) { facts.push_back(f.ToFact()); });
    std::sort(facts.begin(), facts.end());
    if (facts.empty()) out += "  (empty)\n";
    for (const Fact& f : facts) {
      out += "  " + f.ToString(instance.schema(), u) + "\n";
    }
  }
  return out;
}

std::string RenderRelationCsv(const Instance& instance, RelationId rel,
                              const Universe& u) {
  const RelationSchema& schema = instance.schema().relation(rel);
  auto quote = [](const std::string& field) {
    std::string out = "\"";
    for (char c : field) {
      if (c == '"') out += '"';
      out += c;
    }
    out += '"';
    return out;
  };
  std::string out;
  for (std::size_t c = 0; c < schema.arity(); ++c) {
    if (c > 0) out += ",";
    out += quote(schema.attributes[c]);
  }
  out += "\n";
  std::vector<Fact> facts = instance.CopyFacts(rel);
  std::sort(facts.begin(), facts.end());
  for (const Fact& fact : facts) {
    for (std::size_t c = 0; c < fact.arity(); ++c) {
      if (c > 0) out += ",";
      out += quote(u.Render(fact.arg(c)));
    }
    out += "\n";
  }
  return out;
}

std::string RenderAnswers(const std::vector<Tuple>& answers,
                          const Universe& u) {
  std::vector<Tuple> sorted = answers;
  std::sort(sorted.begin(), sorted.end());
  std::string out;
  for (const Tuple& tuple : sorted) {
    out += TupleToString(tuple, u) + "\n";
  }
  return out;
}

}  // namespace tdx
